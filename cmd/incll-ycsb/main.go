// Command incll-ycsb runs one YCSB workload against one of the four
// systems (MT, MT+, INCLL, LOGGING) and prints the measurement: the
// single-run building block incll-bench composes into figures.
//
// Usage:
//
//	incll-ycsb -mode INCLL -workload A -dist zipfian -size 1000000
//	incll-ycsb -mode INCLL -workload A -shards 4 -threads 8   # sharded scale-out
//	incll-ycsb -mode INCLL -workload A -txn transfer          # k-key bank transfers
//	incll-ycsb -workload A -valuesize 1024                    # 1 KiB byte values, MB/s
//	incll-ycsb -workload A -valuesize 1024 -shards 4          # same, sharded
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"incll/internal/harness"
	"incll/internal/ycsb"
)

func main() {
	mode := flag.String("mode", "INCLL", "MT | MT+ | INCLL | LOGGING")
	workload := flag.String("workload", "A", "A | B | C | E")
	dist := flag.String("dist", "uniform", "uniform | zipfian")
	size := flag.Uint64("size", 200_000, "tree size (keys)")
	threads := flag.Int("threads", 4, "worker threads")
	shards := flag.Int("shards", 1, "keyspace shards with coordinated checkpoints (durable modes)")
	ops := flag.Int("ops", 200_000, "operations per thread")
	txnMode := flag.String("txn", "none", "none | rmw | transfer (durable modes): run multi-key transactions over the mix")
	txnKeys := flag.Int("txnkeys", 4, "accounts touched per bank transfer")
	valueSize := flag.Int("valuesize", 0, "byte-value payload size (durable modes): > 0 switches to PutBytes/GetBytes values and reports MB/s")
	valueDist := flag.String("valuedist", "constant", "constant | zipfian payload-size distribution (with -valuesize)")
	scanLen := flag.Int("scanlen", ycsb.ScanLength, "YCSB-E scan length (the max when -scandist zipfian)")
	scanDist := flag.String("scandist", "constant", "constant | zipfian scan-length distribution (workload E)")
	reverse := flag.Bool("reverse", false, "run YCSB-E scans descending through the cursor (durable modes)")
	scanAPI := flag.String("scanapi", "cursor", "cursor | callback: serve YCSB-E scans through the iterator or the legacy callback Scan")
	interval := flag.Duration("interval", 64*time.Millisecond, "epoch interval")
	fence := flag.Duration("fence", 0, "emulated NVM latency after each fence")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := harness.RunConfig{
		TreeSize:      *size,
		Threads:       *threads,
		Shards:        *shards,
		OpsPerThread:  *ops,
		TxnKeys:       *txnKeys,
		ValueSize:     *valueSize,
		ScanLen:       *scanLen,
		ScanReverse:   *reverse,
		EpochInterval: *interval,
		FenceDelay:    *fence,
		Seed:          *seed,
	}
	switch *valueDist {
	case "constant":
		cfg.ValueDist = ycsb.SizeConstant
	case "zipfian":
		cfg.ValueDist = ycsb.SizeZipfian
	default:
		log.Fatalf("unknown value-size distribution %q", *valueDist)
	}
	switch *scanDist {
	case "constant":
		cfg.ScanDist = ycsb.SizeConstant
	case "zipfian":
		cfg.ScanDist = ycsb.SizeZipfian
	default:
		log.Fatalf("unknown scan-length distribution %q", *scanDist)
	}
	switch *scanAPI {
	case "cursor":
	case "callback":
		cfg.LegacyScan = true
	default:
		log.Fatalf("unknown scan API %q", *scanAPI)
	}
	switch *txnMode {
	case "none":
	case "rmw":
		cfg.TxnMode = harness.TxnRMW
	case "transfer":
		cfg.TxnMode = harness.TxnTransfer
	default:
		log.Fatalf("unknown txn mode %q", *txnMode)
	}
	switch *mode {
	case "MT":
		cfg.Mode = harness.MT
	case "MT+":
		cfg.Mode = harness.MTPlus
	case "INCLL":
		cfg.Mode = harness.INCLL
	case "LOGGING":
		cfg.Mode = harness.LOGGING
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	switch *workload {
	case "A":
		cfg.Workload = ycsb.A
	case "B":
		cfg.Workload = ycsb.B
	case "C":
		cfg.Workload = ycsb.C
	case "E":
		cfg.Workload = ycsb.E
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	switch *dist {
	case "uniform":
		cfg.Dist = ycsb.Uniform
	case "zipfian":
		cfg.Dist = ycsb.Zipfian
	default:
		log.Fatalf("unknown distribution %q", *dist)
	}

	if *shards > 1 && (cfg.Mode == harness.MT || cfg.Mode == harness.MTPlus) {
		log.Fatalf("-shards applies to the durable modes (INCLL, LOGGING), not %s", cfg.Mode)
	}
	if cfg.TxnMode != harness.TxnNone && cfg.Mode != harness.INCLL && cfg.Mode != harness.LOGGING {
		log.Fatalf("-txn applies to the durable modes (INCLL, LOGGING), not %s", cfg.Mode)
	}
	if cfg.ValueSize > 0 {
		if cfg.Mode != harness.INCLL && cfg.Mode != harness.LOGGING {
			log.Fatalf("-valuesize applies to the durable modes (INCLL, LOGGING), not %s", cfg.Mode)
		}
		if cfg.TxnMode != harness.TxnNone {
			log.Fatalf("-valuesize and -txn are mutually exclusive (transfers are uint64 accounts)")
		}
	}

	r := harness.Run(cfg)
	label := ""
	if *shards > 1 {
		label = fmt.Sprintf(" shards=%d", *shards)
	}
	if cfg.TxnMode != harness.TxnNone {
		label += fmt.Sprintf(" txn=%s", cfg.TxnMode)
	}
	if cfg.ValueSize > 0 {
		label += fmt.Sprintf(" valuesize=%d/%s", cfg.ValueSize, cfg.ValueDist)
	}
	if cfg.Workload == ycsb.E {
		dir := "fwd"
		if cfg.ScanReverse {
			dir = "rev"
		}
		label += fmt.Sprintf(" scan=%s/%d/%s/%s", *scanAPI, cfg.ScanLen, cfg.ScanDist, dir)
	}
	fmt.Printf("%s %s %s%s: %d ops in %v = %.3f Mops/s\n",
		cfg.Mode, cfg.Workload, cfg.Dist, label, r.Ops, r.Elapsed.Round(time.Millisecond), r.Throughput/1e6)
	fmt.Printf("  latency p50=%v p95=%v p99=%v (sampled 1/8)\n", r.P50, r.P95, r.P99)
	if cfg.Mode == harness.INCLL || cfg.Mode == harness.LOGGING {
		fmt.Printf("  epochs=%d loggedNodes=%d inCLLperm=%d inCLLval=%d fences=%d linesFlushed=%d\n",
			r.Advances, r.LoggedNodes, r.InCLLPerm, r.InCLLVal, r.Fences, r.FlushedLines)
		if stw := r.CheckpointSTW; stw.Count > 0 {
			fmt.Printf("  checkpoint stw n=%d p50=%v p99=%v max=%v\n", stw.Count,
				time.Duration(stw.P50), time.Duration(stw.P99), time.Duration(stw.Max))
		}
	}
	if cfg.ValueSize > 0 {
		fmt.Printf("  valueBytes=%d = %.1f MB/s\n", r.ValueBytes, r.MBPerSec)
	}
	if cfg.TxnMode != harness.TxnNone {
		fmt.Printf("  committed=%d conflicts=%d = %.3f Ktxn/s\n", r.Txns, r.TxnConflicts, r.TxnThroughput/1e3)
		if cfg.TxnMode == harness.TxnTransfer {
			fmt.Printf("  transfer invariant conserved: %v\n", r.SumConserved)
		}
	}
	for i, ops := range r.PerShardOps {
		fmt.Printf("  shard %d: %d ops (%.1f%%) = %.3f Mops/s\n",
			i, ops, 100*float64(ops)/float64(r.Ops), float64(ops)/r.Elapsed.Seconds()/1e6)
	}
}
