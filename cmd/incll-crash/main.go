// Command incll-crash runs the paper's §5.2 validation: crash the durable
// Masstree at random points under adversarial cache-line survival and
// verify the recovered state equals the last committed epoch, exactly.
//
// Usage:
//
//	incll-crash -seeds 20 -workers 4 -rounds 5
//	incll-crash -shards 4 -seeds 10      # cross-shard recovery, incl. crashes
//	                                     # inside the two-phase checkpoint
//	incll-crash -repl -shards 4 -replicashards 2   # replication campaign:
//	                                     # crash at every snapshot/stream
//	                                     # protocol point, verify the replica
//	                                     # always holds an exact committed
//	                                     # prefix and reconverges
//	incll-crash -reshard -shards 4 -toshards 8     # resharding campaign:
//	                                     # abort the online reshard at every
//	                                     # protocol point, crash, and verify
//	                                     # recovery lands entirely on one
//	                                     # side of the cutover, lossless
package main

import (
	"flag"
	"fmt"
	"log"

	"incll/internal/crashtest"
)

func main() {
	seeds := flag.Int("seeds", 10, "number of independent campaigns")
	workers := flag.Int("workers", 2, "concurrent mutator goroutines")
	shards := flag.Int("shards", 1, "keyspace shards with coordinated checkpoints (1 = single store)")
	rounds := flag.Int("rounds", 4, "crash/recover cycles per campaign")
	keyspace := flag.Uint64("keyspace", 4000, "distinct keys")
	ops := flag.Int("ops", 800, "operations per worker per epoch")
	persist := flag.Float64("persist", 0.5, "probability a dirty line survives each crash")
	valueBytes := flag.Int("valuebytes", 0, "store random byte values up to this size (0 = uint64 values); exercises the value heap")
	repl := flag.Bool("repl", false, "run the replication campaign instead: crash the primary at every snapshot/stream protocol point under concurrent load")
	replicaShards := flag.Int("replicashards", 0, "replication campaign: the follower's shard count (0 = same as -shards)")
	reshard := flag.Bool("reshard", false, "run the resharding campaign instead: abort an online reshard at every protocol point under concurrent load, crash, and verify atomic cutover with zero lost or duplicated keys")
	toShards := flag.Int("toshards", 0, "resharding campaign: the target shard count (0 = 2x -shards)")
	flag.Parse()

	if *reshard {
		to := *toShards
		if to == 0 {
			to = *shards * 2
		}
		cfg := crashtest.ReshardConfig{
			From:            *shards,
			To:              to,
			Workers:         *workers,
			PersistFraction: *persist,
		}
		for seed := int64(0); seed < int64(*seeds); seed++ {
			if err := crashtest.RunReshard(cfg, seed); err != nil {
				log.Fatalf("seed %d: reshard invariant violated: %v", seed, err)
			}
			fmt.Printf("seed %d: reshard %d→%d crash matrix verified\n", seed, cfg.From, cfg.To)
		}
		fmt.Println("all campaigns: every crash recovered onto exactly one side of the cutover, lossless")
		return
	}

	if *repl {
		cfg := crashtest.ReplConfig{
			Shards:          *shards,
			ReplicaShards:   *replicaShards,
			Workers:         *workers,
			Rounds:          *rounds,
			PersistFraction: *persist,
		}
		for seed := int64(0); seed < int64(*seeds); seed++ {
			if err := crashtest.RunRepl(cfg, seed); err != nil {
				log.Fatalf("seed %d: replication invariant violated: %v", seed, err)
			}
			fmt.Printf("seed %d: %d replication crash rounds verified\n", seed, cfg.Rounds)
		}
		fmt.Println("all campaigns: replica held an exact committed prefix and reconverged")
		return
	}

	cfg := crashtest.Config{
		Workers:         *workers,
		Shards:          *shards,
		Rounds:          *rounds,
		Keyspace:        *keyspace,
		OpsPerEpoch:     *ops,
		PersistFraction: *persist,
		ValueBytes:      *valueBytes,
	}
	for seed := int64(0); seed < int64(*seeds); seed++ {
		if err := crashtest.Run(cfg, seed); err != nil {
			log.Fatalf("seed %d: recovery divergence: %v", seed, err)
		}
		fmt.Printf("seed %d: %d crash/recover cycles verified\n", seed, *rounds)
	}
	fmt.Println("all campaigns recovered exactly to their committed epochs")
}
