// Command incll-top is a terminal dashboard for a kvserver cluster: it
// polls each node's /cluster and /metrics/history endpoints and renders
// one refreshing screen — role and epoch horizons per node, throughput
// and checkpoint stop-the-world p99 from the metric history, and, on the
// primary, the per-peer replication table with commit-to-apply
// propagation latency (see DESIGN.md §15) and a lag sparkline.
//
// Usage:
//
//	incll-top -nodes 127.0.0.1:8080,127.0.0.1:8081,127.0.0.1:8082
//	incll-top -nodes 127.0.0.1:8080 -once -json   # one machine-readable frame
//
// -once renders a single frame and exits (no screen clearing); -json
// emits the frame as JSON instead of the human screen. Nodes that fail
// to answer render as down rather than failing the whole frame, so the
// dashboard stays useful mid-failover.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"incll"
	"incll/internal/obs"
)

// nodeFrame is one node's slice of a dashboard frame.
type nodeFrame struct {
	Node    string               `json:"node"`
	Err     string               `json:"error,omitempty"`
	Cluster *incll.ClusterStatus `json:"cluster,omitempty"`

	// Derived from /metrics/history.
	OpsPerSec    float64   `json:"ops_per_sec"`
	STWP99Micros float64   `json:"stw_p99_us"`
	LagSeries    []float64 `json:"lag_series,omitempty"` // recent points, oldest first
}

// frame is one full dashboard refresh.
type frame struct {
	Time  time.Time   `json:"time"`
	Nodes []nodeFrame `json:"nodes"`
}

const lagSeriesPoints = 30

func main() {
	nodes := flag.String("nodes", "127.0.0.1:8080", "comma-separated kvserver HTTP addresses to poll")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout")
	once := flag.Bool("once", false, "render one frame and exit")
	asJSON := flag.Bool("json", false, "emit frames as JSON instead of the screen")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "incll-top: no nodes")
		os.Exit(2)
	}
	cli := &http.Client{Timeout: *timeout}

	for {
		f := collect(cli, addrs)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(f)
		} else {
			if !*once {
				fmt.Print("\x1b[H\x1b[2J") // home + clear
			}
			render(os.Stdout, f)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// collect fetches every node concurrently and assembles one frame.
func collect(cli *http.Client, addrs []string) frame {
	f := frame{Time: time.Now(), Nodes: make([]nodeFrame, len(addrs))}
	var wg sync.WaitGroup
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			f.Nodes[i] = fetchNode(cli, addr)
		}(i, a)
	}
	wg.Wait()
	return f
}

func fetchNode(cli *http.Client, addr string) nodeFrame {
	nf := nodeFrame{Node: addr}
	cs, err := fetchCluster(cli, addr)
	if err != nil {
		nf.Err = err.Error()
		return nf
	}
	nf.Cluster = cs
	// History is best-effort garnish: a node without a recorder (or a
	// truncated response) still renders its /cluster row.
	if hist, err := fetchHistory(cli, addr); err == nil {
		nf.OpsPerSec, nf.STWP99Micros, nf.LagSeries = digestHistory(hist, cs.Role)
	}
	return nf
}

func fetchCluster(cli *http.Client, addr string) (*incll.ClusterStatus, error) {
	resp, err := cli.Get("http://" + addr + "/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/cluster: %s", resp.Status)
	}
	cs := &incll.ClusterStatus{}
	if err := json.NewDecoder(resp.Body).Decode(cs); err != nil {
		return nil, fmt.Errorf("/cluster: %v", err)
	}
	return cs, nil
}

func fetchHistory(cli *http.Client, addr string) ([]obs.HistoryPoint, error) {
	resp, err := cli.Get("http://" + addr + "/metrics/history")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics/history: %s", resp.Status)
	}
	var hist []obs.HistoryPoint
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		return nil, err
	}
	return hist, nil
}

// digestHistory distills the dashboard numbers out of a node's metric
// history: whole-store ops/s (summing the per-op/per-shard counter
// rates), the stop-the-world p99 at the latest point, and the recent
// replication-lag series for the sparkline (max peer lag on a primary,
// own lag on a follower).
func digestHistory(hist []obs.HistoryPoint, role string) (ops, stwP99us float64, lag []float64) {
	if len(hist) == 0 {
		return 0, 0, nil
	}
	last := hist[len(hist)-1]
	for k, v := range last.Rates {
		if strings.HasPrefix(k, "incll_ops_total") {
			ops += v
		}
	}
	stwP99us = last.Values["incll_checkpoint_stw_seconds_p99"] * 1e6
	lagKey := "incll_replnet_max_peer_lag_epochs"
	if role == "follower" {
		lagKey = "incll_replnet_lag_epochs"
	}
	start := len(hist) - lagSeriesPoints
	if start < 0 {
		start = 0
	}
	for _, p := range hist[start:] {
		if v, ok := p.Values[lagKey]; ok {
			lag = append(lag, v)
		}
	}
	return ops, stwP99us, lag
}

// sparkline renders a series as one rune per point, scaled to its max.
func sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var maxV float64
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		i := 0
		if maxV > 0 {
			i = int(v / maxV * float64(len(levels)-1))
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

func render(w *os.File, f frame) {
	fmt.Fprintf(w, "incll-top  %s  %d node(s)\n\n", f.Time.Format("15:04:05"), len(f.Nodes))
	for _, n := range f.Nodes {
		if n.Err != "" {
			fmt.Fprintf(w, "%-22s DOWN  %s\n\n", n.Node, n.Err)
			continue
		}
		cs := n.Cluster
		fmt.Fprintf(w, "%-22s %-10s epoch=%d released=%d keys=%d shards=%d  %8.0f ops/s  stw_p99=%s\n",
			n.Node, strings.ToUpper(cs.Role), cs.Epoch, cs.ReleasedEpoch, cs.Keys, cs.Shards,
			n.OpsPerSec, us(n.STWP99Micros))
		if cs.Role == "primary" && cs.CommitToApplyP99Micros > 0 {
			fmt.Fprintf(w, "  propagation commit→apply p50=%s p99=%s", us(cs.CommitToApplyP50Micros), us(cs.CommitToApplyP99Micros))
			if len(cs.Stages) > 0 {
				keys := make([]string, 0, len(cs.Stages))
				for k := range cs.Stages {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, "  %s_p99=%s", k, us(float64(cs.Stages[k].P99)/1e3))
				}
			}
			fmt.Fprintln(w)
		}
		if len(cs.Peers) > 0 {
			fmt.Fprintf(w, "  %-16s %10s %10s %6s %6s %10s %12s %12s\n",
				"peer", "acked", "lag", "queue", "rtt", "c2a_p50", "c2a_p99", "samples")
			for _, p := range cs.Peers {
				fmt.Fprintf(w, "  %-16s %10d %10d %6d %6s %10s %12s %12d\n",
					p.ID, p.AckedEpoch, p.LagEpochs, p.QueueDepth, us(p.RTTMicros),
					us(p.CommitToApplyP50Micros), us(p.CommitToApplyP99Micros), p.CommitToApplySamples)
			}
		}
		if fv := cs.Follower; fv != nil {
			state := "connected"
			if !fv.Connected {
				state = fmt.Sprintf("DISCONNECTED %.0fms", fv.DownForMS)
			}
			fmt.Fprintf(w, "  following %s  %s  applied=%d primary_released=%d lag=%d reconnects=%d\n",
				fv.PrimaryAddr, state, fv.AppliedEpoch, fv.PrimaryReleased, fv.LagEpochs, fv.Reconnects)
		}
		if len(n.LagSeries) > 0 {
			fmt.Fprintf(w, "  lag %s\n", sparkline(n.LagSeries))
		}
		fmt.Fprintln(w)
	}
}

// us formats a microseconds quantity compactly (µs/ms/s).
func us(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v < 1e3:
		return fmt.Sprintf("%.0fµs", v)
	case v < 1e6:
		return fmt.Sprintf("%.1fms", v/1e3)
	default:
		return fmt.Sprintf("%.2fs", v/1e6)
	}
}
