// Command incll-bench regenerates the paper's evaluation figures (§6) on
// the simulated-NVM reproduction. Each figure prints the same series the
// paper plots; EXPERIMENTS.md records a reference run and compares shapes
// against the paper.
//
// Usage:
//
//	incll-bench -fig all                        # every figure + §6.2/§6.3
//	incll-bench -fig 2 -size 1000000 -threads 8 # one figure, scaled up
//	incll-bench -exp recovery                   # §6.3 only
//	incll-bench -json BENCH_RESULTS.json        # tracked benchmark matrix
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"incll/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 2,3,4,5,6,7,8 or 'all'")
	exp := flag.String("exp", "", "extra experiment: 'flush' (§6.2), 'recovery' (§6.3), or 'ablations'")
	jsonOut := flag.String("json", "", "run the tracked benchmark matrix (workloads × shards × txn modes) and write machine-readable records to this BENCH_*.json file")
	size := flag.Uint64("size", 200_000, "tree size (keys); the paper uses 20M")
	threads := flag.Int("threads", 4, "worker threads; the paper uses 8")
	ops := flag.Int("ops", 200_000, "operations per thread; the paper uses 1M")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *fig == "" && *exp == "" && *jsonOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	p := harness.Params{TreeSize: *size, Threads: *threads, Ops: *ops, Seed: *seed}

	if *jsonOut != "" {
		recs := harness.BenchSuite(os.Stdout, p)
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("create %s: %v", *jsonOut, err)
		}
		if err := harness.WriteBenchJSON(f, recs); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close %s: %v", *jsonOut, err)
		}
		fmt.Printf("wrote %d records to %s\n", len(recs), *jsonOut)
		if *fig == "" && *exp == "" {
			return
		}
	}
	out := os.Stdout

	want := func(f string) bool {
		return *fig == "all" || *fig == f ||
			strings.Contains(","+*fig+",", ","+f+",")
	}
	if want("2") {
		harness.Fig2(out, p)
	}
	if want("3") {
		harness.Fig3(out, p)
	}
	if want("4") {
		harness.Fig4(out, p, nil)
	}
	if want("5") || want("6") {
		harness.Fig5And6(out, p, nil)
	}
	if want("7") {
		harness.Fig7(out, p, nil)
	}
	if want("8") {
		harness.Fig8(out, p)
	}
	if *exp == "flush" || *fig == "all" {
		harness.FlushCost(out, p)
	}
	if *exp == "recovery" || *fig == "all" {
		harness.Recovery(out, p)
	}
	if *exp == "ablations" || *fig == "all" {
		harness.AblationEpochLength(out, p)
		harness.AblationEviction(out, p)
	}
	fmt.Fprintln(out)
}
