// Command incll-benchdiff compares two tracked BENCH_*.json files and
// fails when the newer one regresses throughput past a noise tolerance.
// CI runs it between the previous PR's committed numbers and the current
// ones so the perf trajectory is reviewed like code.
//
// Usage:
//
//	incll-benchdiff BENCH_PR6.json BENCH_PR7.json
//	incll-benchdiff -tolerance 0.2 old.json new.json
//
// Both the PR 6+ metadata envelope and the legacy bare record arrays
// (BENCH_PR3–PR5.json) load; a legacy or cross-machine comparison
// downgrades regressions to advisory warnings. Exit status: 0 clean,
// 1 regression, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"incll/internal/harness"
)

func main() {
	tolerance := flag.Float64("tolerance", harness.DefaultDiffTolerance,
		"relative throughput drop that counts as a regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: incll-benchdiff [-tolerance 0.30] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := harness.LoadBenchPath(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "incll-benchdiff: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}
	cur, err := harness.LoadBenchPath(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "incll-benchdiff: %s: %v\n", flag.Arg(1), err)
		os.Exit(2)
	}
	rep := harness.DiffBench(old, cur, *tolerance)
	rep.Write(os.Stdout)
	if rep.Regressions() > 0 {
		os.Exit(1)
	}
}
