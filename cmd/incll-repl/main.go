// Command incll-repl drives the checkpoint-anchored replication
// subsystem end to end: export a consistent online snapshot of a live
// store to a file, restore and verify it, or run a live replica under
// write load and watch its lag.
//
// The store lives in simulated NVM, so every mode builds its own primary
// (a YCSB-style preload) before exercising the replication path — the
// point is the protocol and its throughput, not long-term storage.
//
// Usage:
//
//	incll-repl -mode snapshot -size 200000 -o /tmp/db.snap
//	incll-repl -mode restore  -i /tmp/db.snap -shards 4
//	incll-repl -mode roundtrip -size 200000 -shards 4
//	incll-repl -mode replica  -size 100000 -ops 400000
//
// The networked modes run the TCP replication tier across processes: a
// serve-mode primary preloads, listens for followers, applies a write
// load, and shuts down cleanly (followers drain the final epoch); a
// connect-mode follower bootstraps over the wire, applies the live
// stream, and reports its convergence.
//
//	incll-repl -mode serve   -listen 127.0.0.1:9090 -size 100000 -ops 400000
//	incll-repl -mode follow  -connect 127.0.0.1:9090
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"incll"
	"incll/internal/crashtest"
)

func main() {
	mode := flag.String("mode", "roundtrip", "snapshot | restore | roundtrip | replica | serve | follow")
	size := flag.Uint64("size", 100_000, "primary preload size (keys)")
	valueSize := flag.Int("valuesize", 128, "byte-value payload size")
	shards := flag.Int("shards", 1, "primary shard count")
	restoreShards := flag.Int("restoreshards", 0, "restore/replica shard count (0 = same as -shards)")
	ops := flag.Int("ops", 200_000, "replica mode: write ops against the primary")
	out := flag.String("o", "", "snapshot output file (snapshot mode)")
	in := flag.String("i", "", "snapshot input file (restore mode)")
	interval := flag.Duration("interval", 8*time.Millisecond, "replica/serve mode: primary checkpoint interval")
	listen := flag.String("listen", "", "serve mode: replication listen address")
	connect := flag.String("connect", "", "follow mode: primary replication address")
	followers := flag.Int("followers", 1, "serve mode: followers to wait for before applying load")
	flag.Parse()

	if *restoreShards == 0 {
		*restoreShards = *shards
	}
	switch *mode {
	case "snapshot":
		if *out == "" {
			log.Fatal("-mode snapshot needs -o FILE")
		}
		primary := buildPrimary(*size, *valueSize, *shards)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriterSize(f, 1<<20)
		t0 := time.Now()
		info, err := primary.Snapshot(w)
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		el := time.Since(t0)
		fmt.Printf("snapshot: %d keys + %d change ops, anchor epoch %d\n", info.Keys, info.ChangeOps, info.AnchorEpoch)
		fmt.Printf("  %d bytes in %v = %.1f MB/s -> %s\n", info.Bytes, el.Round(time.Millisecond),
			float64(info.Bytes)/el.Seconds()/1e6, *out)
		primary.Close()

	case "restore":
		if *in == "" {
			log.Fatal("-mode restore needs -i FILE")
		}
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		db, info, err := incll.Restore(bufio.NewReaderSize(f, 1<<20), incll.Options{Shards: *restoreShards})
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		el := time.Since(t0)
		fmt.Printf("restore: %d keys + %d change ops verified (anchor epoch %d, source %d shard(s))\n",
			info.Keys, info.ChangeOps, info.AnchorEpoch, info.SourceShards)
		fmt.Printf("  %d bytes in %v = %.1f MB/s into %d shard(s); store holds %d keys\n",
			info.Bytes, el.Round(time.Millisecond), float64(info.Bytes)/el.Seconds()/1e6,
			*restoreShards, db.RebuildLen())
		db.Close()

	case "roundtrip":
		primary := buildPrimary(*size, *valueSize, *shards)
		pr, pw := io.Pipe()
		type expRes struct {
			info incll.SnapshotInfo
			err  error
		}
		expc := make(chan expRes, 1)
		t0 := time.Now()
		go func() {
			info, err := primary.Snapshot(pw)
			pw.CloseWithError(err)
			expc <- expRes{info, err}
		}()
		db, rinfo, err := incll.Restore(pr, incll.Options{Shards: *restoreShards})
		pr.CloseWithError(err) // unblock the exporter if the restore failed first
		exp := <-expc
		if exp.err != nil {
			log.Fatalf("snapshot: %v", exp.err)
		}
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		el := time.Since(t0)
		fmt.Printf("roundtrip: %d keys, %d shards -> %d shards, anchor epoch %d\n",
			rinfo.Keys, *shards, *restoreShards, rinfo.AnchorEpoch)
		fmt.Printf("  %d bytes streamed in %v = %.1f MB/s end to end\n",
			rinfo.Bytes, el.Round(time.Millisecond), float64(rinfo.Bytes)/el.Seconds()/1e6)
		verifyEqual(primary, db)
		db.Close()
		primary.Close()

	case "replica":
		opts := incll.Options{Shards: *shards, Workers: 2, EpochInterval: *interval}
		primary, _ := incll.Open(opts)
		preload(primary, *size, *valueSize)
		primary.StartCheckpointer()
		t0 := time.Now()
		rep, err := incll.NewReplica(primary, incll.Options{Shards: *restoreShards})
		if err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
		fmt.Printf("replica bootstrapped in %v at epoch %d\n",
			time.Since(t0).Round(time.Millisecond), rep.AppliedEpoch())

		done := make(chan struct{})
		go func() {
			defer close(done)
			h := primary.Handle(1)
			for i := 0; i < *ops; i++ {
				h.Put(incll.Key(uint64(i)%*size), uint64(i))
			}
		}()
		tick := time.NewTicker(250 * time.Millisecond)
	loop:
		for {
			select {
			case <-done:
				break loop
			case <-tick.C:
				lag := rep.Lag()
				fmt.Printf("  applied epoch %d, lag %d epoch(s) / %d bytes, %0.1f MB applied\n",
					rep.AppliedEpoch(), lag.Epochs, lag.Bytes, float64(rep.AppliedBytes())/1e6)
			}
		}
		tick.Stop()
		primary.StopCheckpointer()
		primary.Checkpoint()
		if err := rep.CatchUp(); err != nil {
			log.Fatalf("catch-up: %v", err)
		}
		fmt.Printf("caught up at epoch %d (%.1f MB applied)\n", rep.AppliedEpoch(), float64(rep.AppliedBytes())/1e6)
		promoted, err := rep.Promote()
		if err != nil {
			log.Fatalf("promote: %v", err)
		}
		verifyEqual(primary, promoted)
		fmt.Println("promoted replica verified equal to primary")
		promoted.Close()
		primary.Close()

	case "serve":
		if *listen == "" {
			log.Fatal("-mode serve needs -listen ADDR")
		}
		opts := incll.Options{Shards: *shards, Workers: 2, EpochInterval: *interval}
		primary, _ := incll.Open(opts)
		preload(primary, *size, *valueSize)
		primary.StartCheckpointer()
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := primary.ServeReplication(lis, incll.ReplServerOptions{Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving replication on %s (%d keys preloaded)\n", rs.Addr(), *size)
		for len(rs.Peers()) < *followers {
			time.Sleep(50 * time.Millisecond)
		}
		h := primary.Handle(1)
		t0 := time.Now()
		last := t0
		for i := 0; i < *ops; i++ {
			h.Put(incll.Key(uint64(i)%*size), uint64(i))
			if time.Since(last) > 250*time.Millisecond {
				last = time.Now()
				for _, p := range rs.Peers() {
					fmt.Printf("  peer %s: acked epoch %d, lag %d epoch(s) / %d bytes, rtt %v\n",
						p.ID, p.AckedEpoch, p.LagEpochs, p.LagBytes, p.RTT)
				}
			}
		}
		fmt.Printf("applied %d ops in %v; closing (followers drain the final epoch)\n",
			*ops, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  heartbeat rtt p99 %v across %d peer(s)\n", rs.HeartbeatRTT(0.99), len(rs.Peers()))
		primary.Close()

	case "follow":
		if *connect == "" {
			log.Fatal("-mode follow needs -connect ADDR")
		}
		t0 := time.Now()
		fol, err := incll.FollowPrimary(*connect, incll.FollowerOptions{
			Options: incll.Options{Shards: *restoreShards},
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatalf("follow: %v", err)
		}
		bi := fol.BootstrapInfo()
		el := time.Since(t0)
		fmt.Printf("bootstrapped %d keys (%d bytes) in %v = %.1f MB/s, anchor epoch %d\n",
			bi.Keys, bi.Bytes, el.Round(time.Millisecond), float64(bi.Bytes)/el.Seconds()/1e6, bi.AnchorEpoch)
		// Stream until the primary goes away for good (clean close included:
		// the client retries, so "down for 3s" is the end-of-run signal).
		for {
			time.Sleep(250 * time.Millisecond)
			if down, d := fol.Down(); down && d > 3*time.Second {
				break
			}
			fmt.Printf("  applied epoch %d, primary released %d, lag %d epoch(s)\n",
				fol.AppliedEpoch(), fol.PrimaryReleased(), fol.Lag().Epochs)
		}
		fmt.Printf("stream ended at applied epoch %d; store holds %d keys\n",
			fol.AppliedEpoch(), fol.DB().RebuildLen())
		fol.Close()

	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// buildPrimary preloads a store and commits the load.
func buildPrimary(size uint64, valueSize, shards int) *incll.DB {
	db, _ := incll.Open(incll.Options{Shards: shards, Workers: 2})
	preload(db, size, valueSize)
	return db
}

func preload(db *incll.DB, size uint64, valueSize int) {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i * 131)
	}
	for k := uint64(0); k < size; k++ {
		if _, err := db.PutBytes(incll.Key(k), val); err != nil {
			log.Fatal(err)
		}
	}
	db.Checkpoint()
}

// verifyEqual checks byte-identical All() iteration of both DBs, in both
// directions (the acceptance property's check, shared with the crash
// campaign).
func verifyEqual(a, b *incll.DB) {
	if err := crashtest.EqualBothDirections(a, b); err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("  verified: %d entries byte-identical in both directions\n", a.RebuildLen())
}
