package incll

// Whole-cluster health aggregation (see DESIGN.md §15): ClusterStatus is
// the JSON document kvserver serves at /cluster and cmd/incll-top renders.
// One call on each node answers "who is this node, how far has it
// replicated, and how long does a commit take to become readable on each
// follower" — the quantities the watermark read contract (§14) depends
// on. The per-peer propagation quantiles come from the same histograms
// the registry exports, so /cluster and a /metrics scrape always agree.

import (
	"time"

	"incll/internal/obs"
)

// ClusterPeer is one connected follower as seen by the primary: the
// replication progress gauges from the peer table plus the end-to-end
// commit-to-apply latency distilled from the propagation timeline.
type ClusterPeer struct {
	ID          string    `json:"id"`
	Remote      string    `json:"remote"`
	ConnectedAt time.Time `json:"connected_at"`
	AnchorEpoch uint64    `json:"anchor_epoch"`
	SentEpoch   uint64    `json:"sent_epoch"`
	AckedEpoch  uint64    `json:"acked_epoch"`
	LagEpochs   uint64    `json:"lag_epochs"`
	LagBytes    uint64    `json:"lag_bytes"`
	QueueDepth  int       `json:"queue_depth"`
	SentBytes   int64     `json:"sent_bytes"`
	RTTMicros   float64   `json:"rtt_us"`
	LastAck     time.Time `json:"last_ack"`

	// Commit-to-apply: checkpoint commit on the primary to this peer's
	// durable-apply ack, single-clock (primary) microseconds.
	CommitToApplyP50Micros float64 `json:"commit_to_apply_p50_us"`
	CommitToApplyP99Micros float64 `json:"commit_to_apply_p99_us"`
	CommitToApplySamples   int64   `json:"commit_to_apply_samples"`
}

// FollowerView is the follower-side half of ClusterStatus: this node's
// own replication state while it follows a primary.
type FollowerView struct {
	PrimaryAddr     string  `json:"primary_addr"`
	Connected       bool    `json:"connected"`
	AppliedEpoch    uint64  `json:"applied_epoch"`
	PrimaryReleased uint64  `json:"primary_released_epoch"`
	LagEpochs       uint64  `json:"lag_epochs"`
	Reconnects      int64   `json:"reconnects"`
	DownForMS       float64 `json:"down_for_ms,omitempty"`
}

// ClusterStatus is one node's point-in-time cluster health document.
type ClusterStatus struct {
	// Role is "primary" (serving replication), "standalone" (no
	// replication attached), or "follower".
	Role          string `json:"role"`
	Epoch         uint64 `json:"epoch"`
	ReleasedEpoch uint64 `json:"released_epoch"`
	Shards        int    `json:"shards"`
	Keys          int    `json:"keys"`

	// Peers is the primary-side follower table (empty on followers and
	// standalone nodes).
	Peers []ClusterPeer `json:"peers,omitempty"`

	// Stages summarizes each propagation pipeline stage (release_wait,
	// queue_wait, wire, apply_ack), nanoseconds on the primary clock.
	Stages map[string]obs.HistSnapshot `json:"propagation_stage_ns,omitempty"`

	// Aggregate commit-to-apply across all peers, microseconds.
	CommitToApplyP50Micros float64 `json:"commit_to_apply_p50_us,omitempty"`
	CommitToApplyP99Micros float64 `json:"commit_to_apply_p99_us,omitempty"`

	// Timeline is the tail of the per-epoch stamp ring (full lifecycle
	// stamps for the most recent epochs).
	Timeline []obs.TimelineEpoch `json:"timeline,omitempty"`

	// Follower is this node's own replication state while following.
	Follower *FollowerView `json:"follower,omitempty"`
}

// clusterTimelineTail bounds the timeline tail in /cluster responses;
// flight dumps keep a longer one (flightTimelineTail).
const (
	clusterTimelineTail = 8
	flightTimelineTail  = 64
)

// ClusterStatus returns this DB's cluster health document: role, epoch
// horizons, the per-peer replication progress and commit-to-apply
// latency when serving replication, and the propagation stage summary.
// Cheap enough to poll every second; never activates the change journal.
func (db *DB) ClusterStatus() ClusterStatus {
	return db.clusterStatus(clusterTimelineTail)
}

func (db *DB) clusterStatus(tail int) ClusterStatus {
	cs := ClusterStatus{
		Role:   "standalone",
		Epoch:  db.currentEpoch(),
		Shards: db.Shards(),
		Keys:   db.Len(),
	}
	if h := db.hubIfAttached(); h != nil {
		cs.ReleasedEpoch = h.Released()
	}
	tl := db.propTL.Load()
	if srv := db.netCur.Load(); srv != nil {
		cs.Role = "primary"
		for _, p := range srv.PeersSnapshot() {
			cp := ClusterPeer{
				ID:          p.ID,
				Remote:      p.Remote,
				ConnectedAt: p.ConnectedAt,
				AnchorEpoch: p.AnchorEpoch,
				SentEpoch:   p.SentEpoch,
				AckedEpoch:  p.AckedEpoch,
				LagEpochs:   p.LagEpochs,
				LagBytes:    p.LagBytes,
				QueueDepth:  p.QueueDepth,
				SentBytes:   p.SentBytes,
				RTTMicros:   float64(p.RTT.Nanoseconds()) / 1e3,
				LastAck:     p.LastAck,
			}
			if tl != nil {
				h := tl.PeerHist(p.ID)
				cp.CommitToApplyP50Micros = float64(h.Quantile(0.50)) / 1e3
				cp.CommitToApplyP99Micros = float64(h.Quantile(0.99)) / 1e3
				cp.CommitToApplySamples = h.Count()
			}
			cs.Peers = append(cs.Peers, cp)
		}
	}
	if tl != nil {
		cs.Stages = make(map[string]obs.HistSnapshot, obs.NumPropStages)
		for st := obs.PropStage(0); st < obs.NumPropStages; st++ {
			cs.Stages[st.String()] = tl.StageHist(st).Snapshot()
		}
		all := tl.AllHist()
		cs.CommitToApplyP50Micros = float64(all.Quantile(0.50)) / 1e3
		cs.CommitToApplyP99Micros = float64(all.Quantile(0.99)) / 1e3
		cs.Timeline = tl.Tail(tail)
	}
	return cs
}

// ClusterStatus returns the follower-side cluster health document: the
// node's own replication state plus the pinned store's epoch horizons.
func (f *Follower) ClusterStatus() ClusterStatus {
	cs := ClusterStatus{Role: "follower"}
	fv := &FollowerView{
		PrimaryAddr:     f.addr,
		Connected:       f.Connected(),
		AppliedEpoch:    f.AppliedEpoch(),
		PrimaryReleased: f.PrimaryReleased(),
		LagEpochs:       f.Lag().Epochs,
		Reconnects:      f.Reconnects(),
	}
	if down, d := f.Down(); down {
		fv.DownForMS = float64(d.Microseconds()) / 1e3
	}
	cs.Follower = fv
	cs.ReleasedEpoch = fv.AppliedEpoch
	f.View(func(db *DB) {
		cs.Epoch = db.currentEpoch()
		cs.Shards = db.Shards()
		cs.Keys = db.Len()
	})
	return cs
}
