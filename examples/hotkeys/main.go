// hotkeys demonstrates *why* In-Cache-Line Logging wins: the same skewed
// update workload runs once with InCLL enabled and once in LOGGING mode
// (external log only), and the observability layer's counters are
// compared — no ad-hoc tallying, everything comes from db.Metrics().
//
// With InCLL, a hot key updated many times per epoch is logged once in its
// own cache line and never again; in LOGGING mode every first touch per
// node per epoch writes a 40-word pre-image, write-back, and fence. The
// undo breakdown (incll_perm / incll_val / extlog) makes the difference a
// single ratio, and the per-shard operation counters show how the skew
// spreads over a sharded keyspace.
package main

import (
	"fmt"
	"time"

	"incll"
)

const (
	keys    = 50_000
	updates = 400_000
)

// skewedKey is the workload's access pattern: ~97 hot keys take most of
// the writes, with a uniform trickle over the rest.
func skewedKey(i uint64) uint64 {
	if i%10 == 0 {
		return i % keys
	}
	return (i * i) % 97
}

func run(disableInCLL bool, shards int) (incll.Metrics, time.Duration) {
	db, _ := incll.Open(incll.Options{
		DisableInCLL:  disableInCLL,
		Shards:        shards,
		EpochInterval: 5 * time.Millisecond,
		FenceDelay:    300 * time.Nanosecond, // emulated NVM latency
	})
	defer db.Close()
	for i := uint64(0); i < keys; i++ {
		db.Put(incll.Key(i), i)
	}
	db.Checkpoint()
	base := db.Metrics() // preload baseline: report only the measured phase

	db.StartCheckpointer()
	t0 := time.Now()
	for i := uint64(0); i < updates; i++ {
		db.Put(incll.Key(skewedKey(i)), i)
	}
	elapsed := time.Since(t0)
	db.StopCheckpointer()

	m := db.Metrics()
	m.Undo.InCLLPerm -= base.Undo.InCLLPerm
	m.Undo.InCLLVal -= base.Undo.InCLLVal
	m.Undo.ExtLog -= base.Undo.ExtLog
	m.NVM = m.NVM.Sub(base.NVM)
	return m, elapsed
}

func main() {
	fmt.Printf("%dk skewed updates over %dk keys, 5ms epochs, 300ns emulated NVM latency\n",
		updates/1000, keys/1000)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"INCLL  ", false}, {"LOGGING", true}} {
		m, elapsed := run(mode.disable, 1)
		inCLL := m.Undo.InCLLPerm + m.Undo.InCLLVal
		fmt.Printf("%s  extlog=%-8d inCLLcaptures=%-8d inCLLratio=%.2f fences=%-8d stw p99=%v elapsed=%v\n",
			mode.name, m.Undo.ExtLog, inCLL, m.UndoInCLLRatio, m.NVM.Fences,
			time.Duration(m.CheckpointSTW.P99).Round(time.Microsecond),
			elapsed.Round(time.Millisecond))
	}
	fmt.Println("InCLL absorbs the hot keys in-line; the external log (and its fences) nearly vanish")

	// The same skew through the router: the hot tier concentrates on the
	// shards the ~97 hot keys hash to, visible in the per-shard operation
	// counters (the live series /metrics exports as incll_ops_total).
	fmt.Println()
	fmt.Println("per-shard access skew, 4 shards (same workload, from the per-shard put counters):")
	db, _ := incll.Open(incll.Options{Shards: 4, EpochInterval: 5 * time.Millisecond})
	defer db.Close()
	for i := uint64(0); i < keys; i++ {
		db.Put(incll.Key(i), i)
	}
	base := make([]int64, db.Shards())
	for s := range base {
		base[s] = db.ShardStats(s).Puts.Load()
	}
	db.StartCheckpointer()
	for i := uint64(0); i < updates; i++ {
		db.Put(incll.Key(skewedKey(i)), i)
	}
	db.StopCheckpointer()
	for s := 0; s < db.Shards(); s++ {
		puts := db.ShardStats(s).Puts.Load() - base[s]
		fmt.Printf("  shard %d: puts=%-8d (%.1f%%)\n", s, puts, 100*float64(puts)/float64(updates))
	}
}
