// hotkeys demonstrates *why* In-Cache-Line Logging wins: the same skewed
// update workload runs once with InCLL enabled and once in LOGGING mode
// (external log only), and the persistence-operation counters are compared.
//
// With InCLL, a hot key updated many times per epoch is logged once in its
// own cache line and never again; in LOGGING mode every first touch per
// node per epoch writes a 40-word pre-image, write-back, and fence.
package main

import (
	"fmt"
	"time"

	"incll"
)

func run(disableInCLL bool) (loggedNodes, inCLL, fences int64, elapsed time.Duration) {
	db, _ := incll.Open(incll.Options{
		DisableInCLL:  disableInCLL,
		EpochInterval: 5 * time.Millisecond,
		FenceDelay:    300 * time.Nanosecond, // emulated NVM latency
	})
	const keys = 50_000
	for i := uint64(0); i < keys; i++ {
		db.Put(incll.Key(i), i)
	}
	db.Checkpoint()
	nvm0 := db.NVMStats()

	db.StartCheckpointer()
	t0 := time.Now()
	// Zipf-flavoured updates: a few keys take most of the writes.
	for i := uint64(0); i < 400_000; i++ {
		k := (i * i) % 97 // ~97 hot keys
		if i%10 == 0 {
			k = i % keys // plus a uniform trickle
		}
		db.Put(incll.Key(k), i)
	}
	elapsed = time.Since(t0)
	db.StopCheckpointer()

	st := db.Stats()
	d := db.NVMStats().Sub(nvm0)
	return st.LoggedNodes.Load(), st.InCLLPerm.Load() + st.InCLLVal.Load(), d.Fences, elapsed
}

func main() {
	fmt.Println("400k skewed updates over 50k keys, 5ms epochs, 300ns emulated NVM latency")
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"INCLL  ", false}, {"LOGGING", true}} {
		logged, inCLL, fences, elapsed := run(mode.disable)
		fmt.Printf("%s  loggedNodes=%-8d inCLLcaptures=%-8d fences=%-8d elapsed=%v\n",
			mode.name, logged, inCLL, fences, elapsed.Round(time.Millisecond))
	}
	fmt.Println("InCLL absorbs the hot keys in-line; the external log (and its fences) nearly vanish")
}
