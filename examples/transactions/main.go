// Command transactions demonstrates crash-atomic multi-key transactions:
// a bank of accounts, a transfer committed across shards, a power failure
// that loses every dirty cache line before any checkpoint — and recovery
// replaying the committed transfer from its intent record, conserving the
// bank's total balance.
package main

import (
	"fmt"
	"log"

	"incll"
)

func main() {
	db, _ := incll.Open(incll.Options{Shards: 4})

	// A bank of 8 accounts with 1000 each, committed by a checkpoint.
	const accounts, initBal = 8, uint64(1000)
	for i := uint64(0); i < accounts; i++ {
		db.Put(incll.Key(i), initBal)
	}
	db.Checkpoint()

	// Transfer 250 from account 0 to accounts 1 and 2, atomically. The
	// three keys land on different shards; Commit is still one atomic,
	// immediately durable step.
	t := db.Begin()
	a0, _ := t.Get(incll.Key(0))
	a1, _ := t.Get(incll.Key(1))
	a2, _ := t.Get(incll.Key(2))
	t.Put(incll.Key(0), a0-250)
	t.Put(incll.Key(1), a1+150)
	t.Put(incll.Key(2), a2+100)
	if err := t.Commit(); err != nil {
		log.Fatalf("commit: %v", err)
	}
	fmt.Println("committed a 3-account transfer; no checkpoint since")

	// Power failure with nothing surviving from the cache: every plain
	// write since the last checkpoint is lost, but the committed transfer
	// is replayed from its fenced intent record.
	db.Put(incll.Key(7), 9999) // uncommitted plain write: will be lost
	db.SimulateCrash(0, 42)
	db, info := db.Reopen()
	fmt.Printf("recovered: status=%v transactions replayed=%d\n", info.Status, info.TxnsReplayed)

	var sum uint64
	for i := uint64(0); i < accounts; i++ {
		v, _ := db.Get(incll.Key(i))
		fmt.Printf("  account %d: %d\n", i, v)
		sum += v
	}
	fmt.Printf("total: %d (conserved: %v)\n", sum, sum == accounts*initBal)

	// One-shot batches use the same machinery.
	b := &incll.Batch{}
	b.Put(incll.Key(100), 1)
	b.Put(incll.Key(101), 2)
	if err := db.Apply(b); err != nil {
		log.Fatalf("apply: %v", err)
	}
	fmt.Println("applied a one-shot batch atomically")
	db.Close()
}
