// Crash-recovery demo: four workers append events to a durable ledger
// while the checkpointer ticks every 10ms, then the power fails.
//
// Fine-Grained Checkpointing guarantees the recovered state is exactly the
// state at the last committed epoch boundary. For an append-only ledger
// that means every worker's recovered events form a contiguous *prefix* of
// what it wrote — nothing torn, nothing reordered, at most one epoch lost.
package main

import (
	"fmt"
	"sync"
	"time"

	"incll"
)

const (
	workers       = 4
	eventsPerWkr  = 60_000 // appended while the checkpointer runs
	burst         = 5_000  // appended after the last checkpoint (will be lost)
	totalWritten  = eventsPerWkr + burst
	eventKeySpace = 1 << 32
)

// eventKey gives each worker a disjoint key range.
func eventKey(worker int, seq uint64) []byte {
	return incll.Key(uint64(worker)*eventKeySpace + seq)
}

// eventValue is a cheap integrity checksum so torn values would be caught.
func eventValue(worker int, seq uint64) uint64 {
	return seq*2654435761 + uint64(worker)
}

func main() {
	db, _ := incll.Open(incll.Options{
		Workers:       workers,
		EpochInterval: 10 * time.Millisecond,
	})
	db.StartCheckpointer()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := db.Handle(w)
			for seq := uint64(0); seq < eventsPerWkr; seq++ {
				h.Put(eventKey(w, seq), eventValue(w, seq))
			}
		}(w)
	}
	wg.Wait()

	// One last burst that no checkpoint will ever cover: the ticker is
	// stopped, so these appends live only in the (transient) cache.
	db.StopCheckpointer()
	for w := 0; w < workers; w++ {
		h := db.Handle(w)
		for seq := uint64(eventsPerWkr); seq < totalWritten; seq++ {
			h.Put(eventKey(w, seq), eventValue(w, seq))
		}
	}

	// Lights out mid-epoch: the burst above is at the crash's mercy.
	db.SimulateCrash(0.4, time.Now().UnixNano()%997)
	db, info := db.Reopen()
	fmt.Printf("recovered: %v (replayed %d log pre-images)\n", info.Status, info.LogEntriesApplied)

	for w := 0; w < workers; w++ {
		// Walk the worker's range in order — a bounded cursor ends exactly
		// at the next worker's keyspace; events must be a contiguous,
		// checksum-valid prefix of the written sequence.
		var count uint64
		bad := ""
		for k, v := range db.Range(eventKey(w, 0), eventKey(w+1, 0)) {
			if string(k) != string(eventKey(w, count)) {
				bad = "gap in sequence: not a prefix"
				break
			}
			if incll.DecodeValue(v) != eventValue(w, count) {
				bad = "checksum mismatch: torn event"
				break
			}
			count++
			if count >= totalWritten {
				break
			}
		}
		if bad != "" {
			panic(fmt.Sprintf("worker %d: %s", w, bad))
		}
		lost := totalWritten - count
		fmt.Printf("worker %d: %d/%d events durable (%d lost to the failed epoch)\n",
			w, count, uint64(totalWritten), lost)
	}
	fmt.Println("every ledger recovered to a clean prefix — no tearing, no reordering")
}
