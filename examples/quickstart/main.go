// Quickstart: open a durable Masstree, write through a crash, recover.
package main

import (
	"fmt"

	"incll"
)

func main() {
	db, info := incll.Open(incll.Options{})
	fmt.Println("opened:", info.Status)

	// Normal-path writes: no flushes, no fences.
	for i := uint64(0); i < 10_000; i++ {
		db.Put(incll.Key(i), i*i)
	}
	// An epoch boundary commits everything written so far. A real
	// deployment runs db.StartCheckpointer() for a 64ms cadence instead.
	lines := db.Checkpoint()
	fmt.Printf("checkpoint flushed %d cache lines\n", lines)

	// These writes happen in the next epoch and will be lost in the crash
	// below — that is the fine-grained checkpointing contract: at most one
	// epoch (64ms) of work is rolled back.
	for i := uint64(0); i < 10_000; i++ {
		db.Put(incll.Key(i), 0xBAD)
	}

	db.SimulateCrash(0.5, 2024) // power failure; half the cache survives
	db, info = db.Reopen()
	fmt.Printf("recovered: %v (replayed %d log pre-images, %d failed epochs)\n",
		info.Status, info.LogEntriesApplied, info.FailedEpochs)

	v, ok := db.Get(incll.Key(123))
	fmt.Printf("key 123 = %d (present=%v, want %d)\n", v, ok, 123*123)

	sum := uint64(0)
	n := db.Scan(incll.Key(0), 5, func(k []byte, v uint64) bool {
		sum += v
		return true
	})
	fmt.Printf("scanned %d keys, sum=%d\n", n, sum)

	db.Close()
	fmt.Println("clean shutdown")
}
