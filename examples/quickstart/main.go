// Quickstart: open a durable Masstree, write through a crash, recover.
package main

import (
	"fmt"

	"incll"
)

func main() {
	db, info := incll.Open(incll.Options{})
	fmt.Println("opened:", info.Status)

	// Normal-path writes: no flushes, no fences.
	for i := uint64(0); i < 10_000; i++ {
		db.Put(incll.Key(i), i*i)
	}
	// An epoch boundary commits everything written so far. A real
	// deployment runs db.StartCheckpointer() for a 64ms cadence instead.
	lines := db.Checkpoint()
	fmt.Printf("checkpoint flushed %d cache lines\n", lines)

	// These writes happen in the next epoch and will be lost in the crash
	// below — that is the fine-grained checkpointing contract: at most one
	// epoch (64ms) of work is rolled back.
	for i := uint64(0); i < 10_000; i++ {
		db.Put(incll.Key(i), 0xBAD)
	}

	db.SimulateCrash(0.5, 2024) // power failure; half the cache survives
	db, info = db.Reopen()
	fmt.Printf("recovered: %v (replayed %d log pre-images, %d failed epochs)\n",
		info.Status, info.LogEntriesApplied, info.FailedEpochs)

	v, ok := db.Get(incll.Key(123))
	fmt.Printf("key 123 = %d (present=%v, want %d)\n", v, ok, 123*123)

	// Range reads are first-class cursors; the range-over-func adapters
	// make them read like a map loop.
	sum, n := uint64(0), 0
	for _, v := range db.Range(incll.Key(0), incll.Key(5)) {
		sum += incll.DecodeValue(v)
		n++
	}
	fmt.Printf("ranged over %d keys, sum=%d\n", n, sum)

	// The manual cursor is bidirectional: the three largest values.
	it := db.NewIter(incll.IterOptions{})
	fmt.Print("three largest values:")
	for ok, c := it.Last(), 0; ok && c < 3; ok, c = it.Prev(), c+1 {
		fmt.Printf(" %d", it.ValueUint64())
	}
	it.Close()
	fmt.Println()

	db.Close()
	fmt.Println("clean shutdown")
}
