// kvserver runs an HTTP key-value API over the durable Masstree, the
// "rapid restart" scenario the paper's introduction motivates: the store
// checkpoints every 64ms in the background, and because recovery is lazy,
// a restarted server answers its first request in milliseconds instead of
// rebuilding indexes from a disk image.
//
// With -shards N the keyspace is partitioned across N independent
// store+arena shards with coordinated cross-shard checkpoints: /crash then
// fails and recovers the whole cluster atomically, and /stats reports the
// per-shard traffic split next to the aggregate.
//
// With -serve-repl the node also serves the replication protocol to
// networked followers, and with -follow it runs as a read-only follower
// of another kvserver, converging over TCP and serving watermark-gated
// reads. Together they form a primary/follower cluster with manual
// failover (POST /promote on a follower, POST /follow to re-point).
//
//	go run ./examples/kvserver -addr :8080 -shards 4 -serve-repl :9090
//	go run ./examples/kvserver -addr :8081 -follow 127.0.0.1:9090
//
//	PUT  /kv/{key}?v=42     store a value (primary only; echoes X-Incll-Epoch)
//	GET  /kv/{key}          read a value (?minepoch=E gates on the watermark)
//	GET  /range?start=k&n=10  ordered range read
//	GET  /snapshot          stream a consistent online backup (see below)
//	GET  /digest            order+byte digest of the full keyspace (cluster equality checks)
//	POST /promote           follower only: become a standalone primary
//	POST /follow?addr=A     become (or re-point) a follower of A's replication port
//	POST /crash?persist=0.5 simulate a power failure + instant recovery
//	POST /reshard?shards=8  online split/merge to a new shard count
//	GET  /reshard           live reshard progress (phase, copy counters)
//	GET  /stats             logging and persistence counters, per shard
//	GET  /metrics           Prometheus text exposition (scrape me)
//	GET  /metrics/history   ring of recent metric snapshots + rates (JSON)
//	GET  /cluster           cluster health: role, peers, propagation latency (JSON)
//	GET  /healthz           liveness + role/lag; ?ready = readiness probe
//	GET  /trace             the phase trace: checkpoints, recoveries
//	GET  /debug/vars        expvar, including the typed metrics snapshot
//	GET  /debug/pprof/      Go profiling endpoints (with -pprof)
//
// /snapshot streams a consistent full backup of the live store —
// checksummed frames anchored at a committed epoch — without pausing
// writers (curl it while load runs; restore with incll.Restore or
// `incll-repl -mode restore`). -pprof exposes /debug/pprof/ (CPU and heap
// profiles, execution traces); -anomaly-stw / -anomaly-op / -anomaly-lag
// arm the flight recorder, which dumps trace+metrics+goroutines+cluster
// state to a directory when a checkpoint pause, the op tail latency, or a
// replication peer's lag breaches the threshold.
// SIGINT/SIGTERM shut down gracefully:
// in-flight requests drain, then the store closes with a final durable
// checkpoint, so the next start is a clean restart.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"incll"
)

type server struct {
	mu        sync.RWMutex    // guards role/db swaps (crash, promote, follow)
	db        *incll.DB       // primary store; nil while following
	fol       *incll.Follower // non-nil while this node is a follower
	rs        *incll.ReplServer
	stopWatch func() // anomaly watchdog on the current db, nil when unarmed
}

// startObs arms the metric recorder (backing /metrics/history) and, when
// thresholds were given, the anomaly watchdog on db. Called at open and
// again after every /crash swap, since both are bound to one DB instance.
func (s *server) startObs(db *incll.DB, stw, op time.Duration, lag uint64) {
	db.StartRecorder(time.Second, 600) // ten minutes of one-second points
	if stw <= 0 && op <= 0 && lag == 0 {
		return
	}
	s.stopWatch = db.StartWatchdog(incll.WatchdogConfig{
		STWThreshold:       stw,
		OpLatencyThreshold: op,
		LagThreshold:       lag,
		OnDump: func(dir, reason string) {
			log.Printf("anomaly (%s): flight record dumped to %s", reason, dir)
		},
	})
}

// withDB runs f against the node's current store — the primary DB, or a
// follower's current bootstrap. The read lock pins the role for f's
// lifetime; on a follower, View additionally pins the current bootstrap
// generation so a mid-request reconnect cannot close the store under f.
func (s *server) withDB(f func(db *incll.DB)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.fol != nil {
		s.fol.View(f)
		return
	}
	f(s.db)
}

// follower returns the Follower while this node has that role.
func (s *server) follower() *incll.Follower {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fol
}

// serveReplOn starts serving replication on addr (primary role).
func (s *server) serveReplOn(db *incll.DB, addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	rs, err := db.ServeReplication(lis, incll.ReplServerOptions{Logf: log.Printf})
	if err != nil {
		lis.Close()
		return err
	}
	s.rs = rs
	log.Printf("serving replication on %s", rs.Addr())
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "keyspace shards with coordinated checkpoints")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/")
	anomalySTW := flag.Duration("anomaly-stw", 0, "dump a flight record when a checkpoint pause exceeds this (0 = off)")
	anomalyOp := flag.Duration("anomaly-op", 0, "dump a flight record when windowed op p99 exceeds this (0 = off)")
	anomalyLag := flag.Uint64("anomaly-lag", 0, "dump a flight record when any replication peer lags more than this many epochs (0 = off)")
	serveRepl := flag.String("serve-repl", "", "serve the replication protocol to followers on this address (also used after /promote)")
	follow := flag.String("follow", "", "start as a follower of this primary replication address")
	replID := flag.String("repl-id", "", "follower identity on the primary (default: local address)")
	readyLag := flag.Uint64("ready-lag", 64, "readiness threshold: /healthz?ready fails when follower lag exceeds this many epochs")
	flag.Parse()

	opts := incll.Options{ArenaWords: (1 << 25) / uint64(max(*shards, 1)), Shards: *shards}
	srv := &server{}
	if *follow != "" {
		fol, err := incll.FollowPrimary(*follow, incll.FollowerOptions{
			Options: opts, ID: *replID, Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("follow %s: %v", *follow, err)
		}
		srv.fol = fol
		fol.StartRecorder(time.Second, 600) // survives re-bootstraps
		log.Printf("following %s: bootstrapped %d keys at epoch %d", *follow,
			fol.BootstrapInfo().Keys, fol.AppliedEpoch())
	} else {
		db, info := incll.Open(opts)
		db.StartCheckpointer()
		log.Printf("store opened (%v, %d shard(s)), checkpointing every 64ms", info.Status, db.Shards())
		srv.db = db
		srv.startObs(db, *anomalySTW, *anomalyOp, *anomalyLag)
		if *serveRepl != "" {
			if err := srv.serveReplOn(db, *serveRepl); err != nil {
				log.Fatalf("serve-repl %s: %v", *serveRepl, err)
			}
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", func(w http.ResponseWriter, r *http.Request) {
		key := []byte(strings.TrimPrefix(r.URL.Path, "/kv/"))
		if len(key) == 0 {
			http.Error(w, "empty key", http.StatusBadRequest)
			return
		}
		srv.mu.RLock()
		defer srv.mu.RUnlock()
		fol := srv.fol
		db := srv.db // nil while following; follower reads pin via View below
		switch r.Method {
		case http.MethodPut, http.MethodPost:
			if fol != nil {
				http.Error(w, "read-only follower; write to the primary", http.StatusConflict)
				return
			}
			v, err := strconv.ParseUint(r.URL.Query().Get("v"), 10, 64)
			if err != nil {
				http.Error(w, "bad value", http.StatusBadRequest)
				return
			}
			inserted := db.Put(key, v)
			// The commit epoch E: a follower whose applied watermark has
			// reached E is guaranteed to serve this write — pass it back
			// as ?minepoch=E for read-your-writes on any follower.
			w.Header().Set("X-Incll-Epoch", strconv.FormatUint(db.CurrentEpoch(), 10))
			fmt.Fprintf(w, "ok inserted=%v\n", inserted)
		case http.MethodGet:
			if me := r.URL.Query().Get("minepoch"); me != "" && fol != nil {
				need, err := strconv.ParseUint(me, 10, 64)
				if err != nil {
					http.Error(w, "bad minepoch", http.StatusBadRequest)
					return
				}
				if have := fol.AppliedEpoch(); need > have {
					// The watermark read rule: never serve a read the
					// follower has not yet caught up to — fail typed and
					// let the client retry (here or on another follower).
					w.Header().Set("X-Incll-Applied", strconv.FormatUint(have, 10))
					w.Header().Set("Retry-After", "1")
					http.Error(w, fmt.Sprintf("replica lagging: need epoch %d, applied %d", need, have),
						http.StatusServiceUnavailable)
					return
				}
			}
			if fol != nil {
				w.Header().Set("X-Incll-Applied", strconv.FormatUint(fol.AppliedEpoch(), 10))
			}
			read := func(db *incll.DB) {
				v, ok := db.Get(key)
				if !ok {
					http.NotFound(w, r)
					return
				}
				fmt.Fprintf(w, "%d\n", v)
			}
			if fol != nil {
				// View pins the current bootstrap generation: a reconnect
				// swapping the follower store mid-read cannot close it here.
				if fol.View(read) != nil {
					http.Error(w, "follower closed", http.StatusServiceUnavailable)
				}
				return
			}
			read(db)
		case http.MethodDelete:
			if fol != nil {
				http.Error(w, "read-only follower; write to the primary", http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "deleted=%v\n", db.Delete(key))
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/range", func(w http.ResponseWriter, r *http.Request) {
		start := []byte(r.URL.Query().Get("start"))
		end := []byte(r.URL.Query().Get("end")) // exclusive; empty = open
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		if n <= 0 {
			n = 10
		}
		reverse := r.URL.Query().Get("reverse") != ""
		srv.withDB(func(db *incll.DB) {
			o := incll.IterOptions{}
			if len(start) > 0 {
				o.LowerBound = start
			}
			if len(end) > 0 {
				o.UpperBound = end
			}
			it := db.NewIter(o)
			defer it.Close()
			emit := func() { fmt.Fprintf(w, "%s=%d\n", it.Key(), it.ValueUint64()) }
			if reverse {
				// Descending over the same [start, end) window.
				for ok, c := it.Last(), 0; ok && c < n; ok, c = it.Prev(), c+1 {
					emit()
				}
				return
			}
			for ok, c := it.First(), 0; ok && c < n; ok, c = it.Next(), c+1 {
				emit()
			}
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", "attachment; filename=store.snap")
		srv.withDB(func(db *incll.DB) {
			info, err := db.Snapshot(w)
			if err != nil {
				// Headers are gone; all we can do is cut the stream so the
				// client's restore fails its checksum instead of trusting a
				// silent truncation.
				log.Printf("snapshot aborted: %v", err)
				return
			}
			log.Printf("snapshot streamed: %d keys, %d bytes, anchor epoch %d",
				info.Keys, info.Bytes, info.AnchorEpoch)
		})
	})
	mux.HandleFunc("/crash", func(w http.ResponseWriter, r *http.Request) {
		persist := 0.5
		if p := r.URL.Query().Get("persist"); p != "" {
			persist, _ = strconv.ParseFloat(p, 64)
		}
		// TryLock, not Lock: a long-running /snapshot download holds the
		// read lock, and a blocked writer would make every subsequent
		// request queue behind it — one slow client must not wedge the
		// whole server. The caller retries once the snapshot finishes.
		if !srv.mu.TryLock() {
			http.Error(w, "snapshot or crash in progress; retry", http.StatusServiceUnavailable)
			return
		}
		defer srv.mu.Unlock()
		if srv.fol != nil {
			http.Error(w, "follower: kill the process instead (the store is a replica)", http.StatusConflict)
			return
		}
		if srv.rs != nil {
			// A simulated crash kills the replication server with the DB;
			// the recovered instance serves it again on the same address.
			srv.rs = nil
		}
		t0 := time.Now()
		if srv.stopWatch != nil {
			srv.stopWatch() // bound to the dying db instance
			srv.stopWatch = nil
		}
		srv.db.SimulateCrash(persist, time.Now().UnixNano())
		ndb, info := srv.db.Reopen()
		ndb.StartCheckpointer()
		srv.db = ndb
		srv.startObs(ndb, *anomalySTW, *anomalyOp, *anomalyLag)
		if *serveRepl != "" {
			if err := srv.serveReplOn(ndb, *serveRepl); err != nil {
				log.Printf("serve-repl after crash: %v", err)
			}
		}
		fmt.Fprintf(w, "crashed and recovered in %v: %v, replayed %d pre-images\n",
			time.Since(t0), info.Status, info.LogEntriesApplied)
		for i, sr := range info.Shards {
			fmt.Fprintf(w, "  shard %d: %v, %d pre-images, epoch %d\n",
				i, sr.Status, sr.LogEntriesApplied, sr.Epoch)
		}
	})
	mux.HandleFunc("/reshard", func(w http.ResponseWriter, r *http.Request) {
		// GET reports live progress; POST runs an online split/merge. Both
		// go through withDB: Reshard swaps the engine inside the DB, so the
		// *DB pointer handlers hold stays valid throughout — only /crash
		// replaces the instance itself.
		if r.Method == http.MethodGet {
			srv.withDB(func(db *incll.DB) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(db.ReshardProgress())
			})
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		n, err := strconv.Atoi(r.URL.Query().Get("shards"))
		if err != nil || n < 1 {
			http.Error(w, "bad shards", http.StatusBadRequest)
			return
		}
		if srv.follower() != nil {
			http.Error(w, "follower: reshard the primary", http.StatusConflict)
			return
		}
		srv.withDB(func(db *incll.DB) {
			t0 := time.Now()
			res, err := db.Reshard(n)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			log.Printf("resharded %d→%d in %v (cutover pause %v, %d keys copied)",
				res.From, res.To, time.Since(t0), res.CutoverPause, res.CopiedKeys)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				incll.ReshardResult
				CutoverPauseMS float64 `json:"cutover_pause_ms"`
				TookMS         float64 `json:"took_ms"`
			}{res, float64(res.CutoverPause.Microseconds()) / 1000,
				float64(res.Took.Microseconds()) / 1000})
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		srv.withDB(func(db *incll.DB) {
			st := db.Stats()
			fmt.Fprintf(w, "puts=%d gets=%d deletes=%d scans=%d\n",
				st.Puts.Load(), st.Gets.Load(), st.Deletes.Load(), st.Scans.Load())
			fmt.Fprintf(w, "loggedNodes=%d inCLLperm=%d inCLLval=%d lazyRecoveries=%d\n",
				st.LoggedNodes.Load(), st.InCLLPerm.Load(), st.InCLLVal.Load(), st.LazyRecoveries.Load())
			fmt.Fprintf(w, "nvm: %v\n", db.NVMStats())
			if db.Shards() > 1 {
				total := st.Puts.Load() + st.Gets.Load() + st.Deletes.Load() + st.Scans.Load()
				for i := 0; i < db.Shards(); i++ {
					ss := db.ShardStats(i)
					ops := ss.Puts.Load() + ss.Gets.Load() + ss.Deletes.Load() + ss.Scans.Load()
					pct := 0.0
					if total > 0 {
						pct = 100 * float64(ops) / float64(total)
					}
					fmt.Fprintf(w, "shard %d: puts=%d gets=%d deletes=%d scans=%d (%.1f%% of ops)\n",
						i, ss.Puts.Load(), ss.Gets.Load(), ss.Deletes.Load(), ss.Scans.Load(), pct)
				}
			}
		})
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		srv.withDB(func(db *incll.DB) {
			if err := db.WriteMetrics(w); err != nil {
				log.Printf("metrics scrape aborted: %v", err)
			}
		})
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		srv.withDB(func(db *incll.DB) {
			if err := db.WriteMetricsHistory(w); err != nil {
				log.Printf("metrics history aborted: %v", err)
			}
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness vs readiness, split by the ?ready query:
		//
		//   - Liveness (default) answers "should this process be
		//     restarted?" — 200 while the store can execute a read at
		//     all, regardless of role or replication lag. A lagging
		//     follower is alive; restarting it would only force a full
		//     re-bootstrap and make the lag worse.
		//   - Readiness (?ready) answers "should this node receive
		//     traffic?" — a follower is ready only while connected to
		//     its primary with replication lag at most -ready-lag
		//     epochs; beyond that its reads are too stale to serve and
		//     the probe fails with 503 so load balancers drain it. A
		//     primary is always ready once it serves.
		//
		// Both probe via a real read: a wedged store (not just a wedged
		// mux) fails. The key never exists; the probe is the lookup.
		_, ready := r.URL.Query()["ready"]
		srv.mu.RLock()
		defer srv.mu.RUnlock()
		role, applied, lag := "primary", uint64(0), uint64(0)
		probe := func(db *incll.DB) { db.Get([]byte("\x00healthz\x00")) }
		if srv.fol != nil {
			role = "follower"
			applied = srv.fol.AppliedEpoch()
			lag = srv.fol.Lag().Epochs
			if ready {
				if !srv.fol.Connected() {
					http.Error(w, fmt.Sprintf("not ready: disconnected from primary (applied epoch %d)", applied),
						http.StatusServiceUnavailable)
					return
				}
				if lag > *readyLag {
					http.Error(w, fmt.Sprintf("not ready: lag %d epochs exceeds %d", lag, *readyLag),
						http.StatusServiceUnavailable)
					return
				}
			}
			// View pins the store so a mid-probe reconnect swap is safe.
			if srv.fol.View(probe) != nil {
				http.Error(w, "follower closed", http.StatusServiceUnavailable)
				return
			}
		} else {
			applied = srv.db.ReleasedEpoch()
			probe(srv.db)
		}
		fmt.Fprintf(w, "ok role=%s applied=%d lag=%d\n", role, applied, lag)
	})
	mux.HandleFunc("/digest", func(w http.ResponseWriter, r *http.Request) {
		// An order- and byte-exact digest of the whole keyspace
		// (length-prefixed FNV-1a over the ascending scan), for cheap
		// cluster-equality checks: two nodes with equal digests hold
		// byte-identical stores.
		srv.withDB(func(db *incll.DB) {
			h := fnv.New64a()
			var n uint64
			var lenb [8]byte
			for k, v := range db.All() {
				binary.LittleEndian.PutUint64(lenb[:], uint64(len(k)))
				h.Write(lenb[:])
				h.Write(k)
				binary.LittleEndian.PutUint64(lenb[:], uint64(len(v)))
				h.Write(lenb[:])
				h.Write(v)
				n++
			}
			fmt.Fprintf(w, "fnv=%016x keys=%d\n", h.Sum64(), n)
		})
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		srv.mu.Lock()
		defer srv.mu.Unlock()
		if srv.fol == nil {
			http.Error(w, "already a primary", http.StatusConflict)
			return
		}
		db, err := srv.fol.Promote()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		srv.fol = nil
		srv.db = db
		db.StartCheckpointer()
		srv.startObs(db, *anomalySTW, *anomalyOp, *anomalyLag)
		if *serveRepl != "" {
			if err := srv.serveReplOn(db, *serveRepl); err != nil {
				log.Printf("serve-repl after promote: %v", err)
			}
		}
		log.Printf("promoted to primary at epoch %d", db.ReleasedEpoch())
		fmt.Fprintf(w, "promoted role=primary epoch=%d\n", db.ReleasedEpoch())
	})
	mux.HandleFunc("/follow", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			http.Error(w, "need ?addr=host:port", http.StatusBadRequest)
			return
		}
		// Follow the new primary first — only once its bootstrap succeeds
		// is the old role torn down, so a bad address leaves the node as
		// it was.
		fol, err := incll.FollowPrimary(addr, incll.FollowerOptions{
			Options: opts, ID: *replID, Logf: log.Printf,
		})
		if err != nil {
			http.Error(w, fmt.Sprintf("follow %s: %v", addr, err), http.StatusBadGateway)
			return
		}
		srv.mu.Lock()
		old, oldFol, oldRS := srv.db, srv.fol, srv.rs
		srv.db, srv.fol, srv.rs = nil, fol, nil
		if srv.stopWatch != nil {
			srv.stopWatch()
			srv.stopWatch = nil
		}
		srv.mu.Unlock()
		if oldRS != nil {
			oldRS.Close()
		}
		if oldFol != nil {
			oldFol.Close()
		}
		if old != nil {
			old.Close()
		}
		log.Printf("now following %s from epoch %d", addr, fol.AppliedEpoch())
		fmt.Fprintf(w, "following %s role=follower applied=%d\n", addr, fol.AppliedEpoch())
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		// One node's cluster health document (DESIGN.md §15): role, epoch
		// horizons, and — on a primary — the per-peer replication progress
		// and commit-to-apply propagation latency. incll-top polls this.
		srv.mu.RLock()
		defer srv.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		var cs incll.ClusterStatus
		if srv.fol != nil {
			cs = srv.fol.ClusterStatus()
		} else {
			cs = srv.db.ClusterStatus()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cs)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		srv.withDB(func(db *incll.DB) {
			if err := db.DumpTrace(w); err != nil {
				log.Printf("trace dump aborted: %v", err)
			}
		})
	})
	// The typed snapshot under expvar's conventional endpoint. Published
	// through srv so /crash swapping in a recovered DB swaps the metrics
	// source too.
	expvar.Publish("incll", expvar.Func(func() any {
		srv.mu.RLock()
		defer srv.mu.RUnlock()
		if srv.fol != nil {
			var m any
			srv.fol.View(func(db *incll.DB) { m = db.Metrics() })
			return m
		}
		return srv.db.Metrics()
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	if *pprofOn {
		// The custom mux doesn't inherit net/http/pprof's DefaultServeMux
		// registrations; wire them explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// The write timeout bounds how long a wedged client can pin a
	// /snapshot handler (the journal's pinned-retention grace cap bounds
	// the memory side independently).
	hs := &http.Server{Addr: *addr, Handler: mux, WriteTimeout: 10 * time.Minute}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining requests, then closing the store")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("http shutdown: %v", err)
		}
		// Drain deadline blown (e.g. a slow /snapshot download): force the
		// connections closed so the lingering handlers abort — their writes
		// fail, the client's restore fails its checksum — and release the
		// store lock the final Close below waits on.
		hs.Close()
	}
	// withDB holds the read lock for a handler's whole lifetime, so this
	// write lock cannot be acquired while any handler still uses the DB:
	// Close never races an in-flight request.
	srv.mu.Lock()
	if srv.fol != nil {
		srv.fol.Close()
	} else {
		// Final checkpoint + durable clean-shutdown mark; any replication
		// followers drain the final epoch before their connections close.
		srv.db.Close()
	}
	srv.mu.Unlock()
	log.Printf("store closed cleanly")
}
