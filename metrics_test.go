package incll

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"incll/internal/obs"
)

// scrape renders and re-parses the DB's /metrics output, linting it on
// the way: every test that reads a value also proves the exposition is
// well-formed.
func scrape(t *testing.T, db *DB) *obs.Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if err := obs.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return exp
}

// TestMetricsEndToEnd is the acceptance gate: force checkpoints, scrape,
// and assert the stop-the-world histogram and journal watermarks came
// through, on both an unsharded and a sharded DB.
func TestMetricsEndToEnd(t *testing.T) {
	for _, shards := range []int{1, 2} {
		db, _ := Open(Options{Shards: shards, ArenaWords: 1 << 22})
		for i := uint64(0); i < 500; i++ {
			db.Put(Key(i), i)
		}
		db.Get(Key(1))
		db.Delete(Key(499))
		stream := db.Changes() // attach the journal so its gauges go live
		db.Checkpoint()
		db.Checkpoint()

		exp := scrape(t, db)
		count, err := exp.Value("incll_checkpoint_stw_seconds_count")
		if err != nil {
			t.Fatalf("shards=%d: stw count: %v", shards, err)
		}
		if count < float64(2*shards) {
			t.Fatalf("shards=%d: stw histogram has %v samples, want >= %d", shards, count, 2*shards)
		}
		sum, err := exp.Value("incll_checkpoint_stw_seconds_sum")
		if err != nil || sum <= 0 {
			t.Fatalf("shards=%d: stw sum = %v, %v; want > 0", shards, sum, err)
		}
		if exp.Find("incll_checkpoint_stw_seconds_bucket") == nil {
			t.Fatalf("shards=%d: no stw buckets exported", shards)
		}

		var puts float64
		for _, s := range exp.Samples {
			if s.Name == "incll_ops_total" && s.Label("op") == "put" {
				puts += s.Value
			}
		}
		if puts != 500 {
			t.Fatalf("shards=%d: incll_ops_total{op=put} sums to %v, want 500", shards, puts)
		}

		if v, err := exp.Value("incll_journal_released_epoch"); err != nil || v == 0 {
			t.Fatalf("shards=%d: journal released epoch = %v, %v; want > 0 after checkpoints", shards, v, err)
		}
		if v, err := exp.Value("incll_journal_subscribers"); err != nil || v != 1 {
			t.Fatalf("shards=%d: journal subscribers = %v, %v; want 1", shards, v, err)
		}

		// The typed snapshot agrees with the exposition.
		m := db.Metrics()
		if m.Ops.Puts != 500 || m.Shards != shards || !m.Journal.Attached {
			t.Fatalf("shards=%d: Metrics() = %+v", shards, m)
		}
		if m.CheckpointSTW.Count != int64(count) {
			t.Fatalf("shards=%d: snapshot stw count %d != exposition %v", shards, m.CheckpointSTW.Count, count)
		}
		stream.Close()
		db.Close()
	}
}

// TestReplicaLagGauges is the replication half of the acceptance gate: a
// follower serves its own lag gauges, and after CatchUp the lag reads
// zero while the applied-epoch watermark tracks the primary.
func TestReplicaLagGauges(t *testing.T) {
	primary, _ := Open(Options{ArenaWords: 1 << 22})
	defer primary.Close()
	for i := uint64(0); i < 300; i++ {
		primary.Put(Key(i), i)
	}
	rep, err := NewReplica(primary, Options{ArenaWords: 1 << 22})
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer rep.Close()
	for i := uint64(300); i < 400; i++ {
		primary.Put(Key(i), i)
	}
	primary.Checkpoint()
	if err := rep.CatchUp(); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}

	exp := scrape(t, rep.DB())
	applied, err := exp.Value("incll_replica_applied_epoch")
	if err != nil || applied == 0 {
		t.Fatalf("replica applied epoch = %v, %v; want > 0", applied, err)
	}
	if lag, err := exp.Value("incll_replica_lag_epochs"); err != nil || lag != 0 {
		t.Fatalf("replica lag after CatchUp = %v, %v; want 0", lag, err)
	}
	if _, err := exp.Value("incll_replica_lag_bytes"); err != nil {
		t.Fatalf("replica lag bytes: %v", err)
	}
	if want := float64(rep.AppliedEpoch()); applied != want {
		t.Fatalf("gauge applied epoch %v != AppliedEpoch %v", applied, want)
	}
}

// TestStatsConcurrentWithWritersAndTicker is the DB.Stats regression
// test: concurrent Stats readers, writers on distinct handles, and the
// background checkpointer must coexist (run under -race), and once
// writers quiesce the aggregate equals the per-shard sum exactly.
func TestStatsConcurrentWithWritersAndTicker(t *testing.T) {
	const workers, perWorker = 4, 2000
	db, _ := Open(Options{Shards: 4, Workers: workers, ArenaWords: 1 << 22,
		EpochInterval: time.Millisecond})
	defer db.Close()
	db.StartCheckpointer()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := db.Stats()
				if st.Puts.Load() < 0 {
					panic("negative put count")
				}
				db.Metrics()
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			h := db.Handle(w)
			for i := 0; i < perWorker; i++ {
				k := Key(uint64(w)<<32 | uint64(i))
				h.Put(k, uint64(i))
				h.Get(k)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	db.StopCheckpointer()

	agg := db.Stats()
	var puts, gets int64
	for i := 0; i < db.Shards(); i++ {
		puts += db.ShardStats(i).Puts.Load()
		gets += db.ShardStats(i).Gets.Load()
	}
	if agg.Puts.Load() != puts || agg.Gets.Load() != gets {
		t.Fatalf("aggregate (%d puts, %d gets) != per-shard sum (%d, %d)",
			agg.Puts.Load(), agg.Gets.Load(), puts, gets)
	}
	if puts != workers*perWorker || gets != workers*perWorker {
		t.Fatalf("counted %d puts, %d gets; want %d each", puts, gets, workers*perWorker)
	}
}

// TestTraceRecordsProtocolEvents walks a checkpoint, a crash, and a
// recovery, and asserts the phase trace captured each protocol step.
func TestTraceRecordsProtocolEvents(t *testing.T) {
	db, _ := Open(Options{Shards: 2, ArenaWords: 1 << 22})
	for i := uint64(0); i < 200; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	for i := uint64(0); i < 200; i++ {
		db.Put(Key(i), i+1) // uncommitted tail, lost at the crash
	}
	db.SimulateCrash(0.5, 42)
	db2, _ := db.Reopen()
	defer db2.Close()

	kinds := make(map[obs.EventKind]int)
	for _, ev := range db2.TraceEvents() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.EventKind{obs.EvCheckpointPrepare, obs.EvCheckpointCommit, obs.EvCoordRecord} {
		if kinds[want] == 0 {
			t.Fatalf("trace has no %v events: %v", want, kinds)
		}
	}
	var buf bytes.Buffer
	if err := db2.DumpTrace(&buf); err != nil {
		t.Fatalf("DumpTrace: %v", err)
	}
	if !strings.Contains(buf.String(), "checkpoint_commit") {
		t.Fatalf("trace dump missing checkpoint_commit:\n%s", buf.String())
	}
}

// TestMetricsScrapeDoesNotAttachJournal guards the laziness invariant: a
// scrape must never activate the change journal.
func TestMetricsScrapeDoesNotAttachJournal(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22})
	defer db.Close()
	db.Put(Key(1), 1)
	exp := scrape(t, db)
	if v, err := exp.Value("incll_journal_subscribers"); err != nil || v != 0 {
		t.Fatalf("journal subscribers = %v, %v; want 0", v, err)
	}
	if db.Metrics().Journal.Attached {
		t.Fatal("Metrics() attached the change journal")
	}
	if db.hubIfAttached() != nil {
		t.Fatal("scrape attached the hub")
	}
}

// TestExpvarSnapshot exercises the expvar adapter shape.
func TestExpvarSnapshot(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 22})
	defer db.Close()
	db.Put(Key(7), 7)
	v := db.Expvar()()
	m, ok := v.(Metrics)
	if !ok {
		t.Fatalf("Expvar() returned %T, want Metrics", v)
	}
	if m.Ops.Puts != 1 {
		t.Fatalf("expvar snapshot puts = %d, want 1", m.Ops.Puts)
	}
}
