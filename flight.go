package incll

// The anomaly flight recorder (see DESIGN.md §12): when a latency
// threshold is breached — a checkpoint stop-the-world spike or a sampled
// operation-phase spike — the watchdog dumps everything the DB knows to a
// directory, so the protocol steps and resource state leading into the
// anomaly survive for post-mortem even if the process is about to die.
//
// A dump is a directory flight-<reason>-<nanos>/ containing:
//
//	trace.txt      the phase-trace ring (DumpTrace), oldest first, headed
//	               by the triggering reason and measured value
//	metrics.prom   the Prometheus exposition at dump time (WriteMetrics)
//	metrics.json   the typed Metrics snapshot, attribution included
//	goroutines.txt the full goroutine profile (what was blocked, where)
//	cluster.json   the ClusterStatus document: peer table plus the
//	               epoch-timeline tail (see DESIGN.md §15)
//
// The watchdog evaluates *windowed* p99s: each tick diffs the histogram's
// bucket loads against the previous tick's, so one old spike cannot keep
// the alarm asserted forever. After a dump, a cooldown suppresses further
// dumps so a sustained anomaly produces one record, not a disk full.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"incll/internal/obs"
)

// WatchdogConfig parameterizes StartWatchdog. Zero values mean "use the
// default"; a zero threshold disables that check.
type WatchdogConfig struct {
	// STWThreshold triggers a dump when the checkpoint stop-the-world p99
	// over the last window exceeds it. 0 disables the check.
	STWThreshold time.Duration
	// OpLatencyThreshold triggers a dump when the sampled tree-descent
	// phase p99 over the last window exceeds it (descent is the phase every
	// sampled op ends with, so it tracks attributed op latency). 0 disables
	// the check; it is also inert when attribution is off.
	OpLatencyThreshold time.Duration
	// LagThreshold triggers a dump when any connected replication peer
	// trails the released horizon by more than this many epochs. 0
	// disables the check; it is inert unless this DB is serving
	// replication. Unlike the latency rules this is a level, not a
	// window: lag is already a point-in-time gauge.
	LagThreshold uint64
	// Interval is the evaluation cadence (default 1s).
	Interval time.Duration
	// Cooldown suppresses further dumps after one fires (default 1m).
	Cooldown time.Duration
	// Dir receives the dump directories. Default: $INCLL_TRACE_DIR if set
	// (the same place the crash-matrix CI artifacts go), else the OS temp
	// directory.
	Dir string
	// OnDump, if non-nil, is called after each dump with the dump
	// directory and the triggering reason ("stw", "op", or "lag"). Called
	// from the watchdog goroutine.
	OnDump func(dir, reason string)
}

func (c *WatchdogConfig) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.Dir == "" {
		c.Dir = os.Getenv("INCLL_TRACE_DIR")
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
}

// StartWatchdog launches the anomaly watchdog and returns its stop
// function (idempotent; Close does not stop it — the watchdog may outlive
// one DB instance's histograms but holds this instance's, so stop it
// before Reopen). Dump failures are reported through the phase trace, not
// returned: the watchdog must never take the process down.
func (db *DB) StartWatchdog(cfg WatchdogConfig) (stop func()) {
	cfg.setDefaults()
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go db.watchdogLoop(cfg, stopCh, done)
	var once bool
	return func() {
		if !once {
			once = true
			close(stopCh)
			<-done
		}
	}
}

func (db *DB) watchdogLoop(cfg WatchdogConfig, stopCh, done chan struct{}) {
	defer close(done)
	var descentHist *obs.Histogram
	if db.phases != nil {
		descentHist = db.phases.Hist(obs.PhaseDescent)
	}
	stwBins := db.stw.Bins()
	var descentBins []int64
	if descentHist != nil {
		descentBins = descentHist.Bins()
	}
	var lastDump time.Time
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-t.C:
		}
		reason, detail := "", ""
		cur := db.stw.Bins()
		if p99 := obs.BinsQuantile(obs.BinsSub(cur, stwBins), 0.99); cfg.STWThreshold > 0 && p99 > int64(cfg.STWThreshold) {
			reason, detail = "stw", fmt.Sprintf("stw_p99=%v threshold=%v", time.Duration(p99), cfg.STWThreshold)
		}
		stwBins = cur
		if descentHist != nil {
			cur := descentHist.Bins()
			if p99 := obs.BinsQuantile(obs.BinsSub(cur, descentBins), 0.99); cfg.OpLatencyThreshold > 0 && p99 > int64(cfg.OpLatencyThreshold) && reason == "" {
				reason, detail = "op", fmt.Sprintf("descent_p99=%v threshold=%v", time.Duration(p99), cfg.OpLatencyThreshold)
			}
			descentBins = cur
		}
		if cfg.LagThreshold > 0 && reason == "" {
			if srv := db.netCur.Load(); srv != nil {
				var worstID string
				var worst uint64
				for _, p := range srv.PeersSnapshot() {
					if p.LagEpochs > worst {
						worst, worstID = p.LagEpochs, p.ID
					}
				}
				if worst > cfg.LagThreshold {
					reason, detail = "lag", fmt.Sprintf("max_peer_lag_epochs=%d peer=%s threshold=%d", worst, worstID, cfg.LagThreshold)
				}
			}
		}
		if reason == "" || time.Since(lastDump) < cfg.Cooldown && !lastDump.IsZero() {
			continue
		}
		lastDump = time.Now()
		dir, err := db.dumpFlightRecord(cfg.Dir, reason, detail)
		if err != nil {
			// Leave a trace event behind instead of failing: the watchdog
			// runs unattended.
			db.trace.Record(obs.EvFlightDumpFailed, -1, db.currentEpoch(), 0, 0)
			continue
		}
		db.trace.Record(obs.EvFlightDump, -1, db.currentEpoch(), 0, 0)
		if cfg.OnDump != nil {
			cfg.OnDump(dir, reason)
		}
	}
}

// DumpFlightRecord writes a complete flight record under dir and returns
// the dump directory it created. Usable directly (e.g. from a SIGQUIT
// handler); the watchdog calls it on threshold breaches.
func (db *DB) DumpFlightRecord(dir, reason string) (string, error) {
	return db.dumpFlightRecord(dir, reason, "")
}

// dumpFlightRecord is DumpFlightRecord plus the watchdog's measured
// detail string ("stw_p99=... threshold=..."), which goes in the
// trace.txt header so the dump states what tripped it, not just why.
func (db *DB) dumpFlightRecord(dir, reason, detail string) (string, error) {
	out := filepath.Join(dir, fmt.Sprintf("flight-%s-%d", reason, time.Now().UnixNano()))
	if err := os.MkdirAll(out, 0o755); err != nil {
		return "", err
	}
	writeFile := func(name string, fill func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile("trace.txt", func(f *os.File) error {
		if _, err := fmt.Fprintf(f, "# flight record reason=%s", reason); err != nil {
			return err
		}
		if detail != "" {
			if _, err := fmt.Fprintf(f, " %s", detail); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
		return db.DumpTrace(f)
	}); err != nil {
		return "", err
	}
	if err := writeFile("metrics.prom", func(f *os.File) error { return db.WriteMetrics(f) }); err != nil {
		return "", err
	}
	if err := writeFile("metrics.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(db.Metrics())
	}); err != nil {
		return "", err
	}
	if err := writeFile("goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 1)
	}); err != nil {
		return "", err
	}
	// Cluster view: the peer table and the epoch-timeline tail at dump
	// time, so replication stalls leading into the anomaly survive too.
	cs := db.clusterStatus(flightTimelineTail)
	if err := writeFile("cluster.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(cs)
	}); err != nil {
		return "", err
	}
	db.trace.Record(obs.EvClusterDump, -1, db.currentEpoch(), 0, int64(len(cs.Peers)))
	return out, nil
}
