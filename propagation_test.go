package incll

// End-to-end epoch propagation tracing (DESIGN.md §15): a primary with
// two loopback followers under checkpointed write load must populate the
// per-peer commit-to-apply histograms and the per-stage breakdown, the
// timeline ring's stamps must be monotone per epoch (commit ≤ release ≤
// enqueue ≤ first send ≤ final send ≤ ack — all on the primary's clock),
// and /cluster's numbers must agree with the registry scrape.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"incll/internal/obs"
)

func TestPropagationTracingTwoFollowers(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	defer db.Close()
	fillMatrix(t, db, 100, 1)
	db.Checkpoint()

	rs := serveRepl(t, db)
	defer rs.Close()
	f1 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f1"})
	defer f1.Close()
	f2 := followT(t, rs.Addr().String(), FollowerOptions{ID: "f2"})
	defer f2.Close()

	// Checkpointed write load: every Checkpoint commits and releases an
	// epoch, so each round exercises the full release → enqueue → send →
	// ack pipeline for both peers.
	for i := 0; i < 30; i++ {
		if _, err := db.PutBytes([]byte(fmt.Sprintf("prop-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		db.Checkpoint()
	}
	rel := db.ReleasedEpoch()
	for _, f := range []*Follower{f1, f2} {
		if err := f.WaitWatermark(rel, 10*time.Second); err != nil {
			t.Fatalf("WaitWatermark(%d): %v (applied %d)", rel, err, f.AppliedEpoch())
		}
	}

	// Acks are watermarks swept by heartbeats, so a raced final-send can
	// be sampled one heartbeat late; wait for every peer sample to land.
	waitCond(t, "propagation samples", func() bool {
		p := db.Metrics().Propagation
		return p.Attached && p.SampledAcks > 0 &&
			p.PerPeer["f1"].Count > 0 && p.PerPeer["f2"].Count > 0
	})
	waitCond(t, "sample count stable", func() bool {
		a := db.Metrics().Propagation.SampledAcks
		time.Sleep(30 * time.Millisecond)
		return db.Metrics().Propagation.SampledAcks == a
	})

	met := db.Metrics().Propagation
	for _, stage := range []string{"release_wait", "queue_wait", "wire", "apply_ack"} {
		if met.Stages[stage].Count == 0 {
			t.Errorf("stage %s has no samples: %+v", stage, met.Stages)
		}
	}
	if met.CommitToApply.Count == 0 || met.CommitToApply.P99 <= 0 {
		t.Errorf("aggregate commit-to-apply empty: %+v", met.CommitToApply)
	}

	// The /cluster document and a /metrics scrape are built from the same
	// histograms and must agree (the load is quiesced, so no drift).
	cs := db.ClusterStatus()
	if cs.Role != "primary" || len(cs.Peers) != 2 {
		t.Fatalf("ClusterStatus role=%s peers=%d", cs.Role, len(cs.Peers))
	}
	var scrape bytes.Buffer
	if err := db.WriteMetrics(&scrape); err != nil {
		t.Fatal(err)
	}
	// The live two-peer exposition passes the linter: per-peer labeled
	// families emit HELP once and keep consistent label keys.
	if err := obs.CheckExposition(bytes.NewReader(scrape.Bytes())); err != nil {
		t.Fatalf("lint of live 2-peer scrape: %v", err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(scrape.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cs.Peers {
		if p.CommitToApplySamples == 0 || p.CommitToApplyP99Micros <= 0 {
			t.Errorf("peer %s: no propagation samples in /cluster: %+v", p.ID, p)
		}
		if p.CommitToApplyP50Micros > p.CommitToApplyP99Micros {
			t.Errorf("peer %s: p50 %v > p99 %v", p.ID, p.CommitToApplyP50Micros, p.CommitToApplyP99Micros)
		}
		n, err := exp.Value("incll_replnet_commit_to_apply_seconds_count", "peer", p.ID)
		if err != nil {
			t.Fatalf("peer %s count in scrape: %v", p.ID, err)
		}
		if int64(n) != p.CommitToApplySamples {
			t.Errorf("peer %s: scrape count %v != /cluster samples %d", p.ID, n, p.CommitToApplySamples)
		}
	}

	// Stage stamps are monotone per sampled epoch — everything is stamped
	// on the primary's clock, so ordering violations can only be bugs, not
	// clock skew.
	stamped := 0
	for _, e := range cs.Timeline {
		if e.Commit != 0 && e.Release != 0 && e.Release < e.Commit {
			t.Errorf("epoch %d: release %d < commit %d", e.Epoch, e.Release, e.Commit)
		}
		for _, p := range e.Peers {
			prev := e.Release
			for _, st := range []int64{p.Enqueue, p.FirstSend, p.FinalSend, p.Ack} {
				if st == 0 {
					continue
				}
				if st < prev {
					t.Errorf("epoch %d peer %s: stamp order violated: %+v", e.Epoch, p.Peer, p)
					break
				}
				prev = st
			}
			if p.Ack != 0 {
				stamped++
			}
		}
	}
	if stamped == 0 {
		t.Errorf("timeline tail has no fully-acked peer stamps: %+v", cs.Timeline)
	}
}

// TestFollowerClusterStatus pins the follower-side /cluster document.
func TestFollowerClusterStatus(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	fillMatrix(t, db, 50, 2)
	db.Checkpoint()

	rs := serveRepl(t, db)
	defer rs.Close()
	f := followT(t, rs.Addr().String(), FollowerOptions{ID: "fv"})
	defer f.Close()
	rel := db.ReleasedEpoch()
	if err := f.WaitWatermark(rel, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	cs := f.ClusterStatus()
	if cs.Role != "follower" || cs.Follower == nil {
		t.Fatalf("follower ClusterStatus: %+v", cs)
	}
	fv := cs.Follower
	if !fv.Connected || fv.AppliedEpoch < rel || fv.PrimaryAddr != rs.Addr().String() {
		t.Errorf("follower view: %+v (want connected, applied>=%d, addr=%s)", fv, rel, rs.Addr())
	}
	if cs.Keys == 0 || cs.Epoch == 0 {
		t.Errorf("follower store view empty: %+v", cs)
	}
	if len(cs.Peers) != 0 {
		t.Errorf("follower reports primary-side peers: %+v", cs.Peers)
	}
}
