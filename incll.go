// Package incll is a Go reproduction of "Fine-Grain Checkpointing with
// In-Cache-Line Logging" (Cohen, Aksun, Avni, Larus — ASPLOS 2019): a
// durable Masstree over (simulated) non-volatile memory whose normal-path
// mutations never flush or fence.
//
// Because Go exposes no cache-flush intrinsics and no layout control, all
// durable state lives in a simulated NVM arena with an explicit cache
// model (see internal/nvm and DESIGN.md). The simulation is faithful to
// the PCSO persistence model the paper assumes, and power failures can be
// injected at any quiesced point with an arbitrary subset of dirty cache
// lines surviving.
//
// Quick start:
//
//	db, _ := incll.Open(incll.Options{})
//	db.Put(incll.Key(1), 100)
//	db.Checkpoint()                  // commit epoch (normally a 64ms ticker)
//	db.SimulateCrash(0.5, 42)        // power failure, half the cache survives
//	db, _ = db.Reopen()              // recovery
//	v, ok := db.Get(incll.Key(1))    // 100, true
package incll

import (
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/nvm"
)

// Options sizes and parameterizes a DB.
type Options struct {
	// ArenaWords is the simulated NVM size in 8-byte words (default 2^24,
	// i.e. 128 MiB of simulated NVM).
	ArenaWords uint64
	// Workers is the number of concurrent worker threads that will use
	// Handle(i) (default 1).
	Workers int
	// HeapWords is the durable heap region size (default: half the arena).
	HeapWords uint64
	// LogSegWords is the per-worker external log segment (default 2^20).
	LogSegWords uint64
	// EpochInterval is the checkpoint cadence used by StartCheckpointer
	// (default 64ms, the paper's setting).
	EpochInterval time.Duration
	// FenceDelay emulates NVM write latency after each fence.
	FenceDelay time.Duration
	// DisableInCLL turns off in-cache-line logging (the paper's LOGGING
	// ablation): strictly more external logging, same crash guarantees.
	DisableInCLL bool
}

func (o *Options) setDefaults() {
	if o.ArenaWords == 0 {
		o.ArenaWords = 1 << 24
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.HeapWords == 0 {
		o.HeapWords = o.ArenaWords / 2
	}
	if o.LogSegWords == 0 {
		o.LogSegWords = 1 << 20
	}
	if o.EpochInterval == 0 {
		o.EpochInterval = 64 * time.Millisecond
	}
}

// RecoveryInfo describes what Open found.
type RecoveryInfo struct {
	// Status is fresh-start, clean-restart, or crash-recovered.
	Status epoch.Status
	// LogEntriesApplied is the number of external-log pre-images replayed.
	LogEntriesApplied int
	// FailedEpochs is the cumulative number of epochs that ever failed on
	// this arena.
	FailedEpochs int
}

// Handle is a per-worker handle; see Options.Workers. Handles are not safe
// for concurrent use, but distinct handles are.
type Handle = core.Handle

// Key renders a uint64 as an 8-byte big-endian key, so integer order
// equals key order.
func Key(v uint64) []byte { return core.EncodeUint64(v) }

// DB is a durable Masstree over one simulated NVM arena.
type DB struct {
	arena *nvm.Arena
	store *core.Store
	opts  Options
}

// Open creates a DB over a fresh simulated NVM arena.
func Open(opts Options) (*DB, RecoveryInfo) {
	opts.setDefaults()
	arena := nvm.New(nvm.Config{Words: opts.ArenaWords, FenceDelay: opts.FenceDelay})
	return attach(arena, opts)
}

func attach(arena *nvm.Arena, opts Options) (*DB, RecoveryInfo) {
	store, status := core.Open(arena, core.Config{
		Workers:      opts.Workers,
		LogSegWords:  opts.LogSegWords,
		HeapWords:    opts.HeapWords,
		DisableInCLL: opts.DisableInCLL,
	})
	info := RecoveryInfo{
		Status:            status,
		LogEntriesApplied: store.RecoveredLogEntries(),
		FailedEpochs:      store.Epochs().FailedCount(),
	}
	return &DB{arena: arena, store: store, opts: opts}, info
}

// Handle returns worker i's handle (i < Options.Workers).
func (db *DB) Handle(i int) Handle { return db.store.Handle(i) }

// Get returns the value stored under k.
func (db *DB) Get(k []byte) (uint64, bool) { return db.store.Get(k) }

// Put stores v under k; reports whether k was newly inserted.
func (db *DB) Put(k []byte, v uint64) bool { return db.store.Put(k, v) }

// Delete removes k; reports whether it was present.
func (db *DB) Delete(k []byte) bool { return db.store.Delete(k) }

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false. Returns the number visited.
func (db *DB) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return db.store.Scan(start, max, fn)
}

// Len returns the number of live keys tracked this execution (transient;
// call RebuildLen after a restart if an exact count is needed).
func (db *DB) Len() int { return db.store.Len() }

// RebuildLen recomputes Len with one full scan.
func (db *DB) RebuildLen() int { return db.store.RebuildLen() }

// Checkpoint ends the current epoch: quiesces workers, flushes the cache,
// and commits everything written so far. Returns the number of cache
// lines flushed. Equivalent to one tick of the background checkpointer.
func (db *DB) Checkpoint() int { return db.store.Advance() }

// StartCheckpointer begins advancing epochs every Options.EpochInterval
// in the background, like the paper's 64 ms timer.
func (db *DB) StartCheckpointer() { db.store.StartTicker(db.opts.EpochInterval) }

// StopCheckpointer stops the background checkpointer.
func (db *DB) StopCheckpointer() { db.store.StopTicker() }

// Close checkpoints and durably marks a clean shutdown.
func (db *DB) Close() { db.store.Shutdown() }

// SimulateCrash injects a power failure: each dirty cache line survives
// with probability persistFraction, everything else is lost, and the DB
// becomes unusable until Reopen. All handles must be quiescent.
func (db *DB) SimulateCrash(persistFraction float64, seed int64) {
	db.store.StopTicker()
	db.arena.Crash(nvm.RandomPolicy(persistFraction, seed))
}

// Reopen recovers the DB from the arena contents after SimulateCrash (or
// after Close, to model a clean restart).
func (db *DB) Reopen() (*DB, RecoveryInfo) {
	db.arena.ResetReservations()
	return attach(db.arena, db.opts)
}

// Stats exposes the store's counters (logging, InCLL usage, recovery).
func (db *DB) Stats() *core.Stats { return db.store.Stats() }

// NVMStats exposes the simulated memory subsystem's counters (writebacks,
// fences, flushed lines, crash outcomes).
func (db *DB) NVMStats() nvm.StatsSnapshot { return db.arena.Stats().Snapshot() }
