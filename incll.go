// Package incll is a Go reproduction of "Fine-Grain Checkpointing with
// In-Cache-Line Logging" (Cohen, Aksun, Avni, Larus — ASPLOS 2019): a
// durable Masstree over (simulated) non-volatile memory whose normal-path
// mutations never flush or fence.
//
// Because Go exposes no cache-flush intrinsics and no layout control, all
// durable state lives in a simulated NVM arena with an explicit cache
// model (see internal/nvm and DESIGN.md). The simulation is faithful to
// the PCSO persistence model the paper assumes, and power failures can be
// injected at any quiesced point with an arbitrary subset of dirty cache
// lines surviving.
//
// Quick start:
//
//	db, _ := incll.Open(incll.Options{})
//	db.Put(incll.Key(1), 100)
//	db.Checkpoint()                  // commit epoch (normally a 64ms ticker)
//	db.SimulateCrash(0.5, 42)        // power failure, half the cache survives
//	db, _ = db.Reopen()              // recovery
//	v, ok := db.Get(incll.Key(1))    // 100, true
//
// Values are variable-length byte strings up to MaxValueBytes
// (PutBytes/GetBytes/ScanBytes), stored on a crash-consistent value heap;
// values of at most five bytes live inline in the tree leaf. The uint64
// methods are a view over the same store (see Handle), and small uint64s
// take the inline, allocation-free fast path.
//
// For scale-out, Options.Shards > 1 partitions the keyspace across N
// independent store+arena shards behind the same API (see internal/shard
// and DESIGN.md): a deterministic router places each key, scans k-way
// merge the shards back into one ordered stream, and Checkpoint becomes a
// coordinated two-phase epoch advance that commits a single global epoch
// record — a crash never exposes one shard at epoch k and another at k−1.
//
//	db, _ := incll.Open(incll.Options{Shards: 4, Workers: 4})
//	db.Handle(2).Put(incll.Key(7), 7)   // routed to key 7's shard
//	db.Checkpoint()                     // global two-phase commit
//	db.SimulateCrash(0.5, 42)           // all shards crash together
//	db, info := db.Reopen()             // parallel per-shard recovery
//	_ = info.Shards                     // per-shard recovery detail
//
// Range reads are served by first-class cursors (DB.NewIter): bounded,
// bidirectional iterators that walk the tree in small batches, re-entering
// the epoch machinery between batches so even a full-table iteration never
// delays a checkpoint by more than one batch. Range-over-func adapters
// make them idiomatic to consume:
//
//	for k, v := range db.All() { ... }          // whole DB, ascending
//	for k, v := range db.Range(lo, hi) { ... }  // [lo, hi)
//	it := db.NewIter(incll.IterOptions{})       // manual control
//	for ok := it.SeekGE(k); ok; ok = it.Next() { ... }
//	it.Close()
//
// Multi-key transactions (see internal/txn and DESIGN.md) are crash-atomic
// and durable at commit: a fenced intent record plus the epoch machinery
// guarantee that a power failure at any instruction of Commit leaves
// either every write or none, even across shards.
//
//	t := db.Begin()
//	a, _ := t.Get(incll.Key(1))
//	t.Put(incll.Key(1), a-10)
//	t.Put(incll.Key(2), 10)
//	err := t.Commit()                   // durable now; ErrConflict = retry
package incll

import (
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/nvm"
	"incll/internal/obs"
	"incll/internal/repl"
	"incll/internal/replnet"
	"incll/internal/shard"
	"incll/internal/txn"
)

// MaxShards is the largest supported Options.Shards. Clusters beyond 64
// shards leave the transaction manager's one-word shard-set fast path and
// pay a small per-commit allocation for the widened bitset; the ceiling
// itself only bounds resource sizing (per-shard arenas are floored at
// minShardArenaWords, so very large counts multiply memory).
const MaxShards = 4096

// ErrTooManyShards reports Options.Shards above MaxShards. Open panics
// with it (wrapped); Options.Validate and DB.Reshard return it.
var ErrTooManyShards = errors.New("incll: Options.Shards exceeds MaxShards")

// MaxValueBytes is the largest byte value PutBytes accepts (the payload of
// the value heap's largest size class).
const MaxValueBytes = core.MaxValueBytes

// MaxKeyBytes is the largest key the validated API paths accept.
const MaxKeyBytes = core.MaxKeyBytes

// Size-limit errors, returned by the byte-value paths (PutBytes on DB,
// Handle and Batch) and — wrapped, but errors.Is-compatible — by
// Txn.Commit for oversized buffered writes.
var (
	// ErrValueTooLarge reports a value longer than MaxValueBytes.
	ErrValueTooLarge = core.ErrValueTooLarge
	// ErrKeyTooLarge reports a key longer than MaxKeyBytes.
	ErrKeyTooLarge = core.ErrKeyTooLarge
)

// minShardArenaWords floors the shard-divided default arena size so a
// large shard count cannot underflow the per-shard regions.
const minShardArenaWords = 1 << 18

// Options sizes and parameterizes a DB.
type Options struct {
	// ArenaWords is the simulated NVM size in 8-byte words (default 2^24,
	// i.e. 128 MiB of simulated NVM). With Shards > 1 this is the size of
	// each shard's arena.
	ArenaWords uint64
	// Workers is the number of concurrent worker threads that will use
	// Handle(i) (default 1).
	Workers int
	// Shards partitions the keyspace across this many independent
	// store+arena shards with coordinated global checkpoints (default 1,
	// a single store).
	Shards int
	// HeapWords is the durable heap region size (default: half the arena).
	HeapWords uint64
	// LogSegWords is the per-worker external log segment (default 2^20,
	// or 2^16 per shard when sharded).
	LogSegWords uint64
	// TxnSegWords is the per-worker transaction intent segment (default
	// 2^14, or 2^12 per shard when sharded). Bounds the write-set bytes
	// one worker can commit per epoch.
	TxnSegWords uint64
	// EpochInterval is the checkpoint cadence used by StartCheckpointer
	// (default 64ms, the paper's setting).
	EpochInterval time.Duration
	// ChangeJournalBytes bounds the change journal's retained entry bytes
	// once a snapshot or change-stream subscriber is attached (default 32
	// MiB). A subscriber still behind a previous checkpoint's release
	// when the released backlog exceeds the budget is cut loose with
	// ErrStreamLost (a single oversized epoch never cuts a prompt
	// consumer, and a snapshot export or replica bootstrap in progress is
	// exempt up to a 4x grace ceiling); if the
	// unreleased volume itself outgrows the budget — a subscriber exists
	// but checkpoints are not running — every subscriber is cut and the
	// journal dropped, so memory stays bounded either way.
	ChangeJournalBytes uint64
	// FenceDelay emulates NVM write latency after each fence.
	FenceDelay time.Duration
	// PhaseSampleEvery sets the latency-attribution sampling period: one in
	// every N operations is timed phase by phase (tree descent, epoch wait,
	// commit-lock wait, fence stall, allocation — see DESIGN.md §12) and
	// exported as the incll_phase_seconds metric family. 0 means the default
	// (1 in 8); negative disables attribution entirely (the pre-attribution
	// hot path, zero overhead). Non-power-of-two periods round up.
	PhaseSampleEvery int
	// DisableInCLL turns off in-cache-line logging (the paper's LOGGING
	// ablation): strictly more external logging, same crash guarantees.
	DisableInCLL bool
}

// Validate checks the options without opening anything: today that is
// the shard-count ceiling (ErrTooManyShards). Open panics on the same
// conditions; DB.Reshard returns them.
func (o Options) Validate() error {
	if o.Shards > MaxShards {
		return fmt.Errorf("%w (%d > %d)", ErrTooManyShards, o.Shards, MaxShards)
	}
	return nil
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ArenaWords == 0 {
		o.ArenaWords = 1 << 24
		if o.Shards > 1 {
			// Keep the default cluster footprint near the single-store
			// default by splitting it across shards, but never divide the
			// per-shard arena below a floor that still fits the epoch
			// header, allocator metadata, log segments, and a usable heap.
			o.ArenaWords = (1 << 24) / uint64(o.Shards)
			if o.ArenaWords < minShardArenaWords {
				o.ArenaWords = minShardArenaWords
			}
		}
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.HeapWords == 0 {
		o.HeapWords = o.ArenaWords / 2
	}
	if o.LogSegWords == 0 {
		o.LogSegWords = 1 << 20
		if o.Shards > 1 {
			o.LogSegWords = 1 << 16
		}
	}
	if o.TxnSegWords == 0 {
		o.TxnSegWords = 1 << 14
		if o.Shards > 1 {
			o.TxnSegWords = 1 << 12
		}
	}
	if o.EpochInterval == 0 {
		o.EpochInterval = 64 * time.Millisecond
	}
}

// ShardRecovery describes one shard's recovery in a sharded DB.
type ShardRecovery struct {
	// Status is fresh-start, clean-restart, or crash-recovered.
	Status epoch.Status
	// LogEntriesApplied is the number of pre-images this shard replayed.
	LogEntriesApplied int
	// Epoch is the shard's running epoch after recovery; identical across
	// shards (the coordinated checkpoint's invariant).
	Epoch uint64
}

// RecoveryInfo describes what Open found.
type RecoveryInfo struct {
	// Status is fresh-start, clean-restart, or crash-recovered (for a
	// sharded DB, the worst outcome across shards).
	Status epoch.Status
	// LogEntriesApplied is the number of external-log pre-images replayed
	// (summed across shards).
	LogEntriesApplied int
	// FailedEpochs is the cumulative number of epochs that ever failed on
	// this arena (for a sharded DB, the largest per-shard count).
	FailedEpochs int
	// TxnsReplayed is the number of committed transactions whose intent
	// records recovery re-applied (their commit outlived their epoch).
	TxnsReplayed int
	// Shards holds per-shard recovery detail; nil for an unsharded DB.
	Shards []ShardRecovery
}

// Iterator is the first-class read cursor: bidirectional, bounded, and
// checkpoint-friendly — it never pins the epoch machinery across more
// than one internal batch, so an arbitrarily long iteration cannot delay
// the 64 ms checkpoint tick (see DESIGN.md §8). Key and Value return
// slices valid until the next positioning call; copy to retain. Obtain
// one from DB.NewIter, Handle.NewIter, or Txn.NewIter, or use the
// range-over-func adapters (DB.All, DB.Range, DB.Iter, Txn.All).
type Iterator = core.Cursor

// IterOptions bounds and orients an Iterator: LowerBound (inclusive),
// UpperBound (exclusive), and Reverse (descending order for the
// range-over-func adapters; the manual Seek/Next/Prev surface is
// bidirectional regardless).
type IterOptions = core.IterOptions

// Handle is a per-worker handle; see Options.Workers. Handles are not safe
// for concurrent use, but distinct handles are. In a sharded DB the handle
// routes each key to its shard transparently.
//
// Values are byte strings up to MaxValueBytes; values of at most five
// bytes live inline in the leaf. The uint64 methods are a view over the
// same store: Put(k, v) stores v's minimal big-endian encoding (inline —
// and allocation-free — whenever v < 2^40) and Get decodes the stored
// bytes back; GetBytes after Put(k, 258) returns {1, 2}.
type Handle interface {
	// Get returns the uint64 view of the value stored under k.
	Get(k []byte) (uint64, bool)
	// GetBytes returns a copy of the byte value stored under k.
	GetBytes(k []byte) ([]byte, bool)
	// AppendGet appends k's value bytes to dst: the allocation-free form
	// of GetBytes.
	AppendGet(dst []byte, k []byte) ([]byte, bool)
	// Put stores v under k; reports whether k was newly inserted.
	Put(k []byte, v uint64) bool
	// PutBytes stores the byte value v under k; reports whether k was
	// newly inserted, or ErrValueTooLarge / ErrKeyTooLarge.
	PutBytes(k []byte, v []byte) (bool, error)
	// Delete removes k; reports whether it was present.
	Delete(k []byte) bool
	// NewIter opens a cursor on this worker's handle.
	NewIter(o IterOptions) Iterator
	// Scan visits up to max keys ≥ start in ascending order (max < 0
	// means unlimited), until fn returns false. Returns the number
	// visited. A thin wrapper over NewIter, kept for compatibility.
	Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int
	// ScanBytes is Scan delivering byte values; the key and value slices
	// are only valid during the callback.
	ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int
}

// rawHandle is the worker surface the store layers implement (their
// PutBytes panics on oversized input; the façade validates first).
type rawHandle interface {
	Get(k []byte) (uint64, bool)
	GetBytes(k []byte) ([]byte, bool)
	AppendGet(dst []byte, k []byte) ([]byte, bool)
	Put(k []byte, v uint64) bool
	PutBytes(k []byte, v []byte) bool
	Delete(k []byte) bool
	NewIter(o IterOptions) Iterator
}

// dynHandle is the validated façade handle for one worker. Every
// operation resolves the DB's live engine exactly once, so the handle
// survives an online reshard: operations started before the cutover run
// against the donor (and are drained into its final checkpoint),
// operations after it run against the new shard set.
type dynHandle struct {
	db *DB
	w  int
}

// Get returns the uint64 view of the value stored under k.
func (h *dynHandle) Get(k []byte) (uint64, bool) {
	return h.db.engine().handles[h.w].Get(k)
}

// GetBytes returns a copy of the byte value stored under k.
func (h *dynHandle) GetBytes(k []byte) ([]byte, bool) {
	return h.db.engine().handles[h.w].GetBytes(k)
}

// AppendGet appends k's value bytes to dst: the allocation-free form of
// GetBytes.
func (h *dynHandle) AppendGet(dst []byte, k []byte) ([]byte, bool) {
	return h.db.engine().handles[h.w].AppendGet(dst, k)
}

// Put stores v under k; reports whether k was newly inserted.
func (h *dynHandle) Put(k []byte, v uint64) bool {
	e := h.db.writeEngine(h.w)
	defer e.release(h.w)
	return e.handles[h.w].Put(k, v)
}

// PutBytes stores the byte value v under k; reports whether k was newly
// inserted, or ErrValueTooLarge / ErrKeyTooLarge.
func (h *dynHandle) PutBytes(k []byte, v []byte) (bool, error) {
	if err := core.ValidateKV(k, v); err != nil {
		return false, err
	}
	e := h.db.writeEngine(h.w)
	defer e.release(h.w)
	return e.handles[h.w].PutBytes(k, v), nil
}

// Delete removes k; reports whether it was present.
func (h *dynHandle) Delete(k []byte) bool {
	e := h.db.writeEngine(h.w)
	defer e.release(h.w)
	return e.handles[h.w].Delete(k)
}

// NewIter opens a cursor on this worker's handle. The cursor walks the
// engine it was opened on; across a reshard cutover it keeps reading the
// donor's frozen final checkpoint (a consistent committed snapshot).
func (h *dynHandle) NewIter(o IterOptions) Iterator {
	return h.db.engine().handles[h.w].NewIter(o)
}

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false. Returns the number visited.
func (h *dynHandle) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	it := h.NewIter(IterOptions{})
	defer it.Close()
	return cursorScan(it, start, max, func(it Iterator) bool { return fn(it.Key(), it.ValueUint64()) })
}

// ScanBytes is Scan delivering byte values; the key and value slices are
// only valid during the callback.
func (h *dynHandle) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	it := h.NewIter(IterOptions{})
	defer it.Close()
	return cursorScan(it, start, max, func(it Iterator) bool { return fn(it.Key(), it.Value()) })
}

// cursorScan drives the legacy callback-scan contract over a cursor.
func cursorScan(it Iterator, start []byte, max int, visit func(Iterator) bool) int {
	n := 0
	for ok := it.SeekGE(start); ok; ok = it.Next() {
		if max >= 0 && n >= max {
			return n
		}
		n++
		if !visit(it) {
			return n
		}
	}
	return n
}

// Key renders a uint64 as an 8-byte big-endian key, so integer order
// equals key order.
func Key(v uint64) []byte { return core.EncodeUint64(v) }

// EncodeValue renders v as the canonical byte value the uint64 API stores
// (its minimal big-endian encoding).
func EncodeValue(v uint64) []byte { return core.EncodeValue(v) }

// DecodeValue is the uint64 view of a byte value — the big-endian decode
// of its first eight bytes, the exact inverse of EncodeValue. Useful with
// the range-over-func adapters, which yield byte values.
func DecodeValue(b []byte) uint64 { return core.DecodeValue(b) }

// engine is one topology epoch of a DB: the store(s), their options, and
// the per-worker handles, bundled behind one atomic pointer so an online
// reshard can cut the whole bundle over in a single swap. Every operation
// resolves the live engine exactly once (DB.engine / DB.writeEngine) and
// runs against it start to finish; iterators opened on an engine keep
// walking it even across a cutover (the retired donor is frozen at its
// final checkpoint — a consistent committed snapshot).
type engine struct {
	topo    shard.Topology
	opts    Options      // post-defaults options this engine was sized with
	arena   *nvm.Arena   // single-store mode
	store   *core.Store  // single-store mode
	sharded *shard.Store // sharded mode
	handles []rawHandle  // per-worker raw handles, prebuilt

	// wrefs[w] counts worker w's in-flight mutations on this engine. A
	// cutover first installs the gated barrier copy (so new writers wait),
	// then drains every stripe to zero before the donor's final
	// checkpoint — the write that slipped in last is still inside that
	// checkpoint, never stranded on a frozen donor.
	wrefs []wref

	// gate is non-nil only on the barrier copy a cutover installs for the
	// duration of the swap; engine()/writeEngine() wait on it and retry.
	gate chan struct{}
}

// wref is one worker's write-reference counter, padded to a cache line so
// concurrent workers do not false-share.
type wref struct {
	n atomic.Int64
	_ [7]uint64
}

// newEngine assembles an engine over an open store set (exactly one of
// store/sharded non-nil; arena accompanies store).
func newEngine(opts Options, arena *nvm.Arena, store *core.Store, sharded *shard.Store) *engine {
	e := &engine{
		opts:    opts,
		arena:   arena,
		store:   store,
		sharded: sharded,
		handles: make([]rawHandle, opts.Workers),
		wrefs:   make([]wref, opts.Workers),
	}
	if sharded != nil {
		e.topo = sharded.Topology()
		for i := range e.handles {
			e.handles[i] = sharded.Handle(i)
		}
	} else {
		e.topo = shard.Topology{Version: 1, Shards: 1}
		for i := range e.handles {
			e.handles[i] = store.Handle(i)
		}
	}
	return e
}

// barrier returns the gated copy of e a cutover installs while swapping.
func (e *engine) barrier() *engine {
	g := *e
	g.gate = make(chan struct{})
	return &g
}

// drainWrites blocks until every in-flight mutation on e has completed.
// Callable only after the barrier copy is installed: from then on no new
// writer can pass the writeEngine recheck, so each stripe monotonically
// reaches zero.
func (e *engine) drainWrites() {
	for i := range e.wrefs {
		for e.wrefs[i].n.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// release drops a write reference taken by DB.writeEngine.
func (e *engine) release(w int) { e.wrefs[w].n.Add(-1) }

// stores returns the per-shard core stores (length 1 when unsharded).
func (e *engine) stores() []*core.Store {
	if e.sharded != nil {
		return e.sharded.Stores()
	}
	return []*core.Store{e.store}
}

// advanceRaw runs one cluster-wide epoch advance directly, bypassing the
// transaction manager's commit guard — for callers that already hold it
// (the reshard cutover) or predate it (recovery).
func (e *engine) advanceRaw() int {
	if e.sharded != nil {
		return e.sharded.Advance()
	}
	return e.store.Advance()
}

// epoch is the running epoch (identical across shards).
func (e *engine) epoch() uint64 { return e.stores()[0].Epochs().Current() }

// seal permanently retires the engine after a reshard cutover: tickers
// stop and any further epoch advance on its stores panics. The frozen
// state stays readable for cursors that were opened before the cutover.
func (e *engine) seal() {
	if e.sharded != nil {
		e.sharded.Seal()
		return
	}
	e.store.StopTicker()
	e.store.Epochs().Seal()
}

// DB is a durable Masstree over simulated NVM: one store over one arena,
// or — with Options.Shards > 1 — N independent shards behind the same API
// with coordinated cross-shard checkpoints. DB.Reshard repartitions the
// keyspace online (see reshard.go and DESIGN.md §13).
type DB struct {
	// eng is the live engine; swapped by Reshard's cutover. Resolve it
	// through DB.engine (reads) or DB.writeEngine (mutations) — never by
	// loading the pointer twice within one operation.
	eng      atomic.Pointer[engine]
	manifest *shard.Manifest // durable topology record: the reshard commit point
	txns     *txn.Manager

	// rawOpts is Options exactly as passed to Open, before defaults: a
	// reshard re-derives the target's per-shard sizing from it (the
	// post-defaults ArenaWords etc. are already divided by the old shard
	// count and must not be divided again).
	rawOpts Options

	// Observability (see metrics.go and internal/obs): the phase tracer
	// and the checkpoint stop-the-world histogram are created before the
	// stores open, so recovery itself is captured; the registry that
	// serves WriteMetrics builds lazily on first use and is rebuilt after
	// a reshard (its per-shard gauges are bound to a topology).
	trace    *obs.Tracer
	stw      *obs.Histogram
	phases   *obs.PhaseSet // sampled latency attribution; nil when disabled
	regMu    sync.Mutex
	reg      *obs.Registry
	extraReg []func(*obs.Registry) // replica gauges etc., replayed on rebuild

	// Recorder state (see metrics.go): the periodic registry snapshotter
	// behind MetricsHistory, started on demand; recreated against the
	// rebuilt registry after a reshard.
	recMu       sync.Mutex
	recorder    *obs.Recorder
	recOn       bool
	recInterval time.Duration
	recCap      int

	// Replication state (see replication.go): the change hub attaches
	// lazily on first Snapshot/Changes use and dies with this DB instance
	// — or with the donor topology at a reshard cutover (subscribers see
	// ErrStreamLost and re-bootstrap, exactly as after a primary crash).
	replMu   sync.Mutex
	replHub  *repl.Hub
	snapHook func(point string) error // crash-injection test hook

	// Reshard state (see reshard.go).
	reshardMu   sync.Mutex
	reshardHook func(point string) error // crash-injection test hook
	rstate      reshardState

	// Networked replication state (see replserve.go). closed makes
	// Close/SimulateCrash idempotent and lets late API calls fail fast;
	// the netCur pointer is what the once-registered incll_replnet_*
	// gauges read through, so a stopped or replaced server reports zeros
	// instead of dangling.
	closed      atomic.Bool
	netMu       sync.Mutex
	netSrvs     []*ReplServer
	netPeerIDs  map[string]bool
	netGaugesOn bool
	netCur      atomic.Pointer[replnet.Server]
	netRTT      *obs.Histogram

	// propTL is the epoch propagation timeline (DESIGN.md §15), created
	// lazily on first use and DB-owned like netRTT: the stage and
	// per-peer commit-to-apply histograms survive server re-serves and
	// follower reconnects.
	propTL atomic.Pointer[obs.EpochTimeline]
}

// engine resolves the live engine for a read. During a cutover's swap
// window the gate blocks briefly; the returned engine is never gated.
func (db *DB) engine() *engine {
	for {
		e := db.eng.Load()
		if e.gate != nil {
			<-e.gate
			continue
		}
		return e
	}
}

// writeEngine resolves the live engine for a mutation on worker w and
// takes a write reference on it. The recheck after the increment closes
// the race with a concurrent cutover: if the swap won, the reference is
// dropped and the writer retries against the new engine — so a write can
// never land on a donor after its final checkpoint. Pair with release.
func (db *DB) writeEngine(w int) *engine {
	for {
		e := db.eng.Load()
		if e.gate != nil {
			<-e.gate
			continue
		}
		e.wrefs[w].n.Add(1)
		if db.eng.Load() == e {
			return e
		}
		e.wrefs[w].n.Add(-1)
	}
}

// newPhaseSet builds the attribution timer per Options.PhaseSampleEvery:
// nil when disabled (negative), otherwise one slot per worker.
func newPhaseSet(opts Options) *obs.PhaseSet {
	if opts.PhaseSampleEvery < 0 {
		return nil
	}
	every := opts.PhaseSampleEvery
	if every == 0 {
		every = obs.DefaultPhaseSample
	}
	return obs.NewPhaseSet(opts.Workers, every)
}

// shardConfig derives the shard.Config for opening a cluster with the
// given (post-defaults) options at a topology version.
func shardConfig(opts Options, topoVersion uint64, trace *obs.Tracer, stw *obs.Histogram, phases *obs.PhaseSet) shard.Config {
	return shard.Config{
		Shards:       opts.Shards,
		Workers:      opts.Workers,
		ArenaWords:   opts.ArenaWords,
		HeapWords:    opts.HeapWords,
		LogSegWords:  opts.LogSegWords,
		TxnSegWords:  opts.TxnSegWords,
		DisableInCLL: opts.DisableInCLL,
		TopoVersion:  topoVersion,
		NVM:          nvm.Config{FenceDelay: opts.FenceDelay},
		Trace:        trace,
		StopTheWorld: stw,
		Phases:       phases,
	}
}

// Open creates a DB over fresh simulated NVM. Invalid options (see
// Options.Validate) panic with the wrapped typed error.
func Open(opts Options) (*DB, RecoveryInfo) {
	raw := opts
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	opts.setDefaults()
	manifest := shard.NewManifest(opts.FenceDelay, 1, opts.Shards)
	if opts.Shards > 1 {
		trace := obs.NewTracer(obs.DefaultTraceEvents)
		stw := new(obs.Histogram)
		phases := newPhaseSet(opts)
		s, sinfo := shard.Open(shardConfig(opts, 1, trace, stw, phases))
		db := &DB{manifest: manifest, rawOpts: raw, trace: trace, stw: stw, phases: phases}
		db.eng.Store(newEngine(opts, nil, nil, s))
		info := shardInfo(sinfo)
		info.TxnsReplayed = db.initTxns()
		db.traceTxnReplay(info.TxnsReplayed)
		return db, info
	}
	arena := nvm.New(nvm.Config{Words: opts.ArenaWords, FenceDelay: opts.FenceDelay})
	return attach(arena, opts, raw, manifest, nil, nil, nil)
}

// attach opens a single store over an existing arena. A nil trace builds a
// fresh observability bundle (first Open); Reopen passes the crashed DB's
// so the phase trace — and the attribution histograms — span the crash.
func attach(arena *nvm.Arena, opts Options, raw Options, manifest *shard.Manifest, trace *obs.Tracer, stw *obs.Histogram, phases *obs.PhaseSet) (*DB, RecoveryInfo) {
	if trace == nil {
		trace = obs.NewTracer(obs.DefaultTraceEvents)
		stw = new(obs.Histogram)
		phases = newPhaseSet(opts)
	}
	store, status := core.Open(arena, core.Config{
		Workers:      opts.Workers,
		LogSegWords:  opts.LogSegWords,
		TxnSegWords:  opts.TxnSegWords,
		HeapWords:    opts.HeapWords,
		DisableInCLL: opts.DisableInCLL,
		Trace:        trace,
		StopTheWorld: stw,
		Phases:       phases,
		Shard:        0,
	})
	db := &DB{manifest: manifest, rawOpts: raw, trace: trace, stw: stw, phases: phases}
	db.eng.Store(newEngine(opts, arena, store, nil))
	info := RecoveryInfo{
		Status:            status,
		LogEntriesApplied: store.RecoveredLogEntries(),
		FailedEpochs:      store.Epochs().FailedCount(),
	}
	info.TxnsReplayed = db.initTxns()
	db.traceTxnReplay(info.TxnsReplayed)
	return db, info
}

// traceTxnReplay records the intent-recovery replay in the phase trace.
func (db *DB) traceTxnReplay(n int) {
	if n > 0 {
		db.trace.Record(obs.EvTxnReplay, -1, db.currentEpoch(), 0, int64(n))
	}
}

// currentEpoch is the running epoch (identical across shards).
func (db *DB) currentEpoch() uint64 { return db.engine().epoch() }

// initTxns builds the transaction manager over the open store(s), running
// intent recovery; returns the number of transactions replayed.
func (db *DB) initTxns() int {
	e := db.eng.Load()
	var replayed int
	if e.sharded != nil {
		db.txns, replayed = txn.ForCluster(e.sharded)
	} else {
		db.txns, replayed = txn.ForStore(e.store)
	}
	db.txns.Instrument(db.phases)
	return replayed
}

// shardInfo converts the shard package's merged recovery info.
func shardInfo(si shard.RecoveryInfo) RecoveryInfo {
	info := RecoveryInfo{
		Status:            si.Status,
		LogEntriesApplied: si.LogEntriesApplied,
		FailedEpochs:      si.FailedEpochs,
		Shards:            make([]ShardRecovery, len(si.Shards)),
	}
	for i, sr := range si.Shards {
		info.Shards[i] = ShardRecovery{
			Status:            sr.Status,
			LogEntriesApplied: sr.LogEntriesApplied,
			Epoch:             sr.Epoch,
		}
	}
	return info
}

// Handle returns worker i's handle (i < Options.Workers). The handle
// resolves the live engine per operation, so it stays valid across an
// online reshard.
func (db *DB) Handle(i int) Handle { return &dynHandle{db: db, w: i} }

// Shards returns the shard count (1 for an unsharded DB).
func (db *DB) Shards() int { return db.engine().topo.Shards }

// TopoVersion returns the live topology version (1 until the first
// completed reshard; see DB.Reshard).
func (db *DB) TopoVersion() uint64 { return db.engine().topo.Version }

// Get returns the uint64 view of the value stored under k.
func (db *DB) Get(k []byte) (uint64, bool) {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.Get(k)
	}
	return e.store.Get(k)
}

// GetBytes returns a copy of the byte value stored under k.
func (db *DB) GetBytes(k []byte) ([]byte, bool) {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.GetBytes(k)
	}
	return e.store.GetBytes(k)
}

// Put stores v under k; reports whether k was newly inserted.
func (db *DB) Put(k []byte, v uint64) bool {
	e := db.writeEngine(0)
	defer e.release(0)
	if e.sharded != nil {
		return e.sharded.Put(k, v)
	}
	return e.store.Put(k, v)
}

// PutBytes stores the byte value v under k; reports whether k was newly
// inserted, or ErrValueTooLarge / ErrKeyTooLarge for oversized input.
func (db *DB) PutBytes(k []byte, v []byte) (bool, error) {
	if err := core.ValidateKV(k, v); err != nil {
		return false, err
	}
	e := db.writeEngine(0)
	defer e.release(0)
	if e.sharded != nil {
		return e.sharded.PutBytes(k, v), nil
	}
	return e.store.PutBytes(k, v), nil
}

// Delete removes k; reports whether it was present.
func (db *DB) Delete(k []byte) bool {
	e := db.writeEngine(0)
	defer e.release(0)
	if e.sharded != nil {
		return e.sharded.Delete(k)
	}
	return e.store.Delete(k)
}

// NewIter opens a cursor over the DB on worker 0's handle: bidirectional
// (First/Last/SeekGE/SeekLT/Next/Prev), bounded by o, and
// checkpoint-friendly — the walk holds the epoch machinery only for one
// bounded batch at a time. On a sharded DB the per-shard cursors are
// k-way merged, so iteration order is identical to an unsharded cursor.
// Concurrent workers should open their own cursor via Handle(i).NewIter.
func (db *DB) NewIter(o IterOptions) Iterator {
	return db.engine().handles[0].NewIter(o)
}

// All is the range-over-func view of the whole DB in ascending key order:
//
//	for k, v := range db.All() { ... }
//
// The yielded slices are only valid for that iteration step; copy to
// retain. The sequence can be ranged over multiple times (each range
// opens a fresh cursor).
func (db *DB) All() iter.Seq2[[]byte, []byte] { return db.Iter(IterOptions{}) }

// Range is the range-over-func view of keys in [lo, hi) in ascending key
// order; nil bounds are open ends.
func (db *DB) Range(lo, hi []byte) iter.Seq2[[]byte, []byte] {
	return db.Iter(IterOptions{LowerBound: lo, UpperBound: hi})
}

// Iter is the range-over-func form of NewIter, honouring o.Reverse:
//
//	for k, v := range db.Iter(incll.IterOptions{Reverse: true}) { ... }
func (db *DB) Iter(o IterOptions) iter.Seq2[[]byte, []byte] {
	return cursorSeq(func() Iterator { return db.NewIter(o) }, o.Reverse)
}

// cursorSeq adapts a cursor constructor into a (re-rangeable) sequence.
func cursorSeq(open func() Iterator, reverse bool) iter.Seq2[[]byte, []byte] {
	return func(yield func(k, v []byte) bool) {
		it := open()
		defer it.Close()
		if reverse {
			for ok := it.Last(); ok; ok = it.Prev() {
				if !yield(it.Key(), it.Value()) {
					return
				}
			}
			return
		}
		for ok := it.First(); ok; ok = it.Next() {
			if !yield(it.Key(), it.Value()) {
				return
			}
		}
	}
}

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false. Returns the number visited. On a
// sharded DB the per-shard streams are k-way merged, so iteration order is
// identical to an unsharded scan. A thin wrapper over NewIter, kept for
// compatibility; the key slice is only valid during the callback.
func (db *DB) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	it := db.NewIter(IterOptions{})
	defer it.Close()
	return cursorScan(it, start, max, func(it Iterator) bool { return fn(it.Key(), it.ValueUint64()) })
}

// ScanBytes is Scan delivering byte values; the key and value slices are
// only valid during the callback.
func (db *DB) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	it := db.NewIter(IterOptions{})
	defer it.Close()
	return cursorScan(it, start, max, func(it Iterator) bool { return fn(it.Key(), it.Value()) })
}

// Len returns the number of live keys tracked this execution (transient;
// call RebuildLen after a restart if an exact count is needed).
func (db *DB) Len() int {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.Len()
	}
	return e.store.Len()
}

// RebuildLen recomputes Len with one full scan.
func (db *DB) RebuildLen() int {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.RebuildLen()
	}
	return e.store.RebuildLen()
}

// Checkpoint ends the current epoch: quiesces workers, flushes the cache,
// and commits everything written so far. Returns the number of cache
// lines flushed. Equivalent to one tick of the background checkpointer.
// On a sharded DB this is the coordinated two-phase global checkpoint.
// Excluded against in-flight transaction commits.
func (db *DB) Checkpoint() int {
	return db.txns.Advance()
}

// StartCheckpointer begins advancing epochs every Options.EpochInterval
// in the background, like the paper's 64 ms timer (cluster-wide when
// sharded, and always excluded against transaction commits).
func (db *DB) StartCheckpointer() {
	db.txns.StartTicker(db.engine().opts.EpochInterval)
}

// StopCheckpointer stops the background checkpointer.
func (db *DB) StopCheckpointer() {
	db.txns.StopTicker()
}

// Close checkpoints and durably marks a clean shutdown. Change-stream
// subscribers drain the final epoch and then observe ErrStreamClosed;
// networked followers receive the complete stream through the final
// epoch and then a clean goodbye. Idempotent: concurrent or repeated
// calls after the first are no-ops.
//
// Ordering matters here: replication listeners stop accepting first (no
// new subscribers can race the shutdown), then the store's shutdown
// checkpoint commits and the hub releases the final epoch — and only
// after that are the peer connections drained and torn down, so the
// final epoch is released before listener teardown and every live
// follower sees it.
func (db *DB) Close() {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	srvs := db.replServers()
	for _, rs := range srvs {
		rs.srv.StopAccepting()
	}
	db.StopRecorder()
	db.txns.StopTicker()
	e := db.engine()
	if e.sharded != nil {
		e.sharded.Shutdown()
	} else {
		e.store.Shutdown()
	}
	db.closeHub(true)
	for _, rs := range srvs {
		rs.srv.Drain(5 * time.Second)
		rs.srv.Close()
	}
}

// SimulateCrash injects a power failure: each dirty cache line survives
// with probability persistFraction, everything else is lost, and the DB
// becomes unusable until Reopen. On a sharded DB every shard arena crashes
// together (independent per-shard survival policies derived from seed).
// All handles must be quiescent.
func (db *DB) SimulateCrash(persistFraction float64, seed int64) {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	for _, rs := range db.replServers() {
		rs.srv.Close() // a crash kills connections hard: no drain, no goodbye
	}
	db.StopRecorder()
	db.txns.StopTicker()
	db.closeHub(false) // the volatile journal dies with the process
	db.manifest.Crash(persistFraction, seed)
	e := db.engine()
	if e.sharded != nil {
		e.sharded.SimulateCrash(persistFraction, seed)
		return
	}
	e.store.StopTicker()
	e.arena.Crash(nvm.RandomPolicy(persistFraction, seed))
}

// Reopen recovers the DB from the arena contents after SimulateCrash (or
// after Close, to model a clean restart). Sharded recovery runs per shard
// in parallel. Recovery first revalidates the durable topology manifest:
// the arena set being reopened must be the one the manifest says is live
// (a crash on either side of a reshard cutover leaves exactly one side
// both durable and named by the manifest — see DESIGN.md §13).
func (db *DB) Reopen() (*DB, RecoveryInfo) {
	e := db.engine()
	if want := db.manifest.Recover(); !want.Equal(e.topo) {
		panic(fmt.Sprintf("incll: durable topology manifest %+v does not name the open engine's topology %+v", want, e.topo))
	}
	if e.sharded != nil {
		s, sinfo := e.sharded.Reopen()
		// The shard config — tracer included — carries over, so the phase
		// trace spans the crash: the recovery events land in the same ring
		// the pre-crash checkpoints did.
		db2 := &DB{manifest: db.manifest, rawOpts: db.rawOpts, trace: db.trace, stw: db.stw, phases: db.phases}
		db2.eng.Store(newEngine(e.opts, nil, nil, s))
		info := shardInfo(sinfo)
		info.TxnsReplayed = db2.initTxns()
		db2.traceTxnReplay(info.TxnsReplayed)
		return db2, info
	}
	e.arena.ResetReservations()
	return attach(e.arena, e.opts, db.rawOpts, db.manifest, db.trace, db.stw, db.phases)
}

// Stats exposes the store's counters (logging, InCLL usage, the value
// heap, recovery). Reading them (Load) is safe at any time, concurrently
// with writers and the background checkpointer; each read is a sum over
// per-worker stripes, so it is monotone but not a single atomic snapshot
// across counters. For an unsharded DB the returned struct is live; for a
// sharded DB it is a point-in-time aggregate across shards — equal to the
// sum of ShardStats(i) over all shards when writers are quiescent — so
// call Stats again for fresh values, and use ShardStats for the (live)
// per-shard view. Prefer DB.Metrics for a coherent typed snapshot.
func (db *DB) Stats() *core.Stats {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.Stats()
	}
	return e.store.Stats()
}

// ShardStats returns shard i's live counters (i < Shards()). For an
// unsharded DB, ShardStats(0) is Stats.
func (db *DB) ShardStats(i int) *core.Stats {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.ShardStore(i).Stats()
	}
	return e.store.Stats()
}

// NVMStats exposes the simulated memory subsystem's counters (writebacks,
// fences, flushed lines, crash outcomes), summed across arenas when
// sharded.
func (db *DB) NVMStats() nvm.StatsSnapshot {
	e := db.engine()
	if e.sharded != nil {
		return e.sharded.NVMStats()
	}
	return e.arena.Stats().Snapshot()
}

// ---- transactions ----

// ErrConflict is returned by Txn.Commit when a validated read changed
// since the transaction observed it; rebuild the transaction and retry.
var ErrConflict = txn.ErrConflict

// Txn is a crash-atomic multi-key transaction: writes are buffered and
// applied atomically at Commit, reads are cached and validated at Commit
// (optimistic concurrency). A successful Commit is durable immediately —
// unlike single-key operations, it does not wait for the next checkpoint.
// A Txn belongs to the worker that began it; one live Txn per worker.
type Txn struct{ t *txn.Txn }

// Begin starts a transaction on worker 0.
func (db *DB) Begin() *Txn { return db.BeginWorker(0) }

// BeginWorker starts a transaction on worker i (i < Options.Workers).
func (db *DB) BeginWorker(i int) *Txn { return &Txn{t: db.txns.Begin(i)} }

// Get reads the uint64 view of k: the transaction's own pending write if
// any, else a cached prior read, else the store.
func (t *Txn) Get(k []byte) (uint64, bool) { return t.t.Get(k) }

// GetBytes is Get returning a copy of the byte value.
func (t *Txn) GetBytes(k []byte) ([]byte, bool) { return t.t.GetBytes(k) }

// Put buffers a write of v under k.
func (t *Txn) Put(k []byte, v uint64) { t.t.Put(k, v) }

// PutBytes buffers a write of the byte value v under k. An oversized key
// or value poisons the transaction: Commit returns an error satisfying
// errors.Is(err, ErrValueTooLarge) or errors.Is(err, ErrKeyTooLarge).
func (t *Txn) PutBytes(k []byte, v []byte) { t.t.PutBytes(k, v) }

// Delete buffers a deletion of k.
func (t *Txn) Delete(k []byte) { t.t.Delete(k) }

// NewIter opens a cursor over the transaction's view of the store: the
// committed state with the transaction's own pending writes overlaid —
// buffered puts are visible, buffered deletes hide store keys. The write
// set is snapshotted at call time. Iterated entries are not added to the
// read set (Commit validates point reads only; no phantom protection).
func (t *Txn) NewIter(o IterOptions) Iterator { return t.t.NewIter(o) }

// All is the range-over-func view of the transaction's overlaid state in
// ascending key order; see DB.All.
func (t *Txn) All() iter.Seq2[[]byte, []byte] { return t.Iter(IterOptions{}) }

// Iter is the range-over-func form of Txn.NewIter, honouring o.Reverse.
func (t *Txn) Iter(o IterOptions) iter.Seq2[[]byte, []byte] {
	return cursorSeq(func() Iterator { return t.NewIter(o) }, o.Reverse)
}

// Commit atomically applies the write set; nil means durably committed,
// ErrConflict means a validated read changed (retry).
func (t *Txn) Commit() error { return t.t.Commit() }

// Abort discards the transaction.
func (t *Txn) Abort() { t.t.Abort() }

// Batch is a one-shot atomic write set for DB.Apply.
type Batch struct {
	ops []batchOp
	err error // sticky size-limit error, reported by Apply
}

type batchOp struct {
	k   []byte
	v   []byte
	del bool
}

// Put adds a write of v under k to the batch.
func (b *Batch) Put(k []byte, v uint64) {
	b.PutBytes(k, core.EncodeValue(v))
}

// PutBytes adds a write of the byte value v under k to the batch. An
// oversized key or value poisons the batch: Apply returns
// ErrValueTooLarge / ErrKeyTooLarge.
func (b *Batch) PutBytes(k []byte, v []byte) {
	if err := core.ValidateKV(k, v); err != nil {
		if b.err == nil {
			b.err = err
		}
		return
	}
	b.ops = append(b.ops, batchOp{
		k: append([]byte(nil), k...),
		v: append([]byte(nil), v...),
	})
}

// Delete adds a deletion of k to the batch.
func (b *Batch) Delete(k []byte) {
	if err := core.ValidateKV(k, nil); err != nil {
		if b.err == nil {
			b.err = err
		}
		return
	}
	b.ops = append(b.ops, batchOp{k: append([]byte(nil), k...), del: true})
}

// Apply commits the batch as one crash-atomic, immediately durable
// transaction on worker 0.
func (db *DB) Apply(b *Batch) error {
	if b.err != nil {
		return b.err
	}
	t := db.txns.Begin(0)
	for _, op := range b.ops {
		if op.del {
			t.Delete(op.k)
		} else {
			t.PutBytes(op.k, op.v)
		}
	}
	return t.Commit()
}

// TxnStats reports transaction counters for this execution.
type TxnStats struct {
	// Committed is the number of transactions whose Commit succeeded.
	Committed int64
	// Conflicts is the number of commits rejected by read validation.
	Conflicts int64
	// Replayed is the number of committed transactions recovery re-applied
	// at the last Open/Reopen.
	Replayed int64
	// Stale is the number of intent records recovery skipped because they
	// committed under a topology a reshard has since retired.
	Stale int64
}

// TxnStats returns the transaction counters.
func (db *DB) TxnStats() TxnStats {
	s := db.txns.Stats()
	return TxnStats{
		Committed: s.Committed.Load(),
		Conflicts: s.Conflicts.Load(),
		Replayed:  s.Replays.Load(),
		Stale:     s.Stale.Load(),
	}
}
