// Package incll is a Go reproduction of "Fine-Grain Checkpointing with
// In-Cache-Line Logging" (Cohen, Aksun, Avni, Larus — ASPLOS 2019): a
// durable Masstree over (simulated) non-volatile memory whose normal-path
// mutations never flush or fence.
//
// Because Go exposes no cache-flush intrinsics and no layout control, all
// durable state lives in a simulated NVM arena with an explicit cache
// model (see internal/nvm and DESIGN.md). The simulation is faithful to
// the PCSO persistence model the paper assumes, and power failures can be
// injected at any quiesced point with an arbitrary subset of dirty cache
// lines surviving.
//
// Quick start:
//
//	db, _ := incll.Open(incll.Options{})
//	db.Put(incll.Key(1), 100)
//	db.Checkpoint()                  // commit epoch (normally a 64ms ticker)
//	db.SimulateCrash(0.5, 42)        // power failure, half the cache survives
//	db, _ = db.Reopen()              // recovery
//	v, ok := db.Get(incll.Key(1))    // 100, true
//
// For scale-out, Options.Shards > 1 partitions the keyspace across N
// independent store+arena shards behind the same API (see internal/shard
// and DESIGN.md): a deterministic router places each key, scans k-way
// merge the shards back into one ordered stream, and Checkpoint becomes a
// coordinated two-phase epoch advance that commits a single global epoch
// record — a crash never exposes one shard at epoch k and another at k−1.
//
//	db, _ := incll.Open(incll.Options{Shards: 4, Workers: 4})
//	db.Handle(2).Put(incll.Key(7), 7)   // routed to key 7's shard
//	db.Checkpoint()                     // global two-phase commit
//	db.SimulateCrash(0.5, 42)           // all shards crash together
//	db, info := db.Reopen()             // parallel per-shard recovery
//	_ = info.Shards                     // per-shard recovery detail
package incll

import (
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/nvm"
	"incll/internal/shard"
)

// Options sizes and parameterizes a DB.
type Options struct {
	// ArenaWords is the simulated NVM size in 8-byte words (default 2^24,
	// i.e. 128 MiB of simulated NVM). With Shards > 1 this is the size of
	// each shard's arena.
	ArenaWords uint64
	// Workers is the number of concurrent worker threads that will use
	// Handle(i) (default 1).
	Workers int
	// Shards partitions the keyspace across this many independent
	// store+arena shards with coordinated global checkpoints (default 1,
	// a single store).
	Shards int
	// HeapWords is the durable heap region size (default: half the arena).
	HeapWords uint64
	// LogSegWords is the per-worker external log segment (default 2^20,
	// or 2^16 per shard when sharded).
	LogSegWords uint64
	// EpochInterval is the checkpoint cadence used by StartCheckpointer
	// (default 64ms, the paper's setting).
	EpochInterval time.Duration
	// FenceDelay emulates NVM write latency after each fence.
	FenceDelay time.Duration
	// DisableInCLL turns off in-cache-line logging (the paper's LOGGING
	// ablation): strictly more external logging, same crash guarantees.
	DisableInCLL bool
}

func (o *Options) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ArenaWords == 0 {
		o.ArenaWords = 1 << 24
		if o.Shards > 1 {
			// Keep the default cluster footprint near the single-store
			// default by splitting it across shards.
			o.ArenaWords = (1 << 24) / uint64(o.Shards)
		}
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.HeapWords == 0 {
		o.HeapWords = o.ArenaWords / 2
	}
	if o.LogSegWords == 0 {
		o.LogSegWords = 1 << 20
		if o.Shards > 1 {
			o.LogSegWords = 1 << 16
		}
	}
	if o.EpochInterval == 0 {
		o.EpochInterval = 64 * time.Millisecond
	}
}

// ShardRecovery describes one shard's recovery in a sharded DB.
type ShardRecovery struct {
	// Status is fresh-start, clean-restart, or crash-recovered.
	Status epoch.Status
	// LogEntriesApplied is the number of pre-images this shard replayed.
	LogEntriesApplied int
	// Epoch is the shard's running epoch after recovery; identical across
	// shards (the coordinated checkpoint's invariant).
	Epoch uint64
}

// RecoveryInfo describes what Open found.
type RecoveryInfo struct {
	// Status is fresh-start, clean-restart, or crash-recovered (for a
	// sharded DB, the worst outcome across shards).
	Status epoch.Status
	// LogEntriesApplied is the number of external-log pre-images replayed
	// (summed across shards).
	LogEntriesApplied int
	// FailedEpochs is the cumulative number of epochs that ever failed on
	// this arena (for a sharded DB, the largest per-shard count).
	FailedEpochs int
	// Shards holds per-shard recovery detail; nil for an unsharded DB.
	Shards []ShardRecovery
}

// Handle is a per-worker handle; see Options.Workers. Handles are not safe
// for concurrent use, but distinct handles are. In a sharded DB the handle
// routes each key to its shard transparently.
type Handle interface {
	// Get returns the value stored under k.
	Get(k []byte) (uint64, bool)
	// Put stores v under k; reports whether k was newly inserted.
	Put(k []byte, v uint64) bool
	// Delete removes k; reports whether it was present.
	Delete(k []byte) bool
	// Scan visits up to max keys ≥ start in ascending order (max < 0
	// means unlimited), until fn returns false. Returns the number
	// visited.
	Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int
}

// Key renders a uint64 as an 8-byte big-endian key, so integer order
// equals key order.
func Key(v uint64) []byte { return core.EncodeUint64(v) }

// DB is a durable Masstree over simulated NVM: one store over one arena,
// or — with Options.Shards > 1 — N independent shards behind the same API
// with coordinated cross-shard checkpoints.
type DB struct {
	arena   *nvm.Arena   // single-store mode
	store   *core.Store  // single-store mode
	sharded *shard.Store // sharded mode (Options.Shards > 1)
	opts    Options
}

// Open creates a DB over fresh simulated NVM.
func Open(opts Options) (*DB, RecoveryInfo) {
	opts.setDefaults()
	if opts.Shards > 1 {
		s, sinfo := shard.Open(shard.Config{
			Shards:       opts.Shards,
			Workers:      opts.Workers,
			ArenaWords:   opts.ArenaWords,
			HeapWords:    opts.HeapWords,
			LogSegWords:  opts.LogSegWords,
			DisableInCLL: opts.DisableInCLL,
			NVM:          nvm.Config{FenceDelay: opts.FenceDelay},
		})
		return &DB{sharded: s, opts: opts}, shardInfo(sinfo)
	}
	arena := nvm.New(nvm.Config{Words: opts.ArenaWords, FenceDelay: opts.FenceDelay})
	return attach(arena, opts)
}

func attach(arena *nvm.Arena, opts Options) (*DB, RecoveryInfo) {
	store, status := core.Open(arena, core.Config{
		Workers:      opts.Workers,
		LogSegWords:  opts.LogSegWords,
		HeapWords:    opts.HeapWords,
		DisableInCLL: opts.DisableInCLL,
	})
	info := RecoveryInfo{
		Status:            status,
		LogEntriesApplied: store.RecoveredLogEntries(),
		FailedEpochs:      store.Epochs().FailedCount(),
	}
	return &DB{arena: arena, store: store, opts: opts}, info
}

// shardInfo converts the shard package's merged recovery info.
func shardInfo(si shard.RecoveryInfo) RecoveryInfo {
	info := RecoveryInfo{
		Status:            si.Status,
		LogEntriesApplied: si.LogEntriesApplied,
		FailedEpochs:      si.FailedEpochs,
		Shards:            make([]ShardRecovery, len(si.Shards)),
	}
	for i, sr := range si.Shards {
		info.Shards[i] = ShardRecovery{
			Status:            sr.Status,
			LogEntriesApplied: sr.LogEntriesApplied,
			Epoch:             sr.Epoch,
		}
	}
	return info
}

// Handle returns worker i's handle (i < Options.Workers).
func (db *DB) Handle(i int) Handle {
	if db.sharded != nil {
		return db.sharded.Handle(i)
	}
	return db.store.Handle(i)
}

// Shards returns the shard count (1 for an unsharded DB).
func (db *DB) Shards() int {
	if db.sharded != nil {
		return db.sharded.NumShards()
	}
	return 1
}

// Get returns the value stored under k.
func (db *DB) Get(k []byte) (uint64, bool) {
	if db.sharded != nil {
		return db.sharded.Get(k)
	}
	return db.store.Get(k)
}

// Put stores v under k; reports whether k was newly inserted.
func (db *DB) Put(k []byte, v uint64) bool {
	if db.sharded != nil {
		return db.sharded.Put(k, v)
	}
	return db.store.Put(k, v)
}

// Delete removes k; reports whether it was present.
func (db *DB) Delete(k []byte) bool {
	if db.sharded != nil {
		return db.sharded.Delete(k)
	}
	return db.store.Delete(k)
}

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false. Returns the number visited. On a
// sharded DB the per-shard streams are k-way merged, so iteration order is
// identical to an unsharded scan.
func (db *DB) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	if db.sharded != nil {
		return db.sharded.Scan(start, max, fn)
	}
	return db.store.Scan(start, max, fn)
}

// Len returns the number of live keys tracked this execution (transient;
// call RebuildLen after a restart if an exact count is needed).
func (db *DB) Len() int {
	if db.sharded != nil {
		return db.sharded.Len()
	}
	return db.store.Len()
}

// RebuildLen recomputes Len with one full scan.
func (db *DB) RebuildLen() int {
	if db.sharded != nil {
		return db.sharded.RebuildLen()
	}
	return db.store.RebuildLen()
}

// Checkpoint ends the current epoch: quiesces workers, flushes the cache,
// and commits everything written so far. Returns the number of cache
// lines flushed. Equivalent to one tick of the background checkpointer.
// On a sharded DB this is the coordinated two-phase global checkpoint.
func (db *DB) Checkpoint() int {
	if db.sharded != nil {
		return db.sharded.Advance()
	}
	return db.store.Advance()
}

// StartCheckpointer begins advancing epochs every Options.EpochInterval
// in the background, like the paper's 64 ms timer (cluster-wide when
// sharded).
func (db *DB) StartCheckpointer() {
	if db.sharded != nil {
		db.sharded.StartTicker(db.opts.EpochInterval)
		return
	}
	db.store.StartTicker(db.opts.EpochInterval)
}

// StopCheckpointer stops the background checkpointer.
func (db *DB) StopCheckpointer() {
	if db.sharded != nil {
		db.sharded.StopTicker()
		return
	}
	db.store.StopTicker()
}

// Close checkpoints and durably marks a clean shutdown.
func (db *DB) Close() {
	if db.sharded != nil {
		db.sharded.Shutdown()
		return
	}
	db.store.Shutdown()
}

// SimulateCrash injects a power failure: each dirty cache line survives
// with probability persistFraction, everything else is lost, and the DB
// becomes unusable until Reopen. On a sharded DB every shard arena crashes
// together (independent per-shard survival policies derived from seed).
// All handles must be quiescent.
func (db *DB) SimulateCrash(persistFraction float64, seed int64) {
	if db.sharded != nil {
		db.sharded.SimulateCrash(persistFraction, seed)
		return
	}
	db.store.StopTicker()
	db.arena.Crash(nvm.RandomPolicy(persistFraction, seed))
}

// Reopen recovers the DB from the arena contents after SimulateCrash (or
// after Close, to model a clean restart). Sharded recovery runs per shard
// in parallel.
func (db *DB) Reopen() (*DB, RecoveryInfo) {
	if db.sharded != nil {
		s, sinfo := db.sharded.Reopen()
		return &DB{sharded: s, opts: db.opts}, shardInfo(sinfo)
	}
	db.arena.ResetReservations()
	return attach(db.arena, db.opts)
}

// Stats exposes the store's counters (logging, InCLL usage, recovery).
// For an unsharded DB the returned counters are live; for a sharded DB
// they are a point-in-time aggregate across shards — call Stats again for
// fresh values, and use ShardStats for the (live) per-shard view.
func (db *DB) Stats() *core.Stats {
	if db.sharded != nil {
		return db.sharded.Stats()
	}
	return db.store.Stats()
}

// ShardStats returns shard i's live counters (i < Shards()). For an
// unsharded DB, ShardStats(0) is Stats.
func (db *DB) ShardStats(i int) *core.Stats {
	if db.sharded != nil {
		return db.sharded.ShardStore(i).Stats()
	}
	return db.store.Stats()
}

// NVMStats exposes the simulated memory subsystem's counters (writebacks,
// fences, flushed lines, crash outcomes), summed across arenas when
// sharded.
func (db *DB) NVMStats() nvm.StatsSnapshot {
	if db.sharded != nil {
		return db.sharded.NVMStats()
	}
	return db.arena.Stats().Snapshot()
}
