package incll

// Online elastic resharding: repartition a live DB's keyspace across a
// new shard count without stopping reads, writes, or transactions.
//
// The protocol composes machinery this codebase already trusts:
//
//  1. Build: open a fresh target shard set at topology version V+1, sized
//     from the original Options with the new shard count.
//  2. Snapshot copy: subscribe (pinned) to the donor's change stream,
//     then stream an online snapshot into the target (internal/repl) —
//     exact at an anchor epoch, concurrent with writers.
//  3. Tail: apply the released change stream to the target until it has
//     caught up with the donor's committed horizon.
//  4. Cutover: under the transaction manager's exclusive commit guard,
//     gate new writers, drain in-flight ones, run the donor's final
//     checkpoint, drain the stream to that final horizon, commit the
//     target, and then durably commit the topology manifest — the single
//     PCSO-atomic commit point. Everything before it crashes back to the
//     donor; everything after recovers onto the target.
//
// A cutover pauses writers for the duration of one epoch advance plus the
// final tail drain (measured and reported as ReshardResult.CutoverPause);
// reads never block except for the pointer-swap instant. See DESIGN.md
// §13 for the full crash decision table.

import (
	"fmt"
	"io"
	"time"

	"sync/atomic"

	"incll/internal/obs"
	"incll/internal/repl"
	"incll/internal/shard"
	"incll/internal/txn"
)

// Reshard phases, as exposed by ReshardProgress and the
// incll_reshard_phase gauge.
const (
	reshardIdle     = 0
	reshardSnapshot = 1
	reshardTail     = 2
	reshardCutover  = 3
)

// reshardState is the live progress of the current (or last) reshard,
// readable concurrently by ReshardProgress and the metrics registry.
type reshardState struct {
	phase       atomic.Int64 // reshardIdle/Snapshot/Tail/Cutover
	from, to    atomic.Int64
	copiedKeys  atomic.Int64 // keys restored by the snapshot copy
	copiedBytes atomic.Int64 // key+value bytes restored by the snapshot copy
	tailed      atomic.Int64 // change entries applied by the tail
	lagEpochs   atomic.Int64 // released epochs the tail still trails by
	cutovers    atomic.Int64 // durably committed cutovers on this DB
	lastPauseNS atomic.Int64 // last cutover's writer-visible pause
}

// ReshardProgress is a point-in-time snapshot of a running (or the most
// recent) reshard.
type ReshardProgress struct {
	// Active reports whether a reshard is in flight.
	Active bool
	// Phase is "idle", "snapshot", "tail", or "cutover".
	Phase string
	// From and To are the donor and target shard counts (zero when no
	// reshard has run).
	From, To int
	// CopiedKeys and CopiedBytes count the snapshot copy into the target.
	CopiedKeys, CopiedBytes int64
	// TailedChanges counts change-stream entries applied by the tail.
	TailedChanges int64
	// LagEpochs is how many released epochs the tail still trails by.
	LagEpochs int64
	// Cutovers counts durably committed reshards on this DB instance.
	Cutovers int64
}

// ReshardResult summarizes one completed reshard.
type ReshardResult struct {
	// From and To are the donor and target shard counts.
	From, To int
	// TopoVersion is the new live topology version.
	TopoVersion uint64
	// CopiedKeys and CopiedBytes count the snapshot copy.
	CopiedKeys, CopiedBytes int64
	// TailedChanges counts change-stream entries the tail applied on top
	// of the snapshot.
	TailedChanges int64
	// CutoverPause is how long the cutover gated writers: the only window
	// in which the reshard is visible to the workload as added latency.
	CutoverPause time.Duration
	// Took is the end-to-end duration, copy included.
	Took time.Duration
}

// ReshardProgress reports the live state of the current (or last)
// reshard; safe to call concurrently with Reshard.
func (db *DB) ReshardProgress() ReshardProgress {
	s := &db.rstate
	p := ReshardProgress{
		From:          int(s.from.Load()),
		To:            int(s.to.Load()),
		CopiedKeys:    s.copiedKeys.Load(),
		CopiedBytes:   s.copiedBytes.Load(),
		TailedChanges: s.tailed.Load(),
		LagEpochs:     s.lagEpochs.Load(),
		Cutovers:      s.cutovers.Load(),
	}
	switch s.phase.Load() {
	case reshardSnapshot:
		p.Active, p.Phase = true, "snapshot"
	case reshardTail:
		p.Active, p.Phase = true, "tail"
	case reshardCutover:
		p.Active, p.Phase = true, "cutover"
	default:
		p.Phase = "idle"
	}
	return p
}

// SetReshardHook installs the reshard crash-injection hook, fired at
// every protocol point; a non-nil return aborts (or, after the manifest
// commit, merely reports). Never use outside tests (see
// internal/crashtest).
func (db *DB) SetReshardHook(h func(point string) error) { db.reshardHook = h }

// fireReshard fires the crash-injection hook at a protocol point.
func (db *DB) fireReshard(point string) error {
	if db.reshardHook == nil {
		return nil
	}
	return db.reshardHook(point)
}

// Reshard repartitions the DB's keyspace across newShards shards, online:
// reads, writes, and transactions keep running throughout; writers are
// gated only for the cutover pause. On success the DB serves the new
// topology (TopoVersion is incremented, durably) and the donor shard set
// is retired; existing Handle values and the background checkpointer
// carry over. Change-stream subscribers are cut with ErrStreamLost at the
// cutover (exactly as after a primary crash) and should re-bootstrap;
// iterators opened before the cutover keep reading the donor's frozen
// final checkpoint.
//
// On error before the cutover commit, the DB is untouched (still on the
// donor topology) and the partially built target is discarded. An error
// wrapping a post-commit hook failure reports a COMPLETED reshard.
func (db *DB) Reshard(newShards int) (ReshardResult, error) {
	if newShards < 1 {
		return ReshardResult{}, fmt.Errorf("incll: Reshard(%d): shard count must be at least 1", newShards)
	}
	if err := (Options{Shards: newShards}).Validate(); err != nil {
		return ReshardResult{}, err
	}
	db.reshardMu.Lock()
	defer db.reshardMu.Unlock()

	donor := db.engine()
	if newShards == donor.topo.Shards {
		return ReshardResult{}, fmt.Errorf("incll: Reshard(%d): already %d shards", newShards, newShards)
	}

	start := time.Now()
	s := &db.rstate
	s.from.Store(int64(donor.topo.Shards))
	s.to.Store(int64(newShards))
	s.copiedKeys.Store(0)
	s.copiedBytes.Store(0)
	s.tailed.Store(0)
	s.lagEpochs.Store(0)
	s.phase.Store(reshardSnapshot)
	fail := func(err error) (ReshardResult, error) {
		s.phase.Store(reshardIdle)
		return ReshardResult{}, err
	}
	db.trace.Record(obs.EvReshardStart, -1, donor.epoch(), 0, int64(newShards))
	if err := db.fireReshard("reshard-start"); err != nil {
		return fail(err)
	}

	// Build: a fresh shard set at the next topology version, sized from
	// the original options so per-shard defaults derive from the NEW shard
	// count (the donor's post-default sizes are already divided by the old
	// one). Targets are always shard.Store-backed, even at one shard, so
	// an unsharded DB can reshard outward and a cluster can fold to one.
	topts := db.rawOpts
	topts.Shards = newShards
	topts.setDefaults()
	nextVer := donor.topo.Version + 1
	target, _ := shard.Open(shardConfig(topts, nextVer, db.trace, db.stw, db.phases))
	tgtH := target.Handle(0)

	// Snapshot copy: subscribe first (pinned — the tail cannot consume
	// until the restore finishes, so lagging in this window is by
	// construction), then stream a consistent online snapshot straight
	// into the target. Mirrors Replica.bootstrap.
	stream := db.changesPinned()
	defer stream.Close()
	pr, pw := io.Pipe()
	var (
		expErr  error
		expDone = make(chan struct{})
	)
	go func() {
		defer close(expDone)
		_, expErr = db.Snapshot(pw)
		pw.CloseWithError(expErr)
	}()
	info, err := repl.Restore(pr, repl.Target{
		Put: func(k, v []byte) error {
			tgtH.PutBytes(k, v)
			s.copiedKeys.Add(1)
			s.copiedBytes.Add(int64(len(k) + len(v)))
			return nil
		},
		Delete: func(k []byte) error {
			tgtH.Delete(k)
			return nil
		},
		Checkpoint: func() { target.Advance() },
	})
	// Unblock the exporter before waiting for it: if the restore side
	// failed first, the exporter may be mid-Write with no reader left.
	pr.CloseWithError(err)
	<-expDone
	if err == nil {
		err = expErr
	}
	if err != nil {
		return fail(err)
	}
	anchor := info.AnchorEpoch
	db.trace.Record(obs.EvReshardSnapshot, -1, anchor, time.Since(start), s.copiedKeys.Load())
	if err := db.fireReshard("snapshot-done"); err != nil {
		return fail(err)
	}
	target.Advance() // commit the restored state before tailing on top
	if err := db.fireReshard("restore-done"); err != nil {
		return fail(err)
	}

	// Tail: apply released batches until the target has caught up with
	// everything committed so far. Entries at or below the anchor are
	// baked into the snapshot; later ones replay last-write-wins.
	s.phase.Store(reshardTail)
	applied := anchor
	unpinned := false
	drainTo := func(horizon uint64) error {
		for applied < horizon {
			s.lagEpochs.Store(int64(horizon - applied))
			b, err := stream.Next()
			if err != nil {
				return err
			}
			if !unpinned {
				// The bootstrap window is over: the tail is an active
				// consumer, subject to the normal journal budget.
				stream.sub.Unpin()
				unpinned = true
			}
			t0 := time.Now()
			var n int64
			for i := range b.Changes {
				c := &b.Changes[i]
				if c.Epoch <= anchor {
					continue
				}
				if c.Op == ChangeDelete {
					tgtH.Delete(c.Key)
				} else {
					tgtH.PutBytes(c.Key, c.Value)
				}
				n++
			}
			target.Advance() // the target is always a whole released prefix
			applied = b.Epoch
			s.tailed.Add(n)
			db.trace.Record(obs.EvReshardTail, -1, b.Epoch, time.Since(t0), n)
			if err := db.fireReshard("tail-batch"); err != nil {
				return err
			}
		}
		s.lagEpochs.Store(0)
		return nil
	}
	if err := drainTo(stream.Released()); err != nil {
		return fail(err)
	}
	if err := db.fireReshard("pre-cutover"); err != nil {
		return fail(err)
	}

	// Cutover, under the transaction manager's exclusive commit guard (no
	// transaction commit or coordinated checkpoint runs concurrently):
	//
	//   gate writers → drain in-flight writes → donor's final checkpoint
	//   → drain stream to that horizon → commit target → COMMIT MANIFEST
	//   → seal donor → swap engine → open gate.
	//
	// The manifest commit is the durable point of no return; every hook
	// error before it unwinds to the donor with nothing lost (all
	// concurrent writes landed on the donor and stay there), every error
	// after it reports a completed reshard.
	s.phase.Store(reshardCutover)
	var pause time.Duration
	cutErr := db.txns.Cutover(txn.ClusterConfig(target), func() (bool, error) {
		t0 := time.Now()
		gated := donor.barrier()
		db.eng.Store(gated)
		unwind := func() {
			db.eng.Store(donor)
			close(gated.gate)
		}
		donor.drainWrites()
		donor.advanceRaw() // final donor checkpoint: releases the last writes
		if err := db.fireReshard("cutover-advanced"); err != nil {
			unwind()
			return false, err
		}
		if err := drainTo(stream.Released()); err != nil {
			unwind()
			return false, err
		}
		if err := db.fireReshard("cutover-drained"); err != nil {
			unwind()
			return false, err
		}
		target.Advance() // target durably holds everything the donor ever committed
		if err := db.fireReshard("cutover-target-committed"); err != nil {
			unwind()
			return false, err
		}
		db.manifest.Commit(nextVer, newShards) // THE commit point
		s.cutovers.Add(1)
		db.trace.Record(obs.EvReshardCutover, -1, donor.epoch(), time.Since(t0), int64(nextVer))
		donor.seal()
		var commitErr error
		if err := db.fireReshard("cutover-manifest"); err != nil {
			commitErr = fmt.Errorf("incll: reshard committed; post-commit hook: %w", err)
		}
		db.eng.Store(newEngine(topts, nil, nil, target))
		close(gated.gate)
		pause = time.Since(t0)
		return true, commitErr
	})
	if db.manifest.Version() != nextVer {
		// The cutover unwound before the manifest commit: the donor is
		// live and untouched, the target is discarded.
		return fail(cutErr)
	}

	// Committed. Retire the donor-bound plumbing: the change hub dies with
	// the donor topology (subscribers see ErrStreamLost and re-bootstrap,
	// exactly as after a primary crash), and the metrics registry and
	// recorder rebuild against the new engine's per-shard series.
	db.replMu.Lock()
	if db.replHub != nil {
		db.replHub.Close(false)
		db.replHub = nil
	}
	db.replMu.Unlock()
	db.resetRegistry()
	db.restartRecorder()

	s.phase.Store(reshardIdle)
	s.lastPauseNS.Store(int64(pause))
	took := time.Since(start)
	db.trace.Record(obs.EvReshardDone, -1, db.currentEpoch(), took, int64(newShards))
	res := ReshardResult{
		From:          donor.topo.Shards,
		To:            newShards,
		TopoVersion:   nextVer,
		CopiedKeys:    s.copiedKeys.Load(),
		CopiedBytes:   s.copiedBytes.Load(),
		TailedChanges: s.tailed.Load(),
		CutoverPause:  pause,
		Took:          took,
	}
	return res, cutErr
}
