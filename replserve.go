package incll

// Networked replication: the DB-level façade over internal/replnet.
//
//   - DB.ServeReplication turns a live DB into a replication primary: a
//     TCP listener streaming each accepted follower a snapshot bootstrap
//     and then the released change batches, with heartbeats and per-peer
//     lag bookkeeping.
//   - FollowPrimary runs a networked follower: it dials the primary,
//     restores the snapshot into a fresh local DB, applies the live
//     stream (checkpointing at released-batch boundaries, exactly like
//     the in-process Replica loop), and reconnects with jittered
//     exponential backoff — every reconnect is a full re-bootstrap,
//     because the primary's change journal cannot replay from an
//     arbitrary past epoch.
//   - Follower reads are gated by the epoch watermark: a read that
//     demands epoch E is served only when the follower's applied
//     watermark has reached E; otherwise it fails with a typed LagError
//     so the client can retry (read-your-writes: capture the commit
//     epoch with DB.CurrentEpoch after a write, then pass it as the
//     read's minimum epoch on any follower).
//   - Failover: a follower whose primary stays silent past the
//     heartbeat deadline reports Down; the operator (or kvserver's
//     -promote flow) calls Promote, getting a standalone DB that can
//     itself ServeReplication, and the old primary rejoins as a
//     follower of the new one — a full resync, byte-identical on
//     convergence.
//
// See DESIGN.md §14 for the wire handshake, the heartbeat/failover
// state machine, and the watermark read rule.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/obs"
	"incll/internal/repl"
	"incll/internal/replnet"
)

// ErrReplicaLagging is the sentinel a watermark-gated follower read
// fails with when the follower has not yet applied the requested epoch;
// match with errors.Is and retry after the lag clears (the concrete
// error is a *LagError carrying the epochs).
var ErrReplicaLagging = errors.New("incll: follower watermark below requested epoch")

// LagError reports a follower read rejected by the watermark rule: the
// read demanded epoch Need but the follower has only applied Have.
type LagError struct {
	Need, Have uint64
}

func (e *LagError) Error() string {
	return fmt.Sprintf("incll: follower watermark below requested epoch (need %d, have %d)", e.Need, e.Have)
}

// Is makes errors.Is(err, ErrReplicaLagging) match.
func (e *LagError) Is(target error) bool { return target == ErrReplicaLagging }

// CurrentEpoch returns the currently running (not yet committed) epoch.
// Read it after a write completes for a conservative commit epoch E: the
// write belongs to an epoch ≤ E, so any follower whose applied watermark
// has reached E is guaranteed to serve that write (read-your-writes).
func (db *DB) CurrentEpoch() uint64 { return db.currentEpoch() }

// ReleasedEpoch returns the last globally committed epoch released to
// the change stream — the horizon a fully caught-up follower has
// applied. Activates the change journal on first use, like DB.Changes.
func (db *DB) ReleasedEpoch() uint64 { return db.hub().Released() }

// --- primary side ----------------------------------------------------------

// ReplServerOptions tunes DB.ServeReplication; the zero value is ready
// to use.
type ReplServerOptions struct {
	// Heartbeat is the idle-channel heartbeat interval (default 250ms);
	// DeadAfter is how long a follower may go without acking before it
	// is declared dead and disconnected (default 4× Heartbeat).
	Heartbeat time.Duration
	DeadAfter time.Duration
	// QueueLen is the per-peer send-queue depth in batches (default 32).
	QueueLen int
	// Logf, if set, receives peer lifecycle log lines.
	Logf func(format string, args ...any)
}

// PeerStatus is a point-in-time view of one connected follower.
type PeerStatus = replnet.PeerStatus

// ReplServer serves this DB's replication stream to networked followers.
type ReplServer struct {
	db  *DB
	srv *replnet.Server
}

// ServeReplication starts serving this DB as a replication primary on
// lis (which the server owns from here on). Each accepted follower gets
// a consistent snapshot bootstrap — a pinned change subscription taken
// before the scan, so nothing slips between snapshot and stream — and
// then the released change batches as checkpoints commit. Followers that
// lag past the journal budget are cut (they re-bootstrap); followers
// that go silent past DeadAfter are disconnected. DB.Close stops
// accepting first, releases the final epoch, and only then tears down
// the peer connections, so a clean shutdown delivers the complete
// stream to every live follower.
func (db *DB) ServeReplication(lis net.Listener, o ReplServerOptions) (*ReplServer, error) {
	if db.closed.Load() {
		return nil, errors.New("incll: ServeReplication on a closed DB")
	}
	rs := &ReplServer{db: db}
	cfg := replnet.Config{
		Bootstrap: func(w io.Writer) (replnet.BatchSource, uint64, error) {
			stream := db.changesPinned()
			info, err := db.Snapshot(w)
			if err != nil {
				stream.Close()
				return nil, 0, err
			}
			return stream.sub, info.AnchorEpoch, nil
		},
		Released:  func() uint64 { return db.hub().Released() },
		Heartbeat: o.Heartbeat,
		DeadAfter: o.DeadAfter,
		QueueLen:  o.QueueLen,
		OnPeer:    db.registerReplnetPeerGauges,
		Trace:     db.trace,
		RTT:       db.netRTTHist(),
		Timeline:  db.propagation(),
		Logf:      o.Logf,
	}
	rs.srv = replnet.Serve(lis, cfg)

	db.netMu.Lock()
	db.netSrvs = append(db.netSrvs, rs)
	db.netMu.Unlock()
	db.netCur.Store(rs.srv)
	db.registerReplnetServerGauges()
	return rs, nil
}

// Addr returns the replication listener's address.
func (rs *ReplServer) Addr() net.Addr { return rs.srv.Addr() }

// Peers returns a point-in-time status of every connected follower.
func (rs *ReplServer) Peers() []PeerStatus { return rs.srv.PeersSnapshot() }

// Stats returns the server's aggregate counters.
func (rs *ReplServer) Stats() replnet.Stats { return rs.srv.Stats() }

// HeartbeatRTT returns the q-quantile of observed heartbeat round trips
// across this DB's replication peers.
func (rs *ReplServer) HeartbeatRTT(q float64) time.Duration {
	return time.Duration(rs.db.netRTTHist().Quantile(q))
}

// Close stops the replication server: no new followers, every peer
// disconnected. The DB itself stays open. Idempotent.
func (rs *ReplServer) Close() {
	rs.srv.Close()
	db := rs.db
	db.netMu.Lock()
	for i, s := range db.netSrvs {
		if s == rs {
			db.netSrvs = append(db.netSrvs[:i], db.netSrvs[i+1:]...)
			break
		}
	}
	db.netMu.Unlock()
	db.netCur.CompareAndSwap(rs.srv, nil)
}

// netRTTHist lazily creates the DB-owned heartbeat RTT histogram (shared
// across re-serves so the registered series never dangles).
func (db *DB) netRTTHist() *obs.Histogram {
	db.netMu.Lock()
	defer db.netMu.Unlock()
	if db.netRTT == nil {
		db.netRTT = &obs.Histogram{}
	}
	return db.netRTT
}

// propagation returns the DB-owned epoch propagation timeline, creating
// it on first use. The hub stamps commit/release into it; the replnet
// server stamps the per-peer send/ack path. Like netRTT it outlives any
// one server, so the registered histograms never dangle.
func (db *DB) propagation() *obs.EpochTimeline {
	if tl := db.propTL.Load(); tl != nil {
		return tl
	}
	tl := obs.NewEpochTimeline(0)
	if db.propTL.CompareAndSwap(nil, tl) {
		return tl
	}
	return db.propTL.Load()
}

// replServers snapshots the attached replication servers.
func (db *DB) replServers() []*ReplServer {
	db.netMu.Lock()
	defer db.netMu.Unlock()
	return append([]*ReplServer(nil), db.netSrvs...)
}

// registerReplnetServerGauges registers the primary-side incll_replnet_*
// series once per DB; the series read through netCur, so they follow a
// re-serve and report zeros while no server is attached.
func (db *DB) registerReplnetServerGauges() {
	db.netMu.Lock()
	if db.netGaugesOn {
		db.netMu.Unlock()
		return
	}
	db.netGaugesOn = true
	db.netMu.Unlock()

	cur := func() *replnet.Server { return db.netCur.Load() }
	stat := func(read func(replnet.Stats) int64) func() int64 {
		return func() int64 {
			s := cur()
			if s == nil {
				return 0
			}
			return read(s.Stats())
		}
	}
	f := func(reg *obs.Registry) {
		reg.Gauge("incll_replnet_peers",
			"Currently connected replication followers.", "",
			stat(func(s replnet.Stats) int64 { return int64(s.Peers) }))
		reg.Counter("incll_replnet_accepts_total",
			"Follower connections accepted by the replication server.", "",
			stat(func(s replnet.Stats) int64 { return s.Accepts }))
		reg.Counter("incll_replnet_kicked_total",
			"Stale duplicate follower connections replaced by a reconnect.", "",
			stat(func(s replnet.Stats) int64 { return s.Kicked }))
		reg.Counter("incll_replnet_peer_errors_total",
			"Followers torn down on error or missed ack deadline.", "",
			stat(func(s replnet.Stats) int64 { return s.PeerErrs }))
		reg.Counter("incll_replnet_sent_bytes_total",
			"Replication payload bytes sent to followers (bootstrap and batches).", "",
			stat(func(s replnet.Stats) int64 { return s.SentBytes }))
		reg.Gauge("incll_replnet_max_peer_lag_epochs",
			"Largest released-epoch lag across connected followers.", "",
			func() int64 {
				s := cur()
				if s == nil {
					return 0
				}
				var max uint64
				for _, p := range s.PeersSnapshot() {
					if p.LagEpochs > max {
						max = p.LagEpochs
					}
				}
				return int64(max)
			})
		reg.Gauge("incll_replnet_max_queue_depth",
			"Deepest per-peer send queue (batches) across connected followers.", "",
			func() int64 {
				s := cur()
				if s == nil {
					return 0
				}
				var max int
				for _, p := range s.PeersSnapshot() {
					if p.QueueDepth > max {
						max = p.QueueDepth
					}
				}
				return int64(max)
			})
		reg.Histogram("incll_replnet_heartbeat_rtt_seconds",
			"Heartbeat round-trip time to followers.", "", db.netRTTHist(), 1e-9)
		tl := db.propagation()
		for st := obs.PropStage(0); st < obs.NumPropStages; st++ {
			reg.Histogram("incll_replnet_propagation_stage_seconds",
				"Epoch propagation latency by pipeline stage, single-clock on the primary (see DESIGN.md §15).",
				obs.Labels("stage", st.String()), tl.StageHist(st), 1e-9)
		}
	}
	db.regMu.Lock()
	db.extraReg = append(db.extraReg, f)
	if db.reg != nil {
		f(db.reg)
	}
	db.regMu.Unlock()
}

// registerReplnetPeerGauges registers the labeled per-peer series the
// first time each follower id connects. The series read through netCur
// and report zeros while that peer is disconnected — a scrape always
// sees a stable series set, never a panic from re-registration.
func (db *DB) registerReplnetPeerGauges(id string) {
	db.netMu.Lock()
	if db.netPeerIDs == nil {
		db.netPeerIDs = make(map[string]bool)
	}
	if db.netPeerIDs[id] {
		db.netMu.Unlock()
		return
	}
	db.netPeerIDs[id] = true
	db.netMu.Unlock()

	labels := obs.Labels("peer", id)
	peer := func(read func(PeerStatus) int64) func() int64 {
		return func() int64 {
			s := db.netCur.Load()
			if s == nil {
				return 0
			}
			st, ok := s.PeerStatus(id)
			if !ok {
				return 0
			}
			return read(st)
		}
	}
	f := func(reg *obs.Registry) {
		reg.Gauge("incll_replnet_peer_lag_epochs",
			"Released epochs this follower has not yet acked.", labels,
			peer(func(p PeerStatus) int64 { return int64(p.LagEpochs) }))
		reg.Gauge("incll_replnet_peer_lag_bytes",
			"Released change bytes this follower has not yet consumed.", labels,
			peer(func(p PeerStatus) int64 { return int64(p.LagBytes) }))
		reg.Gauge("incll_replnet_peer_queue_depth",
			"Batches waiting in this follower's send queue.", labels,
			peer(func(p PeerStatus) int64 { return int64(p.QueueDepth) }))
		reg.Gauge("incll_replnet_peer_acked_epoch",
			"Last applied epoch this follower acked.", labels,
			peer(func(p PeerStatus) int64 { return int64(p.AckedEpoch) }))
		reg.Histogram("incll_replnet_commit_to_apply_seconds",
			"Checkpoint commit to this follower's durable-apply ack, stamped on the primary clock (see DESIGN.md §15).",
			labels, db.propagation().PeerHist(id), 1e-9)
	}
	db.regMu.Lock()
	db.extraReg = append(db.extraReg, f)
	if db.reg != nil {
		f(db.reg)
	}
	db.regMu.Unlock()
}

// --- follower side ---------------------------------------------------------

// FollowerOptions tunes FollowPrimary; the zero value is ready to use.
type FollowerOptions struct {
	// Options sizes the follower's local store (any shard count —
	// records route by key on restore).
	Options Options
	// ID identifies this follower to the primary (per-peer metrics key;
	// a reconnect with the same id replaces the stale connection).
	// Defaults to a stable per-follower identity (hostname plus a random
	// tag), reused across reconnects.
	ID string
	// DeadAfter is how long the stream may go silent before the primary
	// is declared down and the follower starts reconnecting (default
	// 2s). Failover policies compare Down()'s duration against their
	// promotion deadline.
	DeadAfter time.Duration
	// ReconnectMin/ReconnectMax bound the jittered exponential reconnect
	// backoff (defaults 50ms / 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// ReadyTimeout bounds how long FollowPrimary blocks for the first
	// bootstrap (default 30s).
	ReadyTimeout time.Duration
	// Seed seeds the reconnect jitter (0 derives one from the clock).
	Seed int64
	// Logf, if set, receives session lifecycle log lines.
	Logf func(format string, args ...any)
}

var errFollowerDone = errors.New("incll: follower closed or promoted")

// storeRef is one bootstrap generation of the follower store with a
// reader refcount. A re-bootstrap swaps a new generation in and drops the
// follower's own reference; the old store closes only when the last
// in-flight reader releases it — never under an active read.
type storeRef struct {
	db   *DB
	refs atomic.Int64
}

func newStoreRef(db *DB) *storeRef {
	r := &storeRef{db: db}
	r.refs.Store(1) // the Follower's own reference
	return r
}

func (r *storeRef) release() {
	if r.refs.Add(-1) == 0 {
		r.db.Close()
	}
}

// Follower is a networked replica: a local DB kept converging to a
// remote primary over TCP. Its state is always the primary's at some
// committed epoch boundary after each applied batch (the same loop
// discipline as the in-process Replica); its applied watermark gates
// reads for the read-your-writes contract. The follower DB's identity
// changes across reconnects (every reconnect is a fresh snapshot
// bootstrap) — read through GetBytes or pin a store for a longer
// operation with View; both hold the current generation open for the
// read's whole duration, so a concurrent re-bootstrap can never close
// the store out from under it.
type Follower struct {
	addr string
	o    FollowerOptions
	cli  *replnet.Client

	mu       sync.RWMutex
	store    *storeRef
	anchor   uint64
	applied  uint64
	bytes    uint64
	bootInfo SnapshotInfo
	promoted bool
	closed   bool

	// Recorder arming, replayed onto every bootstrap generation (each
	// reconnect builds a fresh DB, which would otherwise come up with no
	// /metrics/history).
	recOn       bool
	recInterval time.Duration
	recCap      int
}

// StartRecorder arms the metric recorder (the backing store for
// MetricsHistory) on the follower's current store, and re-arms it on
// every future re-bootstrap. Without this a follower node would lose
// its history ring at each reconnect — incll-top's follower lag
// sparkline reads it.
func (f *Follower) StartRecorder(interval time.Duration, capacity int) {
	f.mu.Lock()
	f.recOn, f.recInterval, f.recCap = true, interval, capacity
	st := f.store
	if st != nil {
		st.refs.Add(1)
	}
	f.mu.Unlock()
	if st != nil {
		st.db.StartRecorder(interval, capacity)
		st.release()
	}
}

// pin acquires the current store generation for a read; release it when
// done. Acquiring under the read lock is what makes it safe: the swap in
// netBootstrap drops the follower's own reference only after taking the
// write lock, so a generation observed here still holds that reference
// and cannot hit zero concurrently.
func (f *Follower) pin() (*storeRef, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.store == nil {
		return nil, false
	}
	f.store.refs.Add(1)
	return f.store, true
}

// FollowPrimary starts a follower of the replication primary at addr
// and blocks until its first snapshot bootstrap completes (bounded by
// ReadyTimeout). The returned follower keeps itself converged in the
// background and reconnects (with a full re-bootstrap) whenever the
// connection, the stream, or the primary fails.
func FollowPrimary(addr string, o FollowerOptions) (*Follower, error) {
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = 30 * time.Second
	}
	f := &Follower{addr: addr, o: o}
	f.cli = replnet.Dial(replnet.ClientConfig{
		Addr:       addr,
		ID:         o.ID,
		Bootstrap:  f.netBootstrap,
		Apply:      f.netApply,
		DeadAfter:  o.DeadAfter,
		BackoffMin: o.ReconnectMin,
		BackoffMax: o.ReconnectMax,
		Seed:       o.Seed,
		Logf:       o.Logf,
	})
	if err := f.cli.WaitReady(o.ReadyTimeout); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// netBootstrap restores one snapshot stream into a fresh DB and swaps it
// in as the follower's store. Called by the transport client on every
// (re)connect.
func (f *Follower) netBootstrap(r io.Reader) (uint64, error) {
	f.mu.RLock()
	done := f.closed || f.promoted
	f.mu.RUnlock()
	if done {
		return 0, errFollowerDone
	}
	db, info, err := Restore(r, f.o.Options)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		db.Close()
		return 0, errFollowerDone
	}
	old := f.store
	f.store = newStoreRef(db)
	f.anchor = info.AnchorEpoch
	f.applied = info.AnchorEpoch
	f.bootInfo = info
	f.mu.Unlock()
	if old != nil {
		// Drop the follower's reference; the old store closes once the
		// last in-flight reader releases its pin.
		old.release()
	}
	db.trace.Record(obs.EvNetFollowerConnect, -1, info.AnchorEpoch, 0, int64(info.Keys))
	db.registerFollowerGauges(f)
	f.mu.RLock()
	recOn, ri, rc := f.recOn, f.recInterval, f.recCap
	f.mu.RUnlock()
	if recOn {
		db.StartRecorder(ri, rc)
	}
	return info.AnchorEpoch, nil
}

// netApply applies one batch chunk (entries already filtered above the
// session anchor by the transport) and, on final chunks, checkpoints and
// advances the watermark — the follower's durable state only ever sits
// at released-batch boundaries, mirroring Replica.applyLoop.
func (f *Follower) netApply(horizon uint64, final bool, ents []repl.Entry) error {
	st, ok := f.pin()
	if !ok {
		return errFollowerDone
	}
	defer st.release()
	db := st.db
	start := time.Now()
	var nb uint64
	for i := range ents {
		e := &ents[i]
		if e.Op == ChangeDelete {
			db.Delete(e.Key)
		} else {
			if _, err := db.PutBytes(e.Key, e.Val); err != nil {
				return err
			}
		}
		nb += uint64(len(e.Key) + len(e.Val))
	}
	if final {
		db.Checkpoint()
		db.trace.Record(obs.EvReplicaApply, -1, horizon, time.Since(start), int64(nb))
		f.mu.Lock()
		f.applied = horizon
		f.bytes += nb
		f.mu.Unlock()
	}
	return nil
}

// DB returns the follower store for reads. The identity changes across
// reconnects, and a re-bootstrap may close the returned store while the
// caller still holds it — safe only when no reconnect can be in flight
// (tests, quiesced clusters). Live read paths should use GetBytes (which
// also enforces the watermark rule) or View, both of which pin the
// current generation open for the read's duration.
func (f *Follower) DB() *DB {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.store == nil {
		return nil
	}
	return f.store.db
}

// View runs fn against the follower's current store, holding that
// bootstrap generation open for fn's whole duration: a concurrent
// re-bootstrap swaps in its new store without waiting, but the old one
// is not closed until fn returns. Use for multi-read operations
// (iteration, snapshot export, metrics collection) on a live follower.
func (f *Follower) View(fn func(db *DB)) error {
	st, ok := f.pin()
	if !ok {
		return errFollowerDone
	}
	defer st.release()
	fn(st.db)
	return nil
}

// AppliedEpoch returns the follower's applied watermark: its state
// equals the primary's at this epoch's checkpoint commit.
func (f *Follower) AppliedEpoch() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.applied
}

// BootstrapInfo describes the snapshot the current session bootstrapped
// from.
func (f *Follower) BootstrapInfo() SnapshotInfo {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.bootInfo
}

// PrimaryReleased returns the primary's released horizon as last heard.
func (f *Follower) PrimaryReleased() uint64 { return f.cli.PrimaryReleased() }

// Connected reports whether a live session is streaming right now.
func (f *Follower) Connected() bool { return f.cli.Connected() }

// Down reports whether the primary is currently unreachable and for how
// long. Failover policy: promote when the duration passes your deadline.
func (f *Follower) Down() (bool, time.Duration) {
	d := f.cli.DownFor()
	return d > 0, d
}

// Reconnects counts sessions ended (dial failures included).
func (f *Follower) Reconnects() int64 { return f.cli.Reconnects() }

// Lag reports how far the follower trails the primary's last-heard
// released horizon.
func (f *Follower) Lag() ReplicaLag {
	f.mu.RLock()
	applied := f.applied
	f.mu.RUnlock()
	rel := f.cli.PrimaryReleased()
	lag := ReplicaLag{}
	if rel > applied {
		lag.Epochs = rel - applied
	}
	return lag
}

// GetBytes serves a watermark-gated read: if the follower has applied at
// least minEpoch, the read is served from the local store; otherwise it
// fails with a *LagError (errors.Is ErrReplicaLagging) and the caller
// retries, here or on a less-lagged follower. Pass minEpoch 0 for a
// plain local read at whatever the follower has.
func (f *Follower) GetBytes(k []byte, minEpoch uint64) ([]byte, bool, error) {
	f.mu.RLock()
	st, applied := f.store, f.applied
	if st != nil {
		st.refs.Add(1) // pin under the read lock; see Follower.pin
	}
	f.mu.RUnlock()
	if st == nil {
		return nil, false, errFollowerDone
	}
	defer st.release()
	if minEpoch > applied {
		return nil, false, &LagError{Need: minEpoch, Have: applied}
	}
	v, ok := st.db.GetBytes(k)
	return v, ok, nil
}

// WaitWatermark blocks until the applied watermark reaches epoch or the
// timeout elapses (returning the would-be LagError on timeout).
func (f *Follower) WaitWatermark(epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.RLock()
		applied, done := f.applied, f.closed || f.promoted
		f.mu.RUnlock()
		if applied >= epoch {
			return nil
		}
		if done {
			return errFollowerDone
		}
		if time.Now().After(deadline) {
			return &LagError{Need: epoch, Have: applied}
		}
		time.Sleep(time.Millisecond)
	}
}

// Promote stops following and returns the follower store as a
// standalone primary, exact at AppliedEpoch. Unlike the in-process
// Replica.Promote there is no catch-up first — promotion happens
// because the primary is gone; whatever it released but never delivered
// is lost with it (the usual asynchronous-failover contract). The
// Follower must not be used afterwards; the returned DB can
// ServeReplication so the remaining followers (and the rejoining old
// primary) resync to it.
func (f *Follower) Promote() (*DB, error) {
	f.cli.Close() // joins the apply loop: no write can land after this
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errFollowerDone
	}
	if f.promoted {
		return nil, errors.New("incll: follower already promoted")
	}
	f.promoted = true
	st := f.store
	f.store = nil
	if st == nil {
		return nil, errFollowerDone
	}
	// Ownership of the store transfers to the caller: the follower's
	// reference is deliberately never released, so draining readers can
	// not close the promoted DB out from under its new owner.
	db := st.db
	db.trace.Record(obs.EvNetPromote, -1, f.applied, 0, 0)
	return db, nil
}

// Close stops the follower and closes its local store (deferred past any
// still-running pinned reader). Idempotent; a promoted follower's store
// is owned by the caller and left open.
func (f *Follower) Close() {
	f.cli.Close()
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		return
	}
	f.closed = true
	st := f.store
	f.store = nil
	f.mu.Unlock()
	if st != nil {
		st.release()
	}
}

// registerFollowerGauges registers the follower-side incll_replnet_*
// series on a freshly bootstrapped follower DB (each reconnect builds a
// new DB, so registration never collides).
func (db *DB) registerFollowerGauges(f *Follower) {
	g := func(reg *obs.Registry) {
		reg.Gauge("incll_replnet_applied_epoch",
			"Follower applied watermark (last released epoch fully applied).", "",
			func() int64 { return int64(f.AppliedEpoch()) })
		reg.Gauge("incll_replnet_primary_released_epoch",
			"Primary released horizon as last heard by this follower.", "",
			func() int64 { return int64(f.PrimaryReleased()) })
		reg.Gauge("incll_replnet_lag_epochs",
			"Released epochs this follower still trails the primary by.", "",
			func() int64 { return int64(f.Lag().Epochs) })
		reg.Counter("incll_replnet_reconnects_total",
			"Follower sessions ended (each retried with backoff).", "",
			func() int64 { return f.Reconnects() })
		reg.Gauge("incll_replnet_connected",
			"1 while a live session is streaming from the primary.", "",
			func() int64 {
				if f.Connected() {
					return 1
				}
				return 0
			})
	}
	db.regMu.Lock()
	db.extraReg = append(db.extraReg, g)
	if db.reg != nil {
		g(db.reg)
	}
	db.regMu.Unlock()
}
