package incll

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"incll/internal/obs"
)

// reshardOpts sizes a small cluster that can host both donor and target
// side by side.
func reshardOpts(shards int) Options {
	return Options{
		Shards:      shards,
		Workers:     2,
		ArenaWords:  1 << 18,
		HeapWords:   1 << 17,
		LogSegWords: 1 << 12,
		TxnSegWords: 1 << 11,
	}
}

// collect snapshots the whole DB as a map.
func collect(db *DB) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range db.All() {
		out[string(k)] = DecodeValue(v)
	}
	return out
}

func testReshardLive(t *testing.T, from, to int) {
	db, _ := Open(reshardOpts(from))
	defer db.Close()
	const preload = 2000
	for i := uint64(0); i < preload; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()

	// Concurrent load throughout the reshard: worker 1 single-key writes,
	// worker 0 (the test goroutine, after Reshard returns) is quiet. The
	// writer records every write it completed; all of them must survive.
	var (
		stop    atomic.Bool
		wrote   sync.Map // key uint64 -> val uint64
		writerN atomic.Uint64
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := db.Handle(1)
		for i := uint64(0); !stop.Load(); i++ {
			k := preload + i%500
			v := 1_000_000 + i
			h.Put(Key(k), v)
			wrote.Store(k, v)
			writerN.Add(1)
		}
	}()

	res, err := db.Reshard(to)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("Reshard(%d→%d): %v", from, to, err)
	}
	if res.From != from || res.To != to || res.TopoVersion != 2 {
		t.Fatalf("result = %+v", res)
	}
	if db.Shards() != to || db.TopoVersion() != 2 {
		t.Fatalf("live topology = %d shards v%d", db.Shards(), db.TopoVersion())
	}

	// Writes that raced the cutover may have landed after Reshard returned
	// (the writer loop keeps going briefly); commit them before checking.
	db.Checkpoint()
	got := collect(db)
	for i := uint64(0); i < preload; i++ {
		want := i
		if v, ok := wrote.Load(i); ok {
			want = v.(uint64)
		}
		g, ok := got[string(Key(i))]
		if !ok {
			t.Fatalf("preloaded key %d lost across reshard", i)
		}
		if g != want && g != i {
			t.Fatalf("key %d = %d, want %d (or preload %d)", i, g, want, i)
		}
	}
	wrote.Range(func(k, v any) bool {
		g, ok := got[string(Key(k.(uint64)))]
		if !ok {
			t.Errorf("concurrent write to key %d lost across reshard", k)
			return false
		}
		// The writer overwrites each slot round-robin; the surviving value
		// must be one the writer actually wrote to that slot (any round) —
		// last-write-wins with the recorded final value in the common case.
		if g < 1_000_000 {
			t.Errorf("key %d = %d, want a writer value", k, g)
			return false
		}
		return true
	})
	if writerN.Load() == 0 {
		t.Fatal("writer made no progress during the reshard")
	}

	// The new topology keeps working: writes, transactions, another
	// checkpoint, and a crash-recovery cycle all run against the target.
	tx := db.Begin()
	tx.Put(Key(1), 11)
	tx.Put(Key(preload-1), 22)
	if err := tx.Commit(); err != nil {
		t.Fatalf("txn on new topology: %v", err)
	}
	db.Checkpoint()
	db.SimulateCrash(1.0, int64(from*1000+to))
	db2, _ := db.Reopen()
	defer db2.Close()
	if db2.Shards() != to || db2.TopoVersion() != 2 {
		t.Fatalf("recovered topology = %d shards v%d", db2.Shards(), db2.TopoVersion())
	}
	if v, _ := db2.Get(Key(1)); v != 11 {
		t.Fatalf("key 1 = %d after post-reshard recovery", v)
	}
}

func TestReshardLiveSplit(t *testing.T) { testReshardLive(t, 4, 8) }
func TestReshardLiveMerge(t *testing.T) { testReshardLive(t, 8, 4) }

func TestReshardFromUnsharded(t *testing.T) {
	db, _ := Open(Options{ArenaWords: 1 << 18, HeapWords: 1 << 17, LogSegWords: 1 << 12, TxnSegWords: 1 << 11})
	defer db.Close()
	for i := uint64(0); i < 300; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	res, err := db.Reshard(4)
	if err != nil {
		t.Fatalf("Reshard(1→4): %v", err)
	}
	if res.CopiedKeys != 300 {
		t.Fatalf("copied %d keys, want 300", res.CopiedKeys)
	}
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	for i := uint64(0); i < 300; i++ {
		if v, ok := db.Get(Key(i)); !ok || v != i {
			t.Fatalf("key %d = %d,%v after 1→4 reshard", i, v, ok)
		}
	}
}

func TestReshardValidation(t *testing.T) {
	db, _ := Open(reshardOpts(2))
	defer db.Close()
	if _, err := db.Reshard(0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
	if _, err := db.Reshard(MaxShards + 1); !errors.Is(err, ErrTooManyShards) {
		t.Fatalf("Reshard(MaxShards+1) = %v, want ErrTooManyShards", err)
	}
	if _, err := db.Reshard(2); err == nil {
		t.Fatal("Reshard to current shard count accepted")
	}
}

func TestReshardAbortLeavesDonorLive(t *testing.T) {
	db, _ := Open(reshardOpts(2))
	defer db.Close()
	for i := uint64(0); i < 200; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	boom := errors.New("boom")
	for _, point := range []string{"reshard-start", "snapshot-done", "restore-done", "pre-cutover",
		"cutover-advanced", "cutover-drained", "cutover-target-committed"} {
		db.SetReshardHook(func(p string) error {
			if p == point {
				return boom
			}
			return nil
		})
		if _, err := db.Reshard(4); !errors.Is(err, boom) {
			t.Fatalf("abort at %q: err = %v", point, err)
		}
		if db.Shards() != 2 || db.TopoVersion() != 1 {
			t.Fatalf("abort at %q left topology %d shards v%d", point, db.Shards(), db.TopoVersion())
		}
		if p := db.ReshardProgress(); p.Active {
			t.Fatalf("abort at %q left progress active: %+v", point, p)
		}
		for i := uint64(0); i < 200; i++ {
			if v, ok := db.Get(Key(i)); !ok || v != i {
				t.Fatalf("abort at %q lost key %d (= %d,%v)", point, i, v, ok)
			}
		}
		// The donor must still accept writes and checkpoints.
		db.Put(Key(uint64(500)), 500)
		db.Checkpoint()
		db.Delete(Key(uint64(500)))
		db.Checkpoint()
	}
	// A post-commit hook error reports a completed reshard.
	db.SetReshardHook(func(p string) error {
		if p == "cutover-manifest" {
			return boom
		}
		return nil
	})
	res, err := db.Reshard(4)
	if !errors.Is(err, boom) {
		t.Fatalf("post-commit hook error = %v", err)
	}
	if res.To != 4 || db.Shards() != 4 || db.TopoVersion() != 2 {
		t.Fatalf("post-commit hook error did not complete the reshard: %+v, %d shards v%d", res, db.Shards(), db.TopoVersion())
	}
}

func TestReshardCutsChangeStreamSubscribers(t *testing.T) {
	db, _ := Open(reshardOpts(2))
	defer db.Close()
	db.Put(Key(1), 1)
	stream := db.Changes()
	defer stream.Close()
	db.Checkpoint()
	if _, err := stream.Next(); err != nil {
		t.Fatalf("pre-reshard batch: %v", err)
	}
	if _, err := db.Reshard(4); err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	// Drain whatever was already released, then expect the loss signal.
	for {
		_, err := stream.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrStreamLost) {
			t.Fatalf("stream ended with %v, want ErrStreamLost", err)
		}
		break
	}
	// A fresh subscription binds to the new topology.
	s2 := db.Changes()
	defer s2.Close()
	db.Put(Key(2), 2)
	db.Checkpoint()
	b, err := s2.Next()
	if err != nil {
		t.Fatalf("post-reshard subscription: %v", err)
	}
	_ = b
}

func TestReshardSequential(t *testing.T) {
	// Repeated reshards keep bumping the durable topology version.
	db, _ := Open(reshardOpts(2))
	defer db.Close()
	for i := uint64(0); i < 100; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	for step, to := range []int{3, 5, 2} {
		if _, err := db.Reshard(to); err != nil {
			t.Fatalf("step %d Reshard(%d): %v", step, to, err)
		}
		if db.TopoVersion() != uint64(step+2) {
			t.Fatalf("step %d topo version = %d", step, db.TopoVersion())
		}
		n := 0
		for range db.All() {
			n++
		}
		if n != 100 {
			t.Fatalf("step %d: %d keys", step, n)
		}
	}
}

func TestReshardProgressAndMetrics(t *testing.T) {
	db, _ := Open(reshardOpts(2))
	defer db.Close()
	for i := uint64(0); i < 400; i++ {
		db.Put(Key(i), i)
	}
	db.Checkpoint()
	var sawPhases []string
	db.SetReshardHook(func(p string) error {
		prog := db.ReshardProgress()
		sawPhases = append(sawPhases, fmt.Sprintf("%s:%s", p, prog.Phase))
		return nil
	})
	res, err := db.Reshard(4)
	if err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	if res.CopiedKeys != 400 || res.CopiedBytes == 0 {
		t.Fatalf("result = %+v", res)
	}
	p := db.ReshardProgress()
	if p.Active || p.Cutovers != 1 || p.From != 2 || p.To != 4 {
		t.Fatalf("final progress = %+v", p)
	}
	if len(sawPhases) == 0 {
		t.Fatal("hook saw no protocol points")
	}
	// The rebuilt registry serves the new topology's series.
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics after reshard: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"incll_reshard_cutovers_total 1", "incll_reshard_topology_version 2", `shard="3"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics after reshard missing %q", want)
		}
	}
	if err := obs.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("post-reshard exposition fails promlint: %v", err)
	}
}
