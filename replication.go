package incll

// Checkpoint-anchored replication: online snapshots, change streams, and
// the catch-up replica. The paper's contribution is a cheap, always-
// available consistency point — the per-epoch checkpoint — and this file
// is what lets that consistency point leave the process:
//
//   - DB.Snapshot streams a consistent full copy of a live DB to any
//     io.Writer, anchored at a globally committed epoch, without ever
//     delaying a checkpoint by more than one cursor batch.
//   - DB.Changes subscribes to the epoch-tagged change stream (CDC): the
//     committed mutations of each epoch, released when the epoch's
//     coordinated checkpoint commits.
//   - Restore rebuilds a DB from a snapshot stream (into any shard
//     count), verifying it end to end.
//   - NewReplica composes the three into an asynchronous follower that
//     bootstraps from a snapshot, applies the live stream, reports lag,
//     and can be promoted to primary.
//
// See internal/repl and DESIGN.md §10 for the protocol and wire format.

import (
	"io"
	"sync"
	"time"

	"incll/internal/core"
	"incll/internal/obs"
	"incll/internal/repl"
)

// Replication errors (see internal/repl).
var (
	// ErrStreamLost means a change-stream subscriber fell behind the
	// journal's byte budget or the primary crashed; re-bootstrap from a
	// fresh snapshot (Replica does this via Resync).
	ErrStreamLost = repl.ErrStreamLost
	// ErrStreamClosed means the primary shut down cleanly and the stream
	// has been fully drained.
	ErrStreamClosed = repl.ErrStreamClosed
	// ErrBadStream reports a malformed, corrupt, or truncated snapshot
	// stream; Restore never half-applies one silently.
	ErrBadStream = repl.ErrBadStream
)

// SnapshotInfo describes one snapshot stream: the anchor epoch it is
// exact at, record counts, and wire size.
type SnapshotInfo = repl.SnapshotInfo

// ChangeOp identifies one change-stream mutation kind.
type ChangeOp = core.ChangeOp

// Change-stream mutation kinds.
const (
	// ChangePut is a put; Value carries the full new byte value.
	ChangePut = core.ChangePut
	// ChangeDelete is a deletion; Value is nil.
	ChangeDelete = core.ChangeDelete
)

// Change is one committed mutation observed through DB.Changes.
type Change struct {
	// Op is the mutation kind.
	Op ChangeOp
	// Key and Value may be retained by the consumer.
	Key, Value []byte
	// Epoch is the (globally committed) epoch the mutation belongs to.
	Epoch uint64
	// Shard is the source shard (0 on an unsharded DB).
	Shard int
}

// ChangeBatch is one released slice of the change stream: every committed
// mutation up to Epoch that was not yet delivered, in apply order (total
// per key). A batch may be empty — a checkpoint committed with no writes
// — which still advances the consumer's view of the committed horizon.
type ChangeBatch struct {
	Epoch   uint64
	Changes []Change
}

// ChangeStream is a subscription to the DB's committed-change feed (CDC).
// Entries published after the subscription begins are delivered exactly
// once, released batch-wise at each checkpoint commit; a consistent full
// copy is obtained by subscribing first and scanning after (which is
// exactly what DB.Snapshot does). Next is single-consumer; Close may be
// called concurrently to unblock it.
type ChangeStream struct {
	sub *repl.Subscription
}

// Changes subscribes to the DB's change stream, starting now: the first
// batch holds every mutation of the epochs not yet released at this
// moment — all mutations applied after this call, plus possibly the
// already-applied part of the current uncommitted epochs (a harmless
// superset for last-write-wins replay). Attaching the first subscriber
// activates the change journal (one atomic load per write before that;
// per-shard journal appends after).
func (db *DB) Changes() *ChangeStream {
	return &ChangeStream{sub: db.hub().Subscribe()}
}

// changesPinned is Changes with a subscription the journal budget will
// not cut (see repl.Hub.SubscribePinned): the replica bootstrap cannot
// consume anything until the snapshot restore finishes, so for that
// window lagging is by construction, not a fault.
func (db *DB) changesPinned() *ChangeStream {
	return &ChangeStream{sub: db.hub().SubscribePinned()}
}

// Next blocks until the next checkpoint commit releases more of the
// stream, and returns the newly released batch. Returns ErrStreamClosed
// after a clean primary shutdown is fully drained, ErrStreamLost if the
// subscriber lagged past the journal budget or the primary crashed — a
// crash still lets the subscriber drain everything already released
// (released epochs are committed on NVM and survive the crash); only the
// unreleased tail is lost.
func (s *ChangeStream) Next() (ChangeBatch, error) {
	b, err := s.sub.Next()
	if err != nil {
		return ChangeBatch{}, err
	}
	out := ChangeBatch{Epoch: b.Epoch}
	if len(b.Entries) > 0 {
		out.Changes = make([]Change, len(b.Entries))
		for i := range b.Entries {
			e := &b.Entries[i]
			out.Changes[i] = Change{Op: e.Op, Key: e.Key, Value: e.Val, Epoch: e.Epoch, Shard: e.Shard}
		}
	}
	return out, nil
}

// Released returns the last globally committed epoch — the stream's
// released high-water mark.
func (s *ChangeStream) Released() uint64 { return s.sub.Released() }

// PendingBytes reports the released entry bytes not yet consumed through
// Next: the byte lag of this subscriber.
func (s *ChangeStream) PendingBytes() uint64 { return s.sub.PendingBytes() }

// Close detaches the subscription, releasing its journal retention and
// unblocking a concurrent Next.
func (s *ChangeStream) Close() { s.sub.Close() }

// hub returns the DB's change hub, attaching it on first use. The hub is
// bound to the live engine's stores; a reshard cutover closes it (its
// subscribers see ErrStreamLost and re-bootstrap against the new
// topology) and the next use attaches a fresh one.
func (db *DB) hub() *repl.Hub {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replHub == nil {
		e := db.engine()
		db.replHub = repl.NewHub(e.stores(), e.opts.ChangeJournalBytes)
		db.replHub.Instrument(db.trace)
		db.replHub.InstrumentTimeline(db.propagation())
	}
	return db.replHub
}

// closeHub ends the change stream at DB teardown: gracefully on Close,
// abruptly (ErrStreamLost) on SimulateCrash.
func (db *DB) closeHub(graceful bool) {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replHub != nil {
		db.replHub.Close(graceful)
	}
}

// SetSnapshotHook installs the snapshot crash-injection hook, fired at
// every export protocol point; a non-nil return aborts the export with
// that error. Never use outside tests (see internal/crashtest).
func (db *DB) SetSnapshotHook(h func(point string) error) { db.snapHook = h }

// Snapshot streams a consistent online full snapshot of the live DB to w:
// checksummed, length-prefixed frames holding every key/value plus the
// change records that anchor the fuzzy scan at a committed epoch (see
// internal/repl). The export runs concurrently with writers and holds the
// epoch machinery for at most one cursor batch at a time, so it never
// delays a checkpoint by more than one batch; it forces exactly one
// checkpoint (the anchor). Restore reproduces the primary's state at the
// anchor epoch's coordinated commit point, byte for byte.
func (db *DB) Snapshot(w io.Writer) (SnapshotInfo, error) {
	e := &repl.Exporter{
		Hub:        db.hub(),
		NewIter:    func() core.Cursor { return db.NewIter(IterOptions{}) },
		Checkpoint: func() { db.Checkpoint() },
		Shards:     db.Shards(),
		KeyHint:    uint64(db.Len()),
		Hook:       db.snapHook,
		Trace:      db.trace,
	}
	return e.Export(w)
}

// Restore builds a fresh DB (with opts, which need not match the source's
// sharding — records route by key) from a snapshot stream. The stream is
// verified end to end — per-frame checksums, record counts, and the
// stream's record checksum — and the restored state is committed only
// after full verification: a truncated or corrupt stream returns
// ErrBadStream and never a silently wrong DB.
func Restore(r io.Reader, opts Options) (*DB, SnapshotInfo, error) {
	db, _ := Open(opts)
	info, err := repl.Restore(r, repl.Target{
		Put: func(k, v []byte) error {
			_, err := db.PutBytes(k, v)
			return err
		},
		Delete: func(k []byte) error {
			db.Delete(k)
			return nil
		},
		Checkpoint: func() { db.Checkpoint() },
	})
	if err != nil {
		return nil, info, err
	}
	return db, info, nil
}

// ReplicaLag quantifies how far a replica trails its primary.
type ReplicaLag struct {
	// Epochs is the number of globally committed epochs the primary has
	// released that the replica has not yet fully applied.
	Epochs uint64
	// Bytes is the released change-entry bytes not yet applied.
	Bytes uint64
}

// Replica is an asynchronous follower: a DB bootstrapped from a snapshot
// of the primary that applies the live change stream in the background,
// checkpointing after each released batch — so at every moment its state
// is exactly the primary's at some committed epoch (AppliedEpoch), never
// a torn mixture. Reads on DB() are safe concurrently with the apply
// loop; use CatchUp for a moment of equality with a given horizon, and
// Promote to turn the follower into a standalone primary.
type Replica struct {
	mu   sync.Mutex
	cond *sync.Cond

	opts    Options
	db      *DB
	stream  *ChangeStream
	anchor  uint64 // bootstrap anchor: entries at or below are baked in
	applied uint64 // last fully applied released epoch
	bytes   uint64 // change bytes applied since bootstrap
	err     error  // terminal apply-loop error
	done    chan struct{}
}

// NewReplica bootstraps a follower of primary: it subscribes to the
// change stream, streams a snapshot into a fresh DB built with opts (any
// shard count), and starts the background apply loop. Returns once the
// bootstrap is complete (the replica is exact at the snapshot's anchor
// epoch and catching up from there).
func NewReplica(primary *DB, opts Options) (*Replica, error) {
	r := &Replica{opts: opts}
	r.cond = sync.NewCond(&r.mu)
	if err := r.bootstrap(primary); err != nil {
		return nil, err
	}
	return r, nil
}

// bootstrap subscribes, snapshots, restores, and starts the apply loop.
// The subscription is pinned for the bootstrap window (it cannot consume
// until the restore completes); the apply loop unpins it at its first
// delivery.
func (r *Replica) bootstrap(primary *DB) error {
	stream := primary.changesPinned()
	pr, pw := io.Pipe()
	var (
		expErr  error
		expDone = make(chan struct{})
	)
	go func() {
		defer close(expDone)
		_, expErr = primary.Snapshot(pw)
		pw.CloseWithError(expErr)
	}()
	db, info, err := Restore(pr, r.opts)
	// Unblock the exporter before waiting for it: if the restore side
	// failed first, the exporter may be mid-Write with no reader left.
	pr.CloseWithError(err)
	<-expDone
	if err == nil {
		err = expErr
	}
	if err != nil {
		stream.Close()
		return err
	}
	done := make(chan struct{})
	// Swap the follower in under the lock: a monitoring goroutine may be
	// reading Lag/AppliedEpoch/Err concurrently with a Resync.
	r.mu.Lock()
	r.db = db
	r.stream = stream
	r.anchor = info.AnchorEpoch
	r.applied = info.AnchorEpoch
	r.err = nil
	r.done = done
	r.mu.Unlock()
	// The bootstrap (and every Resync) shows up in the follower's own
	// phase trace, and the follower serves its own lag gauges: a replica
	// is scraped as its own process, not through the primary.
	db.trace.Record(obs.EvReplicaResync, -1, info.AnchorEpoch, 0, int64(info.Keys))
	db.registerReplicaGauges(r)
	go r.applyLoop(db, stream, info.AnchorEpoch, done)
	return nil
}

// applyLoop drains the stream into the follower until the stream ends.
// The follower and stream come in as parameters so the loop never reads
// the swappable Replica fields.
func (r *Replica) applyLoop(db *DB, stream *ChangeStream, anchor uint64, done chan struct{}) {
	defer close(done)
	for first := true; ; first = false {
		b, err := stream.Next()
		start := time.Now()
		if first {
			// The bootstrap window is over: from here on the replica is an
			// active consumer and subject to the normal journal budget.
			stream.sub.Unpin()
		}
		if err != nil {
			r.mu.Lock()
			r.err = err
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		var nb uint64
		for i := range b.Changes {
			c := &b.Changes[i]
			if c.Epoch <= anchor {
				continue // baked into the bootstrap snapshot
			}
			if c.Op == ChangeDelete {
				db.Delete(c.Key)
			} else {
				if _, err := db.PutBytes(c.Key, c.Value); err != nil {
					r.mu.Lock()
					r.err = err
					r.cond.Broadcast()
					r.mu.Unlock()
					return
				}
			}
			nb += uint64(len(c.Key) + len(c.Value))
		}
		// Commit the batch on the follower: the replica's durable state is
		// always a whole released prefix of the primary's history.
		db.Checkpoint()
		db.trace.Record(obs.EvReplicaApply, -1, b.Epoch, time.Since(start), int64(nb))
		r.mu.Lock()
		r.applied = b.Epoch
		r.bytes += nb
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// DB returns the follower store for reads. Writing to it (other than by
// the apply loop) forfeits the equality guarantee; Promote first. The
// identity changes across Resync.
func (r *Replica) DB() *DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// AppliedEpoch returns the last released epoch the replica has fully
// applied and committed: the replica's state equals the primary's at this
// epoch's checkpoint commit.
func (r *Replica) AppliedEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// AppliedBytes returns the change bytes applied since bootstrap.
func (r *Replica) AppliedBytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Err returns the apply loop's terminal error, if it has stopped:
// ErrStreamClosed after a clean primary shutdown (fully drained),
// ErrStreamLost after a primary crash or journal overrun (Resync to
// recover), nil while running.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Lag reports how far the replica trails the primary's released horizon,
// in epochs and change bytes.
func (r *Replica) Lag() ReplicaLag {
	r.mu.Lock()
	stream, applied := r.stream, r.applied
	r.mu.Unlock()
	released := stream.Released()
	lag := ReplicaLag{Bytes: stream.PendingBytes()}
	if released > applied {
		lag.Epochs = released - applied
	}
	return lag
}

// CatchUp blocks until the replica has applied everything the primary had
// released at the moment of the call (later releases may keep arriving).
// Returns the stream's terminal error if it ends before reaching that
// horizon.
func (r *Replica) CatchUp() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	target := r.stream.Released() // hub lock nests inside r.mu, never reversed
	for r.applied < target && r.err == nil {
		r.cond.Wait()
	}
	if r.applied >= target {
		return nil
	}
	return r.err
}

// Promote turns the follower into a standalone primary: it applies
// everything the primary has released (failing with the stream's terminal
// error if the stream was lost short of that), detaches from the stream,
// and returns the follower DB, now safe to write. The Replica must not be
// used afterwards.
func (r *Replica) Promote() (*DB, error) {
	if err := r.CatchUp(); err != nil {
		return nil, err
	}
	db := r.detach()
	return db, nil
}

// detach stops the apply loop and takes ownership of the follower.
func (r *Replica) detach() *DB {
	r.mu.Lock()
	stream, done, db := r.stream, r.done, r.db
	r.db = nil
	r.mu.Unlock()
	stream.Close()
	<-done
	return db
}

// Resync re-bootstraps the replica from primary (typically after the old
// primary crashed and was reopened, which loses the volatile change
// journal): the current follower is discarded and a fresh snapshot
// bootstrap runs against the given primary. The follower DB identity
// changes; re-fetch it with DB().
func (r *Replica) Resync(primary *DB) error {
	if db := r.detach(); db != nil {
		db.Close()
	}
	return r.bootstrap(primary)
}

// Close stops the apply loop and shuts the follower down cleanly.
func (r *Replica) Close() {
	if db := r.detach(); db != nil {
		db.Close()
	}
}
