package incll

// First-class observability (see DESIGN.md §11 and internal/obs): a typed
// point-in-time snapshot (DB.Metrics), a Prometheus text exposition of the
// same live counters (DB.WriteMetrics — examples/kvserver serves it at
// /metrics), an expvar adapter (DB.Expvar), and the phase trace
// (DB.DumpTrace / DB.TraceEvents) recording every checkpoint, recovery,
// and replication protocol event.
//
// Everything here reads counters the hot paths already maintain; a scrape
// never locks a leaf, stops the world, or touches NVM.

import (
	"encoding/json"
	"io"
	"strconv"
	"time"

	"incll/internal/core"
	"incll/internal/nvm"
	"incll/internal/obs"
	"incll/internal/repl"
)

// OpCounts counts store operations by kind since this DB instance opened.
type OpCounts struct {
	Puts    int64 `json:"puts"`
	Gets    int64 `json:"gets"`
	Deletes int64 `json:"deletes"`
	Scans   int64 `json:"scans"`
}

// UndoCounts breaks down undo-record captures: the paper's central ratio
// is how much logging stays in-cache-line (InCLLPerm + InCLLVal) versus
// falling back to the external log (ExtLog, Figure 7's metric).
type UndoCounts struct {
	InCLLPerm int64 `json:"incll_perm"`
	InCLLVal  int64 `json:"incll_val"`
	ExtLog    int64 `json:"extlog"`
}

// JournalMetrics describes the change journal (replication hub), all
// zeros until a snapshot or change-stream subscriber first attaches it.
type JournalMetrics struct {
	// Attached reports whether the hub exists (first subscriber seen).
	Attached bool `json:"attached"`
	// Subscribers is the live subscription count.
	Subscribers int `json:"subscribers"`
	// CapBytes is the configured journal byte budget.
	CapBytes uint64 `json:"cap_bytes"`
	// UnreleasedBytes is the entry volume of epochs not yet committed.
	UnreleasedBytes uint64 `json:"unreleased_bytes"`
	// BacklogBytes is the released-but-unconsumed retention.
	BacklogBytes uint64 `json:"backlog_bytes"`
	// ReleasedEpoch is the last globally committed epoch (the released
	// watermark every subscriber can read up to).
	ReleasedEpoch uint64 `json:"released_epoch"`
	// Cuts counts subscriptions cut loose by the byte budget.
	Cuts int64 `json:"cuts"`
}

// Metrics is a point-in-time snapshot of everything the DB observes about
// itself, cheap enough to take on every bench report. Counters are since
// this DB instance opened (a Reopen starts fresh); the checkpoint
// stop-the-world histogram records nanoseconds.
type Metrics struct {
	// Epoch is the running (uncommitted) epoch.
	Epoch uint64 `json:"epoch"`
	// Keys is the live key count (transient; see DB.Len).
	Keys int `json:"keys"`
	// Shards is the shard count.
	Shards int `json:"shards"`
	// Ops counts operations, summed across shards and workers.
	Ops OpCounts `json:"ops"`
	// Undo breaks down undo captures (in-cache-line vs external log).
	Undo UndoCounts `json:"undo"`
	// UndoInCLLRatio is the in-cache-line fraction of all undo captures
	// (0 when none were taken).
	UndoInCLLRatio float64 `json:"undo_incll_ratio"`
	// ValueHeapBytes counts bytes written out-of-place to the value heap.
	ValueHeapBytes int64 `json:"value_heap_bytes"`
	// LazyRecoveries counts nodes repaired lazily after a restart.
	LazyRecoveries int64 `json:"lazy_recoveries"`
	// LimboDepth is the allocator blocks freed this epoch and not yet
	// reusable (summed across shards; advisory, resets at each boundary).
	LimboDepth int64 `json:"limbo_depth"`
	// CheckpointSTW summarizes the checkpoint stop-the-world window
	// (Prepare lock to Commit unlock), in nanoseconds.
	CheckpointSTW obs.HistSnapshot `json:"checkpoint_stw_ns"`
	// NVM is the simulated memory subsystem's counters (fences,
	// writebacks, flushed lines), summed across arenas.
	NVM nvm.StatsSnapshot `json:"nvm"`
	// Txn is the transaction counters.
	Txn TxnStats `json:"txn"`
	// Journal describes the change journal, if attached.
	Journal JournalMetrics `json:"journal"`
	// Phases is the sampled latency attribution, if enabled (see
	// Options.PhaseSampleEvery and DESIGN.md §12).
	Phases PhaseMetrics `json:"phases"`
	// Propagation is the epoch propagation trace summary (replication
	// pipeline stage latencies and per-peer commit-to-apply), all zeros
	// until the node serves replication (see DESIGN.md §15).
	Propagation PropagationMetrics `json:"propagation"`
}

// PropagationMetrics summarizes the epoch propagation timeline: how long
// a committed epoch takes to move through each stage of the replication
// pipeline, and the end-to-end commit-to-apply distribution per follower.
// All intervals are stamped on the primary's own clock (single-clock,
// skew-free); values are nanoseconds.
type PropagationMetrics struct {
	// Attached reports whether the timeline exists (the node attached a
	// change hub or served replication at least once).
	Attached bool `json:"attached"`
	// SampledAcks counts the (epoch × peer) ack samples recorded.
	SampledAcks int64 `json:"sampled_acks"`
	// Stages maps stage name (release_wait, queue_wait, wire, apply_ack)
	// to its latency summary.
	Stages map[string]obs.HistSnapshot `json:"stages_ns,omitempty"`
	// CommitToApply is the aggregate commit→ack distribution across peers.
	CommitToApply obs.HistSnapshot `json:"commit_to_apply_ns"`
	// PerPeer is the commit→ack distribution per follower id.
	PerPeer map[string]obs.HistSnapshot `json:"per_peer_ns,omitempty"`
}

// PhaseMetrics is the latency-attribution extension of Metrics: where a
// sampled operation's wall time went, phase by phase.
type PhaseMetrics struct {
	// Enabled reports whether attribution is on (Options.PhaseSampleEvery
	// ≥ 0).
	Enabled bool `json:"enabled"`
	// SampleEvery is the op sampling period (1 in N).
	SampleEvery int `json:"sample_every"`
	// Hist maps phase name (descent, retry, epoch_wait, guard_wait,
	// guard_hold, commit_lock_wait, fence, alloc) to its latency histogram
	// summary, in nanoseconds.
	Hist map[string]obs.HistSnapshot `json:"hist,omitempty"`
}

// Metrics returns a typed snapshot of the DB's counters, histograms, and
// gauges. Safe to call at any time, concurrently with writers and the
// background checkpointer; each counter is read atomically but the
// snapshot as a whole is not one instant (see DB.Stats).
func (db *DB) Metrics() Metrics {
	s := db.Stats()
	perm, val, ext := s.InCLLPerm.Load(), s.InCLLVal.Load(), s.LoggedNodes.Load()
	m := Metrics{
		Epoch:          db.currentEpoch(),
		Keys:           db.Len(),
		Shards:         db.Shards(),
		Ops:            OpCounts{Puts: s.Puts.Load(), Gets: s.Gets.Load(), Deletes: s.Deletes.Load(), Scans: s.Scans.Load()},
		Undo:           UndoCounts{InCLLPerm: perm, InCLLVal: val, ExtLog: ext},
		ValueHeapBytes: s.ValueHeapBytes.Load(),
		LazyRecoveries: s.LazyRecoveries.Load(),
		LimboDepth:     db.limboDepth(),
		CheckpointSTW:  db.stw.Snapshot(),
		NVM:            db.NVMStats(),
		Txn:            db.TxnStats(),
	}
	if tot := perm + val + ext; tot > 0 {
		m.UndoInCLLRatio = float64(perm+val) / float64(tot)
	}
	if db.phases != nil {
		m.Phases = PhaseMetrics{
			Enabled:     true,
			SampleEvery: db.phases.SampleEvery(),
			Hist:        db.phases.Snapshot(),
		}
	}
	if tl := db.propTL.Load(); tl != nil {
		m.Propagation = PropagationMetrics{
			Attached:      true,
			SampledAcks:   tl.Sampled(),
			CommitToApply: tl.AllHist().Snapshot(),
			PerPeer:       tl.PeerHists(),
			Stages:        make(map[string]obs.HistSnapshot, obs.NumPropStages),
		}
		for st := obs.PropStage(0); st < obs.NumPropStages; st++ {
			m.Propagation.Stages[st.String()] = tl.StageHist(st).Snapshot()
		}
	}
	if h := db.hubIfAttached(); h != nil {
		m.Journal = JournalMetrics{
			Attached:        true,
			Subscribers:     h.Subscribers(),
			CapBytes:        h.CapBytes(),
			UnreleasedBytes: h.UnreleasedBytes(),
			BacklogBytes:    h.BacklogBytes(),
			ReleasedEpoch:   h.Released(),
			Cuts:            h.Cuts(),
		}
	}
	return m
}

// WriteMetrics renders the DB's live metrics in Prometheus text
// exposition format (0.0.4). examples/kvserver serves this at /metrics;
// any io.Writer works. Values are read at scrape time from the same
// counters Metrics snapshots.
func (db *DB) WriteMetrics(w io.Writer) error {
	return db.registry().WritePrometheus(w)
}

// Expvar returns the DB's metrics snapshot function in the shape
// expvar.Func expects:
//
//	expvar.Publish("incll", expvar.Func(db.Expvar()))
//
// The facade deliberately does not import expvar (whose init wires the
// default HTTP mux); the caller owns that decision.
func (db *DB) Expvar() func() any {
	return func() any { return db.Metrics() }
}

// TraceEvents returns a copy of the phase-trace ring, oldest first: every
// checkpoint Prepare/Commit with its measured stop-the-world window, the
// coordinator-record fence, journal release barriers, recovery and
// transaction replay, snapshot anchors, and replica apply/resync (see
// internal/obs). The ring keeps the most recent events; on a crash-test
// failure, dump it (DumpTrace) to see the protocol steps leading in.
func (db *DB) TraceEvents() []obs.Event {
	return db.trace.Events()
}

// DumpTrace writes the phase trace to w, one event per line, oldest
// first.
func (db *DB) DumpTrace(w io.Writer) error {
	return db.trace.Dump(w)
}

// registry returns the DB's metric registry, building it on first use —
// and rebuilding it after a reshard cutover dropped it (resetRegistry):
// the per-shard series are bound to a topology.
func (db *DB) registry() *obs.Registry {
	db.regMu.Lock()
	defer db.regMu.Unlock()
	if db.reg == nil {
		db.reg = obs.NewRegistry()
		db.register(db.reg)
		for _, f := range db.extraReg {
			f(db.reg)
		}
	}
	return db.reg
}

// resetRegistry drops the built registry so the next scrape rebuilds it
// against the live engine. Extra registrations (replica gauges) replay on
// rebuild.
func (db *DB) resetRegistry() {
	db.regMu.Lock()
	db.reg = nil
	db.regMu.Unlock()
}

// stores lists the per-shard core stores (one entry when unsharded).
func (db *DB) stores() []*core.Store {
	return db.engine().stores()
}

// limboDepth sums the allocator limbo depth across shards.
func (db *DB) limboDepth() int64 {
	var n int64
	for _, st := range db.stores() {
		n += st.LimboDepth()
	}
	return n
}

// hubIfAttached returns the change hub if one was ever attached, without
// attaching it: a metrics scrape must not activate the change journal.
func (db *DB) hubIfAttached() *repl.Hub {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.replHub
}

// register binds every exported series to its live counter. Closures read
// at scrape time; nothing is copied or double-counted.
func (db *DB) register(reg *obs.Registry) {
	for i, st := range db.stores() {
		s := st.Stats()
		sh := strconv.Itoa(i)
		lbl := func(kv ...string) string { return obs.Labels(append(kv, "shard", sh)...) }
		reg.Counter("incll_ops_total", "Store operations by kind.", lbl("op", "put"), s.Puts.Load)
		reg.Counter("incll_ops_total", "Store operations by kind.", lbl("op", "get"), s.Gets.Load)
		reg.Counter("incll_ops_total", "Store operations by kind.", lbl("op", "delete"), s.Deletes.Load)
		reg.Counter("incll_ops_total", "Store operations by kind.", lbl("op", "scan"), s.Scans.Load)
		reg.Counter("incll_undo_total", "Undo-record captures by mechanism (incll_* stay in-line; extlog is the external-log fallback).",
			lbl("kind", "incll_perm"), s.InCLLPerm.Load)
		reg.Counter("incll_undo_total", "Undo-record captures by mechanism (incll_* stay in-line; extlog is the external-log fallback).",
			lbl("kind", "incll_val"), s.InCLLVal.Load)
		reg.Counter("incll_undo_total", "Undo-record captures by mechanism (incll_* stay in-line; extlog is the external-log fallback).",
			lbl("kind", "extlog"), s.LoggedNodes.Load)
		reg.Counter("incll_value_heap_bytes_total", "Bytes written out-of-place to the value heap.", lbl(), s.ValueHeapBytes.Load)
		reg.Counter("incll_lazy_recoveries_total", "Nodes repaired lazily after a restart.", lbl(), s.LazyRecoveries.Load)
		reg.Gauge("incll_alloc_limbo_depth", "Allocator blocks freed this epoch and not yet reusable.", lbl(), st.LimboDepth)
	}

	reg.Histogram("incll_checkpoint_stw_seconds",
		"Checkpoint stop-the-world window (Prepare lock to Commit unlock).", "", db.stw, 1e-9)
	if db.phases != nil {
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			reg.Histogram("incll_phase_seconds",
				"Sampled operation latency attributed by phase (see DESIGN.md §12).",
				obs.Labels("phase", ph.String()), db.phases.Hist(ph), 1e-9)
		}
	}
	reg.Gauge("incll_epoch", "Running (uncommitted) epoch.", "", func() int64 { return int64(db.currentEpoch()) })
	reg.Gauge("incll_keys", "Live keys tracked this execution.", "", func() int64 { return int64(db.Len()) })
	reg.Gauge("incll_shards", "Shard count.", "", func() int64 { return int64(db.Shards()) })

	nvmCounter := func(read func(nvm.StatsSnapshot) int64) func() int64 {
		return func() int64 { return read(db.NVMStats()) }
	}
	reg.Counter("incll_nvm_writebacks_total", "Cache-line writebacks issued to simulated NVM.", "",
		nvmCounter(func(s nvm.StatsSnapshot) int64 { return s.Writebacks }))
	reg.Counter("incll_nvm_fences_total", "Persist fences issued.", "",
		nvmCounter(func(s nvm.StatsSnapshot) int64 { return s.Fences }))
	reg.Counter("incll_nvm_lines_persisted_total", "Cache lines made durable.", "",
		nvmCounter(func(s nvm.StatsSnapshot) int64 { return s.LinesPersisted }))
	reg.Counter("incll_nvm_global_flushes_total", "Whole-cache flushes (one per checkpoint Prepare).", "",
		nvmCounter(func(s nvm.StatsSnapshot) int64 { return s.GlobalFlushes }))

	reg.Counter("incll_txn_commits_total", "Transactions durably committed.", "",
		func() int64 { return db.TxnStats().Committed })
	reg.Counter("incll_txn_conflicts_total", "Transaction commits rejected by read validation.", "",
		func() int64 { return db.TxnStats().Conflicts })
	reg.Counter("incll_txn_replays_total", "Committed transactions re-applied by intent recovery.", "",
		func() int64 { return db.TxnStats().Replayed })

	reg.Gauge("incll_reshard_phase", "Live reshard phase (0 idle, 1 snapshot copy, 2 tail, 3 cutover).", "",
		db.rstate.phase.Load)
	reg.Gauge("incll_reshard_copied_bytes", "Bytes copied into the reshard target during the current/last snapshot phase.", "",
		db.rstate.copiedBytes.Load)
	reg.Gauge("incll_reshard_tail_lag_epochs", "Epochs the reshard tail trails the donor's released horizon.", "",
		db.rstate.lagEpochs.Load)
	reg.Counter("incll_reshard_cutovers_total", "Reshard cutovers durably committed on this DB instance.", "",
		db.rstate.cutovers.Load)
	reg.Gauge("incll_reshard_topology_version", "Live topology version (1 until the first completed reshard).", "",
		func() int64 { return int64(db.TopoVersion()) })

	hubGauge := func(read func(*repl.Hub) int64) func() int64 {
		return func() int64 {
			if h := db.hubIfAttached(); h != nil {
				return read(h)
			}
			return 0
		}
	}
	reg.Gauge("incll_journal_cap_bytes", "Change-journal byte budget (0 until attached).", "",
		hubGauge(func(h *repl.Hub) int64 { return int64(h.CapBytes()) }))
	reg.Gauge("incll_journal_unreleased_bytes", "Journal entry bytes of epochs not yet committed.", "",
		hubGauge(func(h *repl.Hub) int64 { return int64(h.UnreleasedBytes()) }))
	reg.Gauge("incll_journal_backlog_bytes", "Released journal bytes retained for lagging subscribers.", "",
		hubGauge(func(h *repl.Hub) int64 { return int64(h.BacklogBytes()) }))
	reg.Gauge("incll_journal_subscribers", "Live change-stream subscriptions.", "",
		hubGauge(func(h *repl.Hub) int64 { return int64(h.Subscribers()) }))
	reg.Gauge("incll_journal_released_epoch", "Last globally committed epoch (released watermark).", "",
		hubGauge(func(h *repl.Hub) int64 { return int64(h.Released()) }))
	reg.Counter("incll_journal_cuts_total", "Subscriptions cut loose by the journal byte budget.", "",
		hubGauge((*repl.Hub).Cuts))
}

// StartRecorder begins taking periodic registry snapshots into a ring of
// the given capacity, the backing store for MetricsHistory (kvserver
// serves it at /metrics/history). interval ≤ 0 defaults to one second,
// capacity ≤ 0 to 600 points (ten minutes at the default cadence).
// Idempotent while running; Close and SimulateCrash stop it.
func (db *DB) StartRecorder(interval time.Duration, capacity int) {
	db.recMu.Lock()
	defer db.recMu.Unlock()
	db.recInterval, db.recCap = interval, capacity
	db.recOn = true
	if db.recorder == nil {
		db.recorder = obs.NewRecorder(db.registry(), interval, capacity)
	}
	db.recorder.Start()
}

// StopRecorder stops the periodic snapshotter, if running. The recorded
// history stays readable.
func (db *DB) StopRecorder() {
	db.recMu.Lock()
	defer db.recMu.Unlock()
	db.recOn = false
	if db.recorder != nil {
		db.recorder.Stop()
	}
}

// restartRecorder rebinds a running recorder to the rebuilt registry
// after a reshard cutover, preserving cadence and capacity. The recorded
// history restarts: the old points belonged to the donor topology's
// series set.
func (db *DB) restartRecorder() {
	db.recMu.Lock()
	defer db.recMu.Unlock()
	if db.recorder == nil {
		return
	}
	db.recorder.Stop()
	db.recorder = obs.NewRecorder(db.registry(), db.recInterval, db.recCap)
	if db.recOn {
		db.recorder.Start()
	}
}

// MetricsHistory returns the recorded time-series, oldest first: every
// metric's value at each snapshot instant plus per-second rates for
// counters. Empty until StartRecorder runs.
func (db *DB) MetricsHistory() []obs.HistoryPoint {
	db.recMu.Lock()
	r := db.recorder
	db.recMu.Unlock()
	if r == nil {
		return nil
	}
	return r.History()
}

// WriteMetricsHistory renders MetricsHistory as JSON.
func (db *DB) WriteMetricsHistory(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.MetricsHistory())
}

// registerReplicaGauges adds the follower-side lag series to this DB's
// registry: a replica is scraped as its own process, reporting how far it
// trails the primary's released horizon. Called once per bootstrap; a
// Resync builds a fresh follower DB (fresh registry), so the series never
// collide.
func (db *DB) registerReplicaGauges(r *Replica) {
	f := func(reg *obs.Registry) {
		reg.Gauge("incll_replica_applied_epoch", "Last released epoch the replica has fully applied and committed.", "",
			func() int64 { return int64(r.AppliedEpoch()) })
		reg.Gauge("incll_replica_lag_epochs", "Released epochs the replica has not yet applied.", "",
			func() int64 { return int64(r.Lag().Epochs) })
		reg.Gauge("incll_replica_lag_bytes", "Released change bytes the replica has not yet consumed.", "",
			func() int64 { return int64(r.Lag().Bytes) })
	}
	db.regMu.Lock()
	db.extraReg = append(db.extraReg, f)
	if db.reg != nil {
		f(db.reg)
	}
	db.regMu.Unlock()
}
