package incll

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// dumpAll collects the whole DB through the merge cursor, ascending or
// descending, as (key, value) byte pairs.
func dumpAll(db *DB, reverse bool) [][2]string {
	var out [][2]string
	for k, v := range db.Iter(IterOptions{Reverse: reverse}) {
		out = append(out, [2]string{string(k), string(v)})
	}
	return out
}

// requireEqualDBs asserts byte-identical All() iteration in both
// directions.
func requireEqualDBs(t *testing.T, a, b *DB) {
	t.Helper()
	for _, rev := range []bool{false, true} {
		da, db2 := dumpAll(a, rev), dumpAll(b, rev)
		if len(da) != len(db2) {
			t.Fatalf("reverse=%v: %d vs %d keys", rev, len(da), len(db2))
		}
		for i := range da {
			if da[i] != db2[i] {
				t.Fatalf("reverse=%v: entry %d diverges: %q vs %q", rev, i, da[i], db2[i])
			}
		}
	}
}

// fillMatrix loads a mix that exercises inline values (≤5 bytes), heap
// values, multi-layer keys (> 8 bytes), empty values, and deletions.
func fillMatrix(t *testing.T, db *DB, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d-%s", i, bytes.Repeat([]byte("x"), rng.Intn(20))))
		var v []byte
		switch i % 4 {
		case 0: // inline
			v = []byte(fmt.Sprintf("%05d", i%99999))[:1+rng.Intn(5)]
		case 1: // heap-resident
			v = bytes.Repeat([]byte{byte(i)}, 64+rng.Intn(512))
		case 2: // empty value
			v = nil
		case 3: // uint64 view
			db.Put(k, uint64(i))
			continue
		}
		if _, err := db.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a scattering so restores must reproduce absences too.
	for i := 0; i < n; i += 17 {
		db.Delete([]byte(fmt.Sprintf("key-%06d-", i)))
	}
}

// TestSnapshotRestoreMatrix round-trips snapshot → restore across the
// full option matrix: 1 and 4 source shards, inline and heap-resident
// byte values, restored into the same and a different shard count.
func TestSnapshotRestoreMatrix(t *testing.T) {
	for _, srcShards := range []int{1, 4} {
		for _, dstShards := range []int{1, 4, 3} {
			t.Run(fmt.Sprintf("src%d-dst%d", srcShards, dstShards), func(t *testing.T) {
				src, _ := Open(Options{Shards: srcShards})
				defer src.Close()
				fillMatrix(t, src, 600, int64(srcShards*100+dstShards))

				var buf bytes.Buffer
				info, err := src.Snapshot(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if info.AnchorEpoch == 0 {
					t.Fatalf("anchor epoch 0")
				}
				dst, rinfo, err := Restore(bytes.NewReader(buf.Bytes()), Options{Shards: dstShards})
				if err != nil {
					t.Fatal(err)
				}
				defer dst.Close()
				if rinfo.Keys != info.Keys || rinfo.AnchorEpoch != info.AnchorEpoch {
					t.Fatalf("restore info %+v vs snapshot info %+v", rinfo, info)
				}
				requireEqualDBs(t, src, dst)
			})
		}
	}
}

// TestSnapshotUnderConcurrentWrites exports while writers churn; the
// restored DB must equal the primary once the primary quiesces at a
// boundary at or past the anchor — i.e. the restore is exactly the state
// at the anchor epoch, and replaying the primary's own post-anchor
// changes onto the restore reconverges.
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			src, _ := Open(Options{Shards: shards, Workers: 2})
			for i := 0; i < 2000; i++ {
				src.Put(Key(uint64(i)), uint64(i))
			}
			// Subscribe before the export so the post-anchor suffix can be
			// replayed onto the restore afterwards.
			post := src.Changes()
			defer post.Close()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := src.Handle(1)
				rng := rand.New(rand.NewSource(7))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := Key(uint64(rng.Intn(2000)))
					if i%5 == 4 {
						h.Delete(k)
					} else {
						h.Put(k, uint64(i)<<8)
					}
				}
			}()

			var buf bytes.Buffer
			info, err := src.Snapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
			src.Checkpoint() // release the writers' tail

			dst, _, err := Restore(bytes.NewReader(buf.Bytes()), Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Close()
			defer src.Close()

			// Replay the primary's released post-anchor changes onto the
			// restore; the two must then be byte-identical.
			for {
				b, err := post.Next()
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range b.Changes {
					if c.Epoch <= info.AnchorEpoch {
						continue
					}
					if c.Op == ChangeDelete {
						dst.Delete(c.Key)
					} else if _, err := dst.PutBytes(c.Key, c.Value); err != nil {
						t.Fatal(err)
					}
				}
				if b.Epoch >= post.Released() {
					break
				}
			}
			requireEqualDBs(t, src, dst)
		})
	}
}

// TestRestoreRejectsTruncation verifies a cut-off stream can never
// restore silently: every prefix length must fail with ErrBadStream.
func TestRestoreRejectsTruncation(t *testing.T) {
	src, _ := Open(Options{})
	defer src.Close()
	for i := 0; i < 200; i++ {
		src.Put(Key(uint64(i)), uint64(i))
	}
	var buf bytes.Buffer
	if _, err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 5, 13, len(raw) / 2, len(raw) - 1} {
		if _, _, err := Restore(bytes.NewReader(raw[:cut]), Options{}); !errors.Is(err, ErrBadStream) {
			t.Fatalf("cut at %d: err %v, want ErrBadStream", cut, err)
		}
	}
	// Bit flip in the middle.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 1
	if _, _, err := Restore(bytes.NewReader(flipped), Options{}); !errors.Is(err, ErrBadStream) {
		t.Fatalf("bit flip: err %v, want ErrBadStream", err)
	}
}

// TestChangesStream exercises the façade CDC subscription: batches appear
// only at checkpoint commits, tagged with committed epochs, and a clean
// Close drains before ErrStreamClosed.
func TestChangesStream(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	sub := db.Changes()
	defer sub.Close()

	db.Put(Key(1), 100)
	db.Put(Key(2), 200)
	db.Delete(Key(1))
	db.Checkpoint()

	b, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Changes) != 3 {
		t.Fatalf("changes: %d, want 3", len(b.Changes))
	}
	if b.Changes[2].Op != ChangeDelete || string(b.Changes[2].Key) != string(Key(1)) {
		t.Fatalf("last change: %+v", b.Changes[2])
	}
	for _, c := range b.Changes {
		if c.Epoch > b.Epoch {
			t.Fatalf("entry epoch %d beyond batch horizon %d", c.Epoch, b.Epoch)
		}
	}

	db.Put(Key(3), 300)
	db.Close()
	// Drain the final epoch (clean shutdown releases it), then closed.
	for {
		b, err = sub.Next()
		if errors.Is(err, ErrStreamClosed) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTxnCommitsAppearInStream: transactional applies go through the same
// write chokepoints, so committed transactions appear in the stream as
// their individual operations once their epoch is released.
func TestTxnCommitsAppearInStream(t *testing.T) {
	db, _ := Open(Options{Shards: 2})
	defer db.Close()
	sub := db.Changes()
	defer sub.Close()

	db.Put(Key(10), 99) // pre-existing, so the txn's delete is a real change
	tx := db.Begin()
	tx.Put(Key(10), 1) // collapsed into the later delete by the write set
	tx.Put(Key(20), 2)
	tx.Delete(Key(10))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Checkpoint()
	b, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-insert put, txn's put(20), txn's delete(10).
	ops := map[string]ChangeOp{}
	for _, c := range b.Changes {
		ops[string(c.Key)] = c.Op
	}
	if len(b.Changes) != 3 || ops[string(Key(20))] != ChangePut || ops[string(Key(10))] != ChangeDelete {
		t.Fatalf("txn changes: %d (%v), want pre-put + put(20) + delete(10)", len(b.Changes), ops)
	}
}

// TestReplicaCatchUpAndPromote runs a replica under live write load,
// checks lag reporting, and promotes it to a writable primary equal to
// the source.
func TestReplicaCatchUpAndPromote(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			primary, _ := Open(Options{Shards: shards, Workers: 2, EpochInterval: 2 * time.Millisecond})
			for i := 0; i < 3000; i++ {
				primary.Put(Key(uint64(i)), uint64(i))
			}
			primary.StartCheckpointer()

			rep, err := NewReplica(primary, Options{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Write through while the replica follows.
			h := primary.Handle(1)
			for i := 0; i < 5000; i++ {
				k := Key(uint64(i % 3000))
				if i%7 == 6 {
					h.Delete(k)
				} else {
					h.Put(k, uint64(i)|1<<40) // heap-resident values too
				}
			}
			primary.StopCheckpointer()
			primary.Checkpoint()
			if err := rep.CatchUp(); err != nil {
				t.Fatal(err)
			}
			if lag := rep.Lag(); lag.Epochs != 0 || lag.Bytes != 0 {
				t.Fatalf("lag after CatchUp: %+v", lag)
			}
			requireEqualDBs(t, primary, rep.DB())

			promoted, err := rep.Promote()
			if err != nil {
				t.Fatal(err)
			}
			// The promoted DB accepts writes like any primary.
			promoted.Put(Key(999999), 1)
			if v, ok := promoted.Get(Key(999999)); !ok || v != 1 {
				t.Fatalf("promoted write lost")
			}
			promoted.Close()
			primary.Close()
		})
	}
}

// TestReplicaLosesStreamOnPrimaryCrash: a primary crash severs the
// volatile journal; the replica reports ErrStreamLost, still holds an
// exact committed prefix, and Resync against the reopened primary
// reconverges to full equality.
func TestReplicaLosesStreamOnPrimaryCrash(t *testing.T) {
	primary, _ := Open(Options{Shards: 2})
	for i := 0; i < 1000; i++ {
		primary.Put(Key(uint64(i)), uint64(i))
	}
	rep, err := NewReplica(primary, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	for i := 0; i < 500; i++ {
		primary.Put(Key(uint64(i)), uint64(i)+7_000_000)
	}
	primary.Checkpoint()
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Crash the primary mid-stream (uncommitted tail in flight).
	for i := 0; i < 100; i++ {
		primary.Put(Key(uint64(i)), 42)
	}
	primary.SimulateCrash(0.5, 99)

	waitErr := func() error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := rep.Err(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	if err := waitErr(); !errors.Is(err, ErrStreamLost) {
		t.Fatalf("replica error after crash: %v, want ErrStreamLost", err)
	}

	reopened, _ := primary.Reopen()
	if err := rep.Resync(reopened); err != nil {
		t.Fatal(err)
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	requireEqualDBs(t, reopened, rep.DB())
	reopened.Close()
}
