package extlog

import (
	"testing"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

type fixture struct {
	arena *nvm.Arena
	mgr   *epoch.Manager
	log   *Log
	obj   uint64 // a 16-word durable object used as the logging target
}

const segWords = 1 << 12

func build(a *nvm.Arena, writers int) *fixture {
	eOff := a.Reserve(epoch.HeaderWords)
	lOff := a.Reserve(RegionWords(segWords, writers))
	obj := a.Reserve(16)
	mgr, _ := epoch.Open(a, eOff)
	log := New(a, mgr, lOff, segWords, writers)
	return &fixture{arena: a, mgr: mgr, log: log, obj: obj}
}

func newFixture(t testing.TB, writers int) *fixture {
	t.Helper()
	return build(nvm.New(nvm.Config{Words: 1 << 18}), writers)
}

func (f *fixture) rebuild() *fixture {
	f.arena.ResetReservations()
	return build(f.arena, len(f.log.writers))
}

func (f *fixture) setObj(vals ...uint64) {
	for i, v := range vals {
		f.arena.Store(f.obj+uint64(i), v)
	}
}

func (f *fixture) readObj(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = f.arena.Load(f.obj + uint64(i))
	}
	return out
}

func TestLogThenCrashRestoresPreImage(t *testing.T) {
	f := newFixture(t, 1)
	f.setObj(1, 2, 3, 4)
	f.mgr.Advance() // commit the pre-image

	w := f.log.Writer(0)
	if !w.LogObject(f.obj, 4) {
		t.Fatal("LogObject failed")
	}
	f.setObj(9, 9, 9, 9) // doomed mutation
	f.arena.Crash(nvm.RandomPolicy(0.5, 3))

	f2 := f.rebuild()
	if n := f2.log.Recover(); n != 1 {
		t.Fatalf("Recover applied %d entries, want 1", n)
	}
	got := f2.readObj(4)
	for i, want := range []uint64{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("obj[%d] = %d, want %d (pre-image)", i, got[i], want)
		}
	}
}

func TestCommittedEpochEntriesNotApplied(t *testing.T) {
	f := newFixture(t, 1)
	f.setObj(1, 2)
	w := f.log.Writer(0)
	w.LogObject(f.obj, 2)
	f.setObj(5, 6)
	f.mgr.Advance() // commits the mutation; log entry is now stale
	f.arena.Crash(nvm.PersistNone)

	f2 := f.rebuild()
	if n := f2.log.Recover(); n != 0 {
		t.Fatalf("Recover applied %d stale entries, want 0", n)
	}
	got := f2.readObj(2)
	if got[0] != 5 || got[1] != 6 {
		t.Fatalf("committed state lost: %v", got)
	}
}

func TestEntryIsDurableBeforeReturn(t *testing.T) {
	f := newFixture(t, 1)
	f.setObj(7, 8)
	f.mgr.Advance()
	w := f.log.Writer(0)
	w.LogObject(f.obj, 2)
	f.setObj(1, 1)
	// Worst case: nothing dirty survives. The fenced log entry must.
	f.arena.Crash(nvm.PersistNone)
	f2 := f.rebuild()
	if n := f2.log.Recover(); n != 1 {
		t.Fatalf("fenced entry lost: applied %d", n)
	}
	got := f2.readObj(2)
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("pre-image not restored: %v", got)
	}
}

func TestTornEntryIsSkippedSafely(t *testing.T) {
	f := newFixture(t, 1)
	f.setObj(1, 2)
	f.mgr.Advance()
	w := f.log.Writer(0)
	w.LogObject(f.obj, 2)
	// Corrupt the entry's checksum in the persistent image by rewriting
	// one content word without refreshing the checksum, then crash so the
	// corruption persists.
	f.arena.Store(w.base+eContent, 0xDEAD)
	f.arena.Crash(nvm.PersistAll)

	f2 := f.rebuild()
	if n := f2.log.Recover(); n != 0 {
		t.Fatalf("torn entry applied: %d", n)
	}
}

func TestRecoveryIsIdempotentAcrossSecondCrash(t *testing.T) {
	f := newFixture(t, 1)
	f.setObj(1, 2, 3)
	f.mgr.Advance()
	w := f.log.Writer(0)
	w.LogObject(f.obj, 3)
	f.setObj(9, 9, 9)
	f.arena.Crash(nvm.RandomPolicy(0.5, 1))

	// First recovery attempt: crash again immediately after the apply
	// loop would have run — simulate by recovering and then crashing with
	// PersistNone *before* anything else happens. Recover itself flushes,
	// so the repair is durable; the generation bump is fenced too. A
	// crash after Recover must leave the repaired image.
	f2 := f.rebuild()
	f2.log.Recover()
	f2.arena.Crash(nvm.PersistNone)

	f3 := f2.rebuild()
	if n := f3.log.Recover(); n != 0 {
		t.Fatalf("second recovery replayed %d entries from a retired generation", n)
	}
	got := f3.readObj(3)
	for i, want := range []uint64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("obj[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestStaleGenerationEntriesNeverReplay(t *testing.T) {
	// The corruption scenario: epoch E fails, its entries are applied,
	// execution resumes, and a *second* crash happens. Entries from the
	// first failed epoch are still physically present but must not
	// replay, or they would roll the object back to an ancient state.
	f := newFixture(t, 1)
	f.setObj(1, 1)
	f.mgr.Advance()
	w := f.log.Writer(0)
	w.LogObject(f.obj, 2)
	f.setObj(2, 2)
	f.arena.Crash(nvm.PersistAll) // first crash

	f2 := f.rebuild()
	f2.log.Recover() // restores (1,1), retires generation
	f2.setObj(3, 3)
	f2.mgr.Advance()               // commit (3,3)
	f2.arena.Crash(nvm.PersistAll) // second crash, no new log entries

	f3 := f2.rebuild()
	f3.log.Recover()
	got := f3.readObj(2)
	if got[0] != 3 || got[1] != 3 {
		t.Fatalf("object rolled back to ancient state: %v, want [3 3]", got)
	}
}

func TestSegmentFullReturnsFalse(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	eOff := a.Reserve(epoch.HeaderWords)
	lOff := a.Reserve(RegionWords(64, 1)) // tiny segment: 64 words
	obj := a.Reserve(16)
	mgr, _ := epoch.Open(a, eOff)
	log := New(a, mgr, lOff, 64, 1)
	w := log.Writer(0)
	ok1 := w.LogObject(obj, 16)
	ok2 := w.LogObject(obj, 16)
	ok3 := w.LogObject(obj, 16)
	if !ok1 || !ok2 {
		t.Fatal("first two entries should fit")
	}
	if ok3 {
		t.Fatal("third entry should overflow a 64-word segment")
	}
}

func TestCursorResetsAtEpochBoundary(t *testing.T) {
	f := newFixture(t, 1)
	w := f.log.Writer(0)
	for i := 0; i < 10; i++ {
		w.LogObject(f.obj, 4)
	}
	c := w.cursor
	if c == 0 {
		t.Fatal("cursor did not advance")
	}
	f.mgr.Advance()
	if w.cursor != 0 {
		t.Fatalf("cursor = %d after epoch boundary, want 0", w.cursor)
	}
}

func TestMultipleWritersIndependentSegments(t *testing.T) {
	f := newFixture(t, 3)
	objs := make([]uint64, 3)
	for i := range objs {
		objs[i] = f.arena.Reserve(8)
		f.arena.Store(objs[i], uint64(100+i))
	}
	f.mgr.Advance()
	for i := 0; i < 3; i++ {
		f.log.Writer(i).LogObject(objs[i], 1)
		f.arena.Store(objs[i], 999)
	}
	f.arena.Crash(nvm.PersistNone)
	f.arena.ResetReservations()
	a := f.arena
	eOff := a.Reserve(epoch.HeaderWords)
	lOff := a.Reserve(RegionWords(segWords, 3))
	_ = a.Reserve(16) // original f.obj slot
	robjs := make([]uint64, 3)
	for i := range robjs {
		robjs[i] = a.Reserve(8)
	}
	mgr, _ := epoch.Open(a, eOff)
	log := New(a, mgr, lOff, segWords, 3)
	if n := log.Recover(); n != 3 {
		t.Fatalf("Recover applied %d entries, want 3", n)
	}
	for i := range robjs {
		if got := a.Load(robjs[i]); got != uint64(100+i) {
			t.Fatalf("writer %d object = %d, want %d", i, got, 100+i)
		}
	}
}

func TestStatsCount(t *testing.T) {
	f := newFixture(t, 1)
	w := f.log.Writer(0)
	w.LogObject(f.obj, 4)
	w.LogObject(f.obj, 2)
	if f.log.Entries() != 2 || f.log.ContentWords() != 6 {
		t.Fatalf("entries=%d words=%d, want 2,6", f.log.Entries(), f.log.ContentWords())
	}
}

func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	sum := checksumSeed(1, 2, 3, 4)
	sum = checksumStep(sum, 0x1234)
	for bit := 0; bit < 64; bit++ {
		s2 := checksumSeed(1, 2, 3, 4)
		s2 = checksumStep(s2, 0x1234^1<<bit)
		if s2 == sum {
			t.Fatalf("bit %d flip not detected", bit)
		}
	}
}
