// Intent log: the durable redo side of multi-key transactions (see
// internal/txn and DESIGN.md "Crash-atomic transactions").
//
// Where the undo log (extlog.Log) records pre-images so a failed epoch can
// be rolled back, the intent log records a transaction's *post-images* —
// its full write set — so a transaction whose fenced commit mark reached
// NVM can be replayed after the epoch it ran in is rolled back. The two
// logs share the same segment discipline: one region per arena, split into
// per-writer segments appended without any cross-thread coordination,
// cursors reset at every epoch boundary (the global flush makes applied
// writes durable, retiring the epoch's intents), and a generation counter
// that recovery bumps so replayed records can never replay twice.
//
// Record layout (header line, then line-aligned content):
//
//	word 0: seq       — cluster-wide commit sequence number (0 = virgin)
//	word 1: epoch     — epoch the commit executed in
//	word 2: meta      — content words (low 32) | generation (high 32)
//	word 3: shardSet  — shard summary of the write set (see below)
//	word 4: checksum  — FNV-1a over header fields and content words
//	word 5: mark      — 0 while pending; == seq once committed
//	word 6: topoVer   — topology version the commit executed under
//	words 8…: ops     — see AppendIntent
//
// shardSet is informational (trace/debug): beyond 64 shards the bitset is
// folded mod 64 into one word. Recovery never consults it — replay routes
// each op by key through the live topology — but topoVer is load-bearing:
// after a crash mid-reshard, recovery replays only records committed
// under the topology the durable manifest says is live, so a replayed
// write can never land on the wrong side of a cutover (see internal/txn
// and DESIGN.md §13).
//
// The mark shares the header's cache line, so marking commits a record
// with a single PCSO-atomic line write; its writeback+fence is the
// transaction's durability point.
package extlog

import (
	"sync/atomic"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

const (
	iSeq      = 0
	iEpoch    = 1
	iMeta     = 2
	iShardSet = 3
	iChecksum = 4
	iMark     = 5
	iTopoVer  = 6
	iContent  = nvm.WordsPerLine // content starts on the second line

	// op encoding, within content: the op header word carries the key
	// length (bits 0..15), the delete bit (16), and the value byte length
	// (bits 32..47); key words then value words follow, bytes packed eight
	// per word.
	opDelete = 1 << 16
	opVShift = 32

	// MaxIntentKeyLen bounds one key's byte length in an intent record.
	MaxIntentKeyLen = 1 << 16
	// MaxIntentValLen bounds one value's byte length in an intent record.
	MaxIntentValLen = 1 << 16
)

// IntentOp is one operation of a transaction's write set. Val carries the
// byte value a put writes (nil and unused for deletes).
type IntentOp struct {
	Key    []byte
	Val    []byte
	Delete bool
}

// IntentRecord is one decoded intent, as recovery sees it.
type IntentRecord struct {
	Seq      uint64
	Epoch    uint64
	ShardSet uint64
	// TopoVer is the topology version the transaction committed under;
	// recovery skips records from a topology that is no longer live.
	TopoVer uint64
	// Committed reports whether the fenced commit mark reached NVM: a
	// committed record is replayed if its epoch failed; an uncommitted one
	// is ignored (the epoch rollback already undid any partial application).
	Committed bool
	Ops       []IntentOp
}

// IntentLog is an intent region over one arena: a generation header line
// followed by one segment per writer.
type IntentLog struct {
	arena *nvm.Arena
	mgr   *epoch.Manager

	off      uint64
	segWords uint64
	writers  []IntentWriter

	generation uint64

	appended atomic.Int64

	// Hook, when non-nil, is invoked at the two durability points inside
	// AppendIntent and MarkCommitted ("intent-written", "mark-written"),
	// after the writeback is issued but before the fence. Crash-injection
	// tests panic out of it to stop the protocol exactly there. Never set
	// outside tests.
	Hook func(point string)
}

// IntentRegionWords returns the region size needed for the given per-writer
// segment size and writer count.
func IntentRegionWords(segWords uint64, writers int) uint64 {
	return RegionWords(segWords, writers)
}

// NewIntentLog attaches an intent log to the region at off
// (IntentRegionWords(segWords, writers) words). Like the undo log, cursors
// reset at every epoch boundary; the caller drives recovery (ScanIntents /
// RetireIntents) after all stores are attached.
func NewIntentLog(a *nvm.Arena, m *epoch.Manager, off, segWords uint64, writers int) *IntentLog {
	seg := (segWords + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
	l := &IntentLog{
		arena:      a,
		mgr:        m,
		off:        off,
		segWords:   seg,
		generation: a.Load(off + hGeneration),
	}
	l.writers = make([]IntentWriter, writers)
	for i := range l.writers {
		l.writers[i] = IntentWriter{log: l, base: off + nvm.WordsPerLine + uint64(i)*seg}
	}
	m.OnAdvance(func(uint64) { l.resetCursors() })
	return l
}

// resetCursors discards the log at an epoch boundary: the global flush has
// just made every applied write durable, so the epoch's intents are spent.
func (l *IntentLog) resetCursors() {
	for i := range l.writers {
		l.writers[i].cursor = 0
	}
}

// Writer returns writer i's interface. Commits racing on one writer are
// serialized by the transaction manager's per-shard commit locks.
func (l *IntentLog) Writer(i int) *IntentWriter { return &l.writers[i] }

// Appended returns the number of intents appended during this execution.
func (l *IntentLog) Appended() int64 { return l.appended.Load() }

// IntentWriter appends intents to one segment.
type IntentWriter struct {
	log    *IntentLog
	base   uint64
	cursor uint64
}

// intentContentWords returns the content footprint of a write set.
func intentContentWords(ops []IntentOp) uint64 {
	var n uint64
	for _, op := range ops {
		n++ // op header word
		n += (uint64(len(op.Key)) + 7) / 8
		if !op.Delete {
			n += (uint64(len(op.Val)) + 7) / 8
		}
	}
	return n
}

// IntentFits reports whether a write set can ever be appended: every key
// and value within the encoding's length bounds and the whole record
// within one segment. Callers turn a permanent misfit into an error
// instead of retrying after an epoch advance.
func (l *IntentLog) IntentFits(ops []IntentOp) bool {
	for _, op := range ops {
		if len(op.Key) >= MaxIntentKeyLen {
			return false
		}
		if !op.Delete && len(op.Val) >= MaxIntentValLen {
			return false
		}
	}
	return iContent+intentContentWords(ops) <= l.segWords
}

// AppendIntent writes the intent record for a pending transaction — seq,
// epoch, shard set and the full write set — and makes it durable
// (writeback + fence) before returning. The record's commit mark is still
// zero: the transaction is not yet committed. Returns the record's arena
// offset, or ok=false if the segment is full (the caller must force an
// epoch boundary, which resets the cursor, and retry).
func (w *IntentWriter) AppendIntent(seq, epochNum, shardSet, topoVer uint64, ops []IntentOp) (entry uint64, ok bool) {
	l := w.log
	a := l.arena
	content := intentContentWords(ops)
	need := intentEntryWords(content)
	if w.cursor+need > l.segWords {
		return 0, false
	}
	e := w.base + w.cursor

	sum := checksumSeed(seq, epochNum, content|l.generation<<32, shardSet)
	sum = checksumStep(sum, topoVer)
	pos := e + iContent
	store := func(v uint64) {
		a.Store(pos, v)
		sum = checksumStep(sum, v)
		pos++
	}
	packBytes := func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			var word uint64
			for j := 0; j < 8 && i+j < len(b); j++ {
				word |= uint64(b[i+j]) << (56 - 8*uint(j))
			}
			store(word)
		}
	}
	for _, op := range ops {
		if len(op.Key) >= MaxIntentKeyLen || (!op.Delete && len(op.Val) >= MaxIntentValLen) {
			// Callers gate on IntentFits, which rejects oversize ops.
			panic("extlog: intent op too long (caller skipped IntentFits)")
		}
		hdr := uint64(len(op.Key))
		if op.Delete {
			hdr |= opDelete
		} else {
			hdr |= uint64(len(op.Val)) << opVShift
		}
		store(hdr)
		packBytes(op.Key)
		if !op.Delete {
			packBytes(op.Val)
		}
	}

	a.Store(e+iMark, 0)
	a.Store(e+iEpoch, epochNum)
	a.Store(e+iMeta, content|l.generation<<32)
	a.Store(e+iShardSet, shardSet)
	a.Store(e+iTopoVer, topoVer)
	a.Store(e+iChecksum, sum)
	a.Store(e+iSeq, seq)
	a.WritebackRange(e, need)
	if l.Hook != nil {
		l.Hook("intent-written")
	}
	a.Fence()
	w.cursor += need
	l.appended.Add(1)
	return e, true
}

// MarkCommitted durably sets the record's commit mark: the transaction's
// single fenced commit point. The mark shares the header line, so the
// write is PCSO-atomic with the rest of the header.
func (l *IntentLog) MarkCommitted(entry uint64) {
	a := l.arena
	a.Store(entry+iMark, a.Load(entry+iSeq))
	a.Writeback(entry)
	if l.Hook != nil {
		l.Hook("mark-written")
	}
	a.Fence()
}

// intentEntryWords returns the line-aligned footprint of a record with the
// given content size.
func intentEntryWords(content uint64) uint64 {
	n := iContent + content
	return (n + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
}

// ScanIntents decodes every checksum-valid record of the current
// generation, in segment order per writer. A torn or stale record stops
// that segment's scan (everything past it predates the segment's reuse).
// The caller decides replay: a Committed record whose epoch failed must be
// re-applied; every other record is inert.
func (l *IntentLog) ScanIntents() []IntentRecord {
	a := l.arena
	var recs []IntentRecord
	for i := range l.writers {
		base := l.writers[i].base
		cursor := uint64(0)
		for cursor < l.segWords {
			e := base + cursor
			seq := a.Load(e + iSeq)
			meta := a.Load(e + iMeta)
			content := meta & 0xFFFFFFFF
			gen := meta >> 32
			if seq == 0 || gen != l.generation || intentEntryWords(content) > l.segWords-cursor {
				break // virgin space, stale generation, or garbage length
			}
			epochNum := a.Load(e + iEpoch)
			shardSet := a.Load(e + iShardSet)
			topoVer := a.Load(e + iTopoVer)
			sum := checksumSeed(seq, epochNum, meta, shardSet)
			sum = checksumStep(sum, topoVer)
			for j := uint64(0); j < content; j++ {
				sum = checksumStep(sum, a.Load(e+iContent+j))
			}
			if sum != a.Load(e+iChecksum) {
				break // torn record: its transaction never reached its commit point
			}
			rec := IntentRecord{
				Seq:       seq,
				Epoch:     epochNum,
				ShardSet:  shardSet,
				TopoVer:   topoVer,
				Committed: a.Load(e+iMark) == seq,
			}
			pos := e + iContent
			end := pos + content
			valid := true
			unpackBytes := func(n uint64) []byte {
				b := make([]byte, n)
				for i := uint64(0); i < n; i++ {
					b[i] = byte(a.Load(pos+i/8) >> (56 - 8*(i%8)))
				}
				pos += (n + 7) / 8
				return b
			}
			for pos < end {
				hdr := a.Load(pos)
				pos++
				klen := hdr & 0xFFFF
				del := hdr&opDelete != 0
				vlen := uint64(0)
				if !del {
					vlen = hdr >> opVShift & 0xFFFF
				}
				if pos+(klen+7)/8+(vlen+7)/8 > end {
					valid = false
					break
				}
				op := IntentOp{Key: unpackBytes(klen), Delete: del}
				if !del {
					op.Val = unpackBytes(vlen)
				}
				rec.Ops = append(rec.Ops, op)
			}
			if !valid {
				break
			}
			recs = append(recs, rec)
			cursor += intentEntryWords(content)
		}
	}
	return recs
}

// RetireIntents durably bumps the generation, so records replayed by this
// recovery can never replay again. The caller must first make the replayed
// state durable (a full checkpoint), exactly like Log.Recover's flush-
// before-bump ordering.
func (l *IntentLog) RetireIntents() {
	l.generation++
	l.arena.Store(l.off+hGeneration, l.generation)
	l.arena.Writeback(l.off)
	l.arena.Fence()
}
