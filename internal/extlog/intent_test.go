package extlog

import (
	"bytes"
	"testing"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

func intentFixture(t *testing.T, segWords uint64, writers int) (*nvm.Arena, *epoch.Manager, *IntentLog) {
	t.Helper()
	a := nvm.New(nvm.Config{Words: 1 << 16})
	eOff := a.Reserve(epoch.HeaderWords)
	off := a.Reserve(IntentRegionWords(segWords, writers))
	m, _ := epoch.Open(a, eOff)
	return a, m, NewIntentLog(a, m, off, segWords, writers)
}

func TestIntentRoundTrip(t *testing.T) {
	_, m, l := intentFixture(t, 1<<10, 2)
	ops := []IntentOp{
		{Key: []byte{1, 2, 3}, Val: []byte{77}},                                  // short key, short value
		{Key: []byte{9, 8, 7, 6, 5, 4, 3, 2}, Val: []byte("an 18-byte payload")}, // word-exact key, multi-word value
		{Key: []byte("a long key spanning words"), Delete: true},                 // multi-word delete
		{Key: []byte{0xFF, 0, 0xAA, 1, 2, 3, 4, 5, 6, 7, 8, 9}, Val: []byte{}},   // 12-byte key, empty value
	}
	entry, ok := l.Writer(1).AppendIntent(42, m.Current(), 0b101, 1, ops)
	if !ok {
		t.Fatal("append failed on an empty segment")
	}

	recs := l.ScanIntents()
	if len(recs) != 1 {
		t.Fatalf("scan found %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Seq != 42 || r.Epoch != m.Current() || r.ShardSet != 0b101 {
		t.Fatalf("header mismatch: %+v", r)
	}
	if r.Committed {
		t.Fatal("record committed before MarkCommitted")
	}
	if len(r.Ops) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(r.Ops), len(ops))
	}
	for i, op := range r.Ops {
		if !bytes.Equal(op.Key, ops[i].Key) || !bytes.Equal(op.Val, ops[i].Val) || op.Delete != ops[i].Delete {
			t.Fatalf("op %d = %+v, want %+v", i, op, ops[i])
		}
	}

	l.MarkCommitted(entry)
	if recs = l.ScanIntents(); !recs[0].Committed {
		t.Fatal("record not committed after MarkCommitted")
	}
}

func TestIntentRetireHidesRecords(t *testing.T) {
	_, m, l := intentFixture(t, 1<<10, 1)
	e, _ := l.Writer(0).AppendIntent(1, m.Current(), 1, 1, []IntentOp{{Key: []byte{1}, Val: []byte{1}}})
	l.MarkCommitted(e)
	l.RetireIntents()
	if recs := l.ScanIntents(); len(recs) != 0 {
		t.Fatalf("scan found %d records after retire, want 0", len(recs))
	}
}

func TestIntentSegmentFullAndCursorReset(t *testing.T) {
	_, m, l := intentFixture(t, 2*nvm.WordsPerLine, 1) // room for exactly one small record
	small := []IntentOp{{Key: []byte{1}, Val: []byte{1}}}
	if _, ok := l.Writer(0).AppendIntent(1, m.Current(), 1, 1, small); !ok {
		t.Fatal("first append should fit")
	}
	if _, ok := l.Writer(0).AppendIntent(2, m.Current(), 1, 1, small); ok {
		t.Fatal("second append should report a full segment")
	}
	m.Advance() // boundary resets the cursor
	if _, ok := l.Writer(0).AppendIntent(3, m.Current(), 1, 1, small); !ok {
		t.Fatal("append after advance should fit again")
	}
}

func TestIntentTornRecordIgnored(t *testing.T) {
	a, m, l := intentFixture(t, 1<<10, 1)
	e, _ := l.Writer(0).AppendIntent(7, m.Current(), 1, 1, []IntentOp{{Key: []byte{1, 2, 3, 4}, Val: []byte{9}}})
	// Corrupt one content word, as a torn line would.
	a.Store(e+iContent, a.Load(e+iContent)^0xDEAD)
	if recs := l.ScanIntents(); len(recs) != 0 {
		t.Fatalf("scan accepted a torn record: %+v", recs)
	}
}

func TestIntentFits(t *testing.T) {
	_, _, l := intentFixture(t, 2*nvm.WordsPerLine, 1)
	if !l.IntentFits([]IntentOp{{Key: []byte{1}, Val: []byte{1}}}) {
		t.Fatal("small op should fit")
	}
	big := make([]IntentOp, 64)
	for i := range big {
		big[i] = IntentOp{Key: []byte{byte(i)}, Val: []byte{1}}
	}
	if l.IntentFits(big) {
		t.Fatal("64 ops cannot fit a two-line segment")
	}
}
