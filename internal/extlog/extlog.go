// Package extlog implements the paper's external undo log (§4.2): an
// object-granularity log used for modifications that In-Cache-Line Logging
// cannot absorb — node splits and merges, internal-node updates, repeated
// conflicting updates to one cache line, and mixed remove-then-insert
// sequences within one epoch.
//
// A node is logged at most once per epoch (the caller tracks a per-node
// "logged" bit), so log entries are independent of each other and recovery
// can apply them in any order — unlike a classic undo log, which must be
// rolled back in reverse order.
//
// Durability protocol: the entry (pre-image plus checksummed header) is
// written to the log segment, written back, and fenced *before* the caller
// mutates the node. This is the only place the system pays a fence on the
// mutation path.
//
// Crash safety across executions: entries embed a log generation number.
// Recovery applies every checksum-valid entry of the current generation
// whose epoch failed, flushes the repaired state, and only then bumps the
// generation — so a crash at any point during recovery simply re-runs it,
// while entries from previous recoveries can never be replayed.
package extlog

import (
	"sync/atomic"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

const (
	// entry layout, in words
	eEpoch    = 0 // epoch the pre-image belongs to
	eNode     = 1 // word offset of the logged object
	eMeta     = 2 // size in words (low 32) | generation (high 32)
	eChecksum = 3
	eContent  = 4

	// region header (one line)
	hGeneration = 0

	// MaxObjectWords bounds the size of a logged object.
	MaxObjectWords = 256
)

// Log is an external undo log over a durable region, split into one
// segment per writer thread.
type Log struct {
	arena *nvm.Arena
	mgr   *epoch.Manager

	off      uint64 // region start: header line, then segments
	segWords uint64
	writers  []Writer

	generation uint64

	entries atomic.Int64 // entries appended (all writers, this execution)
	words   atomic.Int64 // content words logged
}

// RegionWords returns the region size needed for the given segment size
// and writer count.
func RegionWords(segWords uint64, writers int) uint64 {
	seg := (segWords + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
	return nvm.WordsPerLine + seg*uint64(writers)
}

// New attaches a log to the region at off (RegionWords(segWords, writers)
// words). The caller must invoke Recover exactly once, after all durable
// structures are attached but before mutators start.
func New(a *nvm.Arena, m *epoch.Manager, off, segWords uint64, writers int) *Log {
	seg := (segWords + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
	l := &Log{
		arena:      a,
		mgr:        m,
		off:        off,
		segWords:   seg,
		generation: a.Load(off + hGeneration),
	}
	l.writers = make([]Writer, writers)
	for i := range l.writers {
		l.writers[i] = Writer{log: l, base: off + nvm.WordsPerLine + uint64(i)*seg}
	}
	m.OnAdvance(func(uint64) { l.resetCursors() })
	return l
}

// resetCursors discards the log at an epoch boundary: the global flush has
// just committed everything the entries would undo. The entries themselves
// stay in NVM but become unreachable garbage (their epochs are committed).
func (l *Log) resetCursors() {
	for i := range l.writers {
		l.writers[i].cursor = 0
	}
}

// Writer returns writer i's interface. Each concurrent mutator thread must
// use its own writer; a Writer is not safe for concurrent use.
func (l *Log) Writer(i int) *Writer { return &l.writers[i] }

// Entries returns the number of entries appended during this execution.
func (l *Log) Entries() int64 { return l.entries.Load() }

// ContentWords returns the number of pre-image words appended during this
// execution.
func (l *Log) ContentWords() int64 { return l.words.Load() }

// Writer appends pre-images to one segment.
type Writer struct {
	log    *Log
	base   uint64
	cursor uint64
}

// LogObject captures the current contents of [nodeOff, nodeOff+words) as
// an undo entry and makes the entry durable (writeback + fence) before
// returning. Returns false if the segment is full, in which case the
// caller must force an early epoch boundary (or was configured with too
// small a segment).
func (w *Writer) LogObject(nodeOff, words uint64) bool {
	if words == 0 || words > MaxObjectWords {
		panic("extlog: object size out of range")
	}
	l := w.log
	a := l.arena
	need := entryWords(words)
	if w.cursor+need > l.segWords {
		return false
	}
	e := w.base + w.cursor
	ep := l.mgr.Current()
	sum := checksumSeed(ep, nodeOff, words, l.generation)
	for i := uint64(0); i < words; i++ {
		v := a.Load(nodeOff + i)
		a.Store(e+eContent+i, v)
		sum = checksumStep(sum, v)
	}
	a.Store(e+eEpoch, ep)
	a.Store(e+eNode, nodeOff)
	a.Store(e+eMeta, words|l.generation<<32)
	a.Store(e+eChecksum, sum)
	a.WritebackRange(e, need)
	a.Fence()
	w.cursor += need
	l.entries.Add(1)
	l.words.Add(int64(words))
	return true
}

// entryWords returns the line-aligned footprint of an entry with the given
// content size.
func entryWords(words uint64) uint64 {
	n := eContent + words
	return (n + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
}

// Recover applies every valid entry of the current generation whose epoch
// failed: the pre-image is copied back over the object. It then flushes
// the cache (making all recovery writes durable — including any the caller
// performed before Recover) and durably bumps the generation so the
// entries can never replay. Returns the number of entries applied.
//
// Idempotent under crashes: a crash before the generation bump re-runs the
// same recovery; a crash after it finds no valid entries and a fully
// repaired persistent image.
func (l *Log) Recover() int {
	a := l.arena
	applied := 0
	for i := range l.writers {
		base := l.writers[i].base
		cursor := uint64(0)
		for cursor < l.segWords {
			e := base + cursor
			ep := a.Load(e + eEpoch)
			node := a.Load(e + eNode)
			meta := a.Load(e + eMeta)
			words := meta & 0xFFFFFFFF
			gen := meta >> 32
			if ep == 0 || words == 0 || words > MaxObjectWords || gen != l.generation {
				break // virgin space, torn entry, or stale generation
			}
			sum := checksumSeed(ep, node, words, l.generation)
			for j := uint64(0); j < words; j++ {
				sum = checksumStep(sum, a.Load(e+eContent+j))
			}
			if sum != a.Load(e+eChecksum) {
				break // torn tail entry: its mutation never happened
			}
			if l.mgr.IsFailed(ep) {
				for j := uint64(0); j < words; j++ {
					a.Store(node+j, a.Load(e+eContent+j))
				}
				applied++
			}
			cursor += entryWords(words)
		}
	}
	// Make the repair durable, then retire this generation.
	a.FlushAll()
	l.generation++
	a.Store(l.off+hGeneration, l.generation)
	a.Writeback(l.off)
	a.Fence()
	return applied
}

// FNV-1a over the entry header fields and content words.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func checksumSeed(ep, node, words, gen uint64) uint64 {
	s := uint64(fnvOffset)
	for _, v := range [4]uint64{ep, node, words, gen} {
		s = checksumStep(s, v)
	}
	return s
}

func checksumStep(s, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		s ^= v & 0xFF
		s *= fnvPrime
		v >>= 8
	}
	return s
}
