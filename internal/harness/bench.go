package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"incll/internal/ycsb"
)

// BenchRecord is one machine-readable measurement, the unit of the
// BENCH_*.json files cmd/incll-bench emits so the performance trajectory
// is tracked PR over PR.
type BenchRecord struct {
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"`
	Dist       string  `json:"dist"`
	Shards     int     `json:"shards"`
	TxnMode    string  `json:"txn_mode"`
	ValueSize  int     `json:"value_size"`
	ValueDist  string  `json:"value_dist,omitempty"`
	ScanLen    int     `json:"scan_len,omitempty"`
	ScanDist   string  `json:"scan_dist,omitempty"`
	ScanAPI    string  `json:"scan_api,omitempty"` // cursor | callback (YCSB-E only)
	Reverse    bool    `json:"reverse,omitempty"`
	Threads    int     `json:"threads"`
	TreeSize   uint64  `json:"tree_size"`
	Ops        int64   `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Txns       int64   `json:"txns"`
	TxnsPerSec float64 `json:"txns_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	ElapsedMS  float64 `json:"elapsed_ms"`

	// Per-op latency percentiles in microseconds (sampled; YCSB rows).
	P50Micros float64 `json:"p50_us,omitempty"`
	P95Micros float64 `json:"p95_us,omitempty"`
	P99Micros float64 `json:"p99_us,omitempty"`

	// Checkpoint stop-the-world windows over the measured phase, in
	// microseconds (durable modes; one sample per shard per advance).
	STWCount     int64   `json:"stw_count,omitempty"`
	STWP50Micros float64 `json:"stw_p50_us,omitempty"`
	STWP99Micros float64 `json:"stw_p99_us,omitempty"`
	STWMaxMicros float64 `json:"stw_max_us,omitempty"`

	// Observability counters over the measured phase (durable modes): the
	// undo breakdown (Figure 7's metric) and NVM traffic.
	LoggedNodes  int64 `json:"logged_nodes,omitempty"`
	InCLLPerm    int64 `json:"incll_perm,omitempty"`
	InCLLVal     int64 `json:"incll_val,omitempty"`
	Fences       int64 `json:"fences,omitempty"`
	FlushedLines int64 `json:"flushed_lines,omitempty"`
	Advances     int64 `json:"advances,omitempty"`

	// Replication rows (Workload "SNAPSHOT" / "REPLICA" / "REPLNET"):
	// snapshot and restore throughput, and replica lag under write load.
	// REPLNET rows measure the TCP tier: MBPerSec is the follower's
	// bootstrap transfer rate over loopback, the lag fields its
	// steady-state apply debt, HBRTTP99Micros the primary-observed
	// heartbeat round-trip tail, and the commit-to-apply fields the
	// propagation-timeline quantiles (commit on the primary to the
	// follower's durable-apply ack, single clock; DESIGN.md §15).
	SnapshotBytes          int64   `json:"snapshot_bytes,omitempty"`
	RestoreMBPerSec        float64 `json:"restore_mb_per_sec,omitempty"`
	LagEpochsMax           uint64  `json:"lag_epochs_max,omitempty"`
	LagEpochsMean          float64 `json:"lag_epochs_mean,omitempty"`
	HBRTTP99Micros         float64 `json:"hb_rtt_p99_us,omitempty"`
	CommitToApplyP50Micros float64 `json:"commit_to_apply_p50_us,omitempty"`
	CommitToApplyP99Micros float64 `json:"commit_to_apply_p99_us,omitempty"`

	// Reshard rows (Workload "RESHARD"): online split/merge under load.
	// Reshard names the transition ("4to8"); OpsPerSec is the workload's
	// sustained throughput while the reshard ran, BaseOpsPerSec the
	// undisturbed baseline; CopyMBPerSec the bulk-copy rate into the
	// target; CutoverPauseMS the writer-gated cutover window.
	Reshard        string  `json:"reshard,omitempty"`
	BaseOpsPerSec  float64 `json:"base_ops_per_sec,omitempty"`
	CopyMBPerSec   float64 `json:"copy_mb_per_sec,omitempty"`
	CutoverPauseMS float64 `json:"cutover_pause_ms,omitempty"`

	// Phases is the sampled latency attribution over the measured phase
	// (durable rows; see DESIGN.md §12), keyed by phase name.
	Phases map[string]PhaseSummary `json:"phases,omitempty"`
	// PhaseSampleEvery is the attribution sampling period the row used.
	PhaseSampleEvery int `json:"phase_sample_every,omitempty"`

	// Timeline is the per-second progress series of the measured phase.
	Timeline []TimelinePoint `json:"timeline,omitempty"`
}

// PhaseSummary is one phase's latency summary in a bench row.
type PhaseSummary struct {
	Count     int64   `json:"count"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// record converts one run's result.
func record(r Result) BenchRecord {
	shards := r.Config.Shards
	if shards < 1 {
		shards = 1
	}
	rec := BenchRecord{
		Workload:   r.Config.Workload.String(),
		Mode:       r.Config.Mode.String(),
		Dist:       r.Config.Dist.String(),
		Shards:     shards,
		TxnMode:    r.Config.TxnMode.String(),
		ValueSize:  r.Config.ValueSize,
		Threads:    r.Config.Threads,
		TreeSize:   r.Config.TreeSize,
		Ops:        r.Ops,
		OpsPerSec:  r.Throughput,
		Txns:       r.Txns,
		TxnsPerSec: r.TxnThroughput,
		MBPerSec:   r.MBPerSec,
		ElapsedMS:  float64(r.Elapsed.Microseconds()) / 1000,
		P50Micros:  float64(r.P50.Nanoseconds()) / 1000,
		P95Micros:  float64(r.P95.Nanoseconds()) / 1000,
		P99Micros:  float64(r.P99.Nanoseconds()) / 1000,

		STWCount:     r.CheckpointSTW.Count,
		STWP50Micros: float64(r.CheckpointSTW.P50) / 1000,
		STWP99Micros: float64(r.CheckpointSTW.P99) / 1000,
		STWMaxMicros: float64(r.CheckpointSTW.Max) / 1000,

		LoggedNodes:  r.LoggedNodes,
		InCLLPerm:    r.InCLLPerm,
		InCLLVal:     r.InCLLVal,
		Fences:       r.Fences,
		FlushedLines: r.FlushedLines,
		Advances:     r.Advances,
	}
	if r.Config.ValueSize > 0 {
		rec.ValueDist = r.Config.ValueDist.String()
	}
	if r.Config.Workload == ycsb.E {
		rec.ScanLen = r.Config.ScanLen
		rec.ScanDist = r.Config.ScanDist.String()
		rec.ScanAPI = "cursor"
		if r.Config.LegacyScan {
			rec.ScanAPI = "callback"
		}
		rec.Reverse = r.Config.ScanReverse
	}
	if len(r.Phases) > 0 {
		rec.PhaseSampleEvery = r.PhaseSampleEvery
		rec.Phases = make(map[string]PhaseSummary, len(r.Phases))
		for name, h := range r.Phases {
			if h.Count == 0 {
				continue // quiet phases stay out of the row
			}
			rec.Phases[name] = PhaseSummary{
				Count:     h.Count,
				P50Micros: float64(h.P50) / 1000,
				P99Micros: float64(h.P99) / 1000,
			}
		}
	}
	rec.Timeline = r.Timeline
	return rec
}

// BenchSuite runs the tracked benchmark matrix — the four YCSB workloads
// on the durable store, a sharded scale-out point, and the two
// transactional modes — and returns the records. Each record also prints
// one line to w as it lands.
func BenchSuite(w io.Writer, p Params) []BenchRecord {
	p.setDefaults()
	base := RunConfig{
		TreeSize:     p.TreeSize,
		Threads:      p.Threads,
		OpsPerThread: p.Ops,
		Seed:         p.Seed,
		Mode:         INCLL,
		Dist:         ycsb.Uniform,
	}
	var cfgs []RunConfig
	for _, wl := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.E} {
		c := base
		c.Workload = wl
		cfgs = append(cfgs, c)
	}
	// YCSB-E rows: the cursor-vs-callback comparison at the default scan
	// length (the acceptance gate: cursor within 10% of the legacy
	// callback), then the spec-shaped zipfian-length mix forward, reverse,
	// and sharded.
	eLegacy := base
	eLegacy.Workload = ycsb.E
	eLegacy.LegacyScan = true
	cfgs = append(cfgs, eLegacy)

	eZipf := base
	eZipf.Workload = ycsb.E
	eZipf.ScanLen = 50
	eZipf.ScanDist = ycsb.SizeZipfian
	cfgs = append(cfgs, eZipf)

	eRev := eZipf
	eRev.ScanReverse = true
	cfgs = append(cfgs, eRev)

	eSharded := eZipf
	eSharded.Shards = 4
	cfgs = append(cfgs, eSharded)

	sharded := base
	sharded.Workload = ycsb.A
	sharded.Shards = 4
	cfgs = append(cfgs, sharded)

	rmw := base
	rmw.Workload = ycsb.A
	rmw.TxnMode = TxnRMW
	cfgs = append(cfgs, rmw)

	transfer := base
	transfer.Workload = ycsb.A
	transfer.TxnMode = TxnTransfer
	cfgs = append(cfgs, transfer)

	xfer4 := transfer
	xfer4.Shards = 4
	cfgs = append(cfgs, xfer4)

	// Byte-value rows: memcached-style payload sizes on the value heap.
	// Smaller trees keep the value-heap arenas CI-sized.
	bytes128 := base
	bytes128.Workload = ycsb.A
	bytes128.ValueSize = 128
	cfgs = append(cfgs, bytes128)

	bytes1k := base
	bytes1k.Workload = ycsb.A
	bytes1k.TreeSize = p.TreeSize / 4
	bytes1k.ValueSize = 1024
	bytes1k.ValueDist = ycsb.SizeZipfian
	cfgs = append(cfgs, bytes1k)

	bytes1k4 := base
	bytes1k4.Workload = ycsb.A
	bytes1k4.TreeSize = p.TreeSize / 4
	bytes1k4.ValueSize = 1024
	bytes1k4.Shards = 4
	cfgs = append(cfgs, bytes1k4)

	recs := make([]BenchRecord, 0, len(cfgs)+4)
	for _, c := range cfgs {
		// Earlier rows leave the heap full of dead arenas and tree nodes;
		// on a small runner the collector's catch-up work then lands inside
		// the next row's measured window. Collect between rows so each row
		// starts from the same heap state.
		runtime.GC()
		r := Run(c)
		rec := record(r)
		recs = append(recs, rec)
		fmt.Fprintf(w, "%-8s %-6s shards=%d txn=%-8s vs=%-4d %10.0f ops/s", rec.Workload, rec.Mode, rec.Shards, rec.TxnMode, rec.ValueSize, rec.OpsPerSec)
		fmt.Fprintf(w, "  p50/p95/p99=%.1f/%.1f/%.1fus", rec.P50Micros, rec.P95Micros, rec.P99Micros)
		if rec.STWCount > 0 {
			fmt.Fprintf(w, "  stw p50/max=%.0f/%.0fus", rec.STWP50Micros, rec.STWMaxMicros)
		}
		if rec.ScanAPI != "" {
			dir := "fwd"
			if rec.Reverse {
				dir = "rev"
			}
			fmt.Fprintf(w, "  scan=%s/%d/%s/%s", rec.ScanAPI, rec.ScanLen, rec.ScanDist, dir)
		}
		if rec.Txns > 0 {
			fmt.Fprintf(w, " %10.0f txn/s", rec.TxnsPerSec)
		}
		if rec.ValueSize > 0 {
			fmt.Fprintf(w, " %8.1f MB/s", rec.MBPerSec)
		}
		if c.TxnMode == TxnTransfer && !r.SumConserved {
			fmt.Fprintf(w, "  INVARIANT VIOLATED")
		}
		fmt.Fprintln(w)
	}
	recs = append(recs, replRows(w, p)...)
	recs = append(recs, replnetRows(w, p)...)
	recs = append(recs, reshardRows(w, p)...)
	return recs
}

// replRows runs the replication matrix: snapshot/restore throughput at 1
// and 4 shards (128-byte values, a quarter of the tree so arenas stay
// CI-sized) and a replica-lag run under write load.
func replRows(w io.Writer, p Params) []BenchRecord {
	rp := p
	rp.TreeSize = p.TreeSize / 4
	var recs []BenchRecord
	for _, shards := range []int{1, 4} {
		r := RunSnapshotBench(rp, shards, 128)
		rec := BenchRecord{
			Workload:        "SNAPSHOT",
			Mode:            "INCLL",
			Dist:            "uniform",
			Shards:          shards,
			TxnMode:         "none",
			ValueSize:       128,
			Threads:         1,
			TreeSize:        rp.TreeSize,
			MBPerSec:        r.SnapshotMBPerSec,
			SnapshotBytes:   r.SnapshotBytes,
			RestoreMBPerSec: r.RestoreMBPerSec,
		}
		recs = append(recs, rec)
		fmt.Fprintf(w, "%-8s INCLL  shards=%d %38.1f MB/s  restore %.1f MB/s  (%d bytes)\n",
			rec.Workload, shards, rec.MBPerSec, rec.RestoreMBPerSec, rec.SnapshotBytes)
	}
	for _, shards := range []int{1, 4} {
		r := RunReplicaLagBench(rp, shards)
		rec := BenchRecord{
			Workload:      "REPLICA",
			Mode:          "INCLL",
			Dist:          "uniform",
			Shards:        shards,
			TxnMode:       "none",
			Threads:       1,
			TreeSize:      rp.TreeSize,
			Ops:           int64(p.Ops),
			MBPerSec:      r.ApplyMBPerSec,
			LagEpochsMax:  r.LagEpochsMax,
			LagEpochsMean: r.LagEpochsMean,
		}
		recs = append(recs, rec)
		conv := ""
		if !r.Converged {
			conv = "  DIVERGED"
		}
		fmt.Fprintf(w, "%-8s INCLL  shards=%d %38.1f MB/s applied  lag max/mean %d/%.2f epochs%s\n",
			rec.Workload, shards, rec.MBPerSec, rec.LagEpochsMax, rec.LagEpochsMean, conv)
	}
	return recs
}

// replnetRows runs the networked replication matrix: a loopback-TCP
// follower bootstrap plus a steady-state lag run at 1 and 4 shards.
func replnetRows(w io.Writer, p Params) []BenchRecord {
	rp := p
	rp.TreeSize = p.TreeSize / 4
	var recs []BenchRecord
	for _, shards := range []int{1, 4} {
		r := RunReplnetBench(rp, shards)
		rec := BenchRecord{
			Workload:               "REPLNET",
			Mode:                   "INCLL",
			Dist:                   "uniform",
			Shards:                 shards,
			TxnMode:                "none",
			Threads:                1,
			TreeSize:               rp.TreeSize,
			Ops:                    int64(p.Ops),
			MBPerSec:               r.BootstrapMBPerSec,
			SnapshotBytes:          r.BootstrapBytes,
			LagEpochsMax:           r.LagEpochsMax,
			LagEpochsMean:          r.LagEpochsMean,
			HBRTTP99Micros:         float64(r.HeartbeatRTTP99.Nanoseconds()) / 1000,
			CommitToApplyP50Micros: float64(r.CommitToApplyP50.Nanoseconds()) / 1000,
			CommitToApplyP99Micros: float64(r.CommitToApplyP99.Nanoseconds()) / 1000,
		}
		recs = append(recs, rec)
		conv := ""
		if !r.Converged {
			conv = "  DIVERGED"
		}
		fmt.Fprintf(w, "%-8s INCLL  shards=%d %38.1f MB/s bootstrap  lag max/mean %d/%.2f epochs  hb rtt p99 %.0fus  c2a p50/p99 %.0f/%.0fus%s\n",
			rec.Workload, shards, rec.MBPerSec, rec.LagEpochsMax, rec.LagEpochsMean, rec.HBRTTP99Micros,
			rec.CommitToApplyP50Micros, rec.CommitToApplyP99Micros, conv)
	}
	return recs
}

// RunMeta records the environment one benchmark run measured under, so a
// BENCH_*.json row is never compared against a row from different
// hardware or toolchain without noticing.
type RunMeta struct {
	// GitCommit is the HEAD commit hash, when the run happens inside a
	// git checkout ("" otherwise — metadata collection never fails a run).
	GitCommit string `json:"git_commit,omitempty"`
	// GoVersion is runtime.Version().
	GoVersion string `json:"go_version"`
	// GOOS/GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GOMAXPROCS is the
	// scheduler parallelism the run actually used.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Timestamp is the collection time, UTC RFC 3339.
	Timestamp string `json:"timestamp"`
}

// CollectRunMeta gathers the run metadata, best-effort.
func CollectRunMeta() RunMeta {
	m := RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.GitCommit = strings.TrimSpace(string(out))
	}
	return m
}

// BenchFile is the envelope a BENCH_*.json file holds: the run metadata
// once, then every record. (Files before PR 6 are bare record arrays.)
type BenchFile struct {
	Meta    RunMeta       `json:"meta"`
	Records []BenchRecord `json:"records"`
}

// WriteBenchJSON marshals the records, indented, to w, wrapped in the
// metadata envelope.
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BenchFile{Meta: CollectRunMeta(), Records: recs})
}
