package harness

import (
	"os"
	"sort"
	"testing"
	"time"

	"incll/internal/ycsb"
)

func TestTimelineAndPhasesInResult(t *testing.T) {
	cfg := quickCfg(INCLL, ycsb.A, ycsb.Uniform)
	cfg.PhaseSampleEvery = 1
	cfg.TimelineInterval = 5 * time.Millisecond
	r := Run(cfg)

	if len(r.Timeline) == 0 {
		t.Fatal("no timeline points")
	}
	var prev int64 = -1
	var total int64
	for i, p := range r.Timeline {
		if p.Ops < prev {
			t.Fatalf("timeline point %d: cumulative ops went backwards (%d -> %d)", i, prev, p.Ops)
		}
		prev = p.Ops
		total = p.Ops
		if i > 0 && p.MS <= r.Timeline[i-1].MS {
			t.Fatalf("timeline point %d: non-monotonic ms %d after %d", i, p.MS, r.Timeline[i-1].MS)
		}
	}
	if total != r.Ops {
		t.Fatalf("final timeline point has %d ops, run did %d", total, r.Ops)
	}

	if r.PhaseSampleEvery != 1 {
		t.Fatalf("PhaseSampleEvery = %d, want 1", r.PhaseSampleEvery)
	}
	if r.Phases == nil || r.Phases["descent"].Count == 0 {
		t.Fatalf("descent phase not attributed: %+v", r.Phases)
	}

	// Attribution must describe the measured phase only: with every op
	// sampled, descent count can't exceed measured ops (preload excluded).
	if got := r.Phases["descent"].Count; got > r.Ops {
		t.Fatalf("descent count %d exceeds measured ops %d — preload leaked into attribution", got, r.Ops)
	}

	// Disabled attribution produces no phase map.
	cfg.PhaseSampleEvery = -1
	r = Run(cfg)
	if r.Phases != nil {
		t.Fatalf("Phases should be nil when disabled, got %+v", r.Phases)
	}
}

func TestBenchRecordCarriesPhasesAndTimeline(t *testing.T) {
	cfg := quickCfg(INCLL, ycsb.A, ycsb.Zipfian)
	cfg.PhaseSampleEvery = 1
	cfg.TimelineInterval = 5 * time.Millisecond
	r := Run(cfg)
	rec := record(r)
	if rec.PhaseSampleEvery != 1 || len(rec.Phases) == 0 {
		t.Fatalf("record missing phases: %+v", rec.Phases)
	}
	if d, ok := rec.Phases["descent"]; !ok || d.Count == 0 || d.P99Micros <= 0 {
		t.Fatalf("descent summary wrong: %+v", d)
	}
	if len(rec.Timeline) == 0 {
		t.Fatal("record missing timeline")
	}
}

// TestPhaseAttributionOverheadAB measures the cost of attribution at the
// default 1-in-8 sampling against a run with attribution compiled out of
// the hot path (nil PhaseSet). Interleaved A/B/A/B rounds cancel thermal
// and scheduler drift. Opt-in (INCLL_AB=1): a wall-clock assertion on a
// shared CI runner would flake; run locally to validate the ≤5% budget.
func TestPhaseAttributionOverheadAB(t *testing.T) {
	if os.Getenv("INCLL_AB") != "1" {
		t.Skip("set INCLL_AB=1 to run the attribution overhead A/B check")
	}
	// Runs must be long enough to amortise checkpoint-tick quantisation
	// (a 64ms STW landing in one side's window but not the other's) —
	// sub-second runs measure scheduler luck, not the instrumentation.
	const rounds = 6
	cfg := RunConfig{
		Mode: INCLL, Workload: ycsb.A, Dist: ycsb.Zipfian,
		TreeSize: 100_000, Threads: 2, OpsPerThread: 600_000,
		EpochInterval: 64 * time.Millisecond, Seed: 1,
	}
	// One discarded warm-up run: the first run of a process pays page
	// faults and branch-predictor training that would otherwise all land
	// on one side of the comparison.
	cfg.PhaseSampleEvery = -1
	Run(cfg)
	deltas := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		// Alternate which side runs first so slow drift (thermal,
		// neighbouring load) cancels instead of accumulating on one side.
		// Adjacent runs are paired into a per-round delta: a shared-host
		// hiccup then spoils one round, not the whole mean.
		var on, off float64
		order := []int{0, -1}
		if i&1 == 1 {
			order = []int{-1, 0}
		}
		for _, every := range order {
			cfg.PhaseSampleEvery = every
			tp := Run(cfg).Throughput
			if every < 0 {
				off = tp
			} else {
				on = tp
			}
		}
		d := (off - on) / off
		deltas = append(deltas, d)
		t.Logf("round %d: on %.0f ops/s, off %.0f ops/s, delta %.2f%%", i, on, off, 100*d)
	}
	// Trimmed mean: drop the best and worst round before averaging, so a
	// single noisy round (either direction) can't decide the verdict.
	sort.Float64s(deltas)
	var sum float64
	trimmed := deltas[1 : len(deltas)-1]
	for _, d := range trimmed {
		sum += d
	}
	delta := sum / float64(len(trimmed))
	t.Logf("attribution overhead: %.2f%% (trimmed mean of %d rounds)", 100*delta, rounds)
	if delta > 0.05 {
		t.Fatalf("attribution overhead %.2f%% exceeds 5%% budget", 100*delta)
	}
}
