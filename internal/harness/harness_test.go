package harness

import (
	"io"
	"strings"
	"testing"
	"time"

	"incll/internal/core"
	"incll/internal/nvm"
	"incll/internal/ycsb"
)

// quick returns laptop-instant parameters for smoke tests.
func quick() Params {
	return Params{TreeSize: 20_000, Threads: 2, Ops: 15_000, Seed: 1}
}

func quickCfg(m Mode, w ycsb.Workload, d ycsb.Distribution) RunConfig {
	return RunConfig{
		Mode: m, Workload: w, Dist: d,
		TreeSize: 20_000, Threads: 2, OpsPerThread: 15_000,
		EpochInterval: 10 * time.Millisecond,
		Seed:          1,
	}
}

func TestRunAllModesProduceThroughput(t *testing.T) {
	for _, m := range []Mode{MT, MTPlus, INCLL, LOGGING} {
		r := Run(quickCfg(m, ycsb.A, ycsb.Uniform))
		if r.Throughput <= 0 {
			t.Fatalf("%v: throughput %f", m, r.Throughput)
		}
		if r.Ops != 30_000 {
			t.Fatalf("%v: ops %d", m, r.Ops)
		}
	}
}

func TestDurableRunsCountLoggingActivity(t *testing.T) {
	// Deterministic comparison (wall-clock epochs would make the logged
	// counts depend on scheduler speed): identical op streams, manual
	// epoch boundaries every 2000 ops, large-ish tree so nodes are
	// revisited less than twice per epoch — the regime where InCLL wins.
	counts := map[bool]int64{}
	for _, disable := range []bool{false, true} {
		cfg := RunConfig{TreeSize: 100_000, Threads: 1}
		arenaWords, heapWords, segWords := SizeArena(cfg)
		a := nvm.New(nvm.Config{Words: arenaWords})
		s, _ := core.Open(a, core.Config{
			Workers: 1, LogSegWords: segWords, HeapWords: heapWords, DisableInCLL: disable,
		})
		for k := uint64(0); k < cfg.TreeSize; k++ {
			s.Put(core.EncodeUint64(k), k)
		}
		s.Advance()
		logged0 := s.Stats().LoggedNodes.Load()
		g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, cfg.TreeSize, 1)
		for i := 0; i < 30_000; i++ {
			op := g.Next()
			if op.Kind == ycsb.OpPut {
				s.Put(core.EncodeUint64(op.Key), uint64(i))
			} else {
				s.Get(core.EncodeUint64(op.Key))
			}
			if i%2000 == 1999 {
				s.Advance()
			}
		}
		counts[disable] = s.Stats().LoggedNodes.Load() - logged0
		if !disable && s.Stats().InCLLPerm.Load()+s.Stats().InCLLVal.Load() == 0 {
			t.Fatal("INCLL run used no in-cache-line logs")
		}
	}
	if counts[true] == 0 {
		t.Fatal("LOGGING run logged no nodes")
	}
	if counts[false]*2 >= counts[true] {
		t.Fatalf("InCLL did not substantially reduce logged nodes: %d (INCLL) vs %d (LOGGING)",
			counts[false], counts[true])
	}
}

func TestScanWorkloadRuns(t *testing.T) {
	r := Run(quickCfg(INCLL, ycsb.E, ycsb.Zipfian))
	if r.Throughput <= 0 {
		t.Fatalf("scan workload throughput %f", r.Throughput)
	}
}

func TestFig2SmokePrintsAllRows(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	p := quick()
	p.Ops = 5_000
	rows := Fig2(&sb, p)
	if len(rows) != 8 { // 4 workloads × 2 distributions
		t.Fatalf("Fig2 returned %d rows", len(rows))
	}
	if !strings.Contains(sb.String(), "YCSB_A") {
		t.Fatal("Fig2 output missing workloads")
	}
}

func TestRecoveryExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	row := Recovery(io.Discard, Params{TreeSize: 1_000_000, Threads: 1, Ops: 1, Seed: 2})
	if row.Values["logged"] == 0 {
		t.Fatal("recovery experiment logged no nodes")
	}
	if row.Values["recoveryMs"] <= 0 {
		t.Fatal("no recovery time measured")
	}
}

func TestFlushCostExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	row := FlushCost(io.Discard, Params{TreeSize: 50_000, Threads: 1, Ops: 1, Seed: 3})
	if row.Values["fraction"] <= 0 || row.Values["fraction"] > 0.5 {
		t.Fatalf("flush fraction %.4f out of plausible range", row.Values["fraction"])
	}
}

func TestShardedRunCountsEveryOpOnSomeShard(t *testing.T) {
	cfg := quickCfg(INCLL, ycsb.A, ycsb.Uniform)
	cfg.Shards = 4
	cfg.EpochInterval = time.Millisecond // quick run must still cross boundaries
	r := Run(cfg)
	if r.Throughput <= 0 {
		t.Fatalf("sharded throughput %f", r.Throughput)
	}
	if len(r.PerShardOps) != 4 {
		t.Fatalf("PerShardOps has %d entries", len(r.PerShardOps))
	}
	var total int64
	for i, n := range r.PerShardOps {
		if n == 0 {
			t.Fatalf("shard %d served no operations; router not spreading", i)
		}
		total += n
	}
	if total != r.Ops {
		t.Fatalf("per-shard ops sum to %d, ran %d", total, r.Ops)
	}
	if r.Advances == 0 {
		t.Fatal("global ticker never advanced")
	}
}

func TestTxnRMWMode(t *testing.T) {
	cfg := quickCfg(INCLL, ycsb.A, ycsb.Uniform)
	cfg.TxnMode = TxnRMW
	cfg.OpsPerThread = 5_000
	r := Run(cfg)
	if r.Txns <= 0 {
		t.Fatal("no transactions committed")
	}
	if r.TxnThroughput <= 0 {
		t.Fatalf("txn throughput %f", r.TxnThroughput)
	}
	// YCSB-A is half puts, so roughly half the ops become RMW commits
	// (conflict retries only add commits beyond that).
	if r.Txns < r.Ops/3 {
		t.Fatalf("committed %d txns over %d ops; RMW mode not engaged", r.Txns, r.Ops)
	}
}

func TestTxnTransferModeConservesSum(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := quickCfg(INCLL, ycsb.A, ycsb.Zipfian)
		cfg.Shards = shards
		cfg.TxnMode = TxnTransfer
		cfg.TreeSize = 5_000
		cfg.OpsPerThread = 3_000
		r := Run(cfg)
		if r.Txns <= 0 {
			t.Fatalf("shards=%d: no transfers committed", shards)
		}
		if !r.SumConserved {
			t.Fatalf("shards=%d: bank total not conserved after %d transfers (%d conflicts)",
				shards, r.Txns, r.TxnConflicts)
		}
	}
}
