package harness

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"time"

	"incll"
	"incll/internal/core"
)

// Replication measurements: snapshot/restore throughput and replica lag
// under write load. These feed the tracked BENCH_*.json matrix so the
// replication path's performance trajectory is visible PR over PR.

// ReplResult reports one replication measurement.
type ReplResult struct {
	Shards int

	// Snapshot/restore throughput over an idle primary of TreeSize keys.
	SnapshotBytes    int64
	SnapshotMBPerSec float64
	RestoreMBPerSec  float64

	// Replica-lag run: a replica follows a primary under YCSB-A write
	// load with the checkpoint ticker running.
	LagSamples    int
	LagEpochsMax  uint64
	LagEpochsMean float64
	AppliedMB     float64 // change bytes the replica applied
	ApplyMBPerSec float64
	Converged     bool // replica equals primary after final catch-up
}

// replOptions sizes a DB for the replication benches. The external log
// segment is sized for the worst epoch a starved 1-CPU runner can
// produce — a stalled checkpoint ticker stretches one epoch until it
// touches (and once-per-epoch logs) every node in the shard, which
// overflows the sharded default. 2^19 words is ~8x that whole-shard
// footprint and still fits the per-shard arena beside the default heap
// (a capacity setting only — row identity is unchanged).
func replOptions(shards int) incll.Options {
	perShard := uint64(1 << 23)
	seg := uint64(1 << 20)
	if shards > 1 {
		perShard = 1 << 22
		seg = 1 << 19
	}
	return incll.Options{Shards: shards, Workers: 2, ArenaWords: perShard, LogSegWords: seg}
}

// RunSnapshotBench measures snapshot export and restore throughput over a
// quiesced primary preloaded with p.TreeSize keys of valueSize-byte
// values.
func RunSnapshotBench(p Params, shards, valueSize int) ReplResult {
	p.setDefaults()
	db, _ := incll.Open(replOptions(shards))
	defer db.Close()
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < p.TreeSize; k++ {
		if _, err := db.PutBytes(core.EncodeUint64(k), val); err != nil {
			panic(err)
		}
	}
	db.Checkpoint()

	// Both measurements finish in well under a second at CI scale, so a
	// single background GC cycle (or heap debt inherited from earlier
	// matrix rows) can halve a run. Best-of-3 with a clean heap before
	// each attempt measures the path, not the collector's timing.
	var buf bytes.Buffer
	var info incll.SnapshotInfo
	expSecs := math.Inf(1)
	resSecs := math.Inf(1)
	for try := 0; try < 3; try++ {
		buf.Reset()
		runtime.GC()
		t0 := time.Now()
		si, err := db.Snapshot(&buf)
		if err != nil {
			panic(fmt.Sprintf("harness: snapshot bench: %v", err))
		}
		expSecs = math.Min(expSecs, time.Since(t0).Seconds())
		info = si

		runtime.GC()
		t0 = time.Now()
		restored, _, err := incll.Restore(bytes.NewReader(buf.Bytes()), replOptions(shards))
		if err != nil {
			panic(fmt.Sprintf("harness: restore bench: %v", err))
		}
		resSecs = math.Min(resSecs, time.Since(t0).Seconds())
		restored.Close()
	}

	return ReplResult{
		Shards:           shards,
		SnapshotBytes:    info.Bytes,
		SnapshotMBPerSec: float64(info.Bytes) / expSecs / 1e6,
		RestoreMBPerSec:  float64(info.Bytes) / resSecs / 1e6,
	}
}

// RunReplicaLagBench bootstraps a replica of a primary under YCSB-A-style
// write load (uniform keys, half puts) and samples the replica's epoch
// lag while the load runs. The primary checkpoints on a short ticker so
// the stream releases continuously at CI scale.
func RunReplicaLagBench(p Params, shards int) ReplResult {
	p.setDefaults()
	opts := replOptions(shards)
	opts.EpochInterval = 4 * time.Millisecond
	primary, _ := incll.Open(opts)
	for k := uint64(0); k < p.TreeSize; k++ {
		primary.Put(core.EncodeUint64(k), k)
	}
	primary.StartCheckpointer()

	rep, err := incll.NewReplica(primary, replOptions(shards))
	if err != nil {
		panic(fmt.Sprintf("harness: replica bench: %v", err))
	}

	res := ReplResult{Shards: shards}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h := primary.Handle(1)
		rng := newXorshift(uint64(p.Seed)*2654435761 + 1)
		for i := 0; i < p.Ops; i++ {
			k := core.EncodeUint64(rng.next() % p.TreeSize)
			if i&1 == 0 {
				h.Put(k, uint64(i))
			} else {
				h.Get(k)
			}
		}
	}()

	t0 := time.Now()
	var lagSum uint64
sample:
	for {
		select {
		case <-done:
			break sample
		case <-time.After(2 * time.Millisecond):
		}
		lag := rep.Lag().Epochs
		res.LagSamples++
		lagSum += lag
		if lag > res.LagEpochsMax {
			res.LagEpochsMax = lag
		}
	}
	primary.StopCheckpointer()
	primary.Checkpoint()
	if err := rep.CatchUp(); err != nil {
		panic(fmt.Sprintf("harness: replica catch-up: %v", err))
	}
	elapsed := time.Since(t0).Seconds()
	if res.LagSamples > 0 {
		res.LagEpochsMean = float64(lagSum) / float64(res.LagSamples)
	}
	res.AppliedMB = float64(rep.AppliedBytes()) / 1e6
	res.ApplyMBPerSec = res.AppliedMB / elapsed

	// Convergence check: identical key count and a sampled value sweep.
	res.Converged = true
	pn, rn := primary.RebuildLen(), rep.DB().RebuildLen()
	if pn != rn {
		res.Converged = false
	} else {
		for k := uint64(0); k < p.TreeSize; k += 97 {
			pv, pok := primary.Get(core.EncodeUint64(k))
			rv, rok := rep.DB().Get(core.EncodeUint64(k))
			if pok != rok || pv != rv {
				res.Converged = false
				break
			}
		}
	}
	rep.Close()
	primary.Close()
	return res
}

// xorshift is a tiny deterministic RNG for the bench write loop (cheaper
// and allocation-free compared to math/rand, and the distribution doesn't
// matter for a lag measurement).
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}
