package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"incll/internal/core"
	"incll/internal/nvm"
	"incll/internal/ycsb"
)

// Params scales the experiment suite. The paper's full-size parameters
// (20M keys, 8 threads, 1M ops/thread, 56-thread sweeps) are reproducible
// by passing them explicitly; the defaults keep the whole suite laptop-
// sized. EXPERIMENTS.md records which were used.
type Params struct {
	TreeSize uint64 // default 200k (paper: 20M)
	Threads  int    // default 4 (paper: 8)
	Ops      int    // ops per thread, default 200k (paper: 1M)
	Seed     int64
}

func (p *Params) setDefaults() {
	if p.TreeSize == 0 {
		p.TreeSize = 200_000
	}
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.Ops <= 0 {
		p.Ops = 200_000
	}
}

func (p Params) base() RunConfig {
	return RunConfig{
		TreeSize:     p.TreeSize,
		Threads:      p.Threads,
		OpsPerThread: p.Ops,
		Seed:         p.Seed,
	}
}

// Row is one printed result row.
type Row struct {
	Labels []string
	Values map[string]float64
}

func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// Fig2 regenerates Figure 2: throughput of MT, MT+ and INCLL on
// YCSB A/B/C/E under uniform and zipfian key distributions.
func Fig2(w io.Writer, p Params) []Row {
	p.setDefaults()
	printHeader(w, "Figure 2: throughput (Mops/s) of MT, MT+, INCLL")
	fmt.Fprintf(w, "%-8s %-8s %10s %10s %10s %12s\n", "workload", "dist", "MT", "MT+", "INCLL", "INCLL/MT+")
	var rows []Row
	for _, wl := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.E} {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			tput := map[string]float64{}
			for _, m := range []Mode{MT, MTPlus, INCLL} {
				cfg := p.base()
				cfg.Mode, cfg.Workload, cfg.Dist = m, wl, d
				tput[m.String()] = Run(cfg).Throughput
			}
			rel := tput["INCLL"] / tput["MT+"]
			fmt.Fprintf(w, "%-8s %-8s %10.3f %10.3f %10.3f %11.1f%%\n",
				wl, d, tput["MT"]/1e6, tput["MT+"]/1e6, tput["INCLL"]/1e6, rel*100)
			rows = append(rows, Row{
				Labels: []string{wl.String(), d.String()},
				Values: map[string]float64{"MT": tput["MT"], "MT+": tput["MT+"], "INCLL": tput["INCLL"], "rel": rel},
			})
		}
	}
	return rows
}

// RunMedian runs cfg reps times and returns the run with median
// throughput, damping scheduler noise in the latency sweeps.
func RunMedian(cfg RunConfig, reps int) Result {
	if reps < 1 {
		reps = 1
	}
	results := make([]Result, reps)
	for i := range results {
		results[i] = Run(cfg)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Throughput < results[j].Throughput })
	return results[reps/2]
}

// FenceDelays is the paper's emulated NVM latency sweep (Figures 3 and 8).
var FenceDelays = []time.Duration{0, 100 * time.Nanosecond, 200 * time.Nanosecond,
	500 * time.Nanosecond, 1 * time.Microsecond}

// Fig3 regenerates Figure 3: INCLL throughput (relative to zero added
// latency) as the emulated post-sfence NVM latency grows, on YCSB-A.
func Fig3(w io.Writer, p Params) []Row {
	p.setDefaults()
	printHeader(w, "Figure 3: INCLL vs emulated flush latency (YCSB_A), relative throughput")
	fmt.Fprintf(w, "%-8s", "latency")
	for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
		fmt.Fprintf(w, " %12s", d)
	}
	fmt.Fprintln(w)
	base := map[ycsb.Distribution]float64{}
	var rows []Row
	for _, fd := range FenceDelays {
		vals := map[string]float64{}
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			cfg := p.base()
			cfg.Mode, cfg.Workload, cfg.Dist, cfg.FenceDelay = INCLL, ycsb.A, d, fd
			r := RunMedian(cfg, 3)
			if fd == 0 {
				base[d] = r.Throughput
			}
			vals[d.String()] = r.Throughput / base[d]
		}
		fmt.Fprintf(w, "%-8s %11.1f%% %11.1f%%\n", fd, vals["uniform"]*100, vals["zipfian"]*100)
		rows = append(rows, Row{Labels: []string{fd.String()}, Values: vals})
	}
	return rows
}

// Fig4 regenerates Figure 4: MT+ vs INCLL throughput across thread counts
// on YCSB-A.
func Fig4(w io.Writer, p Params, threads []int) []Row {
	p.setDefaults()
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8}
	}
	printHeader(w, "Figure 4: throughput (Mops/s) vs threads (YCSB_A)")
	fmt.Fprintf(w, "%-8s %-8s %10s %10s %12s\n", "threads", "dist", "MT+", "INCLL", "INCLL/MT+")
	var rows []Row
	for _, th := range threads {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			vals := map[string]float64{}
			for _, m := range []Mode{MTPlus, INCLL} {
				cfg := p.base()
				cfg.Mode, cfg.Workload, cfg.Dist, cfg.Threads = m, ycsb.A, d, th
				vals[m.String()] = Run(cfg).Throughput
			}
			rel := vals["INCLL"] / vals["MT+"]
			fmt.Fprintf(w, "%-8d %-8s %10.3f %10.3f %11.1f%%\n",
				th, d, vals["MT+"]/1e6, vals["INCLL"]/1e6, rel*100)
			rows = append(rows, Row{Labels: []string{fmt.Sprint(th), d.String()}, Values: vals})
		}
	}
	return rows
}

// Fig5And6 regenerates Figures 5 and 6: throughput and INCLL overhead
// across tree sizes on YCSB-A. The overhead-vs-size curve is Figure 6's
// parabola.
func Fig5And6(w io.Writer, p Params, sizes []uint64) []Row {
	p.setDefaults()
	if len(sizes) == 0 {
		sizes = []uint64{10_000, 100_000, 1_000_000, 2_000_000}
	}
	printHeader(w, "Figures 5+6: throughput (Mops/s) and INCLL overhead vs tree size (YCSB_A)")
	fmt.Fprintf(w, "%-10s %-8s %10s %10s %12s\n", "size", "dist", "MT+", "INCLL", "overhead")
	var rows []Row
	for _, sz := range sizes {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			vals := map[string]float64{}
			for _, m := range []Mode{MTPlus, INCLL} {
				cfg := p.base()
				cfg.Mode, cfg.Workload, cfg.Dist, cfg.TreeSize = m, ycsb.A, d, sz
				vals[m.String()] = Run(cfg).Throughput
			}
			overhead := 1 - vals["INCLL"]/vals["MT+"]
			fmt.Fprintf(w, "%-10d %-8s %10.3f %10.3f %11.1f%%\n",
				sz, d, vals["MT+"]/1e6, vals["INCLL"]/1e6, overhead*100)
			vals["overhead"] = overhead
			rows = append(rows, Row{Labels: []string{fmt.Sprint(sz), d.String()}, Values: vals})
		}
	}
	return rows
}

// Fig7 regenerates Figure 7: number of externally logged nodes with InCLL
// enabled (INCLL) and disabled (LOGGING), across tree sizes, YCSB-A.
func Fig7(w io.Writer, p Params, sizes []uint64) []Row {
	p.setDefaults()
	if len(sizes) == 0 {
		sizes = []uint64{10_000, 100_000, 1_000_000, 2_000_000}
	}
	printHeader(w, "Figure 7: logged nodes, LOGGING vs INCLL (YCSB_A)")
	fmt.Fprintf(w, "%-10s %-8s %12s %12s %8s\n", "size", "dist", "LOGGING", "INCLL", "ratio")
	var rows []Row
	for _, sz := range sizes {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			vals := map[string]float64{}
			for _, m := range []Mode{LOGGING, INCLL} {
				cfg := p.base()
				cfg.Mode, cfg.Workload, cfg.Dist, cfg.TreeSize = m, ycsb.A, d, sz
				vals[m.String()] = float64(Run(cfg).LoggedNodes)
			}
			ratio := 0.0
			if vals["INCLL"] > 0 {
				ratio = vals["LOGGING"] / vals["INCLL"]
			}
			fmt.Fprintf(w, "%-10d %-8s %12.0f %12.0f %7.1fx\n",
				sz, d, vals["LOGGING"], vals["INCLL"], ratio)
			rows = append(rows, Row{Labels: []string{fmt.Sprint(sz), d.String()}, Values: vals})
		}
	}
	return rows
}

// Fig8 regenerates Figure 8: throughput vs emulated flush latency for
// LOGGING and INCLL on YCSB-A (relative to each system's zero-latency
// throughput).
func Fig8(w io.Writer, p Params) []Row {
	p.setDefaults()
	printHeader(w, "Figure 8: relative throughput vs flush latency, LOGGING vs INCLL (YCSB_A)")
	fmt.Fprintf(w, "%-8s %-8s %12s %12s\n", "latency", "dist", "LOGGING", "INCLL")
	base := map[string]float64{}
	var rows []Row
	for _, fd := range FenceDelays {
		for _, d := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			vals := map[string]float64{}
			for _, m := range []Mode{LOGGING, INCLL} {
				cfg := p.base()
				cfg.Mode, cfg.Workload, cfg.Dist, cfg.FenceDelay = m, ycsb.A, d, fd
				r := RunMedian(cfg, 3)
				key := m.String() + d.String()
				if fd == 0 {
					base[key] = r.Throughput
				}
				vals[m.String()] = r.Throughput / base[key]
			}
			fmt.Fprintf(w, "%-8s %-8s %11.1f%% %11.1f%%\n", fd, d, vals["LOGGING"]*100, vals["INCLL"]*100)
			rows = append(rows, Row{Labels: []string{fd.String(), d.String()}, Values: vals})
		}
	}
	return rows
}

// FlushCost reproduces §6.2: the cost of the epoch-boundary global cache
// flush relative to the epoch interval.
func FlushCost(w io.Writer, p Params) Row {
	p.setDefaults()
	printHeader(w, "§6.2: global flush cost")
	cfg := p.base()
	cfg.Mode, cfg.Workload, cfg.Dist = INCLL, ycsb.A, ycsb.Uniform
	cfg.setDefaults()

	arenaWords, heapWords, segWords := SizeArena(cfg)
	a := nvm.New(nvm.Config{Words: arenaWords})
	s, _ := core.Open(a, core.Config{Workers: cfg.Threads, LogSegWords: segWords, HeapWords: heapWords})
	for k := uint64(0); k < cfg.TreeSize; k++ {
		s.Put(core.EncodeUint64(k), k)
	}
	s.Advance()

	g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, cfg.TreeSize, cfg.Seed)
	const rounds = 10
	var flushTotal time.Duration
	var lines int
	for r := 0; r < rounds; r++ {
		// One epoch's worth of work at the configured interval.
		deadline := time.Now().Add(cfg.EpochInterval)
		for time.Now().Before(deadline) {
			for i := 0; i < 512; i++ {
				op := g.Next()
				if op.Kind == ycsb.OpPut {
					s.Put(core.EncodeUint64(op.Key), op.Key)
				} else {
					s.Get(core.EncodeUint64(op.Key))
				}
			}
		}
		t0 := time.Now()
		lines += s.Advance()
		flushTotal += time.Since(t0)
	}
	avg := flushTotal / rounds
	frac := float64(avg) / float64(cfg.EpochInterval)
	fmt.Fprintf(w, "avg flush %v over %d epochs (%d lines/epoch), %.2f%% of a %v epoch\n",
		avg, rounds, lines/rounds, frac*100, cfg.EpochInterval)
	return Row{Labels: []string{"flush"}, Values: map[string]float64{
		"avgFlushMs": float64(avg) / float64(time.Millisecond),
		"fraction":   frac,
		"lines":      float64(lines / rounds),
	}}
}

// Recovery reproduces §6.3: crash immediately before an epoch boundary
// (the worst case for the external log) on a write-heavy workload over a
// 1M-key tree, then measure recovery.
func Recovery(w io.Writer, p Params) Row {
	p.setDefaults()
	printHeader(w, "§6.3: recovery time (crash just before the epoch boundary)")
	size := p.TreeSize
	if size < 1_000_000 {
		size = 1_000_000 // the paper's worst-case tree size for InCLL
	}
	cfg := p.base()
	cfg.TreeSize = size
	arenaWords, heapWords, segWords := SizeArena(cfg)
	a := nvm.New(nvm.Config{Words: arenaWords})
	coreCfg := core.Config{Workers: cfg.Threads, LogSegWords: segWords, HeapWords: heapWords}
	s, _ := core.Open(a, coreCfg)
	h := s.Handle(0)
	for k := uint64(0); k < size; k++ {
		h.Put(core.EncodeUint64(k), k)
	}
	s.Advance()

	// One full epoch of write-heavy work, no boundary: every logged node
	// stays in the log.
	g := ycsb.NewGenerator(ycsb.A, ycsb.Uniform, size, p.Seed)
	logged0 := s.Stats().LoggedNodes.Load()
	deadline := time.Now().Add(64 * time.Millisecond)
	ops := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 512; i++ {
			op := g.Next()
			if op.Kind == ycsb.OpPut {
				h.Put(core.EncodeUint64(op.Key), op.Key)
			} else {
				h.Get(core.EncodeUint64(op.Key))
			}
			ops++
		}
	}
	logged := s.Stats().LoggedNodes.Load() - logged0

	a.Crash(nvm.RandomPolicy(0.5, p.Seed))
	a.ResetReservations()
	t0 := time.Now()
	s2, _ := core.Open(a, coreCfg)
	recovery := time.Since(t0)
	applied := s2.RecoveredLogEntries()

	fmt.Fprintf(w, "epoch ops=%d loggedNodes=%d appliedEntries=%d recovery=%v\n",
		ops, logged, applied, recovery)
	return Row{Labels: []string{"recovery"}, Values: map[string]float64{
		"ops":        float64(ops),
		"logged":     float64(logged),
		"applied":    float64(applied),
		"recoveryMs": float64(recovery) / float64(time.Millisecond),
	}}
}

// AblationEpochLength sweeps the checkpoint interval: shorter epochs mean
// more frequent flushes and more first-touch logging; longer epochs mean
// more potential data loss. The paper picks 64 ms (§4) — this ablation
// shows the trade-off around that choice.
func AblationEpochLength(w io.Writer, p Params) []Row {
	p.setDefaults()
	printHeader(w, "Ablation: epoch length (INCLL, YCSB_A, uniform)")
	fmt.Fprintf(w, "%-10s %12s %14s %12s\n", "interval", "Mops/s", "loggedNodes", "flushes")
	var rows []Row
	for _, iv := range []time.Duration{8 * time.Millisecond, 16 * time.Millisecond,
		32 * time.Millisecond, 64 * time.Millisecond, 128 * time.Millisecond} {
		cfg := p.base()
		cfg.Mode, cfg.Workload, cfg.Dist, cfg.EpochInterval = INCLL, ycsb.A, ycsb.Uniform, iv
		r := Run(cfg)
		fmt.Fprintf(w, "%-10s %12.3f %14d %12d\n", iv, r.Throughput/1e6, r.LoggedNodes, r.Advances)
		rows = append(rows, Row{Labels: []string{iv.String()}, Values: map[string]float64{
			"tput": r.Throughput, "logged": float64(r.LoggedNodes), "advances": float64(r.Advances),
		}})
	}
	return rows
}

// AblationEviction sweeps the simulated cache's dirty-line capacity:
// background eviction spreads write-back traffic through the epoch (as a
// real cache's replacement traffic does), shrinking the boundary flush.
func AblationEviction(w io.Writer, p Params) []Row {
	p.setDefaults()
	printHeader(w, "Ablation: background eviction capacity (INCLL, YCSB_A, uniform)")
	fmt.Fprintf(w, "%-10s %12s %12s %14s\n", "capacity", "Mops/s", "evictions", "flushedLines")
	var rows []Row
	for _, cap := range []int{0, 4096, 16384, 65536} {
		cfg := p.base()
		cfg.Mode, cfg.Workload, cfg.Dist, cfg.DirtyCapacity = INCLL, ycsb.A, ycsb.Uniform, cap
		r := Run(cfg)
		fmt.Fprintf(w, "%-10d %12.3f %12d %14d\n", cap, r.Throughput/1e6, r.Evictions, r.FlushedLines)
		rows = append(rows, Row{Labels: []string{fmt.Sprint(cap)}, Values: map[string]float64{
			"tput": r.Throughput, "evictions": float64(r.Evictions),
		}})
	}
	return rows
}
