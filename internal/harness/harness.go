// Package harness builds and drives the four systems the paper evaluates —
// MT (transient Masstree, heap allocation), MT+ (transient Masstree, pool
// allocation + global epoch barrier), INCLL (the durable Masstree of this
// repository), and LOGGING (INCLL with in-cache-line logging disabled) —
// under the YCSB workloads of §6, and regenerates every figure of the
// evaluation section.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/core"
	"incll/internal/masstree"
	"incll/internal/nvm"
	"incll/internal/obs"
	"incll/internal/shard"
	"incll/internal/txn"
	"incll/internal/ycsb"
)

// Mode selects the system under test.
type Mode int

const (
	// MT is unmodified transient Masstree with heap allocation.
	MT Mode = iota
	// MTPlus is transient Masstree with the pool allocator and the
	// per-epoch global barrier (the paper's strengthened baseline).
	MTPlus
	// INCLL is the durable Masstree with In-Cache-Line Logging.
	INCLL
	// LOGGING is INCLL with InCLL disabled: every first touch per node
	// per epoch uses the external log (the paper's ablation).
	LOGGING
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case MT:
		return "MT"
	case MTPlus:
		return "MT+"
	case INCLL:
		return "INCLL"
	case LOGGING:
		return "LOGGING"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TxnMode selects the transactional workload layered over the YCSB mix
// (durable modes only).
type TxnMode int

const (
	// TxnNone runs the plain single-key operation stream.
	TxnNone TxnMode = iota
	// TxnRMW turns every generated put into a read-modify-write
	// transaction (read the key, write a derived value, commit); reads and
	// scans stay plain.
	TxnRMW
	// TxnTransfer turns every generated op into a k-key bank transfer:
	// debit the generated key, credit k-1 other accounts, commit. The
	// total balance is a conserved invariant the run verifies at the end.
	TxnTransfer
)

// String names the transactional mode.
func (m TxnMode) String() string {
	switch m {
	case TxnRMW:
		return "rmw"
	case TxnTransfer:
		return "transfer"
	default:
		return "none"
	}
}

// InitBalance is the preloaded per-account balance in transfer mode.
const InitBalance = 1000

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	Mode     Mode
	Workload ycsb.Workload
	Dist     ycsb.Distribution

	// TxnMode layers a transactional workload over the mix (INCLL and
	// LOGGING only).
	TxnMode TxnMode
	// TxnKeys is the number of accounts one transfer touches (default 4).
	TxnKeys int

	// TreeSize is the number of keys preloaded (the paper uses 20M; the
	// default suite scales this down — see EXPERIMENTS.md).
	TreeSize uint64
	// Threads is the number of worker threads (the paper's default is 8).
	Threads int
	// OpsPerThread is the number of operations each worker executes.
	OpsPerThread int

	// Shards partitions the keyspace across this many independent durable
	// stores with coordinated global checkpoints (durable modes only;
	// default 1, the single store the paper evaluates).
	Shards int

	// ValueSize, when > 0, switches the durable workloads to
	// variable-length byte values of up to this many bytes (via
	// PutBytes/GetBytes/ScanBytes) and reports value throughput in MB/s.
	// 0 keeps the paper's uint64 values (durable non-transactional modes
	// only).
	ValueSize int
	// ValueDist selects the payload-size distribution: every value exactly
	// ValueSize bytes (constant, the default), or zipfian-skewed sizes in
	// 1..ValueSize like real object-cache populations.
	ValueDist ycsb.SizeDist

	// ScanLen is YCSB-E's scan length (default ycsb.ScanLength): the
	// constant length, or the maximum when ScanDist is zipfian.
	ScanLen int
	// ScanDist selects the scan-length distribution: every scan exactly
	// ScanLen keys (constant, the default), or zipfian-skewed lengths in
	// 1..ScanLen — the YCSB spec's short-scan-heavy shape.
	ScanDist ycsb.SizeDist
	// ScanReverse runs YCSB-E scans descending (SeekLT/Prev) instead of
	// ascending (durable modes; requires the cursor API).
	ScanReverse bool
	// LegacyScan serves YCSB-E through the callback Scan API instead of
	// the cursor — the pre-iterator baseline the bench matrix compares
	// against (durable modes).
	LegacyScan bool

	// EpochInterval is the checkpoint interval (default 64 ms).
	EpochInterval time.Duration
	// FenceDelay emulates NVM write latency after sfence (Figures 3, 8).
	FenceDelay time.Duration

	// DirtyCapacity, when > 0, bounds the simulated cache's dirty set and
	// enables background eviction (ablation; 0 = unbounded).
	DirtyCapacity int

	// PhaseSampleEvery sets the latency-attribution sampling period
	// (durable modes; see obs.PhaseSet and DESIGN.md §12): one op in N is
	// timed phase by phase. 0 means the default (1 in 8); negative
	// disables attribution — the pre-attribution hot path, the A/B
	// baseline.
	PhaseSampleEvery int

	// TimelineInterval is the per-second throughput/latency timeline
	// cadence (default 1s; the timeline is always collected — one sampler
	// goroutine reading per-worker counters, nothing on the op path).
	TimelineInterval time.Duration

	Seed int64
}

func (c *RunConfig) setDefaults() {
	if c.TreeSize == 0 {
		c.TreeSize = 200_000
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 200_000
	}
	if c.TxnKeys <= 1 {
		c.TxnKeys = 4
	}
	if c.ScanLen <= 0 {
		c.ScanLen = ycsb.ScanLength
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 64 * time.Millisecond
	}
	if c.TimelineInterval <= 0 {
		c.TimelineInterval = time.Second
	}
}

// runPhases builds the attribution timer per PhaseSampleEvery (nil when
// disabled).
func runPhases(cfg RunConfig) *obs.PhaseSet {
	if cfg.PhaseSampleEvery < 0 {
		return nil
	}
	every := cfg.PhaseSampleEvery
	if every == 0 {
		every = obs.DefaultPhaseSample
	}
	return obs.NewPhaseSet(cfg.Threads, every)
}

// Result reports one run's measurements.
type Result struct {
	Config     RunConfig
	Elapsed    time.Duration
	Ops        int64
	Throughput float64 // operations per second

	// Per-operation latency percentiles (sampled, 1 op in 8; see
	// latency.go). Scans count as one operation.
	P50, P95, P99 time.Duration

	// Durable-mode extras (zero for MT / MT+).
	LoggedNodes  int64
	InCLLPerm    int64
	InCLLVal     int64
	Fences       int64
	FlushedLines int64
	Evictions    int64
	Advances     int64
	FlushTime    time.Duration // cumulative wall time inside global flushes

	// CheckpointSTW summarizes the measured phase's checkpoint
	// stop-the-world windows — Prepare's world lock to Commit's unlock —
	// in nanoseconds (durable modes; the preload commit is excluded). On
	// a sharded run each shard's window is one sample.
	CheckpointSTW obs.HistSnapshot

	// PerShardOps counts the operations each shard served during the
	// measured phase (sharded runs only; nil otherwise).
	PerShardOps []int64

	// Phases maps phase name to its sampled latency histogram over the
	// measured phase, in nanoseconds (durable modes with attribution on;
	// nil otherwise). See DESIGN.md §12.
	Phases map[string]obs.HistSnapshot
	// PhaseSampleEvery is the attribution sampling period the run used (0
	// when attribution was off).
	PhaseSampleEvery int

	// Timeline is the per-interval throughput/latency series over the
	// measured phase (one point per TimelineInterval, plus a final partial
	// point).
	Timeline []TimelinePoint

	// Byte-value extras (zero unless RunConfig.ValueSize > 0).
	ValueBytes int64   // payload bytes written by puts + read by gets/scans
	MBPerSec   float64 // ValueBytes per second, in MB

	// Transactional-mode extras (zero when TxnMode is TxnNone).
	Txns          int64   // transactions committed
	TxnConflicts  int64   // commits retried after read validation failed
	TxnThroughput float64 // committed transactions per second
	// SumConserved reports whether the bank's total balance survived the
	// run exactly (transfer mode only; true is the invariant holding).
	SumConserved bool
}

// Run executes one measurement: build, preload, run, collect.
func Run(cfg RunConfig) Result {
	cfg.setDefaults()
	if cfg.ScanReverse && cfg.LegacyScan {
		panic("harness: reverse scans require the cursor API (LegacyScan serves ascending callbacks only)")
	}
	switch cfg.Mode {
	case MT, MTPlus:
		if cfg.ValueSize > 0 {
			panic("harness: ValueSize requires a durable mode (the transient baselines hold uint64 values)")
		}
		if cfg.ScanReverse {
			panic("harness: reverse scans require a durable mode (the transient baselines have no cursor)")
		}
		return runTransient(cfg)
	default:
		if cfg.ValueSize > 0 && cfg.TxnMode != TxnNone {
			panic("harness: ValueSize and TxnMode are mutually exclusive (transfers are uint64 accounts)")
		}
		if cfg.Shards > 1 {
			return runSharded(cfg)
		}
		return runDurable(cfg)
	}
}

// opValue derives a distinct value for each write.
func opValue(thread, i int) uint64 { return uint64(thread)<<32 | uint64(i) }

// ---- transient modes ----

func runTransient(cfg RunConfig) Result {
	var tr *masstree.Tree
	var barrier *masstree.Barrier
	if cfg.Mode == MTPlus {
		barrier = masstree.NewBarrier()
		pool := masstree.NewPool(cfg.Threads, barrier)
		tr = masstree.NewWithPool(pool, barrier)
	} else {
		tr = masstree.New()
	}

	parallelLoad(cfg, func(w int, k uint64) {
		tr.Handle(w).Put(masstree.EncodeUint64(k), k)
	})

	stopTick := make(chan struct{})
	var tickDone sync.WaitGroup
	if barrier != nil {
		tickDone.Add(1)
		go func() {
			defer tickDone.Done()
			t := time.NewTicker(cfg.EpochInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					barrier.Advance()
				case <-stopTick:
					return
				}
			}
		}()
	}

	elapsed, lats, timeline := runWorkers(cfg, func(w int, op ycsb.Op, i int) {
		h := tr.Handle(w)
		switch op.Kind {
		case ycsb.OpPut:
			h.Put(masstree.EncodeUint64(op.Key), opValue(w, i))
		case ycsb.OpGet:
			h.Get(masstree.EncodeUint64(op.Key))
		case ycsb.OpScan:
			h.Scan(masstree.EncodeUint64(op.Key), op.ScanLen, func([]byte, uint64) bool { return true })
		}
	})

	close(stopTick)
	tickDone.Wait()

	ops := int64(cfg.Threads) * int64(cfg.OpsPerThread)
	r := Result{
		Config:     cfg,
		Elapsed:    elapsed,
		Ops:        ops,
		Throughput: float64(ops) / elapsed.Seconds(),
		Timeline:   timeline,
	}
	fillLatencies(&r, lats)
	return r
}

// fillPhases folds the attribution histograms into the result.
func fillPhases(r *Result, phases *obs.PhaseSet) {
	if phases == nil {
		return
	}
	r.Phases = phases.Snapshot()
	r.PhaseSampleEvery = phases.SampleEvery()
}

// fillLatencies folds the merged histogram's percentiles into the result.
func fillLatencies(r *Result, h *latHist) {
	r.P50 = h.percentile(50)
	r.P95 = h.percentile(95)
	r.P99 = h.percentile(99)
}

// ---- durable modes ----

// SizeArena returns a generous arena size (words) for a durable run.
func SizeArena(cfg RunConfig) (arenaWords, heapWords, segWords uint64) {
	if cfg.Workload == ycsb.E {
		// YCSB-E's 5% inserts land above the preloaded keyspace and grow
		// the tree for the whole run; size for the final population.
		cfg.TreeSize += uint64(cfg.Threads) * uint64(cfg.OpsPerThread) / 20
	}
	heapWords = cfg.TreeSize*12 + 1<<22
	if cfg.ValueSize > 0 {
		// Out-of-place value blocks: class rounding costs at most 1.5×
		// past a cache line, plus the allocator header. Beyond the live
		// tree, in-flight churn holds up to ~an epoch of superseded blocks
		// on the limbo lists before they recycle.
		perVal := (1+uint64(cfg.ValueSize+7)/8)*3/2 + 8
		churn := uint64(cfg.Threads) * uint64(cfg.OpsPerThread)
		if churn > 1<<16 {
			churn = 1 << 16
		}
		heapWords += (cfg.TreeSize + churn) * perVal
	}
	segWords = uint64(1<<25) / uint64(cfg.Threads)
	if segWords < 1<<20 {
		segWords = 1 << 20
	}
	if segWords > 1<<23 {
		segWords = 1 << 23
	}
	arenaWords = heapWords + segWords*uint64(cfg.Threads) + 1<<21
	return
}

// txnSegWords is the per-worker intent segment a transactional run uses:
// large enough to absorb one epoch of commit traffic without forcing early
// boundaries.
const txnSegWords = 1 << 17

// preloadValue is what the loader stores under key k.
func preloadValue(cfg RunConfig, k uint64) uint64 {
	if cfg.TxnMode == TxnTransfer {
		return InitBalance
	}
	return k
}

func runDurable(cfg RunConfig) Result {
	arenaWords, heapWords, segWords := SizeArena(cfg)
	coreCfg := core.Config{
		Workers:      cfg.Threads,
		LogSegWords:  segWords,
		HeapWords:    heapWords,
		DisableInCLL: cfg.Mode == LOGGING,
	}
	if cfg.TxnMode != TxnNone {
		coreCfg.TxnSegWords = txnSegWords
		arenaWords += txnSegWords*uint64(cfg.Threads) + 1<<18
	}
	a := nvm.New(nvm.Config{
		Words:         arenaWords,
		FenceDelay:    cfg.FenceDelay,
		DirtyCapacity: cfg.DirtyCapacity,
		Seed:          cfg.Seed,
	})
	s, _ := core.Open(a, coreCfg)

	preload(cfg, func(w int) kvHandle { return s.Handle(w) })
	s.Advance() // commit the load and reset counters against a clean epoch

	// Instrument after the preload commit: its whole-arena flush would
	// otherwise dominate the stop-the-world histogram's tail, and the
	// attribution histograms should describe the measured phase only.
	stw := new(obs.Histogram)
	s.Epochs().Instrument(nil, stw, 0)
	phases := runPhases(cfg)
	s.InstrumentPhases(phases)

	var m *txn.Manager
	if cfg.TxnMode != TxnNone {
		m, _ = txn.ForStore(s)
		m.Instrument(phases)
	}

	st0 := s.Stats()
	logged0 := st0.LoggedNodes.Load()
	perm0 := st0.InCLLPerm.Load()
	val0 := st0.InCLLVal.Load()
	as0 := a.Stats().Snapshot()
	adv0 := s.Epochs().Advances()

	handle := func(w int) kvHandle { return s.Handle(w) }
	bytesMoved := make([]int64, cfg.Threads)
	do := durableOps(cfg, handle, bytesMoved)
	if m != nil {
		do = durableTxnOps(cfg, m, handle)
		m.StartTicker(cfg.EpochInterval)
	} else {
		s.StartTicker(cfg.EpochInterval)
	}
	elapsed, lats, timeline := runWorkers(cfg, do)
	if m != nil {
		m.StopTicker()
	} else {
		s.StopTicker()
	}

	as := a.Stats().Snapshot().Sub(as0)
	ops := int64(cfg.Threads) * int64(cfg.OpsPerThread)
	_ = as0
	r := Result{
		Config:       cfg,
		Elapsed:      elapsed,
		Ops:          ops,
		Throughput:   float64(ops) / elapsed.Seconds(),
		LoggedNodes:  st0.LoggedNodes.Load() - logged0,
		InCLLPerm:    st0.InCLLPerm.Load() - perm0,
		InCLLVal:     st0.InCLLVal.Load() - val0,
		Fences:       as.Fences,
		FlushedLines: as.LinesPersisted,
		Evictions:    as.Evictions,
		Advances:     s.Epochs().Advances() - adv0,
		Timeline:     timeline,
	}
	r.CheckpointSTW = stw.Snapshot()
	fillPhases(&r, phases)
	fillLatencies(&r, lats)
	fillByteResult(&r, cfg, bytesMoved, elapsed)
	fillTxnResult(&r, cfg, m, elapsed, handle(0))
	return r
}

// runSharded measures a sharded cluster: N stores over N arenas behind the
// key router, checkpointed by the coordinated global ticker.
func runSharded(cfg RunConfig) Result {
	// Size each shard's arena for its slice of the keyspace (routing is
	// hash-spread, so slices are near-even; the slack term absorbs skew).
	per := cfg
	per.TreeSize = cfg.TreeSize/uint64(cfg.Shards) + cfg.TreeSize/uint64(4*cfg.Shards)
	arenaWords, heapWords, segWords := SizeArena(per)
	shardCfg := shard.Config{
		Shards:       cfg.Shards,
		Workers:      cfg.Threads,
		ArenaWords:   arenaWords,
		HeapWords:    heapWords,
		LogSegWords:  segWords,
		DisableInCLL: cfg.Mode == LOGGING,
		NVM: nvm.Config{
			FenceDelay:    cfg.FenceDelay,
			DirtyCapacity: cfg.DirtyCapacity,
			Seed:          cfg.Seed,
		},
	}
	if cfg.TxnMode != TxnNone {
		shardCfg.TxnSegWords = txnSegWords
		shardCfg.ArenaWords += txnSegWords*uint64(cfg.Threads) + 1<<18
	}
	s, _ := shard.Open(shardCfg)

	preload(cfg, func(w int) kvHandle { return s.Handle(w) })
	s.Advance() // commit the load against a clean global epoch

	// Instrument after the preload commit (see runDurable); every shard's
	// window lands in the one histogram, one sample per shard per advance,
	// and all shards share one attribution timer.
	stw := new(obs.Histogram)
	phases := runPhases(cfg)
	for i := 0; i < cfg.Shards; i++ {
		s.ShardStore(i).Epochs().Instrument(nil, stw, i)
		s.ShardStore(i).InstrumentPhases(phases)
	}

	var m *txn.Manager
	if cfg.TxnMode != TxnNone {
		m, _ = txn.ForCluster(s)
		m.Instrument(phases)
	}

	st0 := s.Stats()
	shardOps0 := make([]int64, cfg.Shards)
	for i := range shardOps0 {
		shardOps0[i] = shardOpCount(s.ShardStore(i).Stats())
	}
	nv0 := s.NVMStats()
	adv0 := s.GlobalEpoch()

	handle := func(w int) kvHandle { return s.Handle(w) }
	bytesMoved := make([]int64, cfg.Threads)
	do := durableOps(cfg, handle, bytesMoved)
	if m != nil {
		do = durableTxnOps(cfg, m, handle)
		m.StartTicker(cfg.EpochInterval)
	} else {
		s.StartTicker(cfg.EpochInterval)
	}
	elapsed, lats, timeline := runWorkers(cfg, do)
	if m != nil {
		m.StopTicker()
	} else {
		s.StopTicker()
	}

	st := s.Stats()
	nv := s.NVMStats().Sub(nv0)
	perShard := make([]int64, cfg.Shards)
	for i := range perShard {
		perShard[i] = shardOpCount(s.ShardStore(i).Stats()) - shardOps0[i]
	}
	ops := int64(cfg.Threads) * int64(cfg.OpsPerThread)
	r := Result{
		Config:       cfg,
		Elapsed:      elapsed,
		Ops:          ops,
		Throughput:   float64(ops) / elapsed.Seconds(),
		LoggedNodes:  st.LoggedNodes.Load() - st0.LoggedNodes.Load(),
		InCLLPerm:    st.InCLLPerm.Load() - st0.InCLLPerm.Load(),
		InCLLVal:     st.InCLLVal.Load() - st0.InCLLVal.Load(),
		Fences:       nv.Fences,
		FlushedLines: nv.LinesPersisted,
		Evictions:    nv.Evictions,
		Advances:     int64(s.GlobalEpoch() - adv0),
		PerShardOps:  perShard,
		Timeline:     timeline,
	}
	r.CheckpointSTW = stw.Snapshot()
	fillPhases(&r, phases)
	fillLatencies(&r, lats)
	fillByteResult(&r, cfg, bytesMoved, elapsed)
	fillTxnResult(&r, cfg, m, elapsed, handle(0))
	return r
}

// preload fills the store with TreeSize keys: uint64 values by default,
// deterministic byte payloads when ValueSize is set.
func preload(cfg RunConfig, handle func(w int) kvHandle) {
	if cfg.ValueSize <= 0 {
		parallelLoad(cfg, func(w int, k uint64) {
			handle(w).Put(core.EncodeUint64(k), preloadValue(cfg, k))
		})
		return
	}
	scratch := make([][]byte, cfg.Threads)
	for w := range scratch {
		scratch[w] = make([]byte, cfg.ValueSize)
	}
	parallelLoad(cfg, func(w int, k uint64) {
		handle(w).PutBytes(core.EncodeUint64(k), preloadBytes(cfg, k, scratch[w]))
	})
}

// fillByteResult folds the per-worker payload byte counts into the result.
func fillByteResult(r *Result, cfg RunConfig, bytesMoved []int64, elapsed time.Duration) {
	if cfg.ValueSize <= 0 {
		return
	}
	for _, b := range bytesMoved {
		r.ValueBytes += b
	}
	r.MBPerSec = float64(r.ValueBytes) / elapsed.Seconds() / 1e6
}

// fillTxnResult reads the manager's counters into the result and, in
// transfer mode, verifies the conserved-sum invariant with one full scan.
func fillTxnResult(r *Result, cfg RunConfig, m *txn.Manager, elapsed time.Duration, h kvHandle) {
	if m == nil {
		return
	}
	st := m.Stats()
	r.Txns = st.Committed.Load()
	r.TxnConflicts = st.Conflicts.Load()
	r.TxnThroughput = float64(r.Txns) / elapsed.Seconds()
	if cfg.TxnMode == TxnTransfer {
		var sum uint64
		h.Scan(nil, -1, func(_ []byte, v uint64) bool {
			sum += v
			return true
		})
		r.SumConserved = sum == cfg.TreeSize*InitBalance
	}
}

// durableTxnOps builds the transactional measured-phase dispatcher. RMW
// turns each generated put into a read-modify-write commit; transfer turns
// every generated op into a TxnKeys-account transfer debiting the
// generated key. Conflicted commits retry until they land.
func durableTxnOps(cfg RunConfig, m *txn.Manager, handle func(w int) kvHandle) func(w int, op ycsb.Op, i int) {
	plain := durableOps(cfg, handle, nil)
	rngs := make([]*rand.Rand, cfg.Threads)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(cfg.Seed ^ int64(w+1)*104729))
	}
	credits := uint64(cfg.TxnKeys - 1)
	return func(w int, op ycsb.Op, i int) {
		switch cfg.TxnMode {
		case TxnRMW:
			if op.Kind != ycsb.OpPut {
				plain(w, op, i)
				return
			}
			kb := core.EncodeUint64(op.Key)
			for {
				t := m.Begin(w)
				v, _ := t.Get(kb)
				t.Put(kb, v+1)
				err := t.Commit()
				if err == nil {
					return
				}
				if !errors.Is(err, txn.ErrConflict) {
					panic(fmt.Sprintf("harness: rmw commit: %v", err))
				}
			}
		case TxnTransfer:
			rng := rngs[w]
			from := op.Key % cfg.TreeSize
			debit := core.EncodeUint64(from)
			for {
				t := m.Begin(w)
				fv, ok := t.Get(debit)
				if !ok || fv < credits {
					t.Abort() // broke account: skip, conserving the sum
					return
				}
				t.Put(debit, fv-credits)
				for credited := uint64(0); credited < credits; {
					ck := uint64(rng.Int63n(int64(cfg.TreeSize)))
					if ck == from {
						continue
					}
					ckb := core.EncodeUint64(ck)
					if cv, ok := t.Get(ckb); ok {
						t.Put(ckb, cv+1)
						credited++
					}
				}
				err := t.Commit()
				if err == nil {
					return
				}
				if !errors.Is(err, txn.ErrConflict) {
					panic(fmt.Sprintf("harness: transfer commit: %v", err))
				}
			}
		}
	}
}

// shardOpCount sums one store's operation counters.
func shardOpCount(st *core.Stats) int64 {
	return st.Puts.Load() + st.Gets.Load() + st.Deletes.Load() + st.Scans.Load()
}

// kvHandle is the worker-op surface shared by core.Handle and
// shard.Handle.
type kvHandle interface {
	Put(k []byte, v uint64) bool
	PutBytes(k []byte, v []byte) bool
	Get(k []byte) (uint64, bool)
	AppendGet(dst []byte, k []byte) ([]byte, bool)
	NewIter(o core.IterOptions) core.Cursor
	Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int
	ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int
}

// workerIters lazily opens one long-lived cursor per worker — the cursor
// pattern a real client uses: re-seek the same iterator per request
// instead of allocating one per scan.
type workerIters struct {
	cfg     RunConfig
	handles func(w int) kvHandle
	its     []core.Cursor
}

func newWorkerIters(cfg RunConfig, handle func(w int) kvHandle) *workerIters {
	return &workerIters{cfg: cfg, handles: handle, its: make([]core.Cursor, cfg.Threads)}
}

func (wi *workerIters) iter(w int) core.Cursor {
	if wi.its[w] == nil {
		wi.its[w] = wi.handles(w).NewIter(core.IterOptions{})
	}
	return wi.its[w]
}

// scan runs one YCSB-E scan op through worker w's cursor, touching every
// value; with sumBytes it returns the visited payload bytes (the byte
// workload's metric). Honours ScanReverse. The unsharded cursor is
// type-specialized — what any perf-sensitive client does for its hot
// loop: the concrete calls inline, where the interface-dispatched merge
// path cannot. Both loop bodies break before the post-advance so a
// satisfied scan never pays a refill it will discard.
func (wi *workerIters) scan(w int, op ycsb.Op, sumBytes bool) (bytes int64) {
	if it, ok := wi.iter(w).(*core.Iter); ok {
		ok := false
		if wi.cfg.ScanReverse {
			ok = it.SeekLT(core.EncodeUint64(op.Key))
		} else {
			ok = it.SeekGE(core.EncodeUint64(op.Key))
		}
		for n := 0; ok; {
			if sumBytes {
				bytes += int64(len(it.Value()))
			} else {
				_ = it.ValueUint64()
			}
			if n++; n >= op.ScanLen {
				return bytes
			}
			if wi.cfg.ScanReverse {
				ok = it.Prev()
			} else {
				ok = it.Next()
			}
		}
		return bytes
	}
	it := wi.iter(w)
	ok := false
	if wi.cfg.ScanReverse {
		ok = it.SeekLT(core.EncodeUint64(op.Key))
	} else {
		ok = it.SeekGE(core.EncodeUint64(op.Key))
	}
	for n := 0; ok; {
		if sumBytes {
			bytes += int64(len(it.Value()))
		} else {
			_ = it.ValueUint64()
		}
		if n++; n >= op.ScanLen {
			return bytes
		}
		if wi.cfg.ScanReverse {
			ok = it.Prev()
		} else {
			ok = it.Next()
		}
	}
	return bytes
}

// durableOps builds the measured-phase op dispatcher over per-worker
// handles (shared by the single-store and sharded durable runs). Scans go
// through the cursor API (one re-seeked iterator per worker) unless
// LegacyScan selects the callback path. With ValueSize > 0 it dispatches
// the byte-valued mix and accumulates the payload bytes each worker moves
// into bytesMoved[w].
func durableOps(cfg RunConfig, handle func(w int) kvHandle, bytesMoved []int64) func(w int, op ycsb.Op, i int) {
	iters := newWorkerIters(cfg, handle)
	if cfg.ValueSize <= 0 {
		return func(w int, op ycsb.Op, i int) {
			h := handle(w)
			switch op.Kind {
			case ycsb.OpPut:
				h.Put(core.EncodeUint64(op.Key), opValue(w, i))
			case ycsb.OpGet:
				h.Get(core.EncodeUint64(op.Key))
			case ycsb.OpScan:
				if cfg.LegacyScan {
					h.Scan(core.EncodeUint64(op.Key), op.ScanLen, func([]byte, uint64) bool { return true })
					return
				}
				iters.scan(w, op, false)
			}
		}
	}
	sizers := make([]*ycsb.SizeGen, cfg.Threads)
	rngs := make([]*rand.Rand, cfg.Threads)
	scratch := make([][]byte, cfg.Threads)
	for w := range sizers {
		sizers[w] = ycsb.NewSizeGen(cfg.ValueDist, cfg.ValueSize)
		rngs[w] = rand.New(rand.NewSource(cfg.Seed ^ int64(w+1)*15485863))
		scratch[w] = make([]byte, 0, cfg.ValueSize)
	}
	return func(w int, op ycsb.Op, i int) {
		h := handle(w)
		switch op.Kind {
		case ycsb.OpPut:
			n := sizers[w].Next(rngs[w])
			v := fillPayload(scratch[w][:n], op.Key, uint64(w)<<32|uint64(i))
			h.PutBytes(core.EncodeUint64(op.Key), v)
			bytesMoved[w] += int64(n)
		case ycsb.OpGet:
			if v, ok := h.AppendGet(scratch[w][:0], core.EncodeUint64(op.Key)); ok {
				bytesMoved[w] += int64(len(v))
			}
		case ycsb.OpScan:
			if cfg.LegacyScan {
				h.ScanBytes(core.EncodeUint64(op.Key), op.ScanLen, func(_, v []byte) bool {
					bytesMoved[w] += int64(len(v))
					return true
				})
				return
			}
			bytesMoved[w] += iters.scan(w, op, true)
		}
	}
}

// fillPayload fills dst with a cheap deterministic pattern derived from the
// key and a per-write salt, so every overwrite stores distinct bytes.
func fillPayload(dst []byte, key, salt uint64) []byte {
	x := ycsb.Scramble(key ^ salt ^ 0x9E3779B97F4A7C15)
	for i := range dst {
		if i%8 == 0 {
			x = ycsb.Scramble(x)
		}
		dst[i] = byte(x >> (8 * uint(i%8)))
	}
	return dst
}

// preloadBytes is the byte payload the loader stores under key k.
func preloadBytes(cfg RunConfig, k uint64, scratch []byte) []byte {
	n := cfg.ValueSize
	if cfg.ValueDist == ycsb.SizeZipfian {
		// Deterministic per-key size with the same 1..max support.
		n = 1 + int(ycsb.Scramble(k)%uint64(cfg.ValueSize))
	}
	return fillPayload(scratch[:n], k, 0)
}

// parallelLoad inserts keys 0..TreeSize-1 using all workers.
func parallelLoad(cfg RunConfig, put func(worker int, key uint64)) {
	var wg sync.WaitGroup
	per := cfg.TreeSize / uint64(cfg.Threads)
	for w := 0; w < cfg.Threads; w++ {
		lo := uint64(w) * per
		hi := lo + per
		if w == cfg.Threads-1 {
			hi = cfg.TreeSize
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				put(w, k)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// TimelinePoint is one interval of the measured phase's progress series:
// where the run's throughput and latency were, second by second, so a
// BENCH row shows the shape of a run (warm-up, checkpoint dips, eviction
// stalls), not just its mean.
type TimelinePoint struct {
	// MS is the point's offset from the measured phase's start.
	MS int64 `json:"ms"`
	// Ops is the cumulative operation count at the point.
	Ops int64 `json:"ops"`
	// OpsPerSec is the throughput over this interval alone.
	OpsPerSec float64 `json:"ops_per_sec"`
	// P50Micros / P99Micros summarize the sampled op latency over this
	// interval alone (0 when no sample landed in it).
	P50Micros float64 `json:"p50_us,omitempty"`
	P99Micros float64 `json:"p99_us,omitempty"`
}

// progressSlot is one worker's op counter, padded so the per-op store
// never false-shares with a neighbour.
type progressSlot struct {
	n atomic.Int64
	_ [56]byte
}

// sampleTimeline folds one interval into the series and returns the new
// cumulative baseline.
func sampleTimeline(tl []TimelinePoint, start, now time.Time, prevOps int64, prevBins []int64,
	progress []progressSlot, hists []latHist) ([]TimelinePoint, int64, []int64) {
	var total int64
	for i := range progress {
		total += progress[i].n.Load()
	}
	var prevMS int64
	if n := len(tl); n > 0 {
		prevMS = tl[n-1].MS
	}
	ms := now.Sub(start).Milliseconds()
	dt := float64(ms-prevMS) / 1000
	if dt <= 0 {
		dt = 1e-9
	}
	bins := mergedBins(hists)
	delta := obs.BinsSub(bins, prevBins)
	p := TimelinePoint{
		MS:        ms,
		Ops:       total,
		OpsPerSec: float64(total-prevOps) / dt,
	}
	if obs.BinsCount(delta) > 0 {
		p.P50Micros = float64(obs.BinsQuantile(delta, 0.50)) / 1000
		p.P99Micros = float64(obs.BinsQuantile(delta, 0.99)) / 1000
	}
	return append(tl, p), total, bins
}

// runWorkers executes the measured phase, sampling per-op latency (one op
// in 8 pays the clock reads; see latency.go) and collecting the
// per-interval timeline, and returns the wall time, the merged latency
// histogram, and the timeline.
func runWorkers(cfg RunConfig, do func(worker int, op ycsb.Op, i int)) (time.Duration, *latHist, []TimelinePoint) {
	gens := make([]*ycsb.Generator, cfg.Threads)
	for w := range gens {
		gens[w] = ycsb.NewGenerator(cfg.Workload, cfg.Dist, cfg.TreeSize, cfg.Seed+int64(w)*7919)
		gens[w].SetScanLength(cfg.ScanDist, cfg.ScanLen)
	}
	hists := make([]latHist, cfg.Threads)
	progress := make([]progressSlot, cfg.Threads)

	stopTL := make(chan struct{})
	tlDone := make(chan []TimelinePoint, 1)
	var wg sync.WaitGroup
	start := time.Now()
	go func() {
		var tl []TimelinePoint
		var prevOps int64
		var prevBins []int64
		t := time.NewTicker(cfg.TimelineInterval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				tl, prevOps, prevBins = sampleTimeline(tl, start, now, prevOps, prevBins, progress, hists)
			case <-stopTL:
				// Final partial interval, so short runs still get a point.
				tl, _, _ = sampleTimeline(tl, start, time.Now(), prevOps, prevBins, progress, hists)
				tlDone <- tl
				return
			}
		}
	}()
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := gens[w]
			h := &hists[w]
			p := &progress[w].n
			for i := 0; i < cfg.OpsPerThread; i++ {
				op := g.Next()
				if i&latSampleMask == 0 {
					t0 := time.Now()
					do(w, op, i)
					h.record(time.Since(t0))
				} else {
					do(w, op, i)
				}
				p.Store(int64(i + 1))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopTL)
	return elapsed, mergeLatencies(hists), <-tlDone
}
