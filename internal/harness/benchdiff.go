package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Benchdiff compares two BENCH_*.json files — the committed perf
// trajectory — row by row, so CI can hold a PR to the previous PR's
// numbers instead of eyeballing them. Rows are matched on their workload
// identity (workload, mode, distribution, shard count, txn mode, value
// size, scan shape, threads, tree size); throughput metrics gate, tail
// latency warns. When the two files were measured on different
// environments (CPU count, architecture, toolchain), regressions are
// downgraded to advisory warnings: cross-machine numbers prove nothing.

// DefaultDiffTolerance is the relative throughput drop that counts as a
// regression. Single-row noise on a small CI machine runs ±15%, so the
// gate fires only on drops well past that.
const DefaultDiffTolerance = 0.30

// LoadBenchFile parses one BENCH_*.json stream: the PR 6+ metadata
// envelope, or the legacy bare record array of BENCH_PR3–PR5 (whose Meta
// stays zero — callers see an env mismatch and degrade to advisory).
func LoadBenchFile(r io.Reader) (BenchFile, error) {
	var f BenchFile
	raw, err := io.ReadAll(r)
	if err != nil {
		return f, err
	}
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(raw, &f.Records)
		return f, err
	}
	err = json.Unmarshal(raw, &f)
	return f, err
}

// LoadBenchPath is LoadBenchFile over a file path.
func LoadBenchPath(path string) (BenchFile, error) {
	fh, err := os.Open(path)
	if err != nil {
		return BenchFile{}, err
	}
	defer fh.Close()
	return LoadBenchFile(fh)
}

// rowKey is the identity a record is matched on across files. Recomputed
// at diff time from both files, so appending identity fields (like the
// reshard transition) keeps old files comparable: rows on both sides gain
// the same constant suffix.
func rowKey(r BenchRecord) string {
	return fmt.Sprintf("%s/%s/%s shards=%d txn=%s vs=%d scan=%s/%d/%s/rev=%v threads=%d tree=%d resh=%s",
		r.Workload, r.Mode, r.Dist, r.Shards, r.TxnMode, r.ValueSize,
		r.ScanAPI, r.ScanLen, r.ScanDist, r.Reverse, r.Threads, r.TreeSize, r.Reshard)
}

// DiffStatus classifies one compared metric.
type DiffStatus int

const (
	// DiffOK: within tolerance.
	DiffOK DiffStatus = iota
	// DiffImproved: better by more than the tolerance.
	DiffImproved
	// DiffWarning: worse by more than the tolerance, but advisory only
	// (tail-latency metric, or an environment mismatch).
	DiffWarning
	// DiffRegression: a gating throughput drop past the tolerance.
	DiffRegression
)

func (s DiffStatus) String() string {
	switch s {
	case DiffImproved:
		return "improved"
	case DiffWarning:
		return "WARN"
	case DiffRegression:
		return "REGRESSION"
	default:
		return "ok"
	}
}

// DiffRow is one compared metric of one matched row.
type DiffRow struct {
	Key    string
	Metric string
	Old    float64
	New    float64
	Status DiffStatus
}

// DiffReport is the full comparison.
type DiffReport struct {
	Rows []DiffRow
	// OldOnly / NewOnly list row keys present in exactly one file (matrix
	// drift — informational, never gating).
	OldOnly, NewOnly []string
	// EnvMismatch reports that the two files were measured under different
	// environments (or one predates metadata); regressions were downgraded
	// to warnings.
	EnvMismatch bool
	// EnvDetail names the mismatching fields.
	EnvDetail string
	Tolerance float64
}

// Regressions counts the gating rows.
func (d *DiffReport) Regressions() int {
	n := 0
	for _, r := range d.Rows {
		if r.Status == DiffRegression {
			n++
		}
	}
	return n
}

// envMismatch compares the fields that make throughput numbers
// comparable. A zero meta (legacy file) mismatches by construction.
func envMismatch(a, b RunMeta) (bool, string) {
	switch {
	case a.GoVersion == "" || b.GoVersion == "":
		return true, "one file predates run metadata"
	case a.NumCPU != b.NumCPU:
		return true, fmt.Sprintf("num_cpu %d vs %d", a.NumCPU, b.NumCPU)
	case a.GOARCH != b.GOARCH:
		return true, fmt.Sprintf("goarch %s vs %s", a.GOARCH, b.GOARCH)
	case a.GOMAXPROCS != b.GOMAXPROCS:
		return true, fmt.Sprintf("gomaxprocs %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS)
	case a.GoVersion != b.GoVersion:
		return true, fmt.Sprintf("go_version %s vs %s", a.GoVersion, b.GoVersion)
	}
	return false, ""
}

// DiffBench compares new against old. tolerance ≤ 0 uses the default.
func DiffBench(old, new BenchFile, tolerance float64) DiffReport {
	if tolerance <= 0 {
		tolerance = DefaultDiffTolerance
	}
	rep := DiffReport{Tolerance: tolerance}
	rep.EnvMismatch, rep.EnvDetail = envMismatch(old.Meta, new.Meta)

	oldRows := make(map[string]BenchRecord, len(old.Records))
	for _, r := range old.Records {
		oldRows[rowKey(r)] = r
	}
	seen := make(map[string]bool, len(new.Records))
	for _, nr := range new.Records {
		key := rowKey(nr)
		seen[key] = true
		or, ok := oldRows[key]
		if !ok {
			rep.NewOnly = append(rep.NewOnly, key)
			continue
		}
		// Throughput: lower is worse, gates.
		for _, m := range []struct {
			name     string
			old, new float64
		}{
			{"ops_per_sec", or.OpsPerSec, nr.OpsPerSec},
			{"txns_per_sec", or.TxnsPerSec, nr.TxnsPerSec},
			{"mb_per_sec", or.MBPerSec, nr.MBPerSec},
			{"restore_mb_per_sec", or.RestoreMBPerSec, nr.RestoreMBPerSec},
			{"copy_mb_per_sec", or.CopyMBPerSec, nr.CopyMBPerSec},
		} {
			if or.Workload == "REPLICA" && m.name == "mb_per_sec" {
				// Replica apply throughput is paced by the primary's write
				// rate, not a capacity measurement; informational only.
				continue
			}
			if or.Workload == "REPLNET" && m.name == "mb_per_sec" {
				// Loopback-TCP bootstrap throughput swings with the CI
				// kernel's network stack and scheduler far past the gate
				// tolerance; informational only.
				continue
			}
			if m.old <= 0 || m.new <= 0 {
				continue
			}
			row := DiffRow{Key: key, Metric: m.name, Old: m.old, New: m.new}
			switch {
			case m.new < m.old*(1-tolerance):
				row.Status = DiffRegression
				if rep.EnvMismatch {
					row.Status = DiffWarning
				}
			case m.new > m.old*(1+tolerance):
				row.Status = DiffImproved
			}
			rep.Rows = append(rep.Rows, row)
		}
		// Tail latency: higher is worse, advisory only (p99 of a sampled
		// histogram on a 1-CPU runner is too noisy to gate; double the
		// tolerance before even warning).
		if or.P99Micros > 0 && nr.P99Micros > or.P99Micros*(1+2*tolerance) {
			rep.Rows = append(rep.Rows, DiffRow{
				Key: key, Metric: "p99_us", Old: or.P99Micros, New: nr.P99Micros,
				Status: DiffWarning,
			})
		}
		// Heartbeat RTT tail: higher is worse, advisory only (loopback
		// scheduling on a small runner swamps the protocol's own cost).
		if or.HBRTTP99Micros > 0 && nr.HBRTTP99Micros > or.HBRTTP99Micros*(1+2*tolerance) {
			rep.Rows = append(rep.Rows, DiffRow{
				Key: key, Metric: "hb_rtt_p99_us", Old: or.HBRTTP99Micros, New: nr.HBRTTP99Micros,
				Status: DiffWarning,
			})
		}
		// Commit-to-apply propagation tail: higher is worse, advisory only
		// (the ack leg rides the same noisy loopback as the heartbeat RTT).
		if or.CommitToApplyP99Micros > 0 && nr.CommitToApplyP99Micros > or.CommitToApplyP99Micros*(1+2*tolerance) {
			rep.Rows = append(rep.Rows, DiffRow{
				Key: key, Metric: "commit_to_apply_p99_us", Old: or.CommitToApplyP99Micros, New: nr.CommitToApplyP99Micros,
				Status: DiffWarning,
			})
		}
		// Cutover pause: higher is worse, advisory only (a single stall
		// measurement on a small runner; same doubled tolerance as p99).
		if or.CutoverPauseMS > 0 && nr.CutoverPauseMS > or.CutoverPauseMS*(1+2*tolerance) {
			rep.Rows = append(rep.Rows, DiffRow{
				Key: key, Metric: "cutover_pause_ms", Old: or.CutoverPauseMS, New: nr.CutoverPauseMS,
				Status: DiffWarning,
			})
		}
	}
	for key := range oldRows {
		if !seen[key] {
			rep.OldOnly = append(rep.OldOnly, key)
		}
	}
	sort.Strings(rep.OldOnly)
	sort.Strings(rep.NewOnly)
	return rep
}

// Write renders the report, worst rows first, then the matrix drift.
func (d *DiffReport) Write(w io.Writer) {
	if d.EnvMismatch {
		fmt.Fprintf(w, "note: environment mismatch (%s); regressions reported as warnings only\n", d.EnvDetail)
	}
	rows := append([]DiffRow(nil), d.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Status > rows[j].Status })
	for _, r := range rows {
		if r.Status == DiffOK {
			continue
		}
		fmt.Fprintf(w, "%-10s %s: %s %.1f -> %.1f (%+.1f%%)\n",
			r.Status, r.Key, r.Metric, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
	}
	for _, k := range d.OldOnly {
		fmt.Fprintf(w, "removed    %s\n", k)
	}
	for _, k := range d.NewOnly {
		fmt.Fprintf(w, "added      %s\n", k)
	}
	fmt.Fprintf(w, "%d rows compared, %d regressions (tolerance %.0f%%)\n",
		len(d.Rows), d.Regressions(), d.Tolerance*100)
}
