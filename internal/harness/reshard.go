package harness

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"incll"
	"incll/internal/core"
)

// Reshard measurements: online split/merge under YCSB-A-style write load.
// The tracked numbers are the copy throughput into the target shard set
// (snapshot plus tail, parallel per-shard arena allocation included), the
// cutover pause (the only writer-visible stall), and the throughput dip —
// sustained ops/s while the reshard runs versus an undisturbed baseline.

// ReshardBenchResult reports one reshard measurement.
type ReshardBenchResult struct {
	From, To int

	// CopiedMB and CopyMBPerSec measure the bulk copy into the target
	// (copied key+value bytes over the reshard's non-cutover time).
	CopiedMB     float64
	CopyMBPerSec float64
	// CutoverPauseMS is the writer-gated cutover window.
	CutoverPauseMS float64
	// BaseOpsPerSec is the workload's throughput before the reshard;
	// ReshardOpsPerSec is its throughput while the reshard ran.
	BaseOpsPerSec    float64
	ReshardOpsPerSec float64
	TookMS           float64
}

// RunReshardBench measures one online from→to reshard under concurrent
// single-worker YCSB-A load (uniform keys, half puts, 128-byte values).
func RunReshardBench(p Params, from, to int) ReshardBenchResult {
	p.setDefaults()
	opts := replOptions(from)
	opts.EpochInterval = 4 * time.Millisecond
	db, _ := incll.Open(opts)
	defer db.Close()

	tree := p.TreeSize / 4
	val := make([]byte, 128)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < tree; k++ {
		if _, err := db.PutBytes(core.EncodeUint64(k), val); err != nil {
			panic(err)
		}
	}
	db.Checkpoint()
	db.StartCheckpointer()
	defer db.StopCheckpointer()

	// The load loop runs throughout; ops counts progress so distinct
	// windows (baseline, reshard) measure sustained throughput.
	var (
		ops  atomic.Int64
		stop atomic.Bool
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		h := db.Handle(1)
		rng := newXorshift(uint64(p.Seed)*2654435761 + 7)
		for i := 0; !stop.Load(); i++ {
			k := core.EncodeUint64(rng.next() % tree)
			if i&1 == 0 {
				if _, err := h.PutBytes(k, val); err != nil {
					panic(err)
				}
			} else {
				h.GetBytes(k)
			}
			ops.Add(1)
		}
	}()

	// Baseline window.
	base0 := ops.Load()
	t0 := time.Now()
	time.Sleep(150 * time.Millisecond)
	baseOps := float64(ops.Load()-base0) / time.Since(t0).Seconds()

	// Reshard window.
	r0 := ops.Load()
	t1 := time.Now()
	res, err := db.Reshard(to)
	if err != nil {
		panic(fmt.Sprintf("harness: reshard bench %d→%d: %v", from, to, err))
	}
	reshardOps := float64(ops.Load()-r0) / time.Since(t1).Seconds()
	stop.Store(true)
	<-done

	copySecs := (res.Took - res.CutoverPause).Seconds()
	if copySecs <= 0 {
		copySecs = res.Took.Seconds()
	}
	copiedMB := float64(res.CopiedBytes) / 1e6
	return ReshardBenchResult{
		From:             from,
		To:               to,
		CopiedMB:         copiedMB,
		CopyMBPerSec:     copiedMB / copySecs,
		CutoverPauseMS:   float64(res.CutoverPause.Microseconds()) / 1000,
		BaseOpsPerSec:    baseOps,
		ReshardOpsPerSec: reshardOps,
		TookMS:           float64(res.Took.Microseconds()) / 1000,
	}
}

// reshardRows runs the tracked reshard matrix: a 4→8 split and an 8→4
// merge under write load.
func reshardRows(w io.Writer, p Params) []BenchRecord {
	var recs []BenchRecord
	for _, c := range []struct{ from, to int }{{4, 8}, {8, 4}} {
		r := RunReshardBench(p, c.from, c.to)
		rec := BenchRecord{
			Workload:       "RESHARD",
			Mode:           "INCLL",
			Dist:           "uniform",
			Shards:         c.from,
			Reshard:        fmt.Sprintf("%dto%d", c.from, c.to),
			TxnMode:        "none",
			ValueSize:      128,
			Threads:        1,
			TreeSize:       p.TreeSize / 4,
			OpsPerSec:      r.ReshardOpsPerSec,
			BaseOpsPerSec:  r.BaseOpsPerSec,
			MBPerSec:       r.CopyMBPerSec,
			CopyMBPerSec:   r.CopyMBPerSec,
			CutoverPauseMS: r.CutoverPauseMS,
			ElapsedMS:      r.TookMS,
		}
		recs = append(recs, rec)
		dip := 0.0
		if r.BaseOpsPerSec > 0 {
			dip = 100 * (1 - r.ReshardOpsPerSec/r.BaseOpsPerSec)
		}
		fmt.Fprintf(w, "%-8s INCLL  %d→%d %29.1f MB/s copy  pause %.2fms  load %0.f ops/s (dip %.0f%%)\n",
			rec.Workload, c.from, c.to, r.CopyMBPerSec, r.CutoverPauseMS, r.ReshardOpsPerSec, dip)
	}
	return recs
}
