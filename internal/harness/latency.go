package harness

import (
	"time"

	"incll/internal/obs"
)

// Per-operation latency is sampled — every 8th op pays two clock reads —
// into obs.Histogram (the harness's log-linear histogram promoted to a
// first-class mergeable type; 16 linear minor buckets per power of two),
// so percentile reporting adds bounded overhead to the measured
// throughput instead of doubling the clock traffic.

// latSampleMask samples one op in 8 for latency.
const latSampleMask = 7

// latHist is one worker's latency histogram (nanosecond domain).
type latHist struct {
	h obs.Histogram
}

func (h *latHist) record(d time.Duration) {
	h.h.Record(int64(d))
}

// percentile returns the p-th percentile (0 < p ≤ 100) as a duration.
func (h *latHist) percentile(p float64) time.Duration {
	return time.Duration(h.h.Quantile(p / 100))
}

// mergeLatencies folds the per-worker histograms into one.
func mergeLatencies(hists []latHist) *latHist {
	out := &latHist{}
	for i := range hists {
		out.h.Merge(&hists[i].h)
	}
	return out
}

// mergedBins sums the per-worker bucket loads into one window snapshot —
// the timeline sampler diffs successive snapshots to get per-interval
// latency percentiles without disturbing the workers.
func mergedBins(hists []latHist) []int64 {
	var out []int64
	for i := range hists {
		b := hists[i].h.Bins()
		if out == nil {
			out = b
			continue
		}
		for j := range out {
			out[j] += b[j]
		}
	}
	return out
}
