package harness

import (
	"math/bits"
	"time"
)

// Per-operation latency is sampled — every 8th op pays two clock reads —
// into a log-linear histogram (HDR-style: 16 linear minor buckets per
// power of two), so percentile reporting adds bounded overhead to the
// measured throughput instead of doubling the clock traffic.

const (
	// latSampleMask samples one op in 8 for latency.
	latSampleMask = 7
	latBuckets    = 1024
)

// latHist is one worker's latency histogram (nanosecond domain).
type latHist struct {
	counts [latBuckets]uint64
	n      uint64
}

// bucketOf maps a nanosecond value to its log-linear bucket: values below
// 16 are exact, above that the top four bits after the MSB select one of
// 16 linear buckets per power of two.
func bucketOf(v uint64) int {
	if v < 16 {
		return int(v)
	}
	k := bits.Len64(v)            // 2^(k-1) <= v < 2^k, k >= 5
	minor := (v >> (k - 5)) & 0xF // top 4 bits after the MSB
	idx := (k-4)*16 + int(minor)  // k=5 starts at bucket 16
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	return idx
}

// bucketMid is the representative (midpoint) value of a bucket.
func bucketMid(idx int) uint64 {
	if idx < 16 {
		return uint64(idx)
	}
	k := idx/16 + 4
	minor := uint64(idx % 16)
	step := uint64(1) << (k - 5)
	return (16+minor)*step + step/2
}

func (h *latHist) record(d time.Duration) {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.n++
}

// merge folds o into h.
func (h *latHist) merge(o *latHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
}

// percentile returns the p-th percentile (0 < p ≤ 100) as a duration.
func (h *latHist) percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return time.Duration(bucketMid(i))
		}
	}
	return time.Duration(bucketMid(latBuckets - 1))
}

// mergeLatencies folds the per-worker histograms into one.
func mergeLatencies(hists []latHist) *latHist {
	out := &latHist{}
	for i := range hists {
		out.merge(&hists[i])
	}
	return out
}
