package harness

import (
	"fmt"
	"net"
	"time"

	"incll"
	"incll/internal/core"
)

// Networked replication measurements: follower bootstrap throughput over
// a real (loopback) TCP connection, steady-state apply lag under write
// load, and heartbeat round-trip tail. These are the wire-tier
// counterparts to repl.go's in-process snapshot and replica rows.

// ReplnetResult reports one networked replication measurement.
type ReplnetResult struct {
	Shards int

	// Bootstrap: the follower's full snapshot transfer over TCP.
	BootstrapBytes    int64
	BootstrapMBPerSec float64

	// Steady state: epoch lag sampled while the primary runs YCSB-A-style
	// write load with the checkpoint ticker on.
	LagSamples    int
	LagEpochsMax  uint64
	LagEpochsMean float64

	// HeartbeatRTTP99 is the primary-observed heartbeat round trip tail
	// across the run.
	HeartbeatRTTP99 time.Duration

	// Commit-to-apply propagation latency (checkpoint commit on the
	// primary to the follower's durable-apply ack, single clock; see
	// DESIGN.md §15) across the run's sampled epochs.
	CommitToApplyP50 time.Duration
	CommitToApplyP99 time.Duration

	Converged bool // follower equals primary after the final watermark wait
}

// RunReplnetBench stands up a TCP primary on loopback, bootstraps one
// follower over the wire, then samples the follower's epoch lag while
// the primary takes write load. The follower applies on its own
// goroutines; the lag series is the steady-state replication debt a
// watermark read would wait on.
func RunReplnetBench(p Params, shards int) ReplnetResult {
	p.setDefaults()
	opts := replOptions(shards)
	opts.EpochInterval = 4 * time.Millisecond
	primary, _ := incll.Open(opts)
	for k := uint64(0); k < p.TreeSize; k++ {
		primary.Put(core.EncodeUint64(k), k)
	}
	primary.Checkpoint()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("harness: replnet bench: %v", err))
	}
	rs, err := primary.ServeReplication(lis, incll.ReplServerOptions{
		Heartbeat: 5 * time.Millisecond,
		DeadAfter: 10 * time.Second,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: replnet bench: %v", err))
	}

	t0 := time.Now()
	fol, err := incll.FollowPrimary(rs.Addr().String(), incll.FollowerOptions{
		Options: replOptions(shards),
		ID:      "bench",
	})
	if err != nil {
		panic(fmt.Sprintf("harness: replnet bootstrap: %v", err))
	}
	bootSecs := time.Since(t0).Seconds()
	bi := fol.BootstrapInfo()

	res := ReplnetResult{
		Shards:            shards,
		BootstrapBytes:    bi.Bytes,
		BootstrapMBPerSec: float64(bi.Bytes) / bootSecs / 1e6,
	}

	primary.StartCheckpointer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h := primary.Handle(1)
		rng := newXorshift(uint64(p.Seed)*2654435761 + 3)
		for i := 0; i < p.Ops; i++ {
			k := core.EncodeUint64(rng.next() % p.TreeSize)
			if i&1 == 0 {
				h.Put(k, uint64(i))
			} else {
				h.Get(k)
			}
		}
	}()

	var lagSum uint64
sample:
	for {
		select {
		case <-done:
			break sample
		case <-time.After(2 * time.Millisecond):
		}
		lag := fol.Lag().Epochs
		res.LagSamples++
		lagSum += lag
		if lag > res.LagEpochsMax {
			res.LagEpochsMax = lag
		}
	}
	primary.StopCheckpointer()
	primary.Checkpoint()
	if res.LagSamples > 0 {
		res.LagEpochsMean = float64(lagSum) / float64(res.LagSamples)
	}

	// Converge on the final watermark, then verify by key count plus a
	// sampled value sweep (the crash campaign owns the byte-exact check).
	res.Converged = fol.WaitWatermark(primary.ReleasedEpoch(), 30*time.Second) == nil
	if res.Converged {
		if primary.RebuildLen() != fol.DB().RebuildLen() {
			res.Converged = false
		} else {
			for k := uint64(0); k < p.TreeSize; k += 97 {
				pv, pok := primary.Get(core.EncodeUint64(k))
				fv, fok := fol.DB().Get(core.EncodeUint64(k))
				if pok != fok || pv != fv {
					res.Converged = false
					break
				}
			}
		}
	}
	res.HeartbeatRTTP99 = rs.HeartbeatRTT(0.99)
	prop := primary.Metrics().Propagation
	res.CommitToApplyP50 = time.Duration(prop.CommitToApply.P50)
	res.CommitToApplyP99 = time.Duration(prop.CommitToApply.P99)
	fol.Close()
	primary.Close()
	return res
}
