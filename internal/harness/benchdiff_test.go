package harness

import (
	"strings"
	"testing"
)

func mkMeta(cpus int) RunMeta {
	return RunMeta{GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		NumCPU: cpus, GOMAXPROCS: cpus}
}

func mkRec(workload string, ops float64) BenchRecord {
	return BenchRecord{Workload: workload, Mode: "durable", Dist: "zipf",
		Threads: 2, TreeSize: 1000, ValueSize: 8, OpsPerSec: ops,
		P50Micros: 10, P99Micros: 100}
}

func TestDiffBenchGate(t *testing.T) {
	old := BenchFile{Meta: mkMeta(4), Records: []BenchRecord{
		mkRec("YCSB-A", 1000), mkRec("YCSB-B", 1000), mkRec("YCSB-C", 1000),
	}}
	new := BenchFile{Meta: mkMeta(4), Records: []BenchRecord{
		mkRec("YCSB-A", 950),  // within tolerance
		mkRec("YCSB-B", 500),  // regression at 30%
		mkRec("YCSB-C", 1500), // improvement
	}}
	rep := DiffBench(old, new, 0.30)
	if rep.EnvMismatch {
		t.Fatalf("unexpected env mismatch: %s", rep.EnvDetail)
	}
	if got := rep.Regressions(); got != 1 {
		t.Fatalf("Regressions() = %d, want 1", got)
	}
	byKey := map[string]DiffStatus{}
	for _, r := range rep.Rows {
		if r.Metric == "ops_per_sec" {
			byKey[r.Key] = r.Status
		}
	}
	if byKey[rowKey(mkRec("YCSB-A", 0))] != DiffOK {
		t.Errorf("YCSB-A should be ok, got %v", byKey[rowKey(mkRec("YCSB-A", 0))])
	}
	if byKey[rowKey(mkRec("YCSB-B", 0))] != DiffRegression {
		t.Errorf("YCSB-B should regress, got %v", byKey[rowKey(mkRec("YCSB-B", 0))])
	}
	if byKey[rowKey(mkRec("YCSB-C", 0))] != DiffImproved {
		t.Errorf("YCSB-C should improve, got %v", byKey[rowKey(mkRec("YCSB-C", 0))])
	}

	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 regressions") {
		t.Errorf("report missing regression line:\n%s", out)
	}
}

func TestDiffBenchEnvMismatchAdvisory(t *testing.T) {
	old := BenchFile{Meta: mkMeta(8), Records: []BenchRecord{mkRec("YCSB-A", 1000)}}
	new := BenchFile{Meta: mkMeta(1), Records: []BenchRecord{mkRec("YCSB-A", 100)}}
	rep := DiffBench(old, new, 0.30)
	if !rep.EnvMismatch {
		t.Fatal("expected env mismatch for differing NumCPU")
	}
	if rep.Regressions() != 0 {
		t.Fatalf("env-mismatched regressions must downgrade to warnings, got %d gating", rep.Regressions())
	}
	warned := false
	for _, r := range rep.Rows {
		if r.Status == DiffWarning {
			warned = true
		}
	}
	if !warned {
		t.Fatal("expected an advisory warning row")
	}
}

func TestDiffBenchMatrixDrift(t *testing.T) {
	old := BenchFile{Meta: mkMeta(4), Records: []BenchRecord{
		mkRec("YCSB-A", 1000), mkRec("OLD-ONLY", 1000)}}
	new := BenchFile{Meta: mkMeta(4), Records: []BenchRecord{
		mkRec("YCSB-A", 1000), mkRec("NEW-ONLY", 1000)}}
	rep := DiffBench(old, new, 0)
	if len(rep.OldOnly) != 1 || !strings.Contains(rep.OldOnly[0], "OLD-ONLY") {
		t.Errorf("OldOnly = %v", rep.OldOnly)
	}
	if len(rep.NewOnly) != 1 || !strings.Contains(rep.NewOnly[0], "NEW-ONLY") {
		t.Errorf("NewOnly = %v", rep.NewOnly)
	}
	if rep.Regressions() != 0 {
		t.Errorf("matrix drift must not gate, got %d", rep.Regressions())
	}
}

func TestLoadBenchFileEnvelopeAndLegacy(t *testing.T) {
	envelope := `{"meta":{"go_version":"go1.24","num_cpu":4},"records":[{"workload":"YCSB-A","ops_per_sec":123}]}`
	f, err := LoadBenchFile(strings.NewReader(envelope))
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if f.Meta.NumCPU != 4 || len(f.Records) != 1 || f.Records[0].OpsPerSec != 123 {
		t.Fatalf("envelope parsed wrong: %+v", f)
	}

	// Legacy bare array, as committed in BENCH_PR3–PR5.json.
	legacy := ` [{"workload":"YCSB-A","ops_per_sec":456}]`
	f, err = LoadBenchFile(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	if f.Meta.GoVersion != "" || len(f.Records) != 1 || f.Records[0].OpsPerSec != 456 {
		t.Fatalf("legacy parsed wrong: %+v", f)
	}

	// Legacy vs modern must degrade to advisory.
	mod := BenchFile{Meta: mkMeta(4), Records: []BenchRecord{mkRec("YCSB-A", 10)}}
	rep := DiffBench(f, mod, 0)
	if !rep.EnvMismatch {
		t.Fatal("legacy file must trigger env mismatch")
	}
}

func TestLoadBenchPathCommittedFiles(t *testing.T) {
	// Every committed BENCH file in the repo root must stay loadable —
	// PR3–PR5 use the legacy array, PR6+ the envelope.
	for _, name := range []string{"BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR5.json", "BENCH_PR6.json"} {
		f, err := LoadBenchPath("../../" + name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(f.Records) == 0 {
			t.Errorf("%s: no records", name)
		}
	}
}
