// Package replnet is the networked replication tier: a TCP transport and
// cluster layer over the checkpoint-anchored replication machinery in
// internal/repl. A primary-side Server accepts follower connections,
// streams each one a snapshot bootstrap and then the released change
// batches, with per-peer send queues, heartbeats, and deadline-based
// liveness; a follower-side Client dials, bootstraps, applies batches,
// and reconnects with jittered exponential backoff.
//
// One TCP connection carries three phases in order:
//
//  1. handshake — a hello message from the follower, a welcome from the
//     primary, both replnet messages (format below);
//  2. bootstrap — the raw repl snapshot stream (internal/repl wire
//     format, "IRPL" frames) written by the primary's exporter and
//     consumed by repl.Restore on the follower. Restore reads frames
//     exactly (no read-ahead past the end frame), so the stream hands
//     the connection back to phase 3 without any delimiter;
//  3. live — replnet messages both ways: change-batch chunks and
//     heartbeats from the primary, acks from the follower.
//
// A replnet message reuses the shape of a repl frame — checksummed and
// length-prefixed, with its own magic so a desynchronized stream fails
// loudly instead of being misparsed:
//
//	magic   uint32 (little-endian, "IRNP")
//	type    uint8
//	length  uint32 (payload bytes)
//	crc32   uint32 (IEEE, of the payload)
//	payload
//
// Message payloads:
//
//	hello:     proto u16, reserved u16, {idlen uvarint, id}
//	welcome:   proto u16, released u64
//	batch:     horizon u64, flags u8 (bit0: final chunk), count u32,
//	           then {op u8, epoch-delta uvarint (horizon−epoch),
//	           shard uvarint, klen uvarint, vlen uvarint, key, val}…
//	heartbeat: nonce i64 (sender clock, echoed), released u64
//	ack:       nonce i64 (echo of a heartbeat, 0 for a batch ack),
//	           applied u64
//	bye:       reason u8 (1: primary closed cleanly, 2: stream lost)
//
// A released batch larger than the chunk target is split into several
// batch messages sharing one horizon; only the last carries the final
// flag, and the follower checkpoints and advances its applied watermark
// only on final chunks — its durable state is always a whole released
// prefix, never a torn middle of an epoch.
package replnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"incll/internal/core"
	"incll/internal/repl"
)

const (
	msgMagic = 0x504E5249 // "IRNP"

	msgHello     = 1
	msgWelcome   = 2
	msgBatch     = 3
	msgHeartbeat = 4
	msgAck       = 5
	msgBye       = 6

	// ProtoVersion is the replnet protocol version, checked in both
	// directions during the handshake.
	ProtoVersion = 1

	msgHdrBytes = 13
	// maxMsgPayload bounds a message so a corrupt length fails fast
	// instead of allocating gigabytes (matches repl's frame limit).
	maxMsgPayload = 1 << 26
	// chunkTarget is the payload size at which a batch chunk is cut.
	chunkTarget = 256 << 10
	// maxPeerID bounds the follower-supplied peer id.
	maxPeerID = 256

	byeClosed = 1 // primary shut down cleanly; the stream is complete
	byeLost   = 2 // stream lost (journal overrun / primary crash)

	batchFlagFinal = 1 // last chunk of its released batch
)

var (
	// ErrBadMessage reports a malformed, corrupt, or desynchronized
	// replnet message stream; the connection is torn down and the
	// follower re-bootstraps.
	ErrBadMessage = errors.New("replnet: malformed or corrupt message")
	// ErrProtocol reports a handshake version or role mismatch.
	ErrProtocol = errors.New("replnet: protocol mismatch")
	// ErrPrimaryClosed is the session result after the primary announced
	// a clean shutdown: every released epoch was delivered.
	ErrPrimaryClosed = errors.New("replnet: primary closed cleanly")
	// ErrStreamLostRemote is the session result after the primary
	// announced the change stream was lost (journal overrun or crash);
	// the follower must re-bootstrap.
	ErrStreamLostRemote = errors.New("replnet: primary reported stream lost")
)

// mconn frames replnet messages over one net.Conn. The bufio.Reader is
// shared with the bootstrap phase (repl.Restore reads the raw snapshot
// stream through it), so message parsing resumes exactly where the
// snapshot's end frame stopped. Not safe for concurrent use of the same
// direction; the server writes from one goroutine and reads from another,
// which is fine — the two directions are independent.
type mconn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	rhdr    [msgHdrBytes]byte
	whdr    [msgHdrBytes]byte
	payload []byte // read buffer, reused across messages
	scratch []byte // write buffer, reused across messages
}

func newMconn(nc net.Conn) *mconn {
	return &mconn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// writeMsg frames and buffers one message; call flush to push it out.
func (c *mconn) writeMsg(kind byte, payload []byte) error {
	if len(payload) > maxMsgPayload {
		return fmt.Errorf("%w: message payload %d exceeds limit (writer bug)", ErrBadMessage, len(payload))
	}
	binary.LittleEndian.PutUint32(c.whdr[0:], msgMagic)
	c.whdr[4] = kind
	binary.LittleEndian.PutUint32(c.whdr[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(c.whdr[9:], crc32.ChecksumIEEE(payload))
	if _, err := c.bw.Write(c.whdr[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(payload)
	return err
}

func (c *mconn) flush() error { return c.bw.Flush() }

// readMsg returns the next message's kind and payload (valid until the
// next call), verifying magic and checksum.
func (c *mconn) readMsg() (byte, []byte, error) {
	if _, err := io.ReadFull(c.br, c.rhdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.LittleEndian.Uint32(c.rhdr[0:]) != msgMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	kind := c.rhdr[4]
	n := binary.LittleEndian.Uint32(c.rhdr[5:])
	if n > maxMsgPayload {
		return 0, nil, fmt.Errorf("%w: payload %d exceeds limit", ErrBadMessage, n)
	}
	if cap(c.payload) < int(n) {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := io.ReadFull(c.br, c.payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload", ErrBadMessage)
	}
	if crc32.ChecksumIEEE(c.payload) != binary.LittleEndian.Uint32(c.rhdr[9:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadMessage)
	}
	return kind, c.payload, nil
}

// --- payload encode/decode -------------------------------------------------

func appendHello(dst []byte, id string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, ProtoVersion)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	return append(dst, id...)
}

func parseHello(p []byte) (id string, err error) {
	if len(p) < 4 {
		return "", fmt.Errorf("%w: short hello", ErrBadMessage)
	}
	if v := binary.LittleEndian.Uint16(p); v != ProtoVersion {
		return "", fmt.Errorf("%w: peer speaks proto %d, want %d", ErrProtocol, v, ProtoVersion)
	}
	n, used := binary.Uvarint(p[4:])
	if used <= 0 || n > maxPeerID || uint64(len(p)-4-used) < n {
		return "", fmt.Errorf("%w: bad hello id", ErrBadMessage)
	}
	return string(p[4+used : 4+used+int(n)]), nil
}

func appendWelcome(dst []byte, released uint64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, ProtoVersion)
	return binary.LittleEndian.AppendUint64(dst, released)
}

func parseWelcome(p []byte) (released uint64, err error) {
	if len(p) != 10 {
		return 0, fmt.Errorf("%w: short welcome", ErrBadMessage)
	}
	if v := binary.LittleEndian.Uint16(p); v != ProtoVersion {
		return 0, fmt.Errorf("%w: peer speaks proto %d, want %d", ErrProtocol, v, ProtoVersion)
	}
	return binary.LittleEndian.Uint64(p[2:]), nil
}

func appendHeartbeat(dst []byte, nonce int64, released uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nonce))
	return binary.LittleEndian.AppendUint64(dst, released)
}

func parseHeartbeat(p []byte) (nonce int64, released uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("%w: short heartbeat", ErrBadMessage)
	}
	return int64(binary.LittleEndian.Uint64(p)), binary.LittleEndian.Uint64(p[8:]), nil
}

func appendAck(dst []byte, nonce int64, applied uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nonce))
	return binary.LittleEndian.AppendUint64(dst, applied)
}

func parseAck(p []byte) (nonce int64, applied uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("%w: short ack", ErrBadMessage)
	}
	return int64(binary.LittleEndian.Uint64(p)), binary.LittleEndian.Uint64(p[8:]), nil
}

// writeBatch splits one released batch into chunk messages at the chunk
// target and buffers them; only the last chunk carries the final flag.
// Returns the payload bytes buffered. A non-zero chunkDeadline extends the
// connection's write deadline before every chunk: the liveness contract is
// per chunk, not per batch, so a batch whose total transfer time exceeds
// the deadline still goes through as long as each chunk makes progress.
func (c *mconn) writeBatch(b repl.Batch, chunkDeadline time.Duration) (int64, error) {
	var total int64
	i := 0
	for {
		if chunkDeadline > 0 {
			if err := c.nc.SetWriteDeadline(time.Now().Add(chunkDeadline)); err != nil {
				return total, err
			}
		}
		p := c.scratch[:0]
		p = binary.LittleEndian.AppendUint64(p, b.Epoch)
		p = append(p, 0)          // flags, patched below
		p = append(p, 0, 0, 0, 0) // count, patched below
		count := uint32(0)
		for i < len(b.Entries) && len(p) < chunkTarget {
			e := &b.Entries[i]
			p = append(p, byte(e.Op))
			p = binary.AppendUvarint(p, b.Epoch-e.Epoch)
			p = binary.AppendUvarint(p, uint64(e.Shard))
			p = binary.AppendUvarint(p, uint64(len(e.Key)))
			p = binary.AppendUvarint(p, uint64(len(e.Val)))
			p = append(p, e.Key...)
			p = append(p, e.Val...)
			count++
			i++
		}
		final := i == len(b.Entries)
		if final {
			p[8] = batchFlagFinal
		}
		binary.LittleEndian.PutUint32(p[9:], count)
		c.scratch = p[:0]
		total += int64(len(p))
		if err := c.writeMsg(msgBatch, p); err != nil {
			return total, err
		}
		if final {
			return total, nil
		}
	}
}

// batchChunk is one decoded batch message. Entries alias the connection's
// read buffer and are valid only until the next readMsg; consumers that
// retain keys or values must copy (the store's Put copies internally).
type batchChunk struct {
	Horizon uint64
	Final   bool
	Entries []repl.Entry
}

func parseBatch(p []byte, scratch []repl.Entry) (batchChunk, error) {
	if len(p) < 13 {
		return batchChunk{}, fmt.Errorf("%w: short batch header", ErrBadMessage)
	}
	ck := batchChunk{
		Horizon: binary.LittleEndian.Uint64(p),
		Final:   p[8]&batchFlagFinal != 0,
	}
	count := binary.LittleEndian.Uint32(p[9:])
	if uint64(count) > uint64(len(p)) { // every entry is ≥ 5 bytes
		return batchChunk{}, fmt.Errorf("%w: batch count %d overruns payload", ErrBadMessage, count)
	}
	ents := scratch[:0]
	off := 13
	for n := uint32(0); n < count; n++ {
		if off >= len(p) {
			return batchChunk{}, fmt.Errorf("%w: truncated batch entry", ErrBadMessage)
		}
		op := core.ChangeOp(p[off])
		if op != core.ChangePut && op != core.ChangeDelete {
			return batchChunk{}, fmt.Errorf("%w: bad change op %d", ErrBadMessage, op)
		}
		off++
		delta, used := binary.Uvarint(p[off:])
		if used <= 0 || delta > ck.Horizon {
			return batchChunk{}, fmt.Errorf("%w: bad entry epoch", ErrBadMessage)
		}
		off += used
		shard, used := binary.Uvarint(p[off:])
		if used <= 0 || shard > 1<<20 {
			return batchChunk{}, fmt.Errorf("%w: bad entry shard", ErrBadMessage)
		}
		off += used
		k, v, next, err := parseLenPrefixed(p, off)
		if err != nil {
			return batchChunk{}, err
		}
		off = next
		ents = append(ents, repl.Entry{
			Op:    op,
			Epoch: ck.Horizon - delta,
			Shard: int(shard),
			Key:   k,
			Val:   v,
		})
	}
	if off != len(p) {
		return batchChunk{}, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadMessage, len(p)-off)
	}
	ck.Entries = ents
	return ck, nil
}

// parseLenPrefixed decodes a {klen, vlen, key, val} group at p[off:],
// bounds-checking each length on its own before any arithmetic combines
// them (the same defensive shape as repl's parseKV).
func parseLenPrefixed(p []byte, off int) (k, v []byte, next int, err error) {
	kl, n1 := binary.Uvarint(p[off:])
	if n1 <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrBadMessage)
	}
	vl, n2 := binary.Uvarint(p[off+n1:])
	if n2 <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrBadMessage)
	}
	s := off + n1 + n2
	rest := uint64(len(p) - s)
	if kl > rest || vl > rest-kl {
		return nil, nil, 0, fmt.Errorf("%w: entry overruns payload", ErrBadMessage)
	}
	return p[s : s+int(kl)], p[s+int(kl) : s+int(kl)+int(vl)], s + int(kl) + int(vl), nil
}
