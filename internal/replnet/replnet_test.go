package replnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incll/internal/core"
	"incll/internal/obs"
	"incll/internal/repl"
)

// fakeSource is a channel-backed BatchSource: the test side pushes
// batches, the peer collector drains them, and Close unblocks Next like
// a real subscription's does.
type fakeSource struct {
	ch       chan repl.Batch
	endErr   error
	released atomic.Uint64
	done     chan struct{}
	once     sync.Once
}

func newFakeSource() *fakeSource {
	return &fakeSource{ch: make(chan repl.Batch, 64), endErr: repl.ErrStreamClosed, done: make(chan struct{})}
}

func (f *fakeSource) push(b repl.Batch) {
	if b.Epoch > f.released.Load() {
		f.released.Store(b.Epoch)
	}
	f.ch <- b
}

func (f *fakeSource) end(err error) {
	f.endErr = err
	close(f.ch)
}

func (f *fakeSource) Next() (repl.Batch, error) {
	select {
	case b, ok := <-f.ch:
		if !ok {
			return repl.Batch{}, f.endErr
		}
		return b, nil
	case <-f.done:
		return repl.Batch{}, repl.ErrStreamClosed
	}
}

func (f *fakeSource) Released() uint64     { return f.released.Load() }
func (f *fakeSource) PendingBytes() uint64 { return uint64(len(f.ch)) }
func (f *fakeSource) Unpin()               {}
func (f *fakeSource) Close()               { f.once.Do(func() { close(f.done) }) }

// testBlob is the stand-in snapshot stream for transport-level tests:
// the handoff property under test is only that the bootstrap reader
// consumes exactly its bytes and the live phase resumes after them.
var testBlob = []byte("snapshot-bootstrap-stand-in!")

func testServer(t *testing.T, src func() BatchSource, anchor uint64, cfg Config) *Server {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Bootstrap = func(w io.Writer) (BatchSource, uint64, error) {
		if _, err := w.Write(testBlob); err != nil {
			return nil, 0, err
		}
		return src(), anchor, nil
	}
	s := Serve(lis, cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func blobBootstrap(anchor uint64) func(io.Reader) (uint64, error) {
	return func(r io.Reader) (uint64, error) {
		got := make([]byte, len(testBlob))
		if _, err := io.ReadFull(r, got); err != nil {
			return 0, err
		}
		if !bytes.Equal(got, testBlob) {
			return 0, errors.New("bootstrap blob mismatch")
		}
		return anchor, nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func entry(epoch uint64, shard int, op core.ChangeOp, k, v string) repl.Entry {
	return repl.Entry{Op: op, Epoch: epoch, Shard: shard, Key: []byte(k), Val: []byte(v)}
}

func TestBatchWireRoundtrip(t *testing.T) {
	big := bytes.Repeat([]byte("v"), 100<<10) // forces multi-chunk splits
	b := repl.Batch{
		Epoch: 42,
		Entries: []repl.Entry{
			entry(40, 0, core.ChangePut, "a", "1"),
			entry(41, 3, core.ChangePut, "big0", string(big)),
			entry(41, 1, core.ChangeDelete, "gone", ""),
			entry(42, 2, core.ChangePut, "big1", string(big)),
			entry(42, 0, core.ChangePut, "big2", string(big)),
			entry(42, 5, core.ChangePut, "z", "tail"),
		},
	}
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	mcw := newMconn(srv)
	done := make(chan error, 1)
	go func() {
		if _, err := mcw.writeBatch(b, 0); err != nil {
			done <- err
			return
		}
		done <- mcw.flush()
	}()
	mcr := newMconn(cli)
	var got []repl.Entry
	chunks := 0
	for {
		kind, p, err := mcr.readMsg()
		if err != nil {
			t.Fatal(err)
		}
		if kind != msgBatch {
			t.Fatalf("kind = %d, want batch", kind)
		}
		ck, err := parseBatch(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Horizon != 42 {
			t.Fatalf("horizon = %d, want 42", ck.Horizon)
		}
		chunks++
		for _, e := range ck.Entries {
			got = append(got, repl.Entry{Op: e.Op, Epoch: e.Epoch, Shard: e.Shard,
				Key: append([]byte(nil), e.Key...), Val: append([]byte(nil), e.Val...)})
		}
		if ck.Final {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if chunks < 2 {
		t.Fatalf("chunks = %d, want a multi-chunk split", chunks)
	}
	if len(got) != len(b.Entries) {
		t.Fatalf("entries = %d, want %d", len(got), len(b.Entries))
	}
	for i := range got {
		w := b.Entries[i]
		if got[i].Op != w.Op || got[i].Epoch != w.Epoch || got[i].Shard != w.Shard ||
			!bytes.Equal(got[i].Key, w.Key) || !bytes.Equal(got[i].Val, w.Val) {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestMessageMalformed(t *testing.T) {
	// A valid heartbeat message to mutate.
	valid := func() []byte {
		var b bytes.Buffer
		mc := &mconn{bw: bufio.NewWriter(&b)}
		if err := mc.writeMsg(msgHeartbeat, appendHeartbeat(nil, 7, 9)); err != nil {
			t.Fatal(err)
		}
		if err := mc.flush(); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad crc", func(b []byte) []byte { b[9] ^= 0xFF; return b }},
		{"flipped payload", func(b []byte) []byte { b[msgHdrBytes] ^= 0xFF; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:msgHdrBytes+4] }},
		{"huge length", func(b []byte) []byte {
			b[5], b[6], b[7], b[8] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mutate(append([]byte(nil), valid...))
			mc := &mconn{br: bufio.NewReader(bytes.NewReader(in))}
			if _, _, err := mc.readMsg(); !errors.Is(err, ErrBadMessage) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("err = %v, want ErrBadMessage or unexpected EOF", err)
			}
		})
	}
}

func TestServerClientStream(t *testing.T) {
	src := newFakeSource()
	rtt := &obs.Histogram{}
	s := testServer(t, func() BatchSource { return src }, 5, Config{
		Heartbeat: 10 * time.Millisecond,
		RTT:       rtt,
	})

	var mu sync.Mutex
	applied := map[string]string{}
	var watermark uint64
	c := Dial(ClientConfig{
		Addr:      s.Addr().String(),
		ID:        "f1",
		Bootstrap: blobBootstrap(5),
		Apply: func(horizon uint64, final bool, ents []repl.Entry) error {
			mu.Lock()
			defer mu.Unlock()
			for _, e := range ents {
				if e.Epoch <= 5 {
					return fmt.Errorf("entry at epoch %d leaked below the anchor", e.Epoch)
				}
				if e.Op == core.ChangeDelete {
					delete(applied, string(e.Key))
				} else {
					applied[string(e.Key)] = string(e.Val)
				}
			}
			if final {
				watermark = horizon
			}
			return nil
		},
		DeadAfter: 500 * time.Millisecond,
		Seed:      1,
	})
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.AppliedEpoch(); got != 5 {
		t.Fatalf("anchor applied = %d, want 5", got)
	}

	// A batch that overlaps the anchor: epochs ≤ 5 must be filtered out.
	src.push(repl.Batch{Epoch: 6, Entries: []repl.Entry{
		entry(5, 0, core.ChangePut, "stale", "snapshot-owned"),
		entry(6, 0, core.ChangePut, "k1", "v1"),
	}})
	src.push(repl.Batch{Epoch: 7, Entries: []repl.Entry{
		entry(7, 1, core.ChangePut, "k2", "v2"),
		entry(7, 0, core.ChangeDelete, "k1", ""),
	}})
	waitFor(t, "batches applied", func() bool { return c.AppliedEpoch() == 7 })
	mu.Lock()
	if watermark != 7 || applied["k2"] != "v2" {
		mu.Unlock()
		t.Fatalf("watermark = %d applied = %v", watermark, applied)
	}
	if _, ok := applied["k1"]; ok {
		mu.Unlock()
		t.Fatal("delete not applied")
	}
	if _, ok := applied["stale"]; ok {
		mu.Unlock()
		t.Fatal("entry below the anchor applied")
	}
	mu.Unlock()

	// Acks propagate the applied epoch back into the peer's status, and
	// heartbeats measure RTT.
	waitFor(t, "peer ack", func() bool {
		st, ok := s.PeerStatus("f1")
		return ok && st.AckedEpoch == 7
	})
	waitFor(t, "rtt sample", func() bool { return rtt.Count() > 0 })
	if c.LagEpochs() != 0 {
		t.Fatalf("lag = %d, want 0", c.LagEpochs())
	}
}

func TestCleanCloseDrainsFinalEpoch(t *testing.T) {
	src := newFakeSource()
	s := testServer(t, func() BatchSource { return src }, 1, Config{Heartbeat: 10 * time.Millisecond})

	var gotBye atomic.Bool
	var final atomic.Uint64
	c := Dial(ClientConfig{
		Addr:      s.Addr().String(),
		ID:        "f1",
		Bootstrap: blobBootstrap(1),
		Apply: func(horizon uint64, fin bool, ents []repl.Entry) error {
			if fin {
				final.Store(horizon)
			}
			return nil
		},
		DeadAfter: 500 * time.Millisecond,
		Seed:      1,
	})
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Queue the final epoch and close the stream before the client has
	// acked: the sender must drain the queue, then say a clean goodbye.
	src.push(repl.Batch{Epoch: 2, Entries: []repl.Entry{entry(2, 0, core.ChangePut, "last", "one")}})
	src.end(repl.ErrStreamClosed)
	s.Drain(5 * time.Second)
	// Drain returns once the server side has flushed; the client applies
	// asynchronously, so wait for the final epoch to land.
	waitFor(t, "final epoch applied", func() bool { return final.Load() == 2 })
	waitFor(t, "clean bye", func() bool {
		gotBye.Store(errors.Is(c.Err(), ErrPrimaryClosed))
		return gotBye.Load()
	})
}

func TestReconnectAndDuplicateKick(t *testing.T) {
	var srcs []*fakeSource
	var smu sync.Mutex
	s := testServer(t, func() BatchSource {
		smu.Lock()
		defer smu.Unlock()
		src := newFakeSource()
		srcs = append(srcs, src)
		return src
	}, 3, Config{Heartbeat: 10 * time.Millisecond, DeadAfter: 100 * time.Millisecond})

	c := Dial(ClientConfig{
		Addr:       s.Addr().String(),
		ID:         "f1",
		Bootstrap:  blobBootstrap(3),
		Apply:      func(uint64, bool, []repl.Entry) error { return nil },
		DeadAfter:  200 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Seed:       1,
	})
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Lose the stream server-side: the peer says bye(lost) and the
	// client must come back with a fresh bootstrap on its own.
	smu.Lock()
	srcs[0].end(repl.ErrStreamLost)
	smu.Unlock()
	waitFor(t, "reconnect bootstrap", func() bool {
		smu.Lock()
		defer smu.Unlock()
		return len(srcs) >= 2 && c.Connected()
	})
	if c.Reconnects() == 0 {
		t.Fatal("reconnects = 0 after a lost stream")
	}

	// A second client with the same id kicks the first connection.
	c2 := Dial(ClientConfig{
		Addr:      s.Addr().String(),
		ID:        "f1",
		Bootstrap: blobBootstrap(3),
		Apply:     func(uint64, bool, []repl.Entry) error { return nil },
		DeadAfter: 200 * time.Millisecond,
		Seed:      2,
	})
	defer c2.Close()
	if err := c2.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "duplicate kick", func() bool { return s.Stats().Kicked >= 1 })
}

// TestSlowBootstrapSurvivesAckDeadline is the regression for the
// bootstrap/deadline interaction: the follower sends no ack until the
// first post-bootstrap heartbeat, so a bootstrap longer than DeadAfter
// must not read as a dead peer — the old behavior killed the peer right
// after a successful bootstrap and the follower re-bootstrapped forever.
func TestSlowBootstrapSurvivesAckDeadline(t *testing.T) {
	src := newFakeSource()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var boots atomic.Int64
	s := Serve(lis, Config{
		Heartbeat: 10 * time.Millisecond,
		DeadAfter: 50 * time.Millisecond,
		Bootstrap: func(w io.Writer) (BatchSource, uint64, error) {
			boots.Add(1)
			time.Sleep(250 * time.Millisecond) // a snapshot scan ≫ DeadAfter
			if _, err := w.Write(testBlob); err != nil {
				return nil, 0, err
			}
			return src, 1, nil
		},
	})
	t.Cleanup(func() { s.Close() })

	c := Dial(ClientConfig{
		Addr:      s.Addr().String(),
		ID:        "slow",
		Bootstrap: blobBootstrap(1),
		Apply:     func(uint64, bool, []repl.Entry) error { return nil },
		DeadAfter: time.Second,
		Seed:      1,
	})
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Stay connected through several DeadAfter windows: the ack clock must
	// have restarted after the bootstrap.
	time.Sleep(250 * time.Millisecond)
	if !c.Connected() {
		t.Fatalf("follower disconnected after slow bootstrap: %v", c.Err())
	}
	if n := boots.Load(); n != 1 {
		t.Fatalf("bootstraps = %d, want 1 (re-bootstrap loop)", n)
	}
	if st := s.Stats(); st.Peers != 1 || st.PeerErrs != 0 {
		t.Fatalf("peers = %d peerErrs = %d, want 1 live peer and no errors", st.Peers, st.PeerErrs)
	}
}

// TestWriteBatchExtendsDeadlinePerChunk pins the liveness contract of a
// multi-chunk batch write: the deadline covers each chunk, not the whole
// batch, so a transfer slower than one deadline still succeeds as long
// as every chunk makes progress.
func TestWriteBatchExtendsDeadlinePerChunk(t *testing.T) {
	const chunkDeadline = 300 * time.Millisecond
	big := bytes.Repeat([]byte("v"), 100<<10)
	b := repl.Batch{Epoch: 9}
	for i := 0; i < 12; i++ { // ~1.2MB → several chunks, ~19 64KB slabs
		b.Entries = append(b.Entries, entry(9, 0, core.ChangePut, fmt.Sprintf("k%02d", i), string(big)))
	}

	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	go func() { // drain slowly: the whole batch takes ≫ one deadline
		buf := make([]byte, 64<<10)
		for {
			time.Sleep(30 * time.Millisecond)
			if _, err := io.ReadFull(cli, buf); err != nil {
				return
			}
		}
	}()

	mc := newMconn(srv)
	start := time.Now()
	if _, err := mc.writeBatch(b, chunkDeadline); err != nil {
		t.Fatalf("writeBatch: %v", err)
	}
	if err := mc.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if took := time.Since(start); took < chunkDeadline {
		t.Fatalf("batch transferred in %v; too fast to exercise deadline renewal (< %v)", took, chunkDeadline)
	}
}

// TestDefaultIDStableAcrossReconnects checks an unnamed client presents
// one identity for its whole lifetime: an id derived per connection (the
// old local-address default) made the primary's seen-id registries grow
// without bound and defeated same-id stale-connection kicking.
func TestDefaultIDStableAcrossReconnects(t *testing.T) {
	var srcs []*fakeSource
	var smu sync.Mutex
	s := testServer(t, func() BatchSource {
		smu.Lock()
		defer smu.Unlock()
		src := newFakeSource()
		srcs = append(srcs, src)
		return src
	}, 1, Config{Heartbeat: 10 * time.Millisecond})

	c := Dial(ClientConfig{
		Addr:       s.Addr().String(), // ID deliberately empty
		Bootstrap:  blobBootstrap(1),
		Apply:      func(uint64, bool, []repl.Entry) error { return nil },
		DeadAfter:  500 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Seed:       1,
	})
	defer c.Close()
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	peerID := func() string {
		ps := s.PeersSnapshot()
		if len(ps) != 1 {
			return ""
		}
		return ps[0].ID
	}
	var id1 string
	waitFor(t, "first session registered", func() bool { id1 = peerID(); return id1 != "" })

	// Lose the stream; the client reconnects as a fresh session.
	smu.Lock()
	srcs[0].end(repl.ErrStreamLost)
	smu.Unlock()
	waitFor(t, "reconnect bootstrap", func() bool {
		smu.Lock()
		defer smu.Unlock()
		return len(srcs) >= 2 && c.Connected()
	})
	var id2 string
	waitFor(t, "second session registered", func() bool { id2 = peerID(); return id2 != "" })
	if id1 != id2 {
		t.Fatalf("default id changed across reconnects: %q then %q", id1, id2)
	}
}

func TestPeerDeadlineTeardown(t *testing.T) {
	src := newFakeSource()
	s := testServer(t, func() BatchSource { return src }, 1, Config{
		Heartbeat: 10 * time.Millisecond,
		DeadAfter: 60 * time.Millisecond,
	})

	// A raw conn that handshakes and bootstraps but never acks: the
	// server must declare it dead within the deadline and tear it down.
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	mc := newMconn(nc)
	if err := mc.writeMsg(msgHello, appendHello(nil, "mute")); err != nil {
		t.Fatal(err)
	}
	if err := mc.flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mc.readMsg(); err != nil { // welcome
		t.Fatal(err)
	}
	if _, err := io.ReadFull(mc.br, make([]byte, len(testBlob))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peer registered", func() bool { return s.Stats().Peers == 1 })
	waitFor(t, "dead peer torn down", func() bool { return s.Stats().Peers == 0 })
}
