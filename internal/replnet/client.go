package replnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/obs"
	"incll/internal/repl"
)

// ClientConfig parameterizes a follower-side Client. Addr, Bootstrap,
// and Apply are required.
type ClientConfig struct {
	// Addr is the primary's replication address ("host:port").
	Addr string
	// ID identifies this follower to the primary; a reconnect with the
	// same id kicks the stale previous connection. Defaults to a stable
	// per-client identity (hostname plus a random tag) — every session of
	// one Client presents the same id, so the primary's per-peer
	// bookkeeping stays bounded across reconnects and stale-connection
	// kicking works for unnamed followers too.
	ID string

	// Dial overrides how the connection is made (tests inject partitions
	// here). Default: net.DialTimeout("tcp", Addr, DialTimeout).
	Dial        func(addr string, timeout time.Duration) (net.Conn, error)
	DialTimeout time.Duration // default 5s

	// Bootstrap consumes the raw snapshot stream from r (repl.Restore
	// reads exactly to the end frame, no further) and returns the anchor
	// epoch the new follower state is exact at. Called once per
	// (re)connect; every session starts from a fresh snapshot because
	// the primary's change journal cannot replay from an arbitrary past
	// epoch.
	Bootstrap func(r io.Reader) (anchor uint64, err error)

	// Apply applies one batch chunk's entries (already filtered to
	// epochs above the session anchor) and, on final chunks, commits:
	// the follower's durable state advances only at released-batch
	// boundaries. Entries alias the read buffer; Apply must not retain
	// them past its return.
	Apply func(horizon uint64, final bool, entries []repl.Entry) error

	// DeadAfter is how long the connection may go silent (no batch, no
	// heartbeat) before the primary is declared dead and the session is
	// torn down for a reconnect (default 2s). The primary's heartbeat
	// interval must be comfortably below it.
	DeadAfter time.Duration

	// BootstrapTimeout bounds one snapshot restore (default 2 minutes).
	BootstrapTimeout time.Duration

	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms / 2s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	Seed int64

	// Trace receives follower lifecycle events.
	Trace *obs.Tracer
	// Logf, if set, receives session lifecycle log lines.
	Logf func(format string, args ...any)
}

func (c *ClientConfig) setDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 2 * time.Minute
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// Client is the follower side of the replication transport: it dials the
// primary, bootstraps through Bootstrap, applies the live batch stream
// through Apply, and reconnects forever with jittered exponential
// backoff — a lost stream, a dead primary, or a clean primary shutdown
// all lead back to dialing, so a follower left running rejoins a
// restarted or promoted primary at that address on its own.
type Client struct {
	cfg ClientConfig
	rng *rand.Rand // owned by the run goroutine

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	connMu sync.Mutex
	conn   net.Conn // live session conn; closed by Close to unblock I/O

	ready     chan struct{} // closed after the first successful bootstrap
	readyOnce sync.Once

	connected  atomic.Bool
	applied    atomic.Uint64
	released   atomic.Uint64 // primary's released horizon, from heartbeats
	reconnects atomic.Int64
	downSince  atomic.Int64 // unix nanos the primary became unreachable; 0 when up

	errMu   sync.Mutex
	lastErr error
}

// Dial starts a client. It returns immediately; use WaitReady to block
// until the first bootstrap completes.
func Dial(cfg ClientConfig) *Client {
	cfg.setDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	if c.cfg.ID == "" {
		c.cfg.ID = defaultID(c.rng)
	}
	c.downSince.Store(time.Now().UnixNano())
	go c.run()
	return c
}

// defaultID derives a stable identity for a client whose config named
// none: one fixed id per Client, reused by every reconnect. An ephemeral
// per-connection id (the old local-address default) made the primary's
// seen-id registries grow without bound under reconnect churn and never
// matched for stale-connection kicking.
func defaultID(rng *rand.Rand) string {
	host, _ := os.Hostname()
	if host == "" {
		host = "follower"
	}
	if len(host) > 64 {
		host = host[:64]
	}
	return fmt.Sprintf("%s-%08x", host, rng.Uint32())
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Close stops the client: the current session conn is closed to unblock
// any pending I/O and the run loop is joined. Idempotent.
func (c *Client) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.connMu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.connMu.Unlock()
	})
	<-c.done
}

// WaitReady blocks until the first bootstrap has completed (the follower
// is serving at some anchor epoch) or the timeout elapses, returning the
// last session error on timeout.
func (c *Client) WaitReady(timeout time.Duration) error {
	select {
	case <-c.ready:
		return nil
	case <-c.stop:
		return errors.New("replnet: client closed")
	case <-time.After(timeout):
		if err := c.Err(); err != nil {
			return fmt.Errorf("replnet: not ready after %v: %w", timeout, err)
		}
		return fmt.Errorf("replnet: not ready after %v", timeout)
	}
}

// Connected reports whether a live session is currently streaming.
func (c *Client) Connected() bool { return c.connected.Load() }

// AppliedEpoch returns the follower's applied watermark: the last
// released epoch fully applied and committed this session (the bootstrap
// anchor right after a (re)connect).
func (c *Client) AppliedEpoch() uint64 { return c.applied.Load() }

// PrimaryReleased returns the primary's released horizon as last heard
// (batches and heartbeats both advance it).
func (c *Client) PrimaryReleased() uint64 { return c.released.Load() }

// LagEpochs returns how many released epochs the follower still trails
// the primary's last-heard horizon by.
func (c *Client) LagEpochs() uint64 {
	r, a := c.released.Load(), c.applied.Load()
	if r > a {
		return r - a
	}
	return 0
}

// Reconnects counts session ends (including failed dials): the number of
// times the client has had to back off and retry.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// DownFor reports how long the primary has been unreachable (0 while a
// session is live). Failover policies watch this: a follower past its
// promotion deadline stops following and is promoted.
func (c *Client) DownFor() time.Duration {
	since := c.downSince.Load()
	if since == 0 {
		return 0
	}
	return time.Since(time.Unix(0, since))
}

// Err returns the most recent session error (nil while the first session
// is still being established or after a clean session).
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.lastErr
}

func (c *Client) setErr(err error) {
	c.errMu.Lock()
	c.lastErr = err
	c.errMu.Unlock()
}

// run is the reconnect loop: each session failure backs off with full
// jitter (uniform in [backoff/2, backoff)), doubling up to BackoffMax; a
// session that reached streaming resets the backoff.
func (c *Client) run() {
	defer close(c.done)
	backoff := c.cfg.BackoffMin
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		streamed, err := c.session()
		if err != nil {
			c.setErr(err)
		}
		c.connected.Store(false)
		c.downSince.CompareAndSwap(0, time.Now().UnixNano())
		select {
		case <-c.stop:
			return
		default:
		}
		c.reconnects.Add(1)
		if streamed {
			backoff = c.cfg.BackoffMin
		}
		sleep := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		c.logf("replnet: session to %s ended (%v); reconnecting in %v", c.cfg.Addr, err, sleep)
		select {
		case <-c.stop:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
	}
}

// session runs one full connection lifecycle: dial, handshake, snapshot
// bootstrap, then the live stream until something ends it. streamed
// reports whether the session reached the live-streaming phase.
func (c *Client) session() (streamed bool, err error) {
	nc, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	c.connMu.Lock()
	select {
	case <-c.stop:
		c.connMu.Unlock()
		nc.Close()
		return false, errors.New("replnet: client closed")
	default:
	}
	c.conn = nc
	c.connMu.Unlock()
	defer func() {
		c.connMu.Lock()
		c.conn = nil
		c.connMu.Unlock()
		nc.Close()
	}()

	mc := newMconn(nc)

	// Handshake.
	if err := nc.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return false, err
	}
	if err := mc.writeMsg(msgHello, appendHello(nil, c.cfg.ID)); err != nil {
		return false, err
	}
	if err := mc.flush(); err != nil {
		return false, err
	}
	kind, p, err := mc.readMsg()
	if err != nil {
		return false, err
	}
	if kind != msgWelcome {
		return false, fmt.Errorf("%w: expected welcome, got message %d", ErrProtocol, kind)
	}
	released, err := parseWelcome(p)
	if err != nil {
		return false, err
	}
	c.released.Store(released)

	// Bootstrap: the raw snapshot stream, read through the same buffered
	// reader the message parser uses, so the live phase resumes exactly
	// where the snapshot's end frame stopped.
	if err := nc.SetDeadline(time.Now().Add(c.cfg.BootstrapTimeout)); err != nil {
		return false, err
	}
	start := time.Now()
	anchor, err := c.cfg.Bootstrap(mc.br)
	if err != nil {
		return false, fmt.Errorf("replnet: bootstrap: %w", err)
	}
	c.applied.Store(anchor)
	c.connected.Store(true)
	c.downSince.Store(0)
	c.readyOnce.Do(func() { close(c.ready) })
	c.cfg.Trace.Record(obs.EvNetFollowerConnect, -1, anchor, time.Since(start), 0)
	c.logf("replnet: following %s from anchor epoch %d (bootstrap %v)", c.cfg.Addr, anchor, time.Since(start))
	nc.SetDeadline(time.Time{})

	// Live stream.
	var ents []repl.Entry
	for {
		if err := nc.SetReadDeadline(time.Now().Add(c.cfg.DeadAfter)); err != nil {
			return true, err
		}
		kind, p, err := mc.readMsg()
		if err != nil {
			return true, err
		}
		switch kind {
		case msgBatch:
			ck, err := parseBatch(p, ents)
			if err != nil {
				return true, err
			}
			ents = ck.Entries[:0] // recycle the entry scratch
			live := ck.Entries
			if len(live) > 0 && live[0].Epoch <= anchor {
				// Only the first released batch can overlap the snapshot
				// (entries at or below the anchor are baked in).
				kept := live[:0]
				for _, e := range live {
					if e.Epoch > anchor {
						kept = append(kept, e)
					}
				}
				live = kept
			}
			if err := c.cfg.Apply(ck.Horizon, ck.Final, live); err != nil {
				return true, fmt.Errorf("replnet: apply: %w", err)
			}
			if ck.Final {
				c.applied.Store(ck.Horizon)
				if ck.Horizon > c.released.Load() {
					c.released.Store(ck.Horizon)
				}
				if err := c.writeAck(nc, mc, 0); err != nil {
					return true, err
				}
			}
		case msgHeartbeat:
			nonce, rel, err := parseHeartbeat(p)
			if err != nil {
				return true, err
			}
			if rel > c.released.Load() {
				c.released.Store(rel)
			}
			if err := c.writeAck(nc, mc, nonce); err != nil {
				return true, err
			}
		case msgBye:
			if len(p) == 1 && p[0] == byeClosed {
				return true, ErrPrimaryClosed
			}
			return true, ErrStreamLostRemote
		default:
			return true, fmt.Errorf("%w: unexpected message %d from primary", ErrProtocol, kind)
		}
	}
}

func (c *Client) writeAck(nc net.Conn, mc *mconn, nonce int64) error {
	if err := nc.SetWriteDeadline(time.Now().Add(c.cfg.DeadAfter)); err != nil {
		return err
	}
	if err := mc.writeMsg(msgAck, appendAck(nil, nonce, c.applied.Load())); err != nil {
		return err
	}
	return mc.flush()
}
