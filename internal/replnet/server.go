package replnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/obs"
	"incll/internal/repl"
)

// BatchSource is the primary-side feed one peer streams from: a pinned
// change-stream subscription created by the bootstrap callback
// (*repl.Subscription implements it). Next blocks until the next released
// batch; the per-peer collector goroutine owns it.
type BatchSource interface {
	Next() (repl.Batch, error)
	Released() uint64
	PendingBytes() uint64
	Unpin()
	Close()
}

// Config parameterizes a Server. Bootstrap is the only required field.
type Config struct {
	// Bootstrap writes a complete snapshot stream (internal/repl wire
	// format) to w and returns the live change subscription — created
	// before the snapshot scan begins, so nothing slips between snapshot
	// and stream — plus the snapshot's anchor epoch. Called once per
	// accepted follower, concurrently across followers.
	Bootstrap func(w io.Writer) (BatchSource, uint64, error)

	// Released reports the primary's released epoch high-water mark,
	// carried in heartbeats so an idle follower still learns the horizon.
	Released func() uint64

	// Heartbeat is the idle-channel heartbeat interval (default 250ms).
	// DeadAfter is how long a peer may go without acking anything before
	// it is declared dead and torn down (default 4× Heartbeat).
	Heartbeat time.Duration
	DeadAfter time.Duration

	// QueueLen is the per-peer send-queue depth in batches (default 32).
	// A peer whose queue stays full exerts backpressure on its collector,
	// which lags its subscription until the journal budget cuts it
	// (ErrStreamLost) — the hub, not the transport, is the arbiter of
	// how far behind a follower may fall.
	QueueLen int

	// BootstrapTimeout bounds the snapshot write to one follower
	// (default 2 minutes).
	BootstrapTimeout time.Duration

	// OnPeer, if set, is called the first time each distinct peer id
	// connects (used to register per-peer gauges exactly once).
	OnPeer func(id string)

	// Trace receives peer lifecycle events; RTT, if set, receives
	// heartbeat round-trip samples in nanoseconds.
	Trace *obs.Tracer
	RTT   *obs.Histogram

	// Timeline, if set, receives the per-peer stamps of the epoch
	// propagation trace (enqueue, first/final chunk send, ack — see
	// DESIGN.md §15). All stamps are taken here on the primary, so the
	// derived intervals are single-clock and skew-free.
	Timeline *obs.EpochTimeline

	// Logf, if set, receives peer lifecycle log lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4 * c.Heartbeat
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 32
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 2 * time.Minute
	}
}

// PeerStatus is a point-in-time view of one connected follower.
type PeerStatus struct {
	ID          string
	Remote      string
	ConnectedAt time.Time
	AnchorEpoch uint64        // snapshot anchor the peer bootstrapped at
	SentEpoch   uint64        // last batch horizon written to the peer
	AckedEpoch  uint64        // last applied epoch the peer acked
	LagEpochs   uint64        // primary released − acked
	LagBytes    uint64        // released change bytes not yet consumed by this peer
	QueueDepth  int           // batches waiting in the peer's send queue
	SentBytes   int64         // wire payload bytes sent (bootstrap + batches)
	RTT         time.Duration // last heartbeat round trip
	LastAck     time.Time
}

// Stats aggregates a server's lifetime counters.
type Stats struct {
	Peers     int   // currently connected
	Accepts   int64 // connections accepted
	Kicked    int64 // stale duplicate peers replaced by a reconnect
	PeerErrs  int64 // peers torn down on error or deadline
	SentBytes int64 // wire payload bytes sent across all peers ever
}

var errPeerDead = errors.New("replnet: peer missed ack deadline")

// errPeerReplaced tears down a stale connection when the same follower id
// dials again (a half-dead NAT'd conn the old reader hasn't noticed yet).
var errPeerReplaced = errors.New("replnet: peer replaced by reconnect")

// Server accepts follower connections on one listener and streams each a
// snapshot bootstrap followed by the released change batches. Every peer
// owns three goroutines — a collector draining its subscription into the
// send queue, a sender multiplexing queue and heartbeats onto the wire,
// and a reader consuming acks — all tied to one stop channel, so a peer
// tears down exactly once no matter which side fails first.
type Server struct {
	cfg Config
	lis net.Listener

	mu      sync.Mutex
	peers   map[string]*peer // live peers by id (duplicate suppression)
	seen    map[string]bool  // ids ever connected (OnPeer fires once each)
	closed  bool
	stopped chan struct{} // closed when the accept loop exits

	peerWG sync.WaitGroup

	accepts   atomic.Int64
	kicked    atomic.Int64
	peerErrs  atomic.Int64
	sentBytes atomic.Int64
}

// Serve starts accepting followers on lis. The listener is owned by the
// server from here on: Close (and StopAccepting) close it.
func Serve(lis net.Listener, cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:     cfg,
		lis:     lis,
		peers:   make(map[string]*peer),
		seen:    make(map[string]bool),
		stopped: make(chan struct{}),
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer close(s.stopped)
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return // listener closed (StopAccepting / Close)
		}
		s.accepts.Add(1)
		s.peerWG.Add(1)
		go func() {
			defer s.peerWG.Done()
			s.handshake(nc)
		}()
	}
}

// handshake runs the hello/welcome exchange and the snapshot bootstrap,
// then hands the connection to the peer's streaming goroutines.
func (s *Server) handshake(nc net.Conn) {
	mc := newMconn(nc)
	fail := func(err error) {
		s.peerErrs.Add(1)
		s.logf("replnet: handshake with %s failed: %v", nc.RemoteAddr(), err)
		nc.Close()
	}
	if err := nc.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		fail(err)
		return
	}
	kind, p, err := mc.readMsg()
	if err != nil {
		fail(err)
		return
	}
	if kind != msgHello {
		fail(fmt.Errorf("%w: expected hello, got message %d", ErrProtocol, kind))
		return
	}
	id, err := parseHello(p)
	if err != nil {
		fail(err)
		return
	}
	if id == "" {
		id = nc.RemoteAddr().String()
	}

	pe := &peer{
		srv:         s,
		id:          id,
		remote:      nc.RemoteAddr().String(),
		nc:          nc,
		mc:          mc,
		queue:       make(chan repl.Batch, s.cfg.QueueLen),
		srcEnd:      make(chan error, 1),
		stop:        make(chan struct{}),
		readerDone:  make(chan struct{}),
		connectedAt: time.Now(),
	}
	pe.lastAck.Store(pe.connectedAt.UnixNano())
	if !s.register(pe) {
		fail(fmt.Errorf("replnet: server closed"))
		return
	}

	// Welcome, then the snapshot stream, on a bootstrap-sized deadline:
	// a full scan of a large store through one TCP connection takes as
	// long as it takes, but a wedged peer must not pin an exporter.
	err = func() error {
		if err := nc.SetDeadline(time.Now().Add(s.cfg.BootstrapTimeout)); err != nil {
			return err
		}
		if err := mc.writeMsg(msgWelcome, appendWelcome(nil, s.released())); err != nil {
			return err
		}
		src, anchor, err := s.cfg.Bootstrap(mc.bw)
		if err != nil {
			return err
		}
		if !pe.setSrc(src, anchor) {
			return errPeerReplaced
		}
		return mc.flush()
	}()
	if err != nil {
		if src := pe.getSrc(); src != nil {
			src.Close()
		}
		s.unregister(pe)
		fail(err)
		return
	}
	nc.SetDeadline(time.Time{})
	// The follower sends nothing during the bootstrap (its first ack
	// answers the first heartbeat), so the ack deadline starts counting
	// only now — a bootstrap longer than DeadAfter must not read as a
	// dead peer.
	pe.lastAck.Store(time.Now().UnixNano())

	s.cfg.Trace.Record(obs.EvNetPeerUp, -1, pe.anchor, time.Since(pe.connectedAt), int64(len(s.PeersSnapshot())))
	s.logf("replnet: peer %s (%s) bootstrapped at epoch %d", pe.id, pe.remote, pe.anchor)

	s.peerWG.Add(2)
	go func() { defer s.peerWG.Done(); pe.collect() }()
	go func() { defer s.peerWG.Done(); pe.read() }()
	pe.send() // runs on the handshake goroutine; returns at teardown
	s.unregister(pe)
}

func (s *Server) released() uint64 {
	if s.cfg.Released != nil {
		return s.cfg.Released()
	}
	return 0
}

// register installs the peer in the id map, kicking a stale same-id peer.
// Returns false if the server is closed.
func (s *Server) register(pe *peer) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	old := s.peers[pe.id]
	s.peers[pe.id] = pe
	first := !s.seen[pe.id]
	s.seen[pe.id] = true
	s.mu.Unlock()
	if old != nil {
		s.kicked.Add(1)
		s.logf("replnet: peer %s reconnected; kicking stale connection %s", pe.id, old.remote)
		old.kill(errPeerReplaced)
	}
	if first && s.cfg.OnPeer != nil {
		s.cfg.OnPeer(pe.id)
	}
	return true
}

func (s *Server) unregister(pe *peer) {
	s.mu.Lock()
	if s.peers[pe.id] == pe {
		delete(s.peers, pe.id)
	}
	n := len(s.peers)
	s.mu.Unlock()
	s.cfg.Trace.Record(obs.EvNetPeerDown, -1, pe.ackedEpoch.Load(), time.Since(pe.connectedAt), int64(n))
}

// PeersSnapshot returns a point-in-time status of every connected peer.
func (s *Server) PeersSnapshot() []PeerStatus {
	s.mu.Lock()
	peers := make([]*peer, 0, len(s.peers))
	for _, pe := range s.peers {
		peers = append(peers, pe)
	}
	s.mu.Unlock()
	out := make([]PeerStatus, 0, len(peers))
	for _, pe := range peers {
		out = append(out, pe.status())
	}
	return out
}

// PeerStatus returns the status of the peer with the given id, if it is
// currently connected.
func (s *Server) PeerStatus(id string) (PeerStatus, bool) {
	s.mu.Lock()
	pe := s.peers[id]
	s.mu.Unlock()
	if pe == nil {
		return PeerStatus{}, false
	}
	return pe.status(), true
}

// Stats returns the server's aggregate counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.peers)
	s.mu.Unlock()
	return Stats{
		Peers:     n,
		Accepts:   s.accepts.Load(),
		Kicked:    s.kicked.Load(),
		PeerErrs:  s.peerErrs.Load(),
		SentBytes: s.sentBytes.Load(),
	}
}

// StopAccepting closes the listener so no new follower can connect;
// existing peers keep streaming. Idempotent.
func (s *Server) StopAccepting() {
	s.mu.Lock()
	closed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !closed {
		s.lis.Close()
	}
}

// Drain waits up to timeout for every peer to finish on its own — after a
// graceful hub close each peer's subscription ends with ErrStreamClosed,
// its sender flushes the queued (final) batches and a clean bye, and the
// peer exits. Call after releasing the final epoch, before Close, so
// followers receive the complete stream ahead of listener/conn teardown.
func (s *Server) Drain(timeout time.Duration) {
	s.StopAccepting()
	done := make(chan struct{})
	go func() {
		s.peerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}

// Close tears the server down: no new connections, every peer killed,
// all goroutines joined. Idempotent.
func (s *Server) Close() error {
	s.StopAccepting()
	s.mu.Lock()
	peers := make([]*peer, 0, len(s.peers))
	for _, pe := range s.peers {
		peers = append(peers, pe)
	}
	s.mu.Unlock()
	for _, pe := range peers {
		pe.kill(errors.New("replnet: server closed"))
	}
	<-s.stopped
	s.peerWG.Wait()
	return nil
}

// --- peer ------------------------------------------------------------------

// peer is one connected follower's server-side state.
type peer struct {
	srv    *Server
	id     string
	remote string
	nc     net.Conn
	mc     *mconn

	srcMu  sync.Mutex // src is set mid-handshake, read by a concurrent kick
	src    BatchSource
	anchor uint64

	queue  chan repl.Batch // collector → sender
	srcEnd chan error      // collector's terminal subscription error

	stop       chan struct{}
	stopOnce   sync.Once
	closing    atomic.Bool   // set before the goodbye linger; mutes reader errors
	readerDone chan struct{} // closed when the read goroutine exits

	connectedAt time.Time
	sentEpoch   atomic.Uint64
	ackedEpoch  atomic.Uint64
	sentBytes   atomic.Int64
	lastAck     atomic.Int64 // unix nanos of the last ack received
	rttNanos    atomic.Int64
}

// setSrc publishes the bootstrap's subscription. If a concurrent kick
// already tore the peer down, the subscription is closed immediately
// (Subscription.Close is idempotent, so the kill path racing here is
// harmless) and false is returned.
func (pe *peer) setSrc(src BatchSource, anchor uint64) bool {
	pe.srcMu.Lock()
	pe.src = src
	pe.anchor = anchor
	pe.srcMu.Unlock()
	select {
	case <-pe.stop:
		src.Close()
		return false
	default:
		return true
	}
}

func (pe *peer) getSrc() BatchSource {
	pe.srcMu.Lock()
	defer pe.srcMu.Unlock()
	return pe.src
}

// kill tears the peer down exactly once: the stop channel releases the
// sender and collector, and closing the conn releases any blocked I/O.
func (pe *peer) kill(err error) {
	pe.stopOnce.Do(func() {
		if err != nil && !errors.Is(err, errPeerReplaced) {
			pe.srv.peerErrs.Add(1)
		}
		if err != nil {
			pe.srv.logf("replnet: peer %s (%s) down: %v", pe.id, pe.remote, err)
		}
		close(pe.stop)
		pe.nc.Close()
		if src := pe.getSrc(); src != nil {
			src.Close()
		}
	})
}

// collect drains the subscription into the send queue. When the stream
// ends (clean close or lost), the terminal error goes to srcEnd — by
// then every released batch is already in the queue, because Next drains
// the stream before reporting its end.
func (pe *peer) collect() {
	for {
		b, err := pe.src.Next()
		if err != nil {
			pe.srcEnd <- err
			return
		}
		// The enqueue stamp is taken before the (possibly blocking) queue
		// push, so queue_wait includes backpressure from a full queue.
		pe.srv.cfg.Timeline.PeerEnqueue(pe.id, b.Epoch)
		select {
		case pe.queue <- b:
		case <-pe.stop:
			return
		}
	}
}

// send multiplexes the send queue and the heartbeat ticker onto the wire
// and enforces the ack deadline. Runs until teardown. The first heartbeat
// goes out immediately: the follower learns the released horizon right
// after its bootstrap and its ack lands well before the first deadline
// check.
func (pe *peer) send() {
	if err := pe.writeHeartbeat(); err != nil {
		pe.kill(err)
		return
	}
	tick := time.NewTicker(pe.srv.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-pe.stop:
			return
		case b := <-pe.queue:
			if err := pe.writeBatch(b); err != nil {
				pe.kill(err)
				return
			}
		case err := <-pe.srcEnd:
			pe.closing.Store(true)
			pe.drainAndBye(err)
			pe.lingerClose()
			return
		case <-tick.C:
			if time.Since(time.Unix(0, pe.lastAck.Load())) > pe.srv.cfg.DeadAfter {
				pe.kill(errPeerDead)
				return
			}
			if err := pe.writeHeartbeat(); err != nil {
				pe.kill(err)
				return
			}
		}
	}
}

func (pe *peer) writeBatch(b repl.Batch) error {
	// The write deadline is extended per chunk inside mconn.writeBatch: a
	// large batch on a slow link is alive as long as every chunk lands
	// within DeadAfter, however long the whole batch takes. The final
	// flush rides on the last chunk's deadline.
	pe.srv.cfg.Timeline.PeerFirstSend(pe.id, b.Epoch)
	n, err := pe.mc.writeBatch(b, pe.srv.cfg.DeadAfter)
	pe.sentBytes.Add(n)
	pe.srv.sentBytes.Add(n)
	if err != nil {
		return err
	}
	pe.sentEpoch.Store(b.Epoch)
	if err := pe.mc.flush(); err != nil {
		return err
	}
	// Final-send is stamped after the flush: the wire stage ends when the
	// last chunk left this process, and the ack stamp (taken by the read
	// goroutine, possibly racing) only fires for epochs whose final-send
	// stamp exists — a raced ack is swept up by the next heartbeat ack.
	pe.srv.cfg.Timeline.PeerFinalSend(pe.id, b.Epoch)
	return nil
}

func (pe *peer) writeHeartbeat() error {
	if err := pe.nc.SetWriteDeadline(time.Now().Add(pe.srv.cfg.DeadAfter)); err != nil {
		return err
	}
	hb := appendHeartbeat(nil, time.Now().UnixNano(), pe.srcReleased())
	if err := pe.mc.writeMsg(msgHeartbeat, hb); err != nil {
		return err
	}
	return pe.mc.flush()
}

// srcReleased prefers the subscription's released mark (exact for this
// peer's stream) and falls back to the server-wide callback.
func (pe *peer) srcReleased() uint64 {
	if src := pe.getSrc(); src != nil {
		return src.Released()
	}
	return pe.srv.released()
}

// drainAndBye flushes whatever the collector queued before the stream
// ended — on a clean close that includes the final epoch — then says
// goodbye with the stream's fate so the follower knows whether to wait
// or re-bootstrap.
func (pe *peer) drainAndBye(srcErr error) {
	for {
		select {
		case b := <-pe.queue:
			if err := pe.writeBatch(b); err != nil {
				return
			}
		default:
			reason := byte(byeLost)
			if errors.Is(srcErr, repl.ErrStreamClosed) {
				reason = byeClosed
			}
			pe.nc.SetWriteDeadline(time.Now().Add(pe.srv.cfg.DeadAfter))
			if err := pe.mc.writeMsg(msgBye, []byte{reason}); err == nil {
				pe.mc.flush()
			}
			return
		}
	}
}

// lingerClose ends a goodbye'd session without a TCP reset: a bare
// Close with unread acks in the receive buffer would RST the connection
// and destroy the final batch + bye still in flight to the follower.
// Instead, half-close the write side (FIN after the bye) and wait for
// the reader to see the follower's EOF — the follower reads the
// complete stream, closes, and only then does the full close run.
func (pe *peer) lingerClose() {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := pe.nc.(closeWriter); ok {
		cw.CloseWrite()
	}
	linger := pe.srv.cfg.DeadAfter
	if linger < 2*time.Second {
		linger = 2 * time.Second
	}
	select {
	case <-pe.readerDone:
	case <-time.After(linger):
	case <-pe.stop:
	}
	pe.kill(nil)
}

// read consumes acks, updating liveness, applied-epoch, and RTT state.
func (pe *peer) read() {
	defer close(pe.readerDone)
	for {
		kind, p, err := pe.mc.readMsg()
		if err != nil {
			if pe.closing.Load() {
				return // goodbye linger: EOF (or any error) is the expected end
			}
			select {
			case <-pe.stop: // teardown already under way; expected error
			default:
				pe.kill(err)
			}
			return
		}
		if kind != msgAck {
			pe.kill(fmt.Errorf("%w: unexpected message %d from follower", ErrProtocol, kind))
			return
		}
		nonce, applied, err := parseAck(p)
		if err != nil {
			pe.kill(err)
			return
		}
		pe.lastAck.Store(time.Now().UnixNano())
		pe.ackedEpoch.Store(applied)
		pe.srv.cfg.Timeline.PeerAck(pe.id, applied)
		if nonce != 0 {
			rtt := time.Now().UnixNano() - nonce
			if rtt >= 0 {
				pe.rttNanos.Store(rtt)
				if h := pe.srv.cfg.RTT; h != nil {
					h.Record(rtt)
				}
			}
		}
	}
}

func (pe *peer) status() PeerStatus {
	pe.srcMu.Lock()
	src, anchor := pe.src, pe.anchor
	pe.srcMu.Unlock()
	st := PeerStatus{
		ID:          pe.id,
		Remote:      pe.remote,
		ConnectedAt: pe.connectedAt,
		AnchorEpoch: anchor,
		SentEpoch:   pe.sentEpoch.Load(),
		AckedEpoch:  pe.ackedEpoch.Load(),
		QueueDepth:  len(pe.queue),
		SentBytes:   pe.sentBytes.Load(),
		RTT:         time.Duration(pe.rttNanos.Load()),
		LastAck:     time.Unix(0, pe.lastAck.Load()),
	}
	if src != nil {
		st.LagBytes = src.PendingBytes()
		if rel := src.Released(); rel > st.AckedEpoch {
			st.LagEpochs = rel - st.AckedEpoch
		}
	}
	return st
}
