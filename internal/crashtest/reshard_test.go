package crashtest

import "testing"

// TestReshardCrashProperty is the acceptance property for online elastic
// resharding: a live DB under concurrent single-key and transactional
// write load, with the reshard aborted at every protocol point in
// rotation and a power failure injected afterwards, must always recover
// entirely on one side of the cutover — the donor topology before the
// manifest commit, the target at or after it — with zero lost or
// duplicated keys and no torn transaction.
func TestReshardCrashProperty(t *testing.T) {
	cases := []ReshardConfig{
		{From: 4, To: 8}, // split
		{From: 8, To: 4}, // merge
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, cfg := range cases {
		if err := RunReshard(cfg, 11); err != nil {
			t.Fatalf("%d→%d: %v", cfg.From, cfg.To, err)
		}
	}
}

// TestReshardCrashPropertyFromUnsharded covers the 1→N expansion: an
// unsharded donor reshards into a cluster under the same crash matrix.
func TestReshardCrashPropertyFromUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestReshardCrashProperty in short mode")
	}
	if err := RunReshard(ReshardConfig{From: 1, To: 4, Workers: 1}, 13); err != nil {
		t.Fatal(err)
	}
}
