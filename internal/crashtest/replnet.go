package crashtest

// Networked replication crash campaign: a TCP primary with two live
// followers under concurrent write load, killed at every streaming-
// protocol point, with connections dropped and partitioned mid-batch.
// The invariants extend the in-process campaign's (see repl.go) across
// the wire:
//
//  1. Prefix exactness. After any crash, cut, or partition, every
//     follower's store equals the primary's committed state at the
//     follower's applied watermark, exactly — a torn connection or a
//     truncated bootstrap never leaves a follower between epochs.
//
//  2. Failover convergence. Promoting a follower yields a serving
//     primary; the surviving follower and the recovered old primary
//     rejoin it (each a fresh bootstrap — the journal cannot replay the
//     past) and converge byte-identical in both iteration directions.
//
// The committed reference states come from the same verifier
// subscription repl.go uses: it reconstructs the exact committed state
// at every released epoch, so "exact at watermark E" is checked against
// ground truth, not against the primary's possibly-further state.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incll"
)

// ReplnetConfig parameterizes one networked replication crash campaign.
type ReplnetConfig struct {
	// Shards is the primary's shard count; FollowerShards the followers'
	// (0 = same — restores route by key, so they need not match).
	Shards         int
	FollowerShards int
	// Workers / KeysPerWorker / OpsPerBurst shape the write load, as in
	// ReplConfig.
	Workers       int
	KeysPerWorker int
	OpsPerBurst   int
	// Rounds is the number of crash/failover cycles; each cycles to the
	// next snapshot protocol point for its mid-bootstrap kill.
	Rounds int
	// PersistFraction is the probability a dirty line survives each
	// primary crash.
	PersistFraction float64
}

func (c *ReplnetConfig) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.FollowerShards <= 0 {
		c.FollowerShards = c.Shards
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.KeysPerWorker <= 0 {
		c.KeysPerWorker = 300
	}
	if c.OpsPerBurst <= 0 {
		c.OpsPerBurst = 400
	}
	if c.Rounds <= 0 {
		c.Rounds = len(snapPoints)
	}
	if c.PersistFraction == 0 {
		c.PersistFraction = 0.5
	}
}

// chaosListener wraps a listener so the campaign can sever every live
// connection on demand — the wire-level stand-in for a network
// partition or a dropped TCP session, injectable mid-batch because the
// cut happens while the stream goroutines are writing.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	cuts  atomic.Int64
}

func newChaosListener(l net.Listener) *chaosListener {
	return &chaosListener{Listener: l, conns: make(map[net.Conn]struct{})}
}

func (cl *chaosListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cc := &chaosConn{Conn: c, cl: cl}
	cl.mu.Lock()
	cl.conns[cc] = struct{}{}
	cl.mu.Unlock()
	return cc, nil
}

// cutAll severs every live connection (both directions, no FIN
// ordering — the kernel's RST is the point).
func (cl *chaosListener) cutAll() int {
	cl.mu.Lock()
	conns := make([]net.Conn, 0, len(cl.conns))
	for c := range cl.conns {
		conns = append(conns, c)
	}
	cl.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	cl.cuts.Add(int64(len(conns)))
	return len(conns)
}

type chaosConn struct {
	net.Conn
	cl   *chaosListener
	once sync.Once
}

func (c *chaosConn) Close() error {
	c.once.Do(func() {
		c.cl.mu.Lock()
		delete(c.cl.conns, c)
		c.cl.mu.Unlock()
	})
	return c.Conn.Close()
}

// followNet starts a follower of addr with campaign-friendly timeouts.
// The follower opens with the full worker count: a promoted follower
// becomes the next round's primary and must serve every load handle.
func followNet(addr string, cfg ReplnetConfig, id string) (*incll.Follower, error) {
	return incll.FollowPrimary(addr, incll.FollowerOptions{
		Options:      incll.Options{Shards: cfg.FollowerShards, Workers: cfg.Workers + 1},
		ID:           id,
		DeadAfter:    500 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
		ReadyTimeout: 30 * time.Second,
	})
}

// serveNet serves db's replication stream on a fresh loopback listener
// behind a chaosListener.
func serveNet(db *incll.DB) (*incll.ReplServer, *chaosListener, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	cl := newChaosListener(lis)
	rs, err := db.ServeReplication(cl, incll.ReplServerOptions{
		Heartbeat: 20 * time.Millisecond,
		DeadAfter: 10 * time.Second, // the campaign cuts conns itself; no spurious deadline kills
	})
	if err != nil {
		lis.Close()
		return nil, nil, err
	}
	return rs, cl, nil
}

// waitWatermarks blocks until every follower applied at least epoch e.
func waitWatermarks(e uint64, fs ...*incll.Follower) error {
	for _, f := range fs {
		if err := f.WaitWatermark(e, 30*time.Second); err != nil {
			return err
		}
	}
	return nil
}

// waitDown blocks until the follower has noticed its primary is gone.
func waitDown(f *incll.Follower) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if down, _ := f.Down(); down && !f.Connected() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("follower never observed the dead primary")
}

// checkExactPrefix verifies a quiesced follower holds the exact
// committed state at its applied watermark.
func checkExactPrefix(f *incll.Follower, ver *verifier, who string) error {
	applied := f.AppliedEpoch()
	want, ok := ver.at(applied)
	if !ok {
		return fmt.Errorf("%s applied epoch %d, which the verifier never saw (base..%d)", who, applied, ver.upTo)
	}
	if d := diffModels(dbState(f.DB()), want, who, fmt.Sprintf("committed state at epoch %d", applied)); d != "" {
		return fmt.Errorf("%s is not an exact committed prefix: %s", who, d)
	}
	return nil
}

// RunReplnet executes one networked replication crash campaign. Each
// round: two live followers converge over TCP under load; a transient
// third follower's bootstrap is killed at the round's snapshot protocol
// point (the truncated stream must never restore — the client retries
// into a clean bootstrap); the primary is then crashed mid-load, both
// followers are checked to be exact committed prefixes, one is promoted,
// and the survivor plus the recovered old primary rejoin the new
// primary and must converge byte-identical in both directions.
func RunReplnet(cfg ReplnetConfig, seed int64) (err error) {
	cfg.setDefaults()
	primary, _ := incll.Open(incll.Options{Shards: cfg.Shards, Workers: cfg.Workers + 1})
	defer func() { err = dumpTraceOnFailure("replnet", seed, primary.DumpTrace, err) }()

	ver := newVerifier(primary, model{})

	burst := func(db *incll.DB, r int) {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed ^ int64(r*1000+w)))
				h := db.Handle(w)
				for i := 0; i < cfg.OpsPerBurst; i++ {
					kn := rng.Intn(cfg.KeysPerWorker)
					key := []byte(fmt.Sprintf("w%02d/key/%05d", w, kn))
					switch rng.Intn(10) {
					case 0:
						h.Delete(key)
					case 1:
						if _, err := h.PutBytes(key, make([]byte, 16+rng.Intn(200))); err != nil {
							panic(err)
						}
					default:
						h.Put(key, uint64(rng.Intn(1<<30)))
					}
				}
			}(w)
		}
		wg.Wait()
	}

	for round := 0; round < cfg.Rounds; round++ {
		point := snapPoints[round%len(snapPoints)]

		rs, _, err := serveNet(primary)
		if err != nil {
			return fmt.Errorf("round %d: serve: %w", round, err)
		}
		addr := rs.Addr().String()
		f1, err := followNet(addr, cfg, "f1")
		if err != nil {
			return fmt.Errorf("round %d: follow f1: %w", round, err)
		}
		f2, err := followNet(addr, cfg, "f2")
		if err != nil {
			return fmt.Errorf("round %d: follow f2: %w", round, err)
		}

		// Committed prelude under live streaming.
		for e := 0; e < 2; e++ {
			burst(primary, round*10+e)
			primary.Checkpoint()
			if err := ver.drainReleased(); err != nil {
				return fmt.Errorf("round %d: verifier: %w", round, err)
			}
		}
		rel := primary.ReleasedEpoch()
		if err := waitWatermarks(rel, f1, f2); err != nil {
			return fmt.Errorf("round %d: converge: %w", round, err)
		}
		for i, f := range []*incll.Follower{f1, f2} {
			if err := EqualBothDirections(primary, f.DB()); err != nil {
				return fmt.Errorf("round %d: follower %d diverges at quiesced boundary: %w", round, i+1, err)
			}
		}

		// Kill a bootstrap at this round's snapshot protocol point: the
		// transient follower's first attempt dies there (over the wire the
		// stream just ends — the follower's Restore must reject it), and
		// the retry bootstraps clean. FollowPrimary only returns once a
		// bootstrap succeeded, so reaching here with hits>0 proves the
		// truncated attempt was retried, not restored.
		if point != "" {
			var hits atomic.Int64
			primary.SetSnapshotHook(func(p string) error {
				if p == point && hits.Add(1) == 1 {
					return errAbort
				}
				return nil
			})
			f3, err := followNet(addr, cfg, "f3")
			primary.SetSnapshotHook(nil)
			if err != nil {
				return fmt.Errorf("round %d: follow through aborted bootstrap at %q: %w", round, point, err)
			}
			if hits.Load() == 0 {
				// The point may be unreachable (e.g. no change frame with no
				// concurrent writes); only then is a first-try success fine.
				if point != "changes-frame" {
					return fmt.Errorf("round %d: snapshot hook at %q never fired", round, point)
				}
			} else if f3.Reconnects() == 0 {
				return fmt.Errorf("round %d: bootstrap aborted at %q but the follower never retried", round, point)
			}
			if err := f3.WaitWatermark(primary.ReleasedEpoch(), 30*time.Second); err != nil {
				return fmt.Errorf("round %d: f3 converge: %w", round, err)
			}
			if err := EqualBothDirections(primary, f3.DB()); err != nil {
				return fmt.Errorf("round %d: f3 diverges after retried bootstrap: %w", round, err)
			}
			f3.Close()
		}

		// Doomed phase: concurrent load with periodic checkpoints, then a
		// hard crash mid-stream.
		stop := make(chan struct{})
		var loadWG sync.WaitGroup
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(round*77+13)))
			h := primary.Handle(cfg.Workers)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Put([]byte(fmt.Sprintf("w%02d/key/%05d", i%cfg.Workers, rng.Intn(cfg.KeysPerWorker))), uint64(i)|1<<33)
				if i%200 == 199 {
					primary.Checkpoint()
				}
			}
		}()
		time.Sleep(10 * time.Millisecond) // let some doomed epochs release and stream
		close(stop)
		loadWG.Wait()
		primary.SimulateCrash(cfg.PersistFraction, seed+int64(round))
		ver.drainUntilLost()

		// Invariant 1: both followers stopped on exact committed prefixes.
		for i, f := range []*incll.Follower{f1, f2} {
			if err := waitDown(f); err != nil {
				return fmt.Errorf("round %d: follower %d: %w", round, i+1, err)
			}
			if err := checkExactPrefix(f, ver, fmt.Sprintf("follower %d", i+1)); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
		}

		// Failover: promote f1, serve from it, write through it.
		np, err := f1.Promote()
		if err != nil {
			return fmt.Errorf("round %d: promote: %w", round, err)
		}
		nrs, _, err := serveNet(np)
		if err != nil {
			return fmt.Errorf("round %d: serve promoted: %w", round, err)
		}
		np.Handle(0).Put([]byte(fmt.Sprintf("post-failover/%03d", round)), uint64(round))
		np.Checkpoint()

		// The survivor and the recovered old primary rejoin the new
		// primary — each a fresh bootstrap; the old primary's released-
		// but-undelivered suffix is discarded with its store (the
		// asynchronous-failover contract).
		f2.Close()
		f2b, err := followNet(nrs.Addr().String(), cfg, "f2")
		if err != nil {
			return fmt.Errorf("round %d: rejoin f2: %w", round, err)
		}
		oldDB, _ := primary.Reopen()
		oldF, err := followNet(nrs.Addr().String(), cfg, "old-primary")
		if err != nil {
			return fmt.Errorf("round %d: rejoin old primary: %w", round, err)
		}
		oldDB.Close()

		// Invariant 2: full convergence, byte-identical both directions,
		// in both rejoin directions (old follower of new primary, old
		// primary as follower).
		nrel := np.ReleasedEpoch()
		if err := waitWatermarks(nrel, f2b, oldF); err != nil {
			return fmt.Errorf("round %d: rejoin converge: %w", round, err)
		}
		if err := EqualBothDirections(np, f2b.DB()); err != nil {
			return fmt.Errorf("round %d: survivor diverges after failover: %w", round, err)
		}
		if err := EqualBothDirections(np, oldF.DB()); err != nil {
			return fmt.Errorf("round %d: rejoined old primary diverges: %w", round, err)
		}
		f2b.Close()
		oldF.Close()

		// Next round runs on the promoted primary, verifier rebased on its
		// committed state.
		primary = np
		ver = newVerifier(primary, dbState(primary))
	}
	primary.Close()
	return nil
}

// RunReplnetPartition exercises connection drops and partitions: a
// primary under continuous load with two followers whose connections
// are severed mid-batch, repeatedly — each cut lands while stream
// goroutines are writing, so frames tear at arbitrary byte boundaries.
// After every cut the followers must re-bootstrap and, at the next
// quiesced boundary, again hold exact committed prefixes; at the end
// everything converges byte-identical.
func RunReplnetPartition(cfg ReplnetConfig, seed int64) (err error) {
	cfg.setDefaults()
	primary, _ := incll.Open(incll.Options{Shards: cfg.Shards, Workers: cfg.Workers + 1})
	defer func() { err = dumpTraceOnFailure("replnet-partition", seed, primary.DumpTrace, err) }()

	ver := newVerifier(primary, model{})
	rs, cl, err := serveNet(primary)
	if err != nil {
		return err
	}
	addr := rs.Addr().String()
	f1, err := followNet(addr, cfg, "f1")
	if err != nil {
		return err
	}
	defer f1.Close()
	f2, err := followNet(addr, cfg, "f2")
	if err != nil {
		return err
	}
	defer f2.Close()

	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < cfg.Rounds; round++ {
		// Load with periodic checkpoints, and a partition injected while
		// batches are on the wire.
		stop := make(chan struct{})
		var loadWG sync.WaitGroup
		loadWG.Add(1)
		go func(round int) {
			defer loadWG.Done()
			lrng := rand.New(rand.NewSource(seed ^ int64(round*131+7))) // own rng: the outer one times the cuts
			h := primary.Handle(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Put([]byte(fmt.Sprintf("w%02d/key/%05d", i%cfg.Workers, lrng.Intn(cfg.KeysPerWorker))), uint64(i))
				if i%100 == 99 {
					primary.Checkpoint()
				}
			}
		}(round)
		time.Sleep(time.Duration(2+rng.Intn(10)) * time.Millisecond)
		cl.cutAll() // partition: every live replication conn torn mid-stream
		time.Sleep(time.Duration(2+rng.Intn(10)) * time.Millisecond)
		close(stop)
		loadWG.Wait()

		// Quiesce and let both followers recover (a full re-bootstrap
		// each — the journal cannot replay the lost window).
		primary.Checkpoint()
		rel := primary.ReleasedEpoch()
		if err := waitWatermarks(rel, f1, f2); err != nil {
			return fmt.Errorf("round %d: recovery after cut: %w", round, err)
		}
		// Drain only once both followers are back: each re-bootstrap's
		// snapshot anchors a fresh checkpoint, so the released horizon —
		// and a follower's applied watermark — can move past any earlier
		// drain point.
		if err := ver.drainReleased(); err != nil {
			return fmt.Errorf("round %d: verifier: %w", round, err)
		}
		for i, f := range []*incll.Follower{f1, f2} {
			if err := checkExactPrefix(f, ver, fmt.Sprintf("follower %d", i+1)); err != nil {
				return fmt.Errorf("round %d (after %d cuts): %w", round, cl.cuts.Load(), err)
			}
			if err := EqualBothDirections(primary, f.DB()); err != nil {
				return fmt.Errorf("round %d: follower %d diverges after partition: %w", round, i+1, err)
			}
		}
	}
	if cl.cuts.Load() == 0 {
		return errors.New("partition campaign cut no connections (injection broken)")
	}
	primary.Close()
	return nil
}
