package crashtest

// Reshard crash campaign: run a live DB under concurrent single-key and
// transactional write load, drive an online reshard, abort it at every
// protocol point in rotation (standing in for the process dying there),
// then inject a power failure and recover. The invariants:
//
//  1. Atomic cutover. After crash recovery the DB is entirely on one side
//     of the reshard — the donor topology if the abort hit before the
//     manifest commit, the target topology if at or after it — as named
//     by the durable topology manifest. Never a mixture.
//
//  2. Zero lost or duplicated keys. The recovered state equals the
//     expected committed state exactly (preload plus every completed
//     concurrent write), and the merge cursor yields each key exactly
//     once in strictly ascending order.
//
//  3. Transactional atomicity across the cutover. Mirrored transaction
//     writes (two keys per commit) are never observed half-applied, on
//     either side of the cutover, before or after the crash.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"incll"
	"incll/internal/epoch"
)

// ReshardConfig parameterizes one reshard crash campaign.
type ReshardConfig struct {
	// From and To are the donor and target shard counts.
	From, To int
	// Workers is the number of concurrent single-key writer goroutines
	// (disjoint key ranges); one extra transaction worker always runs.
	Workers int
	// KeysPerWorker is each writer's key-range size.
	KeysPerWorker int
	// PersistFraction is the probability a dirty line survives each crash.
	PersistFraction float64
}

func (c *ReshardConfig) setDefaults() {
	if c.From <= 0 {
		c.From = 4
	}
	if c.To <= 0 {
		c.To = 8
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.KeysPerWorker <= 0 {
		c.KeysPerWorker = 300
	}
	if c.PersistFraction == 0 {
		c.PersistFraction = 0.5
	}
}

// reshardPoints are the protocol points the campaign aborts at, in order;
// "" is a full success (crash injected only after completion). Points at
// or after the manifest commit ("cutover-manifest") land on the target
// side; everything before lands on the donor side.
var reshardPoints = []string{
	"reshard-start", "snapshot-done", "restore-done", "tail-batch",
	"pre-cutover", "cutover-advanced", "cutover-drained",
	"cutover-target-committed", "cutover-manifest", "",
}

// RunReshard executes one reshard crash campaign with the given seed: one
// crash/recover round per protocol point. Returns an error describing the
// first invariant violation.
func RunReshard(cfg ReshardConfig, seed int64) error {
	cfg.setDefaults()
	for round, point := range reshardPoints {
		if err := runReshardRound(cfg, seed+int64(round)*101, point); err != nil {
			return fmt.Errorf("round %d (abort at %q): %w", round, point, err)
		}
	}
	return nil
}

func runReshardRound(cfg ReshardConfig, seed int64, point string) (err error) {
	opts := incll.Options{
		Shards:      cfg.From,
		Workers:     cfg.Workers + 2, // writers + txn worker + spare
		ArenaWords:  1 << 18,
		HeapWords:   1 << 17,
		LogSegWords: 1 << 12,
		TxnSegWords: 1 << 11,
	}
	db, _ := incll.Open(opts)
	defer func() { err = dumpTraceOnFailure("reshard", seed, db.DumpTrace, err) }()

	// Committed preload.
	pre := cfg.Workers * cfg.KeysPerWorker / 2
	for i := 0; i < pre; i++ {
		db.Put([]byte(fmt.Sprintf("pre/%05d", i)), uint64(i))
	}
	db.Checkpoint()

	// Concurrent load: per-worker single-key writers over disjoint ranges
	// (occasional deletes, occasional checkpoints so the reshard tail has
	// released batches to chew on), plus one transaction worker committing
	// mirrored pairs. Every completed write is recorded; all must survive.
	var (
		stop  = make(chan struct{})
		wrote sync.Map // string key -> uint64 value, or nil when deleted
		pairs sync.Map // pair index int -> uint64 value (committed txns)
		wg    sync.WaitGroup
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(w*7+1)))
			h := db.Handle(w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%02d/%05d", w, rng.Intn(cfg.KeysPerWorker))
				if rng.Intn(12) == 0 {
					h.Delete([]byte(key))
					wrote.Store(key, nil)
				} else {
					v := uint64(i)<<8 | uint64(w)
					h.Put([]byte(key), v)
					wrote.Store(key, v)
				}
				if i%256 == 255 {
					db.Checkpoint()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x7a31))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := rng.Intn(cfg.KeysPerWorker)
			t := db.BeginWorker(cfg.Workers)
			v := uint64(i + 1)
			t.Put([]byte(fmt.Sprintf("ta/%05d", p)), v)
			t.Put([]byte(fmt.Sprintf("tb/%05d", p)), v)
			if cerr := t.Commit(); cerr == nil {
				pairs.Store(p, v)
			} else if !errors.Is(cerr, incll.ErrConflict) {
				panic(cerr)
			}
		}
	}()

	if point != "" {
		hits := 0
		db.SetReshardHook(func(p string) error {
			if p == point {
				hits++
				if hits == 1 {
					return errAbort
				}
			}
			return nil
		})
	}
	_, rerr := db.Reshard(cfg.To)
	db.SetReshardHook(nil)
	close(stop)
	wg.Wait()

	// Which side must the DB be on? At/after the manifest commit the
	// reshard is complete even when the hook errored.
	committed := point == "" || point == "cutover-manifest"
	switch {
	case point == "" && rerr != nil:
		return fmt.Errorf("clean reshard failed: %w", rerr)
	case point != "" && !errors.Is(rerr, errAbort):
		return fmt.Errorf("abort did not surface: err = %v", rerr)
	}
	wantShards, wantVer := cfg.From, uint64(1)
	if committed {
		wantShards, wantVer = cfg.To, 2
	}
	if db.Shards() != wantShards || db.TopoVersion() != wantVer {
		return fmt.Errorf("live topology = %d shards v%d, want %d shards v%d",
			db.Shards(), db.TopoVersion(), wantShards, wantVer)
	}

	// Commit everything the writers completed, then crash and recover.
	db.Checkpoint()
	db.SimulateCrash(cfg.PersistFraction, seed)
	reopened, info := db.Reopen()
	db = reopened
	if info.Status == epoch.FreshStart {
		return errors.New("reopen lost the arena")
	}
	if db.Shards() != wantShards || db.TopoVersion() != wantVer {
		return fmt.Errorf("recovered topology = %d shards v%d, want %d shards v%d",
			db.Shards(), db.TopoVersion(), wantShards, wantVer)
	}

	// Invariant 2a: exact expected state — nothing lost, nothing extra.
	want := model{}
	for i := 0; i < pre; i++ {
		want[fmt.Sprintf("pre/%05d", i)] = string(incll.EncodeValue(uint64(i)))
	}
	wrote.Range(func(k, v any) bool {
		if v == nil {
			delete(want, k.(string))
		} else {
			want[k.(string)] = string(incll.EncodeValue(v.(uint64)))
		}
		return true
	})
	pairs.Range(func(k, v any) bool {
		want[fmt.Sprintf("ta/%05d", k.(int))] = string(incll.EncodeValue(v.(uint64)))
		want[fmt.Sprintf("tb/%05d", k.(int))] = string(incll.EncodeValue(v.(uint64)))
		return true
	})
	if d := diffModels(dbState(db), want, "recovered", "expected"); d != "" {
		return fmt.Errorf("recovered state diverges: %s", d)
	}

	// Invariant 2b: the merge cursor yields each key exactly once, in
	// strictly ascending order (a routing bug would duplicate or reorder).
	var prev []byte
	for k := range db.All() {
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			return fmt.Errorf("cursor not strictly ascending: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
	}

	// Invariant 3: no half-applied transaction pair, recorded or not.
	for i := 0; i < cfg.KeysPerWorker; i++ {
		a, aok := db.Get([]byte(fmt.Sprintf("ta/%05d", i)))
		b, bok := db.Get([]byte(fmt.Sprintf("tb/%05d", i)))
		if aok != bok || a != b {
			return fmt.Errorf("txn pair %d torn: ta=(%d,%v) tb=(%d,%v)", i, a, aok, b, bok)
		}
	}

	// The recovered topology keeps working.
	db.Put([]byte("post/alive"), 1)
	db.Checkpoint()
	db.Close()
	return nil
}
