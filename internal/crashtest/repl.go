package crashtest

// Replication crash campaign: run a primary under concurrent write load
// with a live replica, crash the primary at every snapshot/stream
// protocol point, and check the subsystem's two invariants:
//
//  1. Prefix exactness. At every moment — in particular right after the
//     primary crashes mid-stream — the replica's state equals the
//     primary's committed state at the replica's applied epoch, exactly.
//     A snapshot stream truncated by the crash must fail Restore
//     (ErrBadStream), never produce a silently wrong DB.
//
//  2. Convergence. After the primary recovers and the replica resyncs,
//     All() iteration over primary and replica is byte-identical in both
//     directions.
//
// The committed reference states are reconstructed from an independent
// verifier subscription opened before any write: applying its entries
// epoch by epoch reproduces the exact committed state at every released
// epoch (the stream is the serialization the hub's release barrier
// defines), and the final quiesced boundary is cross-checked against the
// primary itself so the verifier cannot drift.

import (
	"bytes"
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"sync"
	"time"

	"incll"
	"incll/internal/epoch"
)

// ReplConfig parameterizes one replication crash campaign.
type ReplConfig struct {
	// Shards is the primary's shard count (the replica uses ReplicaShards).
	Shards int
	// ReplicaShards is the follower's shard count (restores route by key,
	// so it need not match; 0 means same as Shards).
	ReplicaShards int
	// Workers is the number of concurrent writer goroutines (disjoint key
	// ranges, so reference states are well-defined).
	Workers int
	// KeysPerWorker is each writer's key-range size.
	KeysPerWorker int
	// OpsPerBurst is the number of operations each writer runs per burst
	// (bursts run concurrently with exports and between checkpoints).
	OpsPerBurst int
	// Rounds is the number of crash/recover cycles; each round injects a
	// crash at the next snapshot protocol point, cycling through all of
	// them.
	Rounds int
	// PersistFraction is the probability a dirty line survives each crash.
	PersistFraction float64
}

func (c *ReplConfig) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ReplicaShards <= 0 {
		c.ReplicaShards = c.Shards
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.KeysPerWorker <= 0 {
		c.KeysPerWorker = 400
	}
	if c.OpsPerBurst <= 0 {
		c.OpsPerBurst = 500
	}
	if c.Rounds <= 0 {
		c.Rounds = 7
	}
	if c.PersistFraction == 0 {
		c.PersistFraction = 0.5
	}
}

// snapPoints are the snapshot protocol points the campaign crashes at, in
// rotation ("" is a mid-stream crash with no export in flight).
var snapPoints = []string{"header", "kv-frame", "scan-done", "anchor", "changes-frame", "end", ""}

// errAbort is the sentinel the snapshot hook uses to stop the export at
// the chosen protocol point (standing in for the process dying there).
var errAbort = errors.New("crashtest: export aborted at injection point")

// model is a committed reference state.
type model map[string]string

// verifier reconstructs the committed state at every released epoch from
// a change-stream subscription.
type verifier struct {
	sub    *incll.ChangeStream
	state  model            // state at epoch `upTo`
	states map[uint64]model // exact state per released epoch
	upTo   uint64           // highest epoch reconstructed
}

func newVerifier(db *incll.DB, base model) *verifier {
	sub := db.Changes()
	baseEpoch := sub.Released()
	return &verifier{
		sub:    sub,
		state:  maps.Clone(base),
		states: map[uint64]model{baseEpoch: maps.Clone(base)},
		upTo:   baseEpoch,
	}
}

// absorb applies one batch, snapshotting the state at every epoch the
// batch covers (entries are epoch-monotone; epochs with no entries share
// the predecessor's state).
func (v *verifier) absorb(b incll.ChangeBatch) {
	i := 0
	for e := v.upTo + 1; e <= b.Epoch; e++ {
		for i < len(b.Changes) && b.Changes[i].Epoch <= e {
			c := b.Changes[i]
			if c.Op == incll.ChangeDelete {
				delete(v.state, string(c.Key))
			} else {
				v.state[string(c.Key)] = string(c.Value)
			}
			i++
		}
		v.states[e] = maps.Clone(v.state)
	}
	v.upTo = b.Epoch
}

// drainReleased absorbs every batch the stream has already released,
// without blocking for more.
func (v *verifier) drainReleased() error {
	for v.upTo < v.sub.Released() {
		b, err := v.sub.Next()
		if err != nil {
			return err
		}
		v.absorb(b)
	}
	return nil
}

// drainUntilLost absorbs batches until the stream reports the crash.
func (v *verifier) drainUntilLost() {
	for {
		b, err := v.sub.Next()
		if err != nil {
			return
		}
		v.absorb(b)
	}
}

// at returns the exact committed state at epoch e. Epochs below the
// verifier's base collapse onto the base (nothing changed before it);
// epochs it never saw are an error surfaced by the caller's comparison.
func (v *verifier) at(e uint64) (model, bool) {
	if m, ok := v.states[e]; ok {
		return m, true
	}
	return nil, false
}

// dbState reads a DB's full contents through the merge cursor.
func dbState(db *incll.DB) model {
	m := model{}
	for k, val := range db.All() {
		m[string(k)] = string(val)
	}
	return m
}

// diffModels returns a description of the first divergence, or "".
func diffModels(got, want model, gotName, wantName string) string {
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Sprintf("key %q present in %s, missing in %s", k, wantName, gotName)
		}
		if gv != v {
			return fmt.Sprintf("key %q: %s has %q, %s has %q", k, wantName, v, gotName, gv)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("key %q present in %s, missing in %s", k, gotName, wantName)
		}
	}
	return ""
}

// EqualBothDirections checks byte-identical All() iteration forward and
// reverse across two DBs — the acceptance property's equality check,
// shared with cmd/incll-repl's verification modes.
func EqualBothDirections(a, b *incll.DB) error {
	for _, rev := range []bool{false, true} {
		ia := a.NewIter(incll.IterOptions{})
		ib := b.NewIter(incll.IterOptions{})
		oka, okb := step(ia, rev, true), step(ib, rev, true)
		n := 0
		for oka && okb {
			if !bytes.Equal(ia.Key(), ib.Key()) || !bytes.Equal(ia.Value(), ib.Value()) {
				// Capture before Close: a closed cursor returns nils.
				ak, av := string(ia.Key()), string(ia.Value())
				bk, bv := string(ib.Key()), string(ib.Value())
				ia.Close()
				ib.Close()
				return fmt.Errorf("reverse=%v entry %d: (%q,%q) vs (%q,%q)",
					rev, n, ak, av, bk, bv)
			}
			n++
			oka, okb = step(ia, rev, false), step(ib, rev, false)
		}
		ia.Close()
		ib.Close()
		if oka != okb {
			return fmt.Errorf("reverse=%v: iteration lengths diverge after %d entries", rev, n)
		}
	}
	return nil
}

func step(it incll.Iterator, rev, first bool) bool {
	switch {
	case first && rev:
		return it.Last()
	case first:
		return it.First()
	case rev:
		return it.Prev()
	default:
		return it.Next()
	}
}

// RunRepl executes one replication crash campaign with the given seed,
// returning an error describing the first invariant violation. As with
// Run, a failure dumps the primary's phase trace when INCLL_TRACE_DIR is
// set; the DB façade's tracer survives crash/reopen cycles, so the dump
// covers the whole campaign even when the handle was swapped.
func RunRepl(cfg ReplConfig, seed int64) (err error) {
	cfg.setDefaults()
	opts := incll.Options{Shards: cfg.Shards, Workers: cfg.Workers + 1}
	repOpts := incll.Options{Shards: cfg.ReplicaShards}
	primary, _ := incll.Open(opts)
	defer func() { err = dumpTraceOnFailure("repl", seed, primary.DumpTrace, err) }()

	// The verifier subscribes before any write, so its reconstruction
	// starts from the empty committed state.
	ver := newVerifier(primary, model{})

	rep, err := incll.NewReplica(primary, repOpts)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer rep.Close()

	burst := func(db *incll.DB, r int) {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed ^ int64(r*1000+w)))
				h := db.Handle(w)
				for i := 0; i < cfg.OpsPerBurst; i++ {
					kn := rng.Intn(cfg.KeysPerWorker)
					key := []byte(fmt.Sprintf("w%02d/key/%05d/%s", w, kn,
						bytes.Repeat([]byte("p"), kn%11)))
					switch rng.Intn(10) {
					case 0:
						h.Delete(key)
					case 1: // heap-resident value
						v := bytes.Repeat([]byte{byte(kn), byte(i)}, 16+rng.Intn(128))
						if _, err := h.PutBytes(key, v); err != nil {
							panic(err)
						}
					default: // mostly small/inline values
						h.Put(key, uint64(rng.Intn(1<<30)))
					}
				}
			}(w)
		}
		wg.Wait()
	}

	for round := 0; round < cfg.Rounds; round++ {
		point := snapPoints[round%len(snapPoints)]

		// Committed prelude: a couple of quiesced checkpoints.
		for e := 0; e < 2; e++ {
			burst(primary, round*10+e)
			primary.Checkpoint()
			if err := ver.drainReleased(); err != nil {
				return fmt.Errorf("round %d: verifier: %w", round, err)
			}
		}

		// Cross-check the verifier against ground truth at this quiesced
		// boundary: the reconstruction must equal the primary exactly.
		if d := diffModels(dbState(primary), ver.state, "primary", "verifier"); d != "" {
			return fmt.Errorf("round %d: verifier drifted: %s", round, d)
		}

		// Doomed phase: concurrent burst, export aborted at the protocol
		// point, then the crash. The uncommitted burst tail must vanish;
		// the truncated stream must never restore.
		var exportBuf bytes.Buffer
		stop := make(chan struct{})
		var loadWG sync.WaitGroup
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(round*77+13)))
			h := primary.Handle(cfg.Workers) // extra handle: doomed-phase writer
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%02d/key/%05d/", i%cfg.Workers, rng.Intn(cfg.KeysPerWorker)))
				h.Put(key, uint64(i)|1<<33)
			}
		}()

		var exportErr error
		if point != "" {
			hits := 0
			primary.SetSnapshotHook(func(p string) error {
				if p == point {
					hits++
					if hits == 1 {
						return errAbort
					}
				}
				return nil
			})
			_, exportErr = primary.Snapshot(&exportBuf)
			primary.SetSnapshotHook(nil)
			if !errors.Is(exportErr, errAbort) {
				// The point may be unreachable this round (e.g. no change
				// frame when the doomed writer raced slow): only a clean
				// success is acceptable then.
				if exportErr != nil {
					return fmt.Errorf("round %d: export at %q: %v", round, point, exportErr)
				}
			}
		}
		close(stop)
		loadWG.Wait()

		// Crash the primary mid-stream.
		primary.SimulateCrash(cfg.PersistFraction, seed+int64(round))

		// The truncated export must never restore silently.
		if point != "" && errors.Is(exportErr, errAbort) && exportBuf.Len() > 0 {
			if _, _, rerr := incll.Restore(bytes.NewReader(exportBuf.Bytes()), repOpts); !errors.Is(rerr, incll.ErrBadStream) {
				return fmt.Errorf("round %d: truncated export (at %q) restored with err=%v, want ErrBadStream", round, point, rerr)
			}
		}

		// The verifier drains what was released before the crash, then
		// loses the stream.
		ver.drainUntilLost()

		// Invariant 1: the replica stopped on an exact committed prefix.
		if err := waitReplicaStopped(rep); err != nil {
			return fmt.Errorf("round %d: replica did not observe the crash: %w", round, err)
		}
		applied := rep.AppliedEpoch()
		want, ok := ver.at(applied)
		if !ok {
			return fmt.Errorf("round %d: replica applied epoch %d, which the verifier never saw (up to %d)", round, applied, ver.upTo)
		}
		if d := diffModels(dbState(rep.DB()), want, "replica", fmt.Sprintf("committed state at epoch %d", applied)); d != "" {
			return fmt.Errorf("round %d: replica diverged from its applied prefix: %s", round, d)
		}

		// Recover the primary and resync the replica.
		reopened, info := primary.Reopen()
		if info.Status == epoch.FreshStart {
			return fmt.Errorf("round %d: reopen lost the arena", round)
		}
		primary = reopened
		if err := rep.Resync(primary); err != nil {
			return fmt.Errorf("round %d: resync: %w", round, err)
		}
		if err := rep.CatchUp(); err != nil {
			return fmt.Errorf("round %d: catch-up: %w", round, err)
		}

		// Invariant 2: full convergence, byte-identical both directions.
		if err := EqualBothDirections(primary, rep.DB()); err != nil {
			return fmt.Errorf("round %d: primary/replica diverge after catch-up: %w", round, err)
		}

		// Rebase the verifier on the recovered committed state.
		ver = newVerifier(primary, dbState(primary))
	}

	// Final: a clean shutdown ends the stream gracefully after the replica
	// drained everything.
	burst(primary, cfg.Rounds*10+1)
	primary.Checkpoint()
	if err := rep.CatchUp(); err != nil {
		return fmt.Errorf("final catch-up: %w", err)
	}
	if err := EqualBothDirections(primary, rep.DB()); err != nil {
		return fmt.Errorf("final equality: %w", err)
	}
	promoted, err := rep.Promote()
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if err := EqualBothDirections(primary, promoted); err != nil {
		return fmt.Errorf("promoted equality: %w", err)
	}
	promoted.Close()
	primary.Close()
	return nil
}

// waitReplicaStopped waits until the replica's apply loop terminated on
// the crashed stream.
func waitReplicaStopped(rep *incll.Replica) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := rep.Err(); err != nil {
			if errors.Is(err, incll.ErrStreamLost) || errors.Is(err, incll.ErrStreamClosed) {
				return nil
			}
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return errors.New("timeout")
}
