package crashtest

// The sharded campaign: the same §5.2 methodology run against a cluster
// with coordinated checkpoints. Crashes strike either mid-epoch (every
// shard's cache torn independently) or inside the two-phase global
// checkpoint, where the all-or-nothing boundary is the coordinator's
// fenced commit record rather than any one shard's header.

import (
	"fmt"
	"math/rand"
	"sync"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/obs"
	"incll/internal/shard"
)

func runSharded(cfg Config, seed int64, trace *obs.Tracer) error {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ed))
	s, info := shard.Open(shard.Config{
		Shards:     cfg.Shards,
		Workers:    cfg.Workers,
		ArenaWords: cfg.ArenaWords / uint64(cfg.Shards),
		Trace:      trace,
	})
	if info.Status != epoch.FreshStart {
		return fmt.Errorf("fresh cluster opened with status %v", info.Status)
	}

	committed := map[uint64]string{} // state at the last global boundary
	working := map[uint64]string{}   // state including the running epoch

	for round := 0; round < cfg.Rounds; round++ {
		for e := 0; e < cfg.EpochsPerRound; e++ {
			runShardedEpoch(s, cfg, working, seed+int64(round*1000+e))
			s.Advance()
			committed = cloneModel(working)
		}
		// Doomed partial epoch, then a crash: plain mid-epoch, inside
		// phase 1 (must roll back everywhere), or inside phase 2 after the
		// global record (must stand everywhere).
		runShardedEpoch(s, cfg, working, seed+int64(round*1000+999))
		switch rng.Intn(3) {
		case 0:
			s.SimulateCrash(cfg.PersistFraction, seed+int64(round))
		case 1:
			s.CrashDuringAdvance(rng.Intn(cfg.Shards+1), 0, false, cfg.PersistFraction, seed+int64(round))
		case 2:
			s.CrashDuringAdvance(cfg.Shards, rng.Intn(cfg.Shards+1), true, cfg.PersistFraction, seed+int64(round))
			committed = cloneModel(working)
		}

		var info shard.RecoveryInfo
		s, info = s.Reopen()
		if info.Status != epoch.CrashRecovered {
			return fmt.Errorf("round %d: reopen status %v, want crash-recovered", round, info.Status)
		}
		for i, sr := range info.Shards {
			if sr.Epoch != info.Shards[0].Epoch {
				return fmt.Errorf("round %d: shard %d recovered to epoch %d, shard 0 to %d",
					round, i, sr.Epoch, info.Shards[0].Epoch)
			}
		}
		working = cloneModel(committed)
		if err := verifySharded(s, committed); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
	}
	// Final clean shutdown must also preserve everything.
	runShardedEpoch(s, cfg, working, seed+424242)
	s.Shutdown()
	s, info = s.Reopen()
	if info.Status != epoch.CleanRestart {
		return fmt.Errorf("clean shutdown reopened with status %v", info.Status)
	}
	return verifySharded(s, working)
}

// runShardedEpoch has each worker mutate its own key range through the
// cluster façade, mirroring every mutation into the model.
func runShardedEpoch(s *shard.Store, cfg Config, model map[uint64]string, seed int64) {
	per := cfg.Keyspace / uint64(cfg.Workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		lo := uint64(w) * per
		wg.Add(1)
		go func(w int, lo uint64) {
			defer wg.Done()
			h := s.Handle(w)
			rng := rand.New(rand.NewSource(seed*31 + int64(w)))
			local := map[uint64]string{}
			deleted := map[uint64]bool{}
			for i := 0; i < cfg.OpsPerEpoch; i++ {
				k := lo + uint64(rng.Int63n(int64(per)))
				switch rng.Intn(6) {
				case 0:
					h.Delete(core.EncodeUint64(k))
					delete(local, k)
					deleted[k] = true
				case 1:
					h.Get(core.EncodeUint64(k))
				default:
					v := randValue(cfg, rng)
					h.PutBytes(core.EncodeUint64(k), []byte(v))
					local[k] = v
					delete(deleted, k)
				}
			}
			mu.Lock()
			for k, v := range local {
				model[k] = v
			}
			for k := range deleted {
				delete(model, k)
			}
			mu.Unlock()
		}(w, lo)
	}
	wg.Wait()
}

// verifySharded checks the cluster against the model by routed point
// lookups and one merged cursor walk in each direction, comparing exact
// bytes.
func verifySharded(s *shard.Store, model map[uint64]string) error {
	for k, v := range model {
		got, ok := s.GetBytes(core.EncodeUint64(k))
		if !ok {
			return fmt.Errorf("committed key %d missing after recovery", k)
		}
		if string(got) != v {
			return fmt.Errorf("key %d = %x after recovery, committed value %x", k, got, v)
		}
	}
	it := s.NewIter(core.IterOptions{})
	defer it.Close()
	count := 0
	var prev uint64
	for ok := it.First(); ok; ok = it.Next() {
		k := deKey(it.Key())
		if count > 0 && k <= prev {
			return fmt.Errorf("merged cursor order violated at key %d", k)
		}
		prev = k
		count++
		want, ok := model[k]
		if !ok {
			return fmt.Errorf("cursor found uncommitted key %d after recovery", k)
		}
		if want != string(it.Value()) {
			return fmt.Errorf("cursor key %d = %x, committed %x", k, it.Value(), want)
		}
	}
	if count != len(model) {
		return fmt.Errorf("cursor found %d keys, model has %d", count, len(model))
	}
	rev := 0
	for ok := it.Last(); ok; ok = it.Prev() {
		k := deKey(it.Key())
		if rev > 0 && k >= prev {
			return fmt.Errorf("reverse merged cursor order violated at key %d", k)
		}
		prev = k
		rev++
		if want, ok := model[k]; !ok || want != string(it.Value()) {
			return fmt.Errorf("reverse cursor key %d = %x, committed %x", k, it.Value(), model[k])
		}
	}
	if rev != len(model) {
		return fmt.Errorf("reverse cursor found %d keys, model has %d", rev, len(model))
	}
	return nil
}
