package crashtest

import (
	"fmt"
	"testing"
)

// TestReplCrashProperty is the acceptance property: a primary under
// concurrent write load, crash-injected at every snapshot/stream
// protocol point, must leave the replica (or a restored DB) equal to an
// exact committed-epoch prefix, and converge to byte-identical equality
// (both iteration directions) after catch-up. The 7-round campaign
// rotates through every protocol point once per seed.
func TestReplCrashProperty(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			seeds := []int64{1, 2}
			if testing.Short() {
				seeds = seeds[:1]
			}
			for _, seed := range seeds {
				if err := RunRepl(ReplConfig{Shards: shards}, seed); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestReplCrashPropertyCrossShardCount runs the campaign with a replica
// whose shard count differs from the primary's: prefix exactness and
// convergence are placement-independent.
func TestReplCrashPropertyCrossShardCount(t *testing.T) {
	if err := RunRepl(ReplConfig{Shards: 4, ReplicaShards: 2}, 3); err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		return
	}
	if err := RunRepl(ReplConfig{Shards: 1, ReplicaShards: 3}, 4); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCrashRestartability: a snapshot aborted at any protocol
// point leaves the primary fully usable — a subsequent export succeeds
// and restores exactly (the export protocol holds no poisoned state).
func TestSnapshotCrashRestartability(t *testing.T) {
	if err := RunRepl(ReplConfig{Shards: 2, Rounds: 3, OpsPerBurst: 200}, 5); err != nil {
		t.Fatal(err)
	}
}
