package crashtest

import (
	"testing"
	"time"
)

// TestRunReplnet runs the networked crash/failover campaign: every
// snapshot protocol point gets a round in which a bootstrap is killed
// there, the primary is crashed mid-stream with two live followers, one
// follower is promoted, and the survivors resync byte-identical.
func TestRunReplnet(t *testing.T) {
	cfg := ReplnetConfig{}
	if testing.Short() {
		cfg = ReplnetConfig{Rounds: 2, KeysPerWorker: 120, OpsPerBurst: 150}
	}
	seed := time.Now().UnixNano()
	t.Logf("replnet campaign seed %d", seed)
	if err := RunReplnet(cfg, seed); err != nil {
		t.Fatal(err)
	}
}

// TestRunReplnetPartition severs every replication connection mid-batch,
// repeatedly, under load: each cut forces a full re-bootstrap and the
// followers must land back on exact committed prefixes.
func TestRunReplnetPartition(t *testing.T) {
	cfg := ReplnetConfig{Rounds: 4}
	if testing.Short() {
		cfg.Rounds = 2
	}
	seed := time.Now().UnixNano()
	t.Logf("replnet partition seed %d", seed)
	if err := RunReplnetPartition(cfg, seed); err != nil {
		t.Fatal(err)
	}
}

// TestRunReplnetShardMismatch re-runs a short campaign with follower
// shard counts different from the primary's — the wire stream routes by
// key, so topology never has to match across the cluster.
func TestRunReplnetShardMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestRunReplnet in short mode")
	}
	seed := time.Now().UnixNano()
	t.Logf("replnet shard-mismatch seed %d", seed)
	if err := RunReplnet(ReplnetConfig{
		Shards:         3,
		FollowerShards: 1,
		Rounds:         2,
		KeysPerWorker:  150,
		OpsPerBurst:    200,
	}, seed); err != nil {
		t.Fatal(err)
	}
}
