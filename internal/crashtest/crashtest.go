// Package crashtest implements the paper's §5.2 validation methodology:
// run the durable Masstree under random workloads, crash it at arbitrary
// points with adversarially chosen subsets of dirty cache lines surviving,
// restart, and check that the recovered state matches the state at the
// last committed epoch boundary, exactly.
//
// Concurrent workers operate on disjoint key ranges so the reference model
// is well-defined without serializing the workload.
package crashtest

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/nvm"
	"incll/internal/obs"
)

// Config parameterizes one crash-injection campaign.
type Config struct {
	// Keyspace is the number of distinct keys (split across workers).
	Keyspace uint64
	// Workers is the number of concurrent mutator goroutines.
	Workers int
	// Shards, when > 1, runs the campaign against a sharded cluster with
	// coordinated checkpoints instead of a single store; crashes then also
	// strike inside the two-phase global checkpoint.
	Shards int
	// OpsPerEpoch is the number of operations each worker runs per epoch.
	OpsPerEpoch int
	// EpochsPerRound is the number of committed epochs before each crash.
	EpochsPerRound int
	// Rounds is the number of crash/recover cycles.
	Rounds int
	// PersistFraction is the probability a dirty line survives each crash.
	PersistFraction float64
	// ArenaWords sizes the simulated NVM.
	ArenaWords uint64
	// ValueBytes, when > 0, makes every put store a random byte value of
	// up to this many bytes (exercising the value heap: inline values,
	// out-of-place blocks, class churn). 0 stores small uint64 values.
	ValueBytes int
}

func (c *Config) setDefaults() {
	if c.Keyspace == 0 {
		c.Keyspace = 4000
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.OpsPerEpoch <= 0 {
		c.OpsPerEpoch = 800
	}
	if c.EpochsPerRound <= 0 {
		c.EpochsPerRound = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.PersistFraction == 0 {
		c.PersistFraction = 0.5
	}
	if c.ArenaWords == 0 {
		c.ArenaWords = 1 << 22
	}
}

// Run executes one campaign with the given seed. It returns an error
// describing the first divergence between the recovered store and the
// committed reference model, or nil if every crash recovered exactly.
//
// Every campaign records the protocol phase trace (checkpoint prepares
// and commits, recovery replays); on failure dumpTraceOnFailure leaves
// the dump where CI picks it up, so a red crash-matrix run ships the
// exact sequence of protocol events that led to the divergence.
func Run(cfg Config, seed int64) error {
	cfg.setDefaults()
	trace := obs.NewTracer(obs.DefaultTraceEvents)
	if cfg.Shards > 1 {
		return dumpTraceOnFailure("sharded", seed, trace.Dump, runSharded(cfg, seed, trace))
	}
	return dumpTraceOnFailure("core", seed, trace.Dump, run(cfg, seed, trace))
}

// dumpTraceOnFailure routes a failing campaign's phase trace where CI can
// attach it as an artifact: when INCLL_TRACE_DIR names a directory, the
// dump lands there as <kind>-trace-<seed>.txt and the returned error
// points at it. With the variable unset the error passes through alone.
func dumpTraceOnFailure(kind string, seed int64, dump func(io.Writer) error, err error) error {
	if err == nil {
		return nil
	}
	dir := os.Getenv("INCLL_TRACE_DIR")
	if dir == "" {
		return err
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return fmt.Errorf("%w (trace dump: %v)", err, mkErr)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-trace-%d.txt", kind, seed))
	f, cErr := os.Create(path)
	if cErr != nil {
		return fmt.Errorf("%w (trace dump: %v)", err, cErr)
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s campaign seed %d: %v\n", kind, seed, err)
	if dErr := dump(f); dErr != nil {
		return fmt.Errorf("%w (trace dump: %v)", err, dErr)
	}
	return fmt.Errorf("%w (phase trace: %s)", err, path)
}

func run(cfg Config, seed int64, trace *obs.Tracer) error {
	arena := nvm.New(nvm.Config{Words: cfg.ArenaWords})
	coreCfg := core.Config{
		Workers:     cfg.Workers,
		LogSegWords: 1 << 16,
		HeapWords:   cfg.ArenaWords / 2,
		Trace:       trace,
	}
	s, st := core.Open(arena, coreCfg)
	if st != epoch.FreshStart {
		return fmt.Errorf("fresh arena opened with status %v", st)
	}

	committed := map[uint64]string{} // state at the last epoch boundary
	working := map[uint64]string{}   // state including the current epoch

	for round := 0; round < cfg.Rounds; round++ {
		// Committed epochs.
		for e := 0; e < cfg.EpochsPerRound; e++ {
			runEpoch(s, cfg, working, seed+int64(round*1000+e))
			s.Advance()
			committed = cloneModel(working)
		}
		// Doomed partial epoch, then crash.
		runEpoch(s, cfg, working, seed+int64(round*1000+999))
		arena.Crash(nvm.RandomPolicy(cfg.PersistFraction, seed+int64(round)))
		arena.ResetReservations()
		var status epoch.Status
		s, status = core.Open(arena, coreCfg)
		if status != epoch.CrashRecovered {
			return fmt.Errorf("round %d: reopen status %v, want crash-recovered", round, status)
		}
		working = cloneModel(committed)
		if err := verify(s, committed); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
	}
	// Final clean shutdown must also preserve everything.
	runEpoch(s, cfg, working, seed+424242)
	s.Shutdown()
	arena.Crash(nvm.PersistNone)
	arena.ResetReservations()
	s, st = core.Open(arena, coreCfg)
	if st != epoch.CleanRestart {
		return fmt.Errorf("clean shutdown reopened with status %v", st)
	}
	return verify(s, working)
}

// randValue draws one value: a small uint64's canonical encoding by
// default, or — in byte mode — a random payload of up to ValueBytes bytes.
func randValue(cfg Config, rng *rand.Rand) string {
	if cfg.ValueBytes <= 0 {
		return string(core.EncodeValue(rng.Uint64() % 1_000_000))
	}
	b := make([]byte, rng.Intn(cfg.ValueBytes+1))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

// runEpoch has each worker mutate its own key range, mirroring every
// mutation into the model.
func runEpoch(s *core.Store, cfg Config, model map[uint64]string, seed int64) {
	per := cfg.Keyspace / uint64(cfg.Workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		lo := uint64(w) * per
		wg.Add(1)
		go func(w int, lo uint64) {
			defer wg.Done()
			h := s.Handle(w)
			rng := rand.New(rand.NewSource(seed*31 + int64(w)))
			local := map[uint64]string{}
			deleted := map[uint64]bool{}
			for i := 0; i < cfg.OpsPerEpoch; i++ {
				k := lo + uint64(rng.Int63n(int64(per)))
				switch rng.Intn(6) {
				case 0:
					h.Delete(core.EncodeUint64(k))
					delete(local, k)
					deleted[k] = true
				case 1:
					h.Get(core.EncodeUint64(k))
				default:
					v := randValue(cfg, rng)
					h.PutBytes(core.EncodeUint64(k), []byte(v))
					local[k] = v
					delete(deleted, k)
				}
			}
			mu.Lock()
			for k, v := range local {
				model[k] = v
			}
			for k := range deleted {
				delete(model, k)
			}
			mu.Unlock()
		}(w, lo)
	}
	wg.Wait()
}

// verify checks the store against the model by point lookups and one full
// ordered scan, comparing exact bytes so torn values cannot hide behind
// the uint64 view.
func verify(s *core.Store, model map[uint64]string) error {
	for k, v := range model {
		got, ok := s.GetBytes(core.EncodeUint64(k))
		if !ok {
			return fmt.Errorf("committed key %d missing after recovery", k)
		}
		if string(got) != v {
			return fmt.Errorf("key %d = %x after recovery, committed value %x", k, got, v)
		}
	}
	it := s.NewIter(core.IterOptions{})
	defer it.Close()
	count := 0
	var prev uint64
	for ok := it.First(); ok; ok = it.Next() {
		k := deKey(it.Key())
		if count > 0 && k <= prev {
			return fmt.Errorf("cursor order violated at key %d", k)
		}
		prev = k
		count++
		want, ok := model[k]
		if !ok {
			return fmt.Errorf("cursor found uncommitted key %d after recovery", k)
		}
		if want != string(it.Value()) {
			return fmt.Errorf("cursor key %d = %x, committed %x", k, it.Value(), want)
		}
	}
	if count != len(model) {
		return fmt.Errorf("cursor found %d keys, model has %d", count, len(model))
	}
	// The reverse walk must agree exactly: same population, descending.
	rev := 0
	for ok := it.Last(); ok; ok = it.Prev() {
		k := deKey(it.Key())
		if rev > 0 && k >= prev {
			return fmt.Errorf("reverse cursor order violated at key %d", k)
		}
		prev = k
		rev++
		if want, ok := model[k]; !ok || want != string(it.Value()) {
			return fmt.Errorf("reverse cursor key %d = %x, committed %x", k, it.Value(), model[k])
		}
	}
	if rev != len(model) {
		return fmt.Errorf("reverse cursor found %d keys, model has %d", rev, len(model))
	}
	return nil
}

func cloneModel(m map[uint64]string) map[uint64]string {
	out := make(map[uint64]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func deKey(b []byte) uint64 {
	var k uint64
	for _, c := range b {
		k = k<<8 | uint64(c)
	}
	return k
}
