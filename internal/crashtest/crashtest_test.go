package crashtest

import "testing"

func TestCrashCampaignSingleWorker(t *testing.T) {
	cfg := Config{Workers: 1, Keyspace: 2000, OpsPerEpoch: 600, Rounds: 3}
	for seed := int64(0); seed < 4; seed++ {
		if err := Run(cfg, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrashCampaignConcurrentWorkers(t *testing.T) {
	cfg := Config{Workers: 4, Keyspace: 4000, OpsPerEpoch: 500, Rounds: 3}
	for seed := int64(0); seed < 3; seed++ {
		if err := Run(cfg, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrashCampaignHarshPersistence(t *testing.T) {
	// Almost nothing survives each crash.
	cfg := Config{PersistFraction: 0.02, Rounds: 3}
	if err := Run(cfg, 11); err != nil {
		t.Fatal(err)
	}
	// Almost everything survives (the failed epoch must still roll back).
	cfg.PersistFraction = 0.98
	if err := Run(cfg, 12); err != nil {
		t.Fatal(err)
	}
}

func TestCrashCampaignManySmallEpochs(t *testing.T) {
	cfg := Config{EpochsPerRound: 5, OpsPerEpoch: 150, Rounds: 4}
	if err := Run(cfg, 21); err != nil {
		t.Fatal(err)
	}
}

func TestCrashShardedCampaignsRecoverExactly(t *testing.T) {
	cfg := Config{Shards: 4, Workers: 2, Rounds: 3, Keyspace: 2000, OpsPerEpoch: 400}
	for seed := int64(0); seed < 3; seed++ {
		if err := Run(cfg, seed); err != nil {
			t.Fatalf("sharded seed %d: %v", seed, err)
		}
	}
}

func TestCrashCampaignByteValues(t *testing.T) {
	// The value heap under crash churn: inline values, out-of-place blocks
	// across several size classes, exact-byte verification (no torn or
	// partially recovered values).
	cfg := Config{Workers: 2, Keyspace: 1200, OpsPerEpoch: 400, Rounds: 3, ValueBytes: 1500}
	for seed := int64(0); seed < 3; seed++ {
		if err := Run(cfg, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCrashShardedCampaignByteValues(t *testing.T) {
	cfg := Config{Shards: 4, Workers: 2, Rounds: 3, Keyspace: 1200,
		OpsPerEpoch: 300, ValueBytes: 1500, ArenaWords: 1 << 24}
	for seed := int64(0); seed < 2; seed++ {
		if err := Run(cfg, seed); err != nil {
			t.Fatalf("sharded seed %d: %v", seed, err)
		}
	}
}
