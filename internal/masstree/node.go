package masstree

import (
	"runtime"
	"sync/atomic"
)

const (
	leafWidth = 15 // key/value pairs per transient leaf (the paper's default)
	intWidth  = 15 // router keys per interior node (intWidth+1 children)
)

// Version word layout, following Masstree §4.1:
//
//	bit 0: locked        bit 1: inserting      bit 2: splitting
//	bit 3: deleted       bit 4: isRoot (of its layer)
//	bits 8..23:  vinsert counter
//	bits 24..62: vsplit counter
const (
	vLocked    = 1 << 0
	vInserting = 1 << 1
	vSplitting = 1 << 2
	vDeleted   = 1 << 3
	vIsRoot    = 1 << 4
	vInsertLo  = 1 << 8
	vSplitLo   = 1 << 24
)

// node is a Masstree node. Leaves and interior nodes share one struct with
// a discriminator; this wastes some bytes on interior nodes (which are an
// order of magnitude rarer than leaves) in exchange for a pointer-cast-free
// implementation. All mutable fields are atomics because optimistic readers
// inspect them while writers hold only the node lock.
type node struct {
	version atomic.Uint64
	parent  atomic.Pointer[node] // interior node above, nil at layer root
	isLeaf  bool

	// Leaf state.
	permutation atomic.Uint64 // a perm word
	hikey       atomic.Uint64 // first ikey of the right sibling (B-link fence); ^0 when rightmost
	ikeys       [leafWidth]atomic.Uint64
	kinds       [leafWidth]atomic.Uint32 // kind per slot (0..8 or kindLayer)
	vals        [leafWidth]atomic.Pointer[slotVal]
	next        atomic.Pointer[node]
	prev        atomic.Pointer[node]

	// Interior state.
	nkeys    atomic.Uint32
	rkeys    [intWidth]atomic.Uint64
	children [intWidth + 1]atomic.Pointer[node]
}

// slotVal is what a leaf slot points to: either a user value buffer or a
// next-layer tree root (exactly one is non-nil). Mirrors the paper's
// "values are pointers to buffers".
type slotVal struct {
	buf   *Value
	layer *layerRoot
}

// Value is an allocated value buffer. The paper's experiments use 8-byte
// values in 32-byte buffers carrying extra Masstree fields; Pad mirrors
// that footprint.
type Value struct {
	Data uint64
	Pad  [3]uint64
}

// layerRoot anchors a next-layer tree.
type layerRoot struct {
	root atomic.Pointer[node]
}

// stable spins until the node is not mid-insert and not mid-split and
// returns the version word observed (the lock bit may be set; readers
// tolerate a held lock, only dirty middles matter).
func (n *node) stable() uint64 {
	for {
		v := n.version.Load()
		if v&(vInserting|vSplitting) == 0 {
			return v
		}
		runtime.Gosched()
	}
}

// changed reports whether the node was mutated (insert or split) since the
// stable version v was observed.
func (n *node) changed(v uint64) bool {
	return n.version.Load()&^uint64(vLocked) != v&^uint64(vLocked)
}

// lock acquires the node's spinlock.
func (n *node) lock() {
	for {
		v := n.version.Load()
		if v&vLocked == 0 && n.version.CompareAndSwap(v, v|vLocked) {
			return
		}
		runtime.Gosched()
	}
}

// unlock releases the lock, folding any inserting/splitting marks into the
// counters so validating readers observe the change.
func (n *node) unlock() {
	v := n.version.Load()
	if v&vInserting != 0 {
		v += vInsertLo
	}
	if v&vSplitting != 0 {
		v += vSplitLo
	}
	v &^= vLocked | vInserting | vSplitting
	n.version.Store(v)
}

// markInsert flags an in-progress membership change; must hold the lock.
func (n *node) markInsert() { n.version.Store(n.version.Load() | vInserting) }

// markSplit flags an in-progress split; must hold the lock.
func (n *node) markSplit() { n.version.Store(n.version.Load() | vSplitting) }

func (n *node) isRoot() bool { return n.version.Load()&vIsRoot != 0 }

func (n *node) setRoot(on bool) {
	v := n.version.Load()
	if on {
		n.version.Store(v | vIsRoot)
	} else {
		n.version.Store(v &^ uint64(vIsRoot))
	}
}

// perm returns the leaf's permutation word.
func (n *node) perm() perm { return perm(n.permutation.Load()) }

// leafSearch finds the key-order position of (ikey, kind) in the leaf.
// Returns (pos, true) when present, or (insertion position, false).
func (n *node) leafSearch(ik uint64, kind uint8, p perm) (int, bool) {
	lo, hi := 0, p.count()
	for lo < hi {
		mid := (lo + hi) / 2
		s := p.slot(mid)
		c := keyCmp(ik, kind, n.ikeys[s].Load(), uint8(n.kinds[s].Load()))
		switch {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// interiorChild returns the child to descend into for ikey.
func (n *node) interiorChild(ik uint64) *node {
	nk := int(n.nkeys.Load())
	if nk > intWidth {
		nk = intWidth // torn read during an update; version check will retry
	}
	lo, hi := 0, nk
	for lo < hi {
		mid := (lo + hi) / 2
		if ik < n.rkeys[mid].Load() {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return n.children[lo].Load()
}
