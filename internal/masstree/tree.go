package masstree

import (
	"sync/atomic"
)

// Tree is a concurrent Masstree. Readers are optimistic (version-validated,
// lock-free); writers take per-leaf locks and split B-link style, so
// operations that race with a split simply walk right along leaf next
// pointers.
//
// Use New for the MT baseline (heap allocation) or NewWithPool for the MT+
// baseline (pool allocation plus a global epoch barrier).
type Tree struct {
	root    atomic.Pointer[node]
	pool    *Pool
	barrier *Barrier
	size    atomic.Int64
}

// New creates an empty MT-style tree: every node and value buffer is a
// fresh heap allocation (the stand-in for jemalloc).
func New() *Tree { return &Tree{} }

// NewWithPool creates an empty MT+-style tree: nodes and value buffers come
// from a sharded pool and freed buffers are recycled at barrier epochs,
// matching the paper's mmap-pool enhancement.
func NewWithPool(p *Pool, b *Barrier) *Tree { return &Tree{pool: p, barrier: b} }

// Len returns the number of live keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Handle binds a shard index to the tree; concurrent workers should each
// use their own handle so pool operations do not contend.
type Handle struct {
	t     *Tree
	shard int
}

// Handle returns a worker handle for shard i.
func (t *Tree) Handle(i int) Handle { return Handle{t: t, shard: i} }

// Get returns the value stored under k.
func (t *Tree) Get(k []byte) (uint64, bool) { return t.Handle(0).Get(k) }

// Put stores v under k, returning true if the key was newly inserted.
func (t *Tree) Put(k []byte, v uint64) bool { return t.Handle(0).Put(k, v) }

// Delete removes k, returning true if it was present.
func (t *Tree) Delete(k []byte) bool { return t.Handle(0).Delete(k) }

// Scan visits up to max keys ≥ start in order; see Handle.Scan.
func (t *Tree) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return t.Handle(0).Scan(start, max, fn)
}

// enter/exit bracket an operation with the global barrier, when present.
func (h Handle) enter() {
	if h.t.barrier != nil {
		h.t.barrier.Enter()
	}
}

func (h Handle) exit() {
	if h.t.barrier != nil {
		h.t.barrier.Exit()
	}
}

// ---- allocation ----

func (h Handle) newLeaf() *node {
	var n *node
	if h.t.pool != nil {
		n = h.t.pool.allocNode(h.shard)
	} else {
		n = new(node)
	}
	n.isLeaf = true
	n.permutation.Store(uint64(permIdentity))
	n.hikey.Store(^uint64(0))
	return n
}

func (h Handle) newInterior() *node {
	var n *node
	if h.t.pool != nil {
		n = h.t.pool.allocNode(h.shard)
	} else {
		n = new(node)
	}
	n.isLeaf = false
	return n
}

func (h Handle) allocValue(data uint64) *Value {
	if h.t.pool != nil {
		v := h.t.pool.allocValue(h.shard)
		v.Data = data
		return v
	}
	return &Value{Data: data}
}

func (h Handle) freeValue(v *Value) {
	if h.t.pool != nil && v != nil {
		h.t.pool.freeValue(h.shard, v)
	}
}

// ---- read path ----

// Get returns the value stored under k.
func (h Handle) Get(k []byte) (uint64, bool) {
	h.enter()
	defer h.exit()
	return h.layerGet(&h.t.root, k)
}

func (h Handle) layerGet(rr *atomic.Pointer[node], k []byte) (uint64, bool) {
	ik, kind := ikeyOf(k)
retry:
	n := rr.Load()
	if n == nil {
		return 0, false
	}
	n = descend(n, ik)
readLeaf:
	v := n.stable()
	if ik >= n.hikey.Load() {
		nn := n.next.Load()
		if n.changed(v) {
			goto retry
		}
		if nn != nil {
			n = nn
			goto readLeaf
		}
	}
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if !found {
		if n.changed(v) {
			goto retry
		}
		return 0, false
	}
	sv := n.vals[p.slot(pos)].Load()
	if n.changed(v) {
		goto retry
	}
	if sv == nil {
		goto retry // slot mid-update; extremely rare
	}
	if sv.layer != nil {
		return h.layerGet(&sv.layer.root, k[8:])
	}
	return sv.buf.Data, true
}

// descend walks interior nodes to the leaf that should cover ik, validating
// each interior read against its version.
func descend(n *node, ik uint64) *node {
	root := n
	for !n.isLeaf {
		v := n.stable()
		c := n.interiorChild(ik)
		if n.changed(v) || c == nil {
			n = root // restart the descent; the leaf B-link catches the rest
			continue
		}
		n = c
	}
	return n
}

// ---- write path ----

// Put stores v under k. Returns true if k was newly inserted, false if an
// existing value was overwritten.
func (h Handle) Put(k []byte, v uint64) bool {
	h.enter()
	defer h.exit()
	inserted := h.layerPut(&h.t.root, k, v)
	if inserted {
		h.t.size.Add(1)
	}
	return inserted
}

func (h Handle) layerPut(rr *atomic.Pointer[node], k []byte, val uint64) bool {
	ik, kind := ikeyOf(k)
retry:
	n := rr.Load()
	if n == nil {
		fresh := h.newLeaf()
		fresh.setRoot(true)
		if !rr.CompareAndSwap(nil, fresh) {
			// Lost the race; fall through to the installed root.
		}
		goto retry
	}
	n = descend(n, ik)
	n = lockCovering(n, ik)
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if found {
		slot := p.slot(pos)
		sv := n.vals[slot].Load()
		if sv.layer != nil {
			lr := sv.layer
			n.unlock()
			return h.layerPut(&lr.root, k[8:], val)
		}
		old := sv.buf
		n.vals[slot].Store(&slotVal{buf: h.allocValue(val)})
		n.unlock()
		h.freeValue(old)
		return false
	}
	// Build the slot payload before exposing it.
	var sv *slotVal
	if kind == kindLayer {
		lr := &layerRoot{}
		h.layerPut(&lr.root, k[8:], val)
		sv = &slotVal{layer: lr}
	} else {
		sv = &slotVal{buf: h.allocValue(val)}
	}
	if p.count() < leafWidth {
		slot := p.freeSlot()
		n.ikeys[slot].Store(ik)
		n.kinds[slot].Store(uint32(kind))
		n.vals[slot].Store(sv)
		n.markInsert()
		n.permutation.Store(uint64(p.insert(pos)))
		n.unlock()
		return true
	}
	h.splitLeafInsert(rr, n, ik, kind, sv, pos)
	return true
}

// lockCovering locks n and walks right until n covers ik (B-link): a
// concurrent split may have moved the key range rightward between descent
// and locking.
func lockCovering(n *node, ik uint64) *node {
	n.lock()
	for ik >= n.hikey.Load() {
		nn := n.next.Load()
		if nn == nil {
			return n
		}
		nn.lock()
		n.unlock()
		n = nn
	}
	return n
}

// splitLeafInsert splits the full, locked leaf n and inserts (ik, kind, sv)
// at key-order position pos. Consumes n's lock.
func (h Handle) splitLeafInsert(rr *atomic.Pointer[node], n *node, ik uint64, kind uint8, sv *slotVal, pos int) {
	n.markSplit()
	nn := h.newLeaf()
	nn.lock()
	p := n.perm() // 15 live entries

	sp := splitPoint(n, p)
	// Move entries sp..14 into nn's slots 0..(15-sp-1), already in order.
	moved := 0
	for i := sp; i < leafWidth; i++ {
		s := p.slot(i)
		nn.ikeys[moved].Store(n.ikeys[s].Load())
		nn.kinds[moved].Store(n.kinds[s].Load())
		nn.vals[moved].Store(n.vals[s].Load())
		moved++
	}
	nn.permutation.Store(uint64(permIdentity)&^0xF | uint64(moved))
	splitIkey := nn.ikeys[0].Load()

	// Publish the B-link before shrinking n, so no key is ever unreachable.
	nn.hikey.Store(n.hikey.Load())
	succ := n.next.Load()
	nn.next.Store(succ)
	nn.prev.Store(n)
	if succ != nil {
		succ.prev.Store(nn)
	}
	n.next.Store(nn)
	n.hikey.Store(splitIkey)
	n.permutation.Store(uint64(p.truncate(sp)))

	// Insert the pending entry into whichever half owns it.
	target, tpos := n, pos
	if ik >= splitIkey {
		target, tpos = nn, pos-sp
	}
	tp := target.perm()
	slot := tp.freeSlot()
	target.ikeys[slot].Store(ik)
	target.kinds[slot].Store(uint32(kind))
	target.vals[slot].Store(sv)
	target.markInsert()
	target.permutation.Store(uint64(tp.insert(tpos)))

	h.insertUpward(rr, n, nn, splitIkey)
	nn.unlock()
	n.unlock()
}

// splitPoint picks a key-order position near the middle where the boundary
// ikeys differ, so interior routing by ikey alone never separates equal
// ikeys. A valid point always exists because one ikey can occupy at most
// ten slots (kinds 0..8 plus a layer).
func splitPoint(n *node, p perm) int {
	mid := leafWidth / 2
	for d := 0; d < leafWidth; d++ {
		for _, sp := range [2]int{mid + d, mid - d} {
			if sp <= 0 || sp >= p.count() {
				continue
			}
			if n.ikeys[p.slot(sp-1)].Load() != n.ikeys[p.slot(sp)].Load() {
				return sp
			}
		}
	}
	panic("masstree: no valid split point (more equal ikeys than a leaf can hold)")
}

// insertUpward installs the separator (splitIkey, right) above the split
// pair left/right (both locked by the caller; their locks are retained).
func (h Handle) insertUpward(rr *atomic.Pointer[node], left, right *node, splitIkey uint64) {
	if left.isRoot() {
		nr := h.newInterior()
		nr.nkeys.Store(1)
		nr.rkeys[0].Store(splitIkey)
		nr.children[0].Store(left)
		nr.children[1].Store(right)
		nr.setRoot(true)
		left.setRoot(false)
		left.parent.Store(nr)
		right.parent.Store(nr)
		rr.Store(nr)
		return
	}
	p := lockParent(left)
	right.parent.Store(p)
	nk := int(p.nkeys.Load())
	// Position of left among p's children keys.
	pos := 0
	for pos < nk && splitIkey >= p.rkeys[pos].Load() {
		pos++
	}
	if nk < intWidth {
		p.markInsert()
		for i := nk; i > pos; i-- {
			p.rkeys[i].Store(p.rkeys[i-1].Load())
			p.children[i+1].Store(p.children[i].Load())
		}
		p.rkeys[pos].Store(splitIkey)
		p.children[pos+1].Store(right)
		p.nkeys.Store(uint32(nk + 1))
		p.unlock()
		return
	}
	h.splitInterior(rr, p, splitIkey, right, pos)
}

// lockParent locks child's parent, retrying around concurrent parent
// splits that reassign the pointer.
func lockParent(child *node) *node {
	for {
		p := child.parent.Load()
		p.lock()
		if p == child.parent.Load() {
			return p
		}
		p.unlock()
	}
}

// splitInterior splits the full, locked interior p while inserting
// (key, child) at child-key position pos. Consumes p's lock.
func (h Handle) splitInterior(rr *atomic.Pointer[node], p *node, key uint64, child *node, pos int) {
	p.markSplit()
	// Assemble the 16 keys and 17 children.
	var keys [intWidth + 1]uint64
	var kids [intWidth + 2]*node
	for i := 0; i < intWidth; i++ {
		keys[i] = p.rkeys[i].Load()
	}
	for i := 0; i <= intWidth; i++ {
		kids[i] = p.children[i].Load()
	}
	copy(keys[pos+1:], keys[pos:intWidth])
	keys[pos] = key
	copy(kids[pos+2:], kids[pos+1:intWidth+1])
	kids[pos+1] = child

	half := (intWidth + 1) / 2 // 8: left keeps 8 keys, promote keys[8], right gets 7
	promoted := keys[half]

	pp := h.newInterior()
	pp.lock()
	rn := 0
	for i := half + 1; i < intWidth+1; i++ {
		pp.rkeys[rn].Store(keys[i])
		rn++
	}
	for i := half + 1; i < intWidth+2; i++ {
		c := kids[i]
		pp.children[i-half-1].Store(c)
		c.parent.Store(pp)
	}
	pp.nkeys.Store(uint32(rn))

	// Shrink p in place.
	for i := 0; i < half; i++ {
		p.rkeys[i].Store(keys[i])
	}
	for i := 0; i <= half; i++ {
		p.children[i].Store(kids[i])
		kids[i].parent.Store(p)
	}
	p.nkeys.Store(uint32(half))

	h.insertUpward(rr, p, pp, promoted)
	pp.unlock()
	p.unlock()
}

// ---- delete path ----

// Delete removes k. Emptied leaves stay in the tree (Masstree's rare
// leaf-collapse path is intentionally omitted; an empty leaf is harmless
// and its range remains insertable).
func (h Handle) Delete(k []byte) bool {
	h.enter()
	defer h.exit()
	removed := h.layerDelete(&h.t.root, k)
	if removed {
		h.t.size.Add(-1)
	}
	return removed
}

func (h Handle) layerDelete(rr *atomic.Pointer[node], k []byte) bool {
	ik, kind := ikeyOf(k)
	n := rr.Load()
	if n == nil {
		return false
	}
	n = descend(n, ik)
	n = lockCovering(n, ik)
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if !found {
		n.unlock()
		return false
	}
	slot := p.slot(pos)
	sv := n.vals[slot].Load()
	if sv.layer != nil {
		lr := sv.layer
		n.unlock()
		return h.layerDelete(&lr.root, k[8:])
	}
	n.markInsert()
	n.permutation.Store(uint64(p.remove(pos)))
	n.unlock()
	h.freeValue(sv.buf)
	return true
}

// ---- scan path ----

// KV is one scanned pair.
type KV struct {
	Key   []byte
	Value uint64
}

// Scan visits keys ≥ start in ascending order, calling fn for each, until
// fn returns false or max pairs have been visited (max < 0 means no
// limit). Returns the number of pairs visited. The key slice passed to fn
// is freshly allocated and may be retained.
func (h Handle) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	h.enter()
	defer h.exit()
	visited := 0
	h.scanLayer(&h.t.root, nil, start, max, &visited, fn)
	return visited
}

// scanEntry is a snapshot of one leaf entry taken under version validation.
type scanEntry struct {
	ikey uint64
	kind uint8
	sv   *slotVal
}

func (h Handle) scanLayer(rr *atomic.Pointer[node], prefix, start []byte, max int, visited *int, fn func([]byte, uint64) bool) bool {
	n := rr.Load()
	if n == nil {
		return true
	}
	var startIk uint64
	var startKind uint8
	if len(start) > 0 {
		startIk, startKind = ikeyOf(start)
	}
	n = descend(n, startIk)

	var entries []scanEntry
	for n != nil {
		// Snapshot the leaf under optimistic validation.
	again:
		v := n.stable()
		if startIk >= n.hikey.Load() {
			nn := n.next.Load()
			if n.changed(v) {
				goto again
			}
			if nn != nil {
				n = nn
				goto again
			}
		}
		entries = entries[:0]
		p := n.perm()
		for i := 0; i < p.count(); i++ {
			s := p.slot(i)
			entries = append(entries, scanEntry{n.ikeys[s].Load(), uint8(n.kinds[s].Load()), n.vals[s].Load()})
		}
		next := n.next.Load()
		if n.changed(v) {
			goto again
		}

		for _, e := range entries {
			if e.sv == nil {
				continue
			}
			if len(start) > 0 && keyCmp(e.ikey, e.kind, startIk, startKind) < 0 {
				if !(e.kind == kindLayer && e.ikey == startIk) {
					continue
				}
			}
			if max >= 0 && *visited >= max {
				return false
			}
			kb := appendIkey(append([]byte(nil), prefix...), e.ikey, e.kind)
			if e.kind == kindLayer {
				var rest []byte
				if len(start) > 8 && e.ikey == startIk && startKind == kindLayer {
					rest = start[8:]
				}
				if !h.scanLayer(&e.sv.layer.root, kb, rest, max, visited, fn) {
					return false
				}
				continue
			}
			*visited++
			if !fn(kb, e.sv.buf.Data) {
				return false
			}
		}
		n = next
		start = nil
		startIk, startKind = 0, 0
	}
	return true
}

// appendIkey appends the bytes an (ikey, kind) pair contributes to the
// full key: kind bytes for terminal entries, all 8 for layer links.
func appendIkey(dst []byte, ik uint64, kind uint8) []byte {
	nb := int(kind)
	if kind == kindLayer {
		nb = 8
	}
	for i := 0; i < nb; i++ {
		dst = append(dst, byte(ik>>(56-8*uint(i))))
	}
	return dst
}
