package masstree

import (
	"math/rand"
	"testing"
)

func TestPermIdentity(t *testing.T) {
	p := permIdentity
	if p.count() != 0 {
		t.Fatalf("identity count = %d", p.count())
	}
	for i := 0; i < 15; i++ {
		if p.slot(i) != i {
			t.Fatalf("identity slot(%d) = %d", i, p.slot(i))
		}
	}
	if p.freeSlot() != 0 {
		t.Fatalf("first free slot = %d", p.freeSlot())
	}
}

func TestPermInsertFront(t *testing.T) {
	p := permIdentity
	p = p.insert(0) // slot 0 at pos 0
	if p.count() != 1 || p.slot(0) != 0 {
		t.Fatalf("after insert: %v", p)
	}
	// Next free slot must be 1.
	if p.freeSlot() != 1 {
		t.Fatalf("free slot = %d, want 1", p.freeSlot())
	}
	p = p.insert(0) // slot 1 at pos 0: live order [1, 0]
	if p.count() != 2 || p.slot(0) != 1 || p.slot(1) != 0 {
		t.Fatalf("after second insert: %v", p)
	}
}

func TestPermRemoveReturnsSlotToFreeRegion(t *testing.T) {
	p := permIdentity
	p = p.insert(0) // live [0]
	p = p.insert(1) // live [0 1]
	p = p.remove(0) // live [1], slot 0 free again
	if p.count() != 1 || p.slot(0) != 1 {
		t.Fatalf("after remove: %v", p)
	}
	// All 15 slots must still be present exactly once.
	seen := map[int]bool{}
	for i := 0; i < 15; i++ {
		seen[p.slot(i)] = true
	}
	if len(seen) != 15 {
		t.Fatalf("permutation lost slots: %v", p)
	}
}

func TestPermTruncate(t *testing.T) {
	p := permIdentity
	for i := 0; i < 10; i++ {
		p = p.insert(i)
	}
	p = p.truncate(4)
	if p.count() != 4 {
		t.Fatalf("truncate count = %d", p.count())
	}
	seen := map[int]bool{}
	for i := 0; i < 15; i++ {
		seen[p.slot(i)] = true
	}
	if len(seen) != 15 {
		t.Fatalf("truncate lost slots: %v", p)
	}
}

// Property: any sequence of inserts and removes keeps the permutation a
// bijection over slots 0..14 and keeps count consistent.
func TestPermPropertyBijection(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := permIdentity
		live := 0
		for step := 0; step < 400; step++ {
			if live < 15 && (live == 0 || rng.Intn(2) == 0) {
				p = p.insert(rng.Intn(live + 1))
				live++
			} else {
				p = p.remove(rng.Intn(live))
				live--
			}
			if p.count() != live {
				t.Fatalf("seed %d step %d: count %d != live %d", seed, step, p.count(), live)
			}
			seen := 0
			var mask uint16
			for i := 0; i < 15; i++ {
				s := p.slot(i)
				if s < 0 || s > 14 || mask&(1<<uint(s)) != 0 {
					t.Fatalf("seed %d step %d: not a bijection: %v", seed, step, p)
				}
				mask |= 1 << uint(s)
				seen++
			}
			if seen != 15 {
				t.Fatalf("seed %d: %v", seed, p)
			}
		}
	}
}
