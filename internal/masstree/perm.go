// Package masstree implements a transient (non-durable) Masstree: the
// trie-of-B+trees ordered key-value structure of Mao, Kohler and Morris
// (EuroSys 2012) that the paper makes durable. This package provides the
// baselines the paper calls MT (heap allocation) and MT+ (pool allocation
// plus a per-epoch global barrier); the durable variant lives in
// internal/core and follows the same algorithm over simulated NVM.
//
// Keys are arbitrary byte strings. Each trie layer indexes an 8-byte slice
// of the key with a B+ tree; keys longer than the current slice descend
// into a next-layer tree hanging off their slot. Values are opaque uint64s
// stored in allocated value buffers, mirroring the paper's pointer-to-
// buffer values.
package masstree

import "fmt"

// perm is Masstree's leaf permutation word: 4 bits of live-entry count,
// then 15 4-bit slot indices. The first count() indices are the live slots
// in key order; the remaining indices are the free slots. Updating a leaf's
// membership or ordering is therefore a single atomic store of one word —
// the property In-Cache-Line Logging exploits.
type perm uint64

// permIdentity is the empty permutation: zero live entries, free slots
// 0..14 in order.
const permIdentity perm = 0xEDCBA98765432100

// count returns the number of live entries.
func (p perm) count() int { return int(p & 0xF) }

// slot returns the leaf slot holding the i-th live entry in key order.
func (p perm) slot(i int) int { return int(p >> (4 + 4*uint(i)) & 0xF) }

// freeSlot returns a currently unused slot index, valid only if
// count() < 15.
func (p perm) freeSlot() int { return p.slot(p.count()) }

// insert returns p with the free slot s placed at key-order position pos
// and the count incremented. s must be p.freeSlot().
func (p perm) insert(pos int) perm {
	n := p.count()
	s := uint64(p.freeSlot())
	body := uint64(p) >> 4
	// Remove the free nibble at position n.
	low := body & (1<<(4*uint(n)) - 1)
	high := body >> (4 * uint(n+1)) << (4 * uint(n))
	body = low | high
	// Insert s at position pos.
	low = body & (1<<(4*uint(pos)) - 1)
	high = body >> (4 * uint(pos)) << (4 * uint(pos+1))
	body = low | high | s<<(4*uint(pos))
	return perm(body<<4 | uint64(n+1))
}

// remove returns p with the live entry at key-order position pos retired
// to the free region and the count decremented.
func (p perm) remove(pos int) perm {
	n := p.count()
	s := uint64(p.slot(pos))
	body := uint64(p) >> 4
	// Remove the nibble at pos.
	low := body & (1<<(4*uint(pos)) - 1)
	high := body >> (4 * uint(pos+1)) << (4 * uint(pos))
	body = low | high
	// Reinsert it at position n-1 (head of the free region).
	low = body & (1<<(4*uint(n-1)) - 1)
	high = body >> (4 * uint(n-1)) << (4 * uint(n))
	body = low | high | s<<(4*uint(n-1))
	return perm(body<<4 | uint64(n-1))
}

// truncate returns p with only the first keep live entries retained; the
// dropped entries join the free region in their previous order, which is
// exactly what a split needs after moving the upper half out.
func (p perm) truncate(keep int) perm {
	return perm(uint64(p)&^0xF | uint64(keep))
}

// String renders the permutation for debugging: count then live | free.
func (p perm) String() string {
	s := fmt.Sprintf("perm{n=%d live=[", p.count())
	for i := 0; i < p.count(); i++ {
		s += fmt.Sprintf("%d ", p.slot(i))
	}
	s += "] free=["
	for i := p.count(); i < 15; i++ {
		s += fmt.Sprintf("%d ", p.slot(i))
	}
	return s + "]}"
}
