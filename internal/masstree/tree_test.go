package masstree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestPutGetSingle(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty tree returned a value")
	}
	if !tr.Put([]byte("hello"), 42) {
		t.Fatal("first Put reported update, want insert")
	}
	v, ok := tr.Get([]byte("hello"))
	if !ok || v != 42 {
		t.Fatalf("Get = %d,%v want 42,true", v, ok)
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), 1)
	if tr.Put([]byte("k"), 2) {
		t.Fatal("overwrite reported insert")
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatalf("value = %d after overwrite", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), 1)
	tr.Put([]byte("b"), 2)
	if !tr.Delete([]byte("a")) {
		t.Fatal("Delete of present key returned false")
	}
	if tr.Delete([]byte("a")) {
		t.Fatal("second Delete returned true")
	}
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tr.Get([]byte("b")); !ok || v != 2 {
		t.Fatal("unrelated key lost")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyKeysForceSplits(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Put(EncodeUint64(uint64(i*7919%n)), uint64(i))
	}
	for i := 0; i < n; i++ {
		k := uint64(i * 7919 % n)
		if _, ok := tr.Get(EncodeUint64(k)); !ok {
			t.Fatalf("key %d lost after splits", k)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestSequentialInsertAscendingDescending(t *testing.T) {
	for _, dir := range []string{"asc", "desc"} {
		tr := New()
		const n = 5000
		for i := 0; i < n; i++ {
			k := i
			if dir == "desc" {
				k = n - 1 - i
			}
			tr.Put(EncodeUint64(uint64(k)), uint64(k))
		}
		for i := 0; i < n; i++ {
			v, ok := tr.Get(EncodeUint64(uint64(i)))
			if !ok || v != uint64(i) {
				t.Fatalf("%s: key %d = %d,%v", dir, i, v, ok)
			}
		}
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New()
	keys := []string{
		"", "a", "ab", "abc", "abcd", "abcdefg", "abcdefgh", // within one slice
		"abcdefghi", "abcdefghij", "abcdefgh12345678", "abcdefgh123456789", // layers
		"abc\x00", "abc\x00\x00", // explicit zero bytes vs short keys
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", // 4 layers deep
	}
	for i, k := range keys {
		tr.Put([]byte(k), uint64(i+1))
	}
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v != uint64(i+1) {
			t.Fatalf("key %q = %d,%v want %d", k, v, ok, i+1)
		}
	}
	// Similar keys that were never inserted must miss.
	for _, k := range []string{"abcdefgh1", "abcdefgh\x00", "z", "abcde\x00fg"} {
		if _, ok := tr.Get([]byte(k)); ok {
			t.Fatalf("phantom key %q", k)
		}
	}
}

func TestLayerDelete(t *testing.T) {
	tr := New()
	tr.Put([]byte("prefix--0123456789"), 1)
	tr.Put([]byte("prefix--0123456780"), 2)
	if !tr.Delete([]byte("prefix--0123456789")) {
		t.Fatal("layer delete failed")
	}
	if _, ok := tr.Get([]byte("prefix--0123456789")); ok {
		t.Fatal("deleted layered key still present")
	}
	if v, ok := tr.Get([]byte("prefix--0123456780")); !ok || v != 2 {
		t.Fatal("sibling layered key lost")
	}
}

func TestScanAscendingOrder(t *testing.T) {
	tr := New()
	const n = 3000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	var got []uint64
	tr.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan visited %d, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d: %d >= %d", i, got[i-1], got[i])
		}
	}
}

func TestScanFromStartKeyWithLimit(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	var got []uint64
	n := tr.Scan(EncodeUint64(37), 10, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan returned %d/%d items", n, len(got))
	}
	for i, v := range got {
		if v != uint64(37+i) {
			t.Fatalf("scan[%d] = %d, want %d", i, v, 37+i)
		}
	}
}

func TestScanReconstructsKeys(t *testing.T) {
	tr := New()
	keys := []string{"a", "ab", "abcdefgh", "abcdefghijk", "b", "prefix--0123456789"}
	for i, k := range keys {
		tr.Put([]byte(k), uint64(i))
	}
	var got []string
	tr.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan keys = %v, want %v", got, want)
		}
	}
}

func TestScanStopsWhenFnReturnsFalse(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	count := 0
	tr.Scan(nil, -1, func(k []byte, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("scan visited %d after early stop, want 5", count)
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr := New()
		model := map[string]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 20000; step++ {
			k := EncodeUint64(uint64(rng.Intn(2000)))
			switch rng.Intn(10) {
			case 0, 1:
				delete(model, string(k))
				tr.Delete(k)
			default:
				v := rng.Uint64()
				model[string(k)] = v
				tr.Put(k, v)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("seed %d: Len=%d model=%d", seed, tr.Len(), len(model))
		}
		for k, v := range model {
			got, ok := tr.Get([]byte(k))
			if !ok || got != v {
				t.Fatalf("seed %d: key %x = %d,%v want %d", seed, k, got, ok, v)
			}
		}
	}
}

func TestMTPlusPoolVariant(t *testing.T) {
	b := NewBarrier()
	p := NewPool(4, b)
	tr := NewWithPool(p, b)
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Handle(i%4).Put(EncodeUint64(uint64(i)), uint64(i))
	}
	b.Advance()
	for i := 0; i < n; i++ {
		// Overwrite to exercise buffer recycling.
		tr.Handle(i%4).Put(EncodeUint64(uint64(i)), uint64(i)*2)
	}
	b.Advance()
	for i := 0; i < n; i++ {
		v, ok := tr.Get(EncodeUint64(uint64(i)))
		if !ok || v != uint64(i)*2 {
			t.Fatalf("key %d = %d,%v", i, v, ok)
		}
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	tr := New()
	const perG, gs = 4000, 8
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.Handle(g)
			for i := 0; i < perG; i++ {
				k := uint64(g*perG + i)
				h.Put(EncodeUint64(k), k)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != perG*gs {
		t.Fatalf("Len = %d, want %d", tr.Len(), perG*gs)
	}
	for k := uint64(0); k < perG*gs; k++ {
		if v, ok := tr.Get(EncodeUint64(k)); !ok || v != k {
			t.Fatalf("key %d = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr := New()
	const n = 20000
	for i := 0; i < n; i += 2 {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers insert odd keys (each writer owns a residue class, so every
	// odd key is inserted exactly once) and randomly overwrite even ones.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.Handle(g)
			rng := rand.New(rand.NewSource(int64(g)))
			for i := g*2 + 1; i < n; i += 8 {
				h.Put(EncodeUint64(uint64(i)), uint64(i))
				k := uint64(rng.Intn(n) &^ 1)
				h.Put(EncodeUint64(k), k)
			}
		}(g)
	}
	// Readers: any value observed must equal its key.
	errs := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(n))
				if v, ok := tr.Get(EncodeUint64(k)); ok && v != k {
					errs <- fmt.Sprintf("key %d read %d", k, v)
					return
				}
			}
		}(g)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 4; i++ {
		// writers are 4 of the 8 waitgroup members; just wait for all
	}
	close(stop)
	<-done
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := tr.Get(EncodeUint64(k)); !ok || v != k {
			t.Fatalf("key %d = %d,%v after stress", k, v, ok)
		}
	}
}

func TestConcurrentScansDuringInserts(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i += 2 {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tr.Handle(1)
		for i := 1; i < 10000; i += 2 {
			h.Put(EncodeUint64(uint64(i)), uint64(i))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				start := uint64(r * 1000)
				var prev uint64
				first := true
				tr.Scan(EncodeUint64(start), 100, func(k []byte, v uint64) bool {
					if !first && v <= prev {
						t.Errorf("scan order violated: %d then %d", prev, v)
						return false
					}
					first, prev = false, v
					return true
				})
			}
		}(r)
	}
	wg.Wait()
}

func TestEmptyTreeScan(t *testing.T) {
	tr := New()
	if n := tr.Scan(nil, -1, func([]byte, uint64) bool { return true }); n != 0 {
		t.Fatalf("empty scan visited %d", n)
	}
}

func TestDeleteToEmptyAndReinsert(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	for i := 0; i < 200; i++ {
		tr.Delete(EncodeUint64(uint64(i)))
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	for i := 0; i < 200; i++ {
		tr.Put(EncodeUint64(uint64(i)), uint64(i*3))
	}
	for i := 0; i < 200; i++ {
		if v, ok := tr.Get(EncodeUint64(uint64(i))); !ok || v != uint64(i*3) {
			t.Fatalf("reinserted key %d = %d,%v", i, v, ok)
		}
	}
}

func TestKeysSharingIkeyDifferentLengths(t *testing.T) {
	tr := New()
	// All of these share the 8-byte slice "abc\0\0\0\0\0" prefix group
	// or are prefixes of each other.
	ks := [][]byte{
		[]byte("abc"),
		[]byte("abc\x00"),
		[]byte("abc\x00\x00"),
		[]byte("abc\x00\x00\x00"),
	}
	for i, k := range ks {
		tr.Put(k, uint64(i+10))
	}
	for i, k := range ks {
		v, ok := tr.Get(k)
		if !ok || v != uint64(i+10) {
			t.Fatalf("key %v = %d,%v want %d", k, v, ok, i+10)
		}
	}
	var got [][]byte
	tr.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, k)
		return true
	})
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("scan order: %v before %v", got[i-1], got[i])
		}
	}
}
