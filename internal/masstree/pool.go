package masstree

import (
	"sync"
	"sync/atomic"
)

// Barrier is the MT+ global epoch barrier: workers hold it shared for the
// duration of each operation; Advance takes it exclusively, which quiesces
// the world exactly like the durable tree's checkpoint boundary (minus the
// cache flush). Pools recycle freed value buffers at Advance, giving the
// same epoch-based reclamation discipline the paper's allocator uses.
type Barrier struct {
	mu        sync.RWMutex
	callbacks []func()
	advances  atomic.Int64
}

// NewBarrier creates a barrier.
func NewBarrier() *Barrier { return &Barrier{} }

// Enter marks the caller as inside an operation.
func (b *Barrier) Enter() { b.mu.RLock() }

// Exit ends the caller's operation.
func (b *Barrier) Exit() { b.mu.RUnlock() }

// OnAdvance registers a callback run at each Advance with the world
// stopped. Register before mutators start.
func (b *Barrier) OnAdvance(f func()) { b.callbacks = append(b.callbacks, f) }

// Advance stops the world, runs the registered callbacks, and resumes.
func (b *Barrier) Advance() {
	b.mu.Lock()
	for _, f := range b.callbacks {
		f()
	}
	b.advances.Add(1)
	b.mu.Unlock()
}

// Advances returns the number of boundaries executed.
func (b *Barrier) Advances() int64 { return b.advances.Load() }

// Pool is the MT+ allocator: sharded slab allocation for nodes and
// epoch-recycled free lists for value buffers, standing in for the paper's
// mmap-based pool (versus jemalloc for MT).
type Pool struct {
	shards []poolShard
}

type poolShard struct {
	mu        sync.Mutex
	nodeSlab  []node
	valueSlab []Value
	freeVals  []*Value
	limboVals []*Value
	_         [4]uint64 // shard padding to tame false sharing
}

const slabNodes = 256

// NewPool creates a pool with the given shard count, recycling value
// buffers at b's epoch boundaries (b may be nil, in which case buffers are
// never recycled).
func NewPool(shards int, b *Barrier) *Pool {
	p := &Pool{shards: make([]poolShard, shards)}
	if b != nil {
		b.OnAdvance(p.spliceLimbo)
	}
	return p
}

// spliceLimbo moves limbo buffers to the free lists; runs with the world
// stopped, so no reader still holds a reference (EBR).
func (p *Pool) spliceLimbo() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.freeVals = append(s.freeVals, s.limboVals...)
		s.limboVals = s.limboVals[:0]
		s.mu.Unlock()
	}
}

func (p *Pool) allocNode(shard int) *node {
	s := &p.shards[shard%len(p.shards)]
	s.mu.Lock()
	if len(s.nodeSlab) == 0 {
		s.nodeSlab = make([]node, slabNodes)
	}
	n := &s.nodeSlab[0]
	s.nodeSlab = s.nodeSlab[1:]
	s.mu.Unlock()
	return n
}

func (p *Pool) allocValue(shard int) *Value {
	s := &p.shards[shard%len(p.shards)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.freeVals); n > 0 {
		v := s.freeVals[n-1]
		s.freeVals = s.freeVals[:n-1]
		return v
	}
	if len(s.valueSlab) == 0 {
		s.valueSlab = make([]Value, slabNodes)
	}
	v := &s.valueSlab[0]
	s.valueSlab = s.valueSlab[1:]
	return v
}

func (p *Pool) freeValue(shard int, v *Value) {
	s := &p.shards[shard%len(p.shards)]
	s.mu.Lock()
	s.limboVals = append(s.limboVals, v)
	s.mu.Unlock()
}
