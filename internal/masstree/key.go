package masstree

import "encoding/binary"

// Key slicing: each trie layer indexes up to 8 bytes of the key. A key is
// reduced to (ikey, kind) per layer, where ikey is the big-endian 8-byte
// slice (zero-padded) and kind encodes how much key remains:
//
//	kind 0..8:  the key ends in this layer with that many bytes
//	kindLayer:  the key continues; the slot holds a next-layer tree
//
// Two distinct keys can share an ikey but differ in kind ("abc" vs
// "abc\x00"); entries order by (ikey, kind), and kindLayer sorts after
// kind 8 because any continued key is strictly longer than any key that
// ends in this layer with the same 8 bytes.
const kindLayer = 9

// ikeyOf returns the layer's 8-byte slice of k, big-endian zero-padded,
// and the kind.
func ikeyOf(k []byte) (uint64, uint8) {
	var buf [8]byte
	n := copy(buf[:], k)
	ik := binary.BigEndian.Uint64(buf[:])
	if len(k) > 8 {
		return ik, kindLayer
	}
	return ik, uint8(n)
}

// keyCmp orders (ikey, kind) pairs.
func keyCmp(aIkey uint64, aKind uint8, bIkey uint64, bKind uint8) int {
	switch {
	case aIkey < bIkey:
		return -1
	case aIkey > bIkey:
		return 1
	case aKind < bKind:
		return -1
	case aKind > bKind:
		return 1
	default:
		return 0
	}
}

// EncodeUint64 renders v as an 8-byte big-endian key, so that integer
// order equals key order. This is the key form the YCSB workloads use.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
