package repl

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"incll/internal/core"
	"incll/internal/obs"
)

// Stream errors.
var (
	// ErrStreamLost means the subscriber fell behind the journal's byte
	// budget or the primary crashed: the stream's continuity is broken and
	// the consumer must re-bootstrap from a fresh snapshot.
	ErrStreamLost = errors.New("repl: change stream lost; re-bootstrap from a snapshot")
	// ErrStreamClosed means the primary shut down cleanly; every released
	// entry has been delivered and no more will come.
	ErrStreamClosed = errors.New("repl: change stream closed")
)

// Entry is one committed mutation in the change stream.
type Entry struct {
	// Op is the mutation kind (core.ChangePut or core.ChangeDelete).
	Op core.ChangeOp
	// Epoch is the epoch the mutation belongs to; it was globally
	// committed no later than the Batch that delivered this entry.
	Epoch uint64
	// Shard is the source shard (0 for an unsharded store).
	Shard int
	// Key and Val are owned by the stream; consumers may retain them.
	Key, Val []byte
}

// entryBytes is the retention-accounting size of an entry.
func entryBytes(e *Entry) uint64 { return uint64(len(e.Key)+len(e.Val)) + 48 }

// Batch is one released slice of the change stream: every entry with an
// epoch at most Epoch that was not yet delivered, in apply order (total
// per key) and epoch-monotone. Epoch is the stream's released high-water
// mark at delivery time, so a Batch may be empty — the barrier advanced
// with no writes — which still tells the consumer the primary committed
// through Epoch.
type Batch struct {
	Epoch   uint64
	Entries []Entry
}

// shardJournal is one shard's ring of not-yet-released entries. Writers
// of that shard contend only here — publication stays as sharded as the
// write path itself — and the hub takes this lock once per release wave,
// not per operation. Entries are epoch-monotone (the shard's epoch only
// advances) and move to the hub's released list at the commit barrier.
type shardJournal struct {
	mu    sync.Mutex
	ents  []Entry
	bytes uint64
}

// Hub is the change-journal core: it attaches to every shard of a store
// as its ChangeSink, collects applied mutations into per-shard journals
// (per-key order equals apply order — publication happens inside the
// leaf-locked region), and releases the consistent prefix to subscribers
// at each checkpoint commit.
//
// The released barrier is anchored at the two-phase coordinated-commit
// point: each shard's epoch.Manager fires its commit hook only after the
// coordinator's global record is durable, and the hub releases epoch E
// when every shard has committed E (the min across shards). At that
// moment every shard's E-entries are already in its journal (the shard's
// world was stopped at its own commit), so the merge into the released
// list is complete; a stable per-epoch sort keeps the released list
// epoch-monotone while preserving per-shard (and therefore per-key)
// order.
//
// The journal is volatile by design: its durability story is the epoch
// machinery's. A crash destroys it, every subscriber drains what was
// already released and then observes ErrStreamLost, and consumers
// re-bootstrap from a snapshot.
type Hub struct {
	stores []*core.Store
	shards []shardJournal

	// subCount and detached gate the publish fast path without the hub
	// lock: with no subscriber (or after Close) entries are dropped at
	// the source. unreleased tracks the total not-yet-released bytes
	// across all shard journals, so the overflow trigger bounds the
	// whole journal, not shards × budget; overflowed defers the actual
	// teardown to the consumer side (the write path only sets the flag
	// and stops retaining). released is the barrier itself, and wake is
	// the waiters' generation channel: the commit hook — which runs with
	// a world stopped — touches only these atomics, O(shards), and never
	// waits on the hub lock (a consumer may hold it for per-entry work).
	subCount   atomic.Int32
	detached   atomic.Bool
	unreleased atomic.Uint64
	overflowed atomic.Bool
	prodded    atomic.Bool                   // a collect has been requested
	released   atomic.Uint64                 // min over shardCommit
	wake       atomic.Pointer[chan struct{}] // closed+replaced on every wake event

	shardCommit []atomic.Uint64 // highest committed epoch per shard

	mu sync.Mutex

	// The released list: entries of globally committed epochs, retained
	// until every live subscriber has consumed them.
	ents  []Entry
	base  uint64 // absolute seq of ents[0]
	bytes uint64 // released-backlog bytes (the budget's domain)

	capBytes uint64

	collected uint64 // epoch through which shard prefixes were merged

	subs   map[*Subscription]struct{}
	closed bool // clean shutdown: drain, then ErrStreamClosed
	lost   bool // crash: drain released, then ErrStreamLost

	// The budget strike: the floor subscriber observed at the last
	// over-budget collect. It is cut only if a later over-budget collect
	// finds it in the same position — one full collect-to-collect window
	// of no progress — so a consumer actively draining (in particular one
	// blocked in Next, which collects and delivers before any cut) is
	// never cut by a backlog it had no chance to consume.
	strikeSub  *Subscription
	strikeNext uint64

	// Observability: cuts counts subscriptions severed by the budget (any
	// cause — overflow teardown, strike rule, or grace-ceiling cut); trace
	// receives a release-barrier event per advance. An atomic pointer
	// because Instrument may race a ticker-driven commit hook.
	cuts  atomic.Int64
	trace atomic.Pointer[obs.Tracer]

	// tline, when attached, receives the commit and release stamps of the
	// epoch propagation trace (DESIGN.md §15). Same discipline as trace:
	// an atomic pointer read on the commit-hook path, nil-safe methods,
	// O(1) work inside the stop-the-world window.
	tline atomic.Pointer[obs.EpochTimeline]
}

// DefaultJournalBytes is the default journal byte budget, applied on two
// fronts. Released backlog: a subscriber that makes no progress across
// two over-budget collects (the strike rule) is cut loose with
// ErrStreamLost rather than stalling the primary or growing without
// bound — a prompt consumer is never cut by a wave it had no chance to
// consume (one epoch's volume is inherent, exactly like the undo
// log's), and a snapshot export's pinned subscription is exempt up to
// the grace ceiling. Unreleased journals: if the total not-yet-released
// entries outgrow the budget — checkpoints stalled or never started —
// retention stops immediately and every subscriber is cut at the next
// consumer-side touch, so memory stays bounded on both fronts.
const DefaultJournalBytes = 32 << 20

// pinnedGraceFactor is how far past the budget the released backlog may
// grow while a pinned subscription (snapshot export / replica bootstrap)
// holds the retention floor. Within the grace window the copy in
// progress is protected; beyond it the pinned subscriber is cut too, so
// a wedged snapshot consumer cannot grow the primary without bound.
const pinnedGraceFactor = 4

// NewHub attaches a hub to the given per-shard stores: it becomes each
// store's ChangeSink and registers a commit hook on each store's epoch
// manager. Attach at most one hub per store set. capBytes bounds the
// released backlog (0 means DefaultJournalBytes).
func NewHub(stores []*core.Store, capBytes uint64) *Hub {
	if capBytes == 0 {
		capBytes = DefaultJournalBytes
	}
	h := &Hub{
		stores:      stores,
		shards:      make([]shardJournal, len(stores)),
		capBytes:    capBytes,
		shardCommit: make([]atomic.Uint64, len(stores)),
		subs:        make(map[*Subscription]struct{}),
	}
	ch := make(chan struct{})
	h.wake.Store(&ch)
	for i, s := range stores {
		// A store whose header says "epoch E running" has durably committed
		// E-1 (for a coordinated shard, the local commit implies the global
		// record). Attaching mid-advance at worst understates, and the next
		// commit hook catches up.
		h.shardCommit[i].Store(s.Epochs().Current() - 1)
		s.SetChangeSink(&shardSink{h: h, shard: i})
		s.Epochs().OnCommit(func(e uint64) { h.committed(i, e) })
	}
	h.released.Store(h.minCommit())
	h.collected = h.released.Load()
	return h
}

func (h *Hub) minCommit() uint64 {
	m := h.shardCommit[0].Load()
	for i := 1; i < len(h.shardCommit); i++ {
		if c := h.shardCommit[i].Load(); c < m {
			m = c
		}
	}
	return m
}

// wakeAll wakes every blocked subscriber by closing the current
// generation channel and installing a fresh one. Lock-free; callable
// from the commit hook and the publish path.
func (h *Hub) wakeAll() {
	ch := make(chan struct{})
	old := h.wake.Swap(&ch)
	close(*old)
}

// shardSink adapts one shard's ChangeSink callbacks to the hub.
type shardSink struct {
	h     *Hub
	shard int
}

// Publish appends one applied mutation to the shard's journal. Runs on
// the mutating worker with the epoch guard held; k and v are copied.
// Contention is per shard, matching the write path's own sharding.
func (ss *shardSink) Publish(op core.ChangeOp, k, v []byte, epoch uint64) {
	h := ss.h
	if h.detached.Load() || h.overflowed.Load() || h.subCount.Load() == 0 {
		// Nobody is listening (or the journal overflowed): retain nothing.
		// Entries skipped here are covered for later consumers by
		// construction — a snapshot scan starting after Subscribe observes
		// these already-applied mutations directly.
		return
	}
	e := Entry{Op: op, Epoch: epoch, Shard: ss.shard, Key: append([]byte(nil), k...)}
	if op == core.ChangePut {
		e.Val = append([]byte(nil), v...)
	}
	eb := entryBytes(&e)
	sj := &h.shards[ss.shard]
	sj.mu.Lock()
	sj.ents = append(sj.ents, e)
	sj.bytes += eb
	sj.mu.Unlock()
	// The counter includes released-but-uncollected bytes (only a collect
	// decrements it), so crossing the budget first just prods consumers
	// to collect — a consumer blocked in Next wakes, merges, and brings
	// the counter down. Only past the hard ceiling (twice the budget —
	// no consumer collected despite the prod) does the journal latch
	// overflowed: retention stops right here, O(1) on the write path,
	// and the teardown runs on the consumer side (collectLocked).
	if total := h.unreleased.Add(eb); total > h.capBytes {
		if total > 2*h.capBytes {
			if !h.overflowed.Swap(true) {
				h.wakeAll()
			}
		} else if !h.prodded.Swap(true) {
			h.wakeAll()
		}
	}
}

func (h *Hub) tail() uint64 { return h.base + uint64(len(h.ents)) }

// committed records that shard i durably committed epoch e, and advances
// the released barrier when every shard has. Runs from the epoch commit
// hook, with shard i's world stopped — so it is lock-free and O(shards):
// it never waits on the hub lock (which a consumer may hold for
// per-entry merge/copy work); the actual prefix merge happens lazily on
// the consumer side (collectLocked), never inside the stop-the-world
// window.
func (h *Hub) committed(i int, e uint64) {
	if h.detached.Load() {
		// The hooks cannot be deregistered (epoch.Manager's list only
		// grows), so a closed hub's hook stays callable for the store's
		// remaining life; keep it to this cheap early exit.
		return
	}
	for {
		old := h.shardCommit[i].Load()
		if e <= old {
			return
		}
		if h.shardCommit[i].CompareAndSwap(old, e) {
			break
		}
	}
	// The first shard hook to reach e stamps the epoch's commit; the
	// release stamp below closes the release_wait stage once the barrier
	// passes it. Both stamps are on this (the primary's) clock.
	h.tline.Load().Commit(e)
	newRel := h.minCommit()
	var oldRel uint64
	for {
		oldRel = h.released.Load()
		if newRel <= oldRel {
			return
		}
		if h.released.CompareAndSwap(oldRel, newRel) {
			break
		}
	}
	h.tline.Load().ReleaseRange(oldRel, newRel)
	h.trace.Load().Record(obs.EvJournalRelease, i, newRel, 0, int64(h.unreleased.Load()))
	h.wakeAll()
}

// collectLocked merges every shard journal's released prefix into the
// released list, and performs the deferred overflow teardown when the
// publish path raised the flag. Called under h.mu from the consumer
// side (Next, Subscribe, PendingBytes, Close) — the wave's entries all
// exist by then: a shard's commit hook fires with its world stopped,
// after every one of that epoch's publishes on that shard.
func (h *Hub) collectLocked() {
	if h.overflowed.Load() {
		// Unreleased volume outgrew the budget (checkpoints stalled or
		// not keeping up); the publish path stopped retaining when it
		// raised the flag. The dropped entries break every subscriber's
		// continuity, so all are cut; fresh subscribers start clean.
		for s := range h.subs {
			s.dead = true
			delete(h.subs, s)
			h.cuts.Add(1)
		}
		h.subCount.Store(0)
		h.strikeSub = nil
		for i := range h.shards {
			sj := &h.shards[i]
			sj.mu.Lock()
			sj.ents, sj.bytes = nil, 0
			sj.mu.Unlock()
		}
		h.unreleased.Store(0)
		h.collected = h.released.Load()
		h.trimLocked() // no subscribers left: the released backlog goes too
		h.overflowed.Store(false)
		h.prodded.Store(false)
		return
	}
	h.prodded.Store(false)
	if h.collected == h.released.Load() {
		return
	}
	rel := h.released.Load()
	waveStart := len(h.ents)
	var waveBytes uint64
	for s := range h.shards {
		sj := &h.shards[s]
		sj.mu.Lock()
		n := 0
		var moved uint64
		for n < len(sj.ents) && sj.ents[n].Epoch <= rel {
			moved += entryBytes(&sj.ents[n])
			n++
		}
		if n > 0 {
			h.ents = append(h.ents, sj.ents[:n]...)
			m := copy(sj.ents, sj.ents[n:])
			clear(sj.ents[m:])
			sj.ents = sj.ents[:m]
			sj.bytes -= moved
			waveBytes += moved
		}
		sj.mu.Unlock()
	}
	// Keep the released list epoch-monotone across shards (a wave can
	// span more than one epoch); the stable sort preserves per-shard —
	// and therefore per-key — order.
	wave := h.ents[waveStart:]
	sort.SliceStable(wave, func(a, b int) bool { return wave[a].Epoch < wave[b].Epoch })
	h.bytes += waveBytes
	h.unreleased.Add(^(waveBytes - 1)) // atomic subtract
	// Every live subscriber sits at or before the pre-wave tail, so the
	// whole wave is pending for all of them.
	for s := range h.subs {
		s.pending += waveBytes
	}
	h.collected = rel

	// Budget: while the backlog is over budget, cut the subscriber
	// holding the retention floor — but only a genuine laggard, via the
	// strike rule: the floor subscriber is cut only if it has made no
	// progress since the previous over-budget collect, so a consumer that
	// drains promptly (one epoch's volume is inherent, like the undo
	// log's) is never cut by a wave it had no chance to consume. A pinned
	// subscriber (a snapshot export's or a replica bootstrap's, which by
	// construction consumes nothing until its scan/restore finishes) is
	// tolerated up to the grace ceiling; past it (a wedged snapshot
	// consumer — say an HTTP client that stopped reading), even the
	// pinned subscriber is cut so one stuck reader cannot OOM the
	// primary.
	for h.bytes > h.capBytes {
		// Victim: the most-lagging unpinned subscriber (deterministic even
		// when a pinned one shares the floor position).
		var victim *Subscription
		for s := range h.subs {
			if !s.pinned && (victim == nil || s.next < victim.next) {
				victim = s
			}
		}
		if victim == nil || victim.next >= h.tail() {
			// No unpinned laggard; only a pinned subscription can hold the
			// backlog. Within the grace ceiling its retention is the cost
			// of the copy in progress; past it the copy is wedged and even
			// the pinned subscriber is cut (no strike grace — it blew a
			// 4x ceiling) so one stuck reader cannot OOM the primary.
			if h.bytes > pinnedGraceFactor*h.capBytes {
				var floor *Subscription
				for s := range h.subs {
					if floor == nil || s.next < floor.next {
						floor = s
					}
				}
				if floor != nil && floor.next < h.tail() {
					floor.dead = true
					delete(h.subs, floor)
					h.subCount.Add(-1)
					h.cuts.Add(1)
					h.strikeSub = nil
					h.trimLocked()
					continue
				}
			}
			break
		}
		if victim != h.strikeSub || victim.next != h.strikeNext {
			// First over-budget collect at this position: record the
			// strike and give the subscriber one window to make progress.
			h.strikeSub, h.strikeNext = victim, victim.next
			break
		}
		victim.dead = true
		delete(h.subs, victim)
		h.subCount.Add(-1)
		h.cuts.Add(1)
		h.strikeSub = nil
		h.trimLocked()
	}
	if h.bytes <= h.capBytes {
		h.strikeSub = nil
	}
	if len(h.subs) == 0 {
		h.trimLocked()
	}
}

// trimLocked drops released entries no live subscriber still needs.
func (h *Hub) trimLocked() {
	floor := h.tail()
	for s := range h.subs {
		if s.next < floor {
			floor = s.next
		}
	}
	k := int(floor - h.base)
	if k <= 0 {
		return
	}
	for i := 0; i < k; i++ {
		h.bytes -= entryBytes(&h.ents[i])
	}
	n := copy(h.ents, h.ents[k:])
	clear(h.ents[n:])
	h.ents = h.ents[:n]
	h.base = floor
}

// Released returns the last globally committed (and therefore released)
// epoch. Lock-free.
func (h *Hub) Released() uint64 { return h.released.Load() }

// Instrument attaches a tracer for release-barrier events. Safe on a
// live hub.
func (h *Hub) Instrument(tr *obs.Tracer) { h.trace.Store(tr) }

// InstrumentTimeline attaches the epoch propagation timeline the release
// barrier stamps into. Safe to call while commit hooks run (an atomic
// pointer swap); a nil timeline detaches nothing — pass the real one.
func (h *Hub) InstrumentTimeline(tl *obs.EpochTimeline) {
	if tl != nil {
		h.tline.Store(tl)
	}
}

// Subscribers returns the number of live subscriptions. Lock-free.
func (h *Hub) Subscribers() int { return int(h.subCount.Load()) }

// Cuts returns how many subscriptions the budget has severed (overflow
// teardown, strike rule, or grace-ceiling cuts). Lock-free.
func (h *Hub) Cuts() int64 { return h.cuts.Load() }

// CapBytes returns the journal's byte budget.
func (h *Hub) CapBytes() uint64 { return h.capBytes }

// UnreleasedBytes returns the bytes sitting in shard journals that no
// checkpoint commit has released yet (the budget's overflow domain).
// Lock-free.
func (h *Hub) UnreleasedBytes() uint64 { return h.unreleased.Load() }

// BacklogBytes returns the released-but-unconsumed bytes the hub retains
// for lagging subscribers (the budget's strike-rule domain). Takes the
// hub lock; a metrics scrape, not a hot path.
func (h *Hub) BacklogBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// Close ends the stream. graceful means a clean shutdown: subscribers
// drain everything released and then see ErrStreamClosed. Not graceful
// means a crash: subscribers drain what was already released (committed
// epochs survived on NVM), then see ErrStreamLost. Either way the sinks
// are detached from the stores and the unreleased tails are dropped.
func (h *Hub) Close(graceful bool) {
	h.detached.Store(true)
	h.mu.Lock()
	defer h.mu.Unlock()
	// Move the released-but-uncollected prefix out of the shard journals
	// before dropping them: subscribers are still entitled to drain it.
	h.collectLocked()
	if graceful {
		h.closed = true
	} else {
		h.lost = true
	}
	for _, s := range h.stores {
		s.SetChangeSink(nil)
	}
	for i := range h.shards {
		sj := &h.shards[i]
		sj.mu.Lock()
		sj.ents, sj.bytes = nil, 0
		sj.mu.Unlock()
	}
	h.unreleased.Store(0)
	h.wakeAll()
}

// Subscribe opens a change-stream subscription: the first Batch holds
// every entry of epochs not yet released at this moment (which includes
// everything published after this call, and possibly the already-
// published part of the current uncommitted epochs — a harmless superset
// for last-write-wins replay). For a consistent full copy, Subscribe
// first, then scan — the scan observes everything the subscription will
// not replay.
func (h *Hub) Subscribe() *Subscription { return h.subscribe(false) }

// SubscribePinned is Subscribe for the snapshot exporter: a pinned
// subscription is never cut by the released-backlog budget (it cannot
// consume until its scan finishes, so "lagging" is its job description);
// the unreleased-overflow cut still applies to it.
func (h *Hub) SubscribePinned() *Subscription { return h.subscribe(true) }

func (h *Hub) subscribe(pinned bool) *Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.collectLocked() // start past everything already released
	s := &Subscription{h: h, next: h.tail(), lastEpoch: h.collected, pinned: pinned}
	if h.lost {
		s.dead = true
		return s
	}
	h.subs[s] = struct{}{}
	h.subCount.Add(1)
	return s
}

// Subscription is one consumer's position in the change stream. Next is
// single-consumer; Close may be called concurrently to unblock it.
type Subscription struct {
	h         *Hub
	next      uint64 // absolute seq of the next undelivered released entry
	lastEpoch uint64 // Epoch of the last delivered Batch
	pending   uint64 // released-but-undelivered bytes (lag metric)
	pinned    bool   // exempt from the released-backlog cut (exporter)
	dead      bool   // cut loose (lagged out past the budget)
	closed    bool   // consumer closed
}

// Next blocks until the released barrier moves past the last delivered
// batch and returns the newly released slice of the stream (possibly
// empty: the primary committed an epoch with no writes). Returns
// ErrStreamClosed after a clean primary shutdown has been fully drained,
// ErrStreamLost if the subscriber lagged out or the primary crashed —
// but a crash still lets the subscriber drain everything already
// released first: released epochs are globally committed and survive the
// crash on the primary's NVM, so completing the consistent prefix is
// truthful; only the unreleased tail is lost.
func (s *Subscription) Next() (Batch, error) {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		// Load the wake generation before checking any condition, then
		// merge any newly released shard prefixes (the commit hook only
		// moves the barrier; the heavy lifting happens here, on the
		// consumer's time, never inside the stop-the-world window). The
		// batch horizon is the *collected* epoch — everything at or below
		// it has been merged, so a delivered batch really is the complete
		// prefix it claims to be.
		ch := *h.wake.Load()
		h.collectLocked()
		if s.dead {
			// Cut loose for lagging: retained entries may be gone, so the
			// prefix cannot be completed.
			return Batch{}, ErrStreamLost
		}
		if s.closed {
			return Batch{}, ErrStreamClosed
		}
		if s.next < h.tail() || h.collected > s.lastEpoch {
			b := Batch{Epoch: h.collected}
			if s.next < h.tail() {
				i := int(s.next - h.base)
				b.Entries = append([]Entry(nil), h.ents[i:]...)
				for idx := range b.Entries {
					s.pending -= entryBytes(&b.Entries[idx])
				}
				s.next = h.tail()
				h.trimLocked()
			}
			s.lastEpoch = b.Epoch
			return b, nil
		}
		if h.lost {
			return Batch{}, ErrStreamLost
		}
		if h.closed {
			return Batch{}, ErrStreamClosed
		}
		// Block until the next wake event: the generation channel loaded
		// above is closed by whoever changes the state we just examined,
		// so no wakeup can slip between the checks and this wait.
		h.mu.Unlock()
		<-ch
		h.mu.Lock()
	}
}

// PendingBytes reports how many released entry bytes this subscriber has
// not yet consumed — the byte lag of a consumer driven by Next.
func (s *Subscription) PendingBytes() uint64 {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	s.h.collectLocked()
	return s.pending
}

// Released returns the stream's released epoch high-water mark.
func (s *Subscription) Released() uint64 { return s.h.Released() }

// Unpin makes a pinned subscription subject to the normal backlog budget
// again. A replica calls this once its apply loop has taken its first
// delivery: from then on it is an active consumer, and if it cannot keep
// up with the primary's write rate the budget should cut it like anyone
// else.
func (s *Subscription) Unpin() {
	s.h.mu.Lock()
	defer s.h.mu.Unlock()
	s.pinned = false
}

// Close detaches the subscription, releasing its retention and unblocking
// a concurrent Next (which returns ErrStreamClosed).
func (s *Subscription) Close() {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.closed || s.dead {
		return
	}
	s.closed = true
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		h.subCount.Add(-1)
	}
	if h.strikeSub == s {
		h.strikeSub = nil
	}
	h.trimLocked()
	h.wakeAll()
}
