package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"incll/internal/core"
)

// Target is where Restore applies a snapshot stream: any keyspace that
// accepts puts and deletes. The façade adapts a fresh DB (any shard
// count — records route by key), a test adapts a model map.
type Target struct {
	// Put applies one key/value record.
	Put func(k, v []byte) error
	// Delete applies one deletion.
	Delete func(k []byte) error
	// Checkpoint, if non-nil, commits the restored state once the stream
	// has fully verified.
	Checkpoint func()
}

// Restore reads one snapshot stream from r and applies it to t in stream
// order: base records first, then the anchoring change records. Every
// frame's checksum and the end frame's counts and end-to-end record sum
// are verified; any mismatch, truncation, or framing error returns a
// wrapped ErrBadStream. The target's Checkpoint runs only after the whole
// stream verified, so a caller that restores into a fresh DB and checks
// the error never commits a corrupt restore.
func Restore(r io.Reader, t Target) (SnapshotInfo, error) {
	fr := newFrameReader(r)

	ft, payload, err := fr.readFrame()
	if err != nil {
		return SnapshotInfo{}, err
	}
	if ft != ftHeader || len(payload) != 14 {
		return SnapshotInfo{}, fmt.Errorf("%w: missing header frame", ErrBadStream)
	}
	if v := binary.LittleEndian.Uint16(payload); v != FormatVersion {
		return SnapshotInfo{}, fmt.Errorf("%w: unsupported format version %d", ErrBadStream, v)
	}
	info := SnapshotInfo{SourceShards: int(binary.LittleEndian.Uint32(payload[2:]))}

	sawKV := false
	for {
		ft, payload, err = fr.readFrame()
		if err != nil {
			return info, err
		}
		switch ft {
		case ftKV:
			if sawKV && info.ChangeOps > 0 {
				return info, fmt.Errorf("%w: kv frame after change frames", ErrBadStream)
			}
			sawKV = true
			for off := 0; off < len(payload); {
				k, v, next, perr := fr.parseKVRecord(payload, off)
				if perr != nil {
					return info, perr
				}
				if err := t.Put(k, v); err != nil {
					return info, fmt.Errorf("repl: restore put: %w", err)
				}
				info.Keys++
				off = next
			}
		case ftChanges:
			if len(payload) < 8 {
				return info, fmt.Errorf("%w: short change frame", ErrBadStream)
			}
			for off := 8; off < len(payload); {
				op, k, v, next, perr := fr.parseChangeRecord(payload, off)
				if perr != nil {
					return info, perr
				}
				switch core.ChangeOp(op) {
				case core.ChangePut:
					if err := t.Put(k, v); err != nil {
						return info, fmt.Errorf("repl: restore put: %w", err)
					}
				case core.ChangeDelete:
					if err := t.Delete(k); err != nil {
						return info, fmt.Errorf("repl: restore delete: %w", err)
					}
				default:
					return info, fmt.Errorf("%w: unknown change op %d", ErrBadStream, op)
				}
				info.ChangeOps++
				off = next
			}
		case ftEnd:
			if len(payload) != 32 {
				return info, fmt.Errorf("%w: short end frame", ErrBadStream)
			}
			info.AnchorEpoch = binary.LittleEndian.Uint64(payload)
			wantKeys := binary.LittleEndian.Uint64(payload[8:])
			wantOps := binary.LittleEndian.Uint64(payload[16:])
			wantSum := binary.LittleEndian.Uint64(payload[24:])
			if info.Keys != wantKeys || info.ChangeOps != wantOps {
				return info, fmt.Errorf("%w: record counts diverge (got %d keys/%d ops, stream says %d/%d)",
					ErrBadStream, info.Keys, info.ChangeOps, wantKeys, wantOps)
			}
			if fr.sum != wantSum {
				return info, fmt.Errorf("%w: end-to-end record checksum mismatch", ErrBadStream)
			}
			info.Bytes = fr.bytesIn
			if t.Checkpoint != nil {
				t.Checkpoint()
			}
			return info, nil
		default:
			return info, fmt.Errorf("%w: unexpected frame type %d", ErrBadStream, ft)
		}
	}
}
