package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"incll/internal/core"
	"incll/internal/obs"
)

// SnapshotInfo describes one snapshot stream (written or restored).
type SnapshotInfo struct {
	// AnchorEpoch is the globally committed epoch the snapshot is exact
	// at: restoring the stream reproduces the primary's state at this
	// epoch's coordinated commit point, byte for byte.
	AnchorEpoch uint64
	// Keys is the number of base records the scan exported.
	Keys uint64
	// ChangeOps is the number of change records appended after the scan
	// to close the gap between the fuzzy scan and the anchor.
	ChangeOps uint64
	// Bytes is the stream size on the wire, framing included.
	Bytes int64
	// SourceShards is the source DB's shard count (informational: a
	// stream restores into any shard count).
	SourceShards int
}

// Exporter writes one consistent online snapshot of a live DB. The
// protocol is subscribe → fuzzy scan → anchor → drain:
//
//  1. Subscribe to the change stream. Every mutation applied from here on
//     is captured; every mutation applied before is visible to the scan.
//  2. Scan the live tree with the batched cursor and emit kv frames. The
//     cursor holds the epoch machinery for at most one batch at a time,
//     so the export never delays a checkpoint by more than one batch —
//     the scan is fuzzy (it observes in-flight writes), which step 4
//     repairs.
//  3. Force one checkpoint and take the released epoch as the anchor A:
//     a globally committed epoch at least as new as every mutation the
//     scan could have observed.
//  4. Drain the subscription through A and emit the entries as change
//     frames. Replaying them over the fuzzy scan in journal order makes
//     every key's final value its last committed write at A: writes the
//     scan missed are in the journal (they happened after step 1), and
//     writes the scan saw early are either final or superseded by a
//     journal entry. The result is exact at A.
//
// The end frame carries A and the end-to-end checksum.
type Exporter struct {
	// Hub is the source DB's change hub.
	Hub *Hub
	// NewIter opens a cursor over the whole source DB (the k-way merge
	// cursor when sharded).
	NewIter func() core.Cursor
	// Checkpoint runs one cluster-wide epoch advance.
	Checkpoint func()
	// Shards is the source shard count (stamped in the header frame).
	Shards int
	// KeyHint is an optional live-key estimate for the header frame.
	KeyHint uint64
	// Hook, when non-nil, fires at every protocol point; a non-nil return
	// aborts the export with that error. Crash-injection tests only.
	Hook func(point string) error
	// Trace, when non-nil, receives the anchor event (internal/obs).
	Trace *obs.Tracer
}

func (e *Exporter) hook(point string) error {
	if e.Hook == nil {
		return nil
	}
	return e.Hook(point)
}

// Export streams the snapshot to w.
func (e *Exporter) Export(w io.Writer) (SnapshotInfo, error) {
	// Pinned: the export subscription necessarily lags for the whole scan
	// and must not be cut by the released-backlog budget.
	sub := e.Hub.SubscribePinned()
	defer sub.Close()
	fw := newFrameWriter(w)

	if err := e.hook("header"); err != nil {
		return SnapshotInfo{}, err
	}
	var hdr []byte
	hdr = appendU16(hdr, FormatVersion)
	hdr = appendU32(hdr, uint32(e.Shards))
	hdr = appendU64(hdr, e.KeyHint)
	if err := fw.writeFrame(ftHeader, hdr); err != nil {
		return SnapshotInfo{}, err
	}

	// Phase 2: the fuzzy scan.
	info := SnapshotInfo{SourceShards: e.Shards}
	payload := make([]byte, 0, frameTarget+16<<10)
	it := e.NewIter()
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		payload = fw.appendKVRecord(payload, it.Key(), it.Value())
		info.Keys++
		if len(payload) >= frameTarget {
			if err := e.hook("kv-frame"); err != nil {
				return info, err
			}
			if err := fw.writeFrame(ftKV, payload); err != nil {
				return info, err
			}
			payload = payload[:0]
		}
	}
	if len(payload) > 0 {
		if err := e.hook("kv-frame"); err != nil {
			return info, err
		}
		if err := fw.writeFrame(ftKV, payload); err != nil {
			return info, err
		}
	}
	if err := e.hook("scan-done"); err != nil {
		return info, err
	}

	// Phase 3: anchor. The checkpoint commits (at least) the epoch that
	// was running when the scan finished, so Released() now names a
	// globally committed epoch covering everything the scan observed.
	e.Checkpoint()
	anchor := e.Hub.Released()
	info.AnchorEpoch = anchor
	e.Trace.Record(obs.EvSnapshotAnchor, -1, anchor, 0, int64(info.Keys))
	if err := e.hook("anchor"); err != nil {
		return info, err
	}

	// Phase 4: drain the subscription through the anchor. Change frames
	// chunk at the same payload target as kv frames — a scan-concurrent
	// write burst must not produce a frame the reader's size limit
	// rejects.
	for {
		b, err := sub.Next()
		if err != nil {
			return info, fmt.Errorf("repl: snapshot change drain: %w", err)
		}
		ep := b.Epoch
		if ep > anchor {
			ep = anchor
		}
		payload = appendU64(payload[:0], ep)
		n := 0
		flushChanges := func() error {
			if n == 0 {
				return nil
			}
			if err := e.hook("changes-frame"); err != nil {
				return err
			}
			if err := fw.writeFrame(ftChanges, payload); err != nil {
				return err
			}
			info.ChangeOps += uint64(n)
			payload = appendU64(payload[:0], ep)
			n = 0
			return nil
		}
		for i := range b.Entries {
			en := &b.Entries[i]
			if en.Epoch > anchor {
				// Released by a concurrent tick past the anchor; the
				// stream is exact at the anchor, so later epochs stay out.
				continue
			}
			payload = fw.appendChangeRecord(payload, byte(en.Op), en.Key, en.Val)
			n++
			if len(payload) >= frameTarget {
				if err := flushChanges(); err != nil {
					return info, err
				}
			}
		}
		if err := flushChanges(); err != nil {
			return info, err
		}
		if b.Epoch >= anchor {
			break
		}
	}

	if err := e.hook("end"); err != nil {
		return info, err
	}
	var end []byte
	end = appendU64(end, anchor)
	end = appendU64(end, info.Keys)
	end = appendU64(end, info.ChangeOps)
	end = appendU64(end, fw.sum)
	if err := fw.writeFrame(ftEnd, end); err != nil {
		return info, err
	}
	info.Bytes = fw.bytesOut
	return info, nil
}

// Fixed-width little-endian appends, matching the reader side.
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
