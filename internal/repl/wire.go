// Package repl is the checkpoint-anchored replication subsystem: it turns
// the store's per-epoch consistency points into things that can leave the
// process — a consistent online snapshot of a live DB written to any
// io.Writer, and an epoch-tagged change stream (CDC) whose consistent
// prefix is released to subscribers at each checkpoint commit.
//
// The two compose into replication: a follower bootstrapped from a
// snapshot and fed the change stream converges to the primary, epoch by
// epoch, and is exact at every released boundary (see DESIGN.md §10).
//
// This file defines the wire format. A stream is a sequence of
// checksummed, length-prefixed frames:
//
//	magic   uint32 (little-endian, "IRPL")
//	type    uint8
//	length  uint32 (payload bytes)
//	crc32   uint32 (IEEE, of the payload)
//	payload
//
// Frame payloads hold fixed-format records, echoing the constant-time
// fixed-size allocation discipline the heap uses — the framing is as
// mechanical as the allocator's size classes:
//
//	header:  version u16, source shards u32, key-count hint u64
//	kv:      {klen uvarint, vlen uvarint, key, val}… (a snapshot batch)
//	changes: epoch u64, then {op u8, klen uvarint, vlen uvarint, key, val}…
//	end:     anchor epoch u64, keys u64, change ops u64, stream sum u64
//
// Every frame is independently verifiable (crc32), and the end frame's
// stream sum — FNV-1a over every record's serialized bytes, framing
// excluded — verifies the stream end to end: a truncated, reordered, or
// bit-flipped stream can never restore silently.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameMagic = 0x4C505249 // "IRPL"

	ftHeader  = 1
	ftKV      = 2
	ftChanges = 3
	ftEnd     = 4

	// FormatVersion is the snapshot stream format version.
	FormatVersion = 1

	frameHdrBytes = 13
	// maxFramePayload bounds a frame so a corrupt length fails fast
	// instead of allocating gigabytes.
	maxFramePayload = 1 << 26
	// frameTarget is the payload size at which a batch frame is flushed.
	frameTarget = 256 << 10
)

// ErrBadStream reports a malformed, corrupt, or truncated snapshot stream.
// Restore never half-applies silently: any framing, checksum, or count
// mismatch surfaces as (a wrapped) ErrBadStream.
var ErrBadStream = errors.New("repl: malformed or corrupt snapshot stream")

// FNV-1a, the stream's end-to-end record checksum.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvAdd(sum uint64, b []byte) uint64 {
	for _, c := range b {
		sum = (sum ^ uint64(c)) * fnvPrime
	}
	return sum
}

// frameWriter emits frames and maintains the running record checksum.
type frameWriter struct {
	w        io.Writer
	hdr      [frameHdrBytes]byte
	sum      uint64 // FNV-1a over record bytes (framing excluded)
	bytesOut int64
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: w, sum: fnvOffset}
}

func (fw *frameWriter) writeFrame(ft byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		// Producing a frame the reader's size limit would reject means the
		// stream could never restore; fail the export instead.
		return fmt.Errorf("%w: frame payload %d exceeds limit (writer bug)", ErrBadStream, len(payload))
	}
	binary.LittleEndian.PutUint32(fw.hdr[0:], frameMagic)
	fw.hdr[4] = ft
	binary.LittleEndian.PutUint32(fw.hdr[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.hdr[9:], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	fw.bytesOut += int64(frameHdrBytes + len(payload))
	return nil
}

// appendKVRecord serializes one snapshot record into payload and folds it
// into the stream sum.
func (fw *frameWriter) appendKVRecord(payload []byte, k, v []byte) []byte {
	start := len(payload)
	payload = binary.AppendUvarint(payload, uint64(len(k)))
	payload = binary.AppendUvarint(payload, uint64(len(v)))
	payload = append(payload, k...)
	payload = append(payload, v...)
	fw.sum = fnvAdd(fw.sum, payload[start:])
	return payload
}

// appendChangeRecord serializes one change record into payload and folds
// it into the stream sum.
func (fw *frameWriter) appendChangeRecord(payload []byte, op byte, k, v []byte) []byte {
	start := len(payload)
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(k)))
	payload = binary.AppendUvarint(payload, uint64(len(v)))
	payload = append(payload, k...)
	payload = append(payload, v...)
	fw.sum = fnvAdd(fw.sum, payload[start:])
	return payload
}

// frameReader parses and verifies frames.
type frameReader struct {
	r       io.Reader
	hdr     [frameHdrBytes]byte
	payload []byte
	sum     uint64
	bytesIn int64
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r, sum: fnvOffset}
}

// readFrame returns the next frame's type and payload (valid until the
// next call), verifying magic and checksum.
func (fr *frameReader) readFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: truncated at frame header", ErrBadStream)
		}
		return 0, nil, err
	}
	if binary.LittleEndian.Uint32(fr.hdr[0:]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad frame magic", ErrBadStream)
	}
	ft := fr.hdr[4]
	n := binary.LittleEndian.Uint32(fr.hdr[5:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds limit", ErrBadStream, n)
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame payload", ErrBadStream)
	}
	if crc32.ChecksumIEEE(fr.payload) != binary.LittleEndian.Uint32(fr.hdr[9:]) {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch", ErrBadStream)
	}
	fr.bytesIn += int64(frameHdrBytes) + int64(n)
	return ft, fr.payload, nil
}

// parseKVRecord decodes one snapshot record at payload[off:], folding its
// serialized bytes into the stream sum. The returned slices alias payload.
func (fr *frameReader) parseKVRecord(payload []byte, off int) (k, v []byte, next int, err error) {
	k, v, next, err = parseKV(payload, off)
	if err == nil {
		fr.sum = fnvAdd(fr.sum, payload[off:next])
	}
	return k, v, next, err
}

// parseChangeRecord decodes one change record at payload[off:], folding
// its serialized bytes into the stream sum. The returned slices alias
// payload.
func (fr *frameReader) parseChangeRecord(payload []byte, off int) (op byte, k, v []byte, next int, err error) {
	if off >= len(payload) {
		return 0, nil, nil, 0, fmt.Errorf("%w: truncated change record", ErrBadStream)
	}
	op = payload[off]
	k, v, next, err = parseKV(payload, off+1)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	fr.sum = fnvAdd(fr.sum, payload[off:next])
	return op, k, v, next, nil
}

// parseKV decodes a {klen, vlen, key, val} group at payload[off:]. Each
// length is bounds-checked on its own before any arithmetic combines
// them, so a crafted (even CRC-consistent) stream with huge uvarint
// lengths fails with ErrBadStream instead of overflowing into a panic.
func parseKV(payload []byte, off int) (k, v []byte, next int, err error) {
	kl, n1 := binary.Uvarint(payload[off:])
	if n1 <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrBadStream)
	}
	vl, n2 := binary.Uvarint(payload[off+n1:])
	if n2 <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrBadStream)
	}
	p := off + n1 + n2
	rest := uint64(len(payload) - p)
	if kl > rest || vl > rest-kl {
		return nil, nil, 0, fmt.Errorf("%w: record overruns frame", ErrBadStream)
	}
	k = payload[p : p+int(kl)]
	v = payload[p+int(kl) : p+int(kl)+int(vl)]
	return k, v, p + int(kl) + int(vl), nil
}
