package repl

import (
	"bytes"
	"errors"
	"testing"

	"incll/internal/core"
	"incll/internal/nvm"
)

func newStore(t *testing.T) *core.Store {
	t.Helper()
	a := nvm.New(nvm.Config{Words: 1 << 21})
	s, _ := core.Open(a, core.Config{LogSegWords: 1 << 14, HeapWords: 1 << 20})
	return s
}

func TestReplWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	var payload []byte
	payload = fw.appendKVRecord(payload, []byte("alpha"), []byte("value-1"))
	payload = fw.appendKVRecord(payload, []byte("beta"), nil)
	if err := fw.writeFrame(ftKV, payload); err != nil {
		t.Fatal(err)
	}
	var ch []byte
	ch = appendU64(ch, 7)
	ch = fw.appendChangeRecord(ch, byte(core.ChangeDelete), []byte("alpha"), nil)
	if err := fw.writeFrame(ftChanges, ch); err != nil {
		t.Fatal(err)
	}

	fr := newFrameReader(bytes.NewReader(buf.Bytes()))
	ft, p, err := fr.readFrame()
	if err != nil || ft != ftKV {
		t.Fatalf("frame 1: type %d err %v", ft, err)
	}
	k, v, off, err := fr.parseKVRecord(p, 0)
	if err != nil || string(k) != "alpha" || string(v) != "value-1" {
		t.Fatalf("record 1: %q %q %v", k, v, err)
	}
	k, v, off, err = fr.parseKVRecord(p, off)
	if err != nil || string(k) != "beta" || len(v) != 0 {
		t.Fatalf("record 2: %q %q %v", k, v, err)
	}
	if off != len(p) {
		t.Fatalf("trailing bytes in kv frame")
	}
	ft, p, err = fr.readFrame()
	if err != nil || ft != ftChanges {
		t.Fatalf("frame 2: type %d err %v", ft, err)
	}
	op, k, _, _, err := fr.parseChangeRecord(p, 8)
	if err != nil || core.ChangeOp(op) != core.ChangeDelete || string(k) != "alpha" {
		t.Fatalf("change record: op %d key %q err %v", op, k, err)
	}
	// Writer and reader fold identical record bytes into the stream sum.
	if fr.sum != fw.sum {
		t.Fatalf("stream sum diverged: writer %#x reader %#x", fw.sum, fr.sum)
	}
}

func TestReplWireCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	payload := fw.appendKVRecord(nil, []byte("key"), []byte("val"))
	if err := fw.writeFrame(ftKV, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: frame checksum must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	fr := newFrameReader(bytes.NewReader(flipped))
	if _, _, err := fr.readFrame(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("corrupt payload: err %v, want ErrBadStream", err)
	}

	// Truncate mid-payload: must fail, not hang or succeed.
	fr = newFrameReader(bytes.NewReader(raw[:len(raw)-2]))
	if _, _, err := fr.readFrame(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("truncated payload: err %v, want ErrBadStream", err)
	}
}

func TestReplJournalReleaseBarrier(t *testing.T) {
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 0)
	sub := h.Subscribe()
	defer sub.Close()

	s.PutBytes([]byte("a"), []byte("1"))
	s.PutBytes([]byte("b"), []byte("2"))
	s.Delete([]byte("a"))

	// Nothing released before the checkpoint commit.
	if got := sub.PendingBytes(); got != 0 {
		t.Fatalf("pending before commit: %d", got)
	}
	epoch := s.Epochs().Current()
	s.Advance()

	b, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch != epoch {
		t.Fatalf("batch epoch %d, want %d", b.Epoch, epoch)
	}
	if len(b.Entries) != 3 {
		t.Fatalf("entries: %d, want 3", len(b.Entries))
	}
	want := []struct {
		op  core.ChangeOp
		key string
	}{{core.ChangePut, "a"}, {core.ChangePut, "b"}, {core.ChangeDelete, "a"}}
	for i, w := range want {
		e := b.Entries[i]
		if e.Op != w.op || string(e.Key) != w.key || e.Epoch != epoch {
			t.Fatalf("entry %d: op %d key %q epoch %d", i, e.Op, e.Key, e.Epoch)
		}
	}
}

func TestReplJournalEmptyEpochAdvancesHorizon(t *testing.T) {
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 0)
	sub := h.Subscribe()
	defer sub.Close()
	s.Advance() // epoch with no writes
	b, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 || b.Epoch == 0 {
		t.Fatalf("empty-epoch batch: %d entries, epoch %d", len(b.Entries), b.Epoch)
	}
}

func TestReplJournalDropsWithoutSubscribers(t *testing.T) {
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 0)
	s.PutBytes([]byte("early"), []byte("x"))
	s.Advance()
	sub := h.Subscribe()
	defer sub.Close()
	s.PutBytes([]byte("late"), []byte("y"))
	s.Advance()
	b, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 1 || string(b.Entries[0].Key) != "late" {
		t.Fatalf("expected only post-subscribe entry, got %d entries", len(b.Entries))
	}
	if h.bytes != 0 {
		t.Fatalf("journal retains %d bytes after drain", h.bytes)
	}
}

func TestReplLaggedSubscriberCutLoose(t *testing.T) {
	// Two shards so a release wave can exceed the budget without any one
	// shard's unreleased journal tripping the overrun cut: per-shard
	// unreleased stays under budget, the merged wave lands over it.
	s1, s2 := newStore(t), newStore(t)
	h := NewHub([]*core.Store{s1, s2}, 1000)
	sub := h.Subscribe()
	// Each wave stays under the budget while unreleased (so the overrun
	// cut never fires); the released backlog crosses it after two
	// unconsumed waves.
	wave := func() {
		for i := 0; i < 3; i++ {
			s1.PutBytes([]byte{1, byte(i)}, bytes.Repeat([]byte{byte(i)}, 48))
			s2.PutBytes([]byte{2, byte(i)}, bytes.Repeat([]byte{byte(i)}, 48))
		}
		s1.Advance()
		s2.Advance()
	}

	// An over-budget backlog does NOT cut a prompt subscriber on first
	// sight (the strike rule): the consumer gets one collect-to-collect
	// window before the floor position counts as stuck.
	wave()
	wave()
	if b, err := sub.Next(); err != nil || len(b.Entries) != 12 {
		t.Fatalf("prompt subscriber after oversized backlog: %d entries, err %v", len(b.Entries), err)
	}

	// A subscriber that makes no progress across two over-budget collects
	// is cut loose. PendingBytes forces the collects without consuming.
	wave()
	_ = sub.PendingBytes() // collect: under budget, no strike
	wave()
	_ = sub.PendingBytes() // collect: over budget, strike recorded
	wave()
	if _, err := sub.Next(); !errors.Is(err, ErrStreamLost) { // collect: no progress since the strike
		t.Fatalf("stuck subscriber: err %v, want ErrStreamLost", err)
	}
	// The journal itself must have shed the retained bytes.
	if h.bytes != 0 {
		t.Fatalf("journal still retains %d bytes", h.bytes)
	}
}

func TestReplHubCloseSemantics(t *testing.T) {
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 0)
	sub := h.Subscribe()
	s.PutBytes([]byte("k"), []byte("v"))
	s.Shutdown() // clean shutdown commits the running epoch and fires the hook
	h.Close(true)
	b, err := sub.Next()
	if err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	if len(b.Entries) != 1 {
		t.Fatalf("drain delivered %d entries", len(b.Entries))
	}
	if _, err := sub.Next(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("after drain: err %v, want ErrStreamClosed", err)
	}

	s2 := newStore(t)
	h2 := NewHub([]*core.Store{s2}, 0)
	sub2 := h2.Subscribe()
	h2.Close(false) // crash
	if _, err := sub2.Next(); !errors.Is(err, ErrStreamLost) {
		t.Fatalf("after crash: err %v, want ErrStreamLost", err)
	}
}

func TestReplWireHugeLengthRejected(t *testing.T) {
	// A CRC-consistent frame whose record claims a 2^64-1-byte key must
	// fail with ErrBadStream, not overflow into a slice-bounds panic.
	var payload []byte
	payload = append(payload, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01) // klen = 2^64-1
	payload = append(payload, 0x02)                                                       // vlen = 2
	payload = append(payload, 'a', 'b', 'c')
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if err := fw.writeFrame(ftKV, payload); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(bytes.NewReader(buf.Bytes()))
	_, p, err := fr.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fr.parseKVRecord(p, 0); !errors.Is(err, ErrBadStream) {
		t.Fatalf("huge klen: err %v, want ErrBadStream", err)
	}
}

func TestReplUnreleasedOverrunCutsSubscribers(t *testing.T) {
	// A subscriber exists but checkpoints never run: once the unreleased
	// journal outgrows the budget, memory is bounded by sacrificing the
	// stream — every subscriber (even a pinned one) is cut and the
	// journals dropped.
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 1024)
	sub := h.Subscribe()
	pinned := h.SubscribePinned()
	for i := 0; i < 64; i++ {
		s.PutBytes([]byte{byte(i)}, bytes.Repeat([]byte{byte(i)}, 64))
	}
	if _, err := sub.Next(); !errors.Is(err, ErrStreamLost) {
		t.Fatalf("subscriber after overrun: err %v, want ErrStreamLost", err)
	}
	if _, err := pinned.Next(); !errors.Is(err, ErrStreamLost) {
		t.Fatalf("pinned subscriber after overrun: err %v, want ErrStreamLost", err)
	}
	var unreleased uint64
	for i := range h.shards {
		unreleased += h.shards[i].bytes
	}
	if unreleased != 0 || h.bytes != 0 {
		t.Fatalf("journal retains %d unreleased / %d released bytes after overrun", unreleased, h.bytes)
	}
}

func TestReplPinnedSubscriberSurvivesBacklogCut(t *testing.T) {
	// The exporter's pinned subscription lags by construction (it cannot
	// consume during the scan) and must survive the released-backlog cut
	// that removes an equally lagging plain subscriber.
	s := newStore(t)
	h := NewHub([]*core.Store{s}, 2048)
	plain := h.Subscribe()
	pinned := h.SubscribePinned()
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 16; i++ {
			s.PutBytes([]byte{byte(wave), byte(i)}, bytes.Repeat([]byte{byte(i)}, 64))
		}
		s.Advance()
		// A consumer-side touch collects each wave into the released
		// backlog without consuming it (what a consumer blocked in Next
		// does on its own when woken).
		_ = plain.PendingBytes()
	}
	if _, err := plain.Next(); !errors.Is(err, ErrStreamLost) {
		t.Fatalf("plain laggard: err %v, want ErrStreamLost", err)
	}
	b, err := pinned.Next()
	if err != nil {
		t.Fatalf("pinned laggard: err %v, want full delivery", err)
	}
	if len(b.Entries) != 48 {
		t.Fatalf("pinned delivery: %d entries, want 48", len(b.Entries))
	}
	pinned.Close()
}
