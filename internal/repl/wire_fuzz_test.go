package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

func crc32Of(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// buildStream assembles a small, fully valid snapshot stream (header, one
// kv frame, one change frame, end frame) through the real writer, so the
// counts and the end-to-end record sum are correct by construction.
func buildStream(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)

	hdr := make([]byte, 14)
	binary.LittleEndian.PutUint16(hdr, FormatVersion)
	binary.LittleEndian.PutUint32(hdr[2:], 1)
	binary.LittleEndian.PutUint64(hdr[6:], 2)
	if err := fw.writeFrame(ftHeader, hdr); err != nil {
		t.Fatal(err)
	}

	var kv []byte
	kv = fw.appendKVRecord(kv, []byte("alpha"), []byte("one"))
	kv = fw.appendKVRecord(kv, []byte("beta"), bytes.Repeat([]byte("v"), 300))
	if err := fw.writeFrame(ftKV, kv); err != nil {
		t.Fatal(err)
	}

	ch := make([]byte, 8)
	binary.LittleEndian.PutUint64(ch, 7)
	ch = fw.appendChangeRecord(ch, 1, []byte("gamma"), []byte("new"))
	ch = fw.appendChangeRecord(ch, 2, []byte("alpha"), nil)
	if err := fw.writeFrame(ftChanges, ch); err != nil {
		t.Fatal(err)
	}

	end := make([]byte, 32)
	binary.LittleEndian.PutUint64(end, 7)      // anchor
	binary.LittleEndian.PutUint64(end[8:], 2)  // keys
	binary.LittleEndian.PutUint64(end[16:], 2) // change ops
	binary.LittleEndian.PutUint64(end[24:], fw.sum)
	if err := fw.writeFrame(ftEnd, end); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeInto runs Restore against a throwaway map target.
func decodeInto(data []byte) (SnapshotInfo, error) {
	m := map[string][]byte{}
	return Restore(bytes.NewReader(data), Target{
		Put:    func(k, v []byte) error { m[string(k)] = append([]byte(nil), v...); return nil },
		Delete: func(k []byte) error { delete(m, string(k)); return nil },
	})
}

// FuzzDecodeFrame feeds arbitrary bytes to the stream decoder. The
// contract under fuzzing: never panic, never allocate beyond the frame
// payload limit, and classify every malformed input as ErrBadStream —
// arbitrary bytes must not restore successfully unless they are the one
// valid seed stream.
func FuzzDecodeFrame(f *testing.F) {
	valid := buildStream(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated inside the end frame
	f.Add(valid[:frameHdrBytes+3])
	f.Add([]byte{})
	f.Add([]byte("IRPL garbage that is not a frame"))
	// A header claiming a giant payload: must fail fast, not allocate.
	huge := append([]byte(nil), valid[:frameHdrBytes]...)
	binary.LittleEndian.PutUint32(huge[5:], maxFramePayload+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := decodeInto(data)
		if err == nil {
			if !bytes.Equal(data, valid) {
				// Only frame-level trailing garbage can hide behind a valid
				// stream: Restore stops at the end frame by design (the
				// replication handshake continues on the same connection).
				if !bytes.HasPrefix(data, valid) {
					t.Fatalf("corrupt stream restored silently: %d keys, %d ops", info.Keys, info.ChangeOps)
				}
			}
			return
		}
		if !errors.Is(err, ErrBadStream) {
			t.Fatalf("decoder returned a non-ErrBadStream error for malformed input: %v", err)
		}
	})
}

// TestDecodeCorruptFrames is the deterministic companion to
// FuzzDecodeFrame: every class of corruption and truncation must surface
// as ErrBadStream, never as a panic, a silent success, or a giant
// allocation.
func TestDecodeCorruptFrames(t *testing.T) {
	valid := buildStream(t)

	// Locate the second frame's header to corrupt mid-stream fields.
	frame2 := frameHdrBytes + int(binary.LittleEndian.Uint32(valid[5:]))

	mut := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error detail
	}{
		{"empty", nil, "truncated at frame header"},
		{"truncated header", valid[:5], "truncated at frame header"},
		{"truncated payload", valid[:frameHdrBytes+7], "truncated frame payload"},
		{"truncated mid stream", valid[:frame2+4], "truncated"},
		{"missing end frame", valid[:frame2], "truncated at frame header"},
		{"bad magic", mut(func(b []byte) []byte { b[0] ^= 0xff; return b }), "bad frame magic"},
		{"bad magic mid stream", mut(func(b []byte) []byte { b[frame2+1] ^= 0xff; return b }), "bad frame magic"},
		{"payload bit flip", mut(func(b []byte) []byte { b[frameHdrBytes] ^= 0x01; return b }), "checksum mismatch"},
		{"crc bit flip", mut(func(b []byte) []byte { b[9] ^= 0x80; return b }), "checksum mismatch"},
		{"oversized length", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:], maxFramePayload+1)
			return b
		}), "exceeds limit"},
		{"unknown frame type", mut(func(b []byte) []byte {
			// Rewrite frame 2's type and fix its crc so only the type is wrong.
			b[frame2+4] = 9
			return b
		}), "unexpected frame type"},
		{"wrong version", func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[frameHdrBytes:], FormatVersion+1)
			n := binary.LittleEndian.Uint32(b[5:])
			binary.LittleEndian.PutUint32(b[9:], crc32Of(b[frameHdrBytes:frameHdrBytes+int(n)]))
			return b
		}(), "unsupported format version"},
		{"not a header frame first", valid[frame2:], "missing header frame"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeInto(tc.data)
			if !errors.Is(err, ErrBadStream) {
				t.Fatalf("got %v, want ErrBadStream", err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %q, want detail containing %q", err, tc.want)
			}
		})
	}

	// A CRC-consistent frame with a lying record length: parseKV's bounds
	// checks must reject it before any slicing arithmetic overflows.
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	hdr := make([]byte, 14)
	binary.LittleEndian.PutUint16(hdr, FormatVersion)
	if err := fw.writeFrame(ftHeader, hdr); err != nil {
		t.Fatal(err)
	}
	lying := binary.AppendUvarint(nil, 1<<62) // klen far beyond the payload
	lying = binary.AppendUvarint(lying, 1<<62)
	if err := fw.writeFrame(ftKV, lying); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeInto(buf.Bytes()); !errors.Is(err, ErrBadStream) {
		t.Fatalf("lying record lengths: got %v, want ErrBadStream", err)
	}

	// Count and sum verification: a stream whose end frame lies about
	// either must fail even though every frame checksums clean.
	endOff := len(valid) - 32 - frameHdrBytes
	for _, tc := range []struct {
		name string
		off  int // byte offset within the end payload
	}{
		{"key count lie", 8},
		{"op count lie", 16},
		{"stream sum lie", 24},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), valid...)
			p := b[endOff+frameHdrBytes:]
			binary.LittleEndian.PutUint64(p[tc.off:], binary.LittleEndian.Uint64(p[tc.off:])+1)
			binary.LittleEndian.PutUint32(b[endOff+9:], crc32Of(p))
			_, err := decodeInto(b)
			if !errors.Is(err, ErrBadStream) {
				t.Fatalf("got %v, want ErrBadStream", err)
			}
		})
	}
}

// TestDecodeTruncatedEverywhere cuts the valid stream at every byte
// boundary: every prefix must fail with ErrBadStream (ruling out both
// panics and silent partial restores at any truncation point).
func TestDecodeTruncatedEverywhere(t *testing.T) {
	valid := buildStream(t)
	for n := 0; n < len(valid); n++ {
		if _, err := decodeInto(valid[:n]); !errors.Is(err, ErrBadStream) {
			t.Fatalf("truncation at %d/%d: got %v, want ErrBadStream", n, len(valid), err)
		}
	}
	if _, err := decodeInto(valid); err != nil {
		t.Fatalf("full stream must restore: %v", err)
	}
}

// TestDecodeOversizeNoAlloc pins the fail-fast path for lying length
// fields: a header claiming a huge payload is rejected from the 13 header
// bytes alone, without allocating the claimed size.
func TestDecodeOversizeNoAlloc(t *testing.T) {
	hdr := make([]byte, frameHdrBytes)
	binary.LittleEndian.PutUint32(hdr, frameMagic)
	hdr[4] = ftHeader
	binary.LittleEndian.PutUint32(hdr[5:], 1<<31)
	fr := newFrameReader(bytes.NewReader(hdr))
	allocs := testing.AllocsPerRun(10, func() {
		fr.r = bytes.NewReader(hdr)
		if _, _, err := fr.readFrame(); !errors.Is(err, ErrBadStream) {
			t.Fatalf("got %v, want ErrBadStream", err)
		}
	})
	if allocs > 4 { // error wrapping only; never the 2 GiB payload
		t.Fatalf("oversize frame rejection allocated %v objects per run", allocs)
	}
}

// TestDecodeStopsAtEndFrame pins the handshake-critical property the
// networked replication tier depends on: Restore consumes exactly the
// stream's own bytes and not one byte past the end frame, so live
// protocol traffic following the snapshot on the same connection stays
// in the reader.
func TestDecodeStopsAtEndFrame(t *testing.T) {
	valid := buildStream(t)
	trailer := []byte("LIVE-PROTOCOL-BYTES")
	r := bytes.NewReader(append(append([]byte(nil), valid...), trailer...))
	if _, err := Restore(r, Target{
		Put:    func(k, v []byte) error { return nil },
		Delete: func(k []byte) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("Restore over-read past the end frame: %d trailing bytes left, want %d", len(rest), len(trailer))
	}
}
