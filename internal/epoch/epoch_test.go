package epoch

import (
	"sync"
	"testing"
	"time"

	"incll/internal/nvm"
)

func newManager(t testing.TB) (*nvm.Arena, *Manager, Status) {
	t.Helper()
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, st := Open(a, off)
	return a, m, st
}

func TestFreshStartBeginsAtEpochOne(t *testing.T) {
	_, m, st := newManager(t)
	if st != FreshStart {
		t.Fatalf("status = %v, want fresh-start", st)
	}
	if m.Current() != 1 || m.CurrentExec() != 1 {
		t.Fatalf("Current=%d CurrentExec=%d, want 1,1", m.Current(), m.CurrentExec())
	}
	if m.FailedCount() != 0 {
		t.Fatalf("fresh start has %d failed epochs", m.FailedCount())
	}
}

func TestAdvanceIncrementsAndCommits(t *testing.T) {
	a, m, _ := newManager(t)
	off := a.Reserve(8)
	a.Store(off, 99)
	m.Advance()
	if m.Current() != 2 {
		t.Fatalf("Current = %d after one advance, want 2", m.Current())
	}
	// The advance committed the store.
	a.Crash(nvm.PersistNone)
	if got := a.Load(off); got != 99 {
		t.Fatalf("store lost across advance+crash: %d", got)
	}
}

func TestCrashMidEpochIsDetectedAndRecorded(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, _ := Open(a, off)
	m.Advance() // epoch 2
	a.Crash(nvm.RandomPolicy(0.5, 42))

	m2, st := Open(a, off)
	if st != CrashRecovered {
		t.Fatalf("status = %v, want crash-recovered", st)
	}
	if !m2.IsFailed(2) {
		t.Fatal("epoch 2 should be failed")
	}
	if m2.IsFailed(1) {
		t.Fatal("epoch 1 was committed by the advance; must not be failed")
	}
	if m2.Current() != 3 || m2.CurrentExec() != 3 {
		t.Fatalf("new execution at %d/%d, want 3/3", m2.Current(), m2.CurrentExec())
	}
}

func TestCleanShutdownHasNoFailedEpoch(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, _ := Open(a, off)
	m.Advance()
	m.Shutdown()
	a.Crash(nvm.PersistNone) // power loss after shutdown is harmless

	m2, st := Open(a, off)
	if st != CleanRestart {
		t.Fatalf("status = %v, want clean-restart", st)
	}
	if m2.FailedCount() != 0 {
		t.Fatalf("%d failed epochs after clean shutdown", m2.FailedCount())
	}
	if m2.Current() != 3 {
		t.Fatalf("resume epoch = %d, want 3", m2.Current())
	}
}

func TestFailedSetSurvivesMultipleCrashes(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	var failed []uint64
	for i := 0; i < 5; i++ {
		m, _ := Open(a, off)
		cur := m.Current()
		m.Advance()
		m.Advance()
		failed = append(failed, m.Current())
		_ = cur
		a.Crash(nvm.RandomPolicy(0.3, int64(i)))
	}
	m, st := Open(a, off)
	if st != CrashRecovered {
		t.Fatalf("status = %v", st)
	}
	for _, e := range failed {
		if !m.IsFailed(e) {
			t.Fatalf("failed epoch %d forgotten (set: %d entries)", e, m.FailedCount())
		}
	}
	if m.FailedCount() != len(failed) {
		t.Fatalf("FailedCount = %d, want %d", m.FailedCount(), len(failed))
	}
}

func TestEpochsNeverReused(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		m, _ := Open(a, off)
		for j := 0; j < 3; j++ {
			e := m.Current()
			if seen[e] {
				t.Fatalf("epoch %d reused", e)
			}
			seen[e] = true
			m.Advance()
		}
		a.Crash(nvm.PersistAll)
	}
}

func TestIsFailedZeroEpoch(t *testing.T) {
	_, m, _ := newManager(t)
	if m.IsFailed(0) {
		t.Fatal("epoch 0 (pre-history) must never be failed")
	}
}

func TestOnAdvanceCallbackRuns(t *testing.T) {
	_, m, _ := newManager(t)
	var got []uint64
	m.OnAdvance(func(e uint64) { got = append(got, e) })
	m.Advance()
	m.Advance()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("callback epochs = %v, want [2 3]", got)
	}
}

func TestEnterExitBlocksAdvance(t *testing.T) {
	_, m, _ := newManager(t)
	m.Enter()
	done := make(chan struct{})
	go func() {
		m.Advance()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Advance completed while a worker was inside Enter/Exit")
	case <-time.After(20 * time.Millisecond):
	}
	m.Exit()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance never completed after Exit")
	}
}

func TestConcurrentWorkersAndAdvances(t *testing.T) {
	a, m, _ := newManager(t)
	off := a.Reserve(1 << 10)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Enter()
				a.Store(off+uint64(w)*nvm.WordsPerLine, i)
				m.Exit()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		m.Advance()
	}
	close(stop)
	wg.Wait()
	if m.Current() != 51 {
		t.Fatalf("Current = %d after 50 advances, want 51", m.Current())
	}
}

func TestTickerAdvances(t *testing.T) {
	_, m, _ := newManager(t)
	m.StartTicker(2 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	m.StopTicker()
	if m.Advances() == 0 {
		t.Fatal("ticker never advanced the epoch")
	}
}

func TestQuiesceRunsStopped(t *testing.T) {
	a, m, _ := newManager(t)
	ran := false
	m.Quiesce(func() {
		ran = true
		// While quiesced we can safely inspect the persistent image.
		_ = a.DirtyLines()
	})
	if !ran {
		t.Fatal("Quiesce did not run f")
	}
}

func TestAdvanceCountsFlushedLines(t *testing.T) {
	a, m, _ := newManager(t)
	off := a.Reserve(1 << 10)
	for i := uint64(0); i < 10; i++ {
		a.Store(off+i*nvm.WordsPerLine, i+1)
	}
	if n := m.Advance(); n < 10 {
		t.Fatalf("Advance flushed %d lines, want >= 10", n)
	}
}

func TestPrepareCommitEqualsAdvance(t *testing.T) {
	a, m, _ := newManager(t)
	off := a.Reserve(8)
	a.Store(off, 7)
	n := m.Prepare()
	if n == 0 {
		t.Fatal("Prepare flushed nothing")
	}
	if m.Current() != 1 {
		t.Fatalf("Current = %d after Prepare, want still 1", m.Current())
	}
	m.Commit()
	if m.Current() != 2 {
		t.Fatalf("Current = %d after Commit, want 2", m.Current())
	}
	a.Crash(nvm.PersistNone)
	if got := a.Load(off); got != 7 {
		t.Fatalf("store lost across prepare+commit+crash: %d", got)
	}
}

func TestCrashBetweenPrepareAndCommitFailsEpochWithoutOracle(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, _ := Open(a, off)
	m.Prepare() // epoch 1 fully flushed, not committed
	a.Crash(nvm.PersistNone)

	m2, st := Open(a, off)
	if st != CrashRecovered {
		t.Fatalf("status = %v, want crash-recovered", st)
	}
	if !m2.IsFailed(1) {
		t.Fatal("prepared-but-uncommitted epoch 1 must be failed without an oracle")
	}
	if m2.Current() != 2 {
		t.Fatalf("Current = %d, want 2", m2.Current())
	}
}

func TestCoordinatedOracleCompletesInterruptedCommit(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, _ := Open(a, off)
	data := a.Reserve(8)
	a.Store(data, 55)
	m.Prepare() // epoch 1 flushed; coordinator committed it elsewhere
	a.Crash(nvm.PersistNone)

	m2, st := OpenCoordinated(a, off, func(e uint64) bool { return e <= 1 })
	if st != CrashRecovered {
		t.Fatalf("status = %v, want crash-recovered", st)
	}
	if m2.IsFailed(1) {
		t.Fatal("globally committed epoch 1 must not be failed")
	}
	// The empty successor epoch is marked failed instead; that rolls back
	// nothing because the world never resumed.
	if !m2.IsFailed(2) {
		t.Fatal("empty successor epoch 2 should be recorded failed")
	}
	if m2.Current() != 3 {
		t.Fatalf("Current = %d, want 3 (same as a store whose commit landed)", m2.Current())
	}
	if got := a.Load(data); got != 55 {
		t.Fatalf("committed data lost: %d", got)
	}
}

func TestCoordinatedOracleUncommittedStillRollsBack(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	off := a.Reserve(HeaderWords)
	m, _ := Open(a, off)
	m.Prepare()
	a.Crash(nvm.PersistNone)

	m2, _ := OpenCoordinated(a, off, func(e uint64) bool { return false })
	if !m2.IsFailed(1) {
		t.Fatal("epoch the coordinator never committed must be failed")
	}
	if m2.Current() != 2 {
		t.Fatalf("Current = %d, want 2", m2.Current())
	}
}

func TestTickerStartStopIdempotent(t *testing.T) {
	// A second Start while running must be a no-op (one ticker goroutine,
	// the established cadence), and a second Stop must not hang or panic —
	// callers like DB.StartCheckpointer may be invoked twice.
	_, m, _ := newManager(t)
	m.StartTicker(2 * time.Millisecond)
	m.StartTicker(1 * time.Millisecond) // no-op, keeps the first cadence
	time.Sleep(20 * time.Millisecond)
	m.StopTicker()
	n := m.Advances()
	if n == 0 {
		t.Fatal("ticker never advanced the epoch")
	}
	m.StopTicker() // idempotent
	time.Sleep(10 * time.Millisecond)
	if m.Advances() != n {
		t.Fatal("ticker kept running after Stop (double-Start leaked a goroutine)")
	}
	// Start/Stop cycles keep working after an idempotent no-op pair.
	m.StartTicker(2 * time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	m.StopTicker()
	if m.Advances() == n {
		t.Fatal("ticker did not restart after Stop")
	}
}

func TestOnCommitHooks(t *testing.T) {
	_, m, _ := newManager(t)
	var got []uint64
	m.OnCommit(func(e uint64) { got = append(got, e) })
	m.Advance() // commits epoch 1
	m.Advance() // commits epoch 2

	// Late registration (after mutators may exist) must be safe and see
	// only subsequent commits.
	var late []uint64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			m.Exit()
		}()
	}
	m.OnCommit(func(e uint64) { late = append(late, e) })
	wg.Wait()
	m.Advance() // commits epoch 3

	// A clean shutdown commits the running epoch without a successor.
	m.Shutdown()

	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("commit hook fired for %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("commit hook fired for %v, want %v", got, want)
		}
	}
	if len(late) != 2 || late[0] != 3 || late[1] != 4 {
		t.Fatalf("late hook fired for %v, want [3 4]", late)
	}
}
