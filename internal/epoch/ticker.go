package epoch

import "time"

// Ticker runs a callback on a fixed interval from a background goroutine —
// the paper's 64 ms checkpoint timer, shared by the single-store manager,
// the shard coordinator, and the transaction manager (each supplies its
// own advance function). Zero value is ready. Start and Stop are
// idempotent (a second Start while running is a no-op, as is Stop when
// stopped), but they must not race each other from different goroutines.
type Ticker struct {
	stop chan struct{}
	done chan struct{}
}

// Start begins invoking tick every interval; a no-op if already running
// (the established cadence keeps going).
func (t *Ticker) Start(interval time.Duration, tick func()) {
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		tk := time.NewTicker(interval)
		defer tk.Stop()
		defer close(done)
		for {
			select {
			case <-tk.C:
				tick()
			case <-stop:
				return
			}
		}
	}(t.stop, t.done)
}

// Stop halts the ticker and waits for the goroutine to exit; a no-op when
// not running.
func (t *Ticker) Stop() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop, t.done = nil, nil
}
