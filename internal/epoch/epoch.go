// Package epoch implements Fine-Grained Checkpointing's epoch machinery:
// execution is partitioned into short epochs (the paper uses 64 ms); at
// every epoch boundary all mutators are quiesced and the entire cache is
// flushed to NVM, so NVM always holds a consistent image of the state at
// the end of the most recently committed epoch.
//
// The manager owns a small durable header in the arena:
//
//	word 0: magic
//	word 1: current epoch (monotonically increasing, never reused)
//	word 2: phase (running / flushing / clean shutdown)
//	word 3: number of failed epochs recorded
//	words 8…: the failed-epoch list
//
// The epoch and phase words share one cache line, so a crash exposes either
// the old or the new (epoch, phase) pair, never a mix — the same PCSO
// granularity argument that InCLL itself relies on.
//
// Crash semantics: an epoch E is committed once the header records an epoch
// greater than E with phase "running" (that header write is explicitly
// written back and fenced after the global flush). If the process dies at
// any other moment, the epoch named by the durable header is the failed
// epoch: all of its effects must be rolled back by the caller using the
// external log and the InCLLs.
package epoch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/nvm"
	"incll/internal/obs"
)

const (
	magic = 0x19c11c4ec49017 // header magic ("incll checkpoint v1")

	phaseRunning  = 1
	phaseFlushing = 2
	phaseShutdown = 3

	hdrMagic  = 0
	hdrEpoch  = 1
	hdrPhase  = 2
	hdrNFail  = 3
	failBase  = nvm.WordsPerLine // failed list starts on the next line
	failWords = 1024             // capacity of the failed-epoch list

	// HeaderWords is the arena region size a Manager needs.
	HeaderWords = failBase + failWords
)

// Status describes what Open found in the arena.
type Status int

const (
	// FreshStart: the arena held no header; a new history begins.
	FreshStart Status = iota
	// CleanRestart: the previous execution shut down cleanly; nothing to
	// roll back.
	CleanRestart
	// CrashRecovered: the previous execution died mid-epoch; the failed
	// epoch has been recorded and its effects must be rolled back.
	CrashRecovered
)

func (s Status) String() string {
	switch s {
	case FreshStart:
		return "fresh-start"
	case CleanRestart:
		return "clean-restart"
	case CrashRecovered:
		return "crash-recovered"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Manager drives epochs over one arena. Workers bracket every structure
// operation with Enter/Exit; Advance stops the world, flushes the cache,
// and begins the next epoch.
type Manager struct {
	arena *nvm.Arena
	off   uint64 // header region offset

	world sync.RWMutex // held (read) by workers, (write) by Advance

	current  atomic.Uint64 // volatile mirror of the durable epoch word
	execBase uint64        // first epoch of this execution
	failed   map[uint64]bool
	failedMu sync.RWMutex

	onAdvance []func(newEpoch uint64)

	// onCommit holds the commit hooks (see OnCommit): a copy-on-write
	// slice, so registration is safe while mutators run and firing costs
	// one atomic load.
	onCommit atomic.Pointer[[]func(committed uint64)]

	ticker Ticker

	advances atomic.Int64

	// sealed is set when a reshard cutover retires this store (see Seal):
	// its durable history is frozen as the donor of a completed topology
	// change, and any further boundary would fork it.
	sealed atomic.Bool

	// Instrumentation (see Instrument). The tracer and histogram are
	// nil-safe; prepStart carries the Prepare lock acquisition time to
	// Commit so the full stop-the-world window can be measured. It is
	// only touched with the world stopped.
	trace     *obs.Tracer
	stw       *obs.Histogram
	phases    *obs.PhaseSet
	shard     int
	prepStart time.Time
}

// Open attaches a Manager to the header region at off (HeaderWords words,
// reserved by the caller) and performs epoch-level crash analysis: if the
// previous execution did not shut down cleanly, its current epoch is added
// to the durable failed-epoch set. Structure-level rollback (external log,
// InCLLs) is the caller's job and is driven by IsFailed / CurrentExec.
func Open(a *nvm.Arena, off uint64) (*Manager, Status) {
	return OpenCoordinated(a, off, nil)
}

// OpenCoordinated is Open with an external commit oracle, for stores whose
// epoch boundaries are driven by a cross-store coordinator (see
// internal/shard). A coordinated advance flushes this store (Prepare),
// durably commits the epoch in the coordinator's own record, and only then
// updates this header (Commit). A crash in that window leaves the header
// saying "epoch E, flushing" for an epoch the coordinator already
// committed; committed(E) tells Open so, and the epoch's effects stand
// instead of being rolled back. A nil oracle means the store is
// self-contained: its own header is the commit record (plain Open).
func OpenCoordinated(a *nvm.Arena, off uint64, committed func(e uint64) bool) (*Manager, Status) {
	m := &Manager{arena: a, off: off, failed: make(map[uint64]bool)}

	status := FreshStart
	var resume uint64 = 0 // last epoch of previous history
	if a.Load(off+hdrMagic) == magic {
		prevEpoch := a.Load(off + hdrEpoch)
		phase := a.Load(off + hdrPhase)
		n := a.Load(off + hdrNFail)
		if n > failWords {
			panic("epoch: corrupt failed-epoch count")
		}
		for i := uint64(0); i < n; i++ {
			m.failed[a.Load(off+failBase+i)] = true
		}
		if phase == phaseFlushing && committed != nil && committed(prevEpoch) {
			// The Prepare flush completed and the coordinator durably
			// committed prevEpoch before the crash; only this header's
			// Commit write was lost. Finish the commit: behave exactly as
			// if the header had read (prevEpoch+1, running). The world was
			// stopped for the whole window, so the successor epoch is empty
			// and marking it failed below rolls back nothing.
			prevEpoch++
		}
		resume = prevEpoch
		if phase == phaseShutdown {
			status = CleanRestart
		} else {
			status = CrashRecovered
			m.recordFailed(prevEpoch, n)
		}
	}

	// Begin a new execution in a fresh epoch, one past anything the old
	// history used, and make that durable before any mutation.
	next := resume + 1
	m.execBase = next
	m.current.Store(next)
	a.Store(off+hdrMagic, magic)
	a.Store(off+hdrEpoch, next)
	a.Store(off+hdrPhase, phaseRunning)
	a.Writeback(off)
	a.Fence()
	return m, status
}

// recordFailed appends e to the durable failed-epoch list. Called during
// Open, before mutators exist.
func (m *Manager) recordFailed(e, n uint64) {
	if n >= failWords {
		panic("epoch: failed-epoch list full (increase failWords)")
	}
	m.failed[e] = true
	m.arena.Store(m.off+failBase+n, e)
	m.arena.Store(m.off+hdrNFail, n+1)
	m.arena.Writeback(m.off + failBase + n)
	m.arena.Writeback(m.off)
	m.arena.Fence()
}

// Instrument attaches observability sinks: protocol events go to tr, the
// measured stop-the-world duration of every boundary (nanoseconds, from
// Prepare's lock acquisition to just before Commit resumes the world) is
// recorded into stw, and shard tags the events. Both sinks may be nil.
// Must be called before mutators start, like OnAdvance.
func (m *Manager) Instrument(tr *obs.Tracer, stw *obs.Histogram, shard int) {
	m.trace = tr
	m.stw = stw
	m.shard = shard
}

// InstrumentPhases attaches the sampled latency-attribution timer (see
// obs.PhaseSet): Prepare charges its wait for in-flight readers to drain
// — the advancer side of the world lock — to the epoch_wait phase. nil
// detaches.
func (m *Manager) InstrumentPhases(ph *obs.PhaseSet) { m.phases = ph }

// Current returns the running epoch. Cheap; callable from any goroutine.
func (m *Manager) Current() uint64 { return m.current.Load() }

// CurrentExec returns the first epoch of this execution. A node whose
// epoch field is older than this has not been touched since before the
// last restart and may need lazy recovery.
func (m *Manager) CurrentExec() uint64 { return m.execBase }

// IsFailed reports whether e is a failed epoch whose effects must be
// discarded during recovery. Epoch 0 (pre-history) is never failed.
func (m *Manager) IsFailed(e uint64) bool {
	if e == 0 {
		return false
	}
	m.failedMu.RLock()
	v := m.failed[e]
	m.failedMu.RUnlock()
	return v
}

// FailedCount returns the number of failed epochs in the durable set.
func (m *Manager) FailedCount() int {
	m.failedMu.RLock()
	defer m.failedMu.RUnlock()
	return len(m.failed)
}

// Enter marks the calling goroutine as inside a structure operation.
// Advance waits for all entered goroutines to Exit.
func (m *Manager) Enter() { m.world.RLock() }

// Exit ends the critical region begun by Enter.
func (m *Manager) Exit() { m.world.RUnlock() }

// OnAdvance registers a callback invoked at every epoch boundary while the
// world is stopped, after the flush, with the new epoch as argument.
// Callbacks typically splice allocator limbo lists and reset log cursors.
// Must be called before mutators start.
func (m *Manager) OnAdvance(f func(newEpoch uint64)) {
	m.onAdvance = append(m.onAdvance, f)
}

// OnCommit registers a callback invoked at every commit point — the
// moment an epoch's effects become part of the durable history — with the
// committed epoch as argument, while the world is still stopped. Commit
// fires it for the epoch just ended; Shutdown fires it for the running
// epoch (a clean shutdown makes the running epoch durable). For a store
// driven by a sharding coordinator, the local Commit runs only after the
// coordinator's global record is durable, so the hook observes globally
// committed epochs only.
//
// Unlike OnAdvance, hooks may be registered at any time, including while
// mutators run (the replication hub attaches to a live store); the list is
// copy-on-write. Hooks must not block: they run with every worker quiesced.
func (m *Manager) OnCommit(f func(committed uint64)) {
	for {
		old := m.onCommit.Load()
		var hooks []func(committed uint64)
		if old != nil {
			hooks = append(hooks, *old...)
		}
		hooks = append(hooks, f)
		if m.onCommit.CompareAndSwap(old, &hooks) {
			return
		}
	}
}

// fireCommit runs the commit hooks for epoch e.
func (m *Manager) fireCommit(e uint64) {
	if hooks := m.onCommit.Load(); hooks != nil {
		for _, f := range *hooks {
			f(e)
		}
	}
}

// Advance ends the current epoch: it stops the world, flushes every dirty
// line to NVM (committing the epoch), durably records the next epoch, runs
// the registered callbacks, and resumes the world. Returns the number of
// lines flushed.
func (m *Manager) Advance() int {
	n := m.Prepare()
	m.Commit()
	return n
}

// Prepare is the first half of Advance: it stops the world, durably marks
// the boundary, and flushes every dirty line, so the entire effect of the
// current epoch (including its undo information) is persistent — but the
// epoch is not yet committed: a crash now still attributes the in-flight
// epoch as failed and rolls it back. The world stays stopped until Commit,
// which the caller must invoke next (possibly from another goroutine — a
// sharding coordinator prepares every store, records the global commit,
// then commits every store). Returns the number of lines flushed.
func (m *Manager) Prepare() int {
	if m.sealed.Load() {
		panic("epoch: advance on a sealed manager (the store was resharded away)")
	}
	if m.phases != nil {
		// Advances are rare (one per epoch), so the wait for readers to
		// drain is recorded always, not sampled.
		t0 := time.Now()
		m.world.Lock()
		m.phases.Observe(obs.PhaseEpochWait, time.Since(t0))
	} else {
		m.world.Lock()
	}
	m.prepStart = time.Now()
	a, off := m.arena, m.off

	// Mark the boundary so a crash during the flush is attributed to the
	// epoch being flushed.
	a.Store(off+hdrPhase, phaseFlushing)
	a.Writeback(off)
	a.Fence()

	// Persist everything written during the current epoch.
	n := a.FlushAll()
	m.trace.Record(obs.EvCheckpointPrepare, m.shard, m.current.Load(), time.Since(m.prepStart), int64(n))
	return n
}

// Commit is the second half of Advance: it durably begins the next epoch
// (committing the prepared one from this store's point of view), runs the
// registered callbacks, and resumes the world. Must follow Prepare.
func (m *Manager) Commit() {
	a, off := m.arena, m.off
	cur := m.current.Load()

	// Begin the next epoch. Epoch and phase share a line, so this record
	// is atomic with respect to crashes.
	next := cur + 1
	a.Store(off+hdrEpoch, next)
	a.Store(off+hdrPhase, phaseRunning)
	a.Writeback(off)
	a.Fence()

	m.current.Store(next)
	for _, f := range m.onAdvance {
		f(next)
	}
	m.fireCommit(cur)
	m.advances.Add(1)
	if !m.prepStart.IsZero() {
		window := time.Since(m.prepStart)
		m.prepStart = time.Time{}
		if m.stw != nil {
			m.stw.Record(int64(window))
		}
		m.trace.Record(obs.EvCheckpointCommit, m.shard, cur, window, 0)
	}
	m.world.Unlock()
}

// Advances returns how many epoch boundaries this Manager has executed.
func (m *Manager) Advances() int64 { return m.advances.Load() }

// Shutdown flushes everything and durably marks a clean shutdown. After
// Shutdown the Manager must not be used.
func (m *Manager) Shutdown() {
	m.StopTicker()
	m.world.Lock()
	defer m.world.Unlock()
	a, off := m.arena, m.off
	a.Store(off+hdrPhase, phaseFlushing)
	a.Writeback(off)
	a.Fence()
	a.FlushAll()
	a.Store(off+hdrPhase, phaseShutdown)
	a.Writeback(off)
	a.Fence()
	// A clean shutdown makes the running epoch part of the durable history
	// without starting a successor.
	m.fireCommit(m.current.Load())
}

// StartTicker advances epochs every interval from a background goroutine,
// mirroring the paper's 64 ms timer. Stop with StopTicker or Shutdown.
func (m *Manager) StartTicker(interval time.Duration) {
	m.ticker.Start(interval, func() { m.Advance() })
}

// StopTicker stops the background ticker, if running.
func (m *Manager) StopTicker() { m.ticker.Stop() }

// Seal freezes the manager after a reshard cutover: the store it drives
// was the donor of a completed topology change and its durable history
// must not grow past the cutover epoch. Reads (Enter/Exit) keep working
// against the frozen state; a later Prepare/Advance panics. Used by the
// reshard cutover (see internal/shard.Store.Seal and DESIGN.md §13).
func (m *Manager) Seal() {
	m.StopTicker()
	m.sealed.Store(true)
}

// Sealed reports whether Seal froze this manager.
func (m *Manager) Sealed() bool { return m.sealed.Load() }

// Quiesce runs f with the world stopped, without advancing the epoch.
// Used by the crash-injection framework to take consistent snapshots.
func (m *Manager) Quiesce(f func()) {
	m.world.Lock()
	defer m.world.Unlock()
	f()
}
