// Package alloc implements the paper's durable memory allocator (§5): a
// set of per-size-class free lists that live entirely in NVM and are made
// crash-consistent with Fine-Grained Checkpointing and In-Cache-Line
// Logging, so that allocation and deallocation never issue a write-back or
// fence on the critical path.
//
// Three ideas from the paper:
//
//  1. The allocator is just another durable data structure (a set of free
//     chunks); checkpointing rolls it back to the start of a failed epoch.
//  2. Each object's header embeds an undo copy of its free-list next
//     pointer (InCLLn) in the same cache line as the pointer itself, so
//     pushing and popping objects needs no logging I/O.
//  3. Epoch-Based Reclamation: freed objects go to a limbo list and only
//     become allocatable at the next epoch boundary. An object can be
//     allocated only if it was free at the start of the epoch, so its
//     *contents* never need logging — if the epoch fails, the object
//     returns to the free list where its contents are irrelevant.
//
// The 16-byte header (§5.1): both header words pack a 44-bit pointer, a
// 2-bit wrap counter, and 16 bits of the 32-bit epoch (the `next` word
// carries the low half, the `nextInCLL` word the high half). Recovery
// reconstructs the epoch only if the two counters match; mismatched
// counters mean the crash interrupted the two-word update, in which case
// `next` is restored from `nextInCLL` unconditionally.
package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/epoch"
	"incll/internal/nvm"
	"incll/internal/obs"
)

// Size classes in words, header included. Payload capacity is two words
// less. Objects are 16-byte aligned like the paper's allocations, and every
// refill starts on a cache-line boundary so objects never straddle lines
// unnecessarily (class sizes are powers of two up to a line, or multiples
// of a line beyond it). The classes above 128 serve the value heap's
// out-of-place byte values (core's PutBytes), up to ~8 KiB per value; the
// intermediate line multiples (192, 384, 768) keep worst-case internal
// fragmentation at 1.5× instead of 2× for the common KB-scale objects.
var classWords = []uint64{4, 8, 16, 32, 64, 128, 192, 256, 384, 512, 768, 1024}

// NumClasses is the number of general size classes.
const NumClasses = 12

// The node class is special: tree nodes need (a) a cache-line-aligned
// payload, because their layout assigns fields to specific lines, and
// (b) a header that does not overlap the payload, because the tree
// overwrites every payload word and would corrupt an embedded free-list
// header. Node objects are therefore NodeClassWords long with the payload
// a full line past the object base.
const (
	nodeClass         = NumClasses // per-shard head index of the node class
	totalClasses      = NumClasses + 1
	NodeClassWords    = 48
	nodePayloadOffset = 8
)

func classSize(c int) uint64 {
	if c == nodeClass {
		return NodeClassWords
	}
	return classWords[c]
}

const (
	headerWords = 2 // next + nextInCLL

	// Per-shard, per-class durable head line layout (one cache line):
	chHead      = 0 // allocatable list head (word offset of object, 0 = empty)
	chHeadInCLL = 1 // undo copy of chHead at epoch start
	chLimbo     = 2 // limbo list head (freed this epoch)
	chLimboInCL = 3 // undo copy of chLimbo at epoch start
	chEpoch     = 4 // epoch tag guarding the two InCLLs above

	// Wilderness header line layout:
	wBump      = 0 // first unused word of the heap region
	wBumpInCLL = 1 // undo copy at epoch start
	wEpoch     = 2 // epoch tag

	refillObjects = 64   // objects carved from the wilderness per refill (small classes)
	refillBudget  = 4096 // words carved per refill for classes past a line
)

// refillCount returns how many class-c objects one refill carves: 64 for
// the sub-line classes (the seed behavior), fewer for the large value-heap
// classes so a refill never claims more than refillBudget words at once.
func refillCount(size uint64) uint64 {
	n := uint64(refillBudget) / size
	if n > refillObjects {
		n = refillObjects
	}
	if n < 4 {
		n = 4
	}
	return n
}

// Allocator manages a durable heap region. Each worker thread uses its own
// Handle (shard); shards have independent durable free lists, so the fast
// path is lock-free with respect to other threads.
type Allocator struct {
	arena *nvm.Arena
	mgr   *epoch.Manager

	metaOff   uint64 // shard class-head lines, then wilderness line
	heapOff   uint64 // first object word
	heapEnd   uint64
	wildOff   uint64 // wilderness header line
	numShards int

	wildMu sync.Mutex

	shards []Handle

	// limbo tracks how many objects currently sit on limbo lists awaiting
	// the next epoch boundary. Volatile and advisory (a gauge for the
	// metrics surface): it is reset by the boundary splice, not repaired
	// by crash rollback.
	limbo atomic.Int64

	phases *obs.PhaseSet // sampled allocation-latency attribution; nil disables
}

// Instrument attaches the sampled latency-attribution timer: a 1-in-N
// sample of Alloc/AllocNode calls is timed end to end (free-list pop,
// refills and wilderness carving included) and charged to the alloc phase.
// nil detaches.
func (al *Allocator) Instrument(ph *obs.PhaseSet) { al.phases = ph }

// MetaWords returns the metadata region size (reserve target) for the
// given shard count.
func MetaWords(shards int) uint64 {
	return uint64(shards)*totalClasses*nvm.WordsPerLine + nvm.WordsPerLine
}

// New creates (or, after a crash, re-attaches) an allocator whose metadata
// lives at metaOff (MetaWords(shards) words) and whose heap is
// [heapOff, heapOff+heapWords). Both regions must have been reserved by
// the caller at deterministic offsets so a recovering process finds them
// again. Recovery of the durable heads happens here, eagerly; object
// headers are recovered lazily as they are popped.
func New(a *nvm.Arena, m *epoch.Manager, metaOff, heapOff, heapWords uint64, shards int) *Allocator {
	if shards <= 0 {
		panic("alloc: shards must be > 0")
	}
	al := &Allocator{
		arena:     a,
		mgr:       m,
		metaOff:   metaOff,
		heapOff:   (heapOff + nvm.WordsPerLine - 1) &^ (nvm.WordsPerLine - 1), // line align
		heapEnd:   heapOff + heapWords,
		wildOff:   metaOff + uint64(shards)*totalClasses*nvm.WordsPerLine,
		numShards: shards,
	}
	// Initialize or recover the wilderness bump pointer.
	if a.Load(al.wildOff+wBump) == 0 {
		a.Store(al.wildOff+wBump, al.heapOff)
		a.Store(al.wildOff+wBumpInCLL, al.heapOff)
		a.Store(al.wildOff+wEpoch, m.Current())
	} else if m.IsFailed(a.Load(al.wildOff + wEpoch)) {
		a.Store(al.wildOff+wBump, a.Load(al.wildOff+wBumpInCLL))
		a.Store(al.wildOff+wEpoch, m.Current())
	}
	// Initialize or recover every shard's class heads.
	al.shards = make([]Handle, shards)
	for s := 0; s < shards; s++ {
		al.shards[s] = Handle{al: al, shard: s}
		for c := 0; c < totalClasses; c++ {
			off := al.classOff(s, c)
			if m.IsFailed(a.Load(off + chEpoch)) {
				a.Store(off+chHead, a.Load(off+chHeadInCLL))
				a.Store(off+chLimbo, a.Load(off+chLimboInCL))
				a.Store(off+chEpoch, m.Current())
			}
		}
	}
	// Splice any surviving limbo into the free lists. The boundary splice
	// runs inside the successor epoch, so when that epoch fails its splice
	// is rolled back with everything else — without this recovery splice, a
	// crash-heavy history (every splice chased by a failed epoch) would
	// grow limbo without bound. Post-rollback limbo holds only blocks freed
	// in committed epochs, so making them allocatable is EBR-safe; the
	// mutations are tagged with the fresh execution epoch and persisted by
	// recovery's flush (extlog.Log.Recover), and a crash before that flush
	// simply re-runs the same splice.
	al.spliceLimbo(m.Current())
	m.OnAdvance(al.spliceLimbo)
	return al
}

func (al *Allocator) classOff(shard, class int) uint64 {
	return al.metaOff + uint64(shard*totalClasses+class)*nvm.WordsPerLine
}

// Handle returns shard i's allocation handle. Each concurrent worker must
// use a distinct handle; handles are not safe for concurrent use.
func (al *Allocator) Handle(i int) *Handle { return &al.shards[i] }

// Shards returns the number of shards.
func (al *Allocator) Shards() int { return al.numShards }

// Used reports the words ever carved from the wilderness: the heap's
// high-water mark. Recycling through the free lists keeps it flat, so a
// monotonically growing Used under a steady workload means leaked objects.
func (al *Allocator) Used() uint64 {
	al.wildMu.Lock()
	defer al.wildMu.Unlock()
	return al.arena.Load(al.wildOff+wBump) - al.heapOff
}

// LimboDepth reports how many freed objects are waiting on limbo lists
// for the next epoch boundary. O(1); see the limbo field's caveats.
func (al *Allocator) LimboDepth() int64 { return al.limbo.Load() }

// ClassFor returns the size class index for a payload of the given words,
// or -1 if the payload exceeds the largest class.
func ClassFor(payloadWords uint64) int {
	need := payloadWords + headerWords
	for c, w := range classWords {
		if need <= w {
			return c
		}
	}
	return -1
}

// ClassPayloadWords returns the payload capacity of class c.
func ClassPayloadWords(c int) uint64 { return classWords[c] - headerWords }

// spliceLimbo runs at every epoch boundary (world stopped): freed objects
// from the finished epoch become allocatable, per Epoch-Based Reclamation.
func (al *Allocator) spliceLimbo(newEpoch uint64) {
	a := al.arena
	for s := 0; s < al.numShards; s++ {
		for c := 0; c < totalClasses; c++ {
			off := al.classOff(s, c)
			limbo := a.Load(off + chLimbo)
			if limbo == 0 {
				continue
			}
			// Walk to the limbo tail and hang the allocatable list off it.
			// This runs in the *new* epoch, so every mutation below is
			// InCLL-protected like any other epoch's first mutation.
			tail := limbo
			for {
				next := al.loadNext(tail)
				if next == 0 {
					break
				}
				tail = next
			}
			head := a.Load(off + chHead)
			if head != 0 {
				al.storeNext(tail, head, newEpoch)
			}
			al.logClassHeads(off, newEpoch)
			a.Store(off+chHead, limbo)
			a.Store(off+chLimbo, 0)
		}
	}
	al.limbo.Store(0)
}

// logClassHeads performs the InCLLp-style first-touch logging of a class
// head line for the given epoch: save undo copies, then tag. All five
// words share a cache line, so PCSO orders the writes for free.
func (al *Allocator) logClassHeads(off, cur uint64) {
	a := al.arena
	if a.Load(off+chEpoch) == cur {
		return
	}
	a.Store(off+chHeadInCLL, a.Load(off+chHead))
	a.Store(off+chLimboInCL, a.Load(off+chLimbo))
	a.Store(off+chEpoch, cur)
}

// ---- object header encoding (§5.1) ----
//
// word: bits 0-1 wrap counter | bits 2-45 pointer (word offset >> 1) |
// bits 48-63 one half of the 32-bit epoch.

func packHeader(ptr uint64, counter uint64, epochHalf uint64) uint64 {
	return (counter & 3) | (ptr >> 1 << 2) | (epochHalf&0xFFFF)<<48
}

func headerPtr(w uint64) uint64     { return w >> 2 & (1<<44 - 1) << 1 }
func headerCounter(w uint64) uint64 { return w & 3 }
func headerEpoch16(w uint64) uint64 { return w >> 48 & 0xFFFF }

// reconstructEpoch rebuilds the 32-bit header epoch and widens it to the
// 64-bit epoch space by assuming it lies at most 2^32 epochs in the past —
// the paper makes the same 8-year assumption for its 32-bit indices.
func (al *Allocator) reconstructEpoch(next, inCLL uint64) (uint64, bool) {
	if headerCounter(next) != headerCounter(inCLL) {
		return 0, false // torn header update
	}
	e32 := headerEpoch16(next) | headerEpoch16(inCLL)<<16
	cur := al.mgr.Current()
	high := cur &^ 0xFFFFFFFF
	cand := high | e32
	if cand > cur {
		if cand < 1<<32 {
			// An epoch from the future can only be a torn or garbage
			// header; report it as torn so the caller restores from the
			// in-line undo copy.
			return 0, false
		}
		cand -= 1 << 32
		if cand > cur {
			return 0, false
		}
	}
	return cand, true
}

// loadNext reads an object's free-list next pointer, lazily recovering the
// header if it was last written in a failed or torn epoch.
func (al *Allocator) loadNext(obj uint64) uint64 {
	a := al.arena
	next := a.Load(obj)
	inCLL := a.Load(obj + 1)
	e, ok := al.reconstructEpoch(next, inCLL)
	if !ok || al.mgr.IsFailed(e) {
		// Restore from the in-line undo copy. Persisting this repair is
		// not required: if we crash again the same repair reapplies.
		next = packHeader(headerPtr(inCLL), headerCounter(inCLL), headerEpoch16(next))
		a.Store(obj, next)
	}
	return headerPtr(next)
}

// storeNext updates an object's next pointer in epoch cur, logging the old
// value into the same cache line on the first touch of the epoch.
func (al *Allocator) storeNext(obj, next, cur uint64) {
	a := al.arena
	oldNext := a.Load(obj)
	oldInCLL := a.Load(obj + 1)
	e, ok := al.reconstructEpoch(oldNext, oldInCLL)
	if !ok || al.mgr.IsFailed(e) {
		oldNext = packHeader(headerPtr(oldInCLL), headerCounter(oldInCLL), headerEpoch16(oldNext))
		e, _ = al.reconstructEpoch(oldNext, oldInCLL)
	}
	if e != cur { // first touch this epoch
		ctr := (headerCounter(oldNext) + 1) & 3
		// Undo copy first, then the mutation — same line, PCSO-ordered.
		a.Store(obj+1, packHeader(headerPtr(oldNext), ctr, cur>>16&0xFFFF))
		a.Store(obj, packHeader(next, ctr, cur&0xFFFF))
		return
	}
	a.Store(obj, packHeader(next, headerCounter(oldNext), cur&0xFFFF))
}

// refill carves refillObjects objects of class c from the wilderness and
// returns them as a linked list (head offset), or 0 if the heap is full.
func (al *Allocator) refill(c int, cur uint64) uint64 {
	al.wildMu.Lock()
	defer al.wildMu.Unlock()
	a := al.arena
	size := classSize(c)
	bump := a.Load(al.wildOff + wBump)
	// Start every refill run on a line boundary so line-sized-or-larger
	// objects are line-aligned and sub-line objects never straddle lines.
	bump = (bump + nvm.WordsPerLine - 1) &^ uint64(nvm.WordsPerLine-1)
	n := refillCount(size)
	if bump+size*n > al.heapEnd {
		n = (al.heapEnd - bump) / size
		if n == 0 {
			return 0
		}
	}
	// InCLL-log the bump pointer on first touch of this epoch.
	if a.Load(al.wildOff+wEpoch) != cur {
		a.Store(al.wildOff+wBumpInCLL, bump)
		a.Store(al.wildOff+wEpoch, cur)
	}
	a.Store(al.wildOff+wBump, bump+size*n)
	// Link the fresh objects. Their headers are zero (fresh NVM), so we
	// write full headers tagged with the current epoch; if this epoch
	// fails, the bump pointer rolls back and the contents are irrelevant.
	for i := uint64(0); i < n; i++ {
		obj := bump + i*size
		next := uint64(0)
		if i+1 < n {
			next = obj + size
		}
		a.Store(obj+1, packHeader(0, 0, cur>>16&0xFFFF))
		a.Store(obj, packHeader(next, 0, cur&0xFFFF))
	}
	return bump
}

// Handle is a single shard's allocation interface. Not safe for concurrent
// use; give each worker its own handle.
type Handle struct {
	al    *Allocator
	shard int
}

// Alloc returns the payload offset of a fresh object able to hold
// payloadWords words, or 0 if the heap is exhausted or the size exceeds
// the largest class. The fast path touches only cached NVM lines: no
// write-back, no fence.
func (h *Handle) Alloc(payloadWords uint64) uint64 {
	c := ClassFor(payloadWords)
	if c < 0 {
		return 0
	}
	if h.al.phases.Sampled(h.shard) {
		t0 := time.Now()
		defer func() { h.al.phases.Observe(obs.PhaseAlloc, time.Since(t0)) }()
	}
	obj := h.allocFrom(c)
	if obj == 0 {
		return 0
	}
	return obj + headerWords
}

// AllocNode returns a cache-line-aligned node payload of NodeWords-class
// size, or 0 when the heap is exhausted.
func (h *Handle) AllocNode() uint64 {
	if h.al.phases.Sampled(h.shard) {
		t0 := time.Now()
		defer func() { h.al.phases.Observe(obs.PhaseAlloc, time.Since(t0)) }()
	}
	obj := h.allocFrom(nodeClass)
	if obj == 0 {
		return 0
	}
	return obj + nodePayloadOffset
}

// FreeNode returns a node payload obtained from AllocNode to the limbo
// list.
func (h *Handle) FreeNode(payload uint64) {
	h.freeTo(nodeClass, payload-nodePayloadOffset)
}

func (h *Handle) allocFrom(c int) uint64 {
	al, a := h.al, h.al.arena
	cur := al.mgr.Current()
	off := al.classOff(h.shard, c)
	head := a.Load(off + chHead)
	if head == 0 {
		head = al.refill(c, cur)
		if head == 0 {
			return 0
		}
		al.logClassHeads(off, cur)
		a.Store(off+chHead, head)
	}
	next := al.loadNext(head)
	al.logClassHeads(off, cur)
	a.Store(off+chHead, next)
	return head
}

// Free returns the object owning payload to this shard's limbo list; it
// becomes allocatable at the next epoch boundary (EBR). payloadWords must
// match the Alloc size (it selects the class).
func (h *Handle) Free(payload uint64, payloadWords uint64) {
	c := ClassFor(payloadWords)
	if c < 0 {
		panic(fmt.Sprintf("alloc: Free of oversized payload (%d words)", payloadWords))
	}
	h.freeTo(c, payload-headerWords)
}

func (h *Handle) freeTo(c int, obj uint64) {
	al, a := h.al, h.al.arena
	cur := al.mgr.Current()
	off := al.classOff(h.shard, c)
	al.logClassHeads(off, cur)
	al.storeNext(obj, a.Load(off+chLimbo), cur)
	a.Store(off+chLimbo, obj)
	al.limbo.Add(1)
}

// FreeListLen walks shard s's class-c allocatable list; test helper.
func (al *Allocator) FreeListLen(s, c int) int {
	n := 0
	for obj := al.arena.Load(al.classOff(s, c) + chHead); obj != 0; obj = al.loadNext(obj) {
		n++
	}
	return n
}

// LimboLen walks shard s's class-c limbo list; test helper.
func (al *Allocator) LimboLen(s, c int) int {
	n := 0
	for obj := al.arena.Load(al.classOff(s, c) + chLimbo); obj != 0; obj = al.loadNext(obj) {
		n++
	}
	return n
}
