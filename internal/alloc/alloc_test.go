package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

type fixture struct {
	arena *nvm.Arena
	mgr   *epoch.Manager
	al    *Allocator
	meta  uint64
	heap  uint64
}

const testHeapWords = 1 << 16

func build(a *nvm.Arena, shards int) *fixture {
	// Deterministic layout: epoch header, then alloc meta, then heap.
	// The same Reserve sequence re-derives it after a crash.
	eOff := a.Reserve(epoch.HeaderWords)
	meta := a.Reserve(MetaWords(shards))
	heap := a.Reserve(testHeapWords)
	mgr, _ := epoch.Open(a, eOff)
	al := New(a, mgr, meta, heap, testHeapWords, shards)
	return &fixture{arena: a, mgr: mgr, al: al, meta: meta, heap: heap}
}

func newFixture(t testing.TB, shards int) *fixture {
	t.Helper()
	return build(nvm.New(nvm.Config{Words: 1 << 20}), shards)
}

// rebuild simulates process restart on the same NVM image: the reserve
// sequence replays and re-derives the same region offsets.
func (f *fixture) rebuild() *fixture {
	f.arena.ResetReservations()
	return build(f.arena, f.al.Shards())
}

func TestAllocReturnsDistinctAlignedPayloads(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		p := h.Alloc(2)
		if p == 0 {
			t.Fatal("alloc failed with plenty of heap")
		}
		if p%2 != 0 {
			t.Fatalf("payload %d not 16-byte aligned", p)
		}
		if seen[p] {
			t.Fatalf("payload %d handed out twice", p)
		}
		seen[p] = true
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		payload uint64
		class   int
	}{
		{1, 0}, {2, 0}, {3, 1}, {6, 1}, {7, 2}, {14, 2}, {126, 5},
		{127, 6}, {190, 6}, {254, 7}, {382, 8}, {1000, 11}, {1022, 11}, {1023, -1},
	}
	for _, c := range cases {
		if got := ClassFor(c.payload); got != c.class {
			t.Errorf("ClassFor(%d) = %d, want %d", c.payload, got, c.class)
		}
	}
}

func TestFreeGoesToLimboNotFreeList(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	p := h.Alloc(2)
	before := f.al.FreeListLen(0, 0)
	h.Free(p, 2)
	if got := f.al.LimboLen(0, 0); got != 1 {
		t.Fatalf("limbo len = %d, want 1", got)
	}
	if got := f.al.FreeListLen(0, 0); got != before {
		t.Fatalf("free list changed by Free: %d -> %d", before, got)
	}
}

func TestEBRFreedObjectNotReusedSameEpoch(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	p := h.Alloc(2)
	h.Free(p, 2)
	// Drain the entire free list this epoch; p must never come back.
	for {
		q := h.Alloc(2)
		if q == 0 {
			break
		}
		if q == p {
			t.Fatal("freed object reused within the same epoch (EBR violation)")
		}
	}
}

func TestLimboSplicedAtEpochBoundary(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	p := h.Alloc(2)
	h.Free(p, 2)
	f.mgr.Advance()
	if got := f.al.LimboLen(0, 0); got != 0 {
		t.Fatalf("limbo not spliced: len=%d", got)
	}
	// Now p is allocatable again.
	seen := false
	for {
		q := h.Alloc(2)
		if q == 0 {
			break
		}
		if q == p {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("freed object never became allocatable after the epoch boundary")
	}
}

func TestAllocNeverFencesOnFastPath(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	h.Alloc(2) // warm up (refill may touch the wilderness)
	s0 := f.arena.Stats().Snapshot()
	for i := 0; i < 50; i++ {
		p := h.Alloc(2)
		h.Free(p, 2)
	}
	d := f.arena.Stats().Snapshot().Sub(s0)
	if d.Fences != 0 || d.Writebacks != 0 {
		t.Fatalf("alloc/free fast path issued persistence ops: %v", d)
	}
}

func TestHeapExhaustionReturnsZero(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 14})
	eOff := a.Reserve(epoch.HeaderWords)
	meta := a.Reserve(MetaWords(1))
	heap := a.Reserve(256) // tiny heap: 64 class-0 objects
	mgr, _ := epoch.Open(a, eOff)
	al := New(a, mgr, meta, heap, 256, 1)
	h := al.Handle(0)
	n := 0
	for h.Alloc(2) != 0 {
		n++
		if n > 10000 {
			t.Fatal("allocation never exhausted a 2 KiB heap")
		}
	}
	if n == 0 {
		t.Fatal("no allocation succeeded")
	}
	if got := h.Alloc(2); got != 0 {
		t.Fatalf("alloc after exhaustion = %d, want 0", got)
	}
}

func TestCrashRollsBackAllocations(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	// Commit a known state: one allocation, then a boundary.
	p0 := h.Alloc(2)
	f.mgr.Advance()
	committedFree := f.al.FreeListLen(0, 0)

	// Allocate more in the doomed epoch.
	var doomed []uint64
	for i := 0; i < 10; i++ {
		doomed = append(doomed, h.Alloc(2))
	}
	f.arena.Crash(nvm.RandomPolicy(0.5, 7))

	f2 := f.rebuild()
	if got := f2.al.FreeListLen(0, 0); got != committedFree {
		t.Fatalf("free list after crash = %d objects, want %d", got, committedFree)
	}
	// The committed allocation p0 must not be on the free list.
	h2 := f2.al.Handle(0)
	for {
		q := h2.Alloc(2)
		if q == 0 {
			break
		}
		if q == p0 {
			t.Fatal("committed allocation resurfaced on the free list")
		}
	}
	_ = doomed
}

func TestCrashRollsBackFrees(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	p := h.Alloc(2)
	f.mgr.Advance() // commit: p is allocated
	h.Free(p, 2)    // doomed free
	f.arena.Crash(nvm.RandomPolicy(0.5, 11))

	f2 := f.rebuild()
	// p must still be allocated: draining every class-0 object never
	// yields p.
	h2 := f2.al.Handle(0)
	for {
		q := h2.Alloc(2)
		if q == 0 {
			break
		}
		if q == p {
			t.Fatal("doomed free survived the crash: object leaked back to the free list")
		}
	}
}

func TestCommittedStateSurvivesManyCrashPolicies(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := newFixture(t, 1)
		h := f.al.Handle(0)
		var live []uint64
		for i := 0; i < 20; i++ {
			live = append(live, h.Alloc(2))
		}
		f.mgr.Advance()
		want := f.al.FreeListLen(0, 0) // committed free count

		// Doomed epoch churn.
		for i := 0; i < 15; i++ {
			h.Free(live[i], 2)
			h.Alloc(2)
		}
		f.arena.Crash(nvm.RandomPolicy(0.5, seed))
		f2 := f.rebuild()
		if got := f2.al.FreeListLen(0, 0); got != want {
			t.Fatalf("seed %d: free list = %d, want %d", seed, got, want)
		}
	}
}

func TestShardsAreIndependent(t *testing.T) {
	f := newFixture(t, 4)
	ps := map[uint64]bool{}
	for s := 0; s < 4; s++ {
		h := f.al.Handle(s)
		for i := 0; i < 50; i++ {
			p := h.Alloc(2)
			if p == 0 {
				t.Fatal("alloc failed")
			}
			if ps[p] {
				t.Fatalf("shards handed out the same object %d", p)
			}
			ps[p] = true
		}
	}
}

func TestHeaderPackingRoundTrip(t *testing.T) {
	f := func(ptr uint64, ctr uint64, e uint64) bool {
		ptr = ptr & (1<<44 - 1) << 1 // 2-word aligned, 45-bit range
		w := packHeader(ptr, ctr, e)
		return headerPtr(w) == ptr && headerCounter(w) == ctr&3 && headerEpoch16(w) == e&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructEpochCounterMismatch(t *testing.T) {
	f := newFixture(t, 1)
	// Advance so that epoch 5 is in the past.
	for f.mgr.Current() < 6 {
		f.mgr.Advance()
	}
	next := packHeader(16, 1, 0x0005)
	inCLL := packHeader(32, 2, 0x0000) // different counter: torn
	if _, ok := f.al.reconstructEpoch(next, inCLL); ok {
		t.Fatal("mismatched counters must be reported as torn")
	}
	inCLL2 := packHeader(32, 1, 0x0000)
	e, ok := f.al.reconstructEpoch(next, inCLL2)
	if !ok || e != 5 {
		t.Fatalf("reconstructed epoch = %d/%v, want 5/true", e, ok)
	}
	// A header claiming a future epoch is garbage and must read as torn.
	future := packHeader(16, 1, 0x7FFF)
	if _, ok := f.al.reconstructEpoch(future, inCLL2); ok {
		t.Fatal("future epoch must be reported as torn")
	}
}

func TestTornHeaderRecoversFromInCLL(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	p := h.Alloc(2)
	obj := p - headerWords
	// Manufacture a torn header: next has a bumped counter, inCLL is old.
	inCLL := f.arena.Load(obj + 1)
	f.arena.Store(obj, packHeader(12345*2, headerCounter(inCLL)+1, 0))
	if got := f.al.loadNext(obj); got != headerPtr(inCLL) {
		t.Fatalf("torn header recovered to %d, want inCLL ptr %d", got, headerPtr(inCLL))
	}
}

// Property: alternating churn with boundaries and crashes never loses or
// duplicates objects: free-list + limbo + live set always partitions the
// carved heap.
func TestPropertyNoLeakNoDup(t *testing.T) {
	fprop := func(seed int64) bool {
		f := newFixture(t, 1)
		h := f.al.Handle(0)
		rng := rand.New(rand.NewSource(seed))
		live := map[uint64]bool{}
		for step := 0; step < 300; step++ {
			switch rng.Intn(10) {
			case 0:
				f.mgr.Advance()
			case 1, 2, 3:
				if len(live) > 0 {
					for p := range live {
						h.Free(p, 2)
						delete(live, p)
						break
					}
				}
			default:
				p := h.Alloc(2)
				if p == 0 {
					continue
				}
				if live[p] {
					return false // double allocation
				}
				live[p] = true
			}
		}
		// Account: every object carved from the wilderness is either
		// live, allocatable, or in limbo.
		carved := (f.arena.Load(f.al.wildOff+wBump) - f.al.heapOff) / classWords[0]
		total := uint64(len(live)) + uint64(f.al.FreeListLen(0, 0)) + uint64(f.al.LimboLen(0, 0))
		return carved == total
	}
	for seed := int64(0); seed < 10; seed++ {
		if !fprop(seed) {
			t.Fatalf("object accounting broken for seed %d", seed)
		}
	}
}

func TestAllocNodeIsLineAlignedAndDisjoint(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		n := h.AllocNode()
		if n == 0 {
			t.Fatal("AllocNode failed")
		}
		if n%nvm.WordsPerLine != 0 {
			t.Fatalf("node %d not cache-line aligned", n)
		}
		// Node payloads must not overlap each other or their headers.
		for off := n; off < n+40; off++ {
			if seen[off] {
				t.Fatalf("node word %d handed out twice", off)
			}
			seen[off] = true
		}
	}
}

func TestNodeHeaderSurvivesPayloadWrites(t *testing.T) {
	// The free-list header must live outside the node payload: writing
	// every payload word and then freeing/re-splicing must not corrupt
	// the list.
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	nodes := make([]uint64, 50)
	for i := range nodes {
		nodes[i] = h.AllocNode()
		for w := uint64(0); w < 40; w++ {
			f.arena.Store(nodes[i]+w, ^uint64(0)) // worst-case garbage
		}
	}
	for _, n := range nodes {
		h.FreeNode(n)
	}
	f.mgr.Advance() // splice limbo
	// Every node must come back exactly once.
	back := map[uint64]int{}
	for {
		n := h.AllocNode()
		if n == 0 {
			break
		}
		back[n]++
	}
	for _, n := range nodes {
		if back[n] != 1 {
			t.Fatalf("node %d came back %d times", n, back[n])
		}
	}
}

func TestNodeAllocCrashRollback(t *testing.T) {
	f := newFixture(t, 1)
	h := f.al.Handle(0)
	n1 := h.AllocNode()
	f.mgr.Advance() // commit: n1 allocated
	var doomed []uint64
	for i := 0; i < 10; i++ {
		doomed = append(doomed, h.AllocNode())
	}
	f.arena.Crash(nvm.RandomPolicy(0.5, 99))
	f2 := f.rebuild()
	h2 := f2.al.Handle(0)
	got := map[uint64]bool{}
	for {
		n := h2.AllocNode()
		if n == 0 {
			break
		}
		if n == n1 {
			t.Fatal("committed node allocation resurfaced on the free list")
		}
		got[n] = true
	}
	for _, d := range doomed {
		if !got[d] {
			t.Fatalf("doomed node %d leaked (not allocatable after crash)", d)
		}
	}
}
