package nvm

import "math/rand"

// Policy decides, at crash time, whether a given not-yet-persistent cache
// line reached NVM before power was lost. A real machine makes this choice
// according to its undocumented replacement traffic; test policies make it
// deterministic, random, or adversarial.
type Policy interface {
	// Persist reports whether the line was written back before the crash.
	Persist(line int) bool
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(line int) bool

// Persist implements Policy.
func (f PolicyFunc) Persist(line int) bool { return f(line) }

// PersistAll persists every dirty line: the crash happened "just after" an
// implicit full flush. Recovery still must roll back the failed epoch.
var PersistAll Policy = PolicyFunc(func(int) bool { return true })

// PersistNone drops every dirty line: NVM holds exactly the state of the
// last completed global flush.
var PersistNone Policy = PolicyFunc(func(int) bool { return false })

// RandomPolicy persists each dirty line independently with probability p.
// The zero seed is a valid fixed seed; distinct seeds give distinct crashes.
func RandomPolicy(p float64, seed int64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return PolicyFunc(func(int) bool { return rng.Float64() < p })
}

// EvenOddPolicy persists exactly the even-numbered (phase 0) or
// odd-numbered (phase 1) lines — a cheap adversary that tears every
// multi-line object in half.
func EvenOddPolicy(phase int) Policy {
	return PolicyFunc(func(line int) bool { return line%2 == phase&1 })
}
