package nvm

import (
	"fmt"
	"sync/atomic"
)

// Stats counts persistence-relevant events. All fields are updated
// atomically on the slow paths only (writeback, fence, flush, eviction,
// crash); plain loads and stores are not individually counted, because the
// interesting cost on real hardware is exactly the set of events below.
type Stats struct {
	Writebacks          atomic.Int64 // clwb/clflushopt instructions issued
	Fences              atomic.Int64 // sfence instructions issued
	LinesPersisted      atomic.Int64 // lines copied volatile→persist (any cause)
	Evictions           atomic.Int64 // lines persisted by background replacement
	GlobalFlushes       atomic.Int64 // wbinvd invocations
	Crashes             atomic.Int64 // simulated power failures
	CrashLinesPersisted atomic.Int64 // dirty lines that survived a crash
	CrashLinesLost      atomic.Int64 // dirty lines lost in a crash
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Writebacks:          s.Writebacks.Load(),
		Fences:              s.Fences.Load(),
		LinesPersisted:      s.LinesPersisted.Load(),
		Evictions:           s.Evictions.Load(),
		GlobalFlushes:       s.GlobalFlushes.Load(),
		Crashes:             s.Crashes.Load(),
		CrashLinesPersisted: s.CrashLinesPersisted.Load(),
		CrashLinesLost:      s.CrashLinesLost.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Writebacks          int64
	Fences              int64
	LinesPersisted      int64
	Evictions           int64
	GlobalFlushes       int64
	Crashes             int64
	CrashLinesPersisted int64
	CrashLinesLost      int64
}

// Add returns s + o, field by field (aggregating multi-arena clusters).
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Writebacks:          s.Writebacks + o.Writebacks,
		Fences:              s.Fences + o.Fences,
		LinesPersisted:      s.LinesPersisted + o.LinesPersisted,
		Evictions:           s.Evictions + o.Evictions,
		GlobalFlushes:       s.GlobalFlushes + o.GlobalFlushes,
		Crashes:             s.Crashes + o.Crashes,
		CrashLinesPersisted: s.CrashLinesPersisted + o.CrashLinesPersisted,
		CrashLinesLost:      s.CrashLinesLost + o.CrashLinesLost,
	}
}

// Sub returns s - o, field by field.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Writebacks:          s.Writebacks - o.Writebacks,
		Fences:              s.Fences - o.Fences,
		LinesPersisted:      s.LinesPersisted - o.LinesPersisted,
		Evictions:           s.Evictions - o.Evictions,
		GlobalFlushes:       s.GlobalFlushes - o.GlobalFlushes,
		Crashes:             s.Crashes - o.Crashes,
		CrashLinesPersisted: s.CrashLinesPersisted - o.CrashLinesPersisted,
		CrashLinesLost:      s.CrashLinesLost - o.CrashLinesLost,
	}
}

// String renders the snapshot compactly for logs.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("wb=%d fence=%d persisted=%d evict=%d flush=%d crash=%d(+%d/-%d)",
		s.Writebacks, s.Fences, s.LinesPersisted, s.Evictions, s.GlobalFlushes,
		s.Crashes, s.CrashLinesPersisted, s.CrashLinesLost)
}
