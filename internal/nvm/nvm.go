// Package nvm simulates a byte-addressable non-volatile memory behind a
// transient CPU cache, following the Persistent Cache Store Order (PCSO)
// model used by Cohen et al. (ASPLOS 2019).
//
// The simulation keeps two images of the same word-addressable arena:
//
//   - the volatile image, which mutators read and write (it plays the role
//     of "memory as seen through the cache hierarchy"), and
//   - the persistent image, which only receives whole 64-byte cache lines
//     when a line is written back (explicit writeback+fence, background
//     eviction, a global flush, or a simulated power failure).
//
// Because a line is always persisted atomically with its current contents,
// two writes to the same cache line can never be observed out of program
// order in the persistent image: this is exactly the PCSO "granularity"
// guarantee that In-Cache-Line Logging relies on. Writes to different lines
// persist in an arbitrary order unless an explicit Writeback/Fence pair
// intervenes, which is the PCSO "explicit flush" guarantee.
//
// A simulated power failure (Crash) persists an arbitrary, policy-chosen
// subset of the dirty lines and discards the cache, leaving the arena in a
// state that recovery code must repair — the same challenge real NVM
// software faces.
package nvm

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/obs"
)

const (
	// LineBytes is the size of a simulated cache line.
	LineBytes = 64
	// WordsPerLine is the number of 8-byte words per cache line.
	WordsPerLine = LineBytes / 8
)

// Per-line state flags.
const (
	lineDirty    uint32 = 1 << 0 // written since last persist
	linePending  uint32 = 1 << 1 // writeback issued, fence not yet executed
	lineFlushing uint32 = 1 << 2 // background eviction in progress
)

// Config describes a simulated memory subsystem.
type Config struct {
	// Words is the arena size in 8-byte words. Rounded up to a whole
	// number of cache lines. Must be > 0.
	Words uint64

	// FenceDelay is an artificial latency injected on every Fence, which
	// models the NVM round-trip waited on by sfence. Used by the paper's
	// emulated-latency experiments (Figures 3 and 8).
	FenceDelay time.Duration

	// FlushBaseCost and FlushLineCost model the cost of a global cache
	// flush (wbinvd): FlushAll busy-waits FlushBaseCost plus FlushLineCost
	// per persisted line, in addition to the real cost of copying.
	FlushBaseCost time.Duration
	FlushLineCost time.Duration

	// DirtyCapacity, when > 0, bounds the number of dirty lines the
	// "cache" may hold: crossing the bound triggers background eviction
	// (write-back of a random dirty line), modelling the cache replacement
	// traffic that empties part of the cache during an epoch. 0 disables
	// eviction.
	DirtyCapacity int

	// Seed seeds the eviction victim selector. Crash policies carry their
	// own seeds.
	Seed int64
}

// Arena is a simulated NVM region. All durable state of the system lives in
// one Arena and is accessed with Load and Store at word granularity.
//
// Concurrency: Load and Store are safe for concurrent use. Writeback and
// Fence must only be applied to lines the calling goroutine has exclusive
// write access to (in this codebase they are used on per-thread log buffers
// and on barrier-protected metadata, which satisfies that). FlushAll and
// Crash require all mutators to be quiescent, which the epoch manager's
// global barrier provides.
type Arena struct {
	volatile []uint64        // the image mutators see (through the cache)
	persist  []uint64        // the NVM image
	flags    []atomic.Uint32 // per-line state
	summary  []atomic.Uint64 // one bit per line, grouped 64 lines/word

	lines      int
	evict      bool
	dirtyCount atomic.Int64
	capacity   int64

	cfg Config

	mu       sync.Mutex // guards slow paths: Fence, FlushAll, Crash, eviction scan cursor
	evictPos int
	rng      *rand.Rand

	pendMu  sync.Mutex
	pending []int // lines with an outstanding writeback

	reserveOff uint64 // bump cursor for static region carving

	phases *obs.PhaseSet // sampled fence-stall attribution; nil disables
	stats  Stats
}

// Instrument attaches the sampled latency-attribution timer: a 1-in-N sample
// of Fence calls is timed end to end (drain + modeled NVM round trip) and
// charged to the fence phase. nil detaches.
func (a *Arena) Instrument(ph *obs.PhaseSet) { a.phases = ph }

// New creates an arena of cfg.Words words, all zero, fully persistent
// (clean). Word offset 0 is reserved so that 0 can act as a null "pointer".
func New(cfg Config) *Arena {
	if cfg.Words == 0 {
		panic("nvm: Config.Words must be > 0")
	}
	words := (cfg.Words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	lines := int(words / WordsPerLine)
	a := &Arena{
		volatile: make([]uint64, words),
		persist:  make([]uint64, words),
		flags:    make([]atomic.Uint32, lines),
		summary:  make([]atomic.Uint64, (lines+63)/64),
		lines:    lines,
		evict:    cfg.DirtyCapacity > 0,
		capacity: int64(cfg.DirtyCapacity),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		// Word 0 is never handed out: offset 0 means "null".
		reserveOff: WordsPerLine,
	}
	return a
}

// Size returns the arena size in words.
func (a *Arena) Size() uint64 { return uint64(len(a.volatile)) }

// Lines returns the number of cache lines in the arena.
func (a *Arena) Lines() int { return a.lines }

// Config returns the configuration the arena was built with.
func (a *Arena) Config() Config { return a.cfg }

// Reserve carves a static region of the given number of words out of the
// arena, aligned to a cache-line boundary, and returns its word offset.
// Region layout is decided deterministically at start-up (before any
// mutation), so a recovering process re-derives the same layout; Reserve is
// not itself crash-safe and must not be used after mutation begins.
func (a *Arena) Reserve(words uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	off := a.reserveOff
	n := (words + WordsPerLine - 1) / WordsPerLine * WordsPerLine
	if off+n > uint64(len(a.volatile)) {
		panic(fmt.Sprintf("nvm: arena exhausted: reserve %d words at %d of %d", n, off, len(a.volatile)))
	}
	a.reserveOff = off + n
	return off
}

// ResetReservations rewinds the Reserve cursor, modelling a process
// restart: a recovering process replays the same deterministic Reserve
// sequence and re-derives the same region offsets over the surviving
// arena contents.
func (a *Arena) ResetReservations() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserveOff = WordsPerLine
}

// Reserved reports how many words have been handed out by Reserve.
func (a *Arena) Reserved() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserveOff
}

// Load reads the word at off as the CPU would: through the cache, seeing
// the most recent store.
func (a *Arena) Load(off uint64) uint64 {
	return atomic.LoadUint64(&a.volatile[off])
}

// Store writes the word at off through the cache and marks its line dirty.
// The store becomes durable only when the line is persisted (writeback +
// fence, eviction, global flush, or a lucky crash).
func (a *Arena) Store(off uint64, v uint64) {
	line := int(off / WordsPerLine)
	if a.evict {
		// Mark before and after the data store so a concurrent background
		// eviction that overlaps this store always observes the line as
		// re-dirtied and discards its (possibly torn) copy.
		a.markDirty(line)
		atomic.StoreUint64(&a.volatile[off], v)
		a.markDirty(line)
		a.maybeEvict()
		return
	}
	atomic.StoreUint64(&a.volatile[off], v)
	a.markDirty(line)
}

func (a *Arena) markDirty(line int) {
	// Fast path: the line is already dirty. Safe only without background
	// eviction — eviction relies on the full mark-before/mark-after RMW
	// protocol to detect stores racing with a line copy; without eviction,
	// dirty bits are only cleared while mutators are quiesced (FlushAll,
	// Crash) or on lines the clearing thread owns (Fence).
	if !a.evict && a.flags[line].Load()&lineDirty != 0 {
		return
	}
	old := orU32(&a.flags[line], lineDirty)
	if old&lineDirty == 0 {
		orU64(&a.summary[line>>6], 1<<(uint(line)&63))
		if a.evict {
			a.dirtyCount.Add(1)
		}
	}
}

// orU32, orU64 and andU64 are CAS-loop replacements for the value-returning
// atomic Or/And intrinsics, which miscompile on go1.24.0 (the intrinsic's
// CMPXCHG loop clobbers a live register). The CAS loop lowers to the same
// LOCK CMPXCHG without tickling the bug.
func orU32(x *atomic.Uint32, mask uint32) (old uint32) {
	for {
		old = x.Load()
		if old&mask == mask || x.CompareAndSwap(old, old|mask) {
			return old
		}
	}
}

func orU64(x *atomic.Uint64, mask uint64) {
	for {
		old := x.Load()
		if old&mask == mask || x.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

func andU64(x *atomic.Uint64, mask uint64) {
	for {
		old := x.Load()
		if old&mask == old || x.CompareAndSwap(old, old&mask) {
			return
		}
	}
}

// CompareAndSwap atomically replaces the word at off with new if it
// currently holds old, marking the line dirty on success. Models a CPU
// CAS on an NVM-backed location.
func (a *Arena) CompareAndSwap(off uint64, old, new uint64) bool {
	line := int(off / WordsPerLine)
	if a.evict {
		a.markDirty(line)
		ok := atomic.CompareAndSwapUint64(&a.volatile[off], old, new)
		a.markDirty(line)
		return ok
	}
	if !atomic.CompareAndSwapUint64(&a.volatile[off], old, new) {
		return false
	}
	a.markDirty(line)
	return true
}

// Writeback initiates an asynchronous write-back (clwb/clflushopt) of the
// line containing off. The line's current contents are only guaranteed to
// be durable after a subsequent Fence.
func (a *Arena) Writeback(off uint64) {
	line := int(off / WordsPerLine)
	if a.flags[line].Load()&lineDirty != 0 {
		if orU32(&a.flags[line], linePending)&linePending == 0 {
			a.pendMu.Lock()
			a.pending = append(a.pending, line)
			a.pendMu.Unlock()
		}
	}
	a.stats.Writebacks.Add(1)
}

// WritebackRange issues Writeback for every line overlapping
// [off, off+words).
func (a *Arena) WritebackRange(off, words uint64) {
	first := off / WordsPerLine
	last := (off + words - 1) / WordsPerLine
	for l := first; l <= last; l++ {
		a.Writeback(l * WordsPerLine)
	}
}

// Fence completes all outstanding writebacks (sfence): every line with a
// pending writeback is persisted with its current contents. Injects the
// configured FenceDelay to model the NVM round trip.
func (a *Arena) Fence() {
	if a.phases.Sampled(0) {
		t0 := time.Now()
		defer func() { a.phases.Observe(obs.PhaseFence, time.Since(t0)) }()
	}
	a.pendMu.Lock()
	pend := a.pending
	a.pending = nil
	a.pendMu.Unlock()
	if len(pend) > 0 {
		a.mu.Lock()
		for _, line := range pend {
			if a.flags[line].Load()&linePending != 0 {
				a.persistLineLocked(line)
			}
		}
		a.mu.Unlock()
	}
	a.stats.Fences.Add(1)
	spinWait(a.cfg.FenceDelay)
}

// persistLineLocked copies one line volatile→persist and marks it clean.
// Caller holds a.mu and guarantees no concurrent writer to this line.
func (a *Arena) persistLineLocked(line int) {
	base := uint64(line) * WordsPerLine
	for i := uint64(0); i < WordsPerLine; i++ {
		a.persist[base+i] = atomic.LoadUint64(&a.volatile[base+i])
	}
	old := a.flags[line].Swap(0)
	if old&lineDirty != 0 && a.evict {
		a.dirtyCount.Add(-1)
	}
	a.clearSummary(line)
	a.stats.LinesPersisted.Add(1)
}

func (a *Arena) clearSummary(line int) {
	andU64(&a.summary[line>>6], ^(uint64(1) << (uint(line) & 63)))
}

func andU32(x *atomic.Uint32, mask uint32) {
	for {
		old := x.Load()
		if old&mask == old || x.CompareAndSwap(old, old&mask) {
			return
		}
	}
}

// maybeEvict persists a victim dirty line when the dirty set exceeds the
// configured capacity, modelling cache replacement traffic.
func (a *Arena) maybeEvict() {
	if a.dirtyCount.Load() <= a.capacity {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dirtyCount.Load() <= a.capacity {
		return
	}
	// Scan from a moving cursor for a dirty line; cheap and avoids bias.
	for scanned := 0; scanned < len(a.summary); scanned++ {
		g := a.evictPos % len(a.summary)
		a.evictPos++
		w := a.summary[g].Load()
		if w == 0 {
			continue
		}
		line := g<<6 + trailingZeros(w&(-w))
		if !a.flags[line].CompareAndSwap(lineDirty, lineFlushing) {
			continue // pending or being rewritten; pick another victim
		}
		base := uint64(line) * WordsPerLine
		var buf [WordsPerLine]uint64
		for i := uint64(0); i < WordsPerLine; i++ {
			buf[i] = atomic.LoadUint64(&a.volatile[base+i])
		}
		if a.flags[line].CompareAndSwap(lineFlushing, 0) {
			// No store raced with the copy: buf is a consistent
			// point-in-time snapshot of the line; persist it.
			copy(a.persist[base:base+WordsPerLine], buf[:])
			a.dirtyCount.Add(-1)
			a.clearSummary(line)
			a.stats.Evictions.Add(1)
			a.stats.LinesPersisted.Add(1)
		} else {
			// A writer re-dirtied the line mid-copy; drop the torn copy.
			andU32(&a.flags[line], ^lineFlushing)
		}
		return
	}
}

// FlushAll persists every dirty or pending line (wbinvd at an epoch
// boundary) and returns the number of lines persisted. All mutators must be
// quiescent. Injects the configured flush cost model.
func (a *Arena) FlushAll() int {
	a.mu.Lock()
	n := 0
	// Mutators are quiesced, so bulk-copy without per-line atomics: the
	// hardware analogue is wbinvd streaming the whole dirty set.
	for g := range a.summary {
		w := a.summary[g].Load()
		if w == 0 {
			continue
		}
		for bits := w; bits != 0; {
			bit := bits & (-bits)
			bits &^= bit
			line := g<<6 + trailingZeros(bit)
			if a.flags[line].Load() == 0 {
				continue
			}
			base := uint64(line) * WordsPerLine
			copy(a.persist[base:base+WordsPerLine], a.volatile[base:base+WordsPerLine])
			a.flags[line].Store(0)
			n++
		}
		a.summary[g].Store(0)
	}
	if a.evict {
		a.dirtyCount.Store(0)
	}
	a.mu.Unlock()
	a.stats.LinesPersisted.Add(int64(n))
	a.stats.GlobalFlushes.Add(1)
	spinWait(a.cfg.FlushBaseCost + time.Duration(n)*a.cfg.FlushLineCost)
	return n
}

// Crash simulates a power failure: every line that is not yet persistent
// (dirty, pending, or mid-eviction) is either persisted whole or dropped,
// as decided by the policy; then the cache contents are lost and the
// volatile image is reloaded from the persistent image. All mutators must
// be quiescent. After Crash returns, the arena holds exactly the state a
// recovering process would find in NVM.
func (a *Arena) Crash(p Policy) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for line := 0; line < a.lines; line++ {
		f := a.flags[line].Load()
		if f != 0 {
			if p.Persist(line) {
				base := uint64(line) * WordsPerLine
				copy(a.persist[base:base+WordsPerLine], a.volatile[base:base+WordsPerLine])
				a.stats.CrashLinesPersisted.Add(1)
			} else {
				a.stats.CrashLinesLost.Add(1)
			}
			a.flags[line].Store(0)
			a.clearSummary(line)
		}
	}
	copy(a.volatile, a.persist)
	a.dirtyCount.Store(0)
	a.pendMu.Lock()
	a.pending = nil
	a.pendMu.Unlock()
	a.stats.Crashes.Add(1)
}

// DirtyLines returns the number of lines that are not yet persistent.
func (a *Arena) DirtyLines() int {
	n := 0
	for g := range a.summary {
		w := a.summary[g].Load()
		for w != 0 {
			bit := w & (-w)
			w &^= bit
			line := g<<6 + trailingZeros(bit)
			if a.flags[line].Load() != 0 {
				n++
			}
		}
	}
	return n
}

// LoadPersisted reads the word at off from the persistent image. Test and
// validation helper; not part of the simulated machine's ISA.
func (a *Arena) LoadPersisted(off uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.persist[off]
}

// Stats returns the arena's counters.
func (a *Arena) Stats() *Stats { return &a.stats }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// spinWait busy-waits for roughly d. Sleeping is useless at the sub-
// microsecond scale the latency model needs, so we spin like the paper's
// emulation harness does.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}
