package nvm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newArena(t testing.TB, words uint64) *Arena {
	t.Helper()
	return New(Config{Words: words})
}

func TestLoadStoreRoundTrip(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 42)
	if got := a.Load(8); got != 42 {
		t.Fatalf("Load(8) = %d, want 42", got)
	}
	if got := a.LoadPersisted(8); got != 0 {
		t.Fatalf("LoadPersisted(8) = %d before any flush, want 0", got)
	}
}

func TestStoreIsNotDurableWithoutFlush(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(16, 7)
	a.Crash(PersistNone)
	if got := a.Load(16); got != 0 {
		t.Fatalf("after crash with PersistNone, Load(16) = %d, want 0", got)
	}
}

func TestWritebackWithoutFenceIsNotGuaranteed(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(16, 7)
	a.Writeback(16)
	// No fence: the line may be lost.
	a.Crash(PersistNone)
	if got := a.Load(16); got != 0 {
		t.Fatalf("writeback without fence must not guarantee durability; got %d", got)
	}
}

func TestWritebackFenceIsDurable(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(16, 7)
	a.Writeback(16)
	a.Fence()
	a.Crash(PersistNone)
	if got := a.Load(16); got != 7 {
		t.Fatalf("after writeback+fence+crash, Load(16) = %d, want 7", got)
	}
}

func TestFenceOnlyPersistsPendingLines(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(16, 7)  // line 2
	a.Store(128, 9) // line 16, never written back
	a.Writeback(16)
	a.Fence()
	a.Crash(PersistNone)
	if got := a.Load(16); got != 7 {
		t.Fatalf("fenced line lost: got %d, want 7", got)
	}
	if got := a.Load(128); got != 0 {
		t.Fatalf("unfenced line persisted spuriously: got %d, want 0", got)
	}
}

func TestFlushAllPersistsEverything(t *testing.T) {
	a := newArena(t, 4096)
	for i := uint64(8); i < 512; i += 8 {
		a.Store(i, i)
	}
	n := a.FlushAll()
	if n == 0 {
		t.Fatal("FlushAll persisted no lines")
	}
	a.Crash(PersistNone)
	for i := uint64(8); i < 512; i += 8 {
		if got := a.Load(i); got != i {
			t.Fatalf("Load(%d) = %d after FlushAll+crash, want %d", i, got, i)
		}
	}
	if d := a.DirtyLines(); d != 0 {
		t.Fatalf("DirtyLines() = %d after FlushAll, want 0", d)
	}
}

func TestSameLinePCSOOrdering(t *testing.T) {
	// Two writes to the same line: a crash can never expose the second
	// without the first, because lines persist whole.
	for seed := int64(0); seed < 64; seed++ {
		a := newArena(t, 1024)
		a.Store(8, 1) // first write, word 1 of line 1
		a.Store(9, 2) // second write, word 2 of line 1
		a.Crash(RandomPolicy(0.5, seed))
		w1, w2 := a.Load(8), a.Load(9)
		if w2 == 2 && w1 != 1 {
			t.Fatalf("seed %d: PCSO violated: second same-line write persisted without first (w1=%d w2=%d)", seed, w1, w2)
		}
		// Either both persisted or neither did.
		if (w1 == 1) != (w2 == 2) {
			t.Fatalf("seed %d: line persisted torn: w1=%d w2=%d", seed, w1, w2)
		}
	}
}

func TestCrossLineOrderIsArbitrary(t *testing.T) {
	// Writes to different lines may persist in either order; verify both
	// outcomes are reachable under some crash policy.
	sawFirstOnly, sawSecondOnly := false, false
	for seed := int64(0); seed < 256 && !(sawFirstOnly && sawSecondOnly); seed++ {
		a := newArena(t, 1024)
		a.Store(8, 1)  // line 1
		a.Store(16, 2) // line 2
		a.Crash(RandomPolicy(0.5, seed))
		first, second := a.Load(8) == 1, a.Load(16) == 2
		if first && !second {
			sawFirstOnly = true
		}
		if second && !first {
			sawSecondOnly = true
		}
	}
	if !sawFirstOnly || !sawSecondOnly {
		t.Fatalf("cross-line reordering not exercised: firstOnly=%v secondOnly=%v", sawFirstOnly, sawSecondOnly)
	}
}

func TestCrashPersistAllKeepsEverything(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 11)
	a.Store(80, 22)
	a.Crash(PersistAll)
	if a.Load(8) != 11 || a.Load(80) != 22 {
		t.Fatalf("PersistAll crash lost data: %d %d", a.Load(8), a.Load(80))
	}
}

func TestCrashResetsDirtyState(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 1)
	a.Crash(PersistNone)
	if d := a.DirtyLines(); d != 0 {
		t.Fatalf("DirtyLines() = %d after crash, want 0", d)
	}
	// A fresh store after the crash behaves normally.
	a.Store(8, 5)
	a.FlushAll()
	if got := a.LoadPersisted(8); got != 5 {
		t.Fatalf("post-crash store not durable after flush: %d", got)
	}
}

func TestEvenOddPolicyTearsAcrossLines(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 1)  // line 1 (odd)
	a.Store(16, 2) // line 2 (even)
	a.Crash(EvenOddPolicy(0))
	if a.Load(8) != 0 || a.Load(16) != 2 {
		t.Fatalf("EvenOddPolicy(0): got line1=%d line2=%d, want 0,2", a.Load(8), a.Load(16))
	}
}

func TestReserveAlignsAndAdvances(t *testing.T) {
	a := newArena(t, 4096)
	r1 := a.Reserve(3)
	r2 := a.Reserve(10)
	if r1%WordsPerLine != 0 || r2%WordsPerLine != 0 {
		t.Fatalf("regions not line-aligned: %d %d", r1, r2)
	}
	if r1 == 0 {
		t.Fatal("Reserve returned the null offset 0")
	}
	if r2 <= r1 {
		t.Fatalf("regions overlap: r1=%d r2=%d", r1, r2)
	}
	if r2-r1 < 3 {
		t.Fatalf("second region overlaps first: r1=%d r2=%d", r1, r2)
	}
}

func TestReserveExhaustionPanics(t *testing.T) {
	a := newArena(t, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arena exhaustion")
		}
	}()
	a.Reserve(1 << 20)
}

func TestDirtyCapacityTriggersEviction(t *testing.T) {
	a := New(Config{Words: 1 << 16, DirtyCapacity: 8})
	for i := uint64(0); i < 100; i++ {
		a.Store(i*WordsPerLine+WordsPerLine, uint64(i)+1)
	}
	if ev := a.Stats().Evictions.Load(); ev == 0 {
		t.Fatal("expected background evictions with DirtyCapacity=8")
	}
	// Evicted lines are durable even if the crash drops everything else.
	a.Crash(PersistNone)
	persisted := 0
	for i := uint64(0); i < 100; i++ {
		if a.Load(i*WordsPerLine+WordsPerLine) == uint64(i)+1 {
			persisted++
		}
	}
	if persisted == 0 {
		t.Fatal("no evicted line survived the crash")
	}
}

func TestEvictionKeepsLineConsistent(t *testing.T) {
	// Hammer one line from two goroutines while eviction churns; the
	// persistent image must always hold a prefix-consistent pair (the
	// same-line PCSO guarantee) — w2 set implies w1 set to a value at
	// least as new.
	a := New(Config{Words: 1 << 16, DirtyCapacity: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Same line: word 8 then word 9, monotonically.
			a.Store(8, i)
			a.Store(9, i)
		}
	}()
	// Churn other lines to force evictions of line 1.
	for i := uint64(0); i < 5000; i++ {
		a.Store((i%500)*WordsPerLine+2*WordsPerLine, i)
	}
	close(stop)
	wg.Wait()
	a.mu.Lock()
	w1, w2 := a.persist[8], a.persist[9]
	a.mu.Unlock()
	if w2 > w1 {
		t.Fatalf("torn line persisted: w1=%d w2=%d (w2 written after w1 each round)", w1, w2)
	}
}

func TestFenceDelayIsInjected(t *testing.T) {
	a := New(Config{Words: 1024, FenceDelay: 200 * time.Microsecond})
	a.Store(8, 1)
	a.Writeback(8)
	t0 := time.Now()
	a.Fence()
	if el := time.Since(t0); el < 150*time.Microsecond {
		t.Fatalf("fence returned in %v, want >= ~200µs", el)
	}
}

func TestFlushCostModelIsInjected(t *testing.T) {
	a := New(Config{Words: 1024, FlushBaseCost: 300 * time.Microsecond})
	a.Store(8, 1)
	t0 := time.Now()
	a.FlushAll()
	if el := time.Since(t0); el < 200*time.Microsecond {
		t.Fatalf("FlushAll returned in %v, want >= ~300µs", el)
	}
}

func TestStatsCounters(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 1)
	a.Writeback(8)
	a.Fence()
	a.FlushAll()
	s := a.Stats().Snapshot()
	if s.Writebacks != 1 || s.Fences != 1 || s.GlobalFlushes != 1 {
		t.Fatalf("unexpected stats: %v", s)
	}
	if s.LinesPersisted == 0 {
		t.Fatalf("no lines persisted recorded: %v", s)
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	a := StatsSnapshot{Writebacks: 5, Fences: 3}
	b := StatsSnapshot{Writebacks: 2, Fences: 1}
	d := a.Sub(b)
	if d.Writebacks != 3 || d.Fences != 2 {
		t.Fatalf("Sub = %+v", d)
	}
}

// Property: after any sequence of stores and a FlushAll, the persistent
// image equals the volatile image on every touched word.
func TestPropertyFlushAllMakesImagesEqual(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		a := New(Config{Words: 1 << 12})
		rng := rand.New(rand.NewSource(seed))
		offs := make([]uint64, 0, n)
		for i := 0; i < int(n); i++ {
			off := uint64(rng.Intn(1<<12-8)) + 8
			a.Store(off, rng.Uint64())
			offs = append(offs, off)
		}
		a.FlushAll()
		for _, off := range offs {
			if a.Load(off) != a.LoadPersisted(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a crash never invents values — every persisted word was stored
// at some point (here: value equals offset tag or zero).
func TestPropertyCrashNeverInventsValues(t *testing.T) {
	f := func(seed int64, n uint8, p float64) bool {
		if p < 0 || p > 1 {
			p = 0.5
		}
		a := New(Config{Words: 1 << 12})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			off := uint64(rng.Intn(1<<12-8)) + 8
			a.Store(off, off) // tag each word with its offset
		}
		a.Crash(RandomPolicy(p, seed))
		for off := uint64(0); off < 1<<12; off++ {
			v := a.Load(off)
			if v != 0 && v != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStoresDistinctLines(t *testing.T) {
	a := New(Config{Words: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 1000 * WordsPerLine
			for i := uint64(0); i < 1000; i++ {
				a.Store(base+i*WordsPerLine+WordsPerLine, i+1)
			}
		}(g)
	}
	wg.Wait()
	a.FlushAll()
	for g := 0; g < 8; g++ {
		base := uint64(g) * 1000 * WordsPerLine
		for i := uint64(0); i < 1000; i++ {
			if got := a.LoadPersisted(base + i*WordsPerLine + WordsPerLine); got != i+1 {
				t.Fatalf("g=%d i=%d got %d", g, i, got)
			}
		}
	}
}

func TestCompareAndSwap(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 5)
	if a.CompareAndSwap(8, 4, 9) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if !a.CompareAndSwap(8, 5, 9) {
		t.Fatal("CAS failed with correct expected value")
	}
	if a.Load(8) != 9 {
		t.Fatalf("Load = %d after CAS", a.Load(8))
	}
	// CAS dirties the line like a store.
	a.FlushAll()
	if a.LoadPersisted(8) != 9 {
		t.Fatal("CAS result not flushed")
	}
}

func TestWritebackRangeCoversAllLines(t *testing.T) {
	a := newArena(t, 4096)
	// Dirty a 5-line span, write back the whole range, fence, crash.
	for off := uint64(8); off < 8+5*WordsPerLine; off++ {
		a.Store(off, off)
	}
	a.WritebackRange(8, 5*WordsPerLine)
	a.Fence()
	a.Crash(PersistNone)
	for off := uint64(8); off < 8+5*WordsPerLine; off++ {
		if a.Load(off) != off {
			t.Fatalf("word %d lost after WritebackRange+Fence", off)
		}
	}
}

func TestFenceIsCheapWhenNothingPending(t *testing.T) {
	a := newArena(t, 1<<20)
	for i := uint64(0); i < 1000; i++ {
		a.Store(i*WordsPerLine+8, i) // dirty many lines, none pending
	}
	t0 := time.Now()
	for i := 0; i < 10000; i++ {
		a.Fence()
	}
	if el := time.Since(t0); el > 500*time.Millisecond {
		t.Fatalf("10k empty fences took %v; Fence must not scan the arena", el)
	}
}

func TestPendingListSurvivesInterleavedStores(t *testing.T) {
	a := newArena(t, 1024)
	a.Store(8, 1)
	a.Writeback(8)
	a.Store(16, 2) // different line, not written back
	a.Store(9, 3)  // same line as the pending writeback, after the writeback
	a.Fence()
	a.Crash(PersistNone)
	// The fenced line persists with its latest contents (PCSO: the fence
	// completes the write-back of whatever the line holds).
	if a.Load(8) != 1 || a.Load(9) != 3 {
		t.Fatalf("fenced line = %d,%d want 1,3", a.Load(8), a.Load(9))
	}
	if a.Load(16) != 0 {
		t.Fatal("unfenced line persisted spuriously")
	}
}
