// Package testutil holds tiny helpers shared by the crash-consistency
// test suites.
package testutil

// Pattern fills n bytes deterministically from seed (xorshift64), so the
// crash tests can detect torn values byte-by-byte.
func Pattern(seed uint64, n int) []byte {
	v := make([]byte, n)
	x := seed*0x9E3779B97F4A7C15 + 1
	for i := range v {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = byte(x)
	}
	return v
}
