package shard

import (
	"testing"
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
)

func TestAdvanceKeepsShardsInLockstep(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	if s.Epoch() != 1 || s.GlobalEpoch() != 0 {
		t.Fatalf("fresh cluster at epoch %d / global %d", s.Epoch(), s.GlobalEpoch())
	}
	for i := 0; i < 3; i++ {
		s.Put(core.EncodeUint64(uint64(i)), uint64(i))
		s.Advance()
	}
	if s.Epoch() != 4 || s.GlobalEpoch() != 3 {
		t.Fatalf("after 3 advances: epoch %d / global %d, want 4 / 3", s.Epoch(), s.GlobalEpoch())
	}
	for i := 0; i < s.NumShards(); i++ {
		if e := s.ShardStore(i).Epochs().Current(); e != 4 {
			t.Fatalf("shard %d at epoch %d, want 4", i, e)
		}
	}
}

func TestShutdownCleanRestart(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	for i := uint64(0); i < 1000; i++ {
		s.Put(core.EncodeUint64(i), i+1)
	}
	s.Shutdown()
	s.crashArenas(0, 99) // total power loss after clean shutdown
	s2, info := s.Reopen()
	if info.Status != epoch.CleanRestart {
		t.Fatalf("status = %v, want clean-restart", info.Status)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := s2.Get(core.EncodeUint64(i)); !ok || v != i+1 {
			t.Fatalf("key %d = %d,%v after clean restart", i, v, ok)
		}
	}
}

func TestTickerAdvancesGlobally(t *testing.T) {
	s, _ := Open(testConfig(2, 1))
	s.StartTicker(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for s.GlobalEpoch() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.StopTicker()
	if s.GlobalEpoch() < 3 {
		t.Fatalf("ticker advanced the global epoch only to %d", s.GlobalEpoch())
	}
	for i := 0; i < s.NumShards(); i++ {
		if e := s.ShardStore(i).Epochs().Current(); e != s.Epoch() {
			t.Fatalf("shard %d at epoch %d, cluster at %d", i, e, s.Epoch())
		}
	}
}

// populate writes keys [0, n) = base+i and commits them globally.
func populate(t *testing.T, s *Store, n uint64, base uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		s.Put(core.EncodeUint64(i), base+i)
	}
	s.Advance()
}

// verifyAll checks keys [0, n) = base+i on the recovered cluster and the
// single-epoch invariant.
func verifyAll(t *testing.T, s *Store, n uint64, base uint64) {
	t.Helper()
	e0 := s.ShardStore(0).Epochs().Current()
	for i := 0; i < s.NumShards(); i++ {
		if e := s.ShardStore(i).Epochs().Current(); e != e0 {
			t.Fatalf("shard %d recovered to epoch %d, shard 0 to %d", i, e, e0)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := s.Get(core.EncodeUint64(i)); !ok || v != base+i {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, base+i)
		}
	}
}

func TestCrashDuringPrepareRollsBackEveryShard(t *testing.T) {
	const n = 2000
	for prepared := 0; prepared <= 4; prepared++ {
		s, _ := Open(testConfig(4, 1))
		populate(t, s, n, 1000) // committed at the global boundary
		for i := uint64(0); i < n; i++ {
			s.Put(core.EncodeUint64(i), 0xDEAD) // doomed epoch
		}
		s.CrashDuringAdvance(prepared, 0, false, 0.5, int64(prepared)*31+7)
		s2, info := s.Reopen()
		if info.Status != epoch.CrashRecovered {
			t.Fatalf("prepared=%d: status %v", prepared, info.Status)
		}
		// The global record never moved: every shard must roll back the
		// doomed epoch, even the ones whose flush completed.
		verifyAll(t, s2, n, 1000)
		if g := s2.GlobalEpoch(); g != 1 {
			t.Fatalf("prepared=%d: global epoch %d, want 1 (the populate commit)", prepared, g)
		}
	}
}

func TestCrashAfterGlobalCommitKeepsEpochOnEveryShard(t *testing.T) {
	const n = 2000
	for localCommits := 0; localCommits <= 4; localCommits++ {
		s, _ := Open(testConfig(4, 1))
		populate(t, s, n, 1000)
		for i := uint64(0); i < n; i++ {
			s.Put(core.EncodeUint64(i), 5000+i) // epoch being committed
		}
		// All shards prepared, global record landed, only a prefix of the
		// local commits did.
		s.CrashDuringAdvance(4, localCommits, true, 0.5, int64(localCommits)*17+3)
		s2, info := s.Reopen()
		if info.Status != epoch.CrashRecovered {
			t.Fatalf("localCommits=%d: status %v", localCommits, info.Status)
		}
		// The global record committed the epoch: every shard must keep it,
		// even the ones whose local header update was lost.
		verifyAll(t, s2, n, 5000)
		if g := s2.GlobalEpoch(); g != 2 {
			t.Fatalf("localCommits=%d: global epoch %d, want 2 (populate + the interrupted commit)", localCommits, g)
		}
	}
}

func TestCrashDuringAdvanceProtocolViolationsPanic(t *testing.T) {
	s, _ := Open(testConfig(2, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("global commit before all prepared must panic")
			}
		}()
		s.CrashDuringAdvance(1, 0, true, 1, 1)
	}()
	s2, _ := Open(testConfig(2, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("local commit before global record must panic")
		}
	}()
	s2.CrashDuringAdvance(2, 1, false, 1, 1)
}
