package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
)

func testConfig(shards, workers int) Config {
	return Config{Shards: shards, Workers: workers, ArenaWords: 1 << 21}
}

func TestRouteDeterministicAndInRange(t *testing.T) {
	for shards := 1; shards <= 8; shards++ {
		for i := uint64(0); i < 1000; i++ {
			k := core.EncodeUint64(i)
			r := Route(k, shards)
			if r < 0 || r >= shards {
				t.Fatalf("Route(%d, %d) = %d out of range", i, shards, r)
			}
			if r2 := Route(k, shards); r2 != r {
				t.Fatalf("Route(%d, %d) not deterministic: %d then %d", i, shards, r, r2)
			}
		}
	}
}

func TestRouteSpreadsSequentialKeys(t *testing.T) {
	const shards, keys = 4, 10_000
	var counts [shards]int
	for i := uint64(0); i < keys; i++ {
		counts[Route(core.EncodeUint64(i), shards)]++
	}
	for i, c := range counts {
		if c < keys/shards/2 || c > keys/shards*2 {
			t.Fatalf("shard %d owns %d of %d sequential keys; router is not spreading", i, c, keys)
		}
	}
}

func TestBasicOpsAcrossShards(t *testing.T) {
	s, info := Open(testConfig(4, 1))
	if info.Status != epoch.FreshStart {
		t.Fatalf("status = %v", info.Status)
	}
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if !s.Put(core.EncodeUint64(i), i*3) {
			t.Fatalf("key %d not newly inserted", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := s.Get(core.EncodeUint64(i)); !ok || v != i*3 {
			t.Fatalf("key %d = %d,%v want %d", i, v, ok, i*3)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Every shard should own a piece of the keyspace.
	for i := 0; i < s.NumShards(); i++ {
		if s.ShardStore(i).Len() == 0 {
			t.Fatalf("shard %d is empty after %d inserts", i, n)
		}
	}
	if !s.Delete(core.EncodeUint64(7)) {
		t.Fatal("delete missed key 7")
	}
	if _, ok := s.Get(core.EncodeUint64(7)); ok {
		t.Fatal("key 7 still present after delete")
	}
	if got := s.Len(); got != n-1 {
		t.Fatalf("Len = %d after delete, want %d", got, n-1)
	}
}

func TestMergedScanPreservesGlobalOrder(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	const n = 5000
	for i := uint64(0); i < n; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	var next uint64
	got := s.Scan(nil, -1, func(k []byte, v uint64) bool {
		if v != next {
			t.Fatalf("scan position %d delivered value %d", next, v)
		}
		next++
		return true
	})
	if got != n || next != n {
		t.Fatalf("scan visited %d (callback %d), want %d", got, next, n)
	}
	// Bounded scan from an interior start key.
	start := core.EncodeUint64(1234)
	var seen []uint64
	s.Scan(start, 10, func(k []byte, v uint64) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 10 || seen[0] != 1234 || seen[9] != 1243 {
		t.Fatalf("bounded scan from 1234 = %v", seen)
	}
	// Early stop is honored.
	calls := 0
	if got := s.Scan(nil, -1, func(k []byte, v uint64) bool {
		calls++
		return calls < 3
	}); got != 3 || calls != 3 {
		t.Fatalf("early-stop scan visited %d (calls %d)", got, calls)
	}
}

func TestConcurrentWorkersOnDistinctHandles(t *testing.T) {
	const workers, per = 4, 2000
	s, _ := Open(testConfig(4, workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle(w)
			lo := uint64(w) * per
			for i := lo; i < lo+per; i++ {
				h.Put(core.EncodeUint64(i), i)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
	if got := s.RebuildLen(); got != workers*per {
		t.Fatalf("RebuildLen = %d, want %d", got, workers*per)
	}
}

func TestReopenWithDifferentShardCountPanics(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	s.Put(core.EncodeUint64(1), 1)
	s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("reopening with a different shard count must panic")
		}
	}()
	s.coord.ResetReservations()
	bad := s.cfg
	bad.Shards = 2
	attach(s.coord, s.arenas[:2], bad)
}

func TestStatsAggregate(t *testing.T) {
	s, _ := Open(testConfig(2, 1))
	for i := uint64(0); i < 100; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	for i := uint64(0); i < 50; i++ {
		s.Get(core.EncodeUint64(i))
	}
	st := s.Stats()
	if st.Puts.Load() != 100 || st.Gets.Load() != 50 {
		t.Fatalf("aggregate puts=%d gets=%d", st.Puts.Load(), st.Gets.Load())
	}
	s.Advance()
	if nv := s.NVMStats(); nv.GlobalFlushes < int64(s.NumShards()) {
		t.Fatalf("aggregate NVM stats missing per-shard flushes: %v", nv)
	}
}

func TestSingleShardDegeneratesToOneStore(t *testing.T) {
	s, _ := Open(testConfig(1, 1))
	for i := uint64(0); i < 500; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	s.Advance()
	s.SimulateCrash(0.5, 11)
	s2, info := s.Reopen()
	if info.Status != epoch.CrashRecovered {
		t.Fatalf("status = %v", info.Status)
	}
	for i := uint64(0); i < 500; i++ {
		if v, ok := s2.Get(core.EncodeUint64(i)); !ok || v != i {
			t.Fatalf("key %d = %d,%v", i, v, ok)
		}
	}
}

func ExampleRoute() {
	fmt.Println(Route([]byte("user:1001"), 1))
	// Output: 0
}

func TestCoordinatorTickerStartStopIdempotent(t *testing.T) {
	s, _ := Open(testConfig(2, 1))
	s.StartTicker(2 * time.Millisecond)
	s.StartTicker(1 * time.Millisecond) // no-op: the coordinator keeps its cadence
	time.Sleep(20 * time.Millisecond)
	s.StopTicker()
	s.StopTicker() // idempotent
	g := s.GlobalEpoch()
	if g == 0 {
		t.Fatal("coordinated ticker never committed a global epoch")
	}
	time.Sleep(10 * time.Millisecond)
	if s.GlobalEpoch() != g {
		t.Fatal("coordinated ticker kept running after Stop")
	}
	s.Shutdown()
}
