package shard

import (
	"fmt"
	"time"

	"incll/internal/nvm"
)

// Manifest is the DB-level durable topology record: one cache line in its
// own tiny arena naming the live topology (version, shard count). It is
// the reshard protocol's commit point — the analogue, one level up, of
// the shard coordinator's epoch record:
//
//	word 0: magic
//	word 1: topology version
//	word 2: shard count
//
// All three words share one line, so the cutover commit (one Store of
// each, writeback, fence) is atomic under PCSO: a crash observes either
// the old topology or the new one, never a mix. A reshard makes the
// target shard set durable first (its own coordinated checkpoint) and
// only then commits the manifest; recovery reads the manifest to decide
// which arena set — donor or target — is the live store. Every write is
// fenced before Commit returns, so the line is always clean and survives
// any crash policy.
type Manifest struct {
	arena *nvm.Arena
	off   uint64
}

const (
	mMagic   = 0
	mVersion = 1
	mShards  = 2

	manifestMagic = 0x7090100c11a7 // topology manifest v1
)

// NewManifest creates a fresh durable manifest recording the initial
// topology. fenceDelay matches the store arenas' emulated NVM latency, so
// the cutover's one extra fenced write is not free in latency experiments.
func NewManifest(fenceDelay time.Duration, version uint64, shards int) *Manifest {
	// Two lines: the arena holds back its first line for its own header.
	m := &Manifest{arena: nvm.New(nvm.Config{Words: 2 * nvm.WordsPerLine, FenceDelay: fenceDelay})}
	m.off = m.arena.Reserve(nvm.WordsPerLine)
	m.arena.Store(m.off+mMagic, manifestMagic)
	m.commit(version, shards)
	return m
}

// Commit durably records a new live topology: the reshard cutover's
// single commit point. The caller must already have made the target shard
// set durable (target checkpoint committed); after the fence here, a
// crash recovers into the new topology.
func (m *Manifest) Commit(version uint64, shards int) {
	if v := m.arena.Load(m.off + mVersion); version <= v {
		panic(fmt.Sprintf("shard: manifest commit would move the topology version backwards (%d -> %d)", v, version))
	}
	m.commit(version, shards)
}

func (m *Manifest) commit(version uint64, shards int) {
	m.arena.Store(m.off+mVersion, version)
	m.arena.Store(m.off+mShards, uint64(shards))
	m.arena.Writeback(m.off)
	m.arena.Fence()
}

// Version returns the durably recorded live topology version.
func (m *Manifest) Version() uint64 { return m.arena.Load(m.off + mVersion) }

// NumShards returns the durably recorded live shard count.
func (m *Manifest) NumShards() int { return int(m.arena.Load(m.off + mShards)) }

// Topology returns the durably recorded live topology.
func (m *Manifest) Topology() Topology {
	return Topology{Version: m.Version(), Shards: m.NumShards()}
}

// Crash injects the power failure into the manifest arena alongside the
// store arenas. The record line is clean (every commit fences), so it
// survives any policy — the point of the exercise is asserting exactly
// that.
func (m *Manifest) Crash(persistFraction float64, seed int64) {
	m.arena.Crash(nvm.RandomPolicy(persistFraction, seed^0x10b0))
}

// Recover revalidates the manifest after a crash and returns the durable
// topology it records.
func (m *Manifest) Recover() Topology {
	m.arena.ResetReservations()
	m.off = m.arena.Reserve(nvm.WordsPerLine)
	if m.arena.Load(m.off+mMagic) != manifestMagic {
		panic("shard: topology manifest lost after crash (the record line is fenced at every commit and must survive)")
	}
	return m.Topology()
}
