package shard

import (
	"bytes"

	"incll/internal/core"
)

// Iter is the sharded cursor: a k-way merge of one core cursor per shard.
// The router places every key on exactly one shard, so the per-shard
// streams are disjoint and popping the smallest (largest, descending)
// head yields exactly the key order an unsharded cursor would — in either
// direction. Shard counts are small, so the merge is a linear min/max
// over the heads rather than a heap.
type Iter struct {
	its   []core.Cursor
	cur   int  // shard the current entry comes from
	fwd   bool // direction the heads are settled in
	state int
	seek  []byte // scratch for direction switches
}

// Merge cursor position states (mirrors the core cursor's).
const (
	sFresh = iota
	sAt
	sBefore
	sAfter
)

// NewIter opens a cursor over the whole cluster on worker i's per-shard
// handles. Not safe for concurrent use, like the handle itself.
func (h Handle) NewIter(o core.IterOptions) core.Cursor {
	its := make([]core.Cursor, len(h.s.shards))
	for i, sh := range h.s.shards {
		its[i] = sh.Handle(h.i).NewIter(o)
	}
	return &Iter{its: its, cur: -1, state: sFresh}
}

// NewIter opens a cluster cursor on worker 0's handles.
func (s *Store) NewIter(o core.IterOptions) core.Cursor { return s.Handle(0).NewIter(o) }

// settleMin picks the smallest valid head as the current entry.
func (m *Iter) settleMin() bool {
	m.fwd = true
	m.cur = -1
	for i, it := range m.its {
		if !it.Valid() {
			continue
		}
		if m.cur < 0 || bytes.Compare(it.Key(), m.its[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
	if m.cur < 0 {
		m.state = sAfter
		return false
	}
	m.state = sAt
	return true
}

// settleMax picks the largest valid head as the current entry.
func (m *Iter) settleMax() bool {
	m.fwd = false
	m.cur = -1
	for i, it := range m.its {
		if !it.Valid() {
			continue
		}
		if m.cur < 0 || bytes.Compare(it.Key(), m.its[m.cur].Key()) > 0 {
			m.cur = i
		}
	}
	if m.cur < 0 {
		m.state = sBefore
		return false
	}
	m.state = sAt
	return true
}

// First positions the cursor at the smallest in-bounds key cluster-wide.
func (m *Iter) First() bool {
	for _, it := range m.its {
		it.First()
	}
	return m.settleMin()
}

// Last positions the cursor at the largest in-bounds key cluster-wide.
func (m *Iter) Last() bool {
	for _, it := range m.its {
		it.Last()
	}
	return m.settleMax()
}

// SeekGE positions the cursor at the smallest key ≥ k cluster-wide.
func (m *Iter) SeekGE(k []byte) bool {
	for _, it := range m.its {
		it.SeekGE(k)
	}
	return m.settleMin()
}

// SeekLT positions the cursor at the largest key < k cluster-wide.
func (m *Iter) SeekLT(k []byte) bool {
	for _, it := range m.its {
		it.SeekLT(k)
	}
	return m.settleMax()
}

// Next advances to the next larger key.
func (m *Iter) Next() bool {
	switch m.state {
	case sFresh, sBefore:
		return m.First()
	case sAfter:
		return false
	}
	if !m.fwd {
		// Direction switch: re-seek every shard past the current key (the
		// other heads sit below it from the descending pass).
		m.seek = append(append(m.seek[:0], m.its[m.cur].Key()...), 0)
		return m.SeekGE(m.seek)
	}
	// The other shards already sit at their smallest key above the current
	// position; advancing the consumed head restores the merge invariant.
	m.its[m.cur].Next()
	return m.settleMin()
}

// Prev advances to the next smaller key.
func (m *Iter) Prev() bool {
	switch m.state {
	case sFresh, sAfter:
		return m.Last()
	case sBefore:
		return false
	}
	if m.fwd {
		m.seek = append(m.seek[:0], m.its[m.cur].Key()...)
		return m.SeekLT(m.seek)
	}
	m.its[m.cur].Prev()
	return m.settleMax()
}

// Valid reports whether the cursor is positioned at an entry.
func (m *Iter) Valid() bool { return m.state == sAt }

// Key returns the current key; valid until the next positioning call.
func (m *Iter) Key() []byte {
	if m.state != sAt {
		return nil
	}
	return m.its[m.cur].Key()
}

// Value returns the current value; valid until the next positioning call.
func (m *Iter) Value() []byte {
	if m.state != sAt {
		return nil
	}
	return m.its[m.cur].Value()
}

// ValueUint64 is the uint64 view of the current value, delegated so the
// underlying cursor's inline-word fast path applies.
func (m *Iter) ValueUint64() uint64 {
	if m.state != sAt {
		return 0
	}
	return m.its[m.cur].ValueUint64()
}

// Close releases every per-shard cursor.
func (m *Iter) Close() {
	for _, it := range m.its {
		it.Close()
	}
	m.state = sAfter
	m.cur = -1
}
