package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/core"
	"incll/internal/obs"
)

// Advance runs one coordinated global checkpoint — the paper's 64 ms epoch
// boundary generalized to N stores — and returns the total number of cache
// lines flushed. Two phases:
//
//  1. Prepare: every shard stops its world, durably marks its boundary,
//     and flushes its whole arena. After this phase the entire effect of
//     the epoch (including all undo information) is persistent on every
//     shard, but the epoch is still uncommitted everywhere: a crash now
//     rolls it back on every shard, to the previous global boundary.
//
//  2. Commit: one fenced write of the coordinator record (a single cache
//     line, so atomic under PCSO) commits the epoch globally; then every
//     shard commits locally and resumes. A crash between the record write
//     and a shard's local commit is repaired at reopen by the commit
//     oracle (epoch.OpenCoordinated): the flush already completed, so the
//     shard's epoch stands.
//
// Either way, recovery lands every shard on the same boundary; there is no
// crash point at which shard A exposes epoch k and shard B epoch k−1.
func (s *Store) Advance() int {
	s.advMu.Lock()
	defer s.advMu.Unlock()

	// Phase 1: prepare every shard (parallel — flushing dominates).
	var flushed atomic.Int64
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *core.Store) {
			defer wg.Done()
			flushed.Add(int64(sh.Epochs().Prepare()))
		}(sh)
	}
	wg.Wait()

	// Global commit point: one line, written back and fenced.
	s.commitRecord(s.shards[0].Epochs().Current())

	// Phase 2: locally commit every shard and resume its world.
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *core.Store) {
			defer wg.Done()
			sh.Epochs().Commit()
		}(sh)
	}
	wg.Wait()
	return int(flushed.Load())
}

// commitRecord durably records e as the last globally committed epoch.
func (s *Store) commitRecord(e uint64) {
	start := time.Now()
	s.coord.Store(s.coordOff+cEpoch, e)
	s.coord.Writeback(s.coordOff)
	s.coord.Fence()
	// The coordinator is not a shard; tag its events −1.
	s.trace.Record(obs.EvCoordRecord, -1, e, time.Since(start), 0)
}

// Shutdown commits a final global checkpoint and durably marks every shard
// cleanly shut down. The store must not be used afterwards.
func (s *Store) Shutdown() {
	s.StopTicker()
	s.Advance()
	for _, sh := range s.shards {
		sh.Shutdown()
	}
}

// StartTicker advances global epochs every interval from a background
// goroutine, like the paper's 64 ms timer but cluster-wide. The per-shard
// tickers must stay off; the coordinator owns the cadence.
func (s *Store) StartTicker(interval time.Duration) {
	s.ticker.Start(interval, func() { s.Advance() })
}

// StopTicker stops the background ticker, if running.
func (s *Store) StopTicker() { s.ticker.Stop() }
