package shard

// Property tests for the bidirectional merge cursor: a sharded cursor
// must be observationally identical to an unsharded one — same keys, same
// values, same order — in both directions, with bounds, and from
// arbitrary seek pivots.

import (
	"math/rand"
	"sort"
	"testing"

	"incll/internal/core"
)

// iterFixture loads the same mixed-shape population (short, 8-byte, and
// layered keys; inline and heap values) into an unsharded and a sharded
// store.
func iterFixture(t *testing.T, shards int, n int, seed int64) (uni, multi *Store, sorted []string, model map[string]string) {
	t.Helper()
	uni, _ = Open(testConfig(1, 1))
	multi, _ = Open(testConfig(shards, 1))
	rng := rand.New(rand.NewSource(seed))
	model = map[string]string{}
	for i := 0; i < n; i++ {
		var k []byte
		switch rng.Intn(3) {
		case 0:
			k = core.EncodeUint64(uint64(rng.Intn(2000)))
		case 1:
			k = make([]byte, 1+rng.Intn(6))
			rng.Read(k)
		default:
			k = append(core.EncodeUint64(uint64(rng.Intn(4))), make([]byte, 1+rng.Intn(16))...)
			rng.Read(k[8:])
		}
		if rng.Intn(8) == 0 {
			uni.Delete(k)
			multi.Delete(k)
			delete(model, string(k))
			continue
		}
		v := make([]byte, rng.Intn(48))
		rng.Read(v)
		uni.PutBytes(k, v)
		multi.PutBytes(k, v)
		model[string(k)] = string(v)
	}
	sorted = make([]string, 0, len(model))
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	return
}

func drain(it core.Cursor, fwd bool) (keys, vals []string) {
	ok := it.First()
	if !fwd {
		ok = it.Last()
	}
	for ; ok; ok = step(it, fwd) {
		keys = append(keys, string(it.Key()))
		vals = append(vals, string(it.Value()))
	}
	return
}

func step(it core.Cursor, fwd bool) bool {
	if fwd {
		return it.Next()
	}
	return it.Prev()
}

// TestShardedIterMatchesUnsharded drains both stores in both directions
// and demands byte-identical streams that match the model.
func TestShardedIterMatchesUnsharded(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		uni, multi, sorted, model := iterFixture(t, shards, 4000, int64(shards))
		for _, fwd := range []bool{true, false} {
			uit := uni.NewIter(core.IterOptions{})
			mit := multi.NewIter(core.IterOptions{})
			uk, uv := drain(uit, fwd)
			mk, mv := drain(mit, fwd)
			uit.Close()
			mit.Close()
			if len(uk) != len(sorted) || len(mk) != len(sorted) {
				t.Fatalf("shards=%d fwd=%v: unsharded %d, sharded %d, model %d",
					shards, fwd, len(uk), len(mk), len(sorted))
			}
			for i := range uk {
				if uk[i] != mk[i] || uv[i] != mv[i] {
					t.Fatalf("shards=%d fwd=%v: entry %d differs (%x vs %x)", shards, fwd, i, uk[i], mk[i])
				}
				j := i
				if !fwd {
					j = len(sorted) - 1 - i
				}
				if uk[i] != sorted[j] || uv[i] != model[sorted[j]] {
					t.Fatalf("shards=%d fwd=%v: entry %d = %x, model %x", shards, fwd, i, uk[i], sorted[j])
				}
			}
		}
	}
}

// TestShardedIterSeeksAndBounds compares seeks and bounded cursors
// between the sharded and unsharded stores from random pivots.
func TestShardedIterSeeksAndBounds(t *testing.T) {
	uni, multi, sorted, _ := iterFixture(t, 4, 2500, 42)
	rng := rand.New(rand.NewSource(5))
	pivot := func() []byte {
		if rng.Intn(3) == 0 && len(sorted) > 0 {
			return []byte(sorted[rng.Intn(len(sorted))])
		}
		k := make([]byte, 1+rng.Intn(10))
		rng.Read(k)
		return k
	}
	uit := uni.NewIter(core.IterOptions{})
	mit := multi.NewIter(core.IterOptions{})
	for trial := 0; trial < 150; trial++ {
		p := pivot()
		if ok, mok := uit.SeekGE(p), mit.SeekGE(p); ok != mok ||
			(ok && string(uit.Key()) != string(mit.Key())) {
			t.Fatalf("SeekGE(%x): unsharded (%v, %x) vs sharded (%v, %x)", p, ok, uit.Key(), mok, mit.Key())
		}
		// Walk a few steps in a random direction from the pivot.
		for s := 0; s < 10; s++ {
			fwd := rng.Intn(2) == 0
			ok, mok := step(uit, fwd), step(mit, fwd)
			if ok != mok || (ok && string(uit.Key()) != string(mit.Key())) {
				t.Fatalf("trial %d step %d (fwd=%v): diverged", trial, s, fwd)
			}
		}
		if ok, mok := uit.SeekLT(p), mit.SeekLT(p); ok != mok ||
			(ok && string(uit.Key()) != string(mit.Key())) {
			t.Fatalf("SeekLT(%x): diverged", p)
		}
	}
	uit.Close()
	mit.Close()
	for trial := 0; trial < 30; trial++ {
		lo, hi := pivot(), pivot()
		if string(lo) > string(hi) {
			lo, hi = hi, lo
		}
		o := core.IterOptions{LowerBound: lo, UpperBound: hi}
		for _, fwd := range []bool{true, false} {
			u := uni.NewIter(o)
			m := multi.NewIter(o)
			uk, _ := drain(u, fwd)
			mk, _ := drain(m, fwd)
			u.Close()
			m.Close()
			if len(uk) != len(mk) {
				t.Fatalf("bounds [%x, %x) fwd=%v: %d vs %d entries", lo, hi, fwd, len(uk), len(mk))
			}
			for i := range uk {
				if uk[i] != mk[i] {
					t.Fatalf("bounds [%x, %x) fwd=%v: entry %d differs", lo, hi, fwd, i)
				}
			}
		}
	}
}

// TestShardedIterCheckpointInterleaved drives coordinated global
// checkpoints between merge-cursor steps from the same goroutine — the
// sharded form of the guard-batching regression test.
func TestShardedIterCheckpointInterleaved(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	const n = 5000
	for i := uint64(0); i < n; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	s.Advance()
	it := s.NewIter(core.IterOptions{})
	defer it.Close()
	count := uint64(0)
	for ok := it.First(); ok; ok = it.Next() {
		if it.ValueUint64() != count {
			t.Fatalf("entry %d holds %d", count, it.ValueUint64())
		}
		count++
		if count%100 == 0 {
			s.Advance() // would self-deadlock if any shard cursor pinned its guard
		}
	}
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
}
