package shard

// Edge cases of the k-way merged Scan: shards with no keys in range,
// visitors that stop mid-merge, and interleaved variable-length keys whose
// shared prefixes make per-shard streams collide tightly in key order.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"incll/internal/core"
)

// TestScanWithEmptyShards routes every key to one shard and checks the
// merge across the three empty cursors.
func TestScanWithEmptyShards(t *testing.T) {
	const shards = 4
	s, _ := Open(testConfig(shards, 1))
	var want []uint64
	for i, n := uint64(0), 0; n < 50; i++ {
		if Route(core.EncodeUint64(i), shards) == 2 {
			s.Put(core.EncodeUint64(i), i)
			want = append(want, i)
			n++
		}
	}
	for i := 0; i < shards; i++ {
		if i != 2 && s.ShardStore(i).Len() != 0 {
			t.Fatalf("shard %d unexpectedly owns keys", i)
		}
	}
	var got []uint64
	s.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %d, want %d", i, got[i], want[i])
		}
	}
	// A start key past everything sees nothing.
	if n := s.Scan(core.EncodeUint64(1<<40), -1, func([]byte, uint64) bool { return true }); n != 0 {
		t.Fatalf("scan past the end visited %d", n)
	}
}

// TestScanEarlyTermination stops the visitor mid-merge and checks both the
// returned count and that no extra callbacks happen, under both the fn
// veto and the max limit.
func TestScanEarlyTermination(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	const n = 1000
	for i := uint64(0); i < n; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	calls := 0
	visited := s.Scan(nil, -1, func(k []byte, v uint64) bool {
		calls++
		return calls < 137 // veto on the 137th key
	})
	if calls != 137 || visited != 137 {
		t.Fatalf("veto: %d callbacks, Scan returned %d; want 137", calls, visited)
	}

	calls = 0
	visited = s.Scan(core.EncodeUint64(500), 41, func(k []byte, v uint64) bool {
		if v < 500 {
			t.Fatalf("key %d before the start key", v)
		}
		calls++
		return true
	})
	if calls != 41 || visited != 41 {
		t.Fatalf("max: %d callbacks, Scan returned %d; want 41", calls, visited)
	}

	// max = 0 visits nothing.
	if v := s.Scan(nil, 0, func([]byte, uint64) bool { t.Fatal("callback on max=0"); return true }); v != 0 {
		t.Fatalf("max=0 returned %d", v)
	}
}

// TestScanInterleavedVariableLengthKeys spreads tightly colliding keys —
// shared prefixes, different lengths, multi-layer (>8 byte) forms — across
// shards and checks the merge restores exact bytewise order.
func TestScanInterleavedVariableLengthKeys(t *testing.T) {
	const shards = 4
	s, _ := Open(testConfig(shards, 1))
	var keys [][]byte
	for i := 0; i < 40; i++ {
		base := fmt.Sprintf("user%04d", i)
		keys = append(keys,
			[]byte(base),                 // exactly 8 bytes: one layer
			[]byte(base+"/inbox"),        // layer key sharing the prefix
			[]byte(base+"/inbox/unread"), // third layer
			[]byte(base[:4]),             // short prefix key
			[]byte(base+"\x00"),          // successor-by-zero-byte
		)
	}
	shardsHit := map[int]bool{}
	for i, k := range keys {
		s.Put(k, uint64(i))
		shardsHit[Route(k, shards)] = true
	}
	if len(shardsHit) < 2 {
		t.Fatal("keys did not spread across shards; test is vacuous")
	}

	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	// Deduplicate (construction yields unique keys, but keep the reference honest).
	uniq := sorted[:0]
	for _, k := range sorted {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], k) {
			uniq = append(uniq, k)
		}
	}

	var got [][]byte
	s.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(uniq))
	}
	for i := range uniq {
		if !bytes.Equal(got[i], uniq[i]) {
			t.Fatalf("position %d = %q, want %q", i, got[i], uniq[i])
		}
	}

	// Resuming from an interior multi-layer key lands exactly there.
	start := []byte("user0020/inbox")
	var first []byte
	s.Scan(start, 1, func(k []byte, v uint64) bool {
		first = append([]byte(nil), k...)
		return true
	})
	if !bytes.Equal(first, start) {
		t.Fatalf("scan from %q started at %q", start, first)
	}
}

// TestScanConcurrentWithWritersAndTicks races merged scans against
// writers and the coordinated checkpoint ticker (run under -race in CI):
// the per-shard cursors refill while epochs advance and leaves split.
// Every scan must stay strictly ordered and every observed value must
// carry its key's signature.
func TestScanConcurrentWithWritersAndTicks(t *testing.T) {
	s, _ := Open(testConfig(4, 3))
	const keyspace = 1500
	for i := uint64(0); i < keyspace; i++ {
		s.Put(core.EncodeUint64(i), i&0xFFFF)
	}
	s.StartTicker(time.Millisecond)
	defer s.Shutdown()

	iters := 30
	if testing.Short() {
		iters = 8
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle(w)
			rng := rand.New(rand.NewSource(int64(w)*131 + 7))
			lo := uint64(w) * (keyspace / 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := lo + uint64(rng.Intn(keyspace/2))
				if rng.Intn(12) == 0 {
					h.Delete(core.EncodeUint64(k))
				} else {
					h.Put(core.EncodeUint64(k), uint64(i)<<16|k&0xFFFF)
				}
			}
		}(w)
	}

	scanner := s.Handle(2)
	for i := 0; i < iters; i++ {
		var prev []byte
		n := 0
		scanner.Scan(nil, -1, func(k []byte, v uint64) bool {
			if n > 0 && bytes.Compare(k, prev) <= 0 {
				t.Errorf("merged scan order violated at key %x", k)
				return false
			}
			prev = append(prev[:0], k...)
			n++
			ik := decodeKey(k)
			if v&0xFFFF != ik&0xFFFF {
				t.Errorf("key %d scanned with foreign value %#x", ik, v)
				return false
			}
			return true
		})
		// Bounded byte scans starting mid-keyspace exercise refills that
		// straddle boundary ticks.
		scanner.ScanBytes(core.EncodeUint64(uint64(i*37%keyspace)), 100, func(k, v []byte) bool { return true })
	}
	close(stop)
	wg.Wait()
}
