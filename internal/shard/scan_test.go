package shard

// Edge cases of the k-way merged Scan: shards with no keys in range,
// visitors that stop mid-merge, and interleaved variable-length keys whose
// shared prefixes make per-shard streams collide tightly in key order.

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"incll/internal/core"
)

// TestScanWithEmptyShards routes every key to one shard and checks the
// merge across the three empty cursors.
func TestScanWithEmptyShards(t *testing.T) {
	const shards = 4
	s, _ := Open(testConfig(shards, 1))
	var want []uint64
	for i, n := uint64(0), 0; n < 50; i++ {
		if Route(core.EncodeUint64(i), shards) == 2 {
			s.Put(core.EncodeUint64(i), i)
			want = append(want, i)
			n++
		}
	}
	for i := 0; i < shards; i++ {
		if i != 2 && s.ShardStore(i).Len() != 0 {
			t.Fatalf("shard %d unexpectedly owns keys", i)
		}
	}
	var got []uint64
	s.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %d, want %d", i, got[i], want[i])
		}
	}
	// A start key past everything sees nothing.
	if n := s.Scan(core.EncodeUint64(1<<40), -1, func([]byte, uint64) bool { return true }); n != 0 {
		t.Fatalf("scan past the end visited %d", n)
	}
}

// TestScanEarlyTermination stops the visitor mid-merge and checks both the
// returned count and that no extra callbacks happen, under both the fn
// veto and the max limit.
func TestScanEarlyTermination(t *testing.T) {
	s, _ := Open(testConfig(4, 1))
	const n = 1000
	for i := uint64(0); i < n; i++ {
		s.Put(core.EncodeUint64(i), i)
	}
	calls := 0
	visited := s.Scan(nil, -1, func(k []byte, v uint64) bool {
		calls++
		return calls < 137 // veto on the 137th key
	})
	if calls != 137 || visited != 137 {
		t.Fatalf("veto: %d callbacks, Scan returned %d; want 137", calls, visited)
	}

	calls = 0
	visited = s.Scan(core.EncodeUint64(500), 41, func(k []byte, v uint64) bool {
		if v < 500 {
			t.Fatalf("key %d before the start key", v)
		}
		calls++
		return true
	})
	if calls != 41 || visited != 41 {
		t.Fatalf("max: %d callbacks, Scan returned %d; want 41", calls, visited)
	}

	// max = 0 visits nothing.
	if v := s.Scan(nil, 0, func([]byte, uint64) bool { t.Fatal("callback on max=0"); return true }); v != 0 {
		t.Fatalf("max=0 returned %d", v)
	}
}

// TestScanInterleavedVariableLengthKeys spreads tightly colliding keys —
// shared prefixes, different lengths, multi-layer (>8 byte) forms — across
// shards and checks the merge restores exact bytewise order.
func TestScanInterleavedVariableLengthKeys(t *testing.T) {
	const shards = 4
	s, _ := Open(testConfig(shards, 1))
	var keys [][]byte
	for i := 0; i < 40; i++ {
		base := fmt.Sprintf("user%04d", i)
		keys = append(keys,
			[]byte(base),                 // exactly 8 bytes: one layer
			[]byte(base+"/inbox"),        // layer key sharing the prefix
			[]byte(base+"/inbox/unread"), // third layer
			[]byte(base[:4]),             // short prefix key
			[]byte(base+"\x00"),          // successor-by-zero-byte
		)
	}
	shardsHit := map[int]bool{}
	for i, k := range keys {
		s.Put(k, uint64(i))
		shardsHit[Route(k, shards)] = true
	}
	if len(shardsHit) < 2 {
		t.Fatal("keys did not spread across shards; test is vacuous")
	}

	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	// Deduplicate (construction yields unique keys, but keep the reference honest).
	uniq := sorted[:0]
	for _, k := range sorted {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], k) {
			uniq = append(uniq, k)
		}
	}

	var got [][]byte
	s.Scan(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("scan visited %d keys, want %d", len(got), len(uniq))
	}
	for i := range uniq {
		if !bytes.Equal(got[i], uniq[i]) {
			t.Fatalf("position %d = %q, want %q", i, got[i], uniq[i])
		}
	}

	// Resuming from an interior multi-layer key lands exactly there.
	start := []byte("user0020/inbox")
	var first []byte
	s.Scan(start, 1, func(k []byte, v uint64) bool {
		first = append([]byte(nil), k...)
		return true
	})
	if !bytes.Equal(first, start) {
		t.Fatalf("scan from %q started at %q", start, first)
	}
}
