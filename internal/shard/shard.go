// Package shard partitions the keyspace across N independent durable
// stores — each a core.Store over its own simulated NVM arena — behind one
// façade, and generalizes the paper's epoch ticker to the cluster: a
// two-phase coordinated checkpoint quiesces every shard, flushes every
// arena, and then commits a single global epoch record, so a crash can
// never expose shard A at epoch k and shard B at epoch k−1.
//
// Routing is a pure function of the key bytes (see Route), so a recovering
// process re-derives the same placement; the shard count is stamped
// durably in the coordinator record and reopening with a different count
// panics, exactly like core's layout fingerprint.
//
// The commit protocol and its crash cases are spelled out in DESIGN.md
// ("Sharding and coordinated checkpoints").
package shard

import (
	"fmt"
	"sync"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/nvm"
	"incll/internal/obs"
)

// Config sizes and parameterizes a sharded store. Every per-shard knob
// (arena, heap, log) applies to each shard independently.
type Config struct {
	// Shards is the number of independent store+arena partitions (≥ 1).
	Shards int
	// Workers is the number of concurrent worker threads; worker i uses
	// Handle(i), which carries a per-shard core handle for every shard.
	Workers int
	// ArenaWords is the per-shard simulated NVM size in 8-byte words.
	ArenaWords uint64
	// HeapWords is the per-shard durable heap size (default: half the
	// shard's arena).
	HeapWords uint64
	// LogSegWords is the per-worker external-log segment size per shard.
	LogSegWords uint64
	// TxnSegWords is the per-worker transaction intent segment size per
	// shard (see internal/txn).
	TxnSegWords uint64
	// DisableInCLL switches every shard to the LOGGING ablation.
	DisableInCLL bool
	// TopoVersion stamps the store's place in its DB's reshard history
	// (see Topology). 0 defaults to 1, the initial topology.
	TopoVersion uint64
	// NVM carries the rest of the per-arena cache model (fence latency,
	// eviction); Words is overridden by ArenaWords.
	NVM nvm.Config
	// Trace receives protocol events from every shard (tagged with its
	// shard index) and from the coordinator (shard −1); StopTheWorld
	// accumulates every shard's measured stop-the-world window. Both
	// optional; see internal/obs.
	Trace        *obs.Tracer
	StopTheWorld *obs.Histogram
	// Phases is the sampled latency-attribution timer shared by every
	// shard's core store (see obs.PhaseSet). Optional.
	Phases *obs.PhaseSet
}

func (c *Config) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ArenaWords == 0 {
		c.ArenaWords = 1 << 22
	}
	if c.HeapWords == 0 {
		c.HeapWords = c.ArenaWords / 2
	}
	if c.LogSegWords == 0 {
		c.LogSegWords = 1 << 16
	}
	if c.TxnSegWords == 0 {
		c.TxnSegWords = 1 << 12
	}
	if c.TopoVersion == 0 {
		c.TopoVersion = 1
	}
}

// Coordinator record layout: one cache line in the coordinator arena. The
// epoch and magic share the line, so the commit write (cEpoch) persists
// atomically under PCSO — this single line is the cluster's commit point.
const (
	cMagic  = 0
	cEpoch  = 1 // last globally committed epoch (0 = none yet)
	cShards = 2 // durable shard-count fingerprint

	recordMagic = 0x5a4dc00d1a70 // coordinator record magic ("shard coordinator v1")
)

// ShardRecovery describes what one shard's recovery found.
type ShardRecovery struct {
	Status            epoch.Status
	LogEntriesApplied int
	// Epoch is the shard's running epoch after recovery; Open guarantees
	// it is identical across shards.
	Epoch uint64
}

// RecoveryInfo merges the per-shard recovery outcomes.
type RecoveryInfo struct {
	// Status is the worst outcome across shards (a single crashed shard
	// makes the cluster crash-recovered).
	Status epoch.Status
	// LogEntriesApplied totals the external-log pre-images replayed.
	LogEntriesApplied int
	// FailedEpochs is the largest per-shard cumulative failed-epoch count.
	FailedEpochs int
	// GlobalEpoch is the last globally committed epoch (0 on fresh start).
	GlobalEpoch uint64
	// Shards holds the per-shard detail, indexed by shard.
	Shards []ShardRecovery
}

// Store is a sharded durable store: N core.Stores over N arenas plus a
// tiny coordinator arena holding the global epoch record.
type Store struct {
	coord    *nvm.Arena
	coordOff uint64
	arenas   []*nvm.Arena
	shards   []*core.Store
	cfg      Config

	advMu sync.Mutex // serializes global advances

	ticker epoch.Ticker

	trace *obs.Tracer // coordinator-record events (may be nil)
}

// Open creates a sharded store over fresh arenas.
func Open(cfg Config) (*Store, RecoveryInfo) {
	cfg.setDefaults()
	// The coordinator pays the same fence latency as the shards: its
	// commit-record write is the one extra fenced NVM write coordination
	// adds per global checkpoint, and must not be free in the emulated-
	// latency experiments.
	coord := nvm.New(nvm.Config{Words: nvm.WordsPerLine * 2, FenceDelay: cfg.NVM.FenceDelay})
	// Allocate the per-shard arenas in parallel: a fresh arena is a large
	// zeroed allocation (~250 ms per shard at default sizes), and paying it
	// serially made cold-target Restore and the reshard builder O(shards)
	// where the work is embarrassingly parallel.
	arenas := make([]*nvm.Arena, cfg.Shards)
	var wg sync.WaitGroup
	for i := range arenas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ncfg := cfg.NVM
			ncfg.Words = cfg.ArenaWords
			ncfg.Seed = cfg.NVM.Seed + int64(i)*7919
			arenas[i] = nvm.New(ncfg)
		}(i)
	}
	wg.Wait()
	return attach(coord, arenas, cfg)
}

// attach (re)binds a Store to existing arenas: reads the coordinator
// record, recovers every shard in parallel against the global commit
// oracle, and checks the cluster invariant that all shards resume in the
// same epoch.
func attach(coord *nvm.Arena, arenas []*nvm.Arena, cfg Config) (*Store, RecoveryInfo) {
	s := &Store{
		coord:  coord,
		arenas: arenas,
		shards: make([]*core.Store, cfg.Shards),
		cfg:    cfg,
		trace:  cfg.Trace,
	}
	s.coordOff = coord.Reserve(nvm.WordsPerLine)

	var g uint64 // last globally committed epoch
	if coord.Load(s.coordOff+cMagic) == recordMagic {
		if n := coord.Load(s.coordOff + cShards); n != uint64(cfg.Shards) {
			panic(fmt.Sprintf("shard: arena set was created with %d shards, reopened with %d; "+
				"the router would misplace every key", n, cfg.Shards))
		}
		g = coord.Load(s.coordOff + cEpoch)
	} else {
		coord.Store(s.coordOff+cMagic, recordMagic)
		coord.Store(s.coordOff+cShards, uint64(cfg.Shards))
		coord.Writeback(s.coordOff)
		coord.Fence()
	}
	// The oracle is a snapshot: recovery decisions depend only on the
	// record as the crash left it.
	committed := func(e uint64) bool { return e != 0 && e <= g }

	info := RecoveryInfo{GlobalEpoch: g, Shards: make([]ShardRecovery, cfg.Shards)}
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, status := core.Open(arenas[i], core.Config{
				Workers:      cfg.Workers,
				LogSegWords:  cfg.LogSegWords,
				TxnSegWords:  cfg.TxnSegWords,
				HeapWords:    cfg.HeapWords,
				DisableInCLL: cfg.DisableInCLL,
				Committed:    committed,
				Trace:        cfg.Trace,
				StopTheWorld: cfg.StopTheWorld,
				Phases:       cfg.Phases,
				Shard:        i,
			})
			s.shards[i] = st
			info.Shards[i] = ShardRecovery{
				Status:            status,
				LogEntriesApplied: st.RecoveredLogEntries(),
				Epoch:             st.Epochs().Current(),
			}
		}(i)
	}
	wg.Wait()

	for i, sr := range info.Shards {
		if sr.Status > info.Status {
			info.Status = sr.Status
		}
		info.LogEntriesApplied += sr.LogEntriesApplied
		if n := s.shards[i].Epochs().FailedCount(); n > info.FailedEpochs {
			info.FailedEpochs = n
		}
		if sr.Epoch != info.Shards[0].Epoch {
			panic(fmt.Sprintf("shard: recovery broke the cluster epoch invariant: "+
				"shard 0 resumed at epoch %d, shard %d at %d", info.Shards[0].Epoch, i, sr.Epoch))
		}
	}
	return s, info
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Topology returns the store's epoch-versioned routing table.
func (s *Store) Topology() Topology {
	return Topology{Version: s.cfg.TopoVersion, Shards: len(s.shards)}
}

// Seal freezes the store after a reshard cutover donated its contents to
// a new shard set: every shard's epoch manager is sealed, so a stray
// advance on the retired store panics instead of silently forking the
// durable history. Reads (and cursors opened before the cutover) keep
// working against the frozen final state.
func (s *Store) Seal() {
	s.StopTicker()
	for _, sh := range s.shards {
		sh.Epochs().Seal()
	}
}

// ShardStore returns shard i's underlying store (stats, introspection).
func (s *Store) ShardStore(i int) *core.Store { return s.shards[i] }

// Stores returns the per-shard stores, indexed by shard. The replication
// hub attaches its change sinks and commit hooks through this: a shard's
// local epoch commit runs only after the coordinator record is durable, so
// per-shard commit hooks observe globally committed epochs, and the hub's
// min-across-shards released barrier is anchored at the two-phase
// coordinated-commit point. Callers must not mutate the slice.
func (s *Store) Stores() []*core.Store { return s.shards }

// Epoch returns the running epoch, identical on every shard.
func (s *Store) Epoch() uint64 { return s.shards[0].Epochs().Current() }

// GlobalEpoch returns the last globally committed epoch.
func (s *Store) GlobalEpoch() uint64 { return s.coord.Load(s.coordOff + cEpoch) }

// route returns the shard owning key k.
func (s *Store) route(k []byte) *core.Store { return s.shards[Route(k, len(s.shards))] }

// Handle is worker i's view of the cluster: every operation routes to the
// owning shard and runs on that shard's worker-i core handle. Not safe for
// concurrent use; distinct handles are.
type Handle struct {
	s *Store
	i int
}

// Handle returns worker i's handle (i < Config.Workers).
func (s *Store) Handle(i int) Handle { return Handle{s: s, i: i} }

// Get returns the value stored under k.
func (h Handle) Get(k []byte) (uint64, bool) { return h.s.route(k).Handle(h.i).Get(k) }

// GetBytes returns a copy of the byte value stored under k.
func (h Handle) GetBytes(k []byte) ([]byte, bool) { return h.s.route(k).Handle(h.i).GetBytes(k) }

// AppendGet appends k's value bytes to dst (the allocation-free GetBytes).
func (h Handle) AppendGet(dst []byte, k []byte) ([]byte, bool) {
	return h.s.route(k).Handle(h.i).AppendGet(dst, k)
}

// Put stores v under k; reports whether k was newly inserted.
func (h Handle) Put(k []byte, v uint64) bool { return h.s.route(k).Handle(h.i).Put(k, v) }

// PutBytes stores the byte value v under k; reports whether k was newly
// inserted.
func (h Handle) PutBytes(k []byte, v []byte) bool { return h.s.route(k).Handle(h.i).PutBytes(k, v) }

// Delete removes k; reports whether it was present.
func (h Handle) Delete(k []byte) bool { return h.s.route(k).Handle(h.i).Delete(k) }

// Convenience single-threaded API on worker 0's handle.

// Get returns the value stored under k.
func (s *Store) Get(k []byte) (uint64, bool) { return s.Handle(0).Get(k) }

// GetBytes returns a copy of the byte value stored under k.
func (s *Store) GetBytes(k []byte) ([]byte, bool) { return s.Handle(0).GetBytes(k) }

// Put stores v under k; reports whether k was newly inserted.
func (s *Store) Put(k []byte, v uint64) bool { return s.Handle(0).Put(k, v) }

// PutBytes stores the byte value v under k; reports whether k was newly
// inserted.
func (s *Store) PutBytes(k []byte, v []byte) bool { return s.Handle(0).PutBytes(k, v) }

// Delete removes k; reports whether it was present.
func (s *Store) Delete(k []byte) bool { return s.Handle(0).Delete(k) }

// Scan visits up to max keys ≥ start in ascending order across all shards.
func (s *Store) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return s.Handle(0).Scan(start, max, fn)
}

// ScanBytes is Scan delivering byte values.
func (s *Store) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	return s.Handle(0).ScanBytes(start, max, fn)
}

// Len sums the live-key counters across shards (transient; see
// core.Store.Len).
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// RebuildLen recomputes every shard's Len with one scan each.
func (s *Store) RebuildLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.RebuildLen()
	}
	return n
}

// Stats returns a freshly built aggregate of the per-shard counters.
func (s *Store) Stats() *core.Stats {
	agg := &core.Stats{}
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.LoggedNodes.Add(0, st.LoggedNodes.Load())
		agg.InCLLPerm.Add(0, st.InCLLPerm.Load())
		agg.InCLLVal.Add(0, st.InCLLVal.Load())
		agg.LazyRecoveries.Add(0, st.LazyRecoveries.Load())
		agg.ValueHeapBytes.Add(0, st.ValueHeapBytes.Load())
		agg.Puts.Add(0, st.Puts.Load())
		agg.Gets.Add(0, st.Gets.Load())
		agg.Deletes.Add(0, st.Deletes.Load())
		agg.Scans.Add(0, st.Scans.Load())
	}
	return agg
}

// NVMStats sums the per-arena counters (including the coordinator's).
func (s *Store) NVMStats() nvm.StatsSnapshot {
	agg := s.coord.Stats().Snapshot()
	for _, a := range s.arenas {
		agg = agg.Add(a.Stats().Snapshot())
	}
	return agg
}
