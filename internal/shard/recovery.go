package shard

import "incll/internal/nvm"

// SimulateCrash injects a power failure across the whole cluster: on every
// shard arena each dirty cache line survives with probability
// persistFraction (independent per-shard policies derived from seed), the
// coordinator arena crashes too, and the store becomes unusable until
// Reopen. All handles must be quiescent.
func (s *Store) SimulateCrash(persistFraction float64, seed int64) {
	s.StopTicker()
	s.crashArenas(persistFraction, seed)
}

func (s *Store) crashArenas(persistFraction float64, seed int64) {
	// The coordinator record is written back and fenced at every commit,
	// so it is clean here and survives any policy.
	s.coord.Crash(nvm.RandomPolicy(persistFraction, seed^0x5eed))
	for i, a := range s.arenas {
		a.Crash(nvm.RandomPolicy(persistFraction, seed+int64(i)*104729))
	}
}

// CrashDuringAdvance drives a global checkpoint to a chosen failure point
// and injects the power failure there — the validation hook for the
// cross-shard atomicity tests, reaching the windows SimulateCrash cannot:
//
//   - prepared < NumShards, !commitGlobal: the crash hits phase 1, with a
//     prefix of shards flushed. Recovery must roll the epoch back on every
//     shard (to the previous global boundary).
//   - prepared == NumShards, commitGlobal: the crash hits phase 2, after
//     the global commit record landed but before localCommits of the
//     shards recorded the commit locally. Recovery must keep the epoch on
//     every shard.
//
// commitGlobal with prepared < NumShards would violate the protocol (the
// coordinator only commits after every shard prepared) and panics. The
// store is unusable afterwards until Reopen.
func (s *Store) CrashDuringAdvance(prepared, localCommits int, commitGlobal bool, persistFraction float64, seed int64) {
	if commitGlobal && prepared != len(s.shards) {
		panic("shard: CrashDuringAdvance: global commit before every shard prepared")
	}
	if localCommits > 0 && !commitGlobal {
		panic("shard: CrashDuringAdvance: local commit before the global record")
	}
	s.StopTicker()
	s.advMu.Lock()
	defer s.advMu.Unlock()
	for i := 0; i < prepared; i++ {
		s.shards[i].Epochs().Prepare()
	}
	if commitGlobal {
		s.commitRecord(s.shards[0].Epochs().Current())
	}
	for i := 0; i < localCommits; i++ {
		s.shards[i].Epochs().Commit()
	}
	s.crashArenas(persistFraction, seed)
}

// Reopen recovers the cluster from the arena contents after SimulateCrash
// or CrashDuringAdvance (or after Shutdown, to model a clean restart).
func (s *Store) Reopen() (*Store, RecoveryInfo) {
	s.coord.ResetReservations()
	for _, a := range s.arenas {
		a.ResetReservations()
	}
	return attach(s.coord, s.arenas, s.cfg)
}
