package shard

import "incll/internal/ycsb"

// Route deterministically maps key k to a shard in [0, shards): the key
// bytes are folded FNV-1a style into 64 bits and then passed through the
// fixed-point scramble the YCSB generator already uses (splitmix64's
// finalizer), so sequential and common-prefix keys spread evenly instead
// of clustering on one shard. Routing is a pure function of the bytes — a
// recovering process re-derives the same placement.
func Route(k []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range k {
		h = (h ^ uint64(c)) * prime
	}
	return int(ycsb.Scramble(h) % uint64(shards))
}
