package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"incll/internal/core"
)

// TestTopologyExactlyOneOwner is the routing partition invariant behind
// online resharding: under any single topology, every key is owned by
// exactly one shard, and that ownership is stable across re-evaluation —
// so a donor and a target topology each partition the keyspace cleanly
// and a cutover only ever moves a key between two well-defined owners.
func TestTopologyExactlyOneOwner(t *testing.T) {
	const keys = 5000
	for _, topo := range []Topology{
		{Version: 1, Shards: 1},
		{Version: 1, Shards: 4},
		{Version: 2, Shards: 7},
		{Version: 3, Shards: 128},
	} {
		owned := make([]int, keys) // owners seen per key
		for s := 0; s < topo.Shards; s++ {
			for i := uint64(0); i < keys; i++ {
				if topo.Route(core.EncodeUint64(i)) == s {
					owned[i]++
				}
			}
		}
		for i, n := range owned {
			if n != 1 {
				t.Fatalf("topology v%d/%d shards: key %d owned by %d shards, want exactly 1",
					topo.Version, topo.Shards, i, n)
			}
		}
	}
}

// TestTopologyRouteStableAcrossVersions pins that routing depends only on
// the shard count, never the version: a replayed intent record stamped
// v1/4-shards routes identically under a later topology with the same
// count, which is what lets recovery re-derive placement from key bytes.
func TestTopologyRouteStableAcrossVersions(t *testing.T) {
	a := Topology{Version: 1, Shards: 6}
	b := Topology{Version: 9, Shards: 6}
	for i := uint64(0); i < 2000; i++ {
		k := core.EncodeUint64(i)
		if a.Route(k) != b.Route(k) {
			t.Fatalf("key %d routes differently under same shard count, versions 1 vs 9", i)
		}
	}
}

// TestTopologyBalance checks the router spreads keys near-uniformly at
// the shard counts the reshard path cares about: a small odd count (3),
// the old inline-bitmask ceiling (64), and past it (128). Each shard must
// hold within a factor of two of the ideal share for several key shapes.
func TestTopologyBalance(t *testing.T) {
	const keys = 50_000
	shapes := map[string]func(i uint64) []byte{
		"uint64":  core.EncodeUint64,
		"decimal": func(i uint64) []byte { return []byte(fmt.Sprintf("user%08d", i)) },
	}
	for _, shards := range []int{3, 64, 128} {
		topo := Topology{Version: 1, Shards: shards}
		for name, key := range shapes {
			counts := make([]int, shards)
			for i := uint64(0); i < keys; i++ {
				counts[topo.Route(key(i))]++
			}
			ideal := keys / shards
			for s, c := range counts {
				if c < ideal/2 || c > ideal*2 {
					t.Fatalf("%d shards, %s keys: shard %d owns %d, ideal %d — imbalanced",
						shards, name, s, c, ideal)
				}
			}
		}
	}
}

// TestTopologyCutoverRoutingInvariant drives the exact structure the
// façade uses during a live reshard — the current topology behind one
// atomic pointer, swapped mid-flight — and asserts the invariant each
// concurrent operation relies on: whichever topology a reader resolves,
// its route is in-range and consistent for that topology. Readers racing
// the swap may see the donor or the target, never a torn mix.
func TestTopologyCutoverRoutingInvariant(t *testing.T) {
	var cur atomic.Pointer[Topology]
	cur.Store(&Topology{Version: 1, Shards: 4})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := core.EncodeUint64(uint64(worker)<<32 | i%4096)
				topo := *cur.Load() // one load, like the façade's fast path
				s := topo.Route(k)
				if s < 0 || s >= topo.Shards {
					t.Errorf("route %d out of range for %d shards", s, topo.Shards)
					return
				}
				if s2 := topo.Route(k); s2 != s {
					t.Errorf("unstable route under pinned topology: %d then %d", s, s2)
					return
				}
			}
		}(r)
	}
	// Cut over through a sequence of topologies while readers run.
	for v, shards := range []int{8, 3, 64, 128, 4} {
		cur.Store(&Topology{Version: uint64(v + 2), Shards: shards})
	}
	close(stop)
	wg.Wait()

	if got := *cur.Load(); !got.Equal(Topology{Version: 6, Shards: 4}) {
		t.Fatalf("final topology = %+v, want v6/4", got)
	}
}
