package shard

// Topology is the epoch-versioned routing table of a cluster: a small
// immutable value naming a shard count and the placement of every key in
// it. The assignment is not stored as a table — placement is the pure
// function Route (FNV-1a fold, scramble, mod Shards), so two processes
// holding the same Topology derive the same assignment for every key —
// but the Topology value is what makes routing *switchable*: the façade
// publishes the current Topology behind one atomic pointer, every
// operation resolves through one load of it, and a reshard cuts over by
// swapping the pointer at a checkpoint commit (see DESIGN.md §13).
//
// Version orders topologies of one DB's history: the first Open is
// version 1 and every completed reshard increments it. Transaction intent
// records carry the version they committed under, so recovery can tell
// which side of a cutover a replayed record belongs to.
type Topology struct {
	// Version is the topology's place in the DB's reshard history (≥ 1).
	Version uint64
	// Shards is the shard count this topology routes across.
	Shards int
}

// Route returns the shard in [0, Shards) that owns key k under this
// topology — the assignment function, evaluated at one key.
func (t Topology) Route(k []byte) int { return Route(k, t.Shards) }

// Equal reports whether two topologies are the same routing table.
func (t Topology) Equal(o Topology) bool { return t.Version == o.Version && t.Shards == o.Shards }
