package shard

// Cross-shard crash atomicity, the sharded analogue of the paper's §5.2
// methodology: run random workloads over a sharded cluster, crash it at
// arbitrary points — including inside the two-phase global checkpoint,
// with adversarially random persist fractions — restart, and check that
// every key committed at the last *global* epoch survives on its shard, no
// uncommitted key survives, and every shard recovers to the same epoch.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/testutil"
)

func TestPropertyCrossShardCrashAtomicity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runCrossShardCampaign(t, seed)
		})
	}
}

func runCrossShardCampaign(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const (
		shards   = 4
		workers  = 2
		keyspace = 3000
		rounds   = 4
		epochs   = 2
		ops      = 600
	)
	s, info := Open(testConfig(shards, workers))
	if info.Status != epoch.FreshStart {
		t.Fatalf("fresh cluster opened with status %v", info.Status)
	}

	committed := map[uint64]uint64{} // state at the last global boundary
	working := map[uint64]uint64{}   // state including the running epoch

	for round := 0; round < rounds; round++ {
		for e := 0; e < epochs; e++ {
			runShardEpoch(s, workers, keyspace, ops, working, rng.Int63())
			s.Advance()
			committed = cloneShardModel(working)
		}
		// Doomed partial epoch, then a crash at a random point: either
		// plain mid-epoch, or inside the two-phase global checkpoint.
		runShardEpoch(s, workers, keyspace, ops, working, rng.Int63())
		persist := rng.Float64()
		switch rng.Intn(3) {
		case 0:
			s.SimulateCrash(persist, rng.Int63())
		case 1:
			// Phase-1 crash: a random prefix of shards flushed, no global
			// commit — the doomed epoch must roll back everywhere.
			s.CrashDuringAdvance(rng.Intn(shards+1), 0, false, persist, rng.Int63())
		case 2:
			// Phase-2 crash: global record landed, a random prefix of
			// local commits did — the epoch must stand everywhere.
			s.CrashDuringAdvance(shards, rng.Intn(shards+1), true, persist, rng.Int63())
			committed = cloneShardModel(working)
		}

		var status epoch.Status
		s, status = reopenShard(t, s)
		if status != epoch.CrashRecovered {
			t.Fatalf("round %d: reopen status %v, want crash-recovered", round, status)
		}
		working = cloneShardModel(committed)
		verifyShardModel(t, s, committed)
	}
}

// reopenShard reopens the cluster and asserts the single-epoch invariant.
func reopenShard(t *testing.T, s *Store) (*Store, epoch.Status) {
	t.Helper()
	s2, info := s.Reopen()
	e0 := info.Shards[0].Epoch
	for i, sr := range info.Shards {
		if sr.Epoch != e0 {
			t.Fatalf("shard %d recovered to epoch %d, shard 0 to %d", i, sr.Epoch, e0)
		}
	}
	return s2, info.Status
}

// verifyShardModel checks the cluster against the committed model: point
// lookups routed per shard, absence of uncommitted keys, and one global
// ordered scan.
func verifyShardModel(t *testing.T, s *Store, model map[uint64]uint64) {
	t.Helper()
	for k, v := range model {
		kb := core.EncodeUint64(k)
		sh := s.ShardStore(Route(kb, s.NumShards()))
		got, ok := sh.Get(kb)
		if !ok {
			t.Fatalf("globally committed key %d missing from shard %d", k, Route(kb, s.NumShards()))
		}
		if got != v {
			t.Fatalf("key %d = %d after recovery, committed %d", k, got, v)
		}
	}
	count := 0
	var prev []byte
	s.Scan(nil, -1, func(kb []byte, v uint64) bool {
		if count > 0 && bytes.Compare(kb, prev) <= 0 {
			t.Fatalf("merged scan order violated at key %x", kb)
		}
		prev = append(prev[:0], kb...)
		count++
		k := decodeKey(kb)
		want, ok := model[k]
		if !ok {
			t.Fatalf("scan found uncommitted key %d after recovery", k)
		}
		if want != v {
			t.Fatalf("scan key %d = %d, committed %d", k, v, want)
		}
		return true
	})
	if count != len(model) {
		t.Fatalf("scan found %d keys, model has %d", count, len(model))
	}
}

// runShardEpoch has each worker mutate its own key range through the
// cluster façade (keys still land on arbitrary shards via the router),
// mirroring every mutation into the model.
func runShardEpoch(s *Store, workers int, keyspace uint64, ops int, model map[uint64]uint64, seed int64) {
	per := keyspace / uint64(workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle(w)
			rng := rand.New(rand.NewSource(seed*31 + int64(w)))
			lo := uint64(w) * per
			local := map[uint64]uint64{}
			deleted := map[uint64]bool{}
			for i := 0; i < ops; i++ {
				k := lo + uint64(rng.Int63n(int64(per)))
				switch rng.Intn(6) {
				case 0:
					h.Delete(core.EncodeUint64(k))
					delete(local, k)
					deleted[k] = true
				case 1:
					h.Get(core.EncodeUint64(k))
				default:
					v := rng.Uint64() % 1_000_000
					h.Put(core.EncodeUint64(k), v)
					local[k] = v
					delete(deleted, k)
				}
			}
			mu.Lock()
			for k, v := range local {
				model[k] = v
			}
			for k := range deleted {
				delete(model, k)
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
}

func cloneShardModel(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func decodeKey(b []byte) uint64 {
	var k uint64
	for _, c := range b {
		k = k<<8 | uint64(c)
	}
	return k
}

// TestLargeValueCrossShardCrashAtEveryOp is the cross-shard analogue of
// core's crash-at-every-point property for large values: a committed
// prefix of KB-scale values, then every doomed-op prefix length, then a
// crash — plain, inside phase 1, or inside phase 2 of the coordinated
// checkpoint. Committed bytes must survive exactly on every shard.
func TestLargeValueCrossShardCrashAtEveryOp(t *testing.T) {
	const (
		shards = 4
		keys   = 8
	)
	pattern := testutil.Pattern
	sizes := []int{2, 60, 900, 2000, 4000}
	type op struct {
		k   uint64
		n   int
		del bool
	}
	var script []op
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 16; i++ {
		k := uint64(rng.Intn(keys))
		if rng.Intn(5) == 0 {
			script = append(script, op{k: k, del: true})
		} else {
			script = append(script, op{k: k, n: sizes[rng.Intn(len(sizes))]})
		}
	}

	for points := 0; points <= len(script); points++ {
		for policy := 0; policy < 3; policy++ {
			s, _ := Open(testConfig(shards, 1))
			committed := map[uint64][]byte{}
			for i := uint64(0); i < keys; i++ {
				v := pattern(i+500, 1500)
				s.PutBytes(core.EncodeUint64(i), v)
				committed[i] = v
			}
			s.Advance()

			for i, o := range script[:points] {
				if o.del {
					s.Delete(core.EncodeUint64(o.k))
				} else {
					s.PutBytes(core.EncodeUint64(o.k), pattern(uint64(i)*131+o.k, o.n))
				}
			}
			stand := false
			switch policy {
			case 0:
				s.SimulateCrash(0.5, int64(points))
			case 1:
				// Phase-1 crash: some shards flushed, no global commit.
				s.CrashDuringAdvance(points%(shards+1), 0, false, 0.5, int64(points))
			case 2:
				// Phase-2 crash: global record landed → the epoch stands.
				s.CrashDuringAdvance(shards, points%(shards+1), true, 0.5, int64(points))
				stand = true
			}
			s2, _ := reopenShard(t, s)
			if stand {
				// Fold the doomed ops into the expectation: they committed.
				for i, o := range script[:points] {
					if o.del {
						delete(committed, o.k)
					} else {
						committed[o.k] = pattern(uint64(i)*131+o.k, o.n)
					}
				}
			}
			for k, v := range committed {
				got, ok := s2.GetBytes(core.EncodeUint64(k))
				if !ok {
					t.Fatalf("point %d policy %d: committed key %d missing", points, policy, k)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("point %d policy %d: key %d torn (%d vs %d bytes)",
						points, policy, k, len(got), len(v))
				}
			}
			n := 0
			s2.ScanBytes(nil, -1, func(kb, v []byte) bool {
				k := decodeKey(kb)
				if want, ok := committed[k]; !ok || !bytes.Equal(v, want) {
					t.Fatalf("point %d policy %d: scan key %d unexpected or torn", points, policy, k)
				}
				n++
				return true
			})
			if n != len(committed) {
				t.Fatalf("point %d policy %d: scan saw %d keys, want %d", points, policy, n, len(committed))
			}
		}
	}
}
