package shard

import (
	"bytes"

	"incll/internal/core"
)

// scanBatch is the number of entries fetched from one shard per refill.
// Each refill is one core scan holding that shard's epoch guard; batching
// amortizes the guard and descent without buffering whole shards.
const scanBatch = 64

// scanKV is one buffered entry; keys and values are copied out of the
// shard's callback so they outlive the refill.
type scanKV struct {
	k []byte
	v []byte
}

// scanCursor streams one shard's keys ≥ start in ascending order.
type scanCursor struct {
	h    core.Handle
	buf  []scanKV
	pos  int
	next []byte // start key of the next refill
	done bool   // the shard has no keys ≥ next
}

func (c *scanCursor) refill() {
	if c.done {
		return
	}
	c.buf = c.buf[:0]
	c.pos = 0
	n := c.h.ScanBytes(c.next, scanBatch, func(k, v []byte) bool {
		c.buf = append(c.buf, scanKV{k: append([]byte(nil), k...), v: append([]byte(nil), v...)})
		return true
	})
	if n < scanBatch {
		c.done = true // nothing beyond this batch
		return
	}
	// Resume strictly after the last delivered key: its successor in
	// bytewise order is the key extended by one zero byte.
	last := c.buf[len(c.buf)-1].k
	c.next = append(append(c.next[:0], last...), 0)
}

// head returns the cursor's smallest pending entry, refilling as needed;
// ok is false once the shard is exhausted.
func (c *scanCursor) head() (scanKV, bool) {
	if c.pos >= len(c.buf) {
		c.refill()
		if c.pos >= len(c.buf) {
			return scanKV{}, false
		}
	}
	return c.buf[c.pos], true
}

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false, delivering the uint64 view of each
// value. Returns the number visited.
func (h Handle) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return h.ScanBytes(start, max, func(k, v []byte) bool {
		return fn(k, core.DecodeValue(v))
	})
}

// ScanBytes visits up to max keys ≥ start in ascending order (max < 0
// means unlimited), until fn returns false, k-way-merging the per-shard
// streams: each shard scans in order and routing makes the streams
// disjoint, so one global pass popping the smallest head preserves total
// key order exactly as an unsharded scan would. Returns the number
// visited.
func (h Handle) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	cursors := make([]*scanCursor, len(h.s.shards))
	for i, sh := range h.s.shards {
		cursors[i] = &scanCursor{
			h:    sh.Handle(h.i),
			next: append([]byte(nil), start...),
		}
	}
	visited := 0
	for {
		if max >= 0 && visited >= max {
			return visited
		}
		// Linear min over the shard heads: shard counts are small enough
		// that a heap would cost more than it saves.
		var best *scanCursor
		var bestKV scanKV
		for _, c := range cursors {
			kv, ok := c.head()
			if !ok {
				continue
			}
			if best == nil || bytes.Compare(kv.k, bestKV.k) < 0 {
				best, bestKV = c, kv
			}
		}
		if best == nil {
			return visited
		}
		best.pos++
		visited++
		if !fn(bestKV.k, bestKV.v) {
			return visited
		}
	}
}
