package shard

import "incll/internal/core"

// Scan visits up to max keys ≥ start in ascending order (max < 0 means
// unlimited), until fn returns false, delivering the uint64 view of each
// value. Returns the number visited. A thin wrapper over the merge
// cursor, kept for compatibility.
func (h Handle) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return h.ScanBytes(start, max, func(k, v []byte) bool {
		return fn(k, core.DecodeValue(v))
	})
}

// ScanBytes visits up to max keys ≥ start in ascending order (max < 0
// means unlimited), until fn returns false, k-way-merging the per-shard
// streams through the cluster cursor: routing makes the streams disjoint,
// so popping the smallest head preserves total key order exactly as an
// unsharded scan would. The key and value slices are only valid during
// the callback. Returns the number visited.
func (h Handle) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	it := h.NewIter(core.IterOptions{})
	defer it.Close()
	visited := 0
	for ok := it.SeekGE(start); ok; ok = it.Next() {
		if max >= 0 && visited >= max {
			return visited
		}
		visited++
		if !fn(it.Key(), it.Value()) {
			return visited
		}
	}
	return visited
}
