package txn

import (
	"incll/internal/core"
	"incll/internal/shard"
)

// ForStore assembles a Manager over one unsharded store and runs intent
// recovery, returning the number of transactions replayed.
func ForStore(s *core.Store) (*Manager, int) {
	return New(Config{Stores: []*core.Store{s}})
}

// ForCluster assembles a Manager over a sharded cluster — its per-shard
// stores, the deterministic router, and the coordinated two-phase advance
// — and runs intent recovery, returning the number of transactions
// replayed. Rebuild after every Reopen.
func ForCluster(s *shard.Store) (*Manager, int) {
	return New(ClusterConfig(s))
}

// ClusterConfig builds the Manager Config for a sharded cluster without
// constructing the Manager — the shape a reshard cutover installs via
// Manager.Cutover.
func ClusterConfig(s *shard.Store) Config {
	stores := make([]*core.Store, s.NumShards())
	for i := range stores {
		stores[i] = s.ShardStore(i)
	}
	topo := s.Topology()
	return Config{
		Stores:      stores,
		TopoVersion: topo.Version,
		Route:       topo.Route,
		Advance:     s.Advance,
		NewIter: func(w int, o core.IterOptions) core.Cursor {
			return s.Handle(w).NewIter(o)
		},
	}
}
