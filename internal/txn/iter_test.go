package txn

// Property tests for the transaction overlay cursor: iteration must show
// the committed state with the transaction's own buffered writes merged
// in — puts visible (including brand-new keys), deletes hiding store
// keys — in both directions, matching a map-based model exactly.

import (
	"math/rand"
	"sort"
	"testing"

	"incll/internal/core"
	"incll/internal/shard"
)

// overlayModel applies a random committed population plus a random
// pending write set, returning the expected merged view.
func overlayModel(t *testing.T, rng *rand.Rand, put func(k, v []byte), tx *Txn) (sorted []string, view map[string]string) {
	t.Helper()
	view = map[string]string{}
	for i := 0; i < 800; i++ {
		k := core.EncodeUint64(uint64(rng.Intn(500)))
		v := make([]byte, 1+rng.Intn(24))
		rng.Read(v)
		put(k, v)
		view[string(k)] = string(v)
	}
	// Pending writes: overwrites, fresh inserts (beyond the committed key
	// range), and deletes.
	for i := 0; i < 200; i++ {
		switch rng.Intn(3) {
		case 0: // overwrite or insert inside the range
			k := core.EncodeUint64(uint64(rng.Intn(500)))
			v := make([]byte, 1+rng.Intn(24))
			rng.Read(v)
			tx.PutBytes(k, v)
			view[string(k)] = string(v)
		case 1: // fresh key the store has never held
			k := core.EncodeUint64(uint64(1000 + rng.Intn(500)))
			v := []byte("fresh")
			tx.PutBytes(k, v)
			view[string(k)] = string(v)
		default: // delete (sometimes of an absent key)
			k := core.EncodeUint64(uint64(rng.Intn(600)))
			tx.Delete(k)
			delete(view, string(k))
		}
	}
	sorted = make([]string, 0, len(view))
	for k := range view {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	return
}

func drainTxn(it core.Cursor, fwd bool) (keys, vals []string) {
	ok := it.First()
	if !fwd {
		ok = it.Last()
	}
	for ok {
		keys = append(keys, string(it.Key()))
		vals = append(vals, string(it.Value()))
		if fwd {
			ok = it.Next()
		} else {
			ok = it.Prev()
		}
	}
	return
}

func checkOverlay(t *testing.T, tx *Txn, sorted []string, view map[string]string, label string) {
	t.Helper()
	for _, fwd := range []bool{true, false} {
		it := tx.NewIter(core.IterOptions{})
		keys, vals := drainTxn(it, fwd)
		it.Close()
		if len(keys) != len(sorted) {
			t.Fatalf("%s fwd=%v: %d entries, model %d", label, fwd, len(keys), len(sorted))
		}
		for i := range keys {
			j := i
			if !fwd {
				j = len(sorted) - 1 - i
			}
			if keys[i] != sorted[j] || vals[i] != view[sorted[j]] {
				t.Fatalf("%s fwd=%v: entry %d = (%x, %x), model (%x, %x)",
					label, fwd, i, keys[i], vals[i], sorted[j], view[sorted[j]])
			}
		}
	}
	// Direction switches around a random interior position.
	if len(sorted) > 2 {
		it := tx.NewIter(core.IterOptions{})
		mid := sorted[len(sorted)/2]
		if !it.SeekGE([]byte(mid)) || string(it.Key()) != mid {
			t.Fatalf("%s: SeekGE(existing) missed", label)
		}
		if !it.Prev() || string(it.Key()) != sorted[len(sorted)/2-1] {
			t.Fatalf("%s: Prev after SeekGE wrong", label)
		}
		if !it.Next() || string(it.Key()) != mid {
			t.Fatalf("%s: Next after Prev wrong", label)
		}
		it.Close()
	}
}

// TestTxnIterOverlaysPendingWrites: unsharded overlay vs model.
func TestTxnIterOverlaysPendingWrites(t *testing.T) {
	f := newSingle(t)
	rng := rand.New(rand.NewSource(11))
	tx := f.m.Begin(0)
	sorted, view := overlayModel(t, rng, func(k, v []byte) { f.store.PutBytes(k, v) }, tx)
	checkOverlay(t, tx, sorted, view, "single")
}

// TestTxnIterClusterOverlay: the same property over a sharded cluster —
// the overlay rides the merge cursor.
func TestTxnIterClusterOverlay(t *testing.T) {
	s, _ := shard.Open(shard.Config{Shards: 4, Workers: 1, ArenaWords: 1 << 20, TxnSegWords: 1 << 12})
	m, _ := ForCluster(s)
	rng := rand.New(rand.NewSource(23))
	tx := m.Begin(0)
	sorted, view := overlayModel(t, rng, func(k, v []byte) { s.PutBytes(k, v) }, tx)
	checkOverlay(t, tx, sorted, view, "cluster")
}

// TestTxnIterCommitReflectsIteratedView: committing the write set makes a
// plain store cursor see exactly what the overlay showed.
func TestTxnIterCommitReflectsIteratedView(t *testing.T) {
	f := newSingle(t)
	rng := rand.New(rand.NewSource(31))
	tx := f.m.Begin(0)
	sorted, view := overlayModel(t, rng, func(k, v []byte) { f.store.PutBytes(k, v) }, tx)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	it := f.store.NewIter(core.IterOptions{})
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if i >= len(sorted) || string(it.Key()) != sorted[i] || string(it.Value()) != view[sorted[i]] {
			t.Fatalf("post-commit entry %d diverges from the iterated view", i)
		}
		i++
	}
	if i != len(sorted) {
		t.Fatalf("post-commit store has %d keys, overlay showed %d", i, len(sorted))
	}
}
