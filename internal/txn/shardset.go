package txn

import "math/bits"

// ShardSet is the set of shards a transaction touches. Clusters of up to
// 64 shards — the common case by far — stay on a one-word inline
// representation with zero heap allocation; larger clusters spill to a
// []uint64 bitset sized at first use. The set preserves the commit
// protocol's one hard requirement: ForEach visits shards in ascending
// order, so per-shard commit locks are always acquired in a global order
// and two overlapping transactions cannot deadlock.
type ShardSet struct {
	word uint64   // inline representation when wide == nil (shards 0..63)
	wide []uint64 // spilled bitset when the cluster exceeds 64 shards
}

// NewShardSet returns an empty set able to hold shards [0, shards).
func NewShardSet(shards int) ShardSet {
	if shards <= 64 {
		return ShardSet{}
	}
	return ShardSet{wide: make([]uint64, (shards+63)/64)}
}

// Add inserts shard s.
func (b *ShardSet) Add(s int) {
	if b.wide == nil {
		b.word |= 1 << uint(s)
		return
	}
	b.wide[s>>6] |= 1 << uint(s&63)
}

// Or folds o into b. Both sets must come from the same NewShardSet shape.
func (b *ShardSet) Or(o ShardSet) {
	if b.wide == nil {
		b.word |= o.word
		return
	}
	for i, w := range o.wide {
		b.wide[i] |= w
	}
}

// Contains reports whether shard s is in the set.
func (b *ShardSet) Contains(s int) bool {
	if b.wide == nil {
		return b.word&(1<<uint(s)) != 0
	}
	return b.wide[s>>6]&(1<<uint(s&63)) != 0
}

// Empty reports whether the set has no shards.
func (b *ShardSet) Empty() bool {
	if b.wide == nil {
		return b.word == 0
	}
	for _, w := range b.wide {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of shards in the set.
func (b *ShardSet) Count() int {
	if b.wide == nil {
		return bits.OnesCount64(b.word)
	}
	n := 0
	for _, w := range b.wide {
		n += bits.OnesCount64(w)
	}
	return n
}

// Min returns the lowest shard in the set — the transaction's home shard,
// whose epoch stamps the intent record — or -1 if the set is empty.
func (b *ShardSet) Min() int {
	if b.wide == nil {
		if b.word == 0 {
			return -1
		}
		return bits.TrailingZeros64(b.word)
	}
	for i, w := range b.wide {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f for every shard in the set in ascending order — the
// lock-ordering guarantee the commit protocol is built on.
func (b *ShardSet) ForEach(f func(s int)) {
	if b.wide == nil {
		for w := b.word; w != 0; w &= w - 1 {
			f(bits.TrailingZeros64(w))
		}
		return
	}
	for i, w := range b.wide {
		for ; w != 0; w &= w - 1 {
			f(i<<6 + bits.TrailingZeros64(w))
		}
	}
}

// Word folds the set into a single uint64 (shard mod 64) for the durable
// intent record's summary field. Informational only: recovery replays by
// routing each op's key through the live topology and never consults the
// recorded set, so folding loses nothing that matters.
func (b *ShardSet) Word() uint64 {
	if b.wide == nil {
		return b.word
	}
	var w uint64
	for _, x := range b.wide {
		w |= x
	}
	return w
}
