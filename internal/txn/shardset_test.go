package txn

import (
	"math/rand"
	"sort"
	"testing"
)

// TestShardSetInlineStaysInline pins the representation contract: sets
// for clusters of ≤ 64 shards never allocate a spill slice, so the
// per-transaction hot path stays a one-word value.
func TestShardSetInlineStaysInline(t *testing.T) {
	for _, shards := range []int{1, 2, 63, 64} {
		s := NewShardSet(shards)
		if s.wide != nil {
			t.Fatalf("NewShardSet(%d) spilled to a wide bitset", shards)
		}
		s.Add(shards - 1)
		if s.wide != nil {
			t.Fatalf("Add spilled an inline set at %d shards", shards)
		}
	}
	if s := NewShardSet(65); s.wide == nil {
		t.Fatal("NewShardSet(65) did not allocate the wide bitset")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := NewShardSet(64)
		s.Add(0)
		s.Add(63)
		_ = s.Contains(17)
	})
	if allocs != 0 {
		t.Fatalf("inline ShardSet allocated %.1f times per use, want 0", allocs)
	}
}

// testShardSetAgainstModel drives one ShardSet shape against a map model
// with randomized Add/Or and checks every query method agrees.
func testShardSetAgainstModel(t *testing.T, shards int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	set := NewShardSet(shards)
	model := map[int]bool{}

	for op := 0; op < 500; op++ {
		if rng.Intn(4) == 0 {
			other := NewShardSet(shards)
			for i := 0; i < 3; i++ {
				s := rng.Intn(shards)
				other.Add(s)
				model[s] = true
			}
			set.Or(other)
		} else {
			s := rng.Intn(shards)
			set.Add(s)
			model[s] = true
		}
	}

	var want []int
	for s := range model {
		want = append(want, s)
	}
	sort.Ints(want)

	if got := set.Count(); got != len(want) {
		t.Fatalf("Count = %d, model has %d", got, len(want))
	}
	if set.Empty() != (len(want) == 0) {
		t.Fatalf("Empty = %v with %d members", set.Empty(), len(want))
	}
	min := -1
	if len(want) > 0 {
		min = want[0]
	}
	if got := set.Min(); got != min {
		t.Fatalf("Min = %d, want %d", got, min)
	}
	for s := 0; s < shards; s++ {
		if set.Contains(s) != model[s] {
			t.Fatalf("Contains(%d) = %v, model says %v", s, set.Contains(s), model[s])
		}
	}
	var visited []int
	set.ForEach(func(s int) { visited = append(visited, s) })
	if len(visited) != len(want) {
		t.Fatalf("ForEach visited %d shards, want %d", len(visited), len(want))
	}
	for i := range visited {
		if visited[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want ascending %v", visited, want)
		}
		if i > 0 && visited[i] <= visited[i-1] {
			t.Fatalf("ForEach not strictly ascending at %d: %v", i, visited)
		}
	}
	var foldWant uint64
	for _, s := range want {
		foldWant |= 1 << uint(s%64)
	}
	if got := set.Word(); got != foldWant {
		t.Fatalf("Word fold = %#x, want %#x", got, foldWant)
	}
}

// TestShardSetModelInline exercises the one-word fast path.
func TestShardSetModelInline(t *testing.T) {
	for _, shards := range []int{1, 5, 64} {
		testShardSetAgainstModel(t, shards, int64(shards)*31+7)
	}
}

// TestShardSetModelWide exercises the spilled bitset past the old
// 64-shard ceiling, including word-boundary counts.
func TestShardSetModelWide(t *testing.T) {
	for _, shards := range []int{65, 128, 130, 257} {
		testShardSetAgainstModel(t, shards, int64(shards)*31+7)
	}
}

// TestShardSetEmpty pins the zero-value queries both shapes must agree on.
func TestShardSetEmpty(t *testing.T) {
	for _, shards := range []int{8, 200} {
		s := NewShardSet(shards)
		if !s.Empty() || s.Count() != 0 || s.Min() != -1 || s.Word() != 0 {
			t.Fatalf("%d shards: empty set reports Empty=%v Count=%d Min=%d Word=%#x",
				shards, s.Empty(), s.Count(), s.Min(), s.Word())
		}
		s.ForEach(func(int) { t.Fatal("ForEach visited a member of the empty set") })
	}
}
