package txn

import (
	"sort"

	"incll/internal/extlog"
)

// recover replays committed-but-rolled-back transactions after a restart.
//
// Decision table, per intent record (see DESIGN.md for the full matrix):
//
//	checksum invalid / stale generation  → ignore: the commit never
//	    finished writing the record, so nothing was applied (the protocol
//	    orders intent-fence before the first apply).
//	mark absent                          → ignore: the transaction never
//	    reached its commit point; whatever it applied ran in an epoch that
//	    cannot have committed (the commit guard pins the epoch for the
//	    whole window), so the epoch rollback already removed it.
//	mark present, epoch committed        → ignore: the checkpoint that
//	    committed the epoch also made every applied write durable.
//	topology version not live            → skip (counted in Stats.Stale):
//	    the record committed under a topology the durable manifest has
//	    since retired. Its writes were migrated to the new shard set by
//	    the reshard before the manifest committed, so replaying it here —
//	    through the *new* router — would resurrect state the cutover
//	    already carried over, onto the wrong shards.
//	mark present, epoch failed           → replay: the rollback undid the
//	    applied writes; re-apply the write set from the record.
//
// "Epoch failed" is judged by the record's home store, whose epoch manager
// already folded in the shard coordinator's commit record (see
// epoch.OpenCoordinated) — so cross-shard intents are decided by the same
// single fenced line that decides the cluster checkpoint.
//
// Replay runs in commit-sequence order (conflicting transactions committed
// under a shared lock, so seq order is their real order), then one cluster
// checkpoint commits the replay epoch — without it, a second crash would
// roll the re-applied writes back while the retired intents could no
// longer restore them — and finally the intent generation is retired so
// no record replays twice. A crash anywhere inside recovery simply re-runs
// it: until the generation bump, the same records replay to the same
// state.
func (m *Manager) recover() int {
	type pending struct {
		seq uint64
		ops []extlog.IntentOp
	}
	st := m.topo.Load()
	var todo []pending
	for _, s := range st.stores {
		for _, rec := range s.Intents().ScanIntents() {
			if rec.TopoVer != st.version {
				// Defensive: a reshard retires the donor arenas wholesale,
				// so stale-topology records shouldn't normally survive
				// into a scan — but if one does, replaying it through the
				// live router would be wrong. Skip and count.
				m.stats.Stale.Add(1)
				continue
			}
			if rec.Committed && s.Epochs().IsFailed(rec.Epoch) {
				todo = append(todo, pending{seq: rec.Seq, ops: rec.Ops})
			}
		}
	}
	if len(todo) == 0 {
		return 0
	}
	sort.Slice(todo, func(a, b int) bool { return todo[a].seq < todo[b].seq })
	for _, p := range todo {
		for _, op := range p.ops {
			s := st.stores[st.shardOf(op.Key)]
			if op.Delete {
				s.Delete(op.Key)
			} else {
				s.PutBytes(op.Key, op.Val)
			}
		}
	}
	st.advance()
	for _, s := range st.stores {
		s.Intents().RetireIntents()
	}
	m.stats.Replays.Add(int64(len(todo)))
	return len(todo)
}
