package txn

import (
	"errors"
	"testing"

	"incll/internal/core"
	"incll/internal/nvm"
	"incll/internal/shard"
)

// singleFixture is one core store plus its manager, rebuildable across
// simulated crashes.
type singleFixture struct {
	arena *nvm.Arena
	cfg   core.Config
	store *core.Store
	m     *Manager
}

func newSingle(t *testing.T) *singleFixture {
	t.Helper()
	f := &singleFixture{
		arena: nvm.New(nvm.Config{Words: 1 << 21}),
		cfg: core.Config{
			Workers:     2,
			LogSegWords: 1 << 14,
			TxnSegWords: 1 << 12,
			HeapWords:   1 << 20,
		},
	}
	f.store, _ = core.Open(f.arena, f.cfg)
	f.m, _ = New(Config{Stores: []*core.Store{f.store}})
	return f
}

// crash injects a power failure and reopens store and manager, returning
// the number of transactions replayed.
func (f *singleFixture) crash(p nvm.Policy) int {
	f.arena.Crash(p)
	f.arena.ResetReservations()
	f.store, _ = core.Open(f.arena, f.cfg)
	var replayed int
	f.m, replayed = New(Config{Stores: []*core.Store{f.store}})
	return replayed
}

func key(k uint64) []byte { return core.EncodeUint64(k) }

func TestCommitAppliesAllWrites(t *testing.T) {
	f := newSingle(t)
	tx := f.m.Begin(0)
	tx.Put(key(1), 10)
	tx.Put(key(2), 20)
	tx.Delete(key(3))
	tx.Put(key(2), 21) // overwrite collapses
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if v, ok := f.store.Get(key(1)); !ok || v != 10 {
		t.Fatalf("key 1 = %d,%v", v, ok)
	}
	if v, ok := f.store.Get(key(2)); !ok || v != 21 {
		t.Fatalf("key 2 = %d,%v", v, ok)
	}
	if got := f.m.Stats().Committed.Load(); got != 1 {
		t.Fatalf("committed = %d", got)
	}
}

func TestAbortAppliesNothing(t *testing.T) {
	f := newSingle(t)
	tx := f.m.Begin(0)
	tx.Put(key(1), 10)
	tx.Abort()
	if _, ok := f.store.Get(key(1)); ok {
		t.Fatal("aborted write visible")
	}
}

func TestReadYourWritesAndCaching(t *testing.T) {
	f := newSingle(t)
	f.store.Put(key(1), 5)
	tx := f.m.Begin(0)
	if v, _ := tx.Get(key(1)); v != 5 {
		t.Fatalf("initial read = %d", v)
	}
	tx.Put(key(1), 6)
	if v, _ := tx.Get(key(1)); v != 6 {
		t.Fatalf("read-your-write = %d", v)
	}
	tx.Delete(key(1))
	if _, ok := tx.Get(key(1)); ok {
		t.Fatal("read-your-delete still present")
	}
	tx.Abort()

	// Cached reads are repeatable even if the store moves underneath.
	tx2 := f.m.Begin(0)
	if v, _ := tx2.Get(key(1)); v != 5 {
		t.Fatalf("read = %d", v)
	}
	f.store.Put(key(1), 99)
	if v, _ := tx2.Get(key(1)); v != 5 {
		t.Fatalf("repeated read = %d, want the cached 5", v)
	}
	tx2.Abort()
}

func TestConflictDetection(t *testing.T) {
	f := newSingle(t)
	f.store.Put(key(1), 5)

	tx := f.m.Begin(0)
	v, _ := tx.Get(key(1))
	tx.Put(key(1), v+1)

	// A second transaction commits a conflicting write first.
	tx2 := f.m.Begin(1)
	tx2.Put(key(1), 50)
	if err := tx2.Commit(); err != nil {
		t.Fatalf("tx2 commit: %v", err)
	}

	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit = %v, want ErrConflict", err)
	}
	if v, _ := f.store.Get(key(1)); v != 50 {
		t.Fatalf("key 1 = %d, want tx2's 50", v)
	}
	if got := f.m.Stats().Conflicts.Load(); got != 1 {
		t.Fatalf("conflicts = %d", got)
	}
}

// TestDurableAtCommit is the headline guarantee: a committed transaction
// survives a crash that loses every dirty cache line, with no checkpoint
// in between — single-key writes in the same epoch do not.
func TestDurableAtCommit(t *testing.T) {
	f := newSingle(t)
	f.store.Put(key(1), 1)
	f.store.Advance() // commit the baseline

	f.store.Put(key(5), 555) // plain write: durable only at next checkpoint

	tx := f.m.Begin(0)
	tx.Put(key(1), 2)
	tx.Put(key(2), 3)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	if replayed := f.crash(nvm.PersistNone); replayed != 1 {
		t.Fatalf("replayed %d transactions, want 1", replayed)
	}
	if v, ok := f.store.Get(key(1)); !ok || v != 2 {
		t.Fatalf("key 1 = %d,%v, want the committed 2", v, ok)
	}
	if v, ok := f.store.Get(key(2)); !ok || v != 3 {
		t.Fatalf("key 2 = %d,%v, want the committed 3", v, ok)
	}
	if _, ok := f.store.Get(key(5)); ok {
		t.Fatal("uncommitted single-key write survived a full-loss crash")
	}

	// The replay must itself be durable: a second full-loss crash with the
	// generation already retired must not lose the transaction.
	if replayed := f.crash(nvm.PersistNone); replayed != 0 {
		t.Fatalf("second recovery replayed %d, want 0 (retired)", replayed)
	}
	if v, ok := f.store.Get(key(1)); !ok || v != 2 {
		t.Fatalf("key 1 = %d,%v after second crash", v, ok)
	}
}

func TestCheckpointRetiresIntent(t *testing.T) {
	f := newSingle(t)
	tx := f.m.Begin(0)
	tx.Put(key(1), 2)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	f.m.Advance() // checkpoint commits the epoch; intent becomes inert
	if replayed := f.crash(nvm.PersistNone); replayed != 0 {
		t.Fatalf("replayed %d after checkpoint, want 0", replayed)
	}
	if v, ok := f.store.Get(key(1)); !ok || v != 2 {
		t.Fatalf("key 1 = %d,%v", v, ok)
	}
}

func TestTooLargeWriteSet(t *testing.T) {
	arena := nvm.New(nvm.Config{Words: 1 << 21})
	cfg := core.Config{Workers: 1, LogSegWords: 1 << 14, TxnSegWords: 2 * nvm.WordsPerLine, HeapWords: 1 << 20}
	s, _ := core.Open(arena, cfg)
	m, _ := New(Config{Stores: []*core.Store{s}})
	tx := m.Begin(0)
	for i := uint64(0); i < 64; i++ {
		tx.Put(key(i), i)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("commit = %v, want ErrTooLarge", err)
	}
}

func TestFullSegmentRetriesAfterAdvance(t *testing.T) {
	arena := nvm.New(nvm.Config{Words: 1 << 21})
	cfg := core.Config{Workers: 1, LogSegWords: 1 << 14, TxnSegWords: 2 * nvm.WordsPerLine, HeapWords: 1 << 20}
	s, _ := core.Open(arena, cfg)
	m, _ := New(Config{Stores: []*core.Store{s}})
	for i := uint64(0); i < 5; i++ { // each fills the two-line segment
		tx := m.Begin(0)
		tx.Put(key(i), i)
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if adv := s.Epochs().Advances(); adv < 4 {
		t.Fatalf("advances = %d; full segments should have forced boundaries", adv)
	}
}

// TestCrossShardCommitAndReplay commits a transaction spanning shards and
// crash-recovers it through the coordinated cluster.
func TestCrossShardCommitAndReplay(t *testing.T) {
	const shards = 4
	cluster, _ := shard.Open(shard.Config{Shards: shards, Workers: 1, ArenaWords: 1 << 20})
	mgr := managerFor(cluster)

	// Find keys on at least two distinct shards.
	var ks [][]byte
	seen := map[int]bool{}
	for i := uint64(0); len(ks) < 3 || len(seen) < 2; i++ {
		k := key(i)
		sh := shard.Route(k, shards)
		if len(ks) < 3 {
			ks = append(ks, k)
			seen[sh] = true
		}
	}

	tx := mgr.Begin(0)
	for i, k := range ks {
		tx.Put(k, uint64(100+i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	cluster.SimulateCrash(0, 7) // lose every dirty line on every shard
	cluster, _ = cluster.Reopen()
	var replayed int
	mgr, replayed = ForCluster(cluster)
	if replayed != 1 {
		t.Fatalf("replayed %d, want 1", replayed)
	}
	for i, k := range ks {
		if v, ok := cluster.Get(k); !ok || v != uint64(100+i) {
			t.Fatalf("key %d = %d,%v after cross-shard recovery", i, v, ok)
		}
	}
	_ = mgr
}

func managerFor(s *shard.Store) *Manager {
	m, _ := ForCluster(s)
	return m
}

func TestReadOnlyCommitValidates(t *testing.T) {
	f := newSingle(t)
	f.store.Put(key(1), 5)
	f.store.Put(key(2), 10)

	// Clean read-only snapshot certifies.
	tx := f.m.Begin(0)
	tx.Get(key(1))
	tx.Get(key(2))
	if err := tx.Commit(); err != nil {
		t.Fatalf("clean read-only commit: %v", err)
	}

	// A conflicting write between the reads breaks the certification.
	tx2 := f.m.Begin(0)
	tx2.Get(key(1))
	f.store.Put(key(1), 6)
	tx2.Get(key(2))
	if err := tx2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("torn read-only commit = %v, want ErrConflict", err)
	}

	// Empty transactions still commit trivially.
	if err := f.m.Begin(0).Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
}

func TestOversizeKeyPoisonsCommit(t *testing.T) {
	f := newSingle(t)
	tx := f.m.Begin(0)
	tx.Put(make([]byte, core.MaxKeyBytes+1), 1)
	tx.Put(key(1), 2) // later writes ride along but the txn stays poisoned
	if err := tx.Commit(); !errors.Is(err, core.ErrKeyTooLarge) {
		t.Fatalf("commit = %v, want ErrKeyTooLarge", err)
	}
	if _, ok := f.store.Get(key(1)); ok {
		t.Fatal("poisoned transaction applied a write")
	}
	if got := f.store.Intents().Appended(); got != 0 {
		t.Fatalf("%d intent records written for a rejected key", got)
	}
}

func TestPutBytesOversizeFailsBeforeIntent(t *testing.T) {
	// The size check must fire when the write is buffered — Commit reports
	// it before any durable intent record is written under the commit
	// locks, and the error stays errors.Is-compatible with the façade's
	// ErrValueTooLarge.
	f := newSingle(t)
	tx := f.m.Begin(0)
	tx.PutBytes(key(1), make([]byte, core.MaxValueBytes+1))
	if err := tx.Commit(); !errors.Is(err, core.ErrValueTooLarge) {
		t.Fatalf("commit = %v, want ErrValueTooLarge", err)
	}
	if got := f.store.Intents().Appended(); got != 0 {
		t.Fatalf("%d intent records written for a rejected value", got)
	}
	if _, ok := f.store.Get(key(1)); ok {
		t.Fatal("poisoned transaction applied a write")
	}
}
