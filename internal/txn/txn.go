// Package txn adds crash-atomic multi-key transactions on top of the
// durable store(s): a Txn buffers reads and writes, and Commit applies the
// whole write set so that a power failure at *any* instruction leaves
// either every write or none — and a transaction whose Commit returned is
// durable immediately, without waiting for the next 64 ms checkpoint.
//
// The protocol leans on the two mechanisms the repository already has:
//
//   - Epoch atomicity. Commit runs entirely inside one epoch (the commit
//     guard excludes epoch advances for its duration), so if the crash
//     arrives before the commit mark is durable, the epoch's rollback —
//     InCLL undo state plus the external undo log — removes any partial
//     application wholesale. Nothing transaction-specific is needed on the
//     undo side.
//
//   - Intent redo records. Before applying, Commit writes the full write
//     set into a per-writer intent segment (extlog.IntentLog) and fences
//     it; after applying, one fenced line write sets the record's commit
//     mark. Recovery replays committed intents whose epoch failed, in
//     commit-sequence order, re-running the writes the rollback undid.
//
// Cross-shard commits need no extra coordination: the shard coordinator's
// fenced record (see internal/shard) already decides, for every shard at
// once, whether the commit's epoch survived — the same single-line
// linearization point the coordinated checkpoint uses. The intent carries
// the shard set, and recovery's replay decision consults the home shard's
// epoch state, which the coordinator record made identical on every shard.
//
// Topology: the Manager routes, locks, and logs through one immutable
// topoState loaded from an atomic pointer. An online reshard swaps that
// pointer under the exclusive commit guard (Cutover), so every commit runs
// start-to-finish under exactly one topology — the one it loads *after*
// taking the guard shared — and intent records carry the topology version
// they committed under, so recovery after a crash mid-reshard replays a
// record only into the topology that is durably live (see DESIGN.md §13).
//
// Isolation: conflicting commits (overlapping shard sets) serialize on
// per-shard commit locks, and Commit validates the transaction's read set
// under those locks, returning ErrConflict when a read value changed since
// the transaction observed it (optimistic concurrency; callers retry).
// Non-transactional single-key operations remain unaffected and
// uncoordinated — they become durable at the next checkpoint, as before.
package txn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/core"
	"incll/internal/epoch"
	"incll/internal/extlog"
	"incll/internal/obs"
)

// Commit errors.
var (
	// ErrConflict means read-set validation failed: another transaction
	// committed a conflicting write first. The caller should rebuild the
	// transaction and retry.
	ErrConflict = errors.New("txn: read-set conflict")
	// ErrTooLarge means the write set cannot fit one intent segment even
	// after an epoch boundary; raise Config.TxnSegWords.
	ErrTooLarge = errors.New("txn: write set exceeds the intent segment")
	// ErrLogFull means the intent segment stayed full across retried epoch
	// boundaries (pathological commit pressure).
	ErrLogFull = errors.New("txn: intent segment full after retries")
	// ErrInjected is returned when the test hook aborted the commit
	// mid-protocol (crash-injection tests only).
	ErrInjected = errors.New("txn: crash injected by test hook")
)

// InjectedCrash is the panic payload a test hook throws to stop a commit at
// an exact protocol point; Commit converts it to ErrInjected after
// releasing its locks without touching NVM again.
type InjectedCrash struct{ Point string }

// Config assembles a Manager over one store or a sharded cluster.
type Config struct {
	// Stores is the shard list (length 1 for an unsharded store). Clusters
	// of up to 64 shards use the one-word inline ShardSet fast path;
	// larger ones spill to a widened bitset — there is no hard ceiling
	// here (the façade enforces its own).
	Stores []*core.Store
	// TopoVersion is the topology version the stores belong to (stamped
	// into every intent record); 0 means 1, the first topology.
	TopoVersion uint64
	// Route maps a key to its shard index; nil means a single store. Must
	// be the cluster's real router (shard.Route) so recovery re-applies
	// every write on the shard that owns it.
	Route func(k []byte) int
	// Advance runs one cluster-wide epoch advance and returns the number
	// of lines flushed — core.Store.Advance for one store, the coordinated
	// shard.Store.Advance for a cluster. The Manager wraps it with the
	// commit guard; callers must go through Manager.Advance from then on.
	Advance func() int
	// NewIter opens a cursor over the whole (possibly sharded) store for
	// worker w — the sharded merge cursor for a cluster. nil derives a
	// single-store cursor from Stores[0].
	NewIter func(worker int, o core.IterOptions) core.Cursor
}

// Stats counts transaction outcomes.
type Stats struct {
	Committed atomic.Int64 // transactions whose Commit succeeded
	Conflicts atomic.Int64 // commits rejected by read validation
	Replays   atomic.Int64 // intents re-applied by recovery (this Open)
	Stale     atomic.Int64 // intents recovery skipped: committed under a topology no longer live
}

// Manager owns the transaction machinery for one store or cluster. One
// Manager per open DB; rebuild it after every reopen (its New runs intent
// recovery).
type Manager struct {
	// topo is the live topology: stores, router, advance, iterator
	// factory, and the per-shard commit locks, all versioned together.
	// Commit paths load it exactly once, after taking the commit guard
	// shared — never before, or a reshard cutover (which swaps the pointer
	// under the exclusive guard) could change the routing mid-commit and
	// strand writes on a frozen donor shard.
	topo atomic.Pointer[topoState]

	// guard serializes commits against epoch advances and topology
	// cutovers: commits hold it shared for the whole intent→apply→mark
	// window (so neither the epoch nor the topology can change mid-commit,
	// and multi-shard Enter cannot deadlock against the coordinated
	// two-phase advance), advances and Cutover hold it exclusively.
	guard sync.RWMutex

	seq   atomic.Uint64
	stats Stats

	// phases is the sampled latency-attribution timer (see obs.PhaseSet):
	// commits charge their guard RLock wait to guard_wait and their
	// ascending commit-lock walk to commit_lock_wait; advances record their
	// exclusive guard wait and hold always (one per epoch, too rare to
	// sample). nil disables.
	phases *obs.PhaseSet

	hook func(point string) // crash-injection test hook; nil in production

	ticker epoch.Ticker
}

// topoState is one immutable topology epoch of the Manager: everything
// whose meaning depends on the shard count, bundled so a cutover replaces
// it all in one pointer swap.
type topoState struct {
	version uint64
	stores  []*core.Store
	route   func(k []byte) int
	advance func() int
	iter    func(worker int, o core.IterOptions) core.Cursor

	// commitMu[i] serializes commits that touch shard i. Locks are taken
	// in ascending shard order, so conflicting commits — which share at
	// least one shard — are totally ordered, and that order matches their
	// commit sequence numbers (seq is drawn while the locks are held).
	commitMu []sync.Mutex
}

func (st *topoState) shardOf(k []byte) int { return st.route(k) }

func newTopoState(cfg Config) *topoState {
	st := &topoState{
		version:  cfg.TopoVersion,
		stores:   cfg.Stores,
		route:    cfg.Route,
		advance:  cfg.Advance,
		iter:     cfg.NewIter,
		commitMu: make([]sync.Mutex, len(cfg.Stores)),
	}
	if st.version == 0 {
		st.version = 1
	}
	if st.route == nil {
		st.route = func([]byte) int { return 0 }
	}
	if st.advance == nil {
		st.advance = cfg.Stores[0].Advance
	}
	if st.iter == nil {
		st.iter = func(w int, o core.IterOptions) core.Cursor {
			return cfg.Stores[0].Handle(w).NewIter(o)
		}
	}
	return st
}

// Instrument attaches the latency-attribution timer. nil detaches.
func (m *Manager) Instrument(ph *obs.PhaseSet) { m.phases = ph }

// New builds a Manager and runs intent recovery: every committed intent
// whose epoch failed is replayed in commit order, the replay is committed
// with one cluster checkpoint, and the intent generation is retired.
// Returns the number of transactions replayed. Must run after the stores
// are open and before any mutator starts.
func New(cfg Config) (*Manager, int) {
	if len(cfg.Stores) == 0 {
		panic("txn: no stores")
	}
	m := &Manager{}
	m.topo.Store(newTopoState(cfg))
	return m, m.recover()
}

// TopoVersion returns the live topology's version.
func (m *Manager) TopoVersion() uint64 { return m.topo.Load().version }

// Cutover atomically replaces the manager's topology — the transaction
// layer's half of a reshard cutover. It takes the commit guard
// exclusively, so when fn runs no commit is in flight and no advance can
// interleave; fn is the reshard driver's critical section (final donor
// checkpoint, change-stream drain, target checkpoint, manifest commit).
// When fn reports commit=true, next is installed as the live topology
// before the guard is released — every commit that starts afterwards
// routes, locks, and logs intents under the new topology. commit=false
// (a pre-manifest abort) leaves the old topology live. fn's error is
// returned either way.
func (m *Manager) Cutover(next Config, fn func() (commit bool, err error)) error {
	m.guard.Lock()
	defer m.guard.Unlock()
	commit, err := fn()
	if commit {
		m.install(next)
	}
	return err
}

func (m *Manager) install(cfg Config) {
	st := newTopoState(cfg)
	m.topo.Store(st)
	if m.hook != nil {
		for _, s := range st.stores {
			s.Intents().Hook = m.hook
		}
	}
}

// Stats returns the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// SetHook installs the crash-injection test hook, invoked at every named
// protocol point inside Commit (including the pre-fence points inside the
// intent log). The hook stops the protocol by panicking with
// InjectedCrash. Never use outside tests.
func (m *Manager) SetHook(h func(point string)) {
	m.hook = h
	for _, s := range m.topo.Load().stores {
		s.Intents().Hook = h
	}
}

// Advance runs one cluster-wide epoch advance (a checkpoint), excluded
// against in-flight commits by the commit guard. All checkpoints of a
// transactional store must go through here.
func (m *Manager) Advance() int {
	if m.phases != nil {
		// One advance per epoch: record the wait for in-flight commits to
		// drain (guard_wait) and the exclusive hold (guard_hold) always.
		t0 := time.Now()
		m.guard.Lock()
		t1 := time.Now()
		m.phases.Observe(obs.PhaseGuardWait, t1.Sub(t0))
		defer func() {
			m.phases.Observe(obs.PhaseGuardHold, time.Since(t1))
			m.guard.Unlock()
		}()
		return m.topo.Load().advance()
	}
	m.guard.Lock()
	defer m.guard.Unlock()
	return m.topo.Load().advance()
}

// StartTicker advances epochs every interval in the background, like the
// paper's 64 ms timer, via the guard-aware Advance.
func (m *Manager) StartTicker(interval time.Duration) {
	m.ticker.Start(interval, func() { m.Advance() })
}

// StopTicker stops the background ticker, if running.
func (m *Manager) StopTicker() { m.ticker.Stop() }

// readVal is one read-set observation (the full byte value, so validation
// catches any change, not just changes visible through the uint64 view).
type readVal struct {
	val   []byte
	found bool
}

// Txn is one transaction: buffered writes, cached reads, one Commit or
// Abort. A Txn belongs to the worker that began it and is not safe for
// concurrent use.
type Txn struct {
	m      *Manager
	worker int

	reads  map[string]readVal
	writes []extlog.IntentOp
	windex map[string]int
	done   bool
	// err is the sticky buffered-write error (oversized key or value):
	// the offending write is dropped, the transaction is poisoned, and
	// Commit reports the first failure — long before any durable intent
	// could be written. errors.Is-compatible with core.ErrValueTooLarge /
	// core.ErrKeyTooLarge.
	err error
}

// Begin starts a transaction on worker index worker (the same index used
// for Store handles; one live transaction per worker at a time).
func (m *Manager) Begin(worker int) *Txn {
	return &Txn{
		m:      m,
		worker: worker,
		reads:  make(map[string]readVal),
		windex: make(map[string]int),
	}
}

func (t *Txn) check() {
	if t.done {
		panic("txn: use after Commit/Abort")
	}
}

// Get reads the uint64 view of k: the transaction's own pending write if
// any, else a cached prior read, else the store. Reads are validated at
// Commit; a change between here and Commit fails the transaction with
// ErrConflict.
func (t *Txn) Get(k []byte) (uint64, bool) {
	v, ok := t.getBytes(k)
	return core.DecodeValue(v), ok
}

// GetBytes is Get returning a copy of the byte value.
func (t *Txn) GetBytes(k []byte) ([]byte, bool) {
	v, ok := t.getBytes(k)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// getBytes returns the observed value without copying; callers must not
// retain or mutate it.
func (t *Txn) getBytes(k []byte) ([]byte, bool) {
	t.check()
	if i, ok := t.windex[string(k)]; ok {
		op := t.writes[i]
		if op.Delete {
			return nil, false
		}
		return op.Val, true
	}
	if rv, ok := t.reads[string(k)]; ok {
		return rv.val, rv.found
	}
	// Non-commit reads may route through a topology a concurrent cutover
	// is about to retire — harmless: the frozen donor holds a committed
	// snapshot, and Commit's validation re-reads under the *current*
	// topology's locks, so any divergence surfaces as ErrConflict.
	st := t.m.topo.Load()
	v, ok := st.stores[st.shardOf(k)].Handle(t.worker).GetBytes(k)
	t.reads[string(k)] = readVal{v, ok}
	return v, ok
}

// Put buffers a write of v under k (applied atomically at Commit), using
// the canonical uint64 byte encoding.
func (t *Txn) Put(k []byte, v uint64) {
	t.check()
	if !t.validate(k, nil) {
		return
	}
	t.write(extlog.IntentOp{Key: append([]byte(nil), k...), Val: core.EncodeValue(v)})
}

// PutBytes buffers a write of the byte value v under k (applied atomically
// at Commit). An oversized key or value poisons the transaction — here at
// the buffering site, never mid-commit with a durable intent already
// written — and Commit returns an error errors.Is-compatible with
// core.ErrValueTooLarge / core.ErrKeyTooLarge.
func (t *Txn) PutBytes(k []byte, v []byte) {
	t.check()
	if !t.validate(k, v) {
		return
	}
	t.write(extlog.IntentOp{Key: append([]byte(nil), k...), Val: append([]byte(nil), v...)})
}

// Delete buffers a deletion of k (applied atomically at Commit).
func (t *Txn) Delete(k []byte) {
	t.check()
	if !t.validate(k, nil) {
		return
	}
	t.write(extlog.IntentOp{Key: append([]byte(nil), k...), Delete: true})
}

// validate size-checks a buffered write, poisoning the transaction with
// the first failure.
func (t *Txn) validate(k, v []byte) bool {
	err := core.ValidateKV(k, v)
	if err == nil {
		return true
	}
	if t.err == nil {
		t.err = fmt.Errorf("txn: %w", err)
	}
	return false
}

// write records op, collapsing repeated writes to one key into the last.
func (t *Txn) write(op extlog.IntentOp) {
	if i, ok := t.windex[string(op.Key)]; ok {
		t.writes[i] = op
		return
	}
	t.windex[string(op.Key)] = len(t.writes)
	t.writes = append(t.writes, op)
}

// Abort discards the transaction. Nothing was applied or logged.
func (t *Txn) Abort() {
	t.check()
	t.done = true
}

// Commit atomically applies the write set. On return with nil error the
// transaction is durable: a crash at any later point preserves every
// write. ErrConflict means a validated read changed; rebuild and retry.
// A read-only transaction writes nothing but still validates: a nil
// return certifies that every read came from one consistent committed
// state.
func (t *Txn) Commit() error {
	t.check()
	t.done = true
	if t.err != nil {
		return t.err
	}
	if len(t.writes) == 0 {
		if len(t.reads) == 0 {
			return nil
		}
		return t.m.validateOnly(t)
	}
	return t.m.commit(t)
}

// commit runs the protocol, retrying around a full intent segment (an
// epoch boundary resets the cursors).
func (m *Manager) commit(t *Txn) error {
	for attempt := 0; attempt < 3; attempt++ {
		done, err := m.tryCommit(t)
		if done {
			return err
		}
		// Intent segment full: force an epoch boundary, which both commits
		// the segment's records and resets its cursor, then retry.
		m.Advance()
	}
	return ErrLogFull
}

// commitLocks tracks what tryCommit holds so both the normal path and the
// injected-crash unwind release exactly once, in reverse order.
type commitLocks struct {
	m        *Manager
	st       *topoState
	lockSet  ShardSet
	released bool
}

func (cl *commitLocks) release() {
	if cl.released {
		return
	}
	cl.released = true
	cl.lockSet.ForEach(func(i int) {
		cl.st.stores[i].Epochs().Exit()
		cl.st.commitMu[i].Unlock()
	})
	cl.m.guard.RUnlock()
}

// acquire takes the commit-window locks. Lock order: commit guard
// (shared) → topology load → per-shard commit locks, ascending →
// per-shard epoch guards. The topology is loaded only after the guard is
// held — advances and reshard cutovers take the guard exclusively, so an
// epoch boundary or a topology swap can never interleave with the window,
// and the multi-shard Enter cannot deadlock against a coordinated
// advance. sets computes which shards to lock from the topology the
// window actually runs under.
func (m *Manager) acquire(w int, sets func(st *topoState) ShardSet) (*commitLocks, *topoState) {
	if m.phases.Sampled(w) {
		// Sampled commit: split the entry latency into the shared-guard
		// wait (blocked behind an epoch advance) and the per-shard
		// commit-lock walk (blocked behind conflicting commits).
		t0 := time.Now()
		m.guard.RLock()
		t1 := time.Now()
		m.phases.Observe(obs.PhaseGuardWait, t1.Sub(t0))
		st := m.topo.Load()
		lockSet := sets(st)
		m.lockShards(st, lockSet)
		m.phases.Observe(obs.PhaseCommitLockWait, time.Since(t1))
		return &commitLocks{m: m, st: st, lockSet: lockSet}, st
	}
	m.guard.RLock()
	st := m.topo.Load()
	lockSet := sets(st)
	m.lockShards(st, lockSet)
	return &commitLocks{m: m, st: st, lockSet: lockSet}, st
}

func (m *Manager) lockShards(st *topoState, lockSet ShardSet) {
	lockSet.ForEach(func(i int) {
		st.commitMu[i].Lock()
		st.stores[i].Epochs().Enter()
	})
}

// validateLocked re-reads the transaction's read set under the commit
// locks and reports whether every observation still holds (full byte
// comparison).
func (m *Manager) validateLocked(t *Txn, st *topoState) bool {
	var buf []byte
	for k, rv := range t.reads {
		kb := []byte(k)
		cur, ok := st.stores[st.shardOf(kb)].Handle(t.worker).AppendGetLocked(buf[:0], kb)
		if ok != rv.found || !bytes.Equal(cur, rv.val) {
			return false
		}
		buf = cur
	}
	return true
}

// validateOnly certifies a read-only transaction: under the commit locks
// of every read shard, every cached read must still hold — so the reads
// together form one consistent committed snapshot.
func (m *Manager) validateOnly(t *Txn) error {
	cl, st := m.acquire(t.worker, func(st *topoState) ShardSet {
		lockSet := NewShardSet(len(st.stores))
		for k := range t.reads {
			lockSet.Add(st.shardOf([]byte(k)))
		}
		return lockSet
	})
	ok := m.validateLocked(t, st)
	cl.release()
	if !ok {
		m.stats.Conflicts.Add(1)
		return ErrConflict
	}
	return nil
}

// tryCommit runs one attempt: validate, intent, apply, mark. done=false
// (only) when the intent segment is full and the caller should advance the
// epoch and retry. The write and lock sets are computed inside the commit
// window, from the topology the window runs under.
func (m *Manager) tryCommit(t *Txn) (done bool, err error) {
	var wset ShardSet
	cl, st := m.acquire(t.worker, func(st *topoState) ShardSet {
		wset = NewShardSet(len(st.stores))
		lockSet := NewShardSet(len(st.stores))
		for _, op := range t.writes {
			s := st.shardOf(op.Key)
			wset.Add(s)
			lockSet.Add(s)
		}
		for k := range t.reads {
			lockSet.Add(st.shardOf([]byte(k)))
		}
		return lockSet
	})
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(InjectedCrash); ok {
				// Leave NVM exactly as the hook saw it; only release the
				// volatile locks so the test can crash and reopen.
				cl.release()
				done, err = true, ErrInjected
				return
			}
			panic(r)
		}
	}()

	home := wset.Min()
	if !st.stores[home].Intents().IntentFits(t.writes) {
		cl.release()
		return true, ErrTooLarge
	}

	// Validate the read set under the locks: conflicting commits are
	// excluded, so a passing validation holds through the apply below.
	if !m.validateLocked(t, st) {
		cl.release()
		m.stats.Conflicts.Add(1)
		return true, ErrConflict
	}

	m.point("commit-start")

	// Sequence and intent. seq is drawn under the commit locks, so for
	// conflicting transactions seq order equals commit order — the order
	// recovery replays in. The record carries the topology version, so a
	// crash mid-reshard replays it only if this topology is still the
	// durably live one.
	seq := m.seq.Add(1)
	epochNum := st.stores[home].Epochs().Current()
	entry, ok := st.stores[home].Intents().Writer(t.worker).AppendIntent(seq, epochNum, wset.Word(), st.version, t.writes)
	if !ok {
		cl.release()
		return false, nil
	}
	m.point("intent-durable")

	// Apply through the normal InCLL path. A crash anywhere in here rolls
	// the whole epoch — and with it every partial write — back, and the
	// unmarked intent is ignored.
	for i, op := range t.writes {
		h := st.stores[st.shardOf(op.Key)].Handle(t.worker)
		if op.Delete {
			h.DeleteLocked(op.Key)
		} else {
			h.PutBytesLocked(op.Key, op.Val)
		}
		if m.hook != nil {
			m.hook(fmt.Sprintf("applied-%d", i))
		}
	}

	// The fenced commit mark: the transaction's durability point.
	st.stores[home].Intents().MarkCommitted(entry)
	m.point("commit-durable")

	cl.release()
	m.stats.Committed.Add(1)
	return true, nil
}

// point fires the crash-injection hook, if installed.
func (m *Manager) point(p string) {
	if m.hook != nil {
		m.hook(p)
	}
}
