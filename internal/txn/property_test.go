package txn

// The issue's acceptance property: with a crash injected at every point
// inside Txn.Commit — before/after the intent fence, between every
// applied write, before/after the commit-mark fence — and with the dirty
// cache surviving fully, partially, or not at all, recovery must observe
// either all of the transaction's writes or none, and the bank's total
// balance must be conserved. Run for a single store and for a 4-shard
// cluster whose transfer spans shards.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"incll/internal/nvm"
	"incll/internal/shard"
	"incll/internal/testutil"
)

const (
	bankAccounts = 16
	bankInitBal  = 1000
)

// bank abstracts the single-store and sharded fixtures behind the pieces
// the property needs.
type bank interface {
	manager() *Manager
	get(k []byte) (uint64, bool)
	// crash injects a power failure where each dirty line survives with
	// probability persist, reopens, and returns the replay count.
	crash(persist float64, seed int64) int
	// transferKeys returns the debit account and two credit accounts (for
	// the sharded bank, guaranteed to span at least two shards).
	transferKeys() [3]uint64
}

// ---- single-store bank ----

type singleBank struct{ f *singleFixture }

func newSingleBank(t *testing.T) *singleBank {
	f := newSingle(t)
	for k := uint64(0); k < bankAccounts; k++ {
		f.store.Put(key(k), bankInitBal)
	}
	f.store.Advance()
	return &singleBank{f: f}
}

func (b *singleBank) manager() *Manager            { return b.f.m }
func (b *singleBank) get(k []byte) (uint64, bool)  { return b.f.store.Get(k) }
func (b *singleBank) transferKeys() [3]uint64      { return [3]uint64{0, 1, 2} }
func (b *singleBank) crash(p float64, s int64) int { return b.f.crash(nvm.RandomPolicy(p, s)) }

// ---- sharded bank ----

type shardBank struct {
	cluster *shard.Store
	m       *Manager
	shards  int
}

func newShardBank(t *testing.T, shards int) *shardBank {
	cfg := shard.Config{Shards: shards, Workers: 2, ArenaWords: 1 << 20}
	if shards > 64 {
		// The wide-ShardSet cluster only needs to hold the bank; shrink the
		// per-shard footprint so 128 arenas stay cheap to build per point.
		cfg.ArenaWords, cfg.LogSegWords, cfg.TxnSegWords = 1<<15, 1<<10, 1<<9
	}
	cluster, _ := shard.Open(cfg)
	for k := uint64(0); k < bankAccounts; k++ {
		cluster.Put(key(k), bankInitBal)
	}
	cluster.Advance()
	return &shardBank{cluster: cluster, m: managerFor(cluster), shards: shards}
}

func (b *shardBank) manager() *Manager           { return b.m }
func (b *shardBank) get(k []byte) (uint64, bool) { return b.cluster.Get(k) }

func (b *shardBank) transferKeys() [3]uint64 {
	// Pick accounts so the write set spans at least two shards.
	first := shard.Route(key(0), b.shards)
	for k := uint64(1); k < bankAccounts; k++ {
		if shard.Route(key(k), b.shards) != first {
			return [3]uint64{0, k, (k % (bankAccounts - 1)) + 1}
		}
	}
	panic("router sent every account to one shard")
}

func (b *shardBank) crash(p float64, s int64) int {
	b.cluster.SimulateCrash(p, s)
	var replayed int
	b.cluster, _ = b.cluster.Reopen()
	b.m, replayed = ForCluster(b.cluster)
	return replayed
}

// ---- the property ----

func TestPropertyBankTransferCrashInjection(t *testing.T) {
	t.Run("single-shard", func(t *testing.T) {
		t.Parallel()
		runTransferInjection(t, func() bank { return newSingleBank(t) })
	})
	t.Run("cross-shard", func(t *testing.T) {
		t.Parallel()
		runTransferInjection(t, func() bank { return newShardBank(t, 4) })
	})
	t.Run("cross-shard-wide", func(t *testing.T) {
		// Past the old 64-shard inline-bitmask ceiling: the same atomicity
		// and conservation property on the spilled ShardSet representation.
		t.Parallel()
		runTransferInjection(t, func() bank { return newShardBank(t, 128) })
	})
}

func runTransferInjection(t *testing.T, fresh func() bank) {
	for _, persist := range []float64{0, 0.5, 1} {
		for point := 0; ; point++ {
			completed := runOneInjection(t, fresh(), point, persist)
			if completed {
				break // the hook never reached this index: commit finished
			}
		}
	}
}

// runOneInjection builds a fresh bank, runs one transfer whose commit is
// stopped at hook point index `point`, crashes, recovers, and checks the
// property. Returns true when the commit completed because the protocol
// has fewer than `point` points.
func runOneInjection(t *testing.T, b bank, point int, persist float64) bool {
	t.Helper()
	ks := b.transferKeys()
	debit, credit1, credit2 := key(ks[0]), key(ks[1]), key(ks[2])

	fired := 0
	var stoppedAt string
	b.manager().SetHook(func(p string) {
		if fired == point {
			stoppedAt = p
			panic(InjectedCrash{Point: p})
		}
		fired++
	})

	// Read-modify-write transfer: move 10+7 out of the debit account.
	tx := b.manager().Begin(0)
	dv, _ := tx.Get(debit)
	c1, _ := tx.Get(credit1)
	c2, _ := tx.Get(credit2)
	tx.Put(debit, dv-17)
	tx.Put(credit1, c1+10)
	tx.Put(credit2, c2+7)
	err := tx.Commit()
	b.manager().SetHook(nil)
	if err == nil {
		return true
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("point %d: commit = %v, want ErrInjected", point, err)
	}

	replayed := b.crash(persist, int64(point)*1000+int64(persist*10))

	// Conservation: the total balance never changes.
	var sum uint64
	for k := uint64(0); k < bankAccounts; k++ {
		v, ok := b.get(key(k))
		if !ok {
			t.Fatalf("point %q persist %.1f: account %d missing after recovery", stoppedAt, persist, k)
		}
		sum += v
	}
	if sum != bankAccounts*bankInitBal {
		t.Fatalf("point %q persist %.1f: sum = %d, want %d (conservation violated)",
			stoppedAt, persist, sum, bankAccounts*bankInitBal)
	}

	// Atomicity: the recovered balances are exactly pre-state or exactly
	// post-state, never a mix.
	got := [3]uint64{}
	for i, k := range [3][]byte{debit, credit1, credit2} {
		got[i], _ = b.get(k)
	}
	pre := [3]uint64{bankInitBal, bankInitBal, bankInitBal}
	post := [3]uint64{bankInitBal - 17, bankInitBal + 10, bankInitBal + 7}
	applied := got == post
	if !applied && got != pre {
		t.Fatalf("point %q persist %.1f: balances %v are neither pre %v nor post %v",
			stoppedAt, persist, got, pre, post)
	}

	// Sharper expectations where the protocol pins the outcome: anything
	// before the mark write must roll back; a crash after the mark fence
	// must replay.
	switch {
	case stoppedAt == "commit-durable":
		if !applied || replayed != 1 {
			t.Fatalf("crash after the mark fence: applied=%v replayed=%d, want full replay", applied, replayed)
		}
	case stoppedAt != "mark-written":
		if applied || replayed != 0 {
			t.Fatalf("crash at %q (before the mark): applied=%v replayed=%d, want rollback", stoppedAt, applied, replayed)
		}
	case persist == 0:
		if applied {
			t.Fatalf("unfenced mark with no line surviving: transaction must roll back")
		}
	case persist == 1:
		if !applied {
			t.Fatalf("unfenced mark with every line surviving: transaction must replay")
		}
	}
	return false
}

// TestPropertyBankTransferConcurrent runs many concurrent conflicting
// transfers with retries across random crashes and checks conservation
// after every recovery — the transfer invariant under real contention.
func TestPropertyBankTransferConcurrent(t *testing.T) {
	const (
		workers   = 2
		rounds    = 3
		transfers = 120
	)
	cluster, _ := shard.Open(shard.Config{Shards: 4, Workers: workers, ArenaWords: 1 << 20})
	for k := uint64(0); k < bankAccounts; k++ {
		cluster.Put(key(k), bankInitBal)
	}
	cluster.Advance()
	m := managerFor(cluster)

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < transfers; i++ {
					from := uint64(r.Intn(bankAccounts))
					to := uint64(r.Intn(bankAccounts))
					if from == to {
						continue
					}
					amt := uint64(r.Intn(5) + 1)
					for {
						tx := m.Begin(w)
						fv, _ := tx.Get(key(from))
						tv, _ := tx.Get(key(to))
						if fv < amt {
							tx.Abort()
							break
						}
						tx.Put(key(from), fv-amt)
						tx.Put(key(to), tv+amt)
						err := tx.Commit()
						if err == nil {
							break
						}
						if !errors.Is(err, ErrConflict) {
							panic(fmt.Sprintf("worker %d: commit: %v", w, err))
						}
					}
				}
			}(w, rng.Int63())
		}
		wg.Wait()

		cluster.SimulateCrash(rng.Float64(), rng.Int63())
		cluster, _ = cluster.Reopen()
		m, _ = ForCluster(cluster)

		var sum uint64
		for k := uint64(0); k < bankAccounts; k++ {
			v, ok := cluster.Get(key(k))
			if !ok {
				t.Fatalf("round %d: account %d missing", round, k)
			}
			sum += v
		}
		if sum != bankAccounts*bankInitBal {
			t.Fatalf("round %d: sum = %d, want %d", round, sum, bankAccounts*bankInitBal)
		}
	}
}

// TestPropertyByteValueCommitCrashInjection is the crash-at-every-point
// property for byte-valued transactions: a commit that overwrites one key
// with a multi-KB value, writes a fresh large value, and deletes a third,
// stopped at every protocol point under persist 0/0.5/1. Recovery must
// expose exactly the pre-state or exactly the post-state, byte for byte —
// never a torn value, never a mix.
func TestPropertyByteValueCommitCrashInjection(t *testing.T) {
	pattern := testutil.Pattern
	pre1, pre3 := pattern(1, 1800), pattern(3, 40)
	post1, post2 := pattern(11, 700), pattern(12, 3000)

	for _, persist := range []float64{0, 0.5, 1} {
		for point := 0; ; point++ {
			f := newSingle(t)
			f.store.PutBytes(key(1), pre1)
			f.store.PutBytes(key(3), pre3)
			f.store.Advance()

			fired := 0
			var stoppedAt string
			f.m.SetHook(func(p string) {
				if fired == point {
					stoppedAt = p
					panic(InjectedCrash{Point: p})
				}
				fired++
			})
			tx := f.m.Begin(0)
			tx.PutBytes(key(1), post1)
			tx.PutBytes(key(2), post2)
			tx.Delete(key(3))
			err := tx.Commit()
			f.m.SetHook(nil)
			if err == nil {
				break // fewer than `point` protocol points: commit finished
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("point %d: commit = %v, want ErrInjected", point, err)
			}
			replayed := f.crash(nvm.RandomPolicy(persist, int64(point)*7+int64(persist*10)))

			g1, ok1 := f.store.GetBytes(key(1))
			g2, ok2 := f.store.GetBytes(key(2))
			g3, ok3 := f.store.GetBytes(key(3))
			isPre := ok1 && bytes.Equal(g1, pre1) && !ok2 && ok3 && bytes.Equal(g3, pre3)
			isPost := ok1 && bytes.Equal(g1, post1) && ok2 && bytes.Equal(g2, post2) && !ok3
			if !isPre && !isPost {
				t.Fatalf("point %q persist %.1f replayed %d: state is neither pre nor post "+
					"(k1 %d bytes ok=%v, k2 %d bytes ok=%v, k3 %d bytes ok=%v)",
					stoppedAt, persist, replayed, len(g1), ok1, len(g2), ok2, len(g3), ok3)
			}
			if stoppedAt == "commit-durable" && !isPost {
				t.Fatalf("persist %.1f: crash after the mark fence must replay the byte writes", persist)
			}
			if stoppedAt != "commit-durable" && stoppedAt != "mark-written" && !isPre {
				t.Fatalf("point %q persist %.1f: crash before the mark must roll back", stoppedAt, persist)
			}
		}
	}
}
