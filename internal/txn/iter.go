package txn

import (
	"bytes"
	"sort"

	"incll/internal/core"
	"incll/internal/extlog"
)

// NewIter opens a bidirectional cursor over the transaction's view of the
// store: the committed state with the transaction's own pending writes
// overlaid — buffered puts are visible (including keys the store does not
// hold yet), buffered deletes hide store keys. The write set is
// snapshotted at call time; writes buffered after NewIter do not appear.
//
// Iterated entries are NOT added to the read set: Commit validates point
// reads only, so iteration carries no phantom protection. Use Get on the
// keys a commit must depend on.
func (t *Txn) NewIter(o core.IterOptions) core.Cursor {
	t.check()
	ops := make([]extlog.IntentOp, 0, len(t.writes))
	for _, op := range t.writes {
		if o.LowerBound != nil && bytes.Compare(op.Key, o.LowerBound) < 0 {
			continue
		}
		if o.UpperBound != nil && bytes.Compare(op.Key, o.UpperBound) >= 0 {
			continue
		}
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return bytes.Compare(ops[i].Key, ops[j].Key) < 0 })
	return &overlayIter{base: t.m.topo.Load().iter(t.worker, o), ops: ops}
}

// Overlay cursor position states.
const (
	oFresh = iota
	oAt
	oBefore
	oAfter
)

// overlayIter merges the transaction's sorted pending-write buffer with a
// store cursor. On a key both sides hold, the pending write wins: a put
// replaces the stored value, a delete hides the key.
type overlayIter struct {
	base core.Cursor
	ops  []extlog.IntentOp // sorted ascending, bounds-filtered

	wi     int // head index into ops for the current direction
	state  int
	fwd    bool
	onOp   bool // current entry comes from ops[wi]
	onBoth bool // base sits on the same key (op wins; both advance)
	seek   []byte
}

// settleFwd resolves the smaller of the two heads into the current entry,
// consuming deletes (and the store keys they hide) along the way.
func (o *overlayIter) settleFwd() bool {
	o.fwd = true
	for {
		bv := o.base.Valid()
		ov := o.wi < len(o.ops)
		if !bv && !ov {
			o.state = oAfter
			return false
		}
		c := 1 // op side only
		switch {
		case !ov:
			c = -1 // base side only
		case bv:
			c = bytes.Compare(o.base.Key(), o.ops[o.wi].Key)
		}
		if c < 0 {
			o.onOp, o.onBoth = false, false
			o.state = oAt
			return true
		}
		if o.ops[o.wi].Delete {
			if c == 0 {
				o.base.Next()
			}
			o.wi++
			continue
		}
		o.onOp, o.onBoth = true, c == 0
		o.state = oAt
		return true
	}
}

// settleRev is settleFwd mirrored: the larger head wins, ops[wi] walks
// downward.
func (o *overlayIter) settleRev() bool {
	o.fwd = false
	for {
		bv := o.base.Valid()
		ov := o.wi >= 0
		if !bv && !ov {
			o.state = oBefore
			return false
		}
		c := 1 // op side only
		switch {
		case !ov:
			c = -1 // base side only
		case bv:
			c = bytes.Compare(o.ops[o.wi].Key, o.base.Key())
		}
		if c < 0 {
			o.onOp, o.onBoth = false, false
			o.state = oAt
			return true
		}
		if o.ops[o.wi].Delete {
			if c == 0 {
				o.base.Prev()
			}
			o.wi--
			continue
		}
		o.onOp, o.onBoth = true, c == 0
		o.state = oAt
		return true
	}
}

// First positions the cursor at the smallest key of the overlaid view.
func (o *overlayIter) First() bool {
	o.base.First()
	o.wi = 0
	return o.settleFwd()
}

// Last positions the cursor at the largest key of the overlaid view.
func (o *overlayIter) Last() bool {
	o.base.Last()
	o.wi = len(o.ops) - 1
	return o.settleRev()
}

// SeekGE positions the cursor at the smallest overlaid key ≥ k.
func (o *overlayIter) SeekGE(k []byte) bool {
	o.base.SeekGE(k)
	o.wi = sort.Search(len(o.ops), func(i int) bool { return bytes.Compare(o.ops[i].Key, k) >= 0 })
	return o.settleFwd()
}

// SeekLT positions the cursor at the largest overlaid key < k.
func (o *overlayIter) SeekLT(k []byte) bool {
	o.base.SeekLT(k)
	o.wi = sort.Search(len(o.ops), func(i int) bool { return bytes.Compare(o.ops[i].Key, k) >= 0 }) - 1
	return o.settleRev()
}

// Next advances to the next larger key.
func (o *overlayIter) Next() bool {
	switch o.state {
	case oFresh, oBefore:
		return o.First()
	case oAfter:
		return false
	}
	if !o.fwd {
		o.seek = append(append(o.seek[:0], o.Key()...), 0)
		return o.SeekGE(o.seek)
	}
	if o.onOp {
		if o.onBoth {
			o.base.Next()
		}
		o.wi++
	} else {
		o.base.Next()
	}
	return o.settleFwd()
}

// Prev advances to the next smaller key.
func (o *overlayIter) Prev() bool {
	switch o.state {
	case oFresh, oAfter:
		return o.Last()
	case oBefore:
		return false
	}
	if o.fwd {
		o.seek = append(o.seek[:0], o.Key()...)
		return o.SeekLT(o.seek)
	}
	if o.onOp {
		if o.onBoth {
			o.base.Prev()
		}
		o.wi--
	} else {
		o.base.Prev()
	}
	return o.settleRev()
}

// Valid reports whether the cursor is positioned at an entry.
func (o *overlayIter) Valid() bool { return o.state == oAt }

// Key returns the current key; valid until the next positioning call.
func (o *overlayIter) Key() []byte {
	if o.state != oAt {
		return nil
	}
	if o.onOp {
		return o.ops[o.wi].Key
	}
	return o.base.Key()
}

// Value returns the current value; valid until the next positioning call.
func (o *overlayIter) Value() []byte {
	if o.state != oAt {
		return nil
	}
	if o.onOp {
		return o.ops[o.wi].Val
	}
	return o.base.Value()
}

// ValueUint64 is the uint64 view of the current value, delegated so the
// base cursor's inline-word fast path applies to store entries.
func (o *overlayIter) ValueUint64() uint64 {
	if o.state != oAt {
		return 0
	}
	if o.onOp {
		return core.DecodeValue(o.ops[o.wi].Val)
	}
	return o.base.ValueUint64()
}

// Close releases the underlying store cursor.
func (o *overlayIter) Close() {
	o.base.Close()
	o.state = oAfter
}
