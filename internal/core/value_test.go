package core

import (
	"bytes"
	"math/rand"
	"testing"

	"incll/internal/nvm"
	"incll/internal/testutil"
)

// patternValue builds a deterministic payload so torn recoveries are
// detectable byte-by-byte.
var patternValue = testutil.Pattern

func TestBytesRoundTripAllSizes(t *testing.T) {
	_, s := newStore(t)
	sizes := []int{0, 1, 2, 5, 6, 7, 8, 9, 63, 64, 100, 1000, 1024, 4096, MaxValueBytes}
	for i, n := range sizes {
		k := EncodeUint64(uint64(i))
		v := patternValue(uint64(i), n)
		if !s.PutBytes(k, v) {
			t.Fatalf("size %d: not inserted", n)
		}
		got, ok := s.GetBytes(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("size %d: roundtrip mismatch (%d bytes, ok=%v)", n, len(got), ok)
		}
	}
	// Overwrites across representation boundaries: inline→block,
	// block→inline, block→different class.
	k := EncodeUint64(999)
	s.PutBytes(k, []byte("seed"))
	for _, n := range []int{3, 2000, 4, 100, 8168, 0, 700} {
		v := patternValue(uint64(n), n)
		if s.PutBytes(k, v) {
			t.Fatalf("size %d: overwrite reported insert", n)
		}
		if got, _ := s.GetBytes(k); !bytes.Equal(got, v) {
			t.Fatalf("size %d: overwrite mismatch", n)
		}
	}
	if !s.Delete(k) {
		t.Fatal("delete failed")
	}
	if _, ok := s.GetBytes(k); ok {
		t.Fatal("deleted key still present")
	}
	// ScanBytes returns every remaining value exactly.
	seen := 0
	s.ScanBytes(nil, -1, func(kb, v []byte) bool {
		i := deVK(kb)
		if !bytes.Equal(v, patternValue(i, sizes[i])) {
			t.Fatalf("scan key %d: value mismatch", i)
		}
		seen++
		return true
	})
	if seen != len(sizes) {
		t.Fatalf("scan saw %d keys, want %d", seen, len(sizes))
	}
}

func deVK(b []byte) uint64 {
	var k uint64
	for _, c := range b {
		k = k<<8 | uint64(c)
	}
	return k
}

func TestPutBytesOversizePanics(t *testing.T) {
	_, s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("PutBytes beyond MaxValueBytes did not panic")
		}
	}()
	s.PutBytes(EncodeUint64(1), make([]byte, MaxValueBytes+1))
}

// TestLargeValueCrashAtEveryOp is the crash-at-every-point property for
// large-value Put / overwrite / Delete: a committed prefix, then exactly
// p doomed operations for every prefix length p, then a crash under three
// adversarial persistence policies. Recovery must expose the committed
// values byte-exactly — all-or-nothing, never torn.
func TestLargeValueCrashAtEveryOp(t *testing.T) {
	const keys = 6
	type op struct {
		k   uint64
		n   int // value size; -1 = delete
		del bool
	}
	var script []op
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 24; i++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(5) {
		case 0:
			script = append(script, op{k: k, del: true})
		default:
			script = append(script, op{k: k, n: []int{3, 40, 900, 2000, 8168}[rng.Intn(5)]})
		}
	}

	for points := 0; points <= len(script); points++ {
		for policy := 0; policy < 3; policy++ {
			a := nvm.New(nvm.Config{Words: testArenaWords})
			s, _ := Open(a, testConfig())

			committed := map[uint64][]byte{}
			for i := uint64(0); i < keys; i++ {
				v := patternValue(i+1000, 1500)
				s.PutBytes(EncodeUint64(i), v)
				committed[i] = v
			}
			s.Advance()

			// Doomed suffix: the first `points` ops of the script.
			for i, o := range script[:points] {
				if o.del {
					s.Delete(EncodeUint64(o.k))
				} else {
					s.PutBytes(EncodeUint64(o.k), patternValue(uint64(i)*31+o.k, o.n))
				}
			}
			switch policy {
			case 0:
				a.Crash(nvm.PersistNone)
			case 1:
				a.Crash(nvm.RandomPolicy(0.5, int64(points)))
			case 2:
				a.Crash(nvm.EvenOddPolicy(points % 2))
			}
			s2 := reopen(t, a, testConfig())
			for k, v := range committed {
				got, ok := s2.GetBytes(EncodeUint64(k))
				if !ok {
					t.Fatalf("point %d policy %d: committed key %d missing", points, policy, k)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("point %d policy %d: key %d torn (%d bytes)", points, policy, k, len(got))
				}
			}
			if n := s2.Scan(nil, -1, func([]byte, uint64) bool { return true }); n != keys {
				t.Fatalf("point %d policy %d: scan saw %d keys", points, policy, n)
			}
		}
	}
}

// Property: random byte-valued op sequences with random crash points
// recover the committed model byte-exactly.
func TestPropertyByteValuesCrashEqualsCommittedModel(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		a := nvm.New(nvm.Config{Words: testArenaWords})
		s, _ := Open(a, testConfig())
		rng := rand.New(rand.NewSource(seed))
		committed := map[uint64]string{}
		working := map[uint64]string{}
		for i := 0; i < 900; i++ {
			k := uint64(rng.Intn(300))
			switch rng.Intn(6) {
			case 0:
				s.Delete(EncodeUint64(k))
				delete(working, k)
			default:
				v := patternValue(uint64(i)<<16|k, rng.Intn(2500))
				s.PutBytes(EncodeUint64(k), v)
				working[k] = string(v)
			}
			if i%37 == 0 {
				s.Advance()
				committed = map[uint64]string{}
				for k, v := range working {
					committed[k] = v
				}
			}
		}
		a.Crash(nvm.RandomPolicy(float64(seed%5)/4, seed))
		s2 := reopen(t, a, testConfig())
		for k, v := range committed {
			got, ok := s2.GetBytes(EncodeUint64(k))
			if !ok || string(got) != v {
				t.Fatalf("seed %d: key %d mismatch after recovery (ok=%v, %d vs %d bytes)",
					seed, k, ok, len(got), len(v))
			}
		}
		if n := s2.Scan(nil, -1, func([]byte, uint64) bool { return true }); n != len(committed) {
			t.Fatalf("seed %d: scan saw %d keys, committed %d", seed, n, len(committed))
		}
	}
}

// TestValueHeapNoLeakAcrossCrashRounds runs 100 crash/recover rounds of
// large-value overwrites. Freed blocks must recycle through the limbo
// lists, so the heap's wilderness high-water mark plateaus. Crash-timing
// randomness lets the steady-state pool wobble by a refill or two, but a
// genuine leak (superseded or orphaned blocks never reclaimed) grows by
// ~keys blocks per round and blows through the slack within a few rounds.
func TestValueHeapNoLeakAcrossCrashRounds(t *testing.T) {
	const (
		keys   = 40
		rounds = 100
		warmup = 30
		slack  = 8192 // words: two wilderness refills of headroom
	)
	a := nvm.New(nvm.Config{Words: testArenaWords})
	cfg := testConfig()
	s, _ := Open(a, cfg)

	var used uint64
	for round := 0; round < rounds; round++ {
		for i := uint64(0); i < keys; i++ {
			// Same size class every round, fresh contents: each overwrite
			// allocates a new block and frees the old one.
			s.PutBytes(EncodeUint64(i), patternValue(uint64(round)<<16|i, 1200))
		}
		s.Advance() // commit: superseded blocks splice into the free lists
		// Doomed overwrites, then a crash: the rolled-back epoch's fresh
		// blocks must be reclaimed by the allocator rollback.
		for i := uint64(0); i < keys; i++ {
			s.PutBytes(EncodeUint64(i), patternValue(uint64(round)<<17|i, 1200))
		}
		a.Crash(nvm.RandomPolicy(0.5, int64(round)))
		s = reopen(t, a, cfg)
		if round == warmup {
			used = s.HeapUsed()
		}
		if round > warmup {
			if got := s.HeapUsed(); got > used+slack {
				t.Fatalf("round %d: heap high-water mark grew %d → %d words (leak)",
					round, used, got)
			}
		}
	}
	// The committed values are still intact after the churn.
	for i := uint64(0); i < keys; i++ {
		v, ok := s.GetBytes(EncodeUint64(i))
		if !ok || len(v) != 1200 {
			t.Fatalf("key %d lost after %d rounds (%d bytes, %v)", i, rounds, len(v), ok)
		}
	}
}
