package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incll/internal/alloc"
	"incll/internal/epoch"
	"incll/internal/extlog"
	"incll/internal/nvm"
	"incll/internal/obs"
)

// Config sizes and parameterizes a Store.
type Config struct {
	// Workers is the number of concurrent worker threads; each worker must
	// use its own Handle. Sizes the allocator shards and log segments.
	Workers int

	// LogSegWords is the per-worker external-log segment size in words.
	// Must be large enough for one epoch's worth of logged nodes.
	LogSegWords uint64

	// TxnSegWords is the per-worker transaction intent segment size in
	// words (see internal/txn). Must be large enough for one epoch's worth
	// of committed write sets per worker.
	TxnSegWords uint64

	// HeapWords is the durable heap size in words (nodes, value buffers,
	// layer anchors all live there).
	HeapWords uint64

	// DisableInCLL switches the store to the paper's LOGGING ablation:
	// every first modification per node per epoch goes to the external log
	// instead of the in-cache-line logs (used by Figures 7 and 8).
	DisableInCLL bool

	// Committed is an optional cross-store commit oracle for stores whose
	// epoch boundaries are driven by a sharding coordinator: it reports
	// whether epoch e was globally committed even though this store's own
	// header never recorded the commit (the window between the
	// coordinator's durable commit record and this store's local header
	// update). nil means the store commits its own epochs (the default).
	// See epoch.OpenCoordinated and internal/shard.
	Committed func(e uint64) bool

	// Trace receives protocol events (checkpoint phases, recovery replay)
	// and StopTheWorld the measured duration of every epoch boundary's
	// stop-the-world window. Both optional; see internal/obs. Shard tags
	// this store's events in a multi-store cluster.
	Trace        *obs.Tracer
	StopTheWorld *obs.Histogram
	Shard        int

	// Phases, when set, receives sampled op-latency attribution (see
	// obs.PhaseSet and DESIGN.md §12): Open threads it through the epoch
	// manager, arena, and allocator, and the op entry points lap it.
	// Optional; every consumer is nil-safe.
	Phases *obs.PhaseSet
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.LogSegWords == 0 {
		c.LogSegWords = 1 << 20
	}
	if c.TxnSegWords == 0 {
		c.TxnSegWords = 1 << 14
	}
	if c.HeapWords == 0 {
		c.HeapWords = 1 << 24
	}
}

// ChangeOp identifies one published mutation kind (see ChangeSink).
type ChangeOp uint8

const (
	// ChangePut is a put of a byte value (uint64 puts publish their
	// canonical byte encoding).
	ChangePut ChangeOp = 1
	// ChangeDelete is a deletion; the value is nil.
	ChangeDelete ChangeOp = 2
)

// ChangeSink receives every mutation the store applies, in application
// order per handle, tagged with the epoch it belongs to. Publish runs on
// the mutating worker's goroutine with the epoch guard held (so the epoch
// cannot advance mid-publish) and must not retain k or v past the call.
// The change stream's consistent prefix is defined by the epoch machinery:
// an entry is part of the durable history exactly when its epoch commits
// (epoch.Manager.OnCommit). Used by internal/repl's change journal.
type ChangeSink interface {
	Publish(op ChangeOp, k, v []byte, epoch uint64)
}

// Stats counts store-level events. Each field is a striped counter
// (internal/obs): writers on the leaf-locked paths pay one relaxed atomic
// add on their own worker's padded stripe; Load sums the stripes.
type Stats struct {
	LoggedNodes    obs.Counter // external-log entries written (Figure 7's metric)
	InCLLPerm      obs.Counter // InCLLp first-touch captures
	InCLLVal       obs.Counter // ValInCLL captures (first-touch or claimed)
	LazyRecoveries obs.Counter // nodes repaired lazily after a restart
	ValueHeapBytes obs.Counter // bytes written out-of-place to the value heap
	Puts           obs.Counter
	Gets           obs.Counter
	Deletes        obs.Counter
	Scans          obs.Counter
}

// layoutFingerprint hashes the config fields the arena's region offsets
// are derived from (FNV-1a), so reopening with any layout-changing change
// — not just one that happens to collide in a bit-packing — panics.
func layoutFingerprint(cfg Config) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range [3]uint64{uint64(cfg.Workers), cfg.LogSegWords, cfg.TxnSegWords} {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xFF)) * prime
			v >>= 8
		}
	}
	if h == 0 {
		h = 1 // 0 is the "unstamped" sentinel
	}
	return h
}

// Tree-header root cell layout (one line).
const (
	tRoot      = 0
	tRootInCLL = 1
	tRootEpoch = 2
	// tFingerprint guards against reopening with a layout-changing config:
	// the arena's region offsets are derived from Workers and LogSegWords,
	// so those must match across restarts.
	tFingerprint = 3
)

// Layer-anchor payload layout (one line-resident object).
const (
	aRoot              = 0
	aRootInCLL         = 1
	aRootEpoch         = 2
	anchorPayloadWords = 6
)

// Store is a durable Masstree plus all of its substrates: the epoch
// manager, durable allocator, and external log, all over one NVM arena.
type Store struct {
	arena   *nvm.Arena
	mgr     *epoch.Manager
	alloc   *alloc.Allocator
	log     *extlog.Log
	intents *extlog.IntentLog
	cfg     Config

	hdrOff   uint64 // tree-header root cell
	recLocks []sync.Mutex

	handles   []Handle
	size      atomic.Int64
	recovered int

	// changes is the registered ChangeSink, if any. An atomic pointer so
	// the replication hub can attach to a live store; the write path pays
	// one atomic load when no sink is attached.
	changes atomic.Pointer[ChangeSink]

	// phases is the sampled latency-attribution timer (nil-safe; see
	// Config.Phases). Kept on the store so the op entry points reach it
	// with one pointer chase.
	phases *obs.PhaseSet

	stats Stats
}

// InstrumentPhases attaches (nil: detaches) the sampled
// latency-attribution timer after open, re-threading it through the
// arena, allocator, and epoch manager exactly as Config.Phases would at
// Open. The harness uses this to exclude its preload from the attribution
// histograms; callers must be quiescent for the swap.
func (s *Store) InstrumentPhases(ph *obs.PhaseSet) {
	s.phases = ph
	s.arena.Instrument(ph)
	s.alloc.Instrument(ph)
	s.mgr.InstrumentPhases(ph)
}

// Open attaches a Store to the arena, reserving (or re-deriving, after a
// restart) its regions, and performs full recovery: epoch analysis, root
// and allocator head repair, external-log replay. Nodes are then repaired
// lazily on first access. The returned status tells whether this was a
// fresh start, a clean restart, or a crash recovery.
//
// The caller must have called arena.ResetReservations before re-opening an
// arena that carries a previous execution's state.
func Open(a *nvm.Arena, cfg Config) (*Store, epoch.Status) {
	cfg.setDefaults()
	if a.Size() >= 1<<44 {
		// The ValInCLL captures value words in 44 bits (see layout.go);
		// a 128 TiB simulated arena is far beyond anything this process
		// could host anyway.
		panic("core: arena exceeds the 2^44-word value-word address space")
	}
	eOff := a.Reserve(epoch.HeaderWords)
	hdr := a.Reserve(nvm.WordsPerLine)
	metaOff := a.Reserve(alloc.MetaWords(cfg.Workers))
	logOff := a.Reserve(extlog.RegionWords(cfg.LogSegWords, cfg.Workers))
	txnOff := a.Reserve(extlog.IntentRegionWords(cfg.TxnSegWords, cfg.Workers))
	heapOff := a.Reserve(cfg.HeapWords)

	mgr, status := epoch.OpenCoordinated(a, eOff, cfg.Committed)
	fp := layoutFingerprint(cfg)
	if old := a.Load(hdr + tFingerprint); old != 0 && old != fp {
		panic(fmt.Sprintf("core: arena was created with a different layout "+
			"(Workers/LogSegWords/TxnSegWords fingerprint %#x, now %#x); reopen with the original Config", old, fp))
	}
	s := &Store{
		arena:    a,
		mgr:      mgr,
		cfg:      cfg,
		hdrOff:   hdr,
		recLocks: make([]sync.Mutex, 1024),
		phases:   cfg.Phases,
	}
	// Attribution reaches below the store: fences time themselves in the
	// arena, allocations in the allocator (via alloc.New below), and the
	// epoch manager charges its world-lock wait.
	a.Instrument(cfg.Phases)
	// Repair the root cell eagerly (a single line).
	if mgr.IsFailed(a.Load(hdr + tRootEpoch)) {
		a.Store(hdr+tRoot, a.Load(hdr+tRootInCLL))
		a.Store(hdr+tRootEpoch, mgr.Current())
	}
	// Stamp the layout fingerprint durably on first open. Sharing the epoch
	// header's fence keeps this off any hot path.
	if a.Load(hdr+tFingerprint) == 0 {
		a.Store(hdr+tFingerprint, fp)
		a.Writeback(hdr)
		a.Fence()
	}
	s.alloc = alloc.New(a, mgr, metaOff, heapOff, cfg.HeapWords, cfg.Workers)
	s.alloc.Instrument(cfg.Phases)
	s.log = extlog.New(a, mgr, logOff, cfg.LogSegWords, cfg.Workers)
	s.intents = extlog.NewIntentLog(a, mgr, txnOff, cfg.TxnSegWords, cfg.Workers)
	// Replay pre-images of the failed epoch, flush the repaired state, and
	// retire the log generation. Also persists the root/allocator repairs
	// above. Everything else recovers lazily.
	mgr.Instrument(cfg.Trace, cfg.StopTheWorld, cfg.Shard)
	mgr.InstrumentPhases(cfg.Phases)
	recStart := time.Now()
	s.recovered = s.log.Recover()
	if status == epoch.CrashRecovered {
		cfg.Trace.Record(obs.EvRecoveryReplay, cfg.Shard, mgr.Current(),
			time.Since(recStart), int64(s.recovered))
	}

	s.handles = make([]Handle, cfg.Workers)
	for i := range s.handles {
		s.handles[i] = Handle{
			s:  s,
			lw: s.log.Writer(i),
			ah: s.alloc.Handle(i),
			w:  i,
		}
	}
	return s, status
}

// RebuildLen walks the tree once to rebuild the transient Len counter
// after a restart. Optional: recovery itself is lazy and does not need it,
// so it is not part of Open (the paper's recovery cost excludes any full
// walk). Returns the recomputed count.
func (s *Store) RebuildLen() int {
	var n int64
	s.handles[0].Scan(nil, -1, func([]byte, uint64) bool {
		n++
		return true
	})
	s.size.Store(n)
	return int(n)
}

// RecoveredLogEntries reports how many external-log pre-images the last
// Open applied.
func (s *Store) RecoveredLogEntries() int { return s.recovered }

// Handle returns worker i's handle. Each concurrent worker must use its
// own handle (it owns a log writer segment and an allocator shard).
func (s *Store) Handle(i int) Handle { return s.handles[i] }

// Arena returns the underlying simulated NVM.
func (s *Store) Arena() *nvm.Arena { return s.arena }

// Epochs returns the epoch manager.
func (s *Store) Epochs() *epoch.Manager { return s.mgr }

// Log returns the external log.
func (s *Store) Log() *extlog.Log { return s.log }

// Intents returns the transaction intent log (see internal/txn). The store
// itself never writes to it; the transaction manager owns its protocol.
func (s *Store) Intents() *extlog.IntentLog { return s.intents }

// SetChangeSink registers cs to receive every subsequent mutation (nil
// detaches). Safe to call on a live store; entries published earlier in
// the current epoch are not replayed, which is sound for the snapshot
// protocol because a snapshot scan starting after attachment observes them
// directly (see internal/repl).
func (s *Store) SetChangeSink(cs ChangeSink) {
	if cs == nil {
		s.changes.Store(nil)
		return
	}
	s.changes.Store(&cs)
}

// publish forwards one applied mutation to the registered sink, if any.
// Called with the epoch guard held.
func (s *Store) publish(op ChangeOp, k, v []byte) {
	if p := s.changes.Load(); p != nil {
		(*p).Publish(op, k, v, s.mgr.Current())
	}
}

// Stats returns the store's counters.
func (s *Store) Stats() *Stats { return &s.stats }

// Len returns the number of live keys.
func (s *Store) Len() int { return int(s.size.Load()) }

// HeapUsed reports the words the durable heap has ever carved from its
// wilderness. It plateaus once the working set recycles through the free
// lists — the signal the value-heap leak tests watch.
func (s *Store) HeapUsed() uint64 { return s.alloc.Used() }

// LimboDepth reports how many freed heap objects await reclamation at the
// next epoch boundary (see alloc.Allocator.LimboDepth).
func (s *Store) LimboDepth() int64 { return s.alloc.LimboDepth() }

// Advance ends the current epoch: quiesce, flush, begin the next. Returns
// the number of cache lines flushed.
func (s *Store) Advance() int { return s.mgr.Advance() }

// StartTicker advances epochs every interval (the paper uses 64 ms).
func (s *Store) StartTicker(interval time.Duration) { s.mgr.StartTicker(interval) }

// StopTicker stops the background ticker.
func (s *Store) StopTicker() { s.mgr.StopTicker() }

// Shutdown flushes everything and marks a clean shutdown.
func (s *Store) Shutdown() { s.mgr.Shutdown() }

// Convenience single-threaded API on worker 0's handle.

// Get returns the value stored under k.
func (s *Store) Get(k []byte) (uint64, bool) { return s.handles[0].Get(k) }

// GetBytes returns a copy of the byte value stored under k.
func (s *Store) GetBytes(k []byte) ([]byte, bool) { return s.handles[0].GetBytes(k) }

// Put stores v under k; reports whether k was newly inserted.
func (s *Store) Put(k []byte, v uint64) bool { return s.handles[0].Put(k, v) }

// PutBytes stores the byte value v under k; reports whether k was newly
// inserted.
func (s *Store) PutBytes(k []byte, v []byte) bool { return s.handles[0].PutBytes(k, v) }

// Delete removes k; reports whether it was present.
func (s *Store) Delete(k []byte) bool { return s.handles[0].Delete(k) }

// Scan visits up to max keys ≥ start in order.
func (s *Store) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return s.handles[0].Scan(start, max, fn)
}

// ScanBytes is Scan delivering byte values.
func (s *Store) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	return s.handles[0].ScanBytes(start, max, fn)
}

// ---- root cells ----

// rootCell is an InCLL-protected root pointer: the tree header for layer 0
// and one allocated anchor object per deeper layer. All three words share
// a cache line, so the undo-copy → tag → mutate sequence is PCSO-ordered.
type rootCell struct {
	s   *Store
	off uint64
}

func (c rootCell) root() uint64 {
	c.lazyRecover()
	return c.s.arena.Load(c.off + tRoot)
}

// lazyRecover repairs an anchor cell on first access after a restart (the
// layer-0 header is repaired eagerly in Open, and this is then a no-op).
func (c rootCell) lazyRecover() {
	a := c.s.arena
	tag := a.Load(c.off + tRootEpoch)
	if tag >= c.s.mgr.CurrentExec() {
		return
	}
	lk := &c.s.recLocks[c.off%uint64(len(c.s.recLocks))]
	lk.Lock()
	defer lk.Unlock()
	tag = a.Load(c.off + tRootEpoch)
	if tag >= c.s.mgr.CurrentExec() {
		return
	}
	if c.s.mgr.IsFailed(tag) {
		a.Store(c.off+tRoot, a.Load(c.off+tRootInCLL))
	}
	a.Store(c.off+tRootInCLL, a.Load(c.off+tRoot))
	a.Store(c.off+tRootEpoch, c.s.mgr.CurrentExec())
}

// logCell captures the cell's undo state for the current epoch (first
// touch only).
func (c rootCell) logCell(cur uint64) {
	a := c.s.arena
	if a.Load(c.off+tRootEpoch) != cur {
		a.Store(c.off+tRootInCLL, a.Load(c.off+tRoot))
		a.Store(c.off+tRootEpoch, cur)
	}
}

// setRoot updates the root pointer with InCLL protection. Callers
// serialize structurally (the old root's lock is held during splits).
func (c rootCell) setRoot(newRoot, cur uint64) {
	c.logCell(cur)
	c.s.arena.Store(c.off+tRoot, newRoot)
}

// casRoot installs the first root of an empty cell.
func (c rootCell) casRoot(old, newRoot, cur uint64) bool {
	c.logCell(cur)
	return c.s.arena.CompareAndSwap(c.off+tRoot, old, newRoot)
}
