package core

import (
	"math/rand"
	"testing"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

const testArenaWords = 1 << 22

func testConfig() Config {
	return Config{Workers: 2, LogSegWords: 1 << 16, HeapWords: 1 << 20}
}

func newStore(t testing.TB) (*nvm.Arena, *Store) {
	t.Helper()
	a := nvm.New(nvm.Config{Words: testArenaWords})
	s, st := Open(a, testConfig())
	if st != epoch.FreshStart {
		t.Fatalf("fresh arena opened with status %v", st)
	}
	return a, s
}

func reopen(t testing.TB, a *nvm.Arena, cfg Config) *Store {
	t.Helper()
	a.ResetReservations()
	s, _ := Open(a, cfg)
	return s
}

// verifyModel checks that the store holds exactly the model's contents.
func verifyModel(t *testing.T, s *Store, model map[uint64]uint64, ctx string) {
	t.Helper()
	for k, v := range model {
		got, ok := s.Get(EncodeUint64(k))
		if !ok || got != v {
			t.Fatalf("%s: key %d = %d,%v want %d", ctx, k, got, ok, v)
		}
	}
	// Scan must visit exactly len(model) keys, in order, with matching
	// values.
	var prev uint64
	first := true
	n := s.Scan(nil, -1, func(k []byte, v uint64) bool {
		ik := uint64(k[0])<<56 | uint64(k[1])<<48 | uint64(k[2])<<40 | uint64(k[3])<<32 |
			uint64(k[4])<<24 | uint64(k[5])<<16 | uint64(k[6])<<8 | uint64(k[7])
		if want, ok := model[ik]; !ok || want != v {
			t.Fatalf("%s: scan saw key %d = %d (model: %d, present %v)", ctx, ik, v, want, ok)
		}
		if !first && ik <= prev {
			t.Fatalf("%s: scan order violated", ctx)
		}
		first, prev = false, ik
		return true
	})
	if n != len(model) {
		t.Fatalf("%s: scan visited %d keys, model has %d", ctx, n, len(model))
	}
}

func TestPutGetDeleteBasic(t *testing.T) {
	_, s := newStore(t)
	if _, ok := s.Get(EncodeUint64(1)); ok {
		t.Fatal("empty store returned a value")
	}
	if !s.Put(EncodeUint64(1), 100) {
		t.Fatal("first put reported update")
	}
	if s.Put(EncodeUint64(1), 200) {
		t.Fatal("overwrite reported insert")
	}
	if v, ok := s.Get(EncodeUint64(1)); !ok || v != 200 {
		t.Fatalf("get = %d,%v", v, ok)
	}
	if !s.Delete(EncodeUint64(1)) {
		t.Fatal("delete failed")
	}
	if _, ok := s.Get(EncodeUint64(1)); ok {
		t.Fatal("deleted key present")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	_, s := newStore(t)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Put(EncodeUint64(uint64(i*7919%n)), uint64(i))
	}
	for i := 0; i < n; i++ {
		if _, ok := s.Get(EncodeUint64(uint64(i))); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestVariableLengthAndLayeredKeys(t *testing.T) {
	_, s := newStore(t)
	keys := []string{
		"", "a", "ab", "abcdefgh", "abcdefghi", "abcdefgh12345678",
		"abcdefgh123456789", "abc\x00", "zzzzzzzzzzzzzzzzzzzzzzzzzzzz",
	}
	for i, k := range keys {
		s.Put([]byte(k), uint64(i+1))
	}
	for i, k := range keys {
		v, ok := s.Get([]byte(k))
		if !ok || v != uint64(i+1) {
			t.Fatalf("key %q = %d,%v want %d", k, v, ok, i+1)
		}
	}
	for _, k := range []string{"abcdefgh1", "zz", "abc"} {
		if _, ok := s.Get([]byte(k)); ok {
			t.Fatalf("phantom key %q", k)
		}
	}
	if !s.Delete([]byte("abcdefghi")) {
		t.Fatal("layered delete failed")
	}
	if _, ok := s.Get([]byte("abcdefghi")); ok {
		t.Fatal("deleted layered key present")
	}
}

func TestScanOrderAndLimit(t *testing.T) {
	_, s := newStore(t)
	perm := rand.New(rand.NewSource(3)).Perm(2000)
	for _, i := range perm {
		s.Put(EncodeUint64(uint64(i)), uint64(i*2))
	}
	var got []uint64
	n := s.Scan(EncodeUint64(500), 40, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if n != 40 {
		t.Fatalf("scan visited %d", n)
	}
	for i, v := range got {
		if v != uint64((500+i)*2) {
			t.Fatalf("scan[%d] = %d", i, v)
		}
	}
}

func TestCleanShutdownRestartKeepsEverything(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 5000; i++ {
		s.Put(EncodeUint64(i), i*3)
		model[i] = i * 3
	}
	s.Shutdown()
	a.Crash(nvm.PersistNone) // power loss after clean shutdown

	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "clean restart")
	if n := s2.RebuildLen(); n != len(model) {
		t.Fatalf("RebuildLen = %d after restart, want %d", n, len(model))
	}
	if s2.Len() != len(model) {
		t.Fatalf("Len = %d after rebuild, want %d", s2.Len(), len(model))
	}
}

func TestCrashRollsBackToEpochStart(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 3000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance() // commit

	// Doomed epoch: updates, inserts, deletes.
	for i := uint64(0); i < 1000; i++ {
		s.Put(EncodeUint64(i), 999999)
		s.Put(EncodeUint64(100000+i), 1)
		s.Delete(EncodeUint64(2000 + i))
	}
	a.Crash(nvm.RandomPolicy(0.5, 42))

	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "after crash")
}

func TestCrashManyPoliciesAndSeeds(t *testing.T) {
	policies := []struct {
		name string
		mk   func(seed int64) nvm.Policy
	}{
		{"none", func(int64) nvm.Policy { return nvm.PersistNone }},
		{"all", func(int64) nvm.Policy { return nvm.PersistAll }},
		{"half", func(s int64) nvm.Policy { return nvm.RandomPolicy(0.5, s) }},
		{"tenth", func(s int64) nvm.Policy { return nvm.RandomPolicy(0.1, s) }},
		{"evenodd", func(s int64) nvm.Policy { return nvm.EvenOddPolicy(int(s)) }},
	}
	for _, pol := range policies {
		for seed := int64(0); seed < 6; seed++ {
			a := nvm.New(nvm.Config{Words: testArenaWords})
			s, _ := Open(a, testConfig())
			rng := rand.New(rand.NewSource(seed))
			model := map[uint64]uint64{}
			// A few committed epochs of random churn.
			for ep := 0; ep < 3; ep++ {
				for i := 0; i < 700; i++ {
					k := uint64(rng.Intn(1500))
					switch rng.Intn(5) {
					case 0:
						s.Delete(EncodeUint64(k))
						delete(model, k)
					default:
						v := rng.Uint64() % 1000000
						s.Put(EncodeUint64(k), v)
						model[k] = v
					}
				}
				s.Advance()
			}
			// Doomed epoch.
			for i := 0; i < 700; i++ {
				k := uint64(rng.Intn(1500))
				if rng.Intn(5) == 0 {
					s.Delete(EncodeUint64(k))
				} else {
					s.Put(EncodeUint64(k), rng.Uint64())
				}
			}
			a.Crash(pol.mk(seed))
			s2 := reopen(t, a, testConfig())
			verifyModel(t, s2, model, pol.name)
		}
	}
}

func TestRepeatedCrashesAccumulate(t *testing.T) {
	a := nvm.New(nvm.Config{Words: testArenaWords})
	s, _ := Open(a, testConfig())
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 6; round++ {
		// Committed work.
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(800))
			v := rng.Uint64() % 1000
			s.Put(EncodeUint64(k), v)
			model[k] = v
		}
		s.Advance()
		// Doomed work.
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(800))
			if rng.Intn(4) == 0 {
				s.Delete(EncodeUint64(k))
			} else {
				s.Put(EncodeUint64(k), rng.Uint64())
			}
		}
		a.Crash(nvm.RandomPolicy(0.4, int64(round)))
		s = reopen(t, a, testConfig())
		verifyModel(t, s, model, "round")
	}
}

func TestCrashDuringDoomedSplits(t *testing.T) {
	// Commit a small tree, then insert enough in the doomed epoch to force
	// splits (including interior splits), then crash.
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 100; i++ {
		s.Put(EncodeUint64(i*1000), i)
		model[i*1000] = i
	}
	s.Advance()
	for i := uint64(0); i < 30000; i++ {
		s.Put(EncodeUint64(i*3+1), i)
	}
	for seedPhase, pol := range []nvm.Policy{nvm.PersistAll, nvm.PersistNone, nvm.RandomPolicy(0.5, 5)} {
		_ = seedPhase
		a.Crash(pol)
		s = reopen(t, a, testConfig())
		verifyModel(t, s, model, "doomed splits")
		// Crash again without any new work: state must be stable.
	}
}

func TestCrashAfterDeletesOnly(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 2000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	for i := uint64(0); i < 2000; i += 2 {
		s.Delete(EncodeUint64(i))
	}
	a.Crash(nvm.RandomPolicy(0.7, 13))
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "deletes rolled back")
}

func TestCommittedDeletesSurvive(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 2000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	for i := uint64(0); i < 2000; i += 3 {
		s.Delete(EncodeUint64(i))
		delete(model, i)
	}
	s.Advance()
	a.Crash(nvm.PersistNone)
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "committed deletes")
}

func TestMixedInsertDeleteSameEpochForcesLog(t *testing.T) {
	// Remove-then-insert into one node within one epoch must fall back on
	// the external log (insAllowed=false) and still recover correctly.
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 14; i++ { // exactly one leaf
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	s.Delete(EncodeUint64(3))
	s.Put(EncodeUint64(100), 100) // same leaf: insert after remove → log
	if s.Stats().LoggedNodes.Load() == before {
		t.Fatal("remove-then-insert did not use the external log")
	}
	a.Crash(nvm.RandomPolicy(0.5, 21))
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "mixed insert/delete")
}

func TestConsecutiveInsertsUseInCLLOnly(t *testing.T) {
	// Multiple inserts into one node in one epoch need only InCLLp — no
	// external logging (paper §4.1.1).
	_, s := newStore(t)
	s.Put(EncodeUint64(0), 0)
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	for i := uint64(1); i < 10; i++ { // fits in the first leaf
		s.Put(EncodeUint64(i), i)
	}
	if got := s.Stats().LoggedNodes.Load(); got != before {
		t.Fatalf("consecutive inserts logged %d nodes, want 0", got-before)
	}
}

func TestConsecutiveDeletesUseInCLLOnly(t *testing.T) {
	_, s := newStore(t)
	for i := uint64(0); i < 10; i++ {
		s.Put(EncodeUint64(i), i)
	}
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	for i := uint64(0); i < 10; i++ {
		s.Delete(EncodeUint64(i))
	}
	if got := s.Stats().LoggedNodes.Load(); got != before {
		t.Fatalf("consecutive deletes logged %d nodes, want 0", got-before)
	}
}

func TestRepeatedUpdateOfOneKeyUsesInCLLOnly(t *testing.T) {
	// A popular key updated many times per epoch: the ValInCLL already
	// holds its epoch-start value, so no external logging (paper §4.1.3).
	_, s := newStore(t)
	s.Put(EncodeUint64(5), 1)
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	for i := 0; i < 50; i++ {
		s.Put(EncodeUint64(5), uint64(i))
	}
	if got := s.Stats().LoggedNodes.Load(); got != before {
		t.Fatalf("hot-key updates logged %d nodes, want 0", got-before)
	}
}

func TestTwoHotSlotsSameLineForceLog(t *testing.T) {
	// Updating two different keys that land in the same value cache line
	// within one epoch exhausts that line's single ValInCLL.
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 5; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	s.Put(EncodeUint64(1), 111) // slots 0..4 are all in vals[0..6] (line 3)
	s.Put(EncodeUint64(2), 222)
	if s.Stats().LoggedNodes.Load() == before {
		t.Fatal("two hot same-line slots did not force external logging")
	}
	a.Crash(nvm.RandomPolicy(0.5, 33))
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "two hot slots")
}

func TestUpdatesInBothValueLinesUseBothInCLLs(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 14; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	before := s.Stats().LoggedNodes.Load()
	// Sorted positions equal slot order here: key 0 is in vals line 0 and
	// key 13 in vals line 1.
	s.Put(EncodeUint64(0), 1000)
	s.Put(EncodeUint64(13), 2000)
	if got := s.Stats().LoggedNodes.Load(); got != before {
		t.Fatalf("updates in distinct lines logged %d nodes", got-before)
	}
	a.Crash(nvm.RandomPolicy(0.5, 44))
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "both lines rolled back")
}

func TestLoggingModeEquivalence(t *testing.T) {
	// DisableInCLL (the paper's LOGGING ablation) must be functionally
	// identical, only costlier.
	cfg := testConfig()
	cfg.DisableInCLL = true
	a := nvm.New(nvm.Config{Words: testArenaWords})
	s, _ := Open(a, cfg)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(1000))
		v := rng.Uint64()
		s.Put(EncodeUint64(k), v)
		model[k] = v
	}
	s.Advance()
	for i := 0; i < 1000; i++ {
		s.Put(EncodeUint64(uint64(rng.Intn(1000))), rng.Uint64())
	}
	if s.Stats().LoggedNodes.Load() == 0 {
		t.Fatal("LOGGING mode never logged")
	}
	a.Crash(nvm.RandomPolicy(0.5, 55))
	a.ResetReservations()
	s2, _ := Open(a, cfg)
	verifyModel(t, s2, model, "LOGGING mode")
}

func TestValueBuffersNeedNoExplicitFlush(t *testing.T) {
	// The paper's durable-allocation claim: writing a value buffer and
	// inserting it requires no write-back or fence at all when the node
	// takes the InCLL path.
	_, s := newStore(t)
	for i := uint64(0); i < 5; i++ {
		s.Put(EncodeUint64(i), i)
	}
	s.Advance()
	st0 := s.Arena().Stats().Snapshot()
	for i := uint64(5); i < 10; i++ {
		s.Put(EncodeUint64(i), i) // same leaf, InCLLp only
	}
	d := s.Arena().Stats().Snapshot().Sub(st0)
	if d.Fences != 0 || d.Writebacks != 0 {
		t.Fatalf("InCLL-path puts issued persistence ops: %v", d)
	}
}

func TestLazyRecoveryOnlyTouchesAccessedNodes(t *testing.T) {
	a, s := newStore(t)
	for i := uint64(0); i < 10000; i++ {
		s.Put(EncodeUint64(i), i)
	}
	s.Advance()
	s.Put(EncodeUint64(1), 999) // doomed
	a.Crash(nvm.PersistAll)
	a.ResetReservations()
	s2, st := Open(a, testConfig())
	if st != epoch.CrashRecovered {
		t.Fatalf("status %v", st)
	}
	// A point lookup recovers only the handful of nodes on its path.
	if v, ok := s2.Get(EncodeUint64(1)); !ok || v != 1 {
		t.Fatalf("rollback failed: %d,%v", v, ok)
	}
	rec0 := s2.Stats().LazyRecoveries.Load()
	if rec0 == 0 || rec0 > 10 {
		t.Fatalf("one lookup recovered %d nodes, want a handful", rec0)
	}
	// Repeating the lookup must not recover anything again.
	s2.Get(EncodeUint64(1))
	if got := s2.Stats().LazyRecoveries.Load(); got != rec0 {
		t.Fatalf("already-recovered nodes recovered again (%d -> %d)", rec0, got)
	}
}

func TestConcurrentWorkersWithTicker(t *testing.T) {
	_, s := newStore(t)
	done := make(chan bool, 2)
	s.StartTicker(2e6) // 2ms epochs while the workers run
	for w := 0; w < 2; w++ {
		go func(w int) {
			h := s.Handle(w)
			for i := 0; i < 20000; i++ {
				k := uint64(w*1000000 + i)
				h.Put(EncodeUint64(k), k)
			}
			done <- true
		}(w)
	}
	<-done
	<-done
	s.StopTicker()
	for w := 0; w < 2; w++ {
		for i := 0; i < 20000; i += 97 {
			k := uint64(w*1000000 + i)
			if v, ok := s.Get(EncodeUint64(k)); !ok || v != k {
				t.Fatalf("key %d = %d,%v", k, v, ok)
			}
		}
	}
}

func TestLayeredKeysCrashRecovery(t *testing.T) {
	a, s := newStore(t)
	model := map[string]uint64{}
	longKey := func(i uint64) []byte {
		return append([]byte("prefix--"), EncodeUint64(i)...)
	}
	for i := uint64(0); i < 500; i++ {
		s.Put(longKey(i), i)
		model[string(longKey(i))] = i
	}
	s.Advance()
	for i := uint64(0); i < 500; i++ {
		s.Put(longKey(i), 999999) // doomed updates in the layer
		s.Put(longKey(10000+i), 1)
	}
	a.Crash(nvm.RandomPolicy(0.5, 66))
	s2 := reopen(t, a, testConfig())
	for k, v := range model {
		got, ok := s2.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("layered key %q = %d,%v want %d", k, got, ok, v)
		}
	}
	n := s2.Scan(nil, -1, func([]byte, uint64) bool { return true })
	if n != len(model) {
		t.Fatalf("scan found %d keys, want %d", n, len(model))
	}
}

func TestReopenWithDifferentLayoutPanics(t *testing.T) {
	a, s := newStore(t)
	s.Put(EncodeUint64(1), 1)
	s.Shutdown()
	a.ResetReservations()
	defer func() {
		if recover() == nil {
			t.Fatal("reopening with a different worker count must panic")
		}
	}()
	bad := testConfig()
	bad.Workers = 7 // changes the region layout
	Open(a, bad)
}

func TestReopenWithSameLayoutSucceeds(t *testing.T) {
	a, s := newStore(t)
	s.Put(EncodeUint64(1), 42)
	s.Shutdown()
	s2 := reopen(t, a, testConfig())
	if v, ok := s2.Get(EncodeUint64(1)); !ok || v != 42 {
		t.Fatalf("value lost across matching reopen: %d,%v", v, ok)
	}
}
