package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"incll/internal/nvm"
)

// Property: for any op sequence and any crash point/policy, recovery
// yields exactly the model at the last committed boundary.
func TestPropertyCrashEqualsCommittedModel(t *testing.T) {
	f := func(seed int64, persistPct uint8, advanceEvery uint8) bool {
		if advanceEvery == 0 {
			advanceEvery = 1
		}
		p := float64(persistPct%101) / 100
		a := nvm.New(nvm.Config{Words: testArenaWords})
		s, _ := Open(a, testConfig())
		rng := rand.New(rand.NewSource(seed))
		committed := map[uint64]uint64{}
		working := map[uint64]uint64{}
		for i := 0; i < 1200; i++ {
			k := uint64(rng.Intn(600))
			switch rng.Intn(6) {
			case 0:
				s.Delete(EncodeUint64(k))
				delete(working, k)
			case 1:
				s.Get(EncodeUint64(k))
			default:
				v := rng.Uint64() % 100000
				s.Put(EncodeUint64(k), v)
				working[k] = v
			}
			if i%int(advanceEvery%64+8) == 0 {
				s.Advance()
				committed = map[uint64]uint64{}
				for k, v := range working {
					committed[k] = v
				}
			}
		}
		a.Crash(nvm.RandomPolicy(p, seed))
		a.ResetReservations()
		s2, _ := Open(a, testConfig())
		for k, v := range committed {
			if got, ok := s2.Get(EncodeUint64(k)); !ok || got != v {
				return false
			}
		}
		n := s2.Scan(nil, -1, func([]byte, uint64) bool { return true })
		return n == len(committed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ValInCLL packing round-trips every 44-bit value word — heap
// pointers and tagged inline values alike.
func TestPropertyValInCLLRoundTrip(t *testing.T) {
	f := func(vw uint64, idx uint8, epoch uint64) bool {
		vw &= valInCLLMask
		i := int(idx % 15)
		w := packValInCLL(vw, i, epoch)
		return valInCLLWord(w) == vw && valInCLLIdx(w) == i && valInCLLEp16(w) == epoch&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inline value words round-trip any payload of 0..5 bytes and
// always fit the ValInCLL capture field.
func TestPropertyInlineValueWordRoundTrip(t *testing.T) {
	f := func(data [MaxInlineBytes]byte, n uint8) bool {
		b := data[:n%(MaxInlineBytes+1)]
		w := inlineVW(b)
		if !vwIsInline(w) || w&valInCLLMask != w {
			return false
		}
		if vwInlineLen(w) != len(b) {
			return false
		}
		for i, c := range b {
			if byte(w>>(vwInlineData+8*uint(i))) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the uint64↔bytes value convention is a bijection on uint64s.
func TestPropertyValueEncodingRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := EncodeValue(v)
		if v < 1<<40 && len(b) > MaxInlineBytes {
			return false // the uint64 fast path must stay inline
		}
		return DecodeValue(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the epoch word packing round-trips.
func TestPropertyEpochWordRoundTrip(t *testing.T) {
	f := func(epoch uint64, ins, logged bool) bool {
		epoch = epoch % (1 << 62)
		w := packEpochWord(epoch, ins, logged)
		return epochOf(w) == epoch && insAllowedBit(w) == ins && loggedBit(w) == logged
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the kinds word holds 14 independent nibbles.
func TestPropertyKindsWordIndependence(t *testing.T) {
	f := func(initial uint64, idx uint8, val uint8) bool {
		i := int(idx % LeafWidth)
		k := val % 10
		w := withKind(initial, i, k)
		if kindAt(w, i) != k {
			return false
		}
		for j := 0; j < LeafWidth; j++ {
			if j != i && kindAt(w, j) != kindAt(initial, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the width-14 permutation stays a bijection under arbitrary
// insert/remove/truncate churn.
func TestPropertyPermBijection(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := permIdentity
		live := 0
		for step := 0; step < 300; step++ {
			switch {
			case live < LeafWidth && (live == 0 || rng.Intn(2) == 0):
				p = p.insert(rng.Intn(live + 1))
				live++
			case rng.Intn(10) == 0 && live > 0:
				keep := rng.Intn(live + 1)
				p = p.truncate(keep)
				live = keep
			default:
				p = p.remove(rng.Intn(live))
				live--
			}
			if p.count() != live {
				t.Fatalf("seed %d: count %d != live %d", seed, p.count(), live)
			}
			var mask uint16
			for i := 0; i < 15; i++ {
				s := p.slot(i)
				if mask&(1<<uint(s)) != 0 {
					t.Fatalf("seed %d: duplicate slot %d", seed, s)
				}
				mask |= 1 << uint(s)
			}
			if mask != 0x7FFF {
				t.Fatalf("seed %d: lost slots (mask %x)", seed, mask)
			}
		}
	}
}

// Adversarial crash: persist exactly the value-line containing InCLL1 and
// nothing else. The recovery protocol must still roll the update back
// (the InCLL was written before the value in the same line) without
// touching committed state.
func TestAdversarialPersistOnlyValueLine(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 5; i++ {
		s.Put(EncodeUint64(i), i+100)
		model[i] = i + 100
	}
	s.Advance()
	s.Put(EncodeUint64(2), 999) // doomed update, logged in InCLL1's line

	for phase := 0; phase < 2; phase++ {
		a.Crash(nvm.EvenOddPolicy(phase))
		s2 := reopen(t, a, testConfig())
		verifyModel(t, s2, model, "adversarial value line")
		s = s2
		// Redo the doomed update for the next phase (no advance).
		s.Put(EncodeUint64(2), 999)
	}
}

// Adversarial: a crash during the very first epoch of a fresh store must
// recover to empty (nothing was ever committed).
func TestCrashInFirstEpochRecoversEmpty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a := nvm.New(nvm.Config{Words: testArenaWords})
		s, _ := Open(a, testConfig())
		for i := uint64(0); i < 3000; i++ {
			s.Put(EncodeUint64(i), i)
		}
		a.Crash(nvm.RandomPolicy(0.5, seed))
		s2 := reopen(t, a, testConfig())
		if n := s2.Scan(nil, -1, func([]byte, uint64) bool { return true }); n != 0 {
			t.Fatalf("seed %d: %d keys survived an uncommitted first epoch", seed, n)
		}
	}
}

// Eviction enabled: background write-backs during the epoch must never
// leak uncommitted state past a crash (the InCLL undo entries persist with
// their lines and recovery applies them).
func TestCrashWithBackgroundEviction(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := nvm.New(nvm.Config{Words: testArenaWords, DirtyCapacity: 64, Seed: seed})
		s, _ := Open(a, testConfig())
		model := map[uint64]uint64{}
		for i := uint64(0); i < 2000; i++ {
			s.Put(EncodeUint64(i), i)
			model[i] = i
		}
		s.Advance()
		for i := uint64(0); i < 1500; i++ {
			s.Put(EncodeUint64(i%2000), 777777+i)
			if i%5 == 0 {
				s.Delete(EncodeUint64((i * 13) % 2000))
			}
		}
		a.Crash(nvm.RandomPolicy(0.5, seed))
		a.ResetReservations()
		s2, _ := Open(a, Config{Workers: 2, LogSegWords: 1 << 16, HeapWords: 1 << 20})
		verifyModel(t, s2, model, "eviction")
	}
}
