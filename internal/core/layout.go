// Package core implements the paper's primary contribution: a durable
// Masstree made crash-consistent with Fine-Grained Checkpointing and
// In-Cache-Line Logging (InCLL), plus the external object log for the
// operations InCLL cannot absorb.
//
// Every node lives in the simulated NVM arena with an explicit cache-line
// layout mirroring the paper's Figure 1. A durable leaf holds 14 entries
// (one fewer than transient Masstree) to make room for the in-line logs:
//
//	line 0: version | parent | meta | next | nodeEpoch | permutationInCLL | permutation | hikey
//	line 1: ikeys[0..7]
//	line 2: ikeys[8..13] | kinds | (spare)
//	line 3: InCLL1 | vals[0..6]        InCLL1 shares its line with vals 0-6
//	line 4: vals[7..13] | InCLL2       InCLL2 shares its line with vals 7-13
//
// nodeEpoch, permutationInCLL and permutation share line 0, so the InCLLp
// write protocol (undo copy → epoch tag → mutation) is ordered by PCSO
// without any flush. The two ValInCLLs share their lines with the value
// words they protect, for the same reason.
package core

import "incll/internal/nvm"

// NodeWords is the arena footprint of every node (leaf or interior).
const NodeWords = 40

// LeafWidth is the number of key/value entries per durable leaf: one fewer
// than the transient tree's 15, the space being spent on the InCLLs.
const LeafWidth = 14

// Common header offsets (same for both node types).
const (
	fVersion = 0 // transient: lock/insert/split bits + counters; reset on recovery
	fParent  = 1 // arena offset of the parent interior; 0 at a layer root
	fMeta    = 2 // bit 0: isLeaf; written once when the node is born
)

// Leaf offsets.
const (
	fNext      = 3 // right sibling (B-link)
	fEpoch     = 4 // nodeEpoch<<2 | insAllowed<<1 | logged (InCLLp state)
	fPermInCLL = 5 // undo copy of the permutation at epoch start
	fPerm      = 6 // the permutation word
	fHikey     = 7 // first ikey of the right sibling; ^0 when rightmost
	fIkeys     = 8 // 14 ikey words: 8..21
	fKinds     = 22
	fSpareLeaf = 23
	fInCLL1    = 24 // ValInCLL for vals 0..6
	fVals1     = 25 // vals[0..6]: 25..31
	fVals2     = 32 // vals[7..13]: 32..38
	fInCLL2    = 39 // ValInCLL for vals 7..13
)

// Interior offsets.
const (
	fLogEpoch = 3 // epoch this interior was last external-logged in
	fTouch    = 4 // lazy-recovery gate: last execution that visited this node
	fNkeys    = 5
	fRkeys    = 8  // 15 router keys: 8..22
	fChildren = 24 // 16 children: 24..39
	intWidth  = 15
)

const metaLeaf = 1 << 0

// valOff returns the word offset of vals[i] within a leaf, honouring the
// two-line split around the InCLLs.
func valOff(i int) uint64 {
	if i < 7 {
		return fVals1 + uint64(i)
	}
	return fVals2 + uint64(i-7)
}

// valLine reports which ValInCLL (0 or 1) protects vals[i].
func valLine(i int) int {
	if i < 7 {
		return 0
	}
	return 1
}

// inCLLOff returns the offset of the ValInCLL for line l (0 or 1).
func inCLLOff(l int) uint64 {
	if l == 0 {
		return fInCLL1
	}
	return fInCLL2
}

// ---- nodeEpoch word (InCLLp state) ----

const (
	epLogged     = 1 << 0
	epInsAllowed = 1 << 1
)

func packEpochWord(epoch uint64, insAllowed, logged bool) uint64 {
	w := epoch << 2
	if insAllowed {
		w |= epInsAllowed
	}
	if logged {
		w |= epLogged
	}
	return w
}

func epochOf(w uint64) uint64     { return w >> 2 }
func loggedBit(w uint64) bool     { return w&epLogged != 0 }
func insAllowedBit(w uint64) bool { return w&epInsAllowed != 0 }

// ---- ValInCLL packing (paper §4.1.3) ----
//
// bits 0..3:  protected index (0xF = invalid)
// bits 4..47: the protected value word's low 44 bits, verbatim
// bits 48..63: low 16 bits of the epoch the InCLL was written in
//
// The captured field holds the tagged value word of value.go — an inline
// value (≤44 bits by construction) or a heap/anchor pointer (arena offsets
// are far below 2^44 words, asserted in Open) — so the capture round-trips
// every legal value word exactly.

const (
	invalidIdx   = 0xF
	valInCLLMask = 1<<44 - 1
)

func packValInCLL(vw uint64, idx int, epoch uint64) uint64 {
	return uint64(idx)&0xF | (vw&valInCLLMask)<<4 | (epoch&0xFFFF)<<48
}

func valInCLLWord(w uint64) uint64 { return w >> 4 & valInCLLMask }
func valInCLLIdx(w uint64) int     { return int(w & 0xF) }
func valInCLLEp16(w uint64) uint64 { return w >> 48 }

// invalidValInCLL returns an invalid (unused) ValInCLL tagged with epoch.
func invalidValInCLL(epoch uint64) uint64 { return packValInCLL(0, invalidIdx, epoch) }

// ---- kinds word: 14 4-bit kind fields ----

func kindAt(w uint64, i int) uint8 { return uint8(w >> (4 * uint(i)) & 0xF) }

func withKind(w uint64, i int, k uint8) uint64 {
	sh := 4 * uint(i)
	return w&^(uint64(0xF)<<sh) | uint64(k)<<sh
}

// ---- version word (transient semantics; reset after a crash) ----

const (
	vLocked    = 1 << 0
	vInserting = 1 << 1
	vSplitting = 1 << 2
	vInsertLo  = 1 << 8
	vSplitLo   = 1 << 24
)

// ---- permutation word, width 14 ----
//
// Same scheme as transient Masstree: 4 bits of count, then slot indices.
// Nibble capacity is 15; the durable leaf uses slots 0..13, so nibble 14
// permanently holds slot 14 and the count never exceeds 14.

type perm uint64

const permIdentity perm = 0xEDCBA98765432100

func (p perm) count() int     { return int(p & 0xF) }
func (p perm) slot(i int) int { return int(p >> (4 + 4*uint(i)) & 0xF) }
func (p perm) freeSlot() int  { return p.slot(p.count()) }

func (p perm) insert(pos int) perm {
	n := p.count()
	s := uint64(p.freeSlot())
	body := uint64(p) >> 4
	low := body & (1<<(4*uint(n)) - 1)
	high := body >> (4 * uint(n+1)) << (4 * uint(n))
	body = low | high
	low = body & (1<<(4*uint(pos)) - 1)
	high = body >> (4 * uint(pos)) << (4 * uint(pos+1))
	body = low | high | s<<(4*uint(pos))
	return perm(body<<4 | uint64(n+1))
}

func (p perm) remove(pos int) perm {
	n := p.count()
	s := uint64(p.slot(pos))
	body := uint64(p) >> 4
	low := body & (1<<(4*uint(pos)) - 1)
	high := body >> (4 * uint(pos+1)) << (4 * uint(pos))
	body = low | high
	low = body & (1<<(4*uint(n-1)) - 1)
	high = body >> (4 * uint(n-1)) << (4 * uint(n))
	body = low | high | s<<(4*uint(n-1))
	return perm(body<<4 | uint64(n-1))
}

func (p perm) truncate(keep int) perm {
	return perm(uint64(p)&^0xF | uint64(keep))
}

// identityPrefix returns a permutation whose live entries are slots
// 0..n-1 in order — what a freshly filled split sibling uses.
func identityPrefix(n int) perm {
	return perm(uint64(permIdentity)&^0xF | uint64(n))
}

var _ = nvm.WordsPerLine // layout constants assume 8-word lines
