package core

import (
	"math/rand"
	"sort"
	"testing"

	"incll/internal/nvm"
)

// iterTestKeys builds a mixed-shape key population: short keys, exactly
// 8-byte keys, and long layered keys sharing prefixes, so every walk
// crosses layer boundaries in both directions.
func iterTestKeys(rng *rand.Rand, n int) [][]byte {
	keys := make([][]byte, 0, n)
	seen := map[string]bool{}
	for len(keys) < n {
		var k []byte
		switch rng.Intn(4) {
		case 0: // short
			k = make([]byte, 1+rng.Intn(7))
			rng.Read(k)
		case 1: // exactly one ikey
			k = EncodeUint64(rng.Uint64() % 1000)
		case 2: // long, shared 8-byte prefix → same second-layer tree
			k = append(EncodeUint64(uint64(rng.Intn(4))), make([]byte, 1+rng.Intn(20))...)
			rng.Read(k[8:])
		default: // long random
			k = make([]byte, 9+rng.Intn(24))
			rng.Read(k)
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// iterTestStore loads a store with a sorted reference model: mixed key
// shapes, value sizes spanning inline and every heap class.
func iterTestStore(t testing.TB, seed int64, n int) (*Store, []string, map[string]string) {
	t.Helper()
	a := nvm.New(nvm.Config{Words: 1 << 23})
	s, _ := Open(a, Config{Workers: 2, LogSegWords: 1 << 16, HeapWords: 1 << 22})
	rng := rand.New(rand.NewSource(seed))
	model := map[string]string{}
	for _, k := range iterTestKeys(rng, n) {
		v := make([]byte, rng.Intn(64))
		rng.Read(v)
		s.PutBytes(k, v)
		model[string(k)] = string(v)
	}
	sorted := make([]string, 0, len(model))
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	return s, sorted, model
}

// collectFwd drains a cursor ascending from its current protocol start.
func collectFwd(it Cursor) (keys, vals []string) {
	for ok := it.First(); ok; ok = it.Next() {
		keys = append(keys, string(it.Key()))
		vals = append(vals, string(it.Value()))
	}
	return
}

func collectRev(it Cursor) (keys, vals []string) {
	for ok := it.Last(); ok; ok = it.Prev() {
		keys = append(keys, string(it.Key()))
		vals = append(vals, string(it.Value()))
	}
	return
}

// TestIterMatchesLegacyScan asserts the cursor's ascending stream is
// byte-identical to the legacy callback Scan — the compatibility contract
// the façade wrappers rely on.
func TestIterMatchesLegacyScan(t *testing.T) {
	s, _, _ := iterTestStore(t, 1, 2000)
	var sk, sv []string
	s.ScanBytes(nil, -1, func(k, v []byte) bool {
		sk = append(sk, string(k))
		sv = append(sv, string(v))
		return true
	})
	it := s.NewIter(IterOptions{})
	defer it.Close()
	ik, iv := collectFwd(it)
	if len(ik) != len(sk) {
		t.Fatalf("cursor saw %d keys, legacy scan %d", len(ik), len(sk))
	}
	for i := range ik {
		if ik[i] != sk[i] || iv[i] != sv[i] {
			t.Fatalf("entry %d: cursor (%x, %x) != scan (%x, %x)", i, ik[i], iv[i], sk[i], sv[i])
		}
	}
}

// TestIterReverseMatchesForwardReversed asserts descending iteration is
// exactly the ascending stream reversed, across layers and value shapes.
func TestIterReverseMatchesForwardReversed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s, sorted, model := iterTestStore(t, seed, 1500)
		it := s.NewIter(IterOptions{})
		fk, fv := collectFwd(it)
		rk, rv := collectRev(it)
		it.Close()
		if len(fk) != len(sorted) || len(rk) != len(sorted) {
			t.Fatalf("seed %d: forward %d, reverse %d, model %d", seed, len(fk), len(rk), len(sorted))
		}
		for i := range fk {
			j := len(rk) - 1 - i
			if fk[i] != sorted[i] || fk[i] != rk[j] || fv[i] != rv[j] {
				t.Fatalf("seed %d: entry %d mismatch: fwd %x rev %x model %x", seed, i, fk[i], rk[j], sorted[i])
			}
			if fv[i] != model[fk[i]] {
				t.Fatalf("seed %d: value mismatch at %x", seed, fk[i])
			}
		}
	}
}

// TestIterSeekAndBounds checks SeekGE/SeekLT and LowerBound/UpperBound
// against the sorted model from random pivots, in both directions.
func TestIterSeekAndBounds(t *testing.T) {
	s, sorted, _ := iterTestStore(t, 4, 1200)
	rng := rand.New(rand.NewSource(99))
	pivot := func() string {
		if rng.Intn(4) == 0 { // a key that exists
			return sorted[rng.Intn(len(sorted))]
		}
		k := make([]byte, 1+rng.Intn(12))
		rng.Read(k)
		return string(k)
	}
	it := s.NewIter(IterOptions{})
	defer it.Close()
	for trial := 0; trial < 200; trial++ {
		p := pivot()
		// SeekGE: the first key ≥ p.
		i := sort.SearchStrings(sorted, p)
		if ok := it.SeekGE([]byte(p)); ok != (i < len(sorted)) {
			t.Fatalf("SeekGE(%x) valid=%v, want %v", p, ok, i < len(sorted))
		} else if ok && string(it.Key()) != sorted[i] {
			t.Fatalf("SeekGE(%x) = %x, want %x", p, it.Key(), sorted[i])
		}
		// SeekLT: the last key < p.
		if ok := it.SeekLT([]byte(p)); ok != (i > 0) {
			t.Fatalf("SeekLT(%x) valid=%v, want %v", p, ok, i > 0)
		} else if ok && string(it.Key()) != sorted[i-1] {
			t.Fatalf("SeekLT(%x) = %x, want %x", p, it.Key(), sorted[i-1])
		}
	}
	for trial := 0; trial < 50; trial++ {
		lo, hi := pivot(), pivot()
		if lo > hi {
			lo, hi = hi, lo
		}
		want := []string{}
		for _, k := range sorted {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		bit := s.NewIter(IterOptions{LowerBound: []byte(lo), UpperBound: []byte(hi)})
		gotF, _ := collectFwd(bit)
		gotR, _ := collectRev(bit)
		bit.Close()
		if len(gotF) != len(want) || len(gotR) != len(want) {
			t.Fatalf("bounds [%x, %x): fwd %d rev %d want %d", lo, hi, len(gotF), len(gotR), len(want))
		}
		for i := range want {
			if gotF[i] != want[i] || gotR[len(want)-1-i] != want[i] {
				t.Fatalf("bounds [%x, %x): entry %d mismatch", lo, hi, i)
			}
		}
	}
}

// TestIterDirectionSwitch walks forward a random distance, turns around,
// and checks Prev/Next land on the model's neighbours from any position.
func TestIterDirectionSwitch(t *testing.T) {
	s, sorted, _ := iterTestStore(t, 5, 600)
	it := s.NewIter(IterOptions{})
	defer it.Close()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(sorted))
		if !it.SeekGE([]byte(sorted[i])) || string(it.Key()) != sorted[i] {
			t.Fatalf("SeekGE(existing %x) missed", sorted[i])
		}
		steps := rng.Intn(40)
		pos := i
		for st := 0; st < steps; st++ {
			var ok bool
			if rng.Intn(2) == 0 {
				ok = it.Next()
				pos++
			} else {
				ok = it.Prev()
				pos--
			}
			switch {
			case pos < 0:
				if ok {
					t.Fatalf("Prev before first returned %x", it.Key())
				}
				if !it.Next() || string(it.Key()) != sorted[0] {
					t.Fatal("Next after before-first is not First")
				}
				pos = 0
			case pos >= len(sorted):
				if ok {
					t.Fatalf("Next past last returned %x", it.Key())
				}
				if !it.Prev() || string(it.Key()) != sorted[len(sorted)-1] {
					t.Fatal("Prev after after-last is not Last")
				}
				pos = len(sorted) - 1
			default:
				if !ok || string(it.Key()) != sorted[pos] {
					t.Fatalf("step %d: at %x, want %x", st, it.Key(), sorted[pos])
				}
			}
		}
	}
}

// TestIterDoesNotBlockCheckpoint is the regression test for the
// whole-scan epoch guard: a full-table iteration interleaves epoch
// advances from the SAME goroutine between entries. If the cursor held
// the guard across batches (as the legacy Scan holds it across the whole
// walk), the first Advance would self-deadlock; and the iteration must
// still deliver every committed key afterwards.
func TestIterDoesNotBlockCheckpoint(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 23})
	s, _ := Open(a, Config{Workers: 1, LogSegWords: 1 << 18, HeapWords: 1 << 22})
	const n = 3 * iterBatchMax // several guard-batches worth of keys
	for i := 0; i < n; i++ {
		s.Put(EncodeUint64(uint64(i)), uint64(i))
	}
	s.Advance()

	adv0 := s.Epochs().Advances()
	it := s.NewIter(IterOptions{})
	defer it.Close()
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if it.ValueUint64() != uint64(count) {
			t.Fatalf("entry %d holds %d", count, it.ValueUint64())
		}
		count++
		// One checkpoint per entry: possible only because the cursor
		// released the epoch guard after the batch that delivered it.
		s.Advance()
	}
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
	if got := s.Epochs().Advances() - adv0; got < int64(n) {
		t.Fatalf("only %d advances completed during iteration", got)
	}
}

// TestIterSeesConcurrentInsertsBelowPosition: a cursor is not a snapshot,
// but resuming by key means inserts behind the position never appear and
// inserts ahead of it do.
func TestIterAcrossBatchBoundaries(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 23})
	s, _ := Open(a, Config{Workers: 1, LogSegWords: 1 << 16, HeapWords: 1 << 22})
	// Keys 0, 2, 4, …: odd keys are inserted mid-iteration.
	const n = 2 * iterBatchMax
	for i := 0; i < n; i += 2 {
		s.Put(EncodeUint64(uint64(i)), 1)
	}
	it := s.NewIter(IterOptions{})
	defer it.Close()
	var got []uint64
	inserted := false
	for ok := it.First(); ok; ok = it.Next() {
		got = append(got, bytesToU64(it.Key()))
		if !inserted && len(got) == iterBatchMin+1 {
			// Past the first batch: insert ahead of the cursor (must
			// appear) and overwrite behind it (no effect on the walk).
			s.Put(EncodeUint64(uint64(n-1)), 1)
			s.Put(EncodeUint64(0), 2)
			inserted = true
		}
	}
	if !inserted {
		t.Fatal("iteration too short to cross a batch boundary")
	}
	last := got[len(got)-1]
	if last != n-1 {
		t.Fatalf("insert ahead of the cursor missing: last key %d, want %d", last, n-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated at %d", got[i])
		}
	}
}

func bytesToU64(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// TestIterUint64View checks ValueUint64 agrees with the Get view.
func TestIterUint64View(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 22})
	s, _ := Open(a, Config{Workers: 1, LogSegWords: 1 << 16, HeapWords: 1 << 20})
	vals := []uint64{0, 1, 255, 1 << 20, 1<<40 - 1, 1 << 40, 1<<63 | 12345}
	for i, v := range vals {
		s.Put(EncodeUint64(uint64(i)), v)
	}
	it := s.NewIter(IterOptions{})
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if it.ValueUint64() != vals[i] {
			t.Fatalf("key %d: cursor %d, want %d", i, it.ValueUint64(), vals[i])
		}
		i++
	}
	if i != len(vals) {
		t.Fatalf("saw %d keys, want %d", i, len(vals))
	}
}

// TestIterEmptyAndMissChecks covers empty stores, empty bounds, and seeks
// past the ends.
func TestIterEdgeCases(t *testing.T) {
	a := nvm.New(nvm.Config{Words: 1 << 22})
	s, _ := Open(a, Config{Workers: 1, LogSegWords: 1 << 16, HeapWords: 1 << 20})
	it := s.NewIter(IterOptions{})
	if it.First() || it.Last() || it.Next() || it.Prev() || it.Valid() {
		t.Fatal("cursor over an empty store claims an entry")
	}
	it.Close()

	s.Put(EncodeUint64(5), 5)
	it = s.NewIter(IterOptions{})
	if !it.SeekGE(EncodeUint64(0)) || it.ValueUint64() != 5 {
		t.Fatal("SeekGE below the only key missed it")
	}
	if it.SeekGE(EncodeUint64(6)) {
		t.Fatal("SeekGE past the last key claims an entry")
	}
	if !it.Prev() || it.ValueUint64() != 5 {
		t.Fatal("Prev from after-last is not Last")
	}
	if it.SeekLT(EncodeUint64(5)) {
		t.Fatal("SeekLT at the first key claims an entry")
	}
	if !it.Next() || it.ValueUint64() != 5 {
		t.Fatal("Next from before-first is not First")
	}
	it.Close()

	// Disjoint bounds: nothing in range.
	it = s.NewIter(IterOptions{LowerBound: EncodeUint64(10), UpperBound: EncodeUint64(20)})
	if it.First() || it.Last() {
		t.Fatal("cursor outside the bounds claims an entry")
	}
	it.Close()
}
