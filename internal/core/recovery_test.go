package core

import (
	"fmt"
	"math/rand"
	"testing"

	"incll/internal/epoch"
	"incll/internal/nvm"
)

// Crash again immediately after recovery, before any access: the second
// recovery must see the same committed state (recovery is idempotent and
// its repairs are flushed before the log generation retires).
func TestDoubleCrashBeforeAnyAccess(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 2000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	for i := uint64(0); i < 800; i++ {
		s.Put(EncodeUint64(i), 9999)
		s.Delete(EncodeUint64(i + 1000))
	}
	a.Crash(nvm.RandomPolicy(0.5, 3))
	_ = reopen(t, a, testConfig()) // recovery ran; no accesses
	a.Crash(nvm.RandomPolicy(0.5, 4))
	s3 := reopen(t, a, testConfig())
	verifyModel(t, s3, model, "double crash")
}

// Crash mid-lazy-recovery: access half the tree (repairing those nodes),
// crash again, and verify everything — both the eagerly-repaired and the
// never-accessed halves.
func TestCrashDuringLazyRecovery(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 4000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	for i := uint64(0); i < 4000; i += 2 {
		s.Put(EncodeUint64(i), 777)
	}
	a.Crash(nvm.RandomPolicy(0.6, 5))
	s2 := reopen(t, a, testConfig())
	// Touch only the low half: those nodes get lazily repaired (and the
	// repairs are cache-resident, not yet flushed).
	for i := uint64(0); i < 2000; i++ {
		if v, ok := s2.Get(EncodeUint64(i)); !ok || v != i {
			t.Fatalf("low half key %d = %d,%v", i, v, ok)
		}
	}
	// Power fails again before any boundary.
	a.Crash(nvm.RandomPolicy(0.4, 6))
	s3 := reopen(t, a, testConfig())
	verifyModel(t, s3, model, "crash during lazy recovery")
}

// A committed epoch between crashes must checkpoint the lazily repaired
// state so later crashes cannot resurrect the rolled-back values.
func TestAdvanceAfterRecoveryCommitsRepairs(t *testing.T) {
	a, s := newStore(t)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		s.Put(EncodeUint64(i), i)
		model[i] = i
	}
	s.Advance()
	for i := uint64(0); i < 1000; i++ {
		s.Put(EncodeUint64(i), 31337)
	}
	a.Crash(nvm.PersistAll) // everything dirty survives, including doomed values
	s2 := reopen(t, a, testConfig())
	verifyModel(t, s2, model, "after first crash")
	s2.Advance() // commits the repaired image
	a.Crash(nvm.PersistNone)
	s3 := reopen(t, a, testConfig())
	verifyModel(t, s3, model, "repairs committed")
}

// Work performed after a recovery must itself be recoverable.
func TestWorkAfterRecoveryIsDurable(t *testing.T) {
	a, s := newStore(t)
	for i := uint64(0); i < 500; i++ {
		s.Put(EncodeUint64(i), 1)
	}
	s.Advance()
	s.Put(EncodeUint64(0), 2) // doomed
	a.Crash(nvm.RandomPolicy(0.5, 7))

	s2 := reopen(t, a, testConfig())
	model := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		model[i] = 1
	}
	for i := uint64(500); i < 900; i++ { // new committed work
		s2.Put(EncodeUint64(i), 5)
		model[i] = 5
	}
	s2.Advance()
	for i := uint64(0); i < 200; i++ { // doomed again
		s2.Delete(EncodeUint64(i))
	}
	a.Crash(nvm.RandomPolicy(0.5, 8))
	s3 := reopen(t, a, testConfig())
	verifyModel(t, s3, model, "post-recovery work")
}

// Scans immediately after a crash drive lazy recovery across the whole
// tree and must still see exactly the committed state, in order.
func TestScanDrivesLazyRecovery(t *testing.T) {
	a, s := newStore(t)
	for i := uint64(0); i < 3000; i++ {
		s.Put(EncodeUint64(i*2), i)
	}
	s.Advance()
	for i := uint64(0); i < 3000; i++ {
		s.Put(EncodeUint64(i*2+1), 1) // doomed inserts between every pair
	}
	a.Crash(nvm.RandomPolicy(0.5, 9))
	s2 := reopen(t, a, testConfig())
	var prev uint64
	count := 0
	s2.Scan(nil, -1, func(k []byte, v uint64) bool {
		var ik uint64
		for _, c := range k {
			ik = ik<<8 | uint64(c)
		}
		if ik%2 != 0 {
			t.Fatalf("doomed odd key %d visible in scan", ik)
		}
		if count > 0 && ik <= prev {
			t.Fatalf("scan order broken at %d", ik)
		}
		prev = ik
		count++
		return true
	})
	if count != 3000 {
		t.Fatalf("scan found %d keys, want 3000", count)
	}
	if rec := s2.Stats().LazyRecoveries.Load(); rec == 0 {
		t.Fatal("scan recovered no nodes")
	}
}

// Concurrent workers immediately after recovery: lazy repair racing with
// normal operations from several handles must stay consistent.
func TestConcurrentAccessAfterCrash(t *testing.T) {
	a := nvm.New(nvm.Config{Words: testArenaWords})
	cfg := Config{Workers: 4, LogSegWords: 1 << 16, HeapWords: 1 << 20}
	s, _ := Open(a, cfg)
	const n = 8000
	for i := uint64(0); i < n; i++ {
		s.Put(EncodeUint64(i), i)
	}
	s.Advance()
	for i := uint64(0); i < n; i += 3 {
		s.Put(EncodeUint64(i), 42) // doomed
	}
	a.Crash(nvm.RandomPolicy(0.5, 10))
	a.ResetReservations()
	s2, st := Open(a, cfg)
	if st != epoch.CrashRecovered {
		t.Fatalf("status %v", st)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			h := s2.Handle(w)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(n))
				if v, ok := h.Get(EncodeUint64(k)); !ok || v != k {
					done <- errf("worker %d: key %d = %d,%v", w, k, v, ok)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
