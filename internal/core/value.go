package core

import (
	"errors"
	"fmt"
)

// Variable-length byte values on a crash-consistent value heap.
//
// Every leaf value slot holds one tagged *value word* (see DESIGN.md §7):
//
//   - bit 0 = 1: an inline value. Bits 1..3 carry the byte length (0..5)
//     and bits 4..43 carry the bytes themselves, so the whole value lives
//     in the leaf and Get never leaves the node's cache lines.
//   - bit 0 = 0: the arena offset of a heap value block — a size-classed
//     allocation whose first payload word is the byte length, followed by
//     the bytes packed eight per word.
//
// Both forms fit the ValInCLL's 44-bit capture field (inline words by
// construction, pointers because arena offsets are far below 2^44 words),
// so an overwrite is always an out-of-place write plus a single-word value
// swap that the existing InCLL/extlog undo machinery covers — no new fence
// points. Crash-atomicity of the heap block itself follows from epoch-based
// reclamation: a block freed by an overwrite stays intact on the limbo list
// until the epoch commits, so lazy recovery can restore the old value word
// and still find the old bytes behind it, while the rolled-back allocator
// state reclaims the orphaned new block.
//
// The uint64 API is a view over the same byte store: Put(k, v) stores v's
// minimal big-endian encoding (≤5 bytes whenever v < 2^40, the inline fast
// path) and Get decodes it back; values that came in through PutBytes
// decode as the big-endian value of their first eight bytes.

// MaxInlineBytes is the largest value stored inline in the leaf's value
// word: tag bit + 3 length bits + 5 bytes is exactly the ValInCLL's 44-bit
// capture budget.
const MaxInlineBytes = 5

// MaxValueBytes is the largest value PutBytes accepts: the payload of the
// largest allocator size class minus the block's length word.
const MaxValueBytes = 8168

// MaxKeyBytes is the largest key the validated API paths accept. The tree
// itself has no hard limit (a key occupies one trie layer per eight
// bytes), but the bound keeps layer recursion shallow and stays far below
// the intent log's per-key ceiling, so a validated write can never fail
// later inside a commit.
const MaxKeyBytes = 1024

// Size-limit errors. The façade re-exports these; the transaction layer
// wraps them, so errors.Is works across every path.
var (
	// ErrValueTooLarge reports a value longer than MaxValueBytes.
	ErrValueTooLarge = errors.New("incll: value exceeds MaxValueBytes")
	// ErrKeyTooLarge reports a key longer than MaxKeyBytes.
	ErrKeyTooLarge = errors.New("incll: key exceeds MaxKeyBytes")
)

// ValidateKV checks a key/value pair against MaxKeyBytes/MaxValueBytes,
// returning ErrKeyTooLarge or ErrValueTooLarge (wrapped with the observed
// sizes) when a bound is exceeded. The error-returning API paths (façade
// byte methods, transaction writes) call this before touching the store.
func ValidateKV(k, v []byte) error {
	if len(k) > MaxKeyBytes {
		return fmt.Errorf("%w (%d > %d bytes)", ErrKeyTooLarge, len(k), MaxKeyBytes)
	}
	if len(v) > MaxValueBytes {
		return fmt.Errorf("%w (%d > %d bytes)", ErrValueTooLarge, len(v), MaxValueBytes)
	}
	return nil
}

const (
	vwInlineTag  = 1 // bit 0 of an inline value word
	vwInlineData = 4 // bit offset of the first inline byte
)

// vwIsInline reports whether a value word is an inline value (as opposed
// to a heap-block or layer-anchor pointer).
func vwIsInline(w uint64) bool { return w&vwInlineTag != 0 }

func vwInlineLen(w uint64) int { return int(w >> 1 & 7) }

// inlineVW packs b (len ≤ MaxInlineBytes) into an inline value word.
func inlineVW(b []byte) uint64 {
	w := uint64(len(b))<<1 | vwInlineTag
	for i, c := range b {
		w |= uint64(c) << (vwInlineData + 8*uint(i))
	}
	return w
}

// blockWords returns the payload words a heap block for n value bytes
// occupies: one length word plus the packed bytes.
func blockWords(n uint64) uint64 { return 1 + (n+7)/8 }

// newValueWord renders v as a value word: inline when it fits, otherwise
// an out-of-place heap block (written before the word is published).
func (h Handle) newValueWord(v []byte) uint64 {
	if len(v) <= MaxInlineBytes {
		return inlineVW(v)
	}
	if len(v) > MaxValueBytes {
		panic("core: value exceeds MaxValueBytes")
	}
	off := h.ah.Alloc(blockWords(uint64(len(v))))
	if off == 0 {
		panic("core: durable heap exhausted (increase Config.HeapWords)")
	}
	h.s.stats.ValueHeapBytes.Add(h.w, int64(len(v)))
	a := h.s.arena
	a.Store(off, uint64(len(v)))
	for i := 0; i < len(v); i += 8 {
		var word uint64
		for j := 0; j < 8 && i+j < len(v); j++ {
			word |= uint64(v[i+j]) << (8 * uint(j))
		}
		a.Store(off+1+uint64(i/8), word)
	}
	return off
}

// freeValueWord returns a superseded value word's heap block to the limbo
// list (a no-op for inline values). The block's bytes stay intact until the
// epoch commits, which is what lets lazy recovery restore the old word.
func (h Handle) freeValueWord(vw uint64) {
	if vwIsInline(vw) {
		return
	}
	n := h.s.arena.Load(vw)
	h.ah.Free(vw, blockWords(n))
}

// valueLen returns the byte length behind a value word.
func (h Handle) valueLen(vw uint64) int {
	if vwIsInline(vw) {
		return vwInlineLen(vw)
	}
	return int(h.s.arena.Load(vw))
}

// appendInlineValue appends an inline value word's bytes to dst. Unlike
// heap words, an inline word is self-contained: decoding it needs no
// arena access and therefore no epoch guard.
func appendInlineValue(dst []byte, vw uint64) []byte {
	n := vwInlineLen(vw)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(vw>>(vwInlineData+8*uint(i))))
	}
	return dst
}

// appendValue appends the bytes behind a value word to dst. Safe while the
// caller holds the epoch guard: published blocks are immutable and freed
// blocks survive until the next epoch boundary.
func (h Handle) appendValue(dst []byte, vw uint64) []byte {
	if vwIsInline(vw) {
		return appendInlineValue(dst, vw)
	}
	a := h.s.arena
	n := int(a.Load(vw))
	for i := 0; i < n; i += 8 {
		word := a.Load(vw + 1 + uint64(i/8))
		for j := 0; j < 8 && i+j < n; j++ {
			dst = append(dst, byte(word>>(8*uint(j))))
		}
	}
	return dst
}

// vwUint64 decodes a value word as the uint64 API sees it: the big-endian
// value of the first eight bytes.
func (h Handle) vwUint64(vw uint64) uint64 {
	if vwIsInline(vw) {
		n := vwInlineLen(vw)
		var v uint64
		for i := 0; i < n; i++ {
			v = v<<8 | vw>>(vwInlineData+8*uint(i))&0xFF
		}
		return v
	}
	a := h.s.arena
	n := int(a.Load(vw))
	if n > 8 {
		n = 8
	}
	word := a.Load(vw + 1)
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | word>>(8*uint(i))&0xFF
	}
	return v
}

// EncodeValue renders v as the canonical byte value the uint64 API stores:
// the minimal big-endian encoding (empty for 0, ≤5 bytes — the inline fast
// path — whenever v < 2^40).
func EncodeValue(v uint64) []byte { return AppendValueUint64(nil, v) }

// AppendValueUint64 appends EncodeValue(v) to dst.
func AppendValueUint64(dst []byte, v uint64) []byte {
	n := 0
	for x := v; x != 0; x >>= 8 {
		n++
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// DecodeValue is the uint64 view of a byte value: the big-endian decode of
// its first eight bytes (exact inverse of EncodeValue).
func DecodeValue(b []byte) uint64 {
	if len(b) > 8 {
		b = b[:8]
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}
