package core

import (
	"runtime"

	"incll/internal/nvm"
)

// nodeRef wraps an arena offset with the store's arena for field access.
// All durable node state is read and written through these accessors, so
// every mutation goes through the simulated cache.
type nodeRef struct {
	a   *nvm.Arena
	off uint64
}

func (n nodeRef) valid() bool { return n.off != 0 }

func (n nodeRef) load(f uint64) uint64     { return n.a.Load(n.off + f) }
func (n nodeRef) store(f uint64, v uint64) { n.a.Store(n.off+f, v) }

func (n nodeRef) isLeaf() bool   { return n.load(fMeta)&metaLeaf != 0 }
func (n nodeRef) parent() uint64 { return n.load(fParent) }

// ---- version word: transient lock + optimistic validation ----

// stable spins until the node is not mid-insert/mid-split.
func (n nodeRef) stable() uint64 {
	for {
		v := n.load(fVersion)
		if v&(vInserting|vSplitting) == 0 {
			return v
		}
		runtime.Gosched()
	}
}

func (n nodeRef) changed(v uint64) bool {
	return n.load(fVersion)&^uint64(vLocked) != v&^uint64(vLocked)
}

func (n nodeRef) lock() {
	for {
		v := n.load(fVersion)
		if v&vLocked == 0 && n.a.CompareAndSwap(n.off+fVersion, v, v|vLocked) {
			return
		}
		runtime.Gosched()
	}
}

func (n nodeRef) unlock() {
	v := n.load(fVersion)
	if v&vInserting != 0 {
		v += vInsertLo
	}
	if v&vSplitting != 0 {
		v += vSplitLo
	}
	n.store(fVersion, v&^uint64(vLocked|vInserting|vSplitting))
}

func (n nodeRef) markInsert() { n.store(fVersion, n.load(fVersion)|vInserting) }
func (n nodeRef) markSplit()  { n.store(fVersion, n.load(fVersion)|vSplitting) }

// ---- leaf accessors ----

func (n nodeRef) perm() perm        { return perm(n.load(fPerm)) }
func (n nodeRef) hikey() uint64     { return n.load(fHikey) }
func (n nodeRef) next() uint64      { return n.load(fNext) }
func (n nodeRef) ikey(s int) uint64 { return n.load(fIkeys + uint64(s)) }
func (n nodeRef) kind(s int) uint8  { return kindAt(n.load(fKinds), s) }
func (n nodeRef) val(s int) uint64  { return n.load(valOff(s)) }

func (n nodeRef) setIkey(s int, v uint64) { n.store(fIkeys+uint64(s), v) }
func (n nodeRef) setKind(s int, k uint8)  { n.store(fKinds, withKind(n.load(fKinds), s, k)) }
func (n nodeRef) setVal(s int, v uint64)  { n.store(valOff(s), v) }

// leafSearch finds the key-order position of (ikey, kind) in the leaf.
func (n nodeRef) leafSearch(ik uint64, kind uint8, p perm) (int, bool) {
	lo, hi := 0, p.count()
	for lo < hi {
		mid := (lo + hi) / 2
		s := p.slot(mid)
		c := keyCmp(ik, kind, n.ikey(s), n.kind(s))
		switch {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// ---- interior accessors ----

func (n nodeRef) nkeys() int         { return int(n.load(fNkeys)) }
func (n nodeRef) rkey(i int) uint64  { return n.load(fRkeys + uint64(i)) }
func (n nodeRef) child(i int) uint64 { return n.load(fChildren + uint64(i)) }

func (n nodeRef) setRkey(i int, v uint64)  { n.store(fRkeys+uint64(i), v) }
func (n nodeRef) setChild(i int, v uint64) { n.store(fChildren+uint64(i), v) }

// interiorChild returns the child offset covering ik.
func (n nodeRef) interiorChild(ik uint64) uint64 {
	nk := n.nkeys()
	if nk > intWidth {
		nk = intWidth // torn read during an update; version check retries
	}
	lo, hi := 0, nk
	for lo < hi {
		mid := (lo + hi) / 2
		if ik < n.rkey(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return n.child(lo)
}

// keyCmp orders (ikey, kind) pairs; kinds follow internal/masstree.
func keyCmp(aIkey uint64, aKind uint8, bIkey uint64, bKind uint8) int {
	switch {
	case aIkey < bIkey:
		return -1
	case aIkey > bIkey:
		return 1
	case aKind < bKind:
		return -1
	case aKind > bKind:
		return 1
	default:
		return 0
	}
}
