package core

import "bytes"

// Cursor is the bidirectional iterator surface every layer of the system
// shares: the core store implements it over the durable Masstree, the
// shard layer as a k-way merge of per-shard cursors, the transaction
// layer as an overlay of pending writes, and the façade re-exports it.
//
// A cursor is not a snapshot: it observes committed and in-flight writes
// much like the callback scans, but — unlike them — it never holds the
// epoch guard across more than one internal batch, so an arbitrarily long
// iteration never delays a checkpoint by more than one batch refill.
//
// Key and Value return slices that are only valid until the next
// positioning call (they alias the cursor's refill buffers); copy them to
// retain. Cursors are not safe for concurrent use.
type Cursor interface {
	// First positions the cursor at the smallest in-bounds key.
	First() bool
	// Last positions the cursor at the largest in-bounds key.
	Last() bool
	// SeekGE positions the cursor at the smallest key ≥ k.
	SeekGE(k []byte) bool
	// SeekLT positions the cursor at the largest key < k.
	SeekLT(k []byte) bool
	// Next advances to the next larger key. On a fresh or before-first
	// cursor it is First.
	Next() bool
	// Prev advances to the next smaller key. On a fresh or after-last
	// cursor it is Last.
	Prev() bool
	// Valid reports whether the cursor is positioned at an entry.
	Valid() bool
	// Key returns the current key; valid until the next positioning call.
	Key() []byte
	// Value returns the current value; valid until the next positioning
	// call.
	Value() []byte
	// ValueUint64 is the uint64 view of the current value (DecodeValue).
	ValueUint64() uint64
	// Close releases the cursor. Positioning a closed cursor panics.
	Close()
}

// IterOptions bounds and orients a cursor.
type IterOptions struct {
	// LowerBound restricts the cursor to keys ≥ LowerBound; nil means the
	// start of the keyspace.
	LowerBound []byte
	// UpperBound restricts the cursor to keys < UpperBound (exclusive);
	// nil means the end of the keyspace.
	UpperBound []byte
	// Reverse orients the range-over-func adapters built from the cursor
	// (descending instead of ascending). The manual Seek/Next/Prev surface
	// is bidirectional regardless.
	Reverse bool
}

const (
	// iterBatchMin is a fresh cursor's first-seek entry budget; refills
	// double the budget, so short scans stay cheap and long ones amortize
	// the guard and descent.
	iterBatchMin = 16
	// iterBatchFloor is the smallest adapted seek budget (see seekBatch).
	iterBatchFloor = 4
	// iterBatchMax caps the per-refill budget. One refill is the longest a
	// cursor ever holds the epoch guard, so this bounds how long any scan
	// can delay a checkpoint.
	iterBatchMax = 1024
)

// Cursor position states.
const (
	posFresh  = iota // never positioned: Next means First, Prev means Last
	posAt            // at ents[pos]
	posBefore        // before the first in-bounds key
	posAfter         // after the last in-bounds key
)

// iterEnt locates one batch entry inside the cursor's arena: the key at
// [koff, koff+klen), its value immediately after, at [koff+klen,
// koff+klen+vlen). Offsets instead of slices keep the batch a single
// reused allocation. Inline values skip the arena entirely: vw holds the
// self-contained value word (nonzero exactly for inline values, whose tag
// bit is set), decoded on demand without any guard.
type iterEnt struct {
	koff, klen, vlen int
	vw               uint64
}

// Iter is the core store's cursor: it walks the tree in bounded batches,
// entering the epoch guard only for the duration of each refill and
// re-seeking by the last delivered key between batches, so checkpoints
// are never blocked by a long iteration (the callback Scan, by contrast,
// pins the guard for its whole walk).
type Iter struct {
	h    Handle
	opts IterOptions

	ents      []iterEnt // current batch, in iteration order
	arena     []byte    // key and value bytes backing ents
	pos       int
	fwd       bool   // direction ents was filled in
	more      bool   // entries may remain beyond ents in direction fwd
	resume    []byte // refill key: successor (forward) or exclusive bound (reverse)
	seekBuf   []byte
	keyBuf    []byte // scratch the tree walk builds keys in
	valBuf    []byte // scratch inline values are materialized in
	batch     int
	consumed  int  // entries delivered since the last explicit positioning
	stopped   bool // the last fill hit a bound (no entries remain beyond it)
	state     int
	closed    bool
	collectFn func(k []byte, vw uint64) bool // bound once; see collect
}

// NewIter opens a cursor over the handle's store. Like the handle itself,
// a cursor is single-threaded; distinct cursors (on distinct handles) are
// independent.
func (h Handle) NewIter(o IterOptions) Cursor {
	it := &Iter{h: h, batch: iterBatchMin, consumed: iterBatchMin, state: posFresh}
	it.collectFn = it.collect
	it.opts.Reverse = o.Reverse
	if o.LowerBound != nil {
		it.opts.LowerBound = append([]byte(nil), o.LowerBound...)
	}
	if o.UpperBound != nil {
		it.opts.UpperBound = append([]byte(nil), o.UpperBound...)
	}
	return it
}

// NewIter opens a cursor on worker 0's handle.
func (s *Store) NewIter(o IterOptions) Cursor { return s.handles[0].NewIter(o) }

// collect is the tree walk's sink: it applies the terminating bound for
// the fill direction and copies the entry into the batch arena (inline
// values stay in their self-contained word instead). Bound once as
// collectFn so refills allocate nothing.
func (it *Iter) collect(k []byte, vw uint64) bool {
	if it.fwd {
		if it.opts.UpperBound != nil && bytes.Compare(k, it.opts.UpperBound) >= 0 {
			it.stopped = true
			return false
		}
	} else if it.opts.LowerBound != nil && bytes.Compare(k, it.opts.LowerBound) < 0 {
		it.stopped = true
		return false
	}
	koff := len(it.arena)
	it.arena = append(it.arena, k...)
	ent := iterEnt{koff: koff, klen: len(it.arena) - koff}
	if vwIsInline(vw) {
		ent.vw = vw // self-contained; no copy, no guard needed later
	} else {
		it.arena = it.h.appendValue(it.arena, vw)
		ent.vlen = len(it.arena) - ent.koff - ent.klen
	}
	it.ents = append(it.ents, ent)
	return true
}

// fill loads one batch starting at seek (inclusive forward, exclusive
// reverse; unbounded reverse starts at the end of the keyspace), holding
// the epoch guard only for the duration of the batch.
func (it *Iter) fill(fwd bool, seek []byte, unbounded bool) bool {
	if it.closed {
		panic("core: cursor used after Close")
	}
	h := it.h
	it.ents = it.ents[:0]
	it.arena = it.arena[:0]
	it.pos = 0
	it.fwd = fwd
	it.stopped = false
	h.s.mgr.Enter()
	h.s.stats.Scans.Add(h.w, 1)
	visited := 0
	if fwd {
		h.scanLayer(h.rootCell0(), &it.keyBuf, 0, seek, it.batch, &visited, it.collectFn)
	} else {
		b := revBound{}
		if !unbounded {
			b = boundFor(seek)
		}
		h.scanLayerRev(h.rootCell0(), &it.keyBuf, 0, &b, it.batch, &visited, it.collectFn)
	}
	h.s.mgr.Exit()
	stopped := it.stopped
	it.more = !stopped && len(it.ents) == it.batch
	if it.more {
		e := it.ents[len(it.ents)-1]
		last := it.arena[e.koff : e.koff+e.klen]
		if fwd {
			// Resume strictly after the last delivered key: its successor
			// in bytewise order is the key extended by one zero byte.
			it.resume = append(append(it.resume[:0], last...), 0)
		} else {
			it.resume = append(it.resume[:0], last...)
		}
	}
	if it.batch < iterBatchMax {
		it.batch *= 2
	}
	if len(it.ents) == 0 {
		it.state = posAfter
		if !fwd {
			it.state = posBefore
		}
		return false
	}
	it.state = posAt
	it.consumed++
	return true
}

// seekBatch picks the entry budget for an explicit positioning call,
// adapting to the cursor's recent consumption: a cursor re-seeked once
// per request — the YCSB-E shape — learns its typical scan length and
// fetches exactly that many entries per seek, instead of a fixed
// overestimate. Underestimates cost one extra (doubled) refill.
func (it *Iter) seekBatch() {
	b := it.consumed
	if b < iterBatchFloor {
		b = iterBatchFloor
	}
	if b > iterBatchMax {
		b = iterBatchMax
	}
	it.batch = b
	it.consumed = 0
}

// First positions the cursor at the smallest in-bounds key.
func (it *Iter) First() bool {
	it.seekBatch()
	return it.fill(true, it.opts.LowerBound, false)
}

// Last positions the cursor at the largest in-bounds key.
func (it *Iter) Last() bool {
	it.seekBatch()
	if it.opts.UpperBound != nil {
		return it.fill(false, it.opts.UpperBound, false)
	}
	return it.fill(false, nil, true)
}

// SeekGE positions the cursor at the smallest key ≥ k (clamped to the
// bounds).
func (it *Iter) SeekGE(k []byte) bool {
	if it.opts.LowerBound != nil && bytes.Compare(k, it.opts.LowerBound) < 0 {
		k = it.opts.LowerBound
	}
	it.seekBatch()
	it.seekBuf = append(it.seekBuf[:0], k...)
	return it.fill(true, it.seekBuf, false)
}

// SeekLT positions the cursor at the largest key < k (clamped to the
// bounds).
func (it *Iter) SeekLT(k []byte) bool {
	if it.opts.UpperBound != nil && bytes.Compare(k, it.opts.UpperBound) > 0 {
		k = it.opts.UpperBound
	}
	it.seekBatch()
	it.seekBuf = append(it.seekBuf[:0], k...)
	return it.fill(false, it.seekBuf, false)
}

// Next advances to the next larger key. The in-buffer advance is the
// inlinable fast path; everything else defers to nextSlow.
func (it *Iter) Next() bool {
	if it.state == posAt && it.fwd && it.pos+1 < len(it.ents) {
		it.pos++
		it.consumed++
		return true
	}
	return it.nextSlow()
}

func (it *Iter) nextSlow() bool {
	switch it.state {
	case posFresh, posBefore:
		return it.First()
	case posAfter:
		return false
	}
	if it.fwd {
		// Forward buffer exhausted (the fast path covered its interior).
		if !it.more {
			it.state = posAfter
			return false
		}
		return it.fill(true, it.resume, false)
	}
	// Direction switch: resume forward from the current key's successor.
	it.seekBatch()
	it.seekBuf = append(append(it.seekBuf[:0], it.Key()...), 0)
	return it.fill(true, it.seekBuf, false)
}

// Prev advances to the next smaller key; like Next, split so the
// in-buffer advance inlines.
func (it *Iter) Prev() bool {
	if it.state == posAt && !it.fwd && it.pos+1 < len(it.ents) {
		it.pos++
		it.consumed++
		return true
	}
	return it.prevSlow()
}

func (it *Iter) prevSlow() bool {
	switch it.state {
	case posFresh, posAfter:
		return it.Last()
	case posBefore:
		return false
	}
	if !it.fwd {
		if !it.more {
			it.state = posBefore
			return false
		}
		return it.fill(false, it.resume, false)
	}
	// Direction switch: the largest key strictly below the current one.
	it.seekBatch()
	it.seekBuf = append(it.seekBuf[:0], it.Key()...)
	return it.fill(false, it.seekBuf, false)
}

// Valid reports whether the cursor is positioned at an entry.
func (it *Iter) Valid() bool { return it.state == posAt }

// Key returns the current key; valid until the next positioning call.
func (it *Iter) Key() []byte {
	if it.state != posAt {
		return nil
	}
	e := it.ents[it.pos]
	return it.arena[e.koff : e.koff+e.klen : e.koff+e.klen]
}

// Value returns the current value; valid until the next positioning call.
func (it *Iter) Value() []byte {
	if it.state != posAt {
		return nil
	}
	e := it.ents[it.pos]
	if e.vw != 0 {
		it.valBuf = appendInlineValue(it.valBuf[:0], e.vw)
		return it.valBuf
	}
	return it.arena[e.koff+e.klen : e.koff+e.klen+e.vlen]
}

// ValueUint64 is the uint64 view of the current value.
func (it *Iter) ValueUint64() uint64 {
	if it.state != posAt {
		return 0
	}
	if e := it.ents[it.pos]; e.vw != 0 {
		return it.h.vwUint64(e.vw) // inline word: decoded without the arena
	}
	return DecodeValue(it.Value())
}

// Close releases the cursor's buffers. Positioning after Close panics.
func (it *Iter) Close() {
	it.closed = true
	it.state = posAfter
	it.ents, it.arena, it.resume, it.seekBuf, it.keyBuf = nil, nil, nil, nil, nil
}
