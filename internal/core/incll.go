package core

// This file implements the paper's logging decision logic (§4.1, Listing 3)
// and lazy recovery (§4.3, Listing 4):
//
//   - beforePermChange runs before an insert or remove modifies the
//     permutation word, maintaining InCLLp (nodeEpoch, permutationInCLL,
//     insAllowed, logged).
//   - beforeValUpdate runs before an update overwrites a value word
//     (inline value or heap-block pointer — see value.go), maintaining
//     InCLL1/InCLL2 — including the mid-epoch claim of an unused ValInCLL
//     that the paper's §4.1.3 describes.
//   - logLeaf / logInterior fall back to the external object log.
//   - lazyRecoverLeaf / lazyRecoverInterior repair a node on its first
//     access after a crash, under transient recovery locks.
//
// Persistence-ordering arguments are local to each cache line: the InCLLp
// fields share line 0 with the permutation, and each ValInCLL shares its
// line with the value words it can log, so "undo copy before mutation" in
// program order is enough under PCSO — no flushes on these paths.

// beforePermChange prepares the leaf for a permutation change in the
// current epoch. isInsert distinguishes insertion (which a prior removal in
// the same epoch forbids from using the InCLL) from removal (which is
// always InCLL-compatible but forbids later insertions).
func (h Handle) beforePermChange(n nodeRef, isInsert bool) {
	s := h.s
	cur := s.mgr.Current()
	w := n.load(fEpoch)
	if epochOf(w) == cur {
		if loggedBit(w) {
			return // fully covered by the external log this epoch
		}
		if isInsert {
			if !insAllowedBit(w) {
				// Remove-then-insert in one epoch could overwrite an
				// entry that recovery must restore: external log.
				h.logLeaf(n, cur)
			}
			return
		}
		// A removal forbids later InCLL insertions this epoch.
		if insAllowedBit(w) {
			n.store(fEpoch, packEpochWord(cur, false, false))
		}
		return
	}
	// First modification of this node in the current epoch.
	if s.cfg.DisableInCLL || cur>>16 != epochOf(w)>>16 {
		// LOGGING mode, or the 16-bit low-epoch encoding in the ValInCLLs
		// would be ambiguous (happens about once an hour at 64 ms epochs).
		h.logLeaf(n, cur)
		return
	}
	n.store(fPermInCLL, uint64(n.perm()))
	n.store(fInCLL1, invalidValInCLL(cur))
	n.store(fInCLL2, invalidValInCLL(cur))
	// Same cache line as the two stores above and the permutation that the
	// caller is about to modify: PCSO orders everything for free.
	n.store(fEpoch, packEpochWord(cur, isInsert, false))
	s.stats.InCLLPerm.Add(h.w, 1)
}

// beforeValUpdate prepares the leaf for overwriting vals[idx] in the
// current epoch, logging the old pointer in the ValInCLL that shares its
// cache line.
func (h Handle) beforeValUpdate(n nodeRef, idx int) {
	s := h.s
	cur := s.mgr.Current()
	w := n.load(fEpoch)
	line := valLine(idx)
	if epochOf(w) != cur {
		// First modification this epoch.
		if s.cfg.DisableInCLL || cur>>16 != epochOf(w)>>16 {
			h.logLeaf(n, cur)
			return
		}
		n.store(fPermInCLL, uint64(n.perm()))
		vc := packValInCLL(n.val(idx), idx, cur)
		if line == 0 {
			n.store(fInCLL1, vc)
			n.store(fInCLL2, invalidValInCLL(cur))
		} else {
			n.store(fInCLL1, invalidValInCLL(cur))
			n.store(fInCLL2, vc)
		}
		n.store(fEpoch, packEpochWord(cur, true, false))
		s.stats.InCLLVal.Add(h.w, 1)
		return
	}
	if loggedBit(w) {
		return
	}
	ic := n.load(inCLLOff(line))
	switch valInCLLIdx(ic) {
	case idx:
		// This slot's epoch-start value is already captured.
		return
	case invalidIdx:
		// Claim the unused ValInCLL mid-epoch: idx was not modified yet
		// this epoch (a same-epoch remove would have forced logging, and a
		// same-epoch insert of this slot makes its value irrelevant after
		// rollback), so its current value is the epoch-start value.
		n.store(inCLLOff(line), packValInCLL(n.val(idx), idx, cur))
		s.stats.InCLLVal.Add(h.w, 1)
		return
	default:
		// Two hot slots in one cache line: external log.
		h.logLeaf(n, cur)
	}
}

// logLeaf records the leaf's pre-image in the external log (once per
// epoch) and marks it logged. The entry is durable when this returns.
func (h Handle) logLeaf(n nodeRef, cur uint64) {
	w := n.load(fEpoch)
	if epochOf(w) == cur && loggedBit(w) {
		return
	}
	if !h.lw.LogObject(n.off, NodeWords) {
		panic("core: external log segment full; increase Config.LogSegWords or shorten epochs")
	}
	n.store(fEpoch, packEpochWord(cur, true, true))
	h.s.stats.LoggedNodes.Add(h.w, 1)
}

// logInterior records an interior node's pre-image (once per epoch).
func (h Handle) logInterior(n nodeRef, cur uint64) {
	if n.load(fLogEpoch) == cur {
		return
	}
	if !h.lw.LogObject(n.off, NodeWords) {
		panic("core: external log segment full; increase Config.LogSegWords or shorten epochs")
	}
	n.store(fLogEpoch, cur)
	h.s.stats.LoggedNodes.Add(h.w, 1)
}

// logNode dispatches on the node type.
func (h Handle) logNode(n nodeRef, cur uint64) {
	if n.isLeaf() {
		h.logLeaf(n, cur)
	} else {
		h.logInterior(n, cur)
	}
}

// ---- lazy recovery (Listing 4) ----

// lazyRecoverLeaf repairs a leaf on its first access after a restart:
// apply InCLLp and the ValInCLLs for failed epochs, refresh the in-line
// undo state, and reinitialize the transient version word (the lock may
// have crashed in a held state).
func (s *Store) lazyRecoverLeaf(n nodeRef) {
	execBase := s.mgr.CurrentExec()
	w := n.load(fEpoch)
	if epochOf(w) >= execBase {
		return
	}
	lk := &s.recLocks[n.off%uint64(len(s.recLocks))]
	lk.Lock()
	defer lk.Unlock()
	w = n.load(fEpoch)
	ne := epochOf(w)
	if ne >= execBase {
		return
	}
	if s.mgr.IsFailed(ne) {
		n.store(fPerm, n.load(fPermInCLL))
	}
	high := ne >> 16 << 16
	for l := 0; l < 2; l++ {
		ic := n.load(inCLLOff(l))
		if idx := valInCLLIdx(ic); idx != invalidIdx && idx < LeafWidth {
			if s.mgr.IsFailed(high | valInCLLEp16(ic)) {
				n.store(valOff(idx), valInCLLWord(ic))
			}
		}
	}
	// Reset the in-line logs so a crash in the current execution restores
	// exactly this repaired state.
	n.store(fPermInCLL, uint64(n.perm()))
	n.store(fInCLL1, invalidValInCLL(execBase))
	n.store(fInCLL2, invalidValInCLL(execBase))
	n.store(fEpoch, packEpochWord(execBase, true, false))
	n.store(fVersion, 0) // the lock state did not survive the crash
	s.stats.LazyRecoveries.Add(0, 1)
}

// lazyRecoverInterior reinitializes an interior node's transient state on
// first access after a restart. Interior *content* was repaired eagerly by
// the external log; only the version word needs care.
func (s *Store) lazyRecoverInterior(n nodeRef) {
	execBase := s.mgr.CurrentExec()
	if n.load(fTouch) >= execBase {
		return
	}
	lk := &s.recLocks[n.off%uint64(len(s.recLocks))]
	lk.Lock()
	defer lk.Unlock()
	if n.load(fTouch) >= execBase {
		return
	}
	n.store(fVersion, 0)
	n.store(fTouch, execBase)
	s.stats.LazyRecoveries.Add(0, 1)
}

// lazyRecover dispatches on node type.
func (s *Store) lazyRecover(n nodeRef) {
	if n.isLeaf() {
		s.lazyRecoverLeaf(n)
	} else {
		s.lazyRecoverInterior(n)
	}
}
