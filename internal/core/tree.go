package core

import (
	"encoding/binary"

	"incll/internal/alloc"
	"incll/internal/extlog"
	"incll/internal/obs"
)

// Key slicing, identical to internal/masstree: each trie layer indexes an
// 8-byte big-endian slice; kind 0..8 means the key ends here with that many
// bytes, kindLayer means it continues in a next-layer tree.
const kindLayer = 9

func ikeyOf(k []byte) (uint64, uint8) {
	var buf [8]byte
	n := copy(buf[:], k)
	ik := binary.BigEndian.Uint64(buf[:])
	if len(k) > 8 {
		return ik, kindLayer
	}
	return ik, uint8(n)
}

// EncodeUint64 renders v as an 8-byte big-endian key (integer order equals
// key order), the form the YCSB workloads use.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Handle is one worker's interface to the durable tree. Handles are not
// safe for concurrent use; give each worker its own (they own an external
// log segment and an allocator shard).
type Handle struct {
	s  *Store
	lw *extlog.Writer
	ah *alloc.Handle
	w  int // worker index; stripes the stats counters
}

func (h Handle) ref(off uint64) nodeRef { return nodeRef{a: h.s.arena, off: off} }

// lapRetry charges the failed optimistic attempt — everything since the
// op's last phase boundary — to the retry phase. A no-op unless a sampled
// op is in flight on this worker, so the version-check failure paths call
// it unconditionally.
func (h Handle) lapRetry() { h.s.phases.Lap(h.w, obs.PhaseRetry) }

func (h Handle) rootCell0() rootCell { return rootCell{s: h.s, off: h.s.hdrOff} }

// ---- node construction ----

func (h Handle) newLeaf(cur uint64) nodeRef {
	off := h.ah.AllocNode()
	if off == 0 {
		panic("core: durable heap exhausted (increase Config.HeapWords)")
	}
	n := h.ref(off)
	n.store(fVersion, 0)
	n.store(fParent, 0)
	n.store(fMeta, metaLeaf)
	n.store(fNext, 0)
	// Born logged: a crash in the birth epoch reclaims the node through
	// the allocator's rollback, so no undo state is needed this epoch.
	n.store(fEpoch, packEpochWord(cur, true, true))
	n.store(fPermInCLL, uint64(permIdentity))
	n.store(fPerm, uint64(permIdentity))
	n.store(fHikey, ^uint64(0))
	n.store(fKinds, 0)
	n.store(fInCLL1, invalidValInCLL(cur))
	n.store(fInCLL2, invalidValInCLL(cur))
	return n
}

func (h Handle) newInterior(cur uint64) nodeRef {
	off := h.ah.AllocNode()
	if off == 0 {
		panic("core: durable heap exhausted (increase Config.HeapWords)")
	}
	n := h.ref(off)
	n.store(fVersion, 0)
	n.store(fParent, 0)
	n.store(fMeta, 0)
	n.store(fLogEpoch, cur) // born logged, same argument as newLeaf
	n.store(fTouch, cur)
	n.store(fNkeys, 0)
	return n
}

func (h Handle) newAnchor() uint64 {
	off := h.ah.Alloc(anchorPayloadWords)
	if off == 0 {
		panic("core: durable heap exhausted (increase Config.HeapWords)")
	}
	a := h.s.arena
	cur := h.s.mgr.Current()
	a.Store(off+aRoot, 0)
	a.Store(off+aRootInCLL, 0)
	a.Store(off+aRootEpoch, cur)
	return off
}

// ---- descent ----

// descend walks from root to the leaf that should cover ik, running lazy
// recovery gates along the way.
func (h Handle) descend(rootOff uint64, ik uint64) nodeRef {
	root := h.ref(rootOff)
	n := root
	for {
		if n.isLeaf() {
			h.s.lazyRecoverLeaf(n)
			return n
		}
		h.s.lazyRecoverInterior(n)
		v := n.stable()
		c := n.interiorChild(ik)
		if n.changed(v) || c == 0 {
			n = root
			continue
		}
		n = h.ref(c)
	}
}

// ---- Get ----

// Get returns the uint64 view of the value stored under k (see
// DecodeValue for the byte↔uint64 convention).
//
// The unlocked entry points (Get, AppendGet, PutBytes, Delete) are the
// latency-attribution sample sites: a 1-in-N op starts the lap clock here,
// charges its Enter wait to epoch_wait, and its tree work to descent (the
// optimistic-retry sites lap `retry` for every wasted attempt). The
// *Locked variants — which the transaction commit path applies through —
// are never sampled, so commit-side and op-side attribution cannot nest.
func (h Handle) Get(k []byte) (uint64, bool) {
	if ph := h.s.phases; ph.Begin(h.w) {
		h.s.mgr.Enter()
		ph.Lap(h.w, obs.PhaseEpochWait)
		v, ok := h.GetLocked(k)
		ph.End(h.w, obs.PhaseDescent)
		h.s.mgr.Exit()
		return v, ok
	}
	h.s.mgr.Enter()
	defer h.s.mgr.Exit()
	return h.GetLocked(k)
}

// GetLocked is Get for a caller that already holds the epoch guard
// (Store.Epochs().Enter) or otherwise excludes an epoch advance — the
// transaction manager's commit path.
func (h Handle) GetLocked(k []byte) (uint64, bool) {
	h.s.stats.Gets.Add(h.w, 1)
	vw, ok := h.layerGet(h.rootCell0(), k)
	if !ok {
		return 0, false
	}
	return h.vwUint64(vw), true
}

// GetBytes returns a copy of the byte value stored under k.
func (h Handle) GetBytes(k []byte) ([]byte, bool) {
	return h.AppendGet(nil, k)
}

// AppendGet appends k's value bytes to dst, returning the extended slice;
// the allocation-free form of GetBytes.
func (h Handle) AppendGet(dst []byte, k []byte) ([]byte, bool) {
	if ph := h.s.phases; ph.Begin(h.w) {
		h.s.mgr.Enter()
		ph.Lap(h.w, obs.PhaseEpochWait)
		out, ok := h.AppendGetLocked(dst, k)
		ph.End(h.w, obs.PhaseDescent)
		h.s.mgr.Exit()
		return out, ok
	}
	h.s.mgr.Enter()
	defer h.s.mgr.Exit()
	return h.AppendGetLocked(dst, k)
}

// AppendGetLocked is AppendGet under a caller-held epoch guard.
func (h Handle) AppendGetLocked(dst []byte, k []byte) ([]byte, bool) {
	h.s.stats.Gets.Add(h.w, 1)
	vw, ok := h.layerGet(h.rootCell0(), k)
	if !ok {
		return dst, false
	}
	return h.appendValue(dst, vw), true
}

// layerGet resolves k to its value word. Dereferencing the word after the
// leaf's version check is safe while the epoch guard is held: published
// heap blocks are immutable and freed ones survive until the next boundary.
func (h Handle) layerGet(cell rootCell, k []byte) (uint64, bool) {
	ik, kind := ikeyOf(k)
retry:
	rootOff := cell.root()
	if rootOff == 0 {
		return 0, false
	}
	n := h.descend(rootOff, ik)
readLeaf:
	v := n.stable()
	if ik >= n.hikey() {
		nn := n.next()
		if n.changed(v) {
			h.lapRetry()
			goto retry
		}
		if nn != 0 {
			n = h.ref(nn)
			h.s.lazyRecoverLeaf(n)
			goto readLeaf
		}
	}
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if !found {
		if n.changed(v) {
			h.lapRetry()
			goto retry
		}
		return 0, false
	}
	slot := p.slot(pos)
	vw := n.val(slot)
	if n.changed(v) {
		h.lapRetry()
		goto retry
	}
	if kind == kindLayer {
		return h.layerGet(rootCell{s: h.s, off: vw}, k[8:])
	}
	return vw, true
}

// ---- Put ----

// Put stores v under k (as its minimal big-endian byte value — inline in
// the leaf whenever v < 2^40); reports whether k was newly inserted.
func (h Handle) Put(k []byte, v uint64) bool {
	var buf [8]byte
	return h.PutBytes(k, AppendValueUint64(buf[:0], v))
}

// PutLocked is Put for a caller that already holds the epoch guard
// (Store.Epochs().Enter) or otherwise excludes an epoch advance.
func (h Handle) PutLocked(k []byte, v uint64) bool {
	var buf [8]byte
	return h.PutBytesLocked(k, AppendValueUint64(buf[:0], v))
}

// PutBytes stores the byte value v (len ≤ MaxValueBytes) under k; reports
// whether k was newly inserted.
func (h Handle) PutBytes(k []byte, v []byte) bool {
	if ph := h.s.phases; ph.Begin(h.w) {
		h.s.mgr.Enter()
		ph.Lap(h.w, obs.PhaseEpochWait)
		inserted := h.PutBytesLocked(k, v)
		ph.End(h.w, obs.PhaseDescent)
		h.s.mgr.Exit()
		return inserted
	}
	h.s.mgr.Enter()
	defer h.s.mgr.Exit()
	return h.PutBytesLocked(k, v)
}

// PutBytesLocked is PutBytes under a caller-held epoch guard.
func (h Handle) PutBytesLocked(k []byte, v []byte) bool {
	if len(k) > MaxKeyBytes {
		// Enforced at the write chokepoint so no path (including the
		// uint64 view) can create a key the validated, error-returning
		// paths refuse to touch again.
		panic("core: key exceeds MaxKeyBytes")
	}
	h.s.stats.Puts.Add(h.w, 1)
	inserted := h.layerPut(h.rootCell0(), k, k, v)
	if inserted {
		h.s.size.Add(1)
	}
	return inserted
}

// layerPut installs val under k within cell's layer. full is the complete
// key (k is its per-layer suffix), carried down so the change publication
// — which must happen inside the leaf-locked region, where concurrent
// writers of the same key are serialized, so the journal order equals the
// apply order — can name the key a subscriber would use.
func (h Handle) layerPut(cell rootCell, full, k []byte, val []byte) bool {
	ik, kind := ikeyOf(k)
retry:
	rootOff := cell.root()
	if rootOff == 0 {
		cur := h.s.mgr.Current()
		fresh := h.newLeaf(cur)
		if !cell.casRoot(0, fresh.off, cur) {
			h.ah.FreeNode(fresh.off)
			h.lapRetry()
		}
		goto retry
	}
	n := h.descend(rootOff, ik)
	n = h.lockCovering(n, ik)
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if found {
		slot := p.slot(pos)
		vw := n.val(slot)
		if kind == kindLayer {
			n.unlock()
			return h.layerPut(rootCell{s: h.s, off: vw}, full, k[8:], val)
		}
		h.beforeValUpdate(n, slot)
		n.setVal(slot, h.newValueWord(val))
		h.s.publish(ChangePut, full, val)
		n.unlock()
		h.freeValueWord(vw)
		return false
	}
	// Build the slot payload before exposing it.
	var valWord uint64
	if kind == kindLayer {
		valWord = h.newAnchor()
		// The recursion publishes the change from the sub-layer's locked
		// leaf; this leaf's lock already excludes same-key competitors.
		h.layerPut(rootCell{s: h.s, off: valWord}, full, k[8:], val)
	} else {
		valWord = h.newValueWord(val)
	}
	if p.count() < LeafWidth {
		h.beforePermChange(n, true)
		slot := p.freeSlot()
		n.setIkey(slot, ik)
		n.setKind(slot, kind)
		n.setVal(slot, valWord)
		n.markInsert()
		n.store(fPerm, uint64(p.insert(pos)))
		if kind != kindLayer {
			h.s.publish(ChangePut, full, val)
		}
		n.unlock()
		return true
	}
	h.splitLeafInsert(cell, n, ik, kind, valWord, pos, full, val)
	return true
}

// lockCovering locks n and walks right until n covers ik (B-link).
func (h Handle) lockCovering(n nodeRef, ik uint64) nodeRef {
	n.lock()
	for ik >= n.hikey() {
		nn := n.next()
		if nn == 0 {
			return n
		}
		m := h.ref(nn)
		h.s.lazyRecoverLeaf(m)
		m.lock()
		n.unlock()
		n = m
	}
	return n
}

// ---- split ----

func (h Handle) splitLeafInsert(cell rootCell, n nodeRef, ik uint64, kind uint8, valWord uint64, pos int, full, val []byte) {
	cur := h.s.mgr.Current()
	// Splits restructure more than the InCLLs can express: log the whole
	// pre-image first (§4.2). The fresh sibling needs no log — a failed
	// birth epoch reclaims it through the allocator.
	h.logLeaf(n, cur)
	n.markSplit()
	nn := h.newLeaf(cur)
	nn.lock()
	p := n.perm()

	sp := splitPoint(n, p)
	moved := 0
	for i := sp; i < LeafWidth; i++ {
		s := p.slot(i)
		nn.setIkey(moved, n.ikey(s))
		nn.setKind(moved, n.kind(s))
		nn.setVal(moved, n.val(s))
		moved++
	}
	nn.store(fPerm, uint64(identityPrefix(moved)))
	splitIkey := nn.ikey(0)

	// Publish the B-link before shrinking n so no key is ever unreachable.
	nn.store(fHikey, n.hikey())
	nn.store(fNext, n.next())
	n.store(fNext, nn.off)
	n.store(fHikey, splitIkey)
	n.store(fPerm, uint64(p.truncate(sp)))

	target, tpos := n, pos
	if ik >= splitIkey {
		target, tpos = nn, pos-sp
	}
	tp := target.perm()
	slot := tp.freeSlot()
	target.setIkey(slot, ik)
	target.setKind(slot, kind)
	target.setVal(slot, valWord)
	target.markInsert()
	target.store(fPerm, uint64(tp.insert(tpos)))

	h.insertUpward(cell, n, nn, splitIkey)
	if kind != kindLayer {
		// Publish before the unlocks, like the in-leaf insert paths: the
		// leaf locks serialize same-key writers, so journal order equals
		// apply order. (Layer entries publish from the sub-layer insert.)
		h.s.publish(ChangePut, full, val)
	}
	nn.unlock()
	n.unlock()
}

// splitPoint picks a near-middle position whose boundary ikeys differ, so
// interior routing by ikey never separates equal ikeys. One ikey occupies
// at most ten slots (kinds 0..8 plus a layer), so a point always exists.
func splitPoint(n nodeRef, p perm) int {
	mid := LeafWidth / 2
	for d := 0; d < LeafWidth; d++ {
		for _, sp := range [2]int{mid + d, mid - d} {
			if sp <= 0 || sp >= p.count() {
				continue
			}
			if n.ikey(p.slot(sp-1)) != n.ikey(p.slot(sp)) {
				return sp
			}
		}
	}
	panic("core: no valid split point (more equal ikeys than a leaf can hold)")
}

// insertUpward installs the separator (splitIkey, right) above the split
// pair left/right (both locked by the caller; locks retained).
func (h Handle) insertUpward(cell rootCell, left, right nodeRef, splitIkey uint64) {
	cur := h.s.mgr.Current()
	if left.parent() == 0 {
		nr := h.newInterior(cur)
		nr.store(fNkeys, 1)
		nr.setRkey(0, splitIkey)
		nr.setChild(0, left.off)
		nr.setChild(1, right.off)
		// left is already logged (leaf split) or logged by the interior
		// path; right is freshly allocated.
		left.store(fParent, nr.off)
		right.store(fParent, nr.off)
		cell.setRoot(nr.off, cur)
		return
	}
	p := h.lockParent(left)
	h.logInterior(p, cur)
	right.store(fParent, p.off)
	nk := p.nkeys()
	pos := 0
	for pos < nk && splitIkey >= p.rkey(pos) {
		pos++
	}
	if nk < intWidth {
		p.markInsert()
		for i := nk; i > pos; i-- {
			p.setRkey(i, p.rkey(i-1))
			p.setChild(i+1, p.child(i))
		}
		p.setRkey(pos, splitIkey)
		p.setChild(pos+1, right.off)
		p.store(fNkeys, uint64(nk+1))
		p.unlock()
		return
	}
	h.splitInterior(cell, p, splitIkey, right, pos)
}

// lockParent locks child's parent, retrying around concurrent parent
// splits that reassign the pointer.
func (h Handle) lockParent(child nodeRef) nodeRef {
	for {
		poff := child.parent()
		p := h.ref(poff)
		h.s.lazyRecoverInterior(p)
		p.lock()
		if child.parent() == poff {
			return p
		}
		p.unlock()
	}
}

// splitInterior splits the full, locked, already-logged interior p while
// inserting (key, child) at position pos. Consumes p's lock.
func (h Handle) splitInterior(cell rootCell, p nodeRef, key uint64, child nodeRef, pos int) {
	cur := h.s.mgr.Current()
	p.markSplit()
	var keys [intWidth + 1]uint64
	var kids [intWidth + 2]uint64
	for i := 0; i < intWidth; i++ {
		keys[i] = p.rkey(i)
	}
	for i := 0; i <= intWidth; i++ {
		kids[i] = p.child(i)
	}
	copy(keys[pos+1:], keys[pos:intWidth])
	keys[pos] = key
	copy(kids[pos+2:], kids[pos+1:intWidth+1])
	kids[pos+1] = child.off

	half := (intWidth + 1) / 2
	promoted := keys[half]

	pp := h.newInterior(cur)
	pp.lock()
	rn := 0
	for i := half + 1; i < intWidth+1; i++ {
		pp.setRkey(rn, keys[i])
		rn++
	}
	for i := half + 1; i < intWidth+2; i++ {
		c := h.ref(kids[i])
		pp.setChild(i-half-1, c.off)
		// Reassigning a child's parent pointer mutates that child: log its
		// pre-image first so the pointer rolls back with everything else.
		h.logNode(c, cur)
		c.store(fParent, pp.off)
	}
	pp.store(fNkeys, uint64(rn))

	for i := 0; i < half; i++ {
		p.setRkey(i, keys[i])
	}
	for i := 0; i <= half; i++ {
		p.setChild(i, kids[i])
	}
	p.store(fNkeys, uint64(half))

	h.insertUpward(cell, p, pp, promoted)
	pp.unlock()
	p.unlock()
}

// ---- Delete ----

// Delete removes k; reports whether it was present. Emptied leaves remain
// in the tree, as in the transient baseline.
func (h Handle) Delete(k []byte) bool {
	if ph := h.s.phases; ph.Begin(h.w) {
		h.s.mgr.Enter()
		ph.Lap(h.w, obs.PhaseEpochWait)
		removed := h.DeleteLocked(k)
		ph.End(h.w, obs.PhaseDescent)
		h.s.mgr.Exit()
		return removed
	}
	h.s.mgr.Enter()
	defer h.s.mgr.Exit()
	return h.DeleteLocked(k)
}

// DeleteLocked is Delete for a caller that already holds the epoch guard
// (Store.Epochs().Enter) or otherwise excludes an epoch advance.
func (h Handle) DeleteLocked(k []byte) bool {
	h.s.stats.Deletes.Add(h.w, 1)
	removed := h.layerDelete(h.rootCell0(), k, k)
	if removed {
		h.s.size.Add(-1)
	}
	return removed
}

func (h Handle) layerDelete(cell rootCell, full, k []byte) bool {
	ik, kind := ikeyOf(k)
	rootOff := cell.root()
	if rootOff == 0 {
		return false
	}
	n := h.descend(rootOff, ik)
	n = h.lockCovering(n, ik)
	p := n.perm()
	pos, found := n.leafSearch(ik, kind, p)
	if !found {
		n.unlock()
		return false
	}
	slot := p.slot(pos)
	vw := n.val(slot)
	if kind == kindLayer {
		n.unlock()
		return h.layerDelete(rootCell{s: h.s, off: vw}, full, k[8:])
	}
	h.beforePermChange(n, false)
	n.markInsert()
	n.store(fPerm, uint64(p.remove(pos)))
	// Publish inside the locked region (see layerPut): the leaf lock
	// serializes same-key writers, so journal order equals apply order.
	h.s.publish(ChangeDelete, full, nil)
	n.unlock()
	h.freeValueWord(vw)
	return true
}

// ---- Scan ----

type scanEntry struct {
	ikey uint64
	kind uint8
	vw   uint64
}

// Scan visits keys ≥ start in ascending order until fn returns false or
// max pairs are visited (max < 0 means unlimited), delivering the uint64
// view of each value. The key slice is only valid during the callback.
// Returns the number of pairs visited.
func (h Handle) Scan(start []byte, max int, fn func(k []byte, v uint64) bool) int {
	return h.scanWords(start, max, func(k []byte, vw uint64) bool {
		return fn(k, h.vwUint64(vw))
	})
}

// ScanBytes is Scan delivering byte values. The key and value slices are
// only valid during the callback.
func (h Handle) ScanBytes(start []byte, max int, fn func(k, v []byte) bool) int {
	var buf []byte
	return h.scanWords(start, max, func(k []byte, vw uint64) bool {
		buf = h.appendValue(buf[:0], vw)
		return fn(k, buf)
	})
}

// scanWords drives the walk, delivering raw value words. The whole scan
// runs under one epoch guard, so dereferencing buffered value words stays
// safe for its duration.
func (h Handle) scanWords(start []byte, max int, fn func(k []byte, vw uint64) bool) int {
	h.s.mgr.Enter()
	defer h.s.mgr.Exit()
	h.s.stats.Scans.Add(h.w, 1)
	visited := 0
	var kb []byte
	h.scanLayer(h.rootCell0(), &kb, 0, start, max, &visited, fn)
	return visited
}

// scanLayer walks one layer ascending. kb is the shared key buffer: the
// first plen bytes hold this layer's prefix, and each entry's full key is
// built in place — so the key passed to fn is scratch, valid only during
// the callback (no per-entry allocation).
func (h Handle) scanLayer(cell rootCell, kb *[]byte, plen int, start []byte, max int, visited *int, fn func([]byte, uint64) bool) bool {
	rootOff := cell.root()
	if rootOff == 0 {
		return true
	}
	var startIk uint64
	var startKind uint8
	if len(start) > 0 {
		startIk, startKind = ikeyOf(start)
	}
	n := h.descend(rootOff, startIk)

	var entries []scanEntry
	for n.valid() {
	again:
		v := n.stable()
		if startIk >= n.hikey() {
			nn := n.next()
			if n.changed(v) {
				goto again
			}
			if nn != 0 {
				n = h.ref(nn)
				h.s.lazyRecoverLeaf(n)
				goto again
			}
		}
		entries = entries[:0]
		p := n.perm()
		for i := 0; i < p.count(); i++ {
			s := p.slot(i)
			entries = append(entries, scanEntry{n.ikey(s), n.kind(s), n.val(s)})
		}
		next := n.next()
		if n.changed(v) {
			goto again
		}

		for _, e := range entries {
			if len(start) > 0 && keyCmp(e.ikey, e.kind, startIk, startKind) < 0 {
				if !(e.kind == kindLayer && e.ikey == startIk) {
					continue
				}
			}
			if max >= 0 && *visited >= max {
				return false
			}
			*kb = appendIkey((*kb)[:plen], e.ikey, e.kind)
			if e.kind == kindLayer {
				var rest []byte
				if len(start) > 8 && e.ikey == startIk && startKind == kindLayer {
					rest = start[8:]
				}
				if !h.scanLayer(rootCell{s: h.s, off: e.vw}, kb, plen+8, rest, max, visited, fn) {
					return false
				}
				continue
			}
			*visited++
			if !fn(*kb, e.vw) {
				return false
			}
		}
		n = h.ref(next)
		if n.valid() {
			h.s.lazyRecoverLeaf(n)
		}
		start = nil
		startIk, startKind = 0, 0
	}
	return true
}

// ---- reverse scan ----
//
// The tree has no leftward links (B-link next pointers only point right),
// so descending iteration walks each layer's subtrees right-to-left from
// the interior nodes, with the same optimistic version validation the
// forward descent uses. Two structural invariants make this sound without
// hand-over-hand locking:
//
//   - Entries only ever move right (leaf splits), never left (emptied
//     leaves stay in the tree; there are no merges). A leaf reached
//     through a stale interior snapshot therefore still finds everything
//     it ever held by walking its B-link chain rightward.
//
//   - Equal ikeys never split across leaves (splitPoint), so once a leaf
//     snapshot is taken, every entry between two of its keys is in the
//     snapshot.
//
// The walk carries a running exclusive upper bound that tightens as
// entries are delivered; re-reading a leaf through a racing split then
// skips everything already visited, so no entry is delivered twice.

// revBound is the exclusive upper bound of a reverse layer walk,
// layer-relative: only entries strictly below (ik, kind) are delivered.
type revBound struct {
	set  bool
	ik   uint64
	kind uint8
	// rest is the bound's remainder within the sub-layer, meaningful when
	// kind == kindLayer and the walk reaches the boundary layer entry.
	rest []byte
	// whole excludes entries equal to (ik, kind) entirely — they have been
	// fully visited (or were excluded to begin with).
	whole bool
}

// boundFor renders an exclusive byte-key bound layer-relative.
func boundFor(until []byte) revBound {
	ik, kind := ikeyOf(until)
	b := revBound{set: true, ik: ik, kind: kind}
	if kind == kindLayer {
		b.rest = until[8:]
	}
	return b
}

// admitsBeyond reports whether a right sibling past hikey hk can still
// hold entries under the bound (its entries all have ikey ≥ hk).
func (b *revBound) admitsBeyond(hk uint64) bool {
	if !b.set {
		return true
	}
	return hk < b.ik || (hk == b.ik && b.kind > 0)
}

// scanLayerRev visits one layer's keys strictly below b (layer-relative;
// unset means from the end of the layer) in descending order, recursing
// into sub-layers. Like scanLayer, kb is the shared key buffer (prefix in
// its first plen bytes): the key passed to fn is scratch, valid only
// during the callback. Returns false when fn or the max cut stopped the
// walk.
func (h Handle) scanLayerRev(cell rootCell, kb *[]byte, plen int, b *revBound, max int, visited *int, fn func([]byte, uint64) bool) bool {
	rootOff := cell.root()
	if rootOff == 0 {
		return true
	}
	return h.revSubtree(h.ref(rootOff), kb, plen, b, max, visited, fn)
}

// revSubtree walks subtree n right-to-left, delivering entries under *b
// and tightening the bound as it goes.
func (h Handle) revSubtree(n nodeRef, kb *[]byte, plen int, b *revBound, max int, visited *int, fn func([]byte, uint64) bool) bool {
	if n.isLeaf() {
		return h.revLeafChain(n, kb, plen, b, max, visited, fn)
	}
	h.s.lazyRecoverInterior(n)
retry:
	v := n.stable()
	nk := n.nkeys()
	if nk > intWidth {
		nk = intWidth // torn read during an update; version check retries
	}
	var rkeys [intWidth]uint64
	var kids [intWidth + 1]uint64
	for i := 0; i < nk; i++ {
		rkeys[i] = n.rkey(i)
	}
	for i := 0; i <= nk; i++ {
		kids[i] = n.child(i)
	}
	if n.changed(v) {
		h.lapRetry()
		goto retry
	}
	for i := nk; i >= 0; i-- {
		// Child i covers ikeys ≥ rkeys[i-1]: skip subtrees wholly at or
		// above the (tightening) bound — except the boundary subtree, whose
		// equal-ikey entries may still qualify on kind.
		if b.set && i > 0 && rkeys[i-1] > b.ik {
			continue
		}
		if kids[i] == 0 {
			h.lapRetry()
			goto retry
		}
		if !h.revSubtree(h.ref(kids[i]), kb, plen, b, max, visited, fn) {
			return false
		}
	}
	return true
}

// revLeafChain snapshots the B-link chain from n rightward while siblings
// may still hold entries under the bound, then delivers the snapshots in
// reverse — so entries a racing split moved right of n are still seen,
// and entries above the bound (already delivered through their new home)
// are skipped.
func (h Handle) revLeafChain(n nodeRef, kb *[]byte, plen int, b *revBound, max int, visited *int, fn func([]byte, uint64) bool) bool {
	var chain [][]scanEntry
	for n.valid() {
		h.s.lazyRecoverLeaf(n)
	again:
		v := n.stable()
		var entries []scanEntry
		p := n.perm()
		for i := 0; i < p.count(); i++ {
			s := p.slot(i)
			entries = append(entries, scanEntry{n.ikey(s), n.kind(s), n.val(s)})
		}
		next := n.next()
		hk := n.hikey()
		if n.changed(v) {
			goto again
		}
		chain = append(chain, entries)
		if next == 0 || !b.admitsBeyond(hk) {
			break
		}
		n = h.ref(next)
	}
	for ci := len(chain) - 1; ci >= 0; ci-- {
		entries := chain[ci]
		for ei := len(entries) - 1; ei >= 0; ei-- {
			e := entries[ei]
			if b.set {
				c := keyCmp(e.ikey, e.kind, b.ik, b.kind)
				if c > 0 {
					continue
				}
				if c == 0 {
					if b.whole || e.kind != kindLayer {
						continue
					}
					// The boundary layer entry: only its keys below the
					// bound's remainder qualify.
					*kb = appendIkey((*kb)[:plen], e.ikey, e.kind)
					sub := boundFor(b.rest)
					if !h.scanLayerRev(rootCell{s: h.s, off: e.vw}, kb, plen+8, &sub, max, visited, fn) {
						return false
					}
					*b = revBound{set: true, ik: e.ikey, kind: e.kind, whole: true}
					continue
				}
			}
			*kb = appendIkey((*kb)[:plen], e.ikey, e.kind)
			if e.kind == kindLayer {
				sub := revBound{}
				if !h.scanLayerRev(rootCell{s: h.s, off: e.vw}, kb, plen+8, &sub, max, visited, fn) {
					return false
				}
			} else {
				if max >= 0 && *visited >= max {
					return false
				}
				*visited++
				if !fn(*kb, e.vw) {
					return false
				}
			}
			*b = revBound{set: true, ik: e.ikey, kind: e.kind, whole: true}
		}
	}
	return true
}

func appendIkey(dst []byte, ik uint64, kind uint8) []byte {
	nb := int(kind)
	if kind == kindLayer {
		nb = 8
	}
	for i := 0; i < nb; i++ {
		dst = append(dst, byte(ik>>(56-8*uint(i))))
	}
	return dst
}
