// Package ycsb generates the paper's evaluation workloads (§6): YCSB-style
// operation mixes over a fixed keyspace with uniform or zipfian (0.99)
// key popularity, keys scrambled by hashing so popular keys do not cluster
// in the tree.
//
//	YCSB-A  write heavy   50% put / 50% get
//	YCSB-B  read heavy     5% put / 95% get
//	YCSB-C  read only          100% get
//	YCSB-E  scan heavy    95% scan / 5% insert, generated scan lengths
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Workload selects an operation mix.
type Workload int

const (
	// A is write-heavy: 50% puts, 50% gets.
	A Workload = iota
	// B is read-heavy: 5% puts, 95% gets.
	B
	// C is read-only.
	C
	// E is scan-heavy, the YCSB spec's shape: 95% range scans (lengths
	// drawn from the scan-length generator, default a constant
	// ScanLength), 5% inserts.
	E
)

// String names the workload like the paper's figures.
func (w Workload) String() string {
	switch w {
	case A:
		return "YCSB_A"
	case B:
		return "YCSB_B"
	case C:
		return "YCSB_C"
	case E:
		return "YCSB_E"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Distribution selects key popularity.
type Distribution int

const (
	// Uniform draws keys uniformly at random from the keyspace.
	Uniform Distribution = iota
	// Zipfian draws keys with skew parameter 0.99, like YCSB.
	Zipfian
)

// String names the distribution like the paper's figures.
func (d Distribution) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// ScanLength is the default YCSB-E scan length (the constant the
// pre-parameterized workload used; see Generator.SetScanLength).
const ScanLength = 10

// SizeDist selects a value-payload size distribution for byte-valued
// workloads (the harness's -valuesize runs).
type SizeDist int

const (
	// SizeConstant makes every value exactly the configured size —
	// memcached-style fixed objects.
	SizeConstant SizeDist = iota
	// SizeZipfian draws sizes from 1..max with zipfian(0.99) skew toward
	// small values, the shape of real object-cache populations.
	SizeZipfian
)

// String names the distribution for flags and reports.
func (d SizeDist) String() string {
	if d == SizeZipfian {
		return "zipfian"
	}
	return "constant"
}

// SizeGen draws value sizes. Not safe for concurrent use; give each worker
// its own (Next consumes the worker's rng).
type SizeGen struct {
	dist SizeDist
	max  int
	zipf *zipfGen
}

// NewSizeGen creates a generator for values of up to max bytes.
func NewSizeGen(d SizeDist, max int) *SizeGen {
	if max < 1 {
		max = 1
	}
	g := &SizeGen{dist: d, max: max}
	if d == SizeZipfian {
		g.zipf = newZipfGen(uint64(max), ZipfTheta)
	}
	return g
}

// Next draws the next value size in bytes, in [1, max].
func (g *SizeGen) Next(rng *rand.Rand) int {
	if g.dist == SizeConstant {
		return g.max
	}
	// zipf.next can return n itself at the float boundary (the key path
	// guards this with a modulo); clamp so sizes never exceed max.
	s := 1 + int(g.zipf.next(rng))
	if s > g.max {
		s = g.max
	}
	return s
}

// ZipfTheta is YCSB's default skew.
const ZipfTheta = 0.99

// OpKind is the kind of one generated operation.
type OpKind int

const (
	// OpGet reads one key.
	OpGet OpKind = iota
	// OpPut writes one key.
	OpPut
	// OpScan reads ScanLength keys in order starting at Key.
	OpScan
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen is the number of keys an OpScan visits (0 otherwise).
	ScanLen int
}

// Generator produces a deterministic operation stream. Not safe for
// concurrent use; give each worker its own (same workload, distinct seed).
type Generator struct {
	workload Workload
	dist     Distribution
	keyspace uint64
	rng      *rand.Rand
	zipf     *zipfGen

	scanDist SizeDist
	scanMax  int
	scanZipf *zipfGen
}

// NewGenerator creates a generator over keys [0, keyspace). Scans default
// to a constant ScanLength; see SetScanLength.
func NewGenerator(w Workload, d Distribution, keyspace uint64, seed int64) *Generator {
	g := &Generator{
		workload: w,
		dist:     d,
		keyspace: keyspace,
		rng:      rand.New(rand.NewSource(seed)),
		scanDist: SizeConstant,
		scanMax:  ScanLength,
	}
	if d == Zipfian {
		g.zipf = newZipfGen(keyspace, ZipfTheta)
	}
	return g
}

// SetScanLength parameterizes YCSB-E's scan lengths: every scan exactly
// max keys (SizeConstant), or zipfian(0.99)-skewed lengths in 1..max —
// the YCSB spec's short-scan-heavy shape (SizeZipfian).
func (g *Generator) SetScanLength(d SizeDist, max int) {
	if max < 1 {
		max = 1
	}
	g.scanDist, g.scanMax = d, max
	g.scanZipf = nil
	if d == SizeZipfian {
		g.scanZipf = newZipfGen(uint64(max), ZipfTheta)
	}
}

// nextScanLen draws the next scan length in [1, scanMax].
func (g *Generator) nextScanLen() int {
	if g.scanDist == SizeConstant {
		return g.scanMax
	}
	// Like SizeGen.Next: zipf.next can return n itself at the float
	// boundary; clamp so lengths never exceed the configured max.
	n := 1 + int(g.scanZipf.next(g.rng))
	if n > g.scanMax {
		n = g.scanMax
	}
	return n
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	var kind OpKind
	switch g.workload {
	case A:
		if g.rng.Intn(100) < 50 {
			kind = OpPut
		}
	case B:
		if g.rng.Intn(100) < 5 {
			kind = OpPut
		}
	case C:
		kind = OpGet
	case E:
		kind = OpScan
		if g.rng.Intn(100) < 5 {
			// The spec's 5% inserts: draw from a fresh band directly above
			// the preloaded keyspace, so the run genuinely grows the tree
			// (splits race the scans) instead of overwriting loaded keys.
			op := Op{Kind: OpPut, Key: g.keyspace + g.rng.Uint64()%g.keyspace}
			return op
		}
	}
	op := Op{Kind: kind, Key: g.NextKey()}
	if kind == OpScan {
		op.ScanLen = g.nextScanLen()
	}
	return op
}

// NextKey draws a key according to the distribution. Zipfian ranks are
// scrambled so popular keys are spread across the key order (the paper
// hashes key values for the same reason); uniform draws are already
// spread and adding a hash-mod would only introduce collision skew.
func (g *Generator) NextKey() uint64 {
	if g.dist == Zipfian {
		return Scramble(g.zipf.next(g.rng)) % g.keyspace
	}
	return uint64(g.rng.Int63n(int64(g.keyspace)))
}

// Scramble is a 64-bit finalizer-style hash (splitmix64's mix), used to
// spread zipfian ranks across the keyspace.
func Scramble(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// zipfGen is the standard YCSB zipfian generator (Gray et al.'s rejection
// formulation) over ranks [0, n).
type zipfGen struct {
	n     uint64
	theta float64
	alpha float64
	zetaN float64
	eta   float64
	zeta2 float64
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zetaN = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

// zetaCache memoizes the O(n) zeta sums so that spawning one generator per
// worker over a large keyspace pays the cost once.
var (
	zetaMu    sync.Mutex
	zetaCache = map[uint64]float64{}
)

func zeta(n uint64, theta float64) float64 {
	if theta != ZipfTheta {
		return zetaSum(n, theta)
	}
	zetaMu.Lock()
	defer zetaMu.Unlock()
	if v, ok := zetaCache[n]; ok {
		return v
	}
	v := zetaSum(n, theta)
	zetaCache[n] = v
	return v
}

func zetaSum(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
