package ycsb

import (
	"math"
	"testing"
)

func TestMixRatios(t *testing.T) {
	cases := []struct {
		w        Workload
		putFrac  float64
		scanFrac float64
	}{
		{A, 0.50, 0},
		{B, 0.05, 0},
		{C, 0.00, 0},
		{E, 0.05, 0.95}, // the spec's shape: 95% scans, 5% inserts
	}
	const n = 200000
	for _, c := range cases {
		g := NewGenerator(c.w, Uniform, 1000, 1)
		puts, scans := 0, 0
		for i := 0; i < n; i++ {
			op := g.Next()
			switch op.Kind {
			case OpPut:
				puts++
			case OpScan:
				scans++
				if op.ScanLen != ScanLength {
					t.Fatalf("%v: default scan length %d, want %d", c.w, op.ScanLen, ScanLength)
				}
			}
		}
		frac := float64(puts) / n
		if math.Abs(frac-c.putFrac) > 0.01 {
			t.Errorf("%v: put fraction %.3f, want %.2f", c.w, frac, c.putFrac)
		}
		if math.Abs(float64(scans)/n-c.scanFrac) > 0.01 {
			t.Errorf("%v: scan fraction %.3f, want %.2f", c.w, float64(scans)/n, c.scanFrac)
		}
	}
}

func TestScanLengthGenerator(t *testing.T) {
	// Constant: every scan exactly max.
	g := NewGenerator(E, Uniform, 1000, 7)
	g.SetScanLength(SizeConstant, 25)
	for i := 0; i < 1000; i++ {
		if op := g.Next(); op.Kind == OpScan && op.ScanLen != 25 {
			t.Fatalf("constant scan length %d, want 25", op.ScanLen)
		}
	}
	// Zipfian: lengths in [1, max], skewed toward short scans.
	g = NewGenerator(E, Uniform, 1000, 7)
	g.SetScanLength(SizeZipfian, 100)
	short, total := 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpScan {
			continue
		}
		if op.ScanLen < 1 || op.ScanLen > 100 {
			t.Fatalf("zipfian scan length %d out of [1, 100]", op.ScanLen)
		}
		total++
		if op.ScanLen <= 10 {
			short++
		}
	}
	if frac := float64(short) / float64(total); frac < 0.5 {
		t.Errorf("zipfian lengths not skewed short: %.2f ≤ 10", frac)
	}
}

func TestKeysInRange(t *testing.T) {
	for _, d := range []Distribution{Uniform, Zipfian} {
		g := NewGenerator(A, d, 5000, 2)
		for i := 0; i < 100000; i++ {
			if k := g.NextKey(); k >= 5000 {
				t.Fatalf("%v: key %d out of range", d, k)
			}
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	const space = 100000
	g := NewGenerator(C, Zipfian, space, 3)
	counts := map[uint64]int{}
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.NextKey()]++
	}
	// The most popular key should take a few percent of all draws; under
	// uniform it would take ~0.001%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / n; frac < 0.01 {
		t.Fatalf("zipfian max-key fraction %.5f, want > 0.01", frac)
	}
	// And the draws must still touch a broad set of keys.
	if len(counts) < space/20 {
		t.Fatalf("zipfian touched only %d distinct keys", len(counts))
	}
}

func TestUniformIsNotSkewed(t *testing.T) {
	const space = 1000
	g := NewGenerator(C, Uniform, space, 4)
	counts := make([]int, space)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[g.NextKey()]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac > 0.005 { // expected 0.001
			t.Fatalf("uniform key %d drawn with fraction %.4f", k, frac)
		}
	}
}

func TestScrambleSpreadsHotKeys(t *testing.T) {
	// Consecutive zipf ranks must not map to consecutive keys.
	adjacent := 0
	for i := uint64(0); i < 1000; i++ {
		a := Scramble(i) % 100000
		b := Scramble(i+1) % 100000
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			adjacent++
		}
	}
	if adjacent > 5 {
		t.Fatalf("%d of 1000 scrambled neighbours still adjacent", adjacent)
	}
}

func TestDeterministicStreams(t *testing.T) {
	g1 := NewGenerator(A, Zipfian, 10000, 7)
	g2 := NewGenerator(A, Zipfian, 10000, 7)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	g3 := NewGenerator(A, Zipfian, 10000, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next() == g3.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestWorkloadAndDistributionNames(t *testing.T) {
	if A.String() != "YCSB_A" || E.String() != "YCSB_E" {
		t.Fatal("workload names wrong")
	}
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" {
		t.Fatal("distribution names wrong")
	}
}
