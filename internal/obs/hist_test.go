package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the q-quantile of vals by sorting, using the same
// rank convention the histogram uses.
func exactQuantile(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// checkQuantiles asserts the histogram's quantile estimates stay within
// the log-linear resolution bound of the exact answers: at most 1/16
// relative error (one minor bucket) plus one absolute unit for the exact
// small-value region boundary.
func checkQuantiles(t *testing.T, name string, vals []int64) {
	t.Helper()
	h := &Histogram{}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("%s: count=%d want %d", name, h.Count(), len(vals))
	}
	var sum int64
	for _, v := range vals {
		if v > 0 {
			sum += v
		}
	}
	if h.Sum() != sum {
		t.Fatalf("%s: sum=%d want %d", name, h.Sum(), sum)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(vals, q)
		if want < 0 {
			want = 0 // histogram clamps negatives
		}
		// One minor bucket of relative slack either way, +1 for the
		// integer boundary between the exact and log-linear regions.
		slack := want/16 + want/64 + 1
		if got < want-slack || got > want+slack {
			t.Errorf("%s: q=%g got %d want %d (±%d)", name, q, got, want, slack)
		}
	}
}

func TestHistogramQuantileBoundsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		// Uniform ns in a microsecond-to-millisecond band.
		"uniform": func() int64 { return 1_000 + rng.Int63n(1_000_000) },
		// Log-uniform across nine decades — exercises every bucket scale.
		"loguniform": func() int64 {
			e := rng.Intn(9)
			base := int64(1)
			for i := 0; i < e; i++ {
				base *= 10
			}
			return base + rng.Int63n(base*9)
		},
		// Exponential-ish tail via max of uniforms.
		"tailed": func() int64 {
			a, b := rng.Int63n(1<<20), rng.Int63n(1<<20)
			if a > b {
				return a
			}
			return b
		},
	}
	for name, gen := range dists {
		vals := make([]int64, 20_000)
		for i := range vals {
			vals[i] = gen()
		}
		checkQuantiles(t, name, vals)
	}
}

func TestHistogramQuantileBoundsAdversarial(t *testing.T) {
	cases := map[string][]int64{
		"all-equal-small":  repeat(7, 10_000),
		"all-equal-large":  repeat(1<<30+12345, 10_000),
		"all-zero":         repeat(0, 1_000),
		"single":           {123456},
		"bucket-edges":     edges(),
		"bimodal-extremes": append(repeat(1, 5_000), repeat(1<<40, 5_000)...),
		"negatives-clamp":  {-5, -1, 0, 3, 100},
	}
	for name, vals := range cases {
		checkQuantiles(t, name, vals)
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// edges places values exactly on and next to every power-of-two bucket
// boundary up to 2^40.
func edges() []int64 {
	var out []int64
	for k := 0; k <= 40; k++ {
		v := int64(1) << k
		out = append(out, v-1, v, v+1)
	}
	return out
}

func TestHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, union := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(1 << uint(rng.Intn(40)))
		if i%3 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	merged := &Histogram{}
	merged.Merge(a)
	merged.Merge(b)
	if merged.Count() != union.Count() || merged.Sum() != union.Sum() {
		t.Fatalf("merge count/sum = %d/%d, union = %d/%d",
			merged.Count(), merged.Sum(), union.Count(), union.Sum())
	}
	for i := 0; i < HistBuckets; i++ {
		if m, u := merged.buckets[i].Load(), union.buckets[i].Load(); m != u {
			t.Fatalf("bucket %d: merged=%d union=%d", i, m, u)
		}
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if m, u := merged.Quantile(q), union.Quantile(q); m != u {
			t.Fatalf("q=%g: merged=%d union=%d", q, m, u)
		}
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every reachable bucket's midpoint must map back to that bucket, and
	// bucket indexes must be monotonic in the value. Buckets past the one
	// holding MaxUint64 (index 975) can never be hit and their midpoints
	// overflow, so stop there.
	maxReachable := HistBucketOf(^uint64(0))
	for i := 0; i <= maxReachable; i++ {
		if got := HistBucketOf(HistBucketMid(i)); got != i {
			t.Fatalf("bucket %d midpoint %d maps to %d", i, HistBucketMid(i), got)
		}
	}
	prev := -1
	for k := 0; k < 63; k++ {
		for _, v := range []uint64{1 << k, 1<<k + 1<<k/2} {
			b := HistBucketOf(v)
			if b < prev {
				t.Fatalf("bucket not monotonic at %d: %d < %d", v, b, prev)
			}
			prev = b
		}
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{10, 100, 1000, 1 << 20} {
		h.Record(v)
	}
	// Exact small values: bound 10 must include the 10.
	if got := h.cumulative(10); got != 1 {
		t.Fatalf("cumulative(10)=%d want 1", got)
	}
	if got := h.cumulative(1 << 21); got != 4 {
		t.Fatalf("cumulative(2^21)=%d want 4", got)
	}
	// Cumulative counts must be monotonic in the bound and never exceed Count.
	prev := int64(0)
	for _, b := range histExportBounds {
		c := h.cumulative(b)
		if c < prev || c > h.Count() {
			t.Fatalf("cumulative(%d)=%d not monotonic (prev %d, count %d)", b, c, prev, h.Count())
		}
		prev = c
	}
}
