// Package obs is the observability substrate: striped counters, gauges, a
// mergeable log-linear histogram, a ring-buffer phase tracer, and a small
// registry that renders everything in Prometheus text exposition format.
//
// The package is dependency-free (stdlib only) and imports nothing from the
// rest of the module, so every layer — epoch, core, shard, repl, harness —
// can publish into it without cycles. Hot-path cost rules:
//
//   - Counter.Add is one relaxed atomic add on a padded per-stripe cell;
//     nothing heavier is permitted inside a leaf-locked region.
//   - Histogram.Record is two atomic adds plus a bucket index computation;
//     callers on hot paths must sample (the harness records 1-in-8).
//   - Tracer.Record takes a mutex and is reserved for rare protocol events
//     (epoch boundaries, recovery, resync) — never per-operation.
package obs

import "sync/atomic"

// stripes is the number of padded cells a Counter spreads writers across.
// Eight covers the worker counts the harness runs without letting the
// zero-value struct get large.
const stripes = 8

// cell pads one atomic to a cache line so adjacent stripes never false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonic event counter striped across padded cells so that
// workers incrementing concurrently do not bounce a shared cache line. The
// zero value is ready to use.
type Counter struct {
	cells [stripes]cell
}

// Add increments the counter by n on worker w's stripe. w is any stable
// per-goroutine index (a worker/handle number); correctness does not depend
// on it, only contention does.
func (c *Counter) Add(w int, n int64) {
	c.cells[uint(w)%stripes].v.Add(n)
}

// Load returns the current total across all stripes. Not a snapshot — the
// stripes are read one by one — but each stripe is itself monotonic, so the
// result is bounded by values the counter actually passed through.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value (a level, not a rate): set, adjusted, and
// read atomically. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
