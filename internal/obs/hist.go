package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a mergeable log-linear histogram (HDR-style: 16 linear
// minor buckets per power of two, nanosecond domain by convention). It is
// the harness's latency histogram promoted to a first-class concurrent
// type: Record is two atomic adds plus an index computation, Merge and the
// quantile queries are read-side only, and the zero value is ready to use.
//
// Resolution: values below 16 are exact; above that the relative quantile
// error is bounded by the minor-bucket width, 1/16 ≈ 6.25% of the value
// (see TestHistogramQuantileBounds). The top bucket absorbs everything
// ≥ 2^63-ish; recorded negatives clamp to zero.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// HistBuckets is the fixed bucket count of a Histogram.
const HistBuckets = 1024

// HistBucketOf maps a non-negative value to its log-linear bucket: values
// below 16 are exact; above that the top four bits after the MSB select
// one of 16 linear buckets per power of two.
func HistBucketOf(v uint64) int {
	if v < 16 {
		return int(v)
	}
	k := bits.Len64(v)            // 2^(k-1) <= v < 2^k, k >= 5
	minor := (v >> (k - 5)) & 0xF // top 4 bits after the MSB
	idx := (k-4)*16 + int(minor)  // k=5 starts at bucket 16
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// HistBucketMid is the representative (midpoint) value of a bucket.
func HistBucketMid(idx int) uint64 {
	if idx < 16 {
		return uint64(idx)
	}
	k := idx/16 + 4
	minor := uint64(idx % 16)
	step := uint64(1) << (k - 5)
	return (16+minor)*step + step/2
}

// histBucketUpper is the exclusive upper edge of a bucket (the smallest
// value that lands in the next bucket). Used for cumulative ≤-bound export.
func histBucketUpper(idx int) uint64 {
	if idx < 16 {
		return uint64(idx) + 1
	}
	k := idx/16 + 4
	minor := uint64(idx % 16)
	step := uint64(1) << (k - 5)
	return (16 + minor + 1) * step
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	u := uint64(v)
	if v < 0 {
		u, v = 0, 0
	}
	h.buckets[HistBucketOf(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Merge folds o's observations into h. Equivalent — bucket-exactly — to
// having recorded the union of both observation streams into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the q-quantile (0 < q ≤ 1) as a representative bucket
// midpoint, or 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return int64(HistBucketMid(i))
		}
	}
	return int64(HistBucketMid(HistBuckets - 1))
}

// Max returns the representative value of the highest non-empty bucket.
func (h *Histogram) Max() int64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() != 0 {
			return int64(HistBucketMid(i))
		}
	}
	return 0
}

// HistSnapshot is a plain-value summary of a Histogram, for typed metric
// snapshots and bench JSON.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Bins returns a copy of the raw bucket counts. Subtracting two Bins
// snapshots of a live histogram gives the observation counts of the
// interval between them; BinsQuantile and friends summarize such deltas
// (the harness's per-second latency timelines and the anomaly watchdog's
// windowed p99 are built on this).
func (h *Histogram) Bins() []int64 {
	out := make([]int64, HistBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BinsCount sums a bucket-count slice (the observation count of a window).
func BinsCount(bins []int64) int64 {
	var n int64
	for _, b := range bins {
		n += b
	}
	return n
}

// BinsQuantile returns the q-quantile (0 < q ≤ 1) of a bucket-count slice
// as a representative bucket midpoint, or 0 when the slice is empty.
// Negative counts (a racy delta) are treated as zero.
func BinsQuantile(bins []int64, q float64) int64 {
	var n int64
	for _, b := range bins {
		if b > 0 {
			n += b
		}
	}
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i, b := range bins {
		if b > 0 {
			seen += b
		}
		if seen > rank {
			return int64(HistBucketMid(i))
		}
	}
	return int64(HistBucketMid(len(bins) - 1))
}

// BinsSub returns cur−old element-wise: the observation counts of the
// window between two Bins snapshots of the same histogram.
func BinsSub(cur, old []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		out[i] = cur[i]
		if i < len(old) {
			out[i] -= old[i]
		}
	}
	return out
}

// cumulative returns the count of observations ≤ bound (a value in the
// histogram's recording domain), by summing every bucket whose upper edge
// fits under the bound. Buckets straddling the bound are excluded, so the
// result is a lower bound consistent with Prometheus's ≤ semantics.
func (h *Histogram) cumulative(bound uint64) int64 {
	var seen int64
	for i := 0; i < HistBuckets; i++ {
		if histBucketUpper(i) > bound+1 {
			break
		}
		seen += h.buckets[i].Load()
	}
	return seen
}
