package obs

import (
	"sync"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	seen := make(map[string]bool)
	for ph := Phase(0); ph < NumPhases; ph++ {
		s := ph.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("phase %d has bad or duplicate name %q", ph, s)
		}
		seen[s] = true
	}
	if NumPhases.String() != "unknown" {
		t.Fatalf("out-of-range phase name: %q", NumPhases.String())
	}
}

func TestPhaseSetNilSafe(t *testing.T) {
	var p *PhaseSet
	if p.Begin(0) {
		t.Fatal("nil PhaseSet sampled an op")
	}
	p.Lap(0, PhaseDescent) // must not panic
	p.End(0, PhaseDescent)
	p.Observe(PhaseFence, time.Millisecond)
	if p.Active(0) || p.Sampled(0) || p.SampleEvery() != 0 {
		t.Fatal("nil PhaseSet is active")
	}
	if p.Hist(PhaseDescent) != nil || p.Snapshot() != nil {
		t.Fatal("nil PhaseSet returned state")
	}
}

func TestPhaseSetSampling(t *testing.T) {
	p := NewPhaseSet(2, 8)
	if p.SampleEvery() != 8 {
		t.Fatalf("SampleEvery=%d want 8", p.SampleEvery())
	}
	sampled := 0
	for i := 0; i < 800; i++ {
		if p.Begin(0) {
			sampled++
			if !p.Active(0) {
				t.Fatal("Active false during sampled op")
			}
			p.End(0, PhaseDescent)
		}
		if p.Active(0) {
			t.Fatal("Active true outside a sampled op")
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 800 ops, want exactly 100 (1-in-8)", sampled)
	}
	if n := p.Hist(PhaseDescent).Count(); n != 100 {
		t.Fatalf("descent count=%d want 100", n)
	}
	// Rounding: a non-power-of-two period rounds up.
	if got := NewPhaseSet(1, 5).SampleEvery(); got != 8 {
		t.Fatalf("SampleEvery(5)=%d want 8", got)
	}
}

func TestPhaseSetLapAttribution(t *testing.T) {
	p := NewPhaseSet(1, 1) // sample everything
	if !p.Begin(0) {
		t.Fatal("1-in-1 sampling skipped an op")
	}
	time.Sleep(2 * time.Millisecond)
	p.Lap(0, PhaseEpochWait)
	time.Sleep(2 * time.Millisecond)
	p.End(0, PhaseDescent)

	for _, ph := range []Phase{PhaseEpochWait, PhaseDescent} {
		s := p.Hist(ph).Snapshot()
		if s.Count != 1 || s.Sum < int64(time.Millisecond) {
			t.Fatalf("%v: count=%d sum=%d, want one ≥1ms lap", ph, s.Count, s.Sum)
		}
	}
	// Lap outside a sampled op records nothing.
	p.Lap(0, PhaseRetry)
	if n := p.Hist(PhaseRetry).Count(); n != 0 {
		t.Fatalf("retry count=%d want 0 (no op in flight)", n)
	}
	snap := p.Snapshot()
	if len(snap) != int(NumPhases) {
		t.Fatalf("snapshot has %d phases, want %d", len(snap), NumPhases)
	}
	if snap["descent"].Count != 1 {
		t.Fatalf("snapshot descent=%+v", snap["descent"])
	}
}

func TestPhaseSetSampledIndependent(t *testing.T) {
	p := NewPhaseSet(1, 4)
	hits := 0
	for i := 0; i < 400; i++ {
		if p.Sampled(0) {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("Sampled hit %d of 400, want exactly 100 (1-in-4)", hits)
	}
	// The site-local coin must not disturb op sampling.
	opSampled := 0
	for i := 0; i < 400; i++ {
		if p.Begin(0) {
			opSampled++
			p.End(0, PhaseDescent)
		}
		p.Sampled(0)
	}
	if opSampled != 100 {
		t.Fatalf("op sampling drifted to %d of 400 with interleaved Sampled calls", opSampled)
	}
}

func TestPhaseSetConcurrent(t *testing.T) {
	const workers, ops = 8, 4000
	p := NewPhaseSet(workers, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if p.Begin(w) {
					p.Lap(w, PhaseEpochWait)
					p.End(w, PhaseDescent)
				}
				if p.Sampled(w) {
					p.Observe(PhaseFence, time.Nanosecond)
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * ops / 8)
	for _, ph := range []Phase{PhaseDescent, PhaseEpochWait, PhaseFence} {
		if n := p.Hist(ph).Count(); n != want {
			t.Fatalf("%v count=%d want %d", ph, n, want)
		}
	}
}

func TestHistogramBins(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(int64(i))
	}
	first := h.Bins()
	if got := BinsCount(first); got != 1000 {
		t.Fatalf("BinsCount=%d want 1000", got)
	}
	for i := 0; i < 100; i++ {
		h.Record(1 << 20)
	}
	delta := BinsSub(h.Bins(), first)
	if got := BinsCount(delta); got != 100 {
		t.Fatalf("delta count=%d want 100", got)
	}
	// Every delta observation was ~2^20; its p50 must land in that bucket.
	q := BinsQuantile(delta, 0.5)
	if q < (1<<20)*15/16 || q > (1<<20)*17/16 {
		t.Fatalf("delta p50=%d want ≈ 2^20", q)
	}
	// Window quantiles agree with the full histogram on a fresh window.
	if full, win := h.Quantile(0.99), BinsQuantile(h.Bins(), 0.99); full != win {
		t.Fatalf("Quantile=%d BinsQuantile=%d, want equal", full, win)
	}
	if BinsQuantile(nil, 0.5) != 0 || BinsCount(nil) != 0 {
		t.Fatal("empty bins must summarize to zero")
	}
	// Negative entries (racy deltas) are ignored, not counted.
	if got := BinsQuantile([]int64{-5, 3, 0}, 0.5); got != 1 {
		t.Fatalf("quantile over negative bins=%d want 1 (bucket 1 midpoint)", got)
	}
}
